// Package asap is a from-scratch Go reproduction of
//
//	Peng Gu, Jun Wang, Hailong Cai — "ASAP: An Advertisement-based Search
//	Algorithm for Unstructured Peer-to-peer Systems", ICPP 2007.
//
// ASAP inverts query-based P2P search: instead of pulling content
// locations with flooded queries, every peer proactively pushes an
// advertisement — a Bloom-filter synopsis of its shared content, tagged
// with semantic topics and a version — and interested peers cache it. A
// search then reduces to a local ads-cache lookup plus a one-hop
// confirmation with the advertiser.
//
// The module contains the complete experimental apparatus of the paper:
// the GT-ITM transit-stub physical network, three overlay topologies, a
// synthetic eDonkey-calibrated content universe, the trace builder, three
// query-based baselines (flooding, random walk, GSA), the three ASAP
// variants, and a harness that regenerates every figure of the evaluation
// (see DESIGN.md and EXPERIMENTS.md).
//
// This package is the public façade. Two entry points cover most uses:
//
//   - RunExperiment replays a paper-style trace under one scheme ×
//     topology and returns the evaluation metrics;
//   - Cluster is an interactively driven ASAP system: create it, search
//     from any node, add or remove documents, churn nodes, and advance
//     virtual time.
//
// Everything deeper (custom topologies, traces, schemes) is reachable
// through the internal packages' types that this package re-exports.
package asap
