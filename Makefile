# Developer entry points. `make check` is the pre-commit gate: static
# checks, the race suite over the concurrent packages, and a smoke run of
# the matrix benchmark.

GO ?= go

.PHONY: build test vet fmt race loss-smoke bench-gate bench bench-delivery bench-replay fuzz-smoke obs-smoke alloc-gate shard-smoke mem-gate net-smoke scenario-smoke serve-smoke bench-serve profile check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# gofmt -l prints offending files; fail when it prints anything.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# The packages that run scheme code and matrix replays concurrently, plus
# the signature-index equivalence property (bit-sliced scan ≡ scalar linear
# scan under churn × loss × eviction), which shares frozen slot matrices
# across concurrent searches and so must hold under the detector.
race:
	$(GO) test -race ./internal/sim ./internal/experiments
	$(GO) test -race -run 'TestIndexedCacheEquivalenceUnderChurnAndLoss' ./internal/core

# The fault-plane property suite under the race detector: a tiny matrix at
# 2% message loss must be identical for 1 and N workers, and a zero-loss
# plane must be byte-identical to no plane at all.
loss-smoke:
	$(GO) test -race -run 'TestLoss' ./internal/experiments

# One iteration of the matrix benchmark as a compile-and-run smoke test
# (-run '^$' skips the unit tests in the root package).
bench-gate:
	$(GO) test -run '^$$' -bench BenchmarkRunMatrix -benchtime 1x .

# Full benchmark pass, plus the machine-readable perf record.
bench:
	$(GO) test -run '^$$' -bench BenchmarkRunMatrix -benchmem .
	$(GO) run ./cmd/experiments -benchjson BENCH_matrix.json

# Short fuzz pass over the wire decoders (trace codec, Bloom filters and
# patches). Go runs one fuzz target per invocation, hence three runs.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzTraceDecode$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzTraceDecodeJSON$$' -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz '^FuzzFilterWire$$' -fuzztime $(FUZZTIME) ./internal/bloom
	$(GO) test -run '^$$' -fuzz '^FuzzPatchDecode$$' -fuzztime $(FUZZTIME) ./internal/bloom
	$(GO) test -run '^$$' -fuzz '^FuzzSlicedGeometry$$' -fuzztime $(FUZZTIME) ./internal/bloom

# Observability-plane determinism under the race detector: per-second
# series byte-identical across worker counts, and summaries unchanged by
# attaching a recorder.
obs-smoke:
	$(GO) test -race -run 'TestObsSeries' ./internal/experiments

# Delivery-plane micro-benchmarks: the flood/walk/apply hot loops over
# the CSR live views. One iteration each as a smoke test so a hot-loop
# regression (or a new allocation — they report -benchmem) fails fast.
bench-delivery:
	$(GO) test -run '^$$' -bench 'BenchmarkDeliverFlood|BenchmarkDeliverWalk|BenchmarkApplyAd' \
		-benchtime 100x -benchmem ./internal/core

# Replay-plane micro-benchmarks: one full small-scale end-to-end replay
# plus the bit-sliced phase-1 cache scan. One/hundred iterations as a
# smoke test so a hot-loop regression (or a new allocation) fails fast.
bench-replay:
	$(GO) test -run '^$$' -bench 'BenchmarkReplaySmall' -benchtime 1x -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkScanChains' -benchtime 100x -benchmem ./internal/core

# Zero-alloc gates: the obs-off hot path (promised in internal/obs), the
# warmed-up delivery hot loops (flood, walk, applyAd), the warmed-up
# replay scan paths (scanCache, serveAds), and patch sizing on the publish
# path (exact even for unsorted caller-built lists).
alloc-gate:
	$(GO) test -run 'TestObsOffHotPathAllocs' -count=1 .
	$(GO) test -run 'TestDeliveryHotPathAllocs|TestScanHotPathAllocs' -count=1 ./internal/core
	$(GO) test -run 'TestPatchWireSizeAllocs' -count=1 ./internal/bloom

# Sharded-replay equivalence under the race detector: the tiny matrix under
# churn × 2% loss must be byte-identical to the unsharded Workers=1 replay
# at every shard count (1, 2, 4 and a non-dividing 7), and the synthetic
# order-sensitive probe scheme must agree too. -race doubles as a soundness
# proof of the conflict plan: an undeclared cross-lane overlap is a data race.
shard-smoke:
	$(GO) test -race -run 'TestShardedReplayEquivalence|TestShardedDispatcherMatchesSequential' \
		./internal/experiments ./internal/sim

# Peak-heap gate: one sharded small-scale asap-rw replay must stay inside
# its live-heap budget (obs.HeapGauge high-water sampling, once per
# simulated second), so per-node memory creep fails fast.
mem-gate:
	$(GO) test -run 'TestSmallReplayPeakHeapBound' -count=1 ./internal/experiments

# Socket-layer equivalence under the race detector: a 3-daemon asapnode
# cluster (in-memory pipes, loopback TCP, and real OS processes) serves
# the tiny trace over length-prefixed frames and must produce the exact
# in-memory sequential summary, with every cross-replica verification
# passing. Frame/codec hostile-input tests ride along.
net-smoke:
	$(GO) test -race -count=1 ./internal/transport ./internal/cluster

# Adversarial-scenario gate under the race detector: every built-in
# scenario (partitions, flash crowds, churn storms, free riders, interest
# drift, rewiring) replays byte-identically across shard counts and must
# match its pinned golden summary + series hash. Regenerate goldens
# deliberately with `go test ./internal/scenario -run TestGoldenReplay -update`.
scenario-smoke:
	$(GO) test -race -count=1 ./internal/scenario

# Serving-plane gate under the race detector: the serve package's
# concurrent-oracle property (hammering readers vs live applies, every
# answer equal to the quiescent oracle at its epoch), admission control,
# endpoint and determinism tests — then a short open-loop load run built
# -race against an in-process warm node, which must serve every query
# (zero sheds at a rate the node is provisioned for) with p99 under a
# deliberately generous bound (detector overhead included).
serve-smoke:
	$(GO) test -race -count=1 ./internal/serve ./internal/benchio
	$(GO) run -race ./cmd/asapload -rate 200 -n 400 -smoke -p99max 250ms -quiet

# Serving-plane benchmark: the zero-alloc hot-path gate (a warmed
# Node.Search must not allocate), then a sustained load run recording the
# serving block (qps, p50/p99, shed rate) into the bench JSON and gating
# the paper-motivated floor: ≥100k queries/min served from one warm node.
bench-serve:
	$(GO) test -run 'TestServeSearchAllocs' -count=1 ./internal/serve
	$(GO) run ./cmd/asapload -rate 4000 -n 12000 -minqpm 100000 -bench BENCH_matrix.json

# Profile a small-scale matrix run; inspect with `go tool pprof out/cpu.pb`.
profile:
	mkdir -p out
	$(GO) run ./cmd/experiments -scale small -figure 4 \
		-cpuprofile out/cpu.pb -memprofile out/mem.pb -mutexprofile out/mutex.pb
	@echo "profiles written to out/{cpu,mem,mutex}.pb"

check: vet fmt test race loss-smoke bench-gate bench-delivery bench-replay obs-smoke alloc-gate shard-smoke mem-gate net-smoke scenario-smoke serve-smoke fuzz-smoke
