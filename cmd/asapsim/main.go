// Command asapsim replays one paper-style trace under a single search
// scheme on a single topology and prints the evaluation metrics — the
// workhorse for exploring one configuration at a time.
//
// Usage:
//
//	asapsim [-scale full|small|tiny|mega] [-scheme name] [-topo name]
//	        [-trace file] [-scenario name|file] [-workers n] [-shards n]
//	        [-seed n] [-series] [-seriesdir dir] [-cpuprofile path]
//	        [-memprofile path] [-mutexprofile path] [-pprof addr]
//
// With -trace, the query/churn trace is loaded from a file produced by
// tracegen instead of being regenerated (the content universe is still
// derived from the scale preset, which must match the one used at
// generation time).
//
// With -scenario, a registered adversarial scenario (or a scenario JSON
// file) is staged and replayed instead: the scenario carries its own
// scale, scheme, topology, seed and loss, so those flags are ignored;
// -shards still selects the parallel sharded replay (outputs are
// byte-identical at every shard count).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"asap/internal/cliutil"
	"asap/internal/experiments"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/scenario"
	"asap/internal/sim"
	"asap/internal/trace"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "scale preset: "+strings.Join(experiments.Names(), ", "))
		scheme    = flag.String("scheme", "asap-rw", "search scheme (flooding, random-walk, gsa, asap-fld, asap-rw, asap-gsa)")
		topo      = flag.String("topo", "crawled", "overlay topology (random, powerlaw, crawled)")
		traceFile = flag.String("trace", "", "replay a trace file from tracegen instead of regenerating")
		scenArg   = flag.String("scenario", "", "replay an adversarial scenario by registry name or JSON file (overrides -scale/-scheme/-topo/-seed); names: "+strings.Join(scenario.Names(), ", "))
		workers   = flag.Int("workers", 0, "query replay workers (0 = GOMAXPROCS); sharded replay ignores this")
		shards    = flag.Int("shards", 0, "replay shards: 0 = unsharded, <0 = auto (GOMAXPROCS); outputs are byte-identical at every count (unset: the preset's own default)")
		seed      = flag.Uint64("seed", 1, "master seed")
		series    = flag.Bool("series", false, "also print the per-second load series")
		seriesDir = flag.String("seriesdir", "", "write the run's per-second observability series (CSV+JSON) into this directory")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf   = flag.String("memprofile", "", "write a heap profile to this path on exit")
		mutexProf = flag.String("mutexprofile", "", "write a mutex profile to this path on exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	// -shards unset keeps the preset's own default (mega shards by
	// default); set, it overrides the preset either way.
	shardsOverride := cliutil.IntOverride("shards", *shards)
	stopProf, err := obs.StartProfiles(*cpuProf, *memProf, *mutexProf, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asapsim:", err)
		os.Exit(1)
	}
	if *scenArg != "" {
		err = runScenario(*scenArg, *workers, shardsOverride, *series, *seriesDir)
	} else {
		err = run(*scaleName, *scheme, *topo, *traceFile, *workers, shardsOverride, *seed, *series, *seriesDir)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "asapsim:", err)
		os.Exit(1)
	}
}

func run(scaleName, scheme, topoName, traceFile string, workers, shardsOverride int, seed uint64, series bool, seriesDir string) error {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	sc.Workers = workers
	cliutil.ApplyInt(shardsOverride, &sc.ShardCount)
	sc.Seed = seed
	kind := overlay.Kind(255)
	for _, k := range overlay.Kinds {
		if k.String() == topoName {
			kind = k
		}
	}
	if kind == 255 {
		return fmt.Errorf("unknown topology %q", topoName)
	}

	start := time.Now()
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return err
	}
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		tr, err := trace.Decode(f)
		f.Close()
		if err != nil {
			return err
		}
		lab.Tr = tr
	}
	fmt.Fprintf(os.Stderr, "inputs ready in %v: %s\n", time.Since(start).Round(time.Millisecond), lab.Tr.Stats())

	sch, err := lab.NewScheme(scheme)
	if err != nil {
		return err
	}
	sys := sim.NewSystem(lab.U, lab.Tr, kind, lab.Net, sc.Seed)
	var rec *obs.Recorder
	if seriesDir != "" {
		rec = obs.NewRecorder(int(lab.Tr.Span()/1000) + 2)
		sys.SetObs(rec)
	}
	sum := sim.Run(sys, sch, sim.RunOptions{Workers: sc.Workers, Shards: sc.ShardCount})
	if rec != nil {
		key := fmt.Sprintf("%s/%s", sum.Scheme, sum.Topology)
		files, err := obs.WriteDir(seriesDir, []obs.RunSeries{rec.Series(key, sys.Load)})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d series files to %s\n", len(files), seriesDir)
	}

	printSummary(sum, series)
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

// runScenario stages and replays one adversarial scenario, printing the
// standard summary block plus the scenario's act counters.
func runScenario(arg string, workers, shardsOverride int, series bool, seriesDir string) error {
	sn, err := scenario.Resolve(arg)
	if err != nil {
		return err
	}
	opt := scenario.Options{Workers: workers}
	cliutil.ApplyInt(shardsOverride, &opt.Shards)
	start := time.Now()
	res, err := scenario.Run(sn, opt)
	if err != nil {
		return err
	}
	if seriesDir != "" {
		files, err := obs.WriteDir(seriesDir, []obs.RunSeries{res.Series})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d series files to %s\n", len(files), seriesDir)
	}
	fmt.Printf("scenario:          %s\n", sn.Name)
	if sn.Doc != "" {
		fmt.Printf("                   %s\n", sn.Doc)
	}
	printSummary(res.Summary, series)
	sumCol := func(col string) int64 {
		i := res.Series.ColumnIndex(col)
		if i < 0 {
			return 0
		}
		total := res.Series.Warmup[i]
		for _, row := range res.Series.Rows {
			total += row[i]
		}
		return total
	}
	fmt.Printf("act counters:      part_drops=%d rewires=%d interest_shifts=%d\n",
		sumCol(obs.CPartDrop.String()), sumCol(obs.CRewire.String()), sumCol(obs.CInterestShift.String()))
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Second))
	return nil
}

func printSummary(sum metrics.Summary, series bool) {
	fmt.Printf("scheme:            %s\n", sum.Scheme)
	fmt.Printf("topology:          %s\n", sum.Topology)
	fmt.Printf("requests:          %d\n", sum.Requests)
	fmt.Printf("success rate:      %.1f%%\n", sum.SuccessRate*100)
	fmt.Printf("mean response:     %.0f ms (p95 %d ms)\n", sum.MeanRespMS, sum.P95RespMS)
	fmt.Printf("mean hops:         %.2f (one-hop %.0f%%)\n", sum.MeanHops, sum.OneHopRate*100)
	fmt.Printf("cost per search:   %.2f KB\n", sum.MeanSearchBytes/1024)
	fmt.Printf("system load:       %.3f ± %.3f KB/node/s\n", sum.LoadMeanKBps, sum.LoadStdKBps)
	fmt.Printf("warm-up traffic:   %.1f MB\n", float64(sum.WarmupBytes)/(1<<20))
	fmt.Printf("load breakdown:\n")
	for c := 0; c < metrics.NumMsgClasses; c++ {
		if sum.Breakdown[c] > 0 {
			fmt.Printf("  %-12s %.1f%%\n", metrics.MsgClass(c).String(), sum.Breakdown[c]*100)
		}
	}
	if series {
		fmt.Println("per-second load (KB/node/s):")
		for i, v := range sum.LoadSeries {
			fmt.Printf("%d %.4f\n", i, v)
		}
	}
}
