package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asap/internal/cliutil"
	"asap/internal/content"
	"asap/internal/experiments"
	"asap/internal/trace"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("bogus", "asap-rw", "crawled", "", 0, cliutil.NoOverride, 1, false, ""); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run("tiny", "bogus", "crawled", "", 0, cliutil.NoOverride, 1, false, ""); err == nil {
		t.Error("bad scheme accepted")
	}
	if err := run("tiny", "asap-rw", "mesh", "", 0, cliutil.NoOverride, 1, false, ""); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run("tiny", "asap-rw", "crawled", "/nonexistent/trace.bin", 0, cliutil.NoOverride, 1, false, ""); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunPrintsMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny run in -short mode")
	}
	out, err := captureStdout(t, func() error {
		return run("tiny", "asap-rw", "crawled", "", 0, cliutil.NoOverride, 1, true, "")
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"success rate", "mean response", "system load", "ad-refresh", "per-second load"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithExternalTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny run in -short mode")
	}
	// Generate a trace compatible with the tiny scale's universe and
	// replay it from disk.
	sc, err := experiments.ByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	u := content.Generate(sc.Content)
	tcfg := sc.Trace
	tcfg.NumQueries = 200
	tr, err := trace.Build(u, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Encode(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out, err := captureStdout(t, func() error {
		return run("tiny", "flooding", "random", path, 0, cliutil.NoOverride, 1, false, "")
	})
	if err != nil {
		t.Fatalf("run with trace file: %v", err)
	}
	if !strings.Contains(out, "requests:          200") {
		t.Errorf("external trace not used:\n%s", out)
	}
}
