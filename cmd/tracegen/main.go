// Command tracegen generates, saves and inspects the synthetic
// query/churn traces of §IV-B.
//
// Usage:
//
//	tracegen -out trace.bin [-scale full|small|tiny] [-seed n]
//	         [-queries n] [-nodes n] [-joins n] [-leaves n] [-lambda f]
//	tracegen -inspect trace.bin [-events n]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"asap/internal/content"
	"asap/internal/experiments"
	"asap/internal/trace"
)

func main() {
	var (
		out       = flag.String("out", "", "write the generated trace to this file")
		inspect   = flag.String("inspect", "", "print statistics (and events) of an existing trace file")
		scaleName = flag.String("scale", "small", "scale preset: full, small or tiny")
		seed      = flag.Uint64("seed", 1, "master seed")
		queries   = flag.Int("queries", 0, "override query count")
		nodes     = flag.Int("nodes", 0, "override participant count")
		joins     = flag.Int("joins", -1, "override join count")
		leaves    = flag.Int("leaves", -1, "override departure count")
		lambda    = flag.Float64("lambda", 0, "override Poisson arrival rate (req/s)")
		events    = flag.Int("events", 0, "with -inspect: print the first n events")
		asJSON    = flag.Bool("json", false, "write/read the JSON-lines format instead of binary")
	)
	flag.Parse()

	var err error
	switch {
	case *inspect != "":
		err = runInspect(*inspect, *events, *asJSON)
	case *out != "":
		err = runGenerate(*out, *scaleName, *seed, *queries, *nodes, *joins, *leaves, *lambda, *asJSON)
	default:
		err = fmt.Errorf("need -out or -inspect")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func runGenerate(out, scaleName string, seed uint64, queries, nodes, joins, leaves int, lambda float64, asJSON bool) error {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	sc.Seed = seed
	sc.Content.Seed = seed
	tcfg := sc.Trace
	tcfg.Seed = seed
	if queries > 0 {
		tcfg.NumQueries = queries
	}
	if nodes > 0 {
		tcfg.NumNodes = nodes
	}
	if joins >= 0 {
		tcfg.NumJoins = joins
	}
	if leaves >= 0 {
		tcfg.NumLeaves = leaves
	}
	if lambda > 0 {
		tcfg.Lambda = lambda
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating %s-scale universe…\n", sc.Name)
	u := content.Generate(sc.Content)
	fmt.Fprintf(os.Stderr, "building trace…\n")
	tr, err := trace.Build(u, tcfg)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	encode := tr.Encode
	if asJSON {
		encode = tr.EncodeJSON
	}
	if err := encode(f); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", tr.Stats())
	fmt.Printf("wrote %s (%d bytes) in %v\n", out, info.Size(), time.Since(start).Round(time.Millisecond))
	return nil
}

func runInspect(path string, events int, asJSON bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	decode := trace.Decode
	if asJSON {
		decode = trace.DecodeJSON
	}
	tr, err := decode(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", tr.Stats())
	fmt.Printf("participants: %d initial + %d reserve\n", tr.InitialLive, len(tr.Peers)-tr.InitialLive)
	for i := 0; i < events && i < len(tr.Events); i++ {
		ev := &tr.Events[i]
		fmt.Printf("%8.3fs  %-14s node=%d", float64(ev.Time)/1000, ev.Kind, ev.Node)
		if ev.Kind == trace.Query {
			fmt.Printf(" terms=%v doc=%d", ev.Terms, ev.Doc)
		} else if ev.Kind == trace.ContentAdd || ev.Kind == trace.ContentRemove {
			fmt.Printf(" doc=%d", ev.Doc)
		}
		fmt.Println()
	}
	return nil
}
