package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny universe in -short mode")
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	out, err := captureStdout(t, func() error {
		return runGenerate(path, "tiny", 5, 150, 0, 10, 10, 0, false)
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("generate output: %s", out)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}

	out, err = captureStdout(t, func() error { return runInspect(path, 5, false) })
	if err != nil {
		t.Fatalf("inspect: %v", err)
	}
	for _, want := range []string{"participants:", "q=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect output missing %q:\n%s", want, out)
		}
	}
	// With -events 5 the first events are listed with timestamps.
	if !strings.Contains(out, "s  ") {
		t.Errorf("inspect did not list events:\n%s", out)
	}
}

func TestGenerateOverrides(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny universe in -short mode")
	}
	path := filepath.Join(t.TempDir(), "t.bin")
	if _, err := captureStdout(t, func() error {
		return runGenerate(path, "tiny", 1, 50, 100, 0, 0, 16, false)
	}); err != nil {
		t.Fatalf("generate with overrides: %v", err)
	}
	out, err := captureStdout(t, func() error { return runInspect(path, 0, false) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "participants: 100 + 0") && !strings.Contains(out, "participants: 100 initial + 0 reserve") {
		t.Errorf("node override not applied:\n%s", out)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := runGenerate(filepath.Join(t.TempDir(), "x.bin"), "bogus", 1, 0, 0, -1, -1, 0, false); err == nil {
		t.Error("bad scale accepted")
	}
	if err := runInspect("/nonexistent/file.bin", 0, false); err == nil {
		t.Error("missing file accepted")
	}
	junk := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(junk, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runInspect(junk, 0, false); err == nil {
		t.Error("junk file accepted")
	}
}

func TestGenerateAndInspectJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny universe in -short mode")
	}
	path := filepath.Join(t.TempDir(), "t.jsonl")
	if _, err := captureStdout(t, func() error {
		return runGenerate(path, "tiny", 2, 80, 0, 0, 0, 0, true)
	}); err != nil {
		t.Fatalf("generate JSON: %v", err)
	}
	out, err := captureStdout(t, func() error { return runInspect(path, 2, true) })
	if err != nil {
		t.Fatalf("inspect JSON: %v", err)
	}
	if !strings.Contains(out, "participants:") {
		t.Errorf("inspect JSON output:\n%s", out)
	}
	// The JSON file must not decode as binary.
	if err := runInspect(path, 0, false); err == nil {
		t.Error("binary decoder accepted JSON file")
	}
}
