package main

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"asap/internal/benchio"
	"asap/internal/experiments"
	"asap/internal/obs"
	"asap/internal/overlay"
)

// scaleRunRecord is one -scalerun entry in the scale_runs block of the
// bench JSON: the first-ever wall time and peak live heap of replaying a
// preset end to end on this host. Wall-clock figures: comparable within
// one host, not across machines.
type scaleRunRecord struct {
	Scale      string `json:"scale"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Scheme/Topology are set when the preset replays a single cell (mega)
	// rather than the whole scheme×topology matrix (full).
	Scheme     string  `json:"scheme,omitempty"`
	Topology   string  `json:"topology,omitempty"`
	Runs       int     `json:"runs"`
	Peers      int     `json:"peers"`
	Queries    int     `json:"queries"`
	LabBuildMS float64 `json:"lab_build_ms"`
	// WallMS/PeakHeapMB time the headline replay: the whole matrix for
	// full, the highest shard count for mega (per-count figures live in
	// ShardScaling).
	WallMS     float64 `json:"wall_ms"`
	PeakHeapMB float64 `json:"peak_heap_mb"`
	// ShardScaling, for mega, replays the same cell at several shard
	// counts; OutputsEqual then asserts every count produced the same
	// Summary as the first.
	ShardScaling []shardPoint `json:"shard_scaling,omitempty"`
	OutputsEqual *bool        `json:"outputs_equal,omitempty"`
	Note         string       `json:"note,omitempty"`
	When         string       `json:"when"`
}

// runScaleRun replays the preset end to end and merges its record into the
// scale_runs block at path, preserving every other key of the file.
func runScaleRun(preset string, seed uint64, matrixWorkers, shardsOverride int, path string, quiet bool) error {
	sc, err := experiments.ByName(preset)
	if err != nil {
		return err
	}
	sc.Seed = seed
	sc.MatrixWorkers = matrixWorkers
	applyShards(&sc, shardsOverride)
	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	labStart := time.Now()
	progress("scalerun: building %s-scale lab (network, universe, trace)…", sc.Name)
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return err
	}
	st := lab.Tr.Stats()
	rec := scaleRunRecord{
		Scale:      sc.Name,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Peers:      len(lab.Tr.Peers),
		Queries:    st.Queries,
		LabBuildMS: float64(time.Since(labStart).Milliseconds()),
		When:       time.Now().UTC().Format(time.RFC3339),
	}
	progress("scalerun: lab ready in %.0f ms: %s", rec.LabBuildMS, st)

	if sc.Name == "mega" {
		err = scaleRunCell(lab, &rec, progress)
	} else {
		err = scaleRunMatrix(lab, &rec, progress)
	}
	if err != nil {
		return err
	}
	if err := benchio.MergeEntry(path, "scale_runs", preset, rec); err != nil {
		return err
	}
	progress("scalerun: %s recorded (%.0f ms wall, %.0f MB peak heap) → %s",
		preset, rec.WallMS, rec.PeakHeapMB, path)
	return nil
}

// scaleRunMatrix times the preset's whole scheme×topology matrix (the
// full-preset path: every cell of the paper's evaluation at that scale).
func scaleRunMatrix(lab *experiments.Lab, rec *scaleRunRecord, progress func(string, ...any)) error {
	start := time.Now()
	gauge := obs.NewHeapGauge()
	m, err := lab.RunMatrixOpt(nil, nil, func(s string, k overlay.Kind) {
		progress("scalerun: running %-12s on %-8s (%v elapsed)", s, k, time.Since(start).Round(time.Second))
	}, experiments.MatrixOptions{Workers: lab.Scale.MatrixWorkers, Heap: gauge})
	if err != nil {
		return err
	}
	for _, per := range m {
		rec.Runs += len(per)
	}
	rec.WallMS = float64(time.Since(start).Milliseconds())
	rec.PeakHeapMB = gauge.PeakMB()
	return nil
}

// scaleRunCell times one asap-rw/random cell at several shard counts (the
// mega-preset path: the whole matrix is out of reach at half a million
// peers, flooding above all, so mega exercises the sharded engine on the
// one cell the scale ceiling was raised for, and proves the counts agree).
func scaleRunCell(lab *experiments.Lab, rec *scaleRunRecord, progress func(string, ...any)) error {
	const scheme = "asap-rw"
	const topo = overlay.Random
	rec.Scheme, rec.Topology = scheme, topo.String()
	rec.Note = "single cell: the full matrix (flooding above all) is infeasible at this scale"

	var first any
	equal := true
	for _, s := range []int{1, 4} {
		progress("scalerun: %s on %s with %d shard(s)…", scheme, topo, s)
		lab.Scale.ShardCount = s
		gauge := obs.NewHeapGauge()
		start := time.Now()
		m, err := lab.RunMatrixOpt([]string{scheme}, []overlay.Kind{topo}, nil,
			experiments.MatrixOptions{Workers: 1, Heap: gauge})
		if err != nil {
			return err
		}
		wall := float64(time.Since(start).Milliseconds())
		sum := m[scheme][topo]
		if first == nil {
			first = sum
		} else if !reflect.DeepEqual(first, sum) {
			equal = false
		}
		rec.ShardScaling = append(rec.ShardScaling, shardPoint{
			Shards:       s,
			WallMS:       wall,
			PeakHeapMB:   gauge.PeakMB(),
			OutputsEqual: reflect.DeepEqual(first, sum),
		})
		rec.Runs++
		rec.WallMS = wall
		rec.PeakHeapMB = gauge.PeakMB()
	}
	rec.OutputsEqual = &equal
	if !equal {
		return fmt.Errorf("scalerun: shard counts disagree on %s/%s", scheme, topo)
	}
	return nil
}
