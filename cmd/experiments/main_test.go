package main

import (
	"os"
	"strings"
	"testing"

	"asap/internal/cliutil"
)

// captureStdout redirects os.Stdout around fn and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	r.Close()
	return string(buf[:n]), runErr
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run("bogus", "all", "", "", 0, 0, 1, 0, "", cliutil.NoOverride, true); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run("tiny", "99", "", "", 0, 0, 1, 0, "", cliutil.NoOverride, true); err == nil {
		t.Error("bad figure accepted")
	}
	if err := run("tiny", "4", "", "mesh", 0, 0, 1, 0, "", cliutil.NoOverride, true); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run("tiny", "7", "flooding", "crawled", 0, 0, 1, 0, "", cliutil.NoOverride, true); err == nil {
		t.Error("figure 7 without asap-rw accepted")
	}
	if err := run("tiny", "7", "asap-rw", "random", 0, 0, 1, 0, "", cliutil.NoOverride, true); err == nil {
		t.Error("figure 7 without crawled accepted")
	}
}

func TestRunSingleFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny lab runs in -short mode")
	}
	out, err := captureStdout(t, func() error { return run("tiny", "2", "", "", 0, 0, 1, 0, "", cliutil.NoOverride, true) })
	if err != nil {
		t.Fatalf("figure 2: %v", err)
	}
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "audio") {
		t.Errorf("figure 2 output wrong:\n%s", out)
	}
	out, err = captureStdout(t, func() error { return run("tiny", "3", "", "", 0, 0, 1, 0, "", cliutil.NoOverride, true) })
	if err != nil || !strings.Contains(out, "Fig 3") {
		t.Errorf("figure 3: %v\n%s", err, out)
	}
}

func TestRunSubsetMatrixFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny lab runs in -short mode")
	}
	out, err := captureStdout(t, func() error {
		return run("tiny", "4", "flooding,asap-rw", "crawled", 0, 0, 1, 0, "", cliutil.NoOverride, true)
	})
	if err != nil {
		t.Fatalf("figure 4 subset: %v", err)
	}
	for _, want := range []string{"Fig 4", "flooding", "asap-rw", "crawled"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 4 output missing %q:\n%s", want, out)
		}
	}
	// Schemes not requested must not appear as rows.
	if strings.Contains(out, "asap-gsa") {
		t.Error("unrequested scheme in output")
	}
}

func TestRunClaimsFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny lab runs in -short mode")
	}
	out, err := captureStdout(t, func() error {
		return run("tiny", "claims", "flooding,random-walk,gsa,asap-fld,asap-rw", "crawled", 0, 0, 1, 0, "", cliutil.NoOverride, true)
	})
	if err != nil {
		t.Fatalf("claims: %v", err)
	}
	if !strings.Contains(out, "C1") || !strings.Contains(out, "PASS") {
		t.Errorf("claims output wrong:\n%s", out)
	}
}

func TestKindByName(t *testing.T) {
	for _, name := range []string{"random", "powerlaw", "crawled"} {
		k, err := kindByName(name)
		if err != nil || k.String() != name {
			t.Errorf("kindByName(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := kindByName("bogus"); err == nil {
		t.Error("bogus kind accepted")
	}
}
