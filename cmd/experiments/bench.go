package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"asap/internal/experiments"
	"asap/internal/obs"
)

// benchSide records one timed full-matrix replay.
type benchSide struct {
	Workers      int     `json:"workers"`
	FreshGraphs  bool    `json:"fresh_graphs"`
	WallMS       float64 `json:"wall_ms"`
	RunsPerSec   float64 `json:"runs_per_sec"`
	AllocMB      float64 `json:"alloc_mb"`
	AllocsPerRun float64 `json:"allocs_per_run"`
	// PeakHeapMB is the live-heap high-water mark observed across the
	// side's runs (sampled once per simulated second; 0 when not sampled).
	PeakHeapMB float64 `json:"peak_heap_mb,omitempty"`
}

// shardPoint is one row of the shard-scaling block: the whole matrix
// replayed with every run split into Shards shards (matrix fan-out pinned
// to one worker so the wall time isolates intra-run shard parallelism),
// checked byte-identical against the sequential baseline matrix.
type shardPoint struct {
	Shards       int     `json:"shards"`
	WallMS       float64 `json:"wall_ms"`
	PeakHeapMB   float64 `json:"peak_heap_mb"`
	OutputsEqual bool    `json:"outputs_equal"`
}

// benchRecord is the machine-readable perf record -benchjson emits: the
// sequential fresh-graph baseline (the pre-optimization RunMatrix) versus
// the parallel cloned-graph path, over the same lab. Both sides are timed
// on the same process, so gomaxprocs/num_cpu record how much parallelism
// the parallel side could actually use: on a single-CPU machine the two
// sides run the same schedule and speedup_x is null — wall_ms and the
// allocation counters remain comparable, the ratio does not measure the
// parallel path.
type benchRecord struct {
	Scale      string    `json:"scale"`
	Seed       uint64    `json:"seed"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Runs       int       `json:"runs"`
	LabBuildMS float64   `json:"lab_build_ms"`
	Baseline   benchSide `json:"baseline_sequential_fresh"`
	Optimized  benchSide `json:"optimized_parallel_cloned"`
	// Phases is the optimized side's wall-clock phase breakdown, summed
	// across all matrix cells and workers (topology clone, attach/warm-up,
	// replay, search phases, delivery). Wall-clock figures: comparable
	// within one record, not across machines.
	Phases []obs.PhaseStat `json:"optimized_phase_timing"`
	// DeliveryDelta compares the delivery-plane phases (attach,
	// deliver_flood, deliver_walk) against the previous record found at the
	// output path before this run overwrote it — the before/after evidence
	// for hot-loop optimisations, on the same host. Empty when no previous
	// record existed.
	DeliveryDelta []phaseDelta `json:"delivery_phase_delta,omitempty"`
	// ReplayDelta compares the replay phase — the event loop proper, the
	// target of the flattened replay data plane (DESIGN.md §12) — against
	// the previous record, alongside the per-run allocation counters and
	// whether the new matrix still matched its own sequential baseline.
	// Nil when no previous record existed at the output path.
	ReplayDelta *replayDelta `json:"replay_phase_delta,omitempty"`
	// ShardScaling times the sharded replay engine at several shard counts
	// over the same matrix, each point gated on byte-equality with the
	// sequential baseline. Wall-clock scaling is only visible on a
	// multi-core host; on one CPU the points document equality and the
	// (bounded) memory cost of sharding instead.
	ShardScaling []shardPoint `json:"shard_scaling,omitempty"`
	SpeedupX     *float64     `json:"speedup_x"`
	SpeedupNote  string       `json:"speedup_note,omitempty"`
	OutputsEqual bool         `json:"outputs_equal"`
	// ScaleRuns carries the -scalerun records (full/mega wall time and peak
	// heap) forward across -benchjson regenerations, which otherwise
	// rewrite the whole file.
	ScaleRuns json.RawMessage `json:"scale_runs,omitempty"`
	When      string          `json:"when"`
}

// phaseDelta is one phase's before/after wall-clock comparison.
type phaseDelta struct {
	Phase        string  `json:"phase"`
	BeforeMS     float64 `json:"before_total_ms"`
	AfterMS      float64 `json:"after_total_ms"`
	DeltaPercent float64 `json:"delta_percent"`
}

// replayDelta is the replay phase's before/after comparison, with the
// allocation-per-run counters that show whether a wall-clock win came
// with (or from) an allocation win, and the equality verdict guarding it.
type replayDelta struct {
	BeforeMS        float64 `json:"before_replay_ms"`
	AfterMS         float64 `json:"after_replay_ms"`
	DeltaPercent    float64 `json:"delta_percent"`
	BeforeAllocsRun float64 `json:"before_allocs_per_run"`
	AfterAllocsRun  float64 `json:"after_allocs_per_run"`
	OutputsEqual    bool    `json:"outputs_equal"`
}

// replayPhaseDelta loads the previous record at path (if any) and compares
// its replay-phase total and per-run allocations against the current run.
func replayPhaseDelta(path string, cur []obs.PhaseStat, curAllocs float64, outputsEqual bool) *replayDelta {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil // first record at this path: nothing to compare
	}
	var prev struct {
		Optimized struct {
			AllocsPerRun float64 `json:"allocs_per_run"`
		} `json:"optimized_parallel_cloned"`
		Phases []obs.PhaseStat `json:"optimized_phase_timing"`
	}
	if json.Unmarshal(buf, &prev) != nil {
		return nil
	}
	find := func(stats []obs.PhaseStat) (float64, bool) {
		for _, st := range stats {
			if st.Phase == "replay" {
				return st.TotalMS, true
			}
		}
		return 0, false
	}
	before, okB := find(prev.Phases)
	after, okA := find(cur)
	if !okB || !okA || before <= 0 {
		return nil
	}
	return &replayDelta{
		BeforeMS:        before,
		AfterMS:         after,
		DeltaPercent:    (after - before) / before * 100,
		BeforeAllocsRun: prev.Optimized.AllocsPerRun,
		AfterAllocsRun:  curAllocs,
		OutputsEqual:    outputsEqual,
	}
}

// deliveryPhaseDelta loads the previous bench record at path (if any) and
// compares its delivery-plane phase totals against the current run's.
func deliveryPhaseDelta(path string, cur []obs.PhaseStat) []phaseDelta {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil // first record at this path: nothing to compare
	}
	var prev struct {
		Phases []obs.PhaseStat `json:"optimized_phase_timing"`
	}
	if json.Unmarshal(buf, &prev) != nil || len(prev.Phases) == 0 {
		return nil
	}
	find := func(stats []obs.PhaseStat, name string) (float64, bool) {
		for _, st := range stats {
			if st.Phase == name {
				return st.TotalMS, true
			}
		}
		return 0, false
	}
	var out []phaseDelta
	for _, name := range []string{"attach", "deliver_flood", "deliver_walk"} {
		before, okB := find(prev.Phases, name)
		after, okA := find(cur, name)
		if !okB || !okA || before <= 0 {
			continue
		}
		out = append(out, phaseDelta{
			Phase:        name,
			BeforeMS:     before,
			AfterMS:      after,
			DeltaPercent: (after - before) / before * 100,
		})
	}
	return out
}

// timedMatrix replays the full matrix under opt and measures wall time
// and heap allocation (matrix runs only; the shared lab is prebuilt).
func timedMatrix(lab *experiments.Lab, opt experiments.MatrixOptions) (experiments.Matrix, benchSide, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	m, err := lab.RunMatrixOpt(nil, nil, nil, opt)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, benchSide{}, err
	}
	runs := 0
	for _, per := range m {
		runs += len(per)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	side := benchSide{
		Workers:      workers,
		FreshGraphs:  opt.FreshGraphs,
		WallMS:       float64(wall.Milliseconds()),
		RunsPerSec:   float64(runs) / wall.Seconds(),
		AllocMB:      float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
		AllocsPerRun: float64(after.Mallocs-before.Mallocs) / float64(runs),
	}
	if opt.Heap != nil {
		side.PeakHeapMB = opt.Heap.PeakMB()
	}
	return m, side, nil
}

// prevScaleRuns lifts the scale_runs block out of the previous record at
// path so a -benchjson regeneration does not erase -scalerun history.
func prevScaleRuns(path string) json.RawMessage {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var prev struct {
		ScaleRuns json.RawMessage `json:"scale_runs"`
	}
	if json.Unmarshal(buf, &prev) != nil {
		return nil
	}
	return prev.ScaleRuns
}

// runBenchJSON builds the lab once, replays the matrix under the baseline
// and optimized configurations, verifies their outputs are deep-equal,
// and writes the perf record to path.
func runBenchJSON(scaleName string, seed uint64, matrixWorkers int, path string, quiet bool) error {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	sc.Seed = seed
	sc.MatrixWorkers = matrixWorkers
	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	labStart := time.Now()
	progress("benchjson: building %s-scale lab…", sc.Name)
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return err
	}
	labBuild := time.Since(labStart)

	progress("benchjson: sequential baseline (fresh graphs, 1 worker)…")
	baseMat, base, err := timedMatrix(lab, experiments.MatrixOptions{Workers: 1, FreshGraphs: true})
	if err != nil {
		return err
	}
	matrixWorkers = sc.MatrixWorkers
	if matrixWorkers <= 0 {
		matrixWorkers = runtime.NumCPU()
	}
	progress("benchjson: parallel optimized (cloned graphs, %d workers)…", matrixWorkers)
	timing := &obs.Timing{}
	optHeap := obs.NewHeapGauge()
	optMat, opt, err := timedMatrix(lab, experiments.MatrixOptions{Workers: matrixWorkers, Timing: timing, Heap: optHeap})
	if err != nil {
		return err
	}

	// Shard-scaling block: the same matrix with every run sharded, matrix
	// fan-out pinned to one worker so wall time isolates the intra-run
	// shard parallelism. Each point is gated on byte-equality with the
	// sequential baseline — the property the engine promises at any count.
	var shardScaling []shardPoint
	for _, s := range []int{1, 2, 4} {
		progress("benchjson: sharded replay (%d shards)…", s)
		lab.Scale.ShardCount = s // run() reads the lab's scale; no rebuild needed
		gauge := obs.NewHeapGauge()
		shMat, sh, err := timedMatrix(lab, experiments.MatrixOptions{Workers: 1, Heap: gauge})
		if err != nil {
			return err
		}
		shardScaling = append(shardScaling, shardPoint{
			Shards:       s,
			WallMS:       sh.WallMS,
			PeakHeapMB:   gauge.PeakMB(),
			OutputsEqual: reflect.DeepEqual(baseMat, shMat),
		})
	}
	lab.Scale.ShardCount = 0

	runs := 0
	for _, per := range optMat {
		runs += len(per)
	}
	phases := timing.Stats()
	outputsEqual := reflect.DeepEqual(baseMat, optMat)
	rec := benchRecord{
		Scale:         sc.Name,
		Seed:          sc.Seed,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Runs:          runs,
		LabBuildMS:    float64(labBuild.Milliseconds()),
		Baseline:      base,
		Optimized:     opt,
		Phases:        phases,
		DeliveryDelta: deliveryPhaseDelta(path, phases),
		ReplayDelta:   replayPhaseDelta(path, phases, opt.AllocsPerRun, outputsEqual),
		ShardScaling:  shardScaling,
		OutputsEqual:  outputsEqual,
		ScaleRuns:     prevScaleRuns(path),
		When:          time.Now().UTC().Format(time.RFC3339),
	}
	// A speedup ratio only measures the parallel path when the process can
	// actually run workers concurrently; with one usable CPU the ratio is
	// scheduling noise around 1.0, so emit null rather than a bogus figure.
	if opt.Workers > 1 && runtime.GOMAXPROCS(0) > 1 {
		x := base.WallMS / opt.WallMS
		rec.SpeedupX = &x
	} else {
		rec.SpeedupNote = "single-CPU host: parallel side degenerates to the sequential schedule; compare wall_ms and allocs_per_run, not a speedup ratio"
	}
	if !rec.OutputsEqual {
		return fmt.Errorf("benchjson: parallel matrix differs from sequential baseline")
	}
	for _, p := range rec.ShardScaling {
		if !p.OutputsEqual {
			return fmt.Errorf("benchjson: %d-shard matrix differs from sequential baseline", p.Shards)
		}
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	if rec.SpeedupX != nil {
		progress("benchjson: %.0f ms → %.0f ms (%.2fx, outputs equal) → %s",
			rec.Baseline.WallMS, rec.Optimized.WallMS, *rec.SpeedupX, path)
	} else {
		progress("benchjson: %.0f ms → %.0f ms (1 CPU, speedup n/a, outputs equal) → %s",
			rec.Baseline.WallMS, rec.Optimized.WallMS, path)
	}
	return nil
}
