package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"asap/internal/benchio"
	"asap/internal/cliutil"
	"asap/internal/obs"
	"asap/internal/scenario"
)

// scenarioRecord is one scenario's entry in the scenarios block of the
// bench JSON: the headline search metrics plus the act counters, so the
// adversarial figures version alongside the perf records.
type scenarioRecord struct {
	Scheme         string  `json:"scheme"`
	Topology       string  `json:"topology"`
	Requests       int     `json:"requests"`
	SuccessRate    float64 `json:"success_rate"`
	MeanRespMS     float64 `json:"mean_resp_ms"`
	MeanSearchKB   float64 `json:"mean_search_kb"`
	Drops          int64   `json:"drops"`
	PartDrops      int64   `json:"part_drops"`
	Rewires        int64   `json:"rewires"`
	InterestShifts int64   `json:"interest_shifts"`
	WallMS         float64 `json:"wall_ms"`
	When           string  `json:"when"`
}

// runScenarioSweep replays the selected adversarial scenarios (default:
// every registered one), prints the sweep table, and — when a bench path
// is given — merges a scenarios block into it.
func runScenarioSweep(csv, seriesDir string, shardsOverride int, benchPath string, quiet bool) error {
	var names []string
	if csv != "" {
		names = strings.Split(csv, ",")
	}
	var opt scenario.Options
	cliutil.ApplyInt(shardsOverride, &opt.Shards)
	var series *obs.Collector
	if seriesDir != "" {
		series = obs.NewCollector()
	}
	// The progress hook fires before each run, so each scenario's wall
	// time is the gap to the next firing (the last one closes at the end).
	start := time.Now()
	walls := map[string]float64{}
	last, lastName := start, ""
	sw, err := scenario.RunSweep(names, opt, series, func(name string) {
		now := time.Now()
		if lastName != "" {
			walls[lastName] = float64(now.Sub(last).Milliseconds())
		}
		last, lastName = now, name
		if !quiet {
			fmt.Fprintf(os.Stderr, "scenario %s… (%v elapsed)\n", name, now.Sub(start).Round(time.Second))
		}
	})
	if err != nil {
		return err
	}
	if lastName != "" {
		walls[lastName] = float64(time.Since(last).Milliseconds())
	}
	if series != nil {
		files, err := obs.WriteDir(seriesDir, series.Runs())
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %d series files to %s\n", len(files), seriesDir)
		}
	}
	fmt.Println(scenario.FormatSweep(sw))
	if benchPath != "" {
		if err := mergeScenarioBench(benchPath, sw, walls); err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "merged scenarios block into %s\n", benchPath)
		}
	}
	return nil
}

// mergeScenarioBench read-modify-writes the bench JSON at path: only the
// scenarios block changes; every other key survives verbatim.
func mergeScenarioBench(path string, sw *scenario.Sweep, walls map[string]float64) error {
	when := time.Now().UTC().Format(time.RFC3339)
	entries := map[string]any{}
	for _, r := range sw.Results {
		entries[r.Scenario.Name] = scenarioRecord{
			Scheme:         r.Summary.Scheme,
			Topology:       r.Summary.Topology,
			Requests:       r.Summary.Requests,
			SuccessRate:    r.Summary.SuccessRate,
			MeanRespMS:     r.Summary.MeanRespMS,
			MeanSearchKB:   r.Summary.MeanSearchBytes / 1024,
			Drops:          r.Summary.Drops,
			PartDrops:      scenario.ColumnSum(&r.Series, obs.CPartDrop.String()),
			Rewires:        scenario.ColumnSum(&r.Series, obs.CRewire.String()),
			InterestShifts: scenario.ColumnSum(&r.Series, obs.CInterestShift.String()),
			WallMS:         walls[r.Scenario.Name],
			When:           when,
		}
	}
	return benchio.MergeEntries(path, "scenarios", entries)
}
