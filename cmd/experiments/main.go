// Command experiments regenerates the figures of the ASAP paper's
// evaluation section (§V).
//
// Usage:
//
//	experiments [-scale full|small|tiny|mega] [-figure all|2|3|...|10|claims]
//	            [-schemes csv] [-topos csv] [-workers n] [-matrixworkers n]
//	            [-shards n] [-seed n] [-loss rate] [-quiet] [-benchjson path]
//	            [-scalerun preset] [-scenario csv] [-series dir]
//	            [-cpuprofile path] [-memprofile path] [-mutexprofile path]
//	            [-pprof addr]
//
// Examples:
//
//	experiments -scale small -figure all     # every figure, 1/10 scale
//	experiments -scale full -figure 4        # paper-scale Fig. 4 (slow)
//	experiments -scale small -figure claims  # headline-claim checks
//	experiments -scale small -loss 0.02      # the matrix on a 2%-lossy network
//	experiments -scale tiny -figure loss     # loss sweep: 0/1/2/5% message loss
//	experiments -figure scenario             # every adversarial scenario (see internal/scenario)
//	experiments -scenario partition-heal     # one scenario (registry name or JSON file)
//	experiments -shards 4 -scale small       # sharded replay (same outputs, any count)
//	experiments -benchjson BENCH_matrix.json # perf record: baseline vs parallel vs sharded
//	experiments -scalerun full               # record the paper-scale matrix wall+heap
//	experiments -scalerun mega               # 500k-peer run, shard-scaling record
//	experiments -series out/                 # + per-second series per run (CSV+JSON)
//	experiments -cpuprofile cpu.out          # profile the run (go tool pprof cpu.out)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"asap/internal/cliutil"
	"asap/internal/experiments"
	"asap/internal/obs"
	"asap/internal/overlay"
)

func main() {
	var (
		scaleName = flag.String("scale", "small", "experiment scale: "+strings.Join(experiments.Names(), ", "))
		figure    = flag.String("figure", "all", "figure to regenerate: all, 2-10, or claims")
		schemes   = flag.String("schemes", "", "comma-separated scheme subset (default: all six)")
		topos     = flag.String("topos", "", "comma-separated topology subset (default: all three)")
		workers   = flag.Int("workers", 0, "query replay workers for single-run sweeps (0 = GOMAXPROCS); matrix cells replay single-threaded")
		matrixW   = flag.Int("matrixworkers", 0, "scheme×topology matrix workers (0 = GOMAXPROCS)")
		shards    = flag.Int("shards", 0, "replay shards per run: 0 = unsharded, <0 = auto (GOMAXPROCS); outputs are byte-identical at every count (unset: the preset's own default)")
		seed      = flag.Uint64("seed", 1, "master seed")
		seedCount = flag.Int("seeds", 3, "seeds for -figure seeds (robustness sweep)")
		loss      = flag.Float64("loss", 0, "message loss rate in [0,1); 0 is the paper's reliable network")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
		benchJSON = flag.String("benchjson", "", "write a matrix perf record (baseline vs parallel vs sharded) to this path and exit")
		scaleRun  = flag.String("scalerun", "", "replay this preset end to end and merge its wall-time/peak-heap record into the scale_runs block of -benchjson's path (default BENCH_matrix.json); mega also records shard scaling")
		scenCSV   = flag.String("scenario", "", "comma-separated adversarial scenarios (registry names or JSON files) to replay; implies -figure scenario")
		seriesDir = flag.String("series", "", "write each run's per-second observability series (CSV+JSON) into this directory")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProf   = flag.String("memprofile", "", "write a heap profile to this path on exit")
		mutexProf = flag.String("mutexprofile", "", "write a mutex profile to this path on exit")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	if *loss < 0 || *loss >= 1 {
		fmt.Fprintf(os.Stderr, "experiments: -loss %v out of [0,1)\n", *loss)
		os.Exit(1)
	}
	// -shards unset keeps each preset's own default (mega shards by
	// default); set, it overrides the preset either way.
	shardsOverride := cliutil.IntOverride("shards", *shards)
	stopProf, err := obs.StartProfiles(*cpuProf, *memProf, *mutexProf, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	switch {
	case *scaleRun != "":
		path := *benchJSON
		if path == "" {
			path = "BENCH_matrix.json"
		}
		err = runScaleRun(*scaleRun, *seed, *matrixW, shardsOverride, path, *quiet)
	case *figure == "scenario" || *scenCSV != "":
		err = runScenarioSweep(*scenCSV, *seriesDir, shardsOverride, *benchJSON, *quiet)
	case *benchJSON != "":
		err = runBenchJSON(*scaleName, *seed, *matrixW, *benchJSON, *quiet)
	case *figure == "seeds":
		err = runSeeds(*scaleName, *schemes, *topos, *workers, *seedCount, shardsOverride, *quiet)
	case *figure == "loss":
		err = runLossSweep(*scaleName, *schemes, *topos, *seed, *seriesDir, shardsOverride, *quiet)
	default:
		err = run(*scaleName, *figure, *schemes, *topos, *workers, *matrixW, *seed, *loss, *seriesDir, shardsOverride, *quiet)
	}
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// applyShards folds the -shards flag into the preset.
func applyShards(sc *experiments.Scale, override int) {
	cliutil.ApplyInt(override, &sc.ShardCount)
}

func run(scaleName, figure, schemeCSV, topoCSV string, workers, matrixWorkers int, seed uint64, loss float64, seriesDir string, shardsOverride int, quiet bool) error {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	sc.Workers = workers
	sc.MatrixWorkers = matrixWorkers
	sc.Seed = seed
	sc.LossRate = loss
	applyShards(&sc, shardsOverride)

	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	progress("building %s-scale lab (network, universe, trace)…", sc.Name)
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return err
	}
	st := lab.Tr.Stats()
	progress("lab ready in %v: %s", time.Since(start).Round(time.Millisecond), st)

	var schemeList []string
	if schemeCSV != "" {
		schemeList = strings.Split(schemeCSV, ",")
	}
	var topoList []overlay.Kind
	if topoCSV != "" {
		for _, name := range strings.Split(topoCSV, ",") {
			k, err := kindByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			topoList = append(topoList, k)
		}
	}

	needMatrix := figure != "2" && figure != "3"
	var m experiments.Matrix
	var series *obs.Collector
	if needMatrix {
		if seriesDir != "" {
			series = obs.NewCollector()
		}
		m, err = lab.RunMatrixOpt(schemeList, topoList, func(s string, k overlay.Kind) {
			progress("running %-12s on %-8s (%v elapsed)", s, k, time.Since(start).Round(time.Second))
		}, experiments.MatrixOptions{Workers: sc.MatrixWorkers, Series: series})
		if err != nil {
			return err
		}
		if series != nil {
			files, err := obs.WriteDir(seriesDir, series.Runs())
			if err != nil {
				return err
			}
			progress("wrote %d series files to %s", len(files), seriesDir)
		}
	}

	out := func(s string) { fmt.Println(s) }
	switch figure {
	case "all":
		out(experiments.FormatFig2(lab))
		out(experiments.FormatFig3(lab))
		out(experiments.FormatFig4(m))
		out(experiments.FormatFig5(m))
		out(experiments.FormatFig6(m))
		if per, ok := m["asap-rw"]; ok {
			if sum, ok := per[overlay.Crawled]; ok {
				out(experiments.FormatFig7(sum))
			}
		}
		out(experiments.FormatFig8(m))
		out(experiments.FormatFig9(m))
		out(experiments.FormatFig10(m, 100))
		out(experiments.FormatClaims(experiments.CheckClaims(m)))
	case "2":
		out(experiments.FormatFig2(lab))
	case "3":
		out(experiments.FormatFig3(lab))
	case "4":
		out(experiments.FormatFig4(m))
	case "5":
		out(experiments.FormatFig5(m))
	case "6":
		out(experiments.FormatFig6(m))
	case "7":
		per, ok := m["asap-rw"]
		if !ok {
			return fmt.Errorf("figure 7 needs an asap-rw run")
		}
		sum, ok := per[overlay.Crawled]
		if !ok {
			return fmt.Errorf("figure 7 needs the crawled topology")
		}
		out(experiments.FormatFig7(sum))
	case "8":
		out(experiments.FormatFig8(m))
	case "9":
		out(experiments.FormatFig9(m))
	case "10":
		out(experiments.FormatFig10(m, 100))
	case "claims":
		out(experiments.FormatClaims(experiments.CheckClaims(m)))
	default:
		return fmt.Errorf("unknown figure %q (all, 2-10, claims, seeds, loss)", figure)
	}
	progress("done in %v", time.Since(start).Round(time.Second))
	return nil
}

// runSeeds performs the robustness sweep: every selected scheme ×
// topology is replayed under several seeds (fresh universe, trace,
// placement and topology each time) and the metric spreads are printed.
func runSeeds(scaleName, schemeCSV, topoCSV string, workers, nSeeds, shardsOverride int, quiet bool) error {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	sc.Workers = workers
	applyShards(&sc, shardsOverride)
	if nSeeds < 1 {
		return fmt.Errorf("need ≥1 seeds")
	}
	seeds := make([]uint64, nSeeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	schemeList := experiments.SchemeNames
	if schemeCSV != "" {
		schemeList = strings.Split(schemeCSV, ",")
	}
	topoList := []overlay.Kind{overlay.Crawled}
	if topoCSV != "" {
		topoList = topoList[:0]
		for _, name := range strings.Split(topoCSV, ",") {
			k, err := kindByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			topoList = append(topoList, k)
		}
	}
	var sweeps []experiments.SeedSweep
	for _, s := range schemeList {
		for _, k := range topoList {
			if !quiet {
				fmt.Fprintf(os.Stderr, "sweeping %s on %s over %d seeds…\n", s, k, nSeeds)
			}
			sw, err := experiments.RunSeeds(sc, strings.TrimSpace(s), k, seeds)
			if err != nil {
				return err
			}
			sweeps = append(sweeps, sw)
		}
	}
	fmt.Println(experiments.FormatSeedSweeps(sweeps))
	return nil
}

// runLossSweep replays the selected schemes on one topology under a
// ladder of message-loss rates, showing how each degrades off the paper's
// reliable-network assumption.
func runLossSweep(scaleName, schemeCSV, topoCSV string, seed uint64, seriesDir string, shardsOverride int, quiet bool) error {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	sc.Seed = seed
	applyShards(&sc, shardsOverride)
	var schemeList []string
	if schemeCSV != "" {
		for _, s := range strings.Split(schemeCSV, ",") {
			schemeList = append(schemeList, strings.TrimSpace(s))
		}
	}
	topo := overlay.Crawled
	if topoCSV != "" {
		if topo, err = kindByName(strings.TrimSpace(topoCSV)); err != nil {
			return err
		}
	}
	rates := []float64{0, 0.01, 0.02, 0.05}
	if !quiet {
		fmt.Fprintf(os.Stderr, "loss sweep on %s over rates %v…\n", topo, rates)
	}
	var series *obs.Collector
	if seriesDir != "" {
		series = obs.NewCollector()
	}
	sw, err := experiments.RunLossSweep(sc, schemeList, topo, rates, series)
	if err != nil {
		return err
	}
	if series != nil {
		files, err := obs.WriteDir(seriesDir, series.Runs())
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "wrote %d series files to %s\n", len(files), seriesDir)
		}
	}
	fmt.Println(experiments.FormatLossSweep(sw))
	return nil
}

func kindByName(name string) (overlay.Kind, error) {
	for _, k := range overlay.Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown topology %q", name)
}
