// Command asapnode is a long-running ASAP overlay node daemon. It binds a
// listen address, prints it, and then serves two kinds of peers over
// length-prefixed frames: the cluster harness (which configures the
// replica, steps the replay, and collects the summary) and fellow daemons
// (which push ad publications and ask search-time questions — content
// confirmations and ads requests). See internal/cluster for the execution
// model and protocol.
//
// Flags given explicitly pin the daemon to that configuration: a harness
// Hello that disagrees with a pinned -scale/-scheme/-topo/-seed is
// rejected, so a daemon started for one experiment cannot be silently
// recruited into another. Flags left at their defaults accept whatever
// the Hello proposes.
//
// Usage:
//
//	asapnode -listen 127.0.0.1:0
//	asapnode -listen 127.0.0.1:7440 -scale tiny -scheme asap -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"asap/internal/cliutil"
	"asap/internal/cluster"
	"asap/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address (\":0\" picks a free port)")
	scale := flag.String("scale", "", "pin the experiment scale preset (empty: accept the harness's)")
	scheme := flag.String("scheme", "", "pin the scheme (empty: accept the harness's)")
	topo := flag.String("topo", "", "pin the overlay topology (empty: accept the harness's)")
	seed := flag.Uint64("seed", 0, "pin the run seed (only if given explicitly; 0 is a valid seed)")
	flag.Parse()

	pins := cluster.Pins{Scale: *scale, Scheme: *scheme, Topo: *topo}
	// -seed 0 must pin too, so presence — not value — decides (cliutil).
	if cliutil.WasSet("seed") {
		pins.Seed, pins.HasSeed = *seed, true
	}

	tp := transport.TCP{}
	ln, err := tp.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapnode: %v\n", err)
		os.Exit(1)
	}
	// The bound address is the startup contract: launchers read it to
	// learn the kernel-assigned port before dialing.
	fmt.Printf("listening %s\n", ln.Addr())

	e := cluster.NewEngine(tp, ln, pins)
	if err := e.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "asapnode: %v\n", err)
		os.Exit(1)
	}
}
