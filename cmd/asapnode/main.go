// Command asapnode is a long-running ASAP overlay node daemon. It binds a
// listen address, prints it, and then serves two kinds of peers over
// length-prefixed frames: the cluster harness (which configures the
// replica, steps the replay, and collects the summary) and fellow daemons
// (which push ad publications and ask search-time questions — content
// confirmations and ads requests). See internal/cluster for the execution
// model and protocol.
//
// Flags given explicitly pin the daemon to that configuration: a harness
// Hello that disagrees with a pinned -scale/-scheme/-topo/-seed is
// rejected, so a daemon started for one experiment cannot be silently
// recruited into another. Flags left at their defaults accept whatever
// the Hello proposes.
//
// With -serve, the daemon instead runs the always-on query serving plane
// (internal/serve): it warms a node by replaying the preset's trace to
// completion, then answers concurrent searches over HTTP (-http: POST
// /search, GET /metrics, GET /healthz) and optionally the length-prefixed
// binary protocol (-bin), with token-bucket admission control and a
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	asapnode -listen 127.0.0.1:0
//	asapnode -listen 127.0.0.1:7440 -scale tiny -scheme asap -seed 42 -metrics 127.0.0.1:9090
//	asapnode -serve -scale tiny -http 127.0.0.1:0 -bin 127.0.0.1:0 -rate 2000
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"asap/internal/cliutil"
	"asap/internal/cluster"
	"asap/internal/experiments"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/serve"
	"asap/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address (\":0\" picks a free port)")
	scale := flag.String("scale", "", "pin the experiment scale preset (empty: accept the harness's; serve mode defaults to tiny)")
	scheme := flag.String("scheme", "", "pin the scheme (empty: accept the harness's; serve mode defaults to asap-rw)")
	topo := flag.String("topo", "", "pin the overlay topology (empty: accept the harness's; serve mode defaults to random)")
	seed := flag.Uint64("seed", 0, "pin the run seed (only if given explicitly; 0 is a valid seed)")
	metricsAddr := flag.String("metrics", "", "expose Prometheus /metrics on this HTTP address (empty: off)")

	serveMode := flag.Bool("serve", false, "run the always-on serving plane instead of the cluster daemon")
	httpAddr := flag.String("http", "127.0.0.1:0", "serve mode: HTTP listen address (search, metrics, health)")
	binAddr := flag.String("bin", "", "serve mode: binary endpoint listen address (empty: off)")
	rate := flag.Float64("rate", 0, "serve mode: admission rate in queries/sec (0 = unlimited)")
	burst := flag.Float64("burst", 0, "serve mode: admission burst (0: one second at -rate)")
	workers := flag.Int("workers", 0, "serve mode: concurrent in-flight searches (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "serve mode: bounded wait queue beyond the in-flight cap")
	flag.Parse()

	if *serveMode {
		cfg := serve.Config{Workers: *workers, MaxQueue: *queue, Rate: *rate, Burst: *burst}
		if err := runServe(*scale, *scheme, *topo, *seed, *httpAddr, *binAddr, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "asapnode: %v\n", err)
			os.Exit(1)
		}
		return
	}

	pins := cluster.Pins{Scale: *scale, Scheme: *scheme, Topo: *topo}
	// -seed 0 must pin too, so presence — not value — decides (cliutil).
	if cliutil.WasSet("seed") {
		pins.Seed, pins.HasSeed = *seed, true
	}

	tp := transport.TCP{}
	ln, err := tp.Listen(*listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "asapnode: %v\n", err)
		os.Exit(1)
	}
	// The bound address is the startup contract: launchers read it to
	// learn the kernel-assigned port before dialing.
	fmt.Printf("listening %s\n", ln.Addr())

	e := cluster.NewEngine(tp, ln, pins)
	if *metricsAddr != "" {
		if err := serveMetrics(*metricsAddr, e.Recorder); err != nil {
			fmt.Fprintf(os.Stderr, "asapnode: %v\n", err)
			os.Exit(1)
		}
	}
	if err := e.Serve(); err != nil {
		fmt.Fprintf(os.Stderr, "asapnode: %v\n", err)
		os.Exit(1)
	}
}

// serveMetrics binds addr and serves GET /metrics scraped from rec() —
// which may return nil until a harness Hello configures the replica
// (WriteProm on a nil recorder writes an empty exposition).
func serveMetrics(addr string, rec func() *obs.Recorder) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("metrics %s\n", l.Addr())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		var pw obs.PromWriter
		rec().WriteProm(&pw)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(pw.Bytes())
	})
	go http.Serve(l, mux)
	return nil
}

// runServe warms a node from the preset and serves it until SIGINT or
// SIGTERM, then drains in-flight and queued queries before exiting.
func runServe(scale, scheme, topo string, seed uint64, httpAddr, binAddr string, cfg serve.Config) error {
	if scale == "" {
		scale = "tiny"
	}
	if scheme == "" {
		scheme = "asap-rw"
	}
	if topo == "" {
		topo = "random"
	}
	sc, err := experiments.ByName(scale)
	if err != nil {
		return err
	}
	if cliutil.WasSet("seed") {
		sc.Seed = seed
	}
	kind, err := overlay.KindByName(topo)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "asapnode: warming %s/%s at %s scale…\n", scheme, topo, scale)
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return err
	}
	start := time.Now()
	n, rec, err := serve.Warm(lab, scheme, kind, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "asapnode: warm in %v\n", time.Since(start).Round(time.Millisecond))

	hl, err := net.Listen("tcp", httpAddr)
	if err != nil {
		return err
	}
	fmt.Printf("serving http %s\n", hl.Addr())
	hs := serve.NewHTTP(n, rec)

	var bs *serve.BinaryServer
	if binAddr != "" {
		bln, err := transport.TCP{}.Listen(binAddr)
		if err != nil {
			return err
		}
		fmt.Printf("serving bin %s\n", bln.Addr())
		bs = serve.NewBinary(n, bln)
		go bs.Serve()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(hl) }()
	select {
	case err := <-errCh:
		return err
	case <-stop:
	}
	fmt.Fprintln(os.Stderr, "asapnode: draining…")
	if bs != nil {
		bs.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return hs.Shutdown(ctx)
}
