// Command asapload is the open-loop load generator for the always-on
// serving plane (internal/serve). It precomputes a Poisson arrival
// schedule with a Zipf-popular query mix over the preset trace's own
// query catalog — the trace generator's λ=8/s generalised to arbitrary
// rates — then fires it at a warm node and reports client-side
// throughput, a wall-clock latency histogram, and shed counts.
//
// Three modes share one schedule and one report:
//
//   - inproc (default): warm a node in this process and call
//     Node.Search directly — measures the serving core with no codec or
//     kernel in the way.
//   - http: POST /search against an already-running `asapnode -serve`.
//   - bin: the length-prefixed binary protocol against the same daemon,
//     one persistent connection per client worker.
//
// The schedule is a pure function of -loadseed, -rate, -n, -zipf and the
// catalog: worker count changes execution interleaving only, never
// arrivals or mix (see TestScheduleDeterminism).
//
// With -bench, the run's record merges into the serving block of the
// bench JSON (read-modify-write; every other key survives). With -smoke,
// the process exits non-zero unless the run served every query (zero
// sheds, zero failures) with p99 under -p99max.
//
// Usage:
//
//	asapload -rate 2000 -n 10000 -bench BENCH_matrix.json
//	asapload -mode http -addr 127.0.0.1:8080 -rate 500 -n 2000
//	asapload -rate 200 -n 400 -smoke -p99max 250ms
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"asap/internal/benchio"
	"asap/internal/cliutil"
	"asap/internal/experiments"
	"asap/internal/overlay"
	"asap/internal/serve"
	"asap/internal/transport"
)

// servingRecord is one asapload run's entry in the serving block of the
// bench JSON: target configuration, client-side outcome, and the latency
// quantiles the p99 gate reads. Wall-clock figures: comparable within
// one host, not across machines.
type servingRecord struct {
	Mode       string  `json:"mode"`
	Scale      string  `json:"scale"`
	Scheme     string  `json:"scheme"`
	Topology   string  `json:"topology"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	TargetQPS  float64 `json:"target_qps"`
	Count      int     `json:"count"`
	Clients    int     `json:"clients"`
	ZipfS      float64 `json:"zipf_s"`
	LoadSeed   uint64  `json:"load_seed"`
	WarmMS     float64 `json:"warm_ms,omitempty"`
	// QPS/QPM are served throughput over the run's wall time; QPM is the
	// figure the ≥100k-queries/min acceptance gate reads.
	QPS      float64 `json:"qps"`
	QPM      float64 `json:"qpm"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	Served   int64   `json:"served"`
	Shed     int64   `json:"shed"`
	Failed   int64   `json:"failed"`
	ShedFrac float64 `json:"shed_frac"`
	When     string  `json:"when"`
}

func main() {
	mode := flag.String("mode", "inproc", "inproc|http|bin")
	addr := flag.String("addr", "", "target address for http/bin modes")
	scalef := flag.String("scale", "tiny", "experiment scale preset (inproc warm + catalog)")
	scheme := flag.String("scheme", "asap-rw", "scheme to warm (inproc)")
	topo := flag.String("topo", "random", "overlay topology (inproc)")
	seed := flag.Uint64("seed", 0, "lab seed (only if given explicitly; preset default otherwise)")
	rate := flag.Float64("rate", 0, "open-loop arrival rate, queries/sec (default: the preset trace's λ)")
	count := flag.Int("n", 4000, "total queries to issue")
	loadSeed := flag.Uint64("loadseed", 1, "load schedule seed (arrivals + query mix)")
	zipf := flag.Float64("zipf", 1.0, "Zipf popularity skew over the query catalog (0 = uniform)")
	clients := flag.Int("clients", 4, "client worker goroutines (never changes the schedule)")
	workers := flag.Int("workers", 0, "inproc: serving worker slots (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "inproc: bounded wait queue beyond the in-flight cap")
	admit := flag.Float64("admit", 0, "inproc: admission rate, queries/sec (0 = unlimited)")
	burst := flag.Float64("burst", 0, "inproc: admission burst (0: one second at -admit)")
	benchPath := flag.String("bench", "", "merge a serving block entry into this bench JSON")
	smoke := flag.Bool("smoke", false, "gate: fail unless zero sheds/failures and p99 ≤ -p99max")
	p99max := flag.Duration("p99max", 250*time.Millisecond, "smoke-mode p99 bound")
	minQPM := flag.Float64("minqpm", 0, "gate: fail unless served queries/min reaches this")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	// -rate 0 is not a legal open-loop rate, so the preset λ default folds
	// in through the shared sentinel plumbing rather than a zero check —
	// keeping asapload's presence-detection on the one code path every
	// command uses (cliutil), not a drifting local copy.
	rateOverride := cliutil.Float64Override("rate", *rate)

	if err := run(*mode, *addr, *scalef, *scheme, *topo, *seed, rateOverride,
		*count, *loadSeed, *zipf, *clients,
		serve.Config{Workers: *workers, MaxQueue: *queue, Rate: *admit, Burst: *burst},
		*benchPath, *smoke, *p99max, *minQPM, *quiet); err != nil {
		fmt.Fprintf(os.Stderr, "asapload: %v\n", err)
		os.Exit(1)
	}
}

func run(mode, addr, scaleName, schemeName, topoName string, seed uint64, rateOverride float64,
	count int, loadSeed uint64, zipf float64, clients int, cfg serve.Config,
	benchPath string, smoke bool, p99max time.Duration, minQPM float64, quiet bool) error {

	progress := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return err
	}
	if cliutil.WasSet("seed") {
		sc.Seed = seed
	}
	kind, err := overlay.KindByName(topoName)
	if err != nil {
		return err
	}
	rate := sc.Trace.Lambda
	cliutil.ApplyFloat64(rateOverride, &rate)

	// Every mode needs the lab: inproc warms from it, the client modes
	// rebuild the same trace the daemon warmed from to get the catalog.
	progress("asapload: building %s-scale lab…", scaleName)
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return err
	}

	rec := servingRecord{
		Mode: mode, Scale: scaleName, Scheme: schemeName, Topology: topoName,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		TargetQPS:  rate, Count: count, Clients: clients, ZipfS: zipf, LoadSeed: loadSeed,
		When: time.Now().UTC().Format(time.RFC3339),
	}

	var catalog []serve.CatalogEntry
	var do func(worker int, entry int32) error
	switch mode {
	case "inproc":
		progress("asapload: warming %s/%s…", schemeName, topoName)
		warmStart := time.Now()
		n, _, err := serve.Warm(lab, schemeName, kind, cfg)
		if err != nil {
			return err
		}
		rec.WarmMS = float64(time.Since(warmStart).Milliseconds())
		progress("asapload: warm in %.0f ms", rec.WarmMS)
		catalog = serve.BuildCatalog(lab.Tr, func(id overlay.NodeID) bool { return n.System().G.Alive(id) })
		dsts := make([][]overlay.NodeID, clients)
		do = func(w int, e int32) error {
			q := &catalog[e]
			_, dst, _, err := n.Search(q.From, q.Terms, dsts[w][:0])
			dsts[w] = dst
			return err
		}
	case "http":
		if addr == "" {
			return errors.New("http mode needs -addr")
		}
		catalog = serve.BuildCatalog(lab.Tr, nil)
		do = httpClient(addr, catalog, clients)
	case "bin":
		if addr == "" {
			return errors.New("bin mode needs -addr")
		}
		catalog = serve.BuildCatalog(lab.Tr, nil)
		do, err = binClient(addr, catalog, clients)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown mode %q (inproc|http|bin)", mode)
	}
	if len(catalog) == 0 {
		return errors.New("empty query catalog")
	}

	sched := serve.BuildSchedule(len(catalog), serve.LoadConfig{
		Rate: rate, Count: count, Seed: loadSeed, ZipfS: zipf,
	})
	progress("asapload: firing %d queries at %.0f/s over %d clients (catalog %d)…",
		len(sched), rate, clients, len(catalog))
	res := serve.RunLoad(sched, clients, do)

	rec.QPS = res.QPS()
	rec.QPM = rec.QPS * 60
	rec.P50MS = float64(res.Wall.Quantile(0.50)) / float64(time.Millisecond)
	rec.P99MS = float64(res.Wall.Quantile(0.99)) / float64(time.Millisecond)
	rec.Served = res.Served.Load()
	rec.Shed = res.Shed()
	rec.Failed = res.Failed.Load()
	if total := rec.Served + rec.Shed; total > 0 {
		rec.ShedFrac = float64(rec.Shed) / float64(total)
	}

	fmt.Printf("served %d/%d in %v: %.0f qps (%.0f q/min), p50 %.3f ms, p99 %.3f ms, shed %d (%.2f%%), failed %d\n",
		rec.Served, len(sched), res.Elapsed.Round(time.Millisecond),
		rec.QPS, rec.QPM, rec.P50MS, rec.P99MS, rec.Shed, rec.ShedFrac*100, rec.Failed)

	if benchPath != "" {
		key := mode + "-" + scaleName
		if err := benchio.MergeEntry(benchPath, "serving", key, rec); err != nil {
			return err
		}
		progress("asapload: merged serving/%s into %s", key, benchPath)
	}
	if smoke {
		if rec.Failed > 0 {
			return fmt.Errorf("smoke: %d failed queries", rec.Failed)
		}
		if rec.Shed > 0 {
			return fmt.Errorf("smoke: %d shed queries at a rate the node must sustain", rec.Shed)
		}
		if p99 := res.Wall.Quantile(0.99); p99 > p99max {
			return fmt.Errorf("smoke: p99 %v exceeds bound %v", p99, p99max)
		}
	}
	if minQPM > 0 && rec.QPM < minQPM {
		return fmt.Errorf("gate: %.0f queries/min below the %.0f floor", rec.QPM, minQPM)
	}
	return nil
}

// httpClient returns a do callback POSTing /search, one Transport
// connection pool shared across workers (http.Transport keeps per-host
// connections alive, so each worker reuses its own).
func httpClient(addr string, catalog []serve.CatalogEntry, clients int) func(int, int32) error {
	url := "http://" + addr + "/search"
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	return func(w int, e int32) error {
		q := &catalog[e]
		req := serve.SearchRequest{From: uint32(q.From), Terms: make([]uint32, len(q.Terms))}
		for i, t := range q.Terms {
			req.Terms[i] = uint32(t)
		}
		body, _ := json.Marshal(req)
		resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var sr serve.SearchResponse
		switch resp.StatusCode {
		case http.StatusOK:
			return json.NewDecoder(resp.Body).Decode(&sr)
		case http.StatusTooManyRequests:
			return serve.ErrThrottled
		case http.StatusServiceUnavailable:
			return serve.ErrDraining
		default:
			return fmt.Errorf("http %d", resp.StatusCode)
		}
	}
}

// binClient dials one persistent binary-protocol connection per worker
// and returns a do callback running the MServeQuery exchange on it.
func binClient(addr string, catalog []serve.CatalogEntry, clients int) (func(int, int32) error, error) {
	conns := make([]*transport.Conn, clients)
	bufs := make([][]byte, clients)
	tp := transport.TCP{}
	for i := range conns {
		c, err := tp.Dial(addr)
		if err != nil {
			return nil, err
		}
		conns[i] = c
	}
	return func(w int, e int32) error {
		q := &catalog[e]
		sq := transport.ServeQuery{From: uint32(q.From), Terms: make([]uint32, len(q.Terms))}
		for i, t := range q.Terms {
			sq.Terms[i] = uint32(t)
		}
		bufs[w] = sq.Encode(bufs[w][:0])
		if err := conns[w].WriteFrame(transport.MServeQuery, bufs[w]); err != nil {
			return err
		}
		t, p, err := conns[w].ReadFrame()
		if err != nil {
			return err
		}
		switch t {
		case transport.MServeOK:
			_, err := transport.DecodeServeReply(p)
			return err
		case transport.MServeErr:
			if len(p) != 1 {
				return errors.New("malformed MServeErr")
			}
			switch p[0] {
			case transport.ServeErrThrottled:
				return serve.ErrThrottled
			case transport.ServeErrOverloaded:
				return serve.ErrOverloaded
			case transport.ServeErrDraining:
				return serve.ErrDraining
			default:
				return errors.New("server rejected query")
			}
		default:
			return fmt.Errorf("unexpected frame type %d", t)
		}
	}, nil
}
