package asap

// BenchmarkReplaySmall measures one end-to-end small-scale replay of the
// reference scheme (ASAP over random walks, crawled topology) — attach,
// warm-up and the full event loop. This is the replay-phase headline the
// flattened data plane (bit-sliced signature scans, batched dispatch,
// pooled envelopes; DESIGN.md §12) optimises; `make bench-replay` runs it
// as a smoke test and the full record lands in BENCH_matrix.json.

import (
	"testing"

	"asap/internal/core"
	"asap/internal/experiments"
	"asap/internal/overlay"
	"asap/internal/sim"
)

func BenchmarkReplaySmall(b *testing.B) {
	lab, err := experiments.NewLab(experiments.ScaleSmall())
	if err != nil {
		b.Fatal(err)
	}
	var sum Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := sim.NewSystem(lab.U, lab.Tr, overlay.Crawled, lab.Net, lab.Scale.Seed)
		sum = sim.Run(sys, core.New(lab.Scale.ASAPConfig(core.RW)), sim.RunOptions{})
	}
	b.ReportMetric(sum.SuccessRate*100, "succ-%")
	b.ReportMetric(float64(sum.Requests)/b.Elapsed().Seconds()*float64(b.N), "req/s")
}
