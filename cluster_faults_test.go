package asap

import (
	"testing"

	"asap/internal/core"
	"asap/internal/metrics"
)

// TestClusterChurnRefreshesLiveDenominator: Join and Leave change the
// per-node load denominator mid-second; the cluster must refresh the
// current second's live count immediately, not leave it at whatever
// Advance recorded when the second began. Before the fix, a node leaving
// (or joining) between Advance calls was invisible to KB/node/s.
func TestClusterChurnRefreshesLiveDenominator(t *testing.T) {
	c := newTestCluster(t, "asap-rw")
	c.Advance(1)
	before := c.LiveCount()
	if got := c.sys.Load.Live(1); got != before {
		t.Fatalf("Advance recorded live=%d at sec 1, want %d", got, before)
	}

	left := 0
	for n := NodeID(0); int(n) < c.NumNodes() && left < 5; n++ {
		if c.Alive(n) {
			if err := c.Leave(n); err != nil {
				t.Fatalf("Leave(%d): %v", n, err)
			}
			left++
		}
	}
	if got := c.sys.Load.Live(1); got != before-left {
		t.Errorf("after %d departures Live(1) = %d, want %d", left, got, before-left)
	}

	// A reserve node joining mid-second must show up the same way.
	joined := false
	for n := NodeID(0); int(n) < c.NumNodes(); n++ {
		if !c.Alive(n) {
			if err := c.Join(n); err != nil {
				t.Fatalf("Join(%d): %v", n, err)
			}
			joined = true
			break
		}
	}
	if !joined {
		t.Fatal("no reserve node available to join")
	}
	if got := c.sys.Load.Live(1); got != before-left+1 {
		t.Errorf("after join Live(1) = %d, want %d", got, before-left+1)
	}
}

// TestClusterAdvancePastHorizonFoldsLive: driving the clock to (or past)
// the accounting horizon must fold the live count into the final bucket
// the same way Add folds bytes there — before the fix the SetLive at the
// horizon second was silently dropped, so the last bucket divided
// horizon-boundary bytes by a stale population.
func TestClusterAdvancePastHorizonFoldsLive(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 50, Reserve: 2, HorizonSec: 3, Seed: 7})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	c.Advance(2) // curSec = 2, the final bucket
	want := c.LiveCount()
	c.Advance(1) // curSec = 3 = HorizonSec: SetLive must fold into sec 2
	if got := c.sys.Load.Live(2); got != want {
		t.Errorf("Live(2) = %d after horizon tick, want %d", got, want)
	}
}

// findUniqueHolderQuery picks a (requester, document, holder) triple where
// the document's only live holder advertised to the requester's cache and
// a search resolves in one hop — the setup both dead-source tests need.
func findUniqueHolderQuery(t *testing.T, c *Cluster, sch *core.Scheme) (req NodeID, doc DocID, holder NodeID) {
	t.Helper()
	holdersOf := make(map[DocID][]NodeID)
	for n := 0; n < c.NumNodes(); n++ {
		if !c.Alive(NodeID(n)) {
			continue
		}
		for _, d := range c.Docs(NodeID(n)) {
			holdersOf[d] = append(holdersOf[d], NodeID(n))
		}
	}
	// Probe documents in ID order so the chosen triple is stable run to run.
	for d := DocID(0); int(d) < c.NumDocs(); d++ {
		hs := holdersOf[d]
		if len(hs) != 1 {
			continue
		}
		h := hs[0]
		for n := 0; n < c.NumNodes(); n++ {
			r := NodeID(n)
			if r == h || !c.Alive(r) || !c.Interests(r).Has(c.ClassOf(d)) {
				continue
			}
			if !sch.HasCachedAd(r, h) {
				continue // warm-up delivery did not reach r with h's ad
			}
			if res := c.SearchForDoc(r, d, 0); res.Success && res.Hops == 1 {
				return r, d, h
			}
		}
	}
	t.Fatal("no uniquely-held document resolvable in one hop; enlarge the cluster")
	return 0, 0, 0
}

// TestConfirmRoundEvictsDeadSource: a search that confirms against a
// departed source must evict that source's cached ad — on-demand liveness
// detection. The config disables the phase-2 ads request so the eviction
// stays observable after the search (with phase 2 on, neighbours holding
// the same stale ad re-supply it within the same search; see
// TestDeadSourceFallsThroughToPhase2 for that path).
func TestConfirmRoundEvictsDeadSource(t *testing.T) {
	custom := ASAPConfig{
		FloodTTL: 6, Walkers: 5, BudgetUnit: 120, UpdateBudgetDiv: 12,
		AdsRequestHops: 0, MaxConfirms: 5, MinResults: 1, CacheCapacity: 100,
		RefreshPeriodSec: 30, StaleFactor: 12, MaxAdsPerReply: 64, Seed: 7,
	}
	c, err := NewCluster(ClusterConfig{Nodes: 200, Reserve: 10, Scheme: "asap-fld", Seed: 7, ASAP: &custom})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	sch := c.sch.(*core.Scheme)
	req, doc, holder := findUniqueHolderQuery(t, c, sch)

	if err := c.Leave(holder); err != nil {
		t.Fatalf("Leave(%d): %v", holder, err)
	}
	if !sch.HasCachedAd(req, holder) {
		t.Fatal("ungraceful departure should leave the stale ad cached")
	}
	_, _, timeoutsBefore := c.sys.Load.FaultCounts()

	res := c.SearchForDoc(req, doc, 0)
	if res.Success {
		t.Errorf("search for a uniquely-held document succeeded after its only holder left: %+v", res)
	}
	if sch.HasCachedAd(req, holder) {
		t.Error("failed confirmation did not evict the departed source's ad")
	}
	if _, _, timeouts := c.sys.Load.FaultCounts(); timeouts <= timeoutsBefore {
		t.Error("dead-source confirmation did not count a timeout")
	}
}

// TestDeadSourceFallsThroughToPhase2: under the default configuration the
// same failed confirmation makes the search continue into the phase-2 ads
// request (Table I's "if more responses needed") instead of stopping at
// the dead phase-1 candidate.
func TestDeadSourceFallsThroughToPhase2(t *testing.T) {
	c := newTestCluster(t, "asap-fld")
	sch := c.sch.(*core.Scheme)
	req, doc, holder := findUniqueHolderQuery(t, c, sch)

	if err := c.Leave(holder); err != nil {
		t.Fatalf("Leave(%d): %v", holder, err)
	}
	adsReqBefore := c.sys.Load.ByClass()[metrics.MAdsRequest]
	res := c.SearchForDoc(req, doc, 0)
	if res.Success {
		t.Errorf("search for a uniquely-held document succeeded after its only holder left: %+v", res)
	}
	// Phase 2 ran: the failed search flooded an ads request after its
	// confirmation went unanswered.
	if got := c.sys.Load.ByClass()[metrics.MAdsRequest]; got <= adsReqBefore {
		t.Errorf("no ads-request traffic after the dead-source confirmation (still %d bytes); search did not fall through to phase 2", got)
	}
}
