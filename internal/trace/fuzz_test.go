package trace

import (
	"bytes"
	"reflect"
	"testing"

	"asap/internal/content"
)

// fuzzSeedTrace is a small hand-built trace exercising every event kind,
// used to seed the decoder fuzz corpus with structurally valid bytes.
func fuzzSeedTrace() *Trace {
	return &Trace{
		Peers:       []content.PeerID{7, 11, 13, 42},
		InitialLive: 3,
		Events: []Event{
			{Time: 0, Kind: Query, Node: 0, Terms: []content.Keyword{3, 9}},
			{Time: 500, Kind: ContentAdd, Node: 1, Doc: 17},
			{Time: 1000, Kind: Leave, Node: 2},
			{Time: 1000, Kind: Join, Node: 2},
			{Time: 2500, Kind: ContentRemove, Node: 1, Doc: 17},
			{Time: 3000, Kind: Query, Node: 3, Terms: []content.Keyword{5}},
		},
	}
}

// FuzzTraceDecode feeds arbitrary bytes to the trace decoder: it must
// never panic or over-allocate, and anything it accepts must round-trip
// (encode then decode reproduces the same trace).
func FuzzTraceDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedTrace().Encode(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("ASAPTR01"))                              // magic only
	f.Add(append([]byte("ASAPTR01"), 0xff, 0xff, 0xff, 4)) // huge peer count
	if len(valid.Bytes()) > 12 {
		f.Add(valid.Bytes()[:12]) // truncated mid-header
		trunc := append([]byte(nil), valid.Bytes()...)
		trunc[10] ^= 0x40 // corrupt a count byte
		f.Add(trunc)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded trace: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", tr2, tr)
		}
	})
}

// FuzzTraceDecodeJSON is the JSON-path twin of FuzzTraceDecode: arbitrary
// bytes must never panic or over-allocate, and any accepted trace must
// round-trip through EncodeJSON/DecodeJSON.
func FuzzTraceDecodeJSON(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedTrace().EncodeJSON(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte(`{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":-1}`))
	f.Add([]byte(`{"format":"asap-trace-jsonl-1","peers":[],"initial_live":0,"events":9}`))
	f.Add([]byte(`{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":1}` + "\n" +
		`{"t":-4,"kind":"query","node":0}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var buf bytes.Buffer
		if err := tr.EncodeJSON(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		tr2, err := DecodeJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decoding re-encoded trace: %v", err)
		}
		if len(tr2.Peers) != len(tr.Peers) || tr2.InitialLive != tr.InitialLive || !reflect.DeepEqual(tr.Events, tr2.Events) {
			t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", tr2, tr)
		}
	})
}

// TestDecodeRejectsHostileHeaders pins the specific header shapes the
// decoder must reject cheaply (they previously sized allocations straight
// from the header).
func TestDecodeRejectsHostileHeaders(t *testing.T) {
	cases := map[string][]byte{
		// peer count far beyond the data that follows
		"huge peer count": append([]byte("ASAPTR01"), 0xff, 0xff, 0xff, 0x7f),
		// zero peers but a nonzero event count
		"events without peers": append([]byte("ASAPTR01"), 0, 0, 3),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: decode accepted hostile input", name)
		}
	}
}
