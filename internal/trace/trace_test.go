package trace

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"

	"asap/internal/content"
	"asap/internal/overlay"
)

func testUniverse() *content.Universe {
	c := content.DefaultConfig()
	c.NumPeers = 1500
	c.NumDocs = 40000
	return content.Generate(c)
}

func testTraceConfig() Config {
	c := DefaultConfig()
	c.NumNodes = 600
	c.NumQueries = 2500
	c.NumJoins = 80
	c.NumLeaves = 80
	return c
}

var (
	sharedU  = testUniverse()
	sharedTr *Trace
)

func buildShared(t *testing.T) *Trace {
	t.Helper()
	if sharedTr == nil {
		tr, err := Build(sharedU, testTraceConfig())
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		sharedTr = tr
	}
	return sharedTr
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mods := []func(*Config){
		func(c *Config) { c.NumNodes = 1 },
		func(c *Config) { c.NumQueries = -1 },
		func(c *Config) { c.ContentChangeFrac = 1.2 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.TermsMin = 0 },
		func(c *Config) { c.TermsMax = 0 },
		func(c *Config) { c.NumLeaves = c.NumNodes },
	}
	for i, m := range mods {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed", i)
		}
	}
}

func TestScaledConfig(t *testing.T) {
	c := DefaultConfig().Scaled(0.1)
	if c.NumNodes != 1000 || c.NumQueries != 3000 || c.NumJoins != 100 {
		t.Errorf("Scaled(0.1) = %+v", c)
	}
	if c.Lambda != 8 || c.ContentChangeFrac != 0.10 {
		t.Error("Scaled must preserve rates and fractions")
	}
}

func TestBuildRejectsOversizedSelection(t *testing.T) {
	cfg := testTraceConfig()
	cfg.NumNodes = sharedU.NumPeers()
	cfg.NumJoins = 10
	if _, err := Build(sharedU, cfg); err == nil {
		t.Error("Build accepted selection larger than universe")
	}
}

func TestEventCountsNearConfig(t *testing.T) {
	tr := buildShared(t)
	cfg := testTraceConfig()
	s := tr.Stats()
	if s.Queries < cfg.NumQueries*95/100 || s.Queries > cfg.NumQueries {
		t.Errorf("Queries = %d, want ≈%d", s.Queries, cfg.NumQueries)
	}
	changes := s.ContentAdds + s.ContentRemoves
	want := float64(cfg.NumQueries) * cfg.ContentChangeFrac
	if math.Abs(float64(changes)-want) > want*0.3+10 {
		t.Errorf("content changes = %d, want ≈%.0f", changes, want)
	}
	if s.Joins != cfg.NumJoins {
		t.Errorf("Joins = %d, want %d", s.Joins, cfg.NumJoins)
	}
	if s.Leaves < cfg.NumLeaves*9/10 {
		t.Errorf("Leaves = %d, want ≈%d", s.Leaves, cfg.NumLeaves)
	}
}

func TestPoissonRate(t *testing.T) {
	tr := buildShared(t)
	s := tr.Stats()
	if math.Abs(s.QueryRatePerSec-8) > 1.0 {
		t.Errorf("realised query rate %.2f/s, want ≈8 (λ)", s.QueryRatePerSec)
	}
}

func TestEventsSortedByTime(t *testing.T) {
	tr := buildShared(t)
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

// TestReplayInvariants re-walks the trace maintaining the same state the
// builder did and checks, for every query, the paper's guarantee: at least
// one matching document exists on a live node other than the requester at
// the request time, and the target is in the requester's interests.
func TestReplayInvariants(t *testing.T) {
	tr := buildShared(t)
	u := sharedU
	n := len(tr.Peers)

	live := make([]bool, n)
	docs := make([]map[content.DocID]bool, n)
	for i := 0; i < n; i++ {
		docs[i] = make(map[content.DocID]bool)
		for _, d := range u.Peer(tr.Peers[i]).Docs {
			docs[i][d] = true
		}
	}
	for i := 0; i < tr.InitialLive; i++ {
		live[i] = true
	}
	nextJoin := overlay.NodeID(tr.InitialLive)

	holders := map[content.DocID][]overlay.NodeID{}
	for i := 0; i < n; i++ {
		for d := range docs[i] {
			holders[d] = append(holders[d], overlay.NodeID(i))
		}
	}

	for idx := range tr.Events {
		ev := &tr.Events[idx]
		switch ev.Kind {
		case Query:
			if !live[ev.Node] {
				t.Fatalf("event %d: dead requester %d", idx, ev.Node)
			}
			if len(ev.Terms) < 1 || len(ev.Terms) > 3 {
				t.Fatalf("event %d: %d terms", idx, len(ev.Terms))
			}
			if !u.DocMatches(ev.Doc, ev.Terms) {
				t.Fatalf("event %d: target doc does not match its own terms", idx)
			}
			if !u.Peer(tr.Peers[ev.Node]).Interests.Has(u.ClassOf(ev.Doc)) {
				t.Fatalf("event %d: target class outside requester interests", idx)
			}
			ok := false
			for _, h := range holders[ev.Doc] {
				if h != ev.Node && live[h] && docs[h][ev.Doc] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("event %d: no live foreign holder for target doc", idx)
			}
		case ContentAdd:
			if docs[ev.Node][ev.Doc] {
				t.Fatalf("event %d: duplicate add", idx)
			}
			docs[ev.Node][ev.Doc] = true
			holders[ev.Doc] = append(holders[ev.Doc], ev.Node)
			if !u.Peer(tr.Peers[ev.Node]).Interests.Has(u.ClassOf(ev.Doc)) {
				t.Fatalf("event %d: node adds uninteresting doc", idx)
			}
		case ContentRemove:
			if !docs[ev.Node][ev.Doc] {
				t.Fatalf("event %d: removing absent doc", idx)
			}
			delete(docs[ev.Node], ev.Doc)
		case Join:
			if ev.Node != nextJoin {
				t.Fatalf("event %d: join out of order: %d, want %d", idx, ev.Node, nextJoin)
			}
			nextJoin++
			live[ev.Node] = true
		case Leave:
			if !live[ev.Node] {
				t.Fatalf("event %d: leave of dead node", idx)
			}
			live[ev.Node] = false
		}
	}
}

func TestQueryTermsSortedDistinct(t *testing.T) {
	tr := buildShared(t)
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Kind != Query {
			continue
		}
		for j := 1; j < len(ev.Terms); j++ {
			if ev.Terms[j-1] >= ev.Terms[j] {
				t.Fatalf("event %d terms not strictly ascending: %v", i, ev.Terms)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Build(sharedU, testTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(sharedU, testTraceConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		x, y := a.Events[i], b.Events[i]
		if x.Time != y.Time || x.Kind != y.Kind || x.Node != y.Node || x.Doc != y.Doc {
			t.Fatalf("event %d differs", i)
		}
	}
	cfg := testTraceConfig()
	cfg.Seed = 77
	c, err := Build(sharedU, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Events) == len(a.Events) && c.Events[0].Node == a.Events[0].Node && c.Events[0].Doc == a.Events[0].Doc {
		t.Log("different seed produced same head; unlikely but possible")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := buildShared(t)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.InitialLive != tr.InitialLive || len(got.Peers) != len(tr.Peers) || len(got.Events) != len(tr.Events) {
		t.Fatal("header mismatch after round trip")
	}
	for i := range tr.Peers {
		if got.Peers[i] != tr.Peers[i] {
			t.Fatalf("peer %d mismatch", i)
		}
	}
	for i := range tr.Events {
		a, b := tr.Events[i], got.Events[i]
		if a.Time != b.Time || a.Kind != b.Kind || a.Node != b.Node || a.Doc != b.Doc || len(a.Terms) != len(b.Terms) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Terms {
			if a.Terms[j] != b.Terms[j] {
				t.Fatalf("event %d term %d mismatch", i, j)
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	tr := buildShared(t)
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := Decode(bytes.NewReader(data[:4])); err == nil {
		t.Error("Decode accepted truncated magic")
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := Decode(bytes.NewReader(bad)); err == nil {
		t.Error("Decode accepted bad magic")
	}
	if _, err := Decode(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("Decode accepted truncated body")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Query: "query", ContentAdd: "content-add", ContentRemove: "content-remove", Join: "join", Leave: "leave", Kind(99): "invalid"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d) = %q, want %q", k, k.String(), s)
		}
	}
}

func TestStatsString(t *testing.T) {
	tr := buildShared(t)
	if s := tr.Stats().String(); s == "" {
		t.Error("empty stats string")
	}
	var empty Trace
	if empty.Span() != 0 {
		t.Error("empty trace has nonzero span")
	}
}

func TestNodeSet(t *testing.T) {
	var s nodeSet
	s.init(10)
	rng := rand.New(rand.NewPCG(1, 1))
	if s.random(rng) != -1 {
		t.Error("random on empty set should be -1")
	}
	s.add(3)
	s.add(7)
	s.add(3) // dup
	if s.len() != 2 || !s.has(3) || !s.has(7) || s.has(5) {
		t.Errorf("set state wrong: len=%d", s.len())
	}
	s.remove(3)
	if s.has(3) || s.len() != 1 {
		t.Error("remove failed")
	}
	s.remove(3) // absent
	if s.len() != 1 {
		t.Error("double remove corrupted set")
	}
	if got := s.random(rng); got != 7 {
		t.Errorf("random = %d, want 7", got)
	}
}

func BenchmarkBuild(b *testing.B) {
	cfg := testTraceConfig()
	for i := 0; i < b.N; i++ {
		if _, err := Build(sharedU, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeRejectsOutOfOrderEvents(t *testing.T) {
	tr := &Trace{
		Peers:       []content.PeerID{1, 2},
		InitialLive: 2,
		Events: []Event{
			{Time: 100, Kind: Query, Node: 0},
			{Time: 50, Kind: Query, Node: 1},
		},
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err == nil {
		t.Error("Encode accepted out-of-order events")
	}
}
