package trace

import (
	"bytes"
	"strings"
	"testing"

	"asap/internal/content"
)

// directiveTrace is a minimal trace holding one in-memory Directive event.
func directiveTrace() *Trace {
	return &Trace{
		Peers:       []content.PeerID{0, 1},
		InitialLive: 2,
		Events: []Event{
			{Time: 0, Kind: Query, Node: 0, Doc: 1, Terms: []content.Keyword{1}},
			{Time: 1000, Kind: Directive, Node: 0, Doc: 0},
		},
	}
}

// TestCodecsRejectDirective pins the wire boundary: Directive events are
// in-memory scenario staging artifacts and must never serialize — both
// codecs refuse, and the binary decoder still rejects the kind byte.
func TestCodecsRejectDirective(t *testing.T) {
	tr := directiveTrace()
	var bin bytes.Buffer
	if err := tr.Encode(&bin); err == nil || !strings.Contains(err.Error(), "unserializable") {
		t.Errorf("Encode accepted a Directive event (err=%v)", err)
	}
	var js bytes.Buffer
	if err := tr.EncodeJSON(&js); err == nil || !strings.Contains(err.Error(), "unserializable") {
		t.Errorf("EncodeJSON accepted a Directive event (err=%v)", err)
	}

	// A hostile binary stream carrying the Directive kind byte must be
	// rejected by Decode, exactly like any other out-of-range kind. With a
	// single Leave event (time 0, node 0, doc 0, no terms) the record is
	// the stream's last four bytes [kind, node, doc, nterms] after the dt
	// varint, so the kind byte sits at a fixed offset from the end.
	wire := &Trace{Peers: []content.PeerID{0, 1}, InitialLive: 2,
		Events: []Event{{Time: 0, Kind: Leave, Node: 0}}}
	var buf bytes.Buffer
	if err := wire.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	raw := buf.Bytes()
	if _, err := Decode(bytes.NewReader(raw)); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
	idx := len(raw) - 4
	if raw[idx] != byte(Leave) {
		t.Fatalf("kind byte not at expected offset (got %d)", raw[idx])
	}
	raw[idx] = byte(Directive)
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Error("Decode accepted the Directive kind byte")
	}

	if Directive.String() != "directive" {
		t.Errorf("Directive.String() = %q", Directive.String())
	}
	if _, err := kindByLabel("directive"); err == nil {
		t.Error("kindByLabel resolved \"directive\"")
	}
}
