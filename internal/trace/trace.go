package trace

import (
	"fmt"

	"asap/internal/content"
	"asap/internal/overlay"
)

// Kind discriminates trace events.
type Kind uint8

const (
	// Query is a search request carrying Terms (and the target Doc for
	// ground-truth diagnostics).
	Query Kind = iota
	// ContentAdd adds one copy of Doc to Node's shared contents.
	ContentAdd
	// ContentRemove removes Node's copy of Doc.
	ContentRemove
	// Join activates the reserve node Node.
	Join
	// Leave deactivates Node.
	Leave
	// Directive is an in-memory scenario directive: Doc carries the index
	// of a staged scenario act, applied by the sim.System's Director. It
	// never appears on the wire — the codecs reject it — so serialized
	// traces stay exactly the paper's five-kind vocabulary.
	Directive
)

// String returns the event-kind label.
func (k Kind) String() string {
	switch k {
	case Query:
		return "query"
	case ContentAdd:
		return "content-add"
	case ContentRemove:
		return "content-remove"
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Directive:
		return "directive"
	default:
		return "invalid"
	}
}

// Event is one trace record. Time is in virtual milliseconds from trace
// start. Node is the requester (Query), the mutating node (ContentAdd/
// ContentRemove), or the churning node (Join/Leave).
type Event struct {
	Time  int64
	Kind  Kind
	Node  overlay.NodeID
	Doc   content.DocID
	Terms []content.Keyword
}

// ContentRun returns the length of the maximal run of consecutive content
// events (ContentAdd/ContentRemove) starting at index i that share evs[i]'s
// node and virtual second, or 0 when evs[i] is not a content event. Runs
// are what the replay runner may coalesce into one scheme notification: no
// query, tick boundary, or foreign event can fall inside one.
func ContentRun(evs []Event, i int) int {
	e0 := &evs[i]
	if e0.Kind != ContentAdd && e0.Kind != ContentRemove {
		return 0
	}
	sec := e0.Time / 1000
	j := i + 1
	for j < len(evs) {
		e := &evs[j]
		if (e.Kind != ContentAdd && e.Kind != ContentRemove) ||
			e.Node != e0.Node || e.Time/1000 != sec {
			break
		}
		j++
	}
	return j - i
}

// Trace is a replayable event sequence over a fixed node⇄peer mapping.
type Trace struct {
	// Peers maps overlay NodeID → universe PeerID. Nodes
	// [0, InitialLive) start alive; the remainder are reserves consumed
	// by Join events in order.
	Peers []content.PeerID
	// InitialLive is the number of nodes alive at time 0.
	InitialLive int
	Events      []Event
}

// Span returns the timestamp of the last event in milliseconds (0 for an
// empty trace).
func (t *Trace) Span() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Time
}

// Stats summarises a trace for logging and validation.
type Stats struct {
	Queries, ContentAdds, ContentRemoves, Joins, Leaves int
	SpanMS                                              int64
	QueryRatePerSec                                     float64
}

// Stats computes event counts and the realised query arrival rate.
func (t *Trace) Stats() Stats {
	var s Stats
	for i := range t.Events {
		switch t.Events[i].Kind {
		case Query:
			s.Queries++
		case ContentAdd:
			s.ContentAdds++
		case ContentRemove:
			s.ContentRemoves++
		case Join:
			s.Joins++
		case Leave:
			s.Leaves++
		}
	}
	s.SpanMS = t.Span()
	if s.SpanMS > 0 {
		s.QueryRatePerSec = float64(s.Queries) / (float64(s.SpanMS) / 1000)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("trace{q=%d add=%d rm=%d join=%d leave=%d span=%.1fs rate=%.2f/s}",
		s.Queries, s.ContentAdds, s.ContentRemoves, s.Joins, s.Leaves,
		float64(s.SpanMS)/1000, s.QueryRatePerSec)
}

// Config parameterises Build. Defaults follow §IV-B.
type Config struct {
	NumNodes          int     // initial P2P participants (paper: 10,000)
	NumQueries        int     // search requests (paper: 30,000)
	ContentChangeFrac float64 // queries followed by a content change (paper: 0.10)
	NumJoins          int     // node-join events (paper: 1,000)
	NumLeaves         int     // node-departure events (paper: 1,000)
	Lambda            float64 // Poisson arrival rate, requests/second (paper: 8)
	TermsMin          int     // minimum query terms
	TermsMax          int     // maximum query terms
	Seed              uint64
}

// DefaultConfig returns the paper's trace parameters.
func DefaultConfig() Config {
	return Config{
		NumNodes:          10000,
		NumQueries:        30000,
		ContentChangeFrac: 0.10,
		NumJoins:          1000,
		NumLeaves:         1000,
		Lambda:            8,
		TermsMin:          1,
		TermsMax:          3,
		Seed:              1,
	}
}

// Scaled shrinks node and event counts by factor f, preserving rates and
// fractions.
func (c Config) Scaled(f float64) Config {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("trace: scale factor %v out of (0,1]", f))
	}
	c.NumNodes = max(10, int(float64(c.NumNodes)*f))
	c.NumQueries = max(10, int(float64(c.NumQueries)*f))
	c.NumJoins = int(float64(c.NumJoins) * f)
	c.NumLeaves = int(float64(c.NumLeaves) * f)
	return c
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumNodes < 2:
		return fmt.Errorf("trace: NumNodes %d < 2", c.NumNodes)
	case c.NumQueries < 0 || c.NumJoins < 0 || c.NumLeaves < 0:
		return fmt.Errorf("trace: negative event count")
	case c.ContentChangeFrac < 0 || c.ContentChangeFrac > 1:
		return fmt.Errorf("trace: ContentChangeFrac %v out of [0,1]", c.ContentChangeFrac)
	case c.Lambda <= 0:
		return fmt.Errorf("trace: Lambda %v must be positive", c.Lambda)
	case c.TermsMin < 1 || c.TermsMax < c.TermsMin:
		return fmt.Errorf("trace: term bounds [%d,%d] invalid", c.TermsMin, c.TermsMax)
	case c.NumLeaves >= c.NumNodes:
		return fmt.Errorf("trace: NumLeaves %d would drain the %d-node overlay", c.NumLeaves, c.NumNodes)
	}
	return nil
}
