package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"asap/internal/content"
	"asap/internal/overlay"
)

// jsonHeader is the first line of the JSON-lines trace format.
type jsonHeader struct {
	Format      string           `json:"format"`
	Peers       []content.PeerID `json:"peers"`
	InitialLive int              `json:"initial_live"`
	Events      int              `json:"events"`
}

// jsonEvent is one trace event as a JSON line.
type jsonEvent struct {
	T     int64             `json:"t"`
	Kind  string            `json:"kind"`
	Node  overlay.NodeID    `json:"node"`
	Doc   content.DocID     `json:"doc,omitempty"`
	Terms []content.Keyword `json:"terms,omitempty"`
}

const jsonFormat = "asap-trace-jsonl-1"

// EncodeJSON writes the trace as JSON lines — a header object followed by
// one event object per line. The format is for inspection and interop;
// the binary codec is ~6× smaller and faster.
func (t *Trace) EncodeJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonHeader{Format: jsonFormat, Peers: t.Peers, InitialLive: t.InitialLive, Events: len(t.Events)}); err != nil {
		return err
	}
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Kind > Leave {
			return fmt.Errorf("trace: unserializable kind %s at event %d", ev.Kind, i)
		}
		if err := enc.Encode(jsonEvent{T: ev.Time, Kind: ev.Kind.String(), Node: ev.Node, Doc: ev.Doc, Terms: ev.Terms}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSON reads a trace written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr jsonHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: reading JSON header: %w", err)
	}
	if hdr.Format != jsonFormat {
		return nil, fmt.Errorf("trace: unknown JSON format %q", hdr.Format)
	}
	// The same hostile-header rejections as the binary codec: bound every
	// count before it sizes an allocation or a loop, and refuse shapes no
	// encoder produces (events without peers, negative ids).
	if len(hdr.Peers) > 1<<28 {
		return nil, fmt.Errorf("trace: peer count %d exceeds limit %d", len(hdr.Peers), 1<<28)
	}
	for i, p := range hdr.Peers {
		if p < 0 {
			return nil, fmt.Errorf("trace: negative peer id %d at index %d", p, i)
		}
	}
	if hdr.InitialLive < 0 || hdr.InitialLive > len(hdr.Peers) {
		return nil, fmt.Errorf("trace: initial_live %d out of range", hdr.InitialLive)
	}
	if hdr.Events < 0 || hdr.Events > 1<<30 {
		return nil, fmt.Errorf("trace: event count %d exceeds limit %d", hdr.Events, 1<<30)
	}
	if hdr.Events > 0 && len(hdr.Peers) == 0 {
		return nil, fmt.Errorf("trace: %d events but no peers", hdr.Events)
	}
	// Cap the up-front allocation like the binary decoder: the count is
	// untrusted until the events actually parse.
	tr := &Trace{Peers: hdr.Peers, InitialLive: hdr.InitialLive, Events: make([]Event, 0, min(hdr.Events, 4096))}
	prev := int64(0)
	for i := 0; ; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: reading JSON event %d: %w", i, err)
		}
		kind, err := kindByLabel(je.Kind)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if je.T < 0 {
			return nil, fmt.Errorf("trace: event %d: negative time %d", i, je.T)
		}
		if je.T < prev {
			return nil, fmt.Errorf("trace: event %d out of order", i)
		}
		prev = je.T
		if int(je.Node) < 0 || int(je.Node) >= len(hdr.Peers) {
			return nil, fmt.Errorf("trace: event %d: node %d out of range", i, je.Node)
		}
		if uint64(je.Doc) > 1<<31 {
			return nil, fmt.Errorf("trace: event %d: doc %d exceeds limit %d", i, je.Doc, 1<<31)
		}
		if len(je.Terms) > 64 {
			return nil, fmt.Errorf("trace: event %d: term count %d exceeds limit 64", i, len(je.Terms))
		}
		for _, term := range je.Terms {
			if uint64(term) > 1<<31 {
				return nil, fmt.Errorf("trace: event %d: term %d exceeds limit %d", i, term, 1<<31)
			}
		}
		tr.Events = append(tr.Events, Event{Time: je.T, Kind: kind, Node: je.Node, Doc: je.Doc, Terms: je.Terms})
	}
	if hdr.Events != len(tr.Events) {
		return nil, fmt.Errorf("trace: header says %d events, found %d", hdr.Events, len(tr.Events))
	}
	return tr, nil
}

func kindByLabel(label string) (Kind, error) {
	for k := Query; k <= Leave; k++ {
		if k.String() == label {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown event kind %q", label)
}
