package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := buildShared(t)
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if got.InitialLive != tr.InitialLive || len(got.Peers) != len(tr.Peers) || len(got.Events) != len(tr.Events) {
		t.Fatal("header mismatch")
	}
	for i := range tr.Events {
		a, b := tr.Events[i], got.Events[i]
		if a.Time != b.Time || a.Kind != b.Kind || a.Node != b.Node || a.Doc != b.Doc || len(a.Terms) != len(b.Terms) {
			t.Fatalf("event %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestJSONBiggerThanBinary(t *testing.T) {
	tr := buildShared(t)
	var bin, js bytes.Buffer
	if err := tr.Encode(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSON(&js); err != nil {
		t.Fatal(err)
	}
	if js.Len() <= bin.Len() {
		t.Errorf("JSON (%d B) not larger than binary (%d B)?", js.Len(), bin.Len())
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"bad format":    `{"format":"nope","peers":[1],"initial_live":1,"events":0}`,
		"bad live":      `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":5,"events":0}`,
		"bad kind":      `{"format":"asap-trace-jsonl-1","peers":[1,2],"initial_live":1,"events":1}` + "\n" + `{"t":1,"kind":"warp","node":0}`,
		"bad node":      `{"format":"asap-trace-jsonl-1","peers":[1,2],"initial_live":1,"events":1}` + "\n" + `{"t":1,"kind":"query","node":9}`,
		"out of order":  `{"format":"asap-trace-jsonl-1","peers":[1,2],"initial_live":1,"events":2}` + "\n" + `{"t":5,"kind":"query","node":0}` + "\n" + `{"t":1,"kind":"query","node":0}`,
		"count too low": `{"format":"asap-trace-jsonl-1","peers":[1,2],"initial_live":1,"events":3}` + "\n" + `{"t":1,"kind":"query","node":0}`,
		// Hostile headers the binary codec already rejects — parity pins.
		// A negative event count previously panicked in make([]Event, 0, n);
		// a huge one sized a giant allocation straight from the header.
		"negative event count": `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":-1}`,
		"huge event count":     `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":1099511627776}`,
		"events without peers": `{"format":"asap-trace-jsonl-1","peers":[],"initial_live":0,"events":3}`,
		"negative peer id":     `{"format":"asap-trace-jsonl-1","peers":[-7],"initial_live":0,"events":0}`,
		"negative time":        `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":1}` + "\n" + `{"t":-4,"kind":"query","node":0}`,
		"doc overflow":         `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":1}` + "\n" + `{"t":1,"kind":"content-add","node":0,"doc":4294967295}`,
		"term overflow":        `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":1}` + "\n" + `{"t":1,"kind":"query","node":0,"terms":[4294967295]}`,
		"too many terms": `{"format":"asap-trace-jsonl-1","peers":[1],"initial_live":1,"events":1}` + "\n" +
			`{"t":1,"kind":"query","node":0,"terms":[` + strings.Repeat("1,", 64) + `1]}`,
	}
	for name, data := range cases {
		if _, err := DecodeJSON(strings.NewReader(data)); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestKindByLabel(t *testing.T) {
	for k := Query; k <= Leave; k++ {
		got, err := kindByLabel(k.String())
		if err != nil || got != k {
			t.Errorf("kindByLabel(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := kindByLabel("bogus"); err == nil {
		t.Error("bogus label accepted")
	}
}
