package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"asap/internal/content"
	"asap/internal/overlay"
)

// magic identifies the binary trace format, version 1.
var magic = [8]byte{'A', 'S', 'A', 'P', 'T', 'R', '0', '1'}

// Encode writes the trace in a compact binary form: the peer mapping
// followed by delta-timestamped varint event records.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Peers))); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.InitialLive)); err != nil {
		return err
	}
	for _, p := range t.Peers {
		if err := putUvarint(uint64(p)); err != nil {
			return err
		}
	}
	if err := putUvarint(uint64(len(t.Events))); err != nil {
		return err
	}
	prev := int64(0)
	for i := range t.Events {
		ev := &t.Events[i]
		if ev.Time < prev {
			return fmt.Errorf("trace: events out of order at %d (%d < %d)", i, ev.Time, prev)
		}
		if ev.Kind > Leave {
			return fmt.Errorf("trace: unserializable kind %s at event %d", ev.Kind, i)
		}
		if err := putUvarint(uint64(ev.Time - prev)); err != nil {
			return err
		}
		prev = ev.Time
		if err := bw.WriteByte(byte(ev.Kind)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Node)); err != nil {
			return err
		}
		if err := putUvarint(uint64(ev.Doc)); err != nil {
			return err
		}
		if err := putUvarint(uint64(len(ev.Terms))); err != nil {
			return err
		}
		for _, term := range ev.Terms {
			if err := putUvarint(uint64(term)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Decode reads a trace written by Encode.
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("trace: bad magic %q", got)
	}
	readUvarint := func(what string, limit uint64) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("trace: reading %s: %w", what, err)
		}
		if v > limit {
			return 0, fmt.Errorf("trace: %s %d exceeds limit %d", what, v, limit)
		}
		return v, nil
	}

	nPeers, err := readUvarint("peer count", 1<<28)
	if err != nil {
		return nil, err
	}
	initial, err := readUvarint("initial live", nPeers)
	if err != nil {
		return nil, err
	}
	// Counts come from the (possibly corrupt) input, so slices grow by
	// appending against actual data instead of trusting the header with one
	// huge up-front allocation: a short truncated stream then fails on read,
	// not in the allocator.
	tr := &Trace{Peers: make([]content.PeerID, 0, min(int(nPeers), 4096)), InitialLive: int(initial)}
	for i := uint64(0); i < nPeers; i++ {
		p, err := readUvarint("peer id", 1<<31)
		if err != nil {
			return nil, err
		}
		tr.Peers = append(tr.Peers, content.PeerID(p))
	}
	nEvents, err := readUvarint("event count", 1<<30)
	if err != nil {
		return nil, err
	}
	if nEvents > 0 && nPeers == 0 {
		return nil, fmt.Errorf("trace: %d events but no peers", nEvents)
	}
	tr.Events = make([]Event, 0, min(int(nEvents), 4096))
	tm := int64(0)
	for i := uint64(0); i < nEvents; i++ {
		dt, err := readUvarint("time delta", 1<<40)
		if err != nil {
			return nil, err
		}
		if tm += int64(dt); tm < 0 {
			return nil, fmt.Errorf("trace: time overflow at event %d", i)
		}
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading kind: %w", err)
		}
		if Kind(kind) > Leave {
			return nil, fmt.Errorf("trace: invalid kind %d at event %d", kind, i)
		}
		node, err := readUvarint("node", nPeers-1)
		if err != nil {
			return nil, err
		}
		doc, err := readUvarint("doc", 1<<31)
		if err != nil {
			return nil, err
		}
		nTerms, err := readUvarint("term count", 64)
		if err != nil {
			return nil, err
		}
		ev := Event{Time: tm, Kind: Kind(kind), Node: overlay.NodeID(node), Doc: content.DocID(doc)}
		if nTerms > 0 {
			ev.Terms = make([]content.Keyword, nTerms)
			for j := range ev.Terms {
				term, err := readUvarint("term", 1<<31)
				if err != nil {
					return nil, err
				}
				ev.Terms[j] = content.Keyword(term)
			}
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}
