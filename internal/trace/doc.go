// Package trace builds the synthetic query/churn trace the paper's
// simulator replays (§IV-B).
//
// The paper constructs its trace from the eDonkey content snapshot in six
// steps; Build mirrors them:
//
//  1. randomly select 10,000 of the universe's peers (plus a reserve pool
//     for the join events) — all other peers and contents are ignored;
//  2. document classification into 14 categories comes with the universe;
//  3. peer interests and ad topics likewise;
//  4. create 30,000 search requests, 10% of which are followed by a
//     content change (a document addition or removal); emulate network
//     dynamics by inserting 1,000 node-join and 1,000 node-departure
//     events at random positions;
//  5. stamp each query with a Poisson arrival time, λ = 8 requests/second;
//  6. feed the trace to each testing system and replay.
//
// Every query is generated so that "there is at least one matching
// document existing in the system at the request time" — the builder
// tracks node liveness and per-node contents while generating, and only
// emits a query whose target document has a live holder other than the
// requester. A query asks only for documents in the requester's interest
// classes ("a peer only asks for interesting documents").
//
// The trace is a flat, deterministic event list; the simulator replays it
// while maintaining the identical state evolution, so generation-time
// satisfiability holds at replay time too. A compact binary codec
// round-trips traces to disk.
package trace
