package trace

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"asap/internal/content"
	"asap/internal/overlay"
)

// Build generates a trace over the universe following §IV-B. The node⇄peer
// selection, event placement and per-event choices are all driven by
// cfg.Seed, so identical inputs produce identical traces.
func Build(u *content.Universe, cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	needed := cfg.NumNodes + cfg.NumJoins
	if needed > u.NumPeers() {
		return nil, fmt.Errorf("trace: need %d peers, universe has %d", needed, u.NumPeers())
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xa0761d6478bd642f))
	b := &builder{u: u, cfg: cfg, rng: rng}
	b.selectPeers(needed)
	b.placeSkeleton()
	if err := b.fill(); err != nil {
		return nil, err
	}
	return &Trace{Peers: b.peers, InitialLive: cfg.NumNodes, Events: b.events}, nil
}

type builder struct {
	u   *content.Universe
	cfg Config
	rng *rand.Rand

	peers    []content.PeerID // NodeID → PeerID
	skeleton []Event          // times and kinds, details unfilled
	events   []Event

	docsOn      [][]content.DocID       // per node: current shared docs
	docIdx      []map[content.DocID]int // per node: doc → position in docsOn
	live        nodeSet                 // all live nodes
	liveSharers nodeSet                 // live nodes with ≥1 doc
	docsByClass [content.NumClasses][]content.DocID
	nextJoin    overlay.NodeID
}

// selectPeers randomly selects the participant and reserve peers ("we
// randomly select 10,000 peers out of the 37,000 nodes").
func (b *builder) selectPeers(n int) {
	ids := make([]content.PeerID, b.u.NumPeers())
	for i := range ids {
		ids[i] = content.PeerID(i)
	}
	for i := 0; i < n; i++ {
		j := i + b.rng.IntN(len(ids)-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	b.peers = ids[:n:n]
}

// placeSkeleton lays out event kinds and timestamps: Poisson query
// arrivals, content changes pinned right after 10% of queries, and churn
// at uniformly random times.
func (b *builder) placeSkeleton() {
	cfg := b.cfg
	b.skeleton = make([]Event, 0, cfg.NumQueries+cfg.NumJoins+cfg.NumLeaves+int(float64(cfg.NumQueries)*cfg.ContentChangeFrac)+4)
	t := 0.0
	for q := 0; q < cfg.NumQueries; q++ {
		t += b.rng.ExpFloat64() / cfg.Lambda * 1000 // ms
		b.skeleton = append(b.skeleton, Event{Time: int64(t), Kind: Query})
		if b.rng.Float64() < cfg.ContentChangeFrac {
			kind := ContentAdd
			if b.rng.Float64() < 0.5 {
				kind = ContentRemove
			}
			b.skeleton = append(b.skeleton, Event{Time: int64(t), Kind: kind})
		}
	}
	span := int64(t) + 1
	for i := 0; i < cfg.NumJoins; i++ {
		b.skeleton = append(b.skeleton, Event{Time: b.rng.Int64N(span), Kind: Join})
	}
	for i := 0; i < cfg.NumLeaves; i++ {
		b.skeleton = append(b.skeleton, Event{Time: b.rng.Int64N(span), Kind: Leave})
	}
	// Stable sort keeps each content change adjacent to (after) its query.
	sort.SliceStable(b.skeleton, func(i, j int) bool { return b.skeleton[i].Time < b.skeleton[j].Time })
}

// fill walks the skeleton, evolving node/content state and committing
// concrete events. Events that cannot be satisfied (e.g. a Leave when only
// two nodes remain) are dropped rather than invented.
func (b *builder) fill() error {
	cfg := b.cfg
	b.docsOn = make([][]content.DocID, len(b.peers))
	b.docIdx = make([]map[content.DocID]int, len(b.peers))
	b.live.init(len(b.peers))
	b.liveSharers.init(len(b.peers))
	b.nextJoin = overlay.NodeID(cfg.NumNodes)

	for d := 0; d < b.u.NumDocs(); d++ {
		c := b.u.ClassOf(content.DocID(d))
		b.docsByClass[c] = append(b.docsByClass[c], content.DocID(d))
	}

	for n := 0; n < len(b.peers); n++ {
		src := b.u.Peer(b.peers[n]).Docs
		b.docsOn[n] = append([]content.DocID(nil), src...)
		b.docIdx[n] = make(map[content.DocID]int, len(src))
		for i, d := range src {
			b.docIdx[n][d] = i
		}
	}
	for n := 0; n < cfg.NumNodes; n++ {
		b.activate(overlay.NodeID(n))
	}

	b.events = make([]Event, 0, len(b.skeleton))
	for _, sk := range b.skeleton {
		switch sk.Kind {
		case Query:
			if ev, ok := b.makeQuery(sk.Time); ok {
				b.events = append(b.events, ev)
			}
		case ContentAdd:
			if ev, ok := b.makeAdd(sk.Time); ok {
				b.events = append(b.events, ev)
			}
		case ContentRemove:
			if ev, ok := b.makeRemove(sk.Time); ok {
				b.events = append(b.events, ev)
			}
		case Join:
			if int(b.nextJoin) < len(b.peers) {
				node := b.nextJoin
				b.nextJoin++
				b.activate(node)
				b.events = append(b.events, Event{Time: sk.Time, Kind: Join, Node: node})
			}
		case Leave:
			if b.live.len() <= 2 {
				continue
			}
			node := b.live.random(b.rng)
			b.deactivate(node)
			b.events = append(b.events, Event{Time: sk.Time, Kind: Leave, Node: node})
		}
	}
	if got := countKind(b.events, Query); got < cfg.NumQueries*9/10 {
		return fmt.Errorf("trace: only %d of %d queries were satisfiable; universe too sparse", got, cfg.NumQueries)
	}
	return nil
}

func countKind(evs []Event, k Kind) int {
	n := 0
	for i := range evs {
		if evs[i].Kind == k {
			n++
		}
	}
	return n
}

func (b *builder) activate(n overlay.NodeID) {
	b.live.add(n)
	if len(b.docsOn[n]) > 0 {
		b.liveSharers.add(n)
	}
}

func (b *builder) deactivate(n overlay.NodeID) {
	b.live.remove(n)
	b.liveSharers.remove(n)
}

// makeQuery picks a requester and a target document that is (a) in the
// requester's interest classes and (b) live-held by another node, then
// draws the query terms from the target's keywords.
func (b *builder) makeQuery(t int64) (Event, bool) {
	for rTry := 0; rTry < 50; rTry++ {
		req := b.live.random(b.rng)
		interests := b.u.Peer(b.peers[req]).Interests
		for dTry := 0; dTry < 200; dTry++ {
			h := b.liveSharers.random(b.rng)
			if h == req || h < 0 {
				continue
			}
			docs := b.docsOn[h]
			if len(docs) == 0 {
				continue
			}
			d := docs[b.rng.IntN(len(docs))]
			if !interests.Has(b.u.ClassOf(d)) {
				continue
			}
			return Event{Time: t, Kind: Query, Node: req, Doc: d, Terms: b.drawTerms(d)}, true
		}
	}
	return Event{}, false
}

// drawTerms samples TermsMin..TermsMax distinct keywords of doc d; d itself
// matches all of them, so the query is satisfiable by construction.
func (b *builder) drawTerms(d content.DocID) []content.Keyword {
	kws := b.u.Keywords(d)
	n := b.cfg.TermsMin
	if b.cfg.TermsMax > b.cfg.TermsMin {
		n += b.rng.IntN(b.cfg.TermsMax - b.cfg.TermsMin + 1)
	}
	if n > len(kws) {
		n = len(kws)
	}
	perm := b.rng.Perm(len(kws))
	terms := make([]content.Keyword, n)
	for i := 0; i < n; i++ {
		terms[i] = kws[perm[i]]
	}
	sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
	return terms
}

// makeAdd emulates a node starting to share one more interesting document.
func (b *builder) makeAdd(t int64) (Event, bool) {
	for try := 0; try < 100; try++ {
		n := b.live.random(b.rng)
		if n < 0 {
			return Event{}, false
		}
		interests := b.u.Peer(b.peers[n]).Interests
		cls := interests.Classes()
		if len(cls) == 0 {
			continue
		}
		pool := b.docsByClass[cls[b.rng.IntN(len(cls))]]
		if len(pool) == 0 {
			continue
		}
		d := pool[b.rng.IntN(len(pool))]
		if _, dup := b.docIdx[n][d]; dup {
			continue
		}
		b.docIdx[n][d] = len(b.docsOn[n])
		b.docsOn[n] = append(b.docsOn[n], d)
		if b.live.has(n) {
			b.liveSharers.add(n)
		}
		return Event{Time: t, Kind: ContentAdd, Node: n, Doc: d}, true
	}
	return Event{}, false
}

// makeRemove drops one document from a live sharer.
func (b *builder) makeRemove(t int64) (Event, bool) {
	for try := 0; try < 100; try++ {
		n := b.liveSharers.random(b.rng)
		if n < 0 {
			return Event{}, false
		}
		docs := b.docsOn[n]
		if len(docs) == 0 {
			b.liveSharers.remove(n)
			continue
		}
		i := b.rng.IntN(len(docs))
		d := docs[i]
		last := len(docs) - 1
		docs[i] = docs[last]
		b.docIdx[n][docs[i]] = i
		b.docsOn[n] = docs[:last]
		delete(b.docIdx[n], d)
		if last == 0 {
			b.liveSharers.remove(n)
		}
		return Event{Time: t, Kind: ContentRemove, Node: n, Doc: d}, true
	}
	return Event{}, false
}

// nodeSet is an O(1) add/remove/sample set of NodeIDs.
type nodeSet struct {
	items []overlay.NodeID
	pos   []int32 // node → index in items, -1 if absent
}

func (s *nodeSet) init(n int) {
	s.items = s.items[:0]
	s.pos = make([]int32, n)
	for i := range s.pos {
		s.pos[i] = -1
	}
}

func (s *nodeSet) len() int { return len(s.items) }

func (s *nodeSet) has(n overlay.NodeID) bool { return s.pos[n] >= 0 }

func (s *nodeSet) add(n overlay.NodeID) {
	if s.pos[n] >= 0 {
		return
	}
	s.pos[n] = int32(len(s.items))
	s.items = append(s.items, n)
}

func (s *nodeSet) remove(n overlay.NodeID) {
	i := s.pos[n]
	if i < 0 {
		return
	}
	last := len(s.items) - 1
	s.items[i] = s.items[last]
	s.pos[s.items[i]] = i
	s.items = s.items[:last]
	s.pos[n] = -1
}

func (s *nodeSet) random(rng *rand.Rand) overlay.NodeID {
	if len(s.items) == 0 {
		return -1
	}
	return s.items[rng.IntN(len(s.items))]
}
