package overlay

import (
	"math"
	"math/rand/v2"

	"asap/internal/netmodel"
)

// SuperPeerKind is the hierarchical two-tier topology of the paper's
// footnote 3: super peers form an unstructured overlay among themselves
// and every leaf attaches to exactly one super peer. "ASAP can work well
// on hierarchical systems in which only super peers are responsible for
// ad representation, delivery, caching and processing."
const SuperPeerKind Kind = 3

// Default super-peer parameters: roughly one super peer per ten leaves
// (the Gnutella ultrapeer regime) wired at the paper's average degree.
const (
	DefaultSuperFraction = 0.1
	DefaultSuperDegree   = 5.0
)

// NewSuperPeer creates a two-tier topology: ⌈initial·superFrac⌉ randomly
// chosen nodes become super peers connected as a random graph of average
// degree superDeg (plus connectivity repair); every remaining node
// attaches to one uniformly chosen super peer.
func NewSuperPeer(net *netmodel.Network, hosts []netmodel.PhysID, initial int, superFrac, superDeg float64, rng *rand.Rand) *Graph {
	checkInitial(hosts, initial)
	g := newGraph(SuperPeerKind, net, hosts, superDeg)
	for v := 0; v < initial; v++ {
		g.Activate(NodeID(v))
	}

	nSuper := int(math.Ceil(float64(initial) * superFrac))
	if nSuper < 2 {
		nSuper = 2
	}
	perm := rng.Perm(initial)
	supers := make([]NodeID, 0, nSuper)
	for _, v := range perm[:nSuper] {
		g.super[v] = true
		supers = append(supers, NodeID(v))
	}

	// Random backbone among super peers.
	want := int(float64(nSuper) * superDeg / 2)
	for added, tries := 0, 0; added < want && tries < want*30+60; tries++ {
		a := supers[rng.IntN(nSuper)]
		b := supers[rng.IntN(nSuper)]
		if g.AddEdge(a, b) {
			added++
		}
	}
	g.repairSuperBackbone(supers, rng)

	// Leaves attach to one super peer each.
	for _, v := range perm[nSuper:] {
		sp := supers[rng.IntN(nSuper)]
		g.AddEdge(NodeID(v), sp)
		g.parent[v] = sp
	}
	return g
}

// repairSuperBackbone links the backbone's components (considering only
// super-peer nodes) into one.
func (g *Graph) repairSuperBackbone(supers []NodeID, rng *rand.Rand) {
	comp := make(map[NodeID]int, len(supers))
	next := 0
	var stack []NodeID
	for _, s := range supers {
		if _, seen := comp[s]; seen {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if !g.super[w] {
					continue
				}
				if _, seen := comp[w]; !seen {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	if next <= 1 {
		return
	}
	// Bridge each extra component to component 0 via random endpoints.
	var byComp [][]NodeID = make([][]NodeID, next)
	for _, s := range supers {
		byComp[comp[s]] = append(byComp[comp[s]], s)
	}
	for c := 1; c < next; c++ {
		a := byComp[c][rng.IntN(len(byComp[c]))]
		b := byComp[0][rng.IntN(len(byComp[0]))]
		g.AddEdge(a, b)
	}
}

// IsSuper reports whether v is a super peer. Always false on flat
// topologies.
func (g *Graph) IsSuper(v NodeID) bool {
	return g.super != nil && g.super[v]
}

// SuperOf returns the node responsible for v's ads: v itself for super
// peers (and for every node of a flat topology), v's parent super peer
// for leaves, or -1 for a detached leaf.
func (g *Graph) SuperOf(v NodeID) NodeID {
	if g.super == nil || g.super[v] {
		return v
	}
	p := g.parent[v]
	if p >= 0 && g.alive[p] {
		return p
	}
	return -1
}

// LeavesOf returns the live leaves attached to super peer sp; nil on flat
// topologies.
func (g *Graph) LeavesOf(sp NodeID) []NodeID {
	if g.super == nil {
		return nil
	}
	var out []NodeID
	for _, nb := range g.Neighbors(sp) {
		if !g.super[nb] && g.alive[nb] && g.parent[nb] == sp {
			out = append(out, nb)
		}
	}
	return out
}

// Supers returns all live super peers.
func (g *Graph) Supers() []NodeID {
	var out []NodeID
	for v := range g.super {
		if g.super[v] && g.alive[v] {
			out = append(out, NodeID(v))
		}
	}
	return out
}

// joinSuperPeer wires a joining node as a leaf of one random live super
// peer.
func (g *Graph) joinSuperPeer(v NodeID, rng *rand.Rand) []NodeID {
	supers := g.Supers()
	if len(supers) == 0 {
		return nil
	}
	sp := supers[rng.IntN(len(supers))]
	g.AddEdge(v, sp)
	g.parent[v] = sp
	return g.Neighbors(v)
}

// rehomeOrphans re-attaches the leaves orphaned by a departing super peer
// to random surviving super peers, returning the (leaf, newParent) pairs.
func (g *Graph) rehomeOrphans(orphans []NodeID, rng *rand.Rand) []NodeID {
	supers := g.Supers()
	if len(supers) == 0 {
		return nil
	}
	rehomed := make([]NodeID, 0, len(orphans))
	for _, leaf := range orphans {
		if !g.alive[leaf] {
			continue
		}
		sp := supers[rng.IntN(len(supers))]
		g.AddEdge(leaf, sp)
		g.parent[leaf] = sp
		rehomed = append(rehomed, leaf)
	}
	return rehomed
}
