package overlay

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"

	"asap/internal/netmodel"
)

var testNet = netmodel.Generate(netmodel.SmallConfig())

func testHosts(t *testing.T, n int, seed uint64) []netmodel.PhysID {
	t.Helper()
	return testNet.RandomNodes(n, rand.New(rand.NewPCG(seed, 0)))
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Random: "random", PowerLaw: "powerlaw", Crawled: "crawled", Kind(9): "invalid"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if len(Kinds) != 3 {
		t.Errorf("Kinds = %v, want the paper's three topologies", Kinds)
	}
}

func TestRandomTopologyShape(t *testing.T) {
	hosts := testHosts(t, 1200, 1)
	g := NewRandom(testNet, hosts, 1000, 5, rand.New(rand.NewPCG(1, 1)))
	if g.Kind() != Random {
		t.Errorf("Kind = %v", g.Kind())
	}
	if g.LiveCount() != 1000 {
		t.Errorf("LiveCount = %d, want 1000", g.LiveCount())
	}
	if d := g.AvgLiveDegree(); math.Abs(d-5) > 0.5 {
		t.Errorf("AvgLiveDegree = %.2f, want ≈5", d)
	}
	if lc := g.LargestComponent(); lc != 1000 {
		t.Errorf("LargestComponent = %d, want 1000 (connected)", lc)
	}
	// Reserves carry no edges and are dead.
	for v := 1000; v < 1200; v++ {
		if g.Alive(NodeID(v)) || g.Degree(NodeID(v)) != 0 {
			t.Fatalf("reserve node %d live or wired", v)
		}
	}
}

func TestPowerLawTopologyShape(t *testing.T) {
	hosts := testHosts(t, 1000, 2)
	g := NewPowerLaw(testNet, hosts, 1000, 5, 0.74, rand.New(rand.NewPCG(2, 2)))
	if d := g.AvgLiveDegree(); math.Abs(d-5) > 1.2 {
		t.Errorf("AvgLiveDegree = %.2f, want ≈5", d)
	}
	if lc := g.LargestComponent(); lc != 1000 {
		t.Errorf("LargestComponent = %d, want 1000", lc)
	}
	// Heavy tail: the max degree should far exceed the random topology's.
	maxDeg := 0
	for v := 0; v < 1000; v++ {
		if d := g.Degree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 50 {
		t.Errorf("max degree %d, expected rank-power-law hubs (≥50 at n=1000)", maxDeg)
	}
}

func TestCrawledTopologyShape(t *testing.T) {
	hosts := testHosts(t, 1000, 3)
	g := NewCrawled(testNet, hosts, 1000, CrawledAvgDegree, rand.New(rand.NewPCG(3, 3)))
	if d := g.AvgLiveDegree(); math.Abs(d-3.35) > 0.5 {
		t.Errorf("AvgLiveDegree = %.2f, want ≈3.35", d)
	}
	if lc := g.LargestComponent(); lc != 1000 {
		t.Errorf("LargestComponent = %d, want 1000", lc)
	}
	maxDeg := 0
	for v := 0; v < 1000; v++ {
		if d := g.Degree(NodeID(v)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 12 {
		t.Errorf("max degree %d, preferential attachment should grow hubs", maxDeg)
	}
}

func TestNewDispatch(t *testing.T) {
	hosts := testHosts(t, 300, 4)
	for _, k := range Kinds {
		g := New(k, testNet, hosts, 300, rand.New(rand.NewPCG(4, uint64(k))))
		if g.Kind() != k {
			t.Errorf("New(%v).Kind() = %v", k, g.Kind())
		}
		if g.LargestComponent() != 300 {
			t.Errorf("%v topology disconnected", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("New with invalid kind did not panic")
		}
	}()
	New(Kind(9), testNet, hosts, 300, rand.New(rand.NewPCG(0, 0)))
}

func TestAdjacencySymmetricNoSelfNoDup(t *testing.T) {
	hosts := testHosts(t, 600, 5)
	for _, k := range Kinds {
		g := New(k, testNet, hosts, 600, rand.New(rand.NewPCG(5, uint64(k))))
		for v := 0; v < 600; v++ {
			seen := map[NodeID]bool{}
			for _, u := range g.Neighbors(NodeID(v)) {
				if u == NodeID(v) {
					t.Fatalf("%v: self loop at %d", k, v)
				}
				if seen[u] {
					t.Fatalf("%v: duplicate edge %d–%d", k, v, u)
				}
				seen[u] = true
				if !g.hasEdge(u, NodeID(v)) {
					t.Fatalf("%v: asymmetric edge %d→%d", k, v, u)
				}
			}
		}
	}
}

func TestLatencyConsistentWithNet(t *testing.T) {
	hosts := testHosts(t, 100, 6)
	g := NewRandom(testNet, hosts, 100, 5, rand.New(rand.NewPCG(6, 6)))
	for i := 0; i < 50; i++ {
		a, b := NodeID(i), NodeID(99-i)
		want := testNet.Distance(g.Host(a), g.Host(b))
		if got := g.Latency(a, b); got != want {
			t.Fatalf("Latency(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func TestLeaveDetaches(t *testing.T) {
	hosts := testHosts(t, 200, 7)
	g := NewRandom(testNet, hosts, 200, 5, rand.New(rand.NewPCG(7, 7)))
	victim := NodeID(10)
	neighbors := append([]NodeID(nil), g.Neighbors(victim)...)
	if len(neighbors) == 0 {
		t.Fatal("victim has no neighbours; bad test setup")
	}
	before := g.LiveCount()
	g.Leave(victim)
	if g.Alive(victim) {
		t.Error("victim still alive")
	}
	if g.LiveCount() != before-1 {
		t.Errorf("LiveCount = %d, want %d", g.LiveCount(), before-1)
	}
	if g.Degree(victim) != 0 {
		t.Errorf("victim keeps %d edges", g.Degree(victim))
	}
	for _, u := range neighbors {
		for _, w := range g.Neighbors(u) {
			if w == victim {
				t.Fatalf("node %d still links to departed %d", u, victim)
			}
		}
	}
	// Idempotent.
	g.Leave(victim)
	if g.LiveCount() != before-1 {
		t.Error("double Leave changed live count")
	}
}

func TestJoinWires(t *testing.T) {
	hosts := testHosts(t, 300, 8)
	g := NewRandom(testNet, hosts, 250, 5, rand.New(rand.NewPCG(8, 8)))
	rng := rand.New(rand.NewPCG(9, 9))
	joiner := NodeID(260)
	ns := g.Join(joiner, rng)
	if !g.Alive(joiner) {
		t.Fatal("joiner not alive")
	}
	if len(ns) == 0 {
		t.Fatal("joiner got no neighbours")
	}
	if len(ns) > 6 {
		t.Errorf("joiner got %d neighbours, want ≈5", len(ns))
	}
	for _, u := range ns {
		if !g.Alive(u) {
			t.Errorf("joiner wired to dead node %d", u)
		}
		if !g.hasEdge(u, joiner) {
			t.Errorf("join edge %d–%d not symmetric", joiner, u)
		}
	}
	// Joining a live node is a no-op.
	if got := g.Join(joiner, rng); got != nil {
		t.Error("Join on live node returned neighbours")
	}
}

func TestChurnSequenceKeepsInvariants(t *testing.T) {
	hosts := testHosts(t, 500, 10)
	g := NewCrawled(testNet, hosts, 400, CrawledAvgDegree, rand.New(rand.NewPCG(10, 10)))
	rng := rand.New(rand.NewPCG(11, 11))
	joined := 400
	for i := 0; i < 300; i++ {
		if rng.Float64() < 0.5 && joined < 500 {
			g.Join(NodeID(joined), rng)
			joined++
		} else {
			g.Leave(NodeID(rng.IntN(joined)))
		}
	}
	// All invariants: symmetric edges among live nodes, live count sane.
	count := 0
	for v := 0; v < g.N(); v++ {
		if g.Alive(NodeID(v)) {
			count++
		}
		for _, u := range g.Neighbors(NodeID(v)) {
			if !g.hasEdge(u, NodeID(v)) {
				t.Fatalf("asymmetric edge %d–%d after churn", v, u)
			}
		}
	}
	if count != g.LiveCount() {
		t.Errorf("LiveCount = %d, recount = %d", g.LiveCount(), count)
	}
}

func TestDegreeHistogram(t *testing.T) {
	hosts := testHosts(t, 200, 12)
	g := NewRandom(testNet, hosts, 200, 5, rand.New(rand.NewPCG(12, 12)))
	h := g.DegreeHistogram(20)
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 200 {
		t.Errorf("histogram mass %d, want 200", total)
	}
}

func TestGeneratorsPanicOnBadInitial(t *testing.T) {
	hosts := testHosts(t, 10, 13)
	for _, initial := range []int{0, 1, 11} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("initial=%d did not panic", initial)
				}
			}()
			NewRandom(testNet, hosts, initial, 5, rand.New(rand.NewPCG(1, 1)))
		}()
	}
}

func TestPowerLawDegreesCalibration(t *testing.T) {
	degrees := powerLawDegrees(0.74, 5, 10000)
	total := 0
	for i, d := range degrees {
		if d < 1 {
			t.Fatalf("degree %d at rank %d below 1", d, i+1)
		}
		if i > 0 && d > degrees[i-1] {
			t.Fatalf("degrees not decreasing at rank %d", i+1)
		}
		total += d
	}
	mean := float64(total) / 10000
	if math.Abs(mean-5) > 0.5 {
		t.Errorf("calibrated mean degree %.2f, want ≈5", mean)
	}
	if degrees[0] < 100 {
		t.Errorf("top-rank degree %d, want a genuine hub (≥100 at n=10000)", degrees[0])
	}
}

func TestStringer(t *testing.T) {
	hosts := testHosts(t, 100, 14)
	g := NewRandom(testNet, hosts, 100, 5, rand.New(rand.NewPCG(14, 14)))
	if s := g.String(); s == "" {
		t.Error("empty String()")
	}
}

func BenchmarkNewRandom10k(b *testing.B) {
	nw := netmodel.Generate(netmodel.DefaultConfig())
	hosts := nw.RandomNodes(10000, rand.New(rand.NewPCG(1, 0)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = NewRandom(nw, hosts, 10000, 5, rand.New(rand.NewPCG(uint64(i), 0)))
	}
}

// snapshotAdj copies every adjacency list so later mutations can be
// detected.
func snapshotAdj(g *Graph) [][]NodeID {
	out := make([][]NodeID, g.N())
	for v := range out {
		out[v] = append([]NodeID(nil), g.Neighbors(NodeID(v))...)
	}
	return out
}

func sameStructure(a, b *Graph) bool {
	if a.N() != b.N() || a.LiveCount() != b.LiveCount() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		id := NodeID(v)
		if a.Alive(id) != b.Alive(id) || !slices.Equal(a.Neighbors(id), b.Neighbors(id)) {
			return false
		}
	}
	return true
}

func TestCloneIsDeepAndIndependent(t *testing.T) {
	hosts := testHosts(t, 400, 20)
	for _, k := range Kinds {
		g := New(k, testNet, hosts, 350, rand.New(rand.NewPCG(20, uint64(k))))
		c := g.Clone()
		if c.Kind() != g.Kind() || !sameStructure(g, c) {
			t.Fatalf("%v: clone differs from original", k)
		}
		if c.Host(7) != g.Host(7) || c.TargetDegree() != g.TargetDegree() {
			t.Fatalf("%v: clone lost host mapping or degree target", k)
		}
		// Churn the original; the clone must not move.
		before := snapshotAdj(c)
		beforeLive := c.LiveCount()
		rng := rand.New(rand.NewPCG(21, 21))
		for i := 0; i < 50; i++ {
			g.Leave(NodeID(rng.IntN(350)))
		}
		for i := 350; i < 380; i++ {
			g.Join(NodeID(i), rng)
		}
		if c.LiveCount() != beforeLive {
			t.Fatalf("%v: churning original changed clone's live count", k)
		}
		for v := range before {
			if !slices.Equal(before[v], c.Neighbors(NodeID(v))) {
				t.Fatalf("%v: churning original rewired clone at node %d", k, v)
			}
		}
	}
}

// TestCloneReplaysLikeOriginal: the clone carries the original's structural
// RNG state, so identical churn sequences produce identical graphs — the
// property RunMatrix relies on to reuse one generated topology per scheme.
// Super-peer graphs exercise the internal RNG hardest (leaf rehoming on
// super-peer departure draws from it).
func TestCloneReplaysLikeOriginal(t *testing.T) {
	hosts := testHosts(t, 400, 22)
	graphs := map[string]*Graph{
		"crawled":   New(Crawled, testNet, hosts, 350, rand.New(rand.NewPCG(22, 0))),
		"superpeer": NewSuperPeer(testNet, hosts, 350, DefaultSuperFraction, DefaultSuperDegree, rand.New(rand.NewPCG(22, 1))),
	}
	churn := func(g *Graph) {
		rng := rand.New(rand.NewPCG(23, 23))
		joined := 350
		for i := 0; i < 250; i++ {
			if rng.Float64() < 0.5 && joined < 400 {
				g.Join(NodeID(joined), rng)
				joined++
			} else {
				g.Leave(NodeID(rng.IntN(joined)))
			}
		}
	}
	for name, g := range graphs {
		c := g.Clone()
		churn(g)
		churn(c)
		if !sameStructure(g, c) {
			t.Errorf("%s: identical churn diverged between original and clone", name)
		}
		if !slices.Equal(g.TakeRehomed(), c.TakeRehomed()) {
			t.Errorf("%s: rehomed leaves diverged", name)
		}
	}
}

func TestTargetDegree(t *testing.T) {
	hosts := testHosts(t, 50, 40)
	g := NewRandom(testNet, hosts, 50, 5, rand.New(rand.NewPCG(40, 40)))
	if g.TargetDegree() != 5 {
		t.Errorf("TargetDegree = %v, want 5", g.TargetDegree())
	}
}
