package overlay

import "testing"

// TestShardingPartition: for a spread of (n, s) pairs — including s > n,
// s > MaxShards and counts that divide nothing — every node belongs to
// exactly the shard whose Range covers it, ranges tile [0, n) without gap
// or overlap, and sizes differ by at most one.
func TestShardingPartition(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{1, 1}, {10, 1}, {10, 3}, {100, 7}, {1000, 63}, {5, 8}, {40, 200}, {997, 13},
	} {
		sh := NewSharding(tc.n, tc.s)
		s := sh.NumShards()
		if s < 1 || s > MaxShards || s > tc.n {
			t.Fatalf("NewSharding(%d,%d): %d shards out of range", tc.n, tc.s, s)
		}
		minSize, maxSize := tc.n, 0
		var covered NodeID
		for i := 0; i < s; i++ {
			lo, hi := sh.Range(i)
			if lo != covered {
				t.Fatalf("NewSharding(%d,%d): shard %d starts at %d, want %d", tc.n, tc.s, i, lo, covered)
			}
			covered = hi
			size := int(hi - lo)
			minSize, maxSize = min(minSize, size), max(maxSize, size)
			for id := lo; id < hi; id++ {
				if got := sh.ShardOf(id); got != i {
					t.Fatalf("NewSharding(%d,%d): ShardOf(%d) = %d, want %d", tc.n, tc.s, id, got, i)
				}
			}
		}
		if int(covered) != tc.n {
			t.Fatalf("NewSharding(%d,%d): ranges cover [0,%d), want [0,%d)", tc.n, tc.s, covered, tc.n)
		}
		if maxSize-minSize > 1 {
			t.Fatalf("NewSharding(%d,%d): shard sizes range %d..%d, want spread ≤ 1", tc.n, tc.s, minSize, maxSize)
		}
	}
}
