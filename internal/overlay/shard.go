package overlay

// Sharding partitions a graph's node ID space [0, n) into s contiguous
// ranges of near-equal size. Contiguity is what makes the partition useful
// to the sharded replay engine: each shard owns a dense node range, so
// per-shard state is a slice window, not a scatter, and ShardOf is one
// multiply instead of a table lookup.
//
// The partition is a pure function of (n, s): shard i owns
// [i*n/s, (i+1)*n/s). Every node belongs to exactly one shard and the
// sizes differ by at most one, even when s does not divide n (the uneven
// case the S=7 equivalence property exercises).
type Sharding struct {
	n int
	s int
}

// NewSharding builds a partition of n nodes into s shards. s is clamped
// to [1, min(s, n, MaxShards)]: more shards than nodes (or than the
// 63-lane conflict-mask width) would only manufacture empty ranges.
func NewSharding(n, s int) Sharding {
	if s < 1 {
		s = 1
	}
	if s > MaxShards {
		s = MaxShards
	}
	if n > 0 && s > n {
		s = n
	}
	return Sharding{n: n, s: s}
}

// MaxShards bounds the shard count. The replay engine tracks per-batch
// reader/writer lane sets in one uint64 bitmask per node with the top bit
// reserved for barrier-deferred work, so at most 63 lanes exist.
const MaxShards = 63

// NumShards returns the effective shard count after clamping.
func (sh Sharding) NumShards() int { return sh.s }

// NumNodes returns the partitioned ID-space size.
func (sh Sharding) NumNodes() int { return sh.n }

// ShardOf returns the shard owning node id — the inverse of Range's floor
// boundaries, ⌈(id+1)·s/n⌉−1, so the two stay consistent when s does not
// divide n. The caller guarantees 0 ≤ id < NumNodes.
func (sh Sharding) ShardOf(id NodeID) int {
	return int((uint64(id)*uint64(sh.s) + uint64(sh.s) - 1) / uint64(sh.n))
}

// Range returns shard i's node range [lo, hi).
func (sh Sharding) Range(i int) (lo, hi NodeID) {
	return NodeID(uint64(i) * uint64(sh.n) / uint64(sh.s)),
		NodeID(uint64(i+1) * uint64(sh.n) / uint64(sh.s))
}
