package overlay

import (
	"fmt"
	"math"
	"math/rand/v2"

	"asap/internal/netmodel"
)

// Paper topology parameters (§IV-A).
const (
	// DefaultAvgDegree is the average node degree of the random and
	// powerlaw topologies.
	DefaultAvgDegree = 5.0
	// PowerLawAlpha is the magnitude of the powerlaw degree exponent
	// (the paper writes α = -0.74).
	PowerLawAlpha = 0.74
	// CrawledAvgDegree is the average degree of the crawled Limewire
	// topology.
	CrawledAvgDegree = 3.35
)

// New builds a topology of the given kind with the paper's parameters:
// the first initial hosts are live and wired, the rest are reserves for
// mid-run joins.
func New(kind Kind, net *netmodel.Network, hosts []netmodel.PhysID, initial int, rng *rand.Rand) *Graph {
	switch kind {
	case Random:
		return NewRandom(net, hosts, initial, DefaultAvgDegree, rng)
	case PowerLaw:
		return NewPowerLaw(net, hosts, initial, DefaultAvgDegree, PowerLawAlpha, rng)
	case Crawled:
		return NewCrawled(net, hosts, initial, CrawledAvgDegree, rng)
	case SuperPeerKind:
		return NewSuperPeer(net, hosts, initial, DefaultSuperFraction, DefaultSuperDegree, rng)
	default:
		panic(fmt.Sprintf("overlay: unknown kind %d", kind))
	}
}

func checkInitial(hosts []netmodel.PhysID, initial int) {
	if initial <= 1 || initial > len(hosts) {
		panic(fmt.Sprintf("overlay: initial %d out of range (hosts %d)", initial, len(hosts)))
	}
}

// NewRandom creates a uniform random topology: n·avgDeg/2 edges between
// uniformly chosen distinct pairs, then connectivity repair.
func NewRandom(net *netmodel.Network, hosts []netmodel.PhysID, initial int, avgDeg float64, rng *rand.Rand) *Graph {
	checkInitial(hosts, initial)
	g := newGraph(Random, net, hosts, avgDeg)
	for v := 0; v < initial; v++ {
		g.Activate(NodeID(v))
	}
	want := int(float64(initial) * avgDeg / 2)
	for added, tries := 0, 0; added < want && tries < want*30; tries++ {
		a := NodeID(rng.IntN(initial))
		b := NodeID(rng.IntN(initial))
		if g.AddEdge(a, b) {
			added++
		}
	}
	g.repairConnectivity(initial, rng)
	return g
}

// NewPowerLaw creates a topology whose degree sequence follows the
// rank-degree power law measured on Gnutella-class overlays: the node of
// rank r (1 = best connected) has degree C·r^(-alpha), with C calibrated so
// the mean degree hits avgDeg (the paper: α = -0.74, average 5). Ranks are
// assigned to nodes at random, stubs are paired configuration-model style,
// and the graph is simplified and repaired.
func NewPowerLaw(net *netmodel.Network, hosts []netmodel.PhysID, initial int, avgDeg, alpha float64, rng *rand.Rand) *Graph {
	checkInitial(hosts, initial)
	g := newGraph(PowerLaw, net, hosts, avgDeg)
	for v := 0; v < initial; v++ {
		g.Activate(NodeID(v))
	}

	degrees := powerLawDegrees(alpha, avgDeg, initial)
	perm := rng.Perm(initial) // rank → node

	stubs := make([]NodeID, 0, int(float64(initial)*avgDeg)+initial)
	for rank, d := range degrees {
		v := NodeID(perm[rank])
		// Cap a node's degree at initial-1 so a hub can be realised as a
		// simple graph.
		if d > initial-1 {
			d = initial - 1
		}
		for s := 0; s < d; s++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddEdge(stubs[i], stubs[i+1]) // self/duplicate pairs silently dropped
	}
	g.repairConnectivity(initial, rng)
	return g
}

// powerLawDegrees returns the rank-ordered degree targets d_r = C·r^(-alpha)
// for r = 1..n, with C chosen so the mean is avgDeg. Degrees are at least 1.
func powerLawDegrees(alpha, avgDeg float64, n int) []int {
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += math.Pow(float64(r), -alpha)
	}
	c := avgDeg * float64(n) / sum
	out := make([]int, n)
	for r := 1; r <= n; r++ {
		d := int(math.Round(c * math.Pow(float64(r), -alpha)))
		if d < 1 {
			d = 1
		}
		out[r-1] = d
	}
	return out
}

// NewCrawled creates a Limewire-like topology by preferential attachment:
// each arriving node links to ⌈m⌉ or ⌊m⌋ existing nodes (m = avgDeg/2)
// chosen proportionally to current degree, yielding the heavy-tailed,
// sparse shape of real Gnutella crawls.
func NewCrawled(net *netmodel.Network, hosts []netmodel.PhysID, initial int, avgDeg float64, rng *rand.Rand) *Graph {
	checkInitial(hosts, initial)
	g := newGraph(Crawled, net, hosts, avgDeg)
	for v := 0; v < initial; v++ {
		g.Activate(NodeID(v))
	}

	m := avgDeg / 2
	mLo, mHi := int(math.Floor(m)), int(math.Ceil(m))
	pHi := m - math.Floor(m)
	if mLo < 1 {
		mLo = 1
	}

	// Seed triangle.
	seed := 3
	if seed > initial {
		seed = initial
	}
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			g.AddEdge(NodeID(i), NodeID(j))
		}
	}

	// targets holds one entry per edge endpoint: sampling uniformly from
	// it is degree-proportional attachment.
	targets := make([]NodeID, 0, int(float64(initial)*avgDeg))
	for i := 0; i < seed; i++ {
		for _, u := range g.Neighbors(NodeID(i)) {
			_ = u
			targets = append(targets, NodeID(i))
		}
	}
	for v := seed; v < initial; v++ {
		k := mLo
		if rng.Float64() < pHi {
			k = mHi
		}
		for e := 0; e < k; e++ {
			var u NodeID
			for tries := 0; ; tries++ {
				u = targets[rng.IntN(len(targets))]
				if u != NodeID(v) && !g.hasEdge(NodeID(v), u) {
					break
				}
				if tries > 50 {
					u = NodeID(rng.IntN(v))
					break
				}
			}
			if g.AddEdge(NodeID(v), u) {
				targets = append(targets, NodeID(v), u)
			}
		}
	}
	g.repairConnectivity(initial, rng)
	return g
}
