package overlay

import (
	"math/rand/v2"
	"testing"
)

func newSuperGraph(t *testing.T) *Graph {
	t.Helper()
	hosts := testHosts(t, 600, 21)
	return NewSuperPeer(testNet, hosts, 500, DefaultSuperFraction, DefaultSuperDegree, rand.New(rand.NewPCG(21, 21)))
}

func TestSuperPeerShape(t *testing.T) {
	g := newSuperGraph(t)
	if g.Kind() != SuperPeerKind || g.Kind().String() != "superpeer" {
		t.Errorf("Kind = %v / %q", g.Kind(), g.Kind().String())
	}
	supers := g.Supers()
	if len(supers) != 50 {
		t.Errorf("supers = %d, want 10%% of 500", len(supers))
	}
	// Every live leaf has exactly one super-peer parent and that edge
	// exists.
	leaves := 0
	for v := 0; v < 500; v++ {
		n := NodeID(v)
		if g.IsSuper(n) {
			if g.SuperOf(n) != n {
				t.Fatalf("super %d not its own representative", v)
			}
			continue
		}
		leaves++
		sp := g.SuperOf(n)
		if sp < 0 || !g.IsSuper(sp) {
			t.Fatalf("leaf %d has no super parent", v)
		}
		if !g.hasEdge(n, sp) {
			t.Fatalf("leaf %d missing edge to parent %d", v, sp)
		}
		if g.Degree(n) != 1 {
			t.Fatalf("leaf %d degree %d, want 1", v, g.Degree(n))
		}
	}
	if leaves != 450 {
		t.Errorf("leaves = %d, want 450", leaves)
	}
	if lc := g.LargestComponent(); lc != 500 {
		t.Errorf("LargestComponent = %d, want 500 (backbone + leaves connected)", lc)
	}
}

func TestSuperPeerLeavesOf(t *testing.T) {
	g := newSuperGraph(t)
	total := 0
	for _, sp := range g.Supers() {
		for _, leaf := range g.LeavesOf(sp) {
			if g.SuperOf(leaf) != sp {
				t.Fatalf("leaf %d listed under wrong super %d", leaf, sp)
			}
			total++
		}
	}
	if total != 450 {
		t.Errorf("leaves via LeavesOf = %d, want 450", total)
	}
}

func TestSuperPeerJoinAttachesAsLeaf(t *testing.T) {
	g := newSuperGraph(t)
	rng := rand.New(rand.NewPCG(5, 5))
	joiner := NodeID(550)
	ns := g.Join(joiner, rng)
	if len(ns) != 1 {
		t.Fatalf("joiner wired to %d nodes, want exactly one super peer", len(ns))
	}
	if !g.IsSuper(ns[0]) {
		t.Error("joiner attached to a non-super peer")
	}
	if g.SuperOf(joiner) != ns[0] {
		t.Error("parent bookkeeping wrong after join")
	}
}

func TestSuperPeerLeafLeave(t *testing.T) {
	g := newSuperGraph(t)
	var leaf NodeID = -1
	for v := 0; v < 500; v++ {
		if !g.IsSuper(NodeID(v)) {
			leaf = NodeID(v)
			break
		}
	}
	sp := g.SuperOf(leaf)
	g.Leave(leaf)
	if g.SuperOf(leaf) != -1 {
		t.Error("departed leaf still has a representative")
	}
	for _, l := range g.LeavesOf(sp) {
		if l == leaf {
			t.Error("departed leaf still listed under its parent")
		}
	}
	if got := g.TakeRehomed(); len(got) != 0 {
		t.Errorf("leaf departure rehomed %d nodes", len(got))
	}
}

func TestSuperPeerDepartureRehomesLeaves(t *testing.T) {
	g := newSuperGraph(t)
	var victim NodeID = -1
	for _, sp := range g.Supers() {
		if len(g.LeavesOf(sp)) > 0 {
			victim = sp
			break
		}
	}
	if victim < 0 {
		t.Fatal("no super with leaves")
	}
	orphanCount := len(g.LeavesOf(victim))
	g.Leave(victim)

	rehomed := g.TakeRehomed()
	if len(rehomed) != orphanCount {
		t.Fatalf("rehomed %d of %d orphans", len(rehomed), orphanCount)
	}
	for _, leaf := range rehomed {
		sp := g.SuperOf(leaf)
		if sp < 0 || sp == victim || !g.IsSuper(sp) || !g.Alive(sp) {
			t.Fatalf("leaf %d badly rehomed to %d", leaf, sp)
		}
	}
	// TakeRehomed drains.
	if len(g.TakeRehomed()) != 0 {
		t.Error("TakeRehomed did not drain")
	}
}

func TestFlatGraphSuperAccessors(t *testing.T) {
	hosts := testHosts(t, 100, 30)
	g := NewRandom(testNet, hosts, 100, 5, rand.New(rand.NewPCG(30, 30)))
	if g.IsSuper(0) {
		t.Error("flat graph reports super peers")
	}
	if g.SuperOf(5) != 5 {
		t.Error("flat SuperOf must be identity")
	}
	if got := g.TakeRehomed(); len(got) != 0 {
		t.Error("flat graph rehomed nodes")
	}
}
