// Package overlay builds and maintains the logical P2P topologies the
// paper evaluates on (§IV-A):
//
//   - random: connections created uniformly at random with an average node
//     degree of 5;
//   - powerlaw: same average degree, node degrees following a power-law
//     distribution with exponent α = -0.74 (truncated so the mean comes out
//     at the target);
//   - crawled: the paper derives this topology from a crawled Limewire
//     network with average degree 3.35. The crawl is not available, so the
//     generator grows a preferential-attachment graph calibrated to the
//     published average degree and a heavy-tailed degree distribution
//     (DESIGN.md substitution E1).
//
// Every overlay node is pinned to a physical host in the netmodel universe;
// overlay message latency between neighbours is the physical shortest-path
// latency between their hosts.
//
// The graph also supports the churn the trace injects: Leave detaches a
// node ungracefully (its cached state elsewhere simply goes stale, exactly
// the situation ASAP's refresh ads exist for), and Join wires a reserve
// node to randomly chosen live peers.
//
// Mutating calls (Join/Leave) must not race with readers; the simulator
// serialises them between query batches.
package overlay
