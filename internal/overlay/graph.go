package overlay

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"asap/internal/netmodel"
)

// NodeID identifies an overlay node: an index into the participant list,
// 0 ≤ id < N. The trace reserves a suffix of the ID space for nodes that
// join mid-run.
type NodeID int32

// Kind names the three topology families of §IV-A.
type Kind uint8

const (
	Random Kind = iota
	PowerLaw
	Crawled
)

// Kinds lists all topology kinds in paper order.
var Kinds = []Kind{Random, PowerLaw, Crawled}

// KindByName resolves a topology label (including "superpeer") to its
// Kind — the inverse of String, shared by every name-keyed surface
// (cluster Hello validation, the serving-plane configuration).
func KindByName(name string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	if SuperPeerKind.String() == name {
		return SuperPeerKind, nil
	}
	return 0, fmt.Errorf("overlay: unknown topology %q", name)
}

// String returns the paper's topology label.
func (k Kind) String() string {
	switch k {
	case Random:
		return "random"
	case PowerLaw:
		return "powerlaw"
	case Crawled:
		return "crawled"
	case SuperPeerKind:
		return "superpeer"
	default:
		return "invalid"
	}
}

// Graph is a mutable overlay topology over physical hosts. Reads
// (Neighbors, Alive, Latency, the live views) are safe concurrently;
// mutations (Join, Leave, AddEdge) must be externally serialised against
// reads.
//
// Adjacency is stored CSR-style: node v's neighbours live in the flat
// edge arena at edges[off[v] : off[v]+deg[v]], inside a segment of
// capacity segCap[v]. Appends fill the segment in place; when a segment
// is full it relocates to the end of the arena with doubled capacity
// (amortised O(1), the old slots become holes). Element order within a
// segment follows exactly the append/swap-remove history the old
// [][]NodeID rows had, so every neighbour iteration — and therefore every
// RNG draw that consumes one — replays byte-identically.
//
// Alongside the adjacency, the graph maintains packed *live views*:
// liveAdj holds, per node and in adjacency order, only the currently
// alive neighbours (and supAdj, on super-peer graphs, only the alive
// super-peer neighbours). The views share off/segCap with the edge arena
// and are updated incrementally at every mutation — edge insertion
// appends, edge removal and liveness flips rebuild the affected segments
// (O(degree), on the rare churn path) — so delivery and search hot loops
// iterate a pre-filtered slice instead of re-testing Alive per edge.
type Graph struct {
	kind   Kind
	hosts  []netmodel.PhysID
	locs   []netmodel.Loc // hosts resolved once; immutable, shared by clones
	alive  []bool
	live   int
	avgDeg float64
	net    *netmodel.Network
	rng    *rand.Rand // structural randomness (join wiring, leaf rehoming)
	rngSrc *rand.PCG  // rng's source, kept so Clone can snapshot its state

	// CSR adjacency + live views (see type comment).
	edges   []NodeID // adjacency arena
	liveAdj []NodeID // alive neighbours, adjacency order; shares off/segCap
	supAdj  []NodeID // alive super-peer neighbours (SuperPeerKind only)
	off     []int32  // per-node segment start
	deg     []int32  // adjacency length
	liveDeg []int32  // live-view length (liveDeg[v] ≤ deg[v])
	supDeg  []int32  // live-super-view length (nil on flat topologies)
	segCap  []int32  // per-node segment capacity (shared by all arenas)

	// Two-tier state (SuperPeerKind only; nil on flat topologies).
	super       []bool
	parent      []NodeID
	lastRehomed []NodeID
}

// newGraph allocates an overlay of n nodes over the given hosts with no
// edges and everyone dead.
func newGraph(kind Kind, net *netmodel.Network, hosts []netmodel.PhysID, avgDeg float64) *Graph {
	if len(hosts) == 0 {
		panic("overlay: no hosts")
	}
	n := len(hosts)
	src := rand.NewPCG(uint64(n), 0x6a09e667f3bcc908)
	locs := make([]netmodel.Loc, n)
	for i, h := range hosts {
		locs[i] = net.Resolve(h)
	}
	g := &Graph{
		kind:    kind,
		hosts:   hosts,
		locs:    locs,
		alive:   make([]bool, n),
		avgDeg:  avgDeg,
		net:     net,
		rng:     rand.New(src),
		rngSrc:  src,
		off:     make([]int32, n),
		deg:     make([]int32, n),
		liveDeg: make([]int32, n),
		segCap:  make([]int32, n),
	}
	if kind == SuperPeerKind {
		g.super = make([]bool, n)
		g.parent = make([]NodeID, n)
		for i := range g.parent {
			g.parent[i] = -1
		}
		g.supDeg = make([]int32, n)
	}
	return g
}

// Clone returns a structurally independent deep copy: the flat adjacency
// and live-view arenas, liveness and two-tier state are copied; the
// immutable host mapping and physical network are shared. Copying the
// arenas is a constant number of allocations however large the overlay —
// the property that lets one Lab generate each topology once and stamp
// out per-run copies (the old [][]NodeID layout paid one allocation per
// row). The clone's structural RNG resumes from the original's current
// state, so a clone of a freshly generated graph behaves bit-for-bit like
// regenerating it.
func (g *Graph) Clone() *Graph {
	state, err := g.rngSrc.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("overlay: snapshotting rng: %v", err))
	}
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("overlay: restoring rng: %v", err))
	}
	c := &Graph{
		kind:    g.kind,
		hosts:   g.hosts,
		locs:    g.locs,
		alive:   slices.Clone(g.alive),
		live:    g.live,
		avgDeg:  g.avgDeg,
		net:     g.net,
		rng:     rand.New(src),
		rngSrc:  src,
		edges:   slices.Clone(g.edges),
		liveAdj: slices.Clone(g.liveAdj),
		supAdj:  slices.Clone(g.supAdj),
		off:     slices.Clone(g.off),
		deg:     slices.Clone(g.deg),
		liveDeg: slices.Clone(g.liveDeg),
		supDeg:  slices.Clone(g.supDeg),
		segCap:  slices.Clone(g.segCap),
	}
	if g.super != nil {
		c.super = slices.Clone(g.super)
		c.parent = slices.Clone(g.parent)
		c.lastRehomed = slices.Clone(g.lastRehomed)
	}
	return c
}

// Kind returns the topology family.
func (g *Graph) Kind() Kind { return g.kind }

// N returns the total overlay size, including not-yet-joined reserves.
func (g *Graph) N() int { return len(g.off) }

// Alive reports whether v currently participates.
func (g *Graph) Alive(v NodeID) bool { return g.alive[v] }

// LiveCount returns the number of participating nodes.
func (g *Graph) LiveCount() int { return g.live }

// Host returns v's physical host.
func (g *Graph) Host(v NodeID) netmodel.PhysID { return g.hosts[v] }

// Neighbors returns v's adjacency list as a shared view into the edge
// arena; it may include dead nodes, which message forwarding must skip.
// The slice is valid until the next graph mutation.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	o, d := g.off[v], g.deg[v]
	return g.edges[o : o+d : o+d]
}

// LiveNeighbors returns v's currently alive neighbours in adjacency
// order, as a shared view into the live arena — the pre-filtered list
// forwarding hot loops iterate instead of testing Alive per edge. The
// slice is valid until the next graph mutation.
func (g *Graph) LiveNeighbors(v NodeID) []NodeID {
	o, d := g.off[v], g.liveDeg[v]
	return g.liveAdj[o : o+d : o+d]
}

// LiveSuperNeighbors returns v's alive super-peer neighbours in adjacency
// order (nil on flat topologies) — the cache-eligible view hierarchical
// ad delivery iterates. The slice is valid until the next graph mutation.
func (g *Graph) LiveSuperNeighbors(v NodeID) []NodeID {
	if g.supDeg == nil {
		return nil
	}
	o, d := g.off[v], g.supDeg[v]
	return g.supAdj[o : o+d : o+d]
}

// Degree returns the size of v's adjacency list (dead neighbours included).
func (g *Graph) Degree(v NodeID) int { return int(g.deg[v]) }

// Latency returns the physical shortest-path latency in milliseconds
// between two overlay nodes. Hosts are resolved to climb vectors once at
// construction, so each call is two array reads and one O(1) distance.
func (g *Graph) Latency(a, b NodeID) int {
	return g.net.LocDistance(g.locs[a], g.locs[b])
}

// TargetDegree returns the generator's average-degree target; Join uses it
// to size a joining node's connection fan-out.
func (g *Graph) TargetDegree() float64 { return g.avgDeg }

// growSeg relocates v's segment to the end of the arenas with at least
// doubled capacity. All three arenas move together so they keep sharing
// off/segCap.
func (g *Graph) growSeg(v NodeID) {
	newCap := g.segCap[v] * 2
	if newCap < 4 {
		newCap = 4
	}
	newOff := int32(len(g.edges))
	newLen := int(newOff + newCap)
	g.edges = append(g.edges, make([]NodeID, newCap)...)
	g.liveAdj = append(g.liveAdj, make([]NodeID, newCap)...)
	if g.supDeg != nil {
		g.supAdj = append(g.supAdj, make([]NodeID, newCap)...)
	}
	o := g.off[v]
	copy(g.edges[newOff:newLen], g.edges[o:o+g.deg[v]])
	copy(g.liveAdj[newOff:newLen], g.liveAdj[o:o+g.liveDeg[v]])
	if g.supDeg != nil {
		copy(g.supAdj[newOff:newLen], g.supAdj[o:o+g.supDeg[v]])
	}
	g.off[v] = newOff
	g.segCap[v] = newCap
}

// appendNeighbor appends u to v's adjacency segment and, when u is alive,
// to the matching live view(s). Appending keeps the views' invariant for
// free: u is last in adjacency order, so it belongs last in every view.
func (g *Graph) appendNeighbor(v, u NodeID) {
	if g.deg[v] == g.segCap[v] {
		g.growSeg(v)
	}
	o := g.off[v]
	g.edges[o+g.deg[v]] = u
	g.deg[v]++
	if g.alive[u] {
		g.liveAdj[o+g.liveDeg[v]] = u
		g.liveDeg[v]++
		if g.supDeg != nil && g.super[u] {
			g.supAdj[o+g.supDeg[v]] = u
			g.supDeg[v]++
		}
	}
}

// rebuildLive recomputes v's live view(s) from its adjacency segment —
// the repair step after an edge removal or a neighbour liveness flip
// (both rare, churn-path events).
func (g *Graph) rebuildLive(v NodeID) {
	o := g.off[v]
	n, ns := int32(0), int32(0)
	for i := int32(0); i < g.deg[v]; i++ {
		nb := g.edges[o+i]
		if !g.alive[nb] {
			continue
		}
		g.liveAdj[o+n] = nb
		n++
		if g.supDeg != nil && g.super[nb] {
			g.supAdj[o+ns] = nb
			ns++
		}
	}
	g.liveDeg[v] = n
	if g.supDeg != nil {
		g.supDeg[v] = ns
	}
}

// hasEdge reports whether an a–b edge exists.
func (g *Graph) hasEdge(a, b NodeID) bool {
	// Scan the shorter list.
	if g.deg[a] > g.deg[b] {
		a, b = b, a
	}
	for _, x := range g.Neighbors(a) {
		if x == b {
			return true
		}
	}
	return false
}

// AddEdge inserts an undirected edge; duplicate and self edges are
// rejected with a false return.
func (g *Graph) AddEdge(a, b NodeID) bool {
	if a == b || g.hasEdge(a, b) {
		return false
	}
	g.appendNeighbor(a, b)
	g.appendNeighbor(b, a)
	return true
}

// RemoveEdge erases an undirected a–b edge and repairs both live views.
// Missing and self edges are rejected with a false return, as are
// super-peer parent links — a leaf's uplink is structural and rewiring
// must not orphan it.
func (g *Graph) RemoveEdge(a, b NodeID) bool {
	if a == b || !g.hasEdge(a, b) {
		return false
	}
	if g.parent != nil && (g.parent[a] == b || g.parent[b] == a) {
		return false
	}
	g.removeNeighbor(a, b)
	g.removeNeighbor(b, a)
	return true
}

// setAlive flips liveness bookkeeping and repairs the live views of every
// neighbour (a node's own views do not depend on its own liveness).
func (g *Graph) setAlive(v NodeID, up bool) {
	if g.alive[v] == up {
		return
	}
	g.alive[v] = up
	if up {
		g.live++
	} else {
		g.live--
	}
	for _, u := range g.Neighbors(v) {
		g.rebuildLive(u)
	}
}

// Leave detaches v ungracefully: it stops participating and its edges are
// dropped from both endpoints. State cached about v elsewhere (ads!) is
// not touched — that staleness is the phenomenon ASAP's refresh machinery
// addresses. On a super-peer topology, a departing super peer's orphaned
// leaves are immediately re-homed to surviving super peers (the leaves
// notice the broken connection and reconnect); TakeRehomed reports them.
func (g *Graph) Leave(v NodeID) {
	if !g.alive[v] {
		return
	}
	g.setAlive(v, false)
	var orphans []NodeID
	for _, u := range g.Neighbors(v) {
		g.removeNeighbor(u, v)
		if g.super != nil && g.super[v] && !g.super[u] && g.parent[u] == v {
			g.parent[u] = -1
			orphans = append(orphans, u)
		}
	}
	g.deg[v] = 0
	g.liveDeg[v] = 0
	if g.supDeg != nil {
		g.supDeg[v] = 0
	}
	if g.super != nil {
		if g.super[v] {
			g.lastRehomed = append(g.lastRehomed, g.rehomeOrphans(orphans, g.rng)...)
		} else {
			g.parent[v] = -1
		}
	}
}

// removeNeighbor erases v from u's adjacency segment (swap-remove, the
// same order transformation the old slice rows applied) and repairs u's
// live views.
func (g *Graph) removeNeighbor(u, v NodeID) {
	o, d := g.off[u], g.deg[u]
	for i := int32(0); i < d; i++ {
		if g.edges[o+i] == v {
			g.edges[o+i] = g.edges[o+d-1]
			g.deg[u] = d - 1
			g.rebuildLive(u)
			return
		}
	}
}

// TakeRehomed returns and clears the leaves re-homed by super-peer
// departures since the last call; schemes use it to refresh the new
// parents' aggregate ads.
func (g *Graph) TakeRehomed() []NodeID {
	out := g.lastRehomed
	g.lastRehomed = nil
	return out
}

// Join activates v and wires it to round(TargetDegree) randomly chosen live
// peers (fewer if the overlay is smaller). It reports the chosen
// neighbours.
func (g *Graph) Join(v NodeID, rng *rand.Rand) []NodeID {
	if g.alive[v] {
		return nil
	}
	g.setAlive(v, true)
	if g.kind == SuperPeerKind {
		return g.joinSuperPeer(v, rng)
	}
	want := int(g.avgDeg + 0.5)
	if want < 1 {
		want = 1
	}
	for tries := 0; tries < want*20 && g.Degree(v) < want && g.live > 1; tries++ {
		u := NodeID(rng.IntN(g.N()))
		if u == v || !g.alive[u] {
			continue
		}
		g.AddEdge(v, u)
	}
	return g.Neighbors(v)
}

// Activate marks v live without wiring (used when installing the initial
// participant set whose edges the generator already created).
func (g *Graph) Activate(v NodeID) { g.setAlive(v, true) }

// AvgLiveDegree returns the mean adjacency size over live nodes.
func (g *Graph) AvgLiveDegree() float64 {
	if g.live == 0 {
		return 0
	}
	total := 0
	for v := range g.deg {
		if g.alive[v] {
			total += int(g.deg[v])
		}
	}
	return float64(total) / float64(g.live)
}

// DegreeHistogram returns counts of live-node degrees up to maxDeg; the
// last bucket aggregates everything ≥ maxDeg.
func (g *Graph) DegreeHistogram(maxDeg int) []int {
	h := make([]int, maxDeg+1)
	for v := range g.deg {
		if !g.alive[v] {
			continue
		}
		d := int(g.deg[v])
		if d > maxDeg {
			d = maxDeg
		}
		h[d]++
	}
	return h
}

// LargestComponent returns the size of the largest connected component of
// the live subgraph.
func (g *Graph) LargestComponent() int {
	seen := make([]bool, g.N())
	best := 0
	queue := make([]NodeID, 0, 64)
	for s := 0; s < g.N(); s++ {
		if seen[s] || !g.alive[s] {
			continue
		}
		size := 0
		seen[s] = true
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.LiveNeighbors(u) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}

// repairConnectivity links the live components of freshly generated
// topologies into one, by adding one random edge per extra component. It
// assumes all nodes in [0, n) are live.
func (g *Graph) repairConnectivity(n int, rng *rand.Rand) {
	if n == 0 {
		return
	}
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var roots []NodeID
	queue := make([]NodeID, 0, 64)
	next := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		roots = append(roots, NodeID(s))
		comp[s] = next
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(u) {
				if comp[w] == -1 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	for i := 1; i < len(roots); i++ {
		// Bridge each extra component to a random node of component 0's
		// growing union.
		for {
			u := NodeID(rng.IntN(n))
			if comp[u] != comp[roots[i]] {
				g.AddEdge(roots[i], u)
				break
			}
		}
	}
}

func (g *Graph) String() string {
	return fmt.Sprintf("overlay{%s n=%d live=%d avgdeg=%.2f}", g.kind, g.N(), g.live, g.AvgLiveDegree())
}
