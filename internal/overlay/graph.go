package overlay

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"asap/internal/netmodel"
)

// NodeID identifies an overlay node: an index into the participant list,
// 0 ≤ id < N. The trace reserves a suffix of the ID space for nodes that
// join mid-run.
type NodeID int32

// Kind names the three topology families of §IV-A.
type Kind uint8

const (
	Random Kind = iota
	PowerLaw
	Crawled
)

// Kinds lists all topology kinds in paper order.
var Kinds = []Kind{Random, PowerLaw, Crawled}

// String returns the paper's topology label.
func (k Kind) String() string {
	switch k {
	case Random:
		return "random"
	case PowerLaw:
		return "powerlaw"
	case Crawled:
		return "crawled"
	case SuperPeerKind:
		return "superpeer"
	default:
		return "invalid"
	}
}

// Graph is a mutable overlay topology over physical hosts. Reads
// (Neighbors, Alive, Latency) are safe concurrently; mutations (Join,
// Leave, AddEdge) must be externally serialised against reads.
type Graph struct {
	kind   Kind
	adj    [][]NodeID
	hosts  []netmodel.PhysID
	locs   []netmodel.Loc // hosts resolved once; immutable, shared by clones
	alive  []bool
	live   int
	avgDeg float64
	net    *netmodel.Network
	rng    *rand.Rand // structural randomness (join wiring, leaf rehoming)
	rngSrc *rand.PCG  // rng's source, kept so Clone can snapshot its state

	// Two-tier state (SuperPeerKind only; nil on flat topologies).
	super       []bool
	parent      []NodeID
	lastRehomed []NodeID
}

// newGraph allocates an overlay of n nodes over the given hosts with no
// edges and everyone dead.
func newGraph(kind Kind, net *netmodel.Network, hosts []netmodel.PhysID, avgDeg float64) *Graph {
	if len(hosts) == 0 {
		panic("overlay: no hosts")
	}
	src := rand.NewPCG(uint64(len(hosts)), 0x6a09e667f3bcc908)
	locs := make([]netmodel.Loc, len(hosts))
	for i, h := range hosts {
		locs[i] = net.Resolve(h)
	}
	return &Graph{
		kind:   kind,
		adj:    make([][]NodeID, len(hosts)),
		hosts:  hosts,
		locs:   locs,
		alive:  make([]bool, len(hosts)),
		avgDeg: avgDeg,
		net:    net,
		rng:    rand.New(src),
		rngSrc: src,
	}
}

// Clone returns a structurally independent deep copy: adjacency, liveness
// and two-tier state are copied; the immutable host mapping and physical
// network are shared. The clone's structural RNG resumes from the
// original's current state, so a clone of a freshly generated graph
// behaves bit-for-bit like regenerating it — the property that lets one
// Lab generate each topology once and stamp out per-run copies.
func (g *Graph) Clone() *Graph {
	state, err := g.rngSrc.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("overlay: snapshotting rng: %v", err))
	}
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(state); err != nil {
		panic(fmt.Sprintf("overlay: restoring rng: %v", err))
	}
	c := &Graph{
		kind:   g.kind,
		adj:    make([][]NodeID, len(g.adj)),
		hosts:  g.hosts,
		locs:   g.locs,
		alive:  slices.Clone(g.alive),
		live:   g.live,
		avgDeg: g.avgDeg,
		net:    g.net,
		rng:    rand.New(src),
		rngSrc: src,
	}
	for i, row := range g.adj {
		if len(row) > 0 {
			c.adj[i] = slices.Clone(row)
		}
	}
	if g.super != nil {
		c.super = slices.Clone(g.super)
		c.parent = slices.Clone(g.parent)
		c.lastRehomed = slices.Clone(g.lastRehomed)
	}
	return c
}

// Kind returns the topology family.
func (g *Graph) Kind() Kind { return g.kind }

// N returns the total overlay size, including not-yet-joined reserves.
func (g *Graph) N() int { return len(g.adj) }

// Alive reports whether v currently participates.
func (g *Graph) Alive(v NodeID) bool { return g.alive[v] }

// LiveCount returns the number of participating nodes.
func (g *Graph) LiveCount() int { return g.live }

// Host returns v's physical host.
func (g *Graph) Host(v NodeID) netmodel.PhysID { return g.hosts[v] }

// Neighbors returns v's adjacency list as a shared view; it may include
// dead nodes, which message forwarding must skip.
func (g *Graph) Neighbors(v NodeID) []NodeID { return g.adj[v] }

// Degree returns the size of v's adjacency list (dead neighbours included).
func (g *Graph) Degree(v NodeID) int { return len(g.adj[v]) }

// Latency returns the physical shortest-path latency in milliseconds
// between two overlay nodes. Hosts are resolved to climb vectors once at
// construction, so each call is two array reads and one O(1) distance.
func (g *Graph) Latency(a, b NodeID) int {
	return g.net.LocDistance(g.locs[a], g.locs[b])
}

// TargetDegree returns the generator's average-degree target; Join uses it
// to size a joining node's connection fan-out.
func (g *Graph) TargetDegree() float64 { return g.avgDeg }

// hasEdge reports whether an a–b edge exists.
func (g *Graph) hasEdge(a, b NodeID) bool {
	// Scan the shorter list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, x := range g.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// AddEdge inserts an undirected edge; duplicate and self edges are
// rejected with a false return.
func (g *Graph) AddEdge(a, b NodeID) bool {
	if a == b || g.hasEdge(a, b) {
		return false
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return true
}

// setAlive flips liveness bookkeeping.
func (g *Graph) setAlive(v NodeID, up bool) {
	if g.alive[v] == up {
		return
	}
	g.alive[v] = up
	if up {
		g.live++
	} else {
		g.live--
	}
}

// Leave detaches v ungracefully: it stops participating and its edges are
// dropped from both endpoints. State cached about v elsewhere (ads!) is
// not touched — that staleness is the phenomenon ASAP's refresh machinery
// addresses. On a super-peer topology, a departing super peer's orphaned
// leaves are immediately re-homed to surviving super peers (the leaves
// notice the broken connection and reconnect); TakeRehomed reports them.
func (g *Graph) Leave(v NodeID) {
	if !g.alive[v] {
		return
	}
	g.setAlive(v, false)
	var orphans []NodeID
	for _, u := range g.adj[v] {
		g.adj[u] = removeNode(g.adj[u], v)
		if g.super != nil && g.super[v] && !g.super[u] && g.parent[u] == v {
			g.parent[u] = -1
			orphans = append(orphans, u)
		}
	}
	g.adj[v] = g.adj[v][:0]
	if g.super != nil {
		if g.super[v] {
			g.lastRehomed = append(g.lastRehomed, g.rehomeOrphans(orphans, g.rng)...)
		} else {
			g.parent[v] = -1
		}
	}
}

// TakeRehomed returns and clears the leaves re-homed by super-peer
// departures since the last call; schemes use it to refresh the new
// parents' aggregate ads.
func (g *Graph) TakeRehomed() []NodeID {
	out := g.lastRehomed
	g.lastRehomed = nil
	return out
}

// Join activates v and wires it to round(TargetDegree) randomly chosen live
// peers (fewer if the overlay is smaller). It reports the chosen
// neighbours.
func (g *Graph) Join(v NodeID, rng *rand.Rand) []NodeID {
	if g.alive[v] {
		return nil
	}
	g.setAlive(v, true)
	if g.kind == SuperPeerKind {
		return g.joinSuperPeer(v, rng)
	}
	want := int(g.avgDeg + 0.5)
	if want < 1 {
		want = 1
	}
	for tries := 0; tries < want*20 && g.Degree(v) < want && g.live > 1; tries++ {
		u := NodeID(rng.IntN(g.N()))
		if u == v || !g.alive[u] {
			continue
		}
		g.AddEdge(v, u)
	}
	return g.adj[v]
}

// Activate marks v live without wiring (used when installing the initial
// participant set whose edges the generator already created).
func (g *Graph) Activate(v NodeID) { g.setAlive(v, true) }

func removeNode(xs []NodeID, v NodeID) []NodeID {
	for i, x := range xs {
		if x == v {
			xs[i] = xs[len(xs)-1]
			return xs[:len(xs)-1]
		}
	}
	return xs
}

// AvgLiveDegree returns the mean adjacency size over live nodes.
func (g *Graph) AvgLiveDegree() float64 {
	if g.live == 0 {
		return 0
	}
	total := 0
	for v := range g.adj {
		if g.alive[v] {
			total += len(g.adj[v])
		}
	}
	return float64(total) / float64(g.live)
}

// DegreeHistogram returns counts of live-node degrees up to maxDeg; the
// last bucket aggregates everything ≥ maxDeg.
func (g *Graph) DegreeHistogram(maxDeg int) []int {
	h := make([]int, maxDeg+1)
	for v := range g.adj {
		if !g.alive[v] {
			continue
		}
		d := len(g.adj[v])
		if d > maxDeg {
			d = maxDeg
		}
		h[d]++
	}
	return h
}

// LargestComponent returns the size of the largest connected component of
// the live subgraph.
func (g *Graph) LargestComponent() int {
	seen := make([]bool, g.N())
	best := 0
	queue := make([]NodeID, 0, 64)
	for s := 0; s < g.N(); s++ {
		if seen[s] || !g.alive[s] {
			continue
		}
		size := 0
		seen[s] = true
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.adj[u] {
				if !seen[w] && g.alive[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if size > best {
			best = size
		}
	}
	return best
}

// repairConnectivity links the live components of freshly generated
// topologies into one, by adding one random edge per extra component. It
// assumes all nodes in [0, n) are live.
func (g *Graph) repairConnectivity(n int, rng *rand.Rand) {
	if n == 0 {
		return
	}
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var roots []NodeID
	queue := make([]NodeID, 0, 64)
	next := int32(0)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		roots = append(roots, NodeID(s))
		comp[s] = next
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.adj[u] {
				if comp[w] == -1 {
					comp[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	for i := 1; i < len(roots); i++ {
		// Bridge each extra component to a random node of component 0's
		// growing union.
		for {
			u := NodeID(rng.IntN(n))
			if comp[u] != comp[roots[i]] {
				g.AddEdge(roots[i], u)
				break
			}
		}
	}
}

func (g *Graph) String() string {
	return fmt.Sprintf("overlay{%s n=%d live=%d avgdeg=%.2f}", g.kind, g.N(), g.live, g.AvgLiveDegree())
}
