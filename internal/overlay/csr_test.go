package overlay

import (
	"math/rand/v2"
	"slices"
	"testing"

	"asap/internal/netmodel"
)

// referenceLive recomputes v's live view the way the pre-CSR code did:
// a filtered scan of the adjacency list in order.
func referenceLive(g *Graph, v NodeID) []NodeID {
	var out []NodeID
	for _, nb := range g.Neighbors(v) {
		if g.Alive(nb) {
			out = append(out, nb)
		}
	}
	return out
}

func referenceLiveSuper(g *Graph, v NodeID) []NodeID {
	var out []NodeID
	for _, nb := range g.Neighbors(v) {
		if g.Alive(nb) && g.IsSuper(nb) {
			out = append(out, nb)
		}
	}
	return out
}

// checkViews pins the incrementally maintained views against the
// reference scans for every node, including dead and reserve nodes.
func checkViews(t *testing.T, g *Graph, when string) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		id := NodeID(v)
		if want, got := referenceLive(g, id), g.LiveNeighbors(id); !slices.Equal(want, got) {
			t.Fatalf("%s: LiveNeighbors(%d) = %v, want %v (adj %v)", when, v, got, want, g.Neighbors(id))
		}
		if g.Kind() == SuperPeerKind {
			if want, got := referenceLiveSuper(g, id), g.LiveSuperNeighbors(id); !slices.Equal(want, got) {
				t.Fatalf("%s: LiveSuperNeighbors(%d) = %v, want %v", when, v, got, want)
			}
		} else if g.LiveSuperNeighbors(id) != nil {
			t.Fatalf("%s: LiveSuperNeighbors(%d) non-nil on flat topology", when, v)
		}
	}
}

// TestLiveViewMatchesReferenceUnderChurn is the CSR equivalence property
// test: across all three flat topologies plus the super-peer hierarchy,
// the packed live views must equal the old filtered [][]NodeID reference
// scan after every single mutation — joins, ungraceful leaves (the
// overlay's graceful-leave path is the same detach), and super-peer
// departures that trigger leaf rehoming.
func TestLiveViewMatchesReferenceUnderChurn(t *testing.T) {
	hosts := testHosts(t, 400, 31)
	kinds := append(append([]Kind(nil), Kinds...), SuperPeerKind)
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			g := New(k, testNet, hosts, 320, rand.New(rand.NewPCG(31, uint64(k))))
			checkViews(t, g, "fresh")
			rng := rand.New(rand.NewPCG(32, uint64(k)))
			joined := 320
			supersLeft := 0
			for i := 0; i < 300; i++ {
				switch {
				case rng.Float64() < 0.4 && joined < 400:
					g.Join(NodeID(joined), rng)
					joined++
					checkViews(t, g, "after join")
				case k == SuperPeerKind && rng.Float64() < 0.3 && supersLeft < 8:
					// Force super-peer departures so orphan rehoming — the
					// path that rewires many leaves at once — gets exercised.
					if sps := g.Supers(); len(sps) > 2 {
						g.Leave(sps[rng.IntN(len(sps))])
						supersLeft++
						checkViews(t, g, "after super leave")
					}
				default:
					g.Leave(NodeID(rng.IntN(joined)))
					checkViews(t, g, "after leave")
				}
			}
			if k == SuperPeerKind && supersLeft == 0 {
				t.Fatal("churn never removed a super peer; rehoming untested")
			}
			// Cloning mid-churn must preserve the views too.
			checkViews(t, g.Clone(), "clone")
		})
	}
}

// TestCloneAllocsFlat pins the CSR payoff on Clone: copying the flat
// arenas costs a constant number of allocations regardless of overlay
// size (the old [][]NodeID layout paid one per node).
func TestCloneAllocsFlat(t *testing.T) {
	bigNet := netmodel.Generate(netmodel.DefaultConfig())
	small := NewRandom(testNet, testHosts(t, 200, 33), 200, 5, rand.New(rand.NewPCG(33, 0)))
	large := NewRandom(bigNet, bigNet.RandomNodes(3000, rand.New(rand.NewPCG(34, 0))), 3000, 5, rand.New(rand.NewPCG(34, 0)))
	allocs := func(g *Graph) float64 {
		return testing.AllocsPerRun(10, func() { _ = g.Clone() })
	}
	aSmall, aLarge := allocs(small), allocs(large)
	if aSmall != aLarge {
		t.Errorf("Clone allocations scale with graph size: %v at n=200 vs %v at n=3000", aSmall, aLarge)
	}
	if aLarge > 24 {
		t.Errorf("Clone costs %v allocations, want a small constant (≤24)", aLarge)
	}
}
