package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"asap/internal/metrics"
	"asap/internal/transport"
)

var tinySpec = Spec{Scale: "tiny", Scheme: "asap-fld", Topo: "random", Seed: 42}

func runCluster(t *testing.T, tp transport.Transport, spec Spec, daemons int, launch func(i int) NodeConfig) Result {
	t.Helper()
	nw := NewNetwork(tp, spec)
	defer nw.Close()
	for i := 0; i < daemons; i++ {
		cfg := NodeConfig{}
		if launch != nil {
			cfg = launch(i)
		}
		if _, err := nw.AddNode(cfg); err != nil {
			t.Fatalf("adding daemon %d: %v", i, err)
		}
	}
	res, err := nw.RunPlan(Plan{})
	if err != nil {
		t.Fatalf("plan failed after %d batches, %d queries: %v", res.Batches, res.Queries, err)
	}
	return res
}

func assertSummaryEqual(t *testing.T, cluster, sim metrics.Summary) {
	t.Helper()
	a, err := json.Marshal(cluster)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sim)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("cluster summary diverges from the in-memory sim:\n  cluster: %s\n  sim:     %s", a, b)
	}
}

// TestClusterMemEquivalence drives a 3-daemon cluster over the in-memory
// transport through the full tiny trace and requires the summary to equal
// the sequential in-memory sim of the same configuration.
func TestClusterMemEquivalence(t *testing.T) {
	res := runCluster(t, transport.Mem{}, tinySpec, 3, nil)
	want, err := SimBaseline(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryEqual(t, res.Summary, want)
	if !res.Done || res.Queries == 0 {
		t.Fatalf("plan consumed done=%v queries=%d, want the full trace", res.Done, res.Queries)
	}
	checkNet(t, res.Net)
}

// TestClusterTCPEquivalence is the headline acceptance check: three
// daemons on loopback TCP sockets serve the paper trace over real frames
// and still reproduce the in-memory sim byte-for-byte.
func TestClusterTCPEquivalence(t *testing.T) {
	res := runCluster(t, transport.TCP{}, tinySpec, 3, nil)
	want, err := SimBaseline(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryEqual(t, res.Summary, want)
	checkNet(t, res.Net)
}

// checkNet requires that real wire traffic happened and that every
// verification succeeded (any divergence would have failed the plan).
func checkNet(t *testing.T, net []NetStats) {
	t.Helper()
	var tot NetStats
	for _, n := range net {
		tot.AdsOut += n.AdsOut
		tot.AdsVerified += n.AdsVerified
		tot.ConfirmsOut += n.ConfirmsOut
		tot.AdsReqOut += n.AdsReqOut
	}
	if tot.AdsOut == 0 {
		t.Error("no ads crossed the wire")
	}
	if tot.AdsVerified == 0 {
		t.Error("no received ads were verified")
	}
	if tot.ConfirmsOut == 0 {
		t.Error("no confirmations crossed the wire")
	}
	if tot.AdsReqOut == 0 {
		t.Error("no ads requests crossed the wire")
	}
}

// TestClusterBaselineScheme replicates a non-ASAP scheme: no mesh
// exchanges happen (the seam only exists on *core.Scheme), but the
// replicas still step in lockstep and agree with the sim.
func TestClusterBaselineScheme(t *testing.T) {
	spec := Spec{Scale: "tiny", Scheme: "flooding", Topo: "random", Seed: 7}
	res := runCluster(t, transport.Mem{}, spec, 2, nil)
	want, err := SimBaseline(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryEqual(t, res.Summary, want)
	for i, n := range res.Net {
		if n.ConfirmsOut != 0 || n.AdsOut != 0 {
			t.Errorf("daemon %d did wire exchanges under flooding: %+v", i, n)
		}
	}
}

// TestPinnedDaemonRejectsMismatchedHello checks the operator-pin contract:
// a daemon started for one experiment refuses recruitment into another.
func TestPinnedDaemonRejectsMismatchedHello(t *testing.T) {
	nw := NewNetwork(transport.Mem{}, tinySpec)
	defer nw.Close()
	if _, err := nw.AddNode(NodeConfig{Pins: Pins{Scheme: "asap-rw"}}); err != nil {
		t.Fatal(err)
	}
	_, err := nw.RunPlan(Plan{})
	if err == nil || !strings.Contains(err.Error(), "pinned") {
		t.Fatalf("mismatched hello not rejected: %v", err)
	}
}

// TestAsapnodeExec builds the real asapnode binary and runs the cluster
// against three separate OS processes — the daemon as it actually ships.
func TestAsapnodeExec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec-mode cluster in -short")
	}
	bin := filepath.Join(t.TempDir(), "asapnode")
	build := exec.Command("go", "build", "-o", bin, "asap/cmd/asapnode")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build asapnode (no toolchain?): %v\n%s", err, out)
	}

	launch := func(i int) NodeConfig {
		return NodeConfig{Launch: func() (string, error) {
			cmd := exec.Command(bin, "-listen", "127.0.0.1:0", "-scale", tinySpec.Scale, "-seed", fmt.Sprint(tinySpec.Seed))
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				return "", err
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				return "", err
			}
			t.Cleanup(func() {
				cmd.Process.Kill()
				cmd.Wait()
			})
			// The daemon prints its bound address once listening.
			sc := bufio.NewScanner(stdout)
			if !sc.Scan() {
				return "", fmt.Errorf("daemon %d exited before announcing its address", i)
			}
			addr, ok := strings.CutPrefix(sc.Text(), "listening ")
			if !ok {
				return "", fmt.Errorf("unexpected daemon banner %q", sc.Text())
			}
			go func() { // drain any further output
				for sc.Scan() {
				}
			}()
			return addr, nil
		}}
	}

	res := runCluster(t, transport.TCP{}, tinySpec, 3, launch)
	want, err := SimBaseline(tinySpec)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryEqual(t, res.Summary, want)
	checkNet(t, res.Net)
}
