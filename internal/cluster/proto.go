// Package cluster stands up multi-process ASAP overlays: a node daemon
// engine (Engine, the brain of cmd/asapnode) and a declarative harness
// (Network) that launches N daemons, wires them into a full mesh, drives a
// scenario plan — join, warm-up, query batches, graceful leave — and
// asserts that every replica agrees at every step.
//
// # Execution model: lockstep full replication
//
// Every daemon builds the complete deterministic replica — the same lab
// (network, universe, trace) from the same preset and seed, the same
// system, the same scheme — and applies every trace event locally, so all
// replicas hold identical state and the scheme's shared RNG advances
// identically everywhere. Node ownership (a contiguous shard of the node
// ID space per daemon) decides who speaks for a node on the wire:
//
//   - Ads a daemon's own nodes publish are pushed to every peer daemon,
//     which verifies the received bytes against its local replica.
//   - At query time, the scheme's search-side exchanges — content
//     confirmations and ads requests — go over TCP to the daemon owning
//     the contacted node (via the core.Peering seam), and the reply is
//     checked against the local replica's own answer.
//
// Remote answers therefore never change the replay: they are
// cross-replica consistency proofs, and any disagreement fails the run.
// The payoff is that the summary a daemon cluster produces is equal, by
// construction and by assertion, to the in-memory sequential sim of the
// same trace — the equivalence the tests pin. This is stage one of the
// socket layer: real frames, real sockets, real serving paths, with the
// sim as ground truth; partitioned (non-replicated) state is future work.
//
// # Control protocol
//
// The harness holds one control connection per daemon and steps all
// daemons in lockstep: Hello (build the replica) → Peers (dial the mesh)
// → Warmup (attach + warm-up ad broadcast) → repeated Advance (apply
// state events up to the next query run, broadcasting owned ads) and
// Query (execute one query on every replica) → Finish (summarise) → Bye.
// Control payloads are JSON; mesh payloads are the binary wire encodings
// (see internal/transport).
package cluster

import (
	"asap/internal/metrics"
)

// HelloMsg configures a daemon's replica. Index/Nodes place the daemon in
// the cluster: it owns shard Index of Nodes over the node ID space.
type HelloMsg struct {
	Scale  string  `json:"scale"`
	Scheme string  `json:"scheme"`
	Topo   string  `json:"topo"`
	Seed   uint64  `json:"seed"`
	Loss   float64 `json:"loss,omitempty"`
	// Scenario names a registered adversarial scenario (internal/scenario)
	// to stage onto every replica's trace. Only registry names travel on
	// the wire — never scenario files — so all replicas resolve the same
	// act list by construction.
	Scenario string `json:"scenario,omitempty"`
	Index    int    `json:"index"`
	Nodes    int    `json:"nodes"`
}

// HelloOK acknowledges a Hello.
type HelloOK struct {
	Addr     string `json:"addr"` // the daemon's bound listen address
	NumNodes int    `json:"num_nodes"`
}

// PeersMsg lists every daemon's listen address, in daemon-index order.
type PeersMsg struct {
	Addrs []string `json:"addrs"`
}

// WarmupOK acknowledges warm-up completion.
type WarmupOK struct {
	Broadcast int `json:"broadcast"` // owned warm-up ads pushed to peers
}

// QueryRef identifies one query of the current batch; the harness asserts
// every replica reports the identical batch.
type QueryRef struct {
	T     int64    `json:"t"`
	Node  int32    `json:"node"`
	Terms []uint32 `json:"terms"`
}

// AdvanceOK reports the query run the replay stopped at.
type AdvanceOK struct {
	Done      bool       `json:"done"` // trace exhausted; no queries follow
	Broadcast int        `json:"broadcast"`
	Queries   []QueryRef `json:"queries,omitempty"`
}

// QueryMsg asks the daemon to execute query Index of the current batch.
type QueryMsg struct {
	Index int `json:"index"`
}

// QueryOK carries one query's outcome. Owner marks the daemon owning the
// issuing node — the one whose search actually crossed the wire.
type QueryOK struct {
	Result metrics.SearchResult `json:"result"`
	Owner  bool                 `json:"owner"`
}

// NetStats counts a daemon's wire activity (diagnostics; the harness
// asserts the verification counters, never the traffic volumes).
type NetStats struct {
	AdsOut        int64 `json:"ads_out"`        // owned publications pushed
	AdsIn         int64 `json:"ads_in"`         // peer publications received
	AdsVerified   int64 `json:"ads_verified"`   // received ads byte-checked OK
	AdsSuperseded int64 `json:"ads_superseded"` // received ads already outdated locally
	ConfirmsOut   int64 `json:"confirms_out"`   // confirmations sent over the wire
	ConfirmsIn    int64 `json:"confirms_in"`    // confirmations served to peers
	AdsReqOut     int64 `json:"ads_req_out"`    // ads requests sent over the wire
	AdsReqIn      int64 `json:"ads_req_in"`     // ads requests served to peers
}

// SummaryMsg is a daemon's final report.
type SummaryMsg struct {
	Summary metrics.Summary `json:"summary"`
	Net     NetStats        `json:"net"`
}
