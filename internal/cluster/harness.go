package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"asap/internal/metrics"
	"asap/internal/transport"
)

// Spec names the experiment every daemon in a Network replicates.
type Spec struct {
	Scale  string
	Scheme string
	Topo   string
	Seed   uint64
	Loss   float64
	// Scenario optionally names a registered adversarial scenario
	// (internal/scenario) staged onto every replica. Scale/Scheme/Topo may
	// be left empty to inherit the scenario's own run shape; when set they
	// must agree with it.
	Scenario string
}

// NodeConfig describes one daemon to add to a Network.
type NodeConfig struct {
	// Launch starts the daemon and returns its bound listen address (which
	// must be reachable through the network's transport). Nil launches an
	// in-process Engine served on a goroutine — the default, and what the
	// equivalence tests use; the asapnode exec test launches the real
	// binary here instead.
	Launch func() (addr string, err error)
	// Pins restrict the in-process default launch exactly like asapnode
	// command-line flags restrict the daemon. Ignored when Launch is set.
	Pins Pins
}

// Plan is a declarative scenario: the harness always runs the full
// join → warm-up → query batches → graceful-leave sequence; the plan
// bounds it.
type Plan struct {
	// MaxBatches caps how many query runs to execute; 0 runs the whole
	// trace (required for summary equivalence with the in-memory sim).
	MaxBatches int
}

// Result is what a completed plan produced, after every cross-daemon
// equality assertion has passed.
type Result struct {
	Summary metrics.Summary
	Queries int
	Batches int
	Done    bool       // the trace was fully consumed
	Net     []NetStats // per daemon, in index order
}

// Network is the declarative cluster harness: add N daemons, then run a
// plan. It drives all daemons in lockstep over one control connection
// each, asserting after every step that the replicas agree — on query
// batches, on every query result, and on the final summary.
type Network struct {
	tp      transport.Transport
	spec    Spec
	addrs   []string
	ctls    []*transport.Conn
	engines []*Engine // in-process default launches, for cleanup
}

// NewNetwork creates an empty cluster over the given transport backend.
func NewNetwork(tp transport.Transport, spec Spec) *Network {
	return &Network{tp: tp, spec: spec}
}

func (nw *Network) defaultListen() string {
	if _, isTCP := nw.tp.(transport.TCP); isTCP {
		return "127.0.0.1:0"
	}
	return "" // Mem allocates a fresh mem:n address
}

// AddNode launches one daemon and opens its control connection, retrying
// the dial until the daemon is reachable. It returns the daemon's index.
func (nw *Network) AddNode(cfg NodeConfig) (int, error) {
	var addr string
	if cfg.Launch != nil {
		a, err := cfg.Launch()
		if err != nil {
			return 0, err
		}
		addr = a
	} else {
		ln, err := nw.tp.Listen(nw.defaultListen())
		if err != nil {
			return 0, err
		}
		e := NewEngine(nw.tp, ln, cfg.Pins)
		go e.Serve()
		nw.engines = append(nw.engines, e)
		addr = ln.Addr()
	}
	ctl, err := nw.dialRetry(addr)
	if err != nil {
		return 0, fmt.Errorf("daemon at %s never became reachable: %w", addr, err)
	}
	nw.addrs = append(nw.addrs, addr)
	nw.ctls = append(nw.ctls, ctl)
	return len(nw.ctls) - 1, nil
}

func (nw *Network) dialRetry(addr string) (*transport.Conn, error) {
	var err error
	for attempt := 0; attempt < 150; attempt++ {
		var c *transport.Conn
		if c, err = nw.tp.Dial(addr); err == nil {
			return c, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, err
}

// Close tears down the harness side: control connections and any
// in-process daemons still listening. Safe after RunPlan (which already
// said Bye) and after partial failures.
func (nw *Network) Close() {
	for _, c := range nw.ctls {
		c.Close()
	}
	for _, e := range nw.engines {
		e.shutdown()
	}
}

// readReply reads one control reply, decoding a daemon-side MErr into an
// error and anything else into v (when non-nil) after checking the type.
func readReply(c *transport.Conn, want transport.MsgType, v any) error {
	t, p, err := c.ReadFrame()
	if err != nil {
		return err
	}
	if t == transport.MErr {
		var em transport.ErrMsg
		if json.Unmarshal(p, &em) == nil && em.Msg != "" {
			return fmt.Errorf("daemon: %s", em.Msg)
		}
		return fmt.Errorf("daemon error (undecodable payload)")
	}
	if t != want {
		return fmt.Errorf("expected control frame type %d, got %d", want, t)
	}
	if v == nil {
		return nil
	}
	return json.Unmarshal(p, v)
}

// RunPlan drives the scenario: configure every daemon (Hello), wire the
// mesh (Peers), warm up, advance through the trace executing each query
// on every replica, summarise, and say goodbye. Any daemon error, wire
// failure or cross-replica disagreement aborts with a descriptive error.
func (nw *Network) RunPlan(p Plan) (Result, error) {
	n := len(nw.ctls)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster has no daemons")
	}
	// Join: configure each replica with its shard placement.
	for i, c := range nw.ctls {
		h := HelloMsg{Scale: nw.spec.Scale, Scheme: nw.spec.Scheme, Topo: nw.spec.Topo,
			Seed: nw.spec.Seed, Loss: nw.spec.Loss, Scenario: nw.spec.Scenario,
			Index: i, Nodes: n}
		if err := c.WriteJSON(transport.MHello, h); err != nil {
			return Result{}, err
		}
		var ok HelloOK
		if err := readReply(c, transport.MHelloOK, &ok); err != nil {
			return Result{}, fmt.Errorf("daemon %d hello: %w", i, err)
		}
	}
	// Mesh: every daemon dials every other.
	for i, c := range nw.ctls {
		if err := c.WriteJSON(transport.MPeers, PeersMsg{Addrs: nw.addrs}); err != nil {
			return Result{}, err
		}
		if err := readReply(c, transport.MPeersOK, nil); err != nil {
			return Result{}, fmt.Errorf("daemon %d peers: %w", i, err)
		}
	}
	// Warm-up: attach replicas; owned warm-up ads broadcast here.
	for i, c := range nw.ctls {
		if err := c.WriteFrame(transport.MWarmup, nil); err != nil {
			return Result{}, err
		}
		var ok WarmupOK
		if err := readReply(c, transport.MWarmupOK, &ok); err != nil {
			return Result{}, fmt.Errorf("daemon %d warmup: %w", i, err)
		}
	}

	var res Result
	advances := make([]AdvanceOK, n)
	answers := make([]QueryOK, n)
	for p.MaxBatches == 0 || res.Batches < p.MaxBatches {
		for i, c := range nw.ctls {
			if err := c.WriteFrame(transport.MAdvance, nil); err != nil {
				return res, err
			}
			if err := readReply(c, transport.MAdvanceOK, &advances[i]); err != nil {
				return res, fmt.Errorf("daemon %d advance: %w", i, err)
			}
			if i > 0 {
				if err := assertEqual("batch", i, advances[0], advances[i], func(a AdvanceOK) any {
					return struct {
						Done    bool
						Queries []QueryRef
					}{a.Done, a.Queries}
				}); err != nil {
					return res, err
				}
			}
		}
		if advances[0].Done {
			res.Done = true
			break
		}
		res.Batches++
		for qi := range advances[0].Queries {
			owners := 0
			for i, c := range nw.ctls {
				if err := c.WriteJSON(transport.MQuery, QueryMsg{Index: qi}); err != nil {
					return res, err
				}
				if err := readReply(c, transport.MQueryOK, &answers[i]); err != nil {
					return res, fmt.Errorf("daemon %d query %d/%d: %w", i, res.Batches, qi, err)
				}
				if answers[i].Owner {
					owners++
				}
				if i > 0 {
					if err := assertEqual("query result", i, answers[0], answers[i], func(q QueryOK) any {
						return q.Result
					}); err != nil {
						return res, err
					}
				}
			}
			if owners != 1 {
				return res, fmt.Errorf("query %d/%d owned by %d daemons, want exactly 1", res.Batches, qi, owners)
			}
			res.Queries++
		}
	}

	// Summarise and assert every replica converged to the same run.
	sums := make([]SummaryMsg, n)
	for i, c := range nw.ctls {
		if err := c.WriteFrame(transport.MFinish, nil); err != nil {
			return res, err
		}
		if err := readReply(c, transport.MSummary, &sums[i]); err != nil {
			return res, fmt.Errorf("daemon %d finish: %w", i, err)
		}
		res.Net = append(res.Net, sums[i].Net)
		if i > 0 {
			if err := assertEqual("summary", i, sums[0], sums[i], func(s SummaryMsg) any {
				return s.Summary
			}); err != nil {
				return res, err
			}
		}
	}
	res.Summary = sums[0].Summary

	// Graceful leave.
	for i, c := range nw.ctls {
		if err := c.WriteFrame(transport.MBye, nil); err != nil {
			return res, err
		}
		if err := readReply(c, transport.MByeOK, nil); err != nil {
			return res, fmt.Errorf("daemon %d bye: %w", i, err)
		}
	}
	return res, nil
}

// assertEqual compares daemon i's view against daemon 0's via a JSON
// projection, producing a readable divergence error on mismatch.
func assertEqual[T any](what string, i int, ref, got T, project func(T) any) error {
	a, err := json.Marshal(project(ref))
	if err != nil {
		return err
	}
	b, err := json.Marshal(project(got))
	if err != nil {
		return err
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("replica divergence: daemon %d reports a different %s than daemon 0:\n  daemon 0: %s\n  daemon %d: %s",
			i, what, a, i, b)
	}
	return nil
}
