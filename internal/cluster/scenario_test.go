package cluster

import (
	"testing"

	"asap/internal/scenario"
	"asap/internal/transport"
)

// TestClusterScenarioPartitionHeal drives the partition-heal adversarial
// scenario through the lockstep daemon harness: two daemons on in-memory
// pipes stage the scenario from its wire name, replay the partition and
// the heal in lockstep, and must produce the exact summary the in-memory
// sim produces for the same scenario — the socket layer and the scenario
// engine composing without perturbing each other.
func TestClusterScenarioPartitionHeal(t *testing.T) {
	spec := Spec{Seed: 1, Scenario: "partition-heal"}
	res := runCluster(t, transport.Mem{}, spec, 2, nil)
	want, err := SimBaseline(spec)
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryEqual(t, res.Summary, want)
	if !res.Done || res.Queries == 0 {
		t.Fatalf("plan consumed done=%v queries=%d, want the full trace", res.Done, res.Queries)
	}
	if res.Summary.Drops == 0 {
		t.Error("the partition dropped nothing in the cluster replay")
	}

	// Cross-check against the scenario package's own replay of the same
	// built-in: three independent constructions of one run must agree.
	sn, err := scenario.ByName("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.Run(sn, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSummaryEqual(t, res.Summary, direct.Summary)
}

// TestHelloRejectsContradictoryScenario pins the wire-side validation: a
// hello that names a scenario but contradicts its run shape is refused.
func TestHelloRejectsContradictoryScenario(t *testing.T) {
	if _, _, _, err := buildReplica(HelloMsg{
		Scale: "tiny", Scheme: "flooding", Topo: "random",
		Seed: 1, Scenario: "partition-heal", Nodes: 1,
	}); err == nil {
		t.Error("contradictory scenario hello accepted")
	}
	if _, _, _, err := buildReplica(HelloMsg{Seed: 1, Scenario: "no-such", Nodes: 1}); err == nil {
		t.Error("unknown scenario hello accepted")
	}
}
