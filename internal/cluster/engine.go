package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/experiments"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/scenario"
	"asap/internal/sim"
	"asap/internal/trace"
	"asap/internal/transport"
)

// Ad kinds on the mesh wire (transport.AdMsg.Kind).
const (
	adKindFull  = 0
	adKindPatch = 1
)

// Pins are operator-fixed configuration values (asapnode command-line
// flags): a Hello that disagrees with a pinned value is rejected, so a
// daemon started for one experiment cannot be pulled into another.
type Pins struct {
	Scale   string
	Scheme  string
	Topo    string
	Seed    uint64
	HasSeed bool // Seed was explicitly set (0 is a valid seed)
}

// Engine is one asapnode daemon: a single listener serving both the
// harness control session and inbound mesh peers, over a full local
// replica of the configured run. See the package comment for the
// execution model.
type Engine struct {
	tp   transport.Transport
	ln   transport.Listener
	pins Pins

	// now is the replay clock mesh connections charge traffic to; -1
	// (warm-up) until the stepper exists. Atomic: connection goroutines
	// read it while the control goroutine steps the replay.
	now atomic.Int64

	// recPub republishes rec for goroutines outside the control session
	// (the -metrics endpoint polls it).
	recPub atomic.Pointer[obs.Recorder]

	// mu guards the inbound publication queue and the failure latch.
	mu      sync.Mutex
	pending []transport.AdMsg
	failErr error

	// Control-goroutine state (one control session per daemon).
	helloed  bool
	lab      *experiments.Lab
	sys      *sim.System
	sch      sim.Scheme
	asap     *core.Scheme // nil for baseline schemes (no wire exchanges)
	rec      *obs.Recorder
	st       *sim.Stepper
	shard    overlay.Sharding
	index    int
	peers    []*transport.Conn // by daemon index; nil at own slot
	outAds   []transport.AdMsg // owned publications awaiting broadcast
	batch    []*trace.Event
	curOwned bool // the query being executed is owned by this daemon
	wbuf     []byte

	adsOut, adsIn, adsVerified, adsSuperseded atomic.Int64
	confirmsOut, confirmsIn                   atomic.Int64
	adsReqOut, adsReqIn                       atomic.Int64
}

// NewEngine wraps a bound listener in a daemon engine. tp dials the mesh;
// it must be the same backend the listener came from.
func NewEngine(tp transport.Transport, ln transport.Listener, pins Pins) *Engine {
	e := &Engine{tp: tp, ln: ln, pins: pins}
	e.now.Store(-1)
	return e
}

// Addr returns the engine's bound listen address.
func (e *Engine) Addr() string { return e.ln.Addr() }

// Recorder returns the engine's observability recorder — nil until a
// harness Hello configures the replica. Safe for concurrent use: the
// asapnode -metrics endpoint polls it from its own goroutine.
func (e *Engine) Recorder() *obs.Recorder { return e.recPub.Load() }

// Serve accepts connections until the listener closes (the Bye handshake,
// or an external Close). The first frame routes each connection: a Hello
// starts the control session, a PeerHello starts a mesh serving loop.
func (e *Engine) Serve() error {
	for {
		c, err := e.ln.Accept()
		if err != nil {
			return nil // listener closed: clean shutdown
		}
		go e.serveConn(c)
	}
}

func (e *Engine) serveConn(c *transport.Conn) {
	t, payload, err := c.ReadFrame()
	if err != nil {
		c.Close()
		return
	}
	switch t {
	case transport.MHello:
		e.control(c, payload)
	case transport.MPeerHello:
		e.serveMesh(c)
	default:
		c.WriteJSON(transport.MErr, transport.ErrMsg{Msg: fmt.Sprintf("unexpected first frame type %d", t)})
		c.Close()
	}
}

// control runs the harness session: one request, one reply, in lockstep.
func (e *Engine) control(c *transport.Conn, hello []byte) {
	defer c.Close()
	reply := func(t transport.MsgType, v any, err error) bool {
		if err == nil {
			e.mu.Lock()
			err = e.failErr
			e.mu.Unlock()
		}
		if err != nil {
			c.WriteJSON(transport.MErr, transport.ErrMsg{Msg: err.Error()})
			return false
		}
		return c.WriteJSON(t, v) == nil
	}
	ok, err := e.handleHello(hello)
	if !reply(transport.MHelloOK, ok, err) {
		return
	}
	for {
		t, p, err := c.ReadFrame()
		if err != nil {
			return
		}
		switch t {
		case transport.MPeers:
			if !reply(transport.MPeersOK, struct{}{}, e.handlePeers(p)) {
				return
			}
		case transport.MWarmup:
			ok, err := e.handleWarmup()
			if !reply(transport.MWarmupOK, ok, err) {
				return
			}
		case transport.MAdvance:
			ok, err := e.handleAdvance()
			if !reply(transport.MAdvanceOK, ok, err) {
				return
			}
		case transport.MQuery:
			ok, err := e.handleQuery(p)
			if !reply(transport.MQueryOK, ok, err) {
				return
			}
		case transport.MFinish:
			ok, err := e.handleFinish()
			if !reply(transport.MSummary, ok, err) {
				return
			}
		case transport.MBye:
			c.WriteJSON(transport.MByeOK, struct{}{})
			e.shutdown()
			return
		default:
			reply(0, nil, fmt.Errorf("unexpected control frame type %d", t))
			return
		}
	}
}

func (e *Engine) shutdown() {
	for _, pc := range e.peers {
		if pc != nil {
			pc.Close()
		}
	}
	e.ln.Close()
}

func (e *Engine) fail(err error) {
	e.mu.Lock()
	if e.failErr == nil {
		e.failErr = err
	}
	e.mu.Unlock()
}

// buildReplica constructs the deterministic (lab, system, scheme) triple
// for a Hello — the exact construction Lab.run performs, shared with
// SimBaseline so daemon replicas and the in-memory reference run are the
// same by construction.
func buildReplica(h HelloMsg) (*experiments.Lab, *sim.System, sim.Scheme, error) {
	var sn scenario.Scenario
	if h.Scenario != "" {
		var err error
		sn, err = scenario.ByName(h.Scenario)
		if err != nil {
			return nil, nil, nil, err
		}
		// The scenario is authoritative for its run shape: unset hello
		// fields inherit from it, contradictions are rejected, so replicas
		// can never stage the same scenario over different runs.
		if h.Scale == "" {
			h.Scale = sn.Scale
		}
		if h.Scheme == "" {
			h.Scheme = sn.Scheme
		}
		if h.Topo == "" {
			h.Topo = sn.Topo
		}
		if h.Scale != sn.Scale || h.Scheme != sn.Scheme || h.Topo != sn.Topo {
			return nil, nil, nil, fmt.Errorf("hello %s/%s/%s contradicts scenario %s (%s/%s/%s)",
				h.Scale, h.Scheme, h.Topo, sn.Name, sn.Scale, sn.Scheme, sn.Topo)
		}
		if h.Loss == 0 {
			h.Loss = sn.Loss
		}
	}
	sc, err := experiments.ByName(h.Scale)
	if err != nil {
		return nil, nil, nil, err
	}
	sc.Seed = h.Seed
	if h.Scenario == "" && h.Loss > 0 {
		sc.LossRate = h.Loss
	}
	kind, err := parseKind(h.Topo)
	if err != nil {
		return nil, nil, nil, err
	}
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return nil, nil, nil, err
	}
	var st *scenario.Staged
	if h.Scenario != "" {
		sn.Seed = h.Seed
		sn.Loss = h.Loss
		if st, err = scenario.Stage(sn, lab); err != nil {
			return nil, nil, nil, err
		}
	}
	sys := sim.NewSystem(lab.U, lab.Tr, kind, lab.Net, sc.Seed)
	if st != nil {
		// The staged Install owns the fault plane (loss and partitions)
		// and the act director; sc.LossRate stayed 0 above.
		st.Install(sys, h.Seed, h.Loss)
	} else if sc.LossRate > 0 {
		sys.SetFaults(faults.New(faults.Config{Seed: sc.Seed, LossRate: sc.LossRate}))
	}
	sch, err := lab.NewScheme(h.Scheme)
	if err != nil {
		return nil, nil, nil, err
	}
	return lab, sys, sch, nil
}

func parseKind(name string) (overlay.Kind, error) {
	return overlay.KindByName(name)
}

func (e *Engine) handleHello(payload []byte) (HelloOK, error) {
	var h HelloMsg
	if err := json.Unmarshal(payload, &h); err != nil {
		return HelloOK{}, err
	}
	if e.helloed {
		return HelloOK{}, fmt.Errorf("daemon already configured")
	}
	if err := e.pins.check(h); err != nil {
		return HelloOK{}, err
	}
	if h.Nodes < 1 || h.Index < 0 || h.Index >= h.Nodes {
		return HelloOK{}, fmt.Errorf("bad cluster placement index=%d nodes=%d", h.Index, h.Nodes)
	}
	lab, sys, sch, err := buildReplica(h)
	if err != nil {
		return HelloOK{}, err
	}
	e.helloed = true
	e.lab, e.sys, e.sch = lab, sys, sch
	e.rec = obs.NewRecorder(int(lab.Tr.Span()/1000) + 2)
	e.recPub.Store(e.rec)
	sys.SetObs(e.rec)
	e.index = h.Index
	e.shard = overlay.NewSharding(sys.NumNodes(), h.Nodes)
	e.peers = make([]*transport.Conn, h.Nodes)
	if a, isASAP := sch.(*core.Scheme); isASAP {
		e.asap = a
		a.SetPeering(e)
		a.SetAdObserver(e.observeAd)
	}
	return HelloOK{Addr: e.ln.Addr(), NumNodes: sys.NumNodes()}, nil
}

func (p Pins) check(h HelloMsg) error {
	if p.Scale != "" && p.Scale != h.Scale {
		return fmt.Errorf("daemon pinned to -scale %s, hello wants %s", p.Scale, h.Scale)
	}
	if p.Scheme != "" && p.Scheme != h.Scheme {
		return fmt.Errorf("daemon pinned to -scheme %s, hello wants %s", p.Scheme, h.Scheme)
	}
	if p.Topo != "" && p.Topo != h.Topo {
		return fmt.Errorf("daemon pinned to -topo %s, hello wants %s", p.Topo, h.Topo)
	}
	if p.HasSeed && p.Seed != h.Seed {
		return fmt.Errorf("daemon pinned to -seed %d, hello wants %d", p.Seed, h.Seed)
	}
	return nil
}

func (e *Engine) handlePeers(payload []byte) error {
	if !e.helloed {
		return fmt.Errorf("peers before hello")
	}
	var pm PeersMsg
	if err := json.Unmarshal(payload, &pm); err != nil {
		return err
	}
	if len(pm.Addrs) != len(e.peers) {
		return fmt.Errorf("got %d peer addrs, cluster has %d daemons", len(pm.Addrs), len(e.peers))
	}
	for j, addr := range pm.Addrs {
		if j == e.index {
			continue
		}
		pc, err := e.tp.Dial(addr)
		if err != nil {
			return fmt.Errorf("dialing daemon %d at %s: %w", j, addr, err)
		}
		pc.SetRecorder(e.rec, e.now.Load)
		if err := pc.WriteJSON(transport.MPeerHello, HelloMsg{Index: e.index}); err != nil {
			return err
		}
		e.peers[j] = pc
	}
	return nil
}

func (e *Engine) handleWarmup() (WarmupOK, error) {
	if !e.helloed {
		return WarmupOK{}, fmt.Errorf("warmup before hello")
	}
	if e.st != nil {
		return WarmupOK{}, fmt.Errorf("warmup already done")
	}
	// NewStepper attaches the scheme: the warm-up ad distribution runs here
	// and the observer queues every owned publication.
	e.st = sim.NewStepper(e.sys, e.sch, 0)
	e.now.Store(e.st.Now())
	n, err := e.flushAds()
	if err == nil {
		// Ads from peers that warmed up before us verify against our own
		// freshly attached replica.
		err = e.verifyPending()
	}
	return WarmupOK{Broadcast: n}, err
}

func (e *Engine) handleAdvance() (AdvanceOK, error) {
	if e.st == nil {
		return AdvanceOK{}, fmt.Errorf("advance before warmup")
	}
	e.batch = e.st.NextBatch()
	e.now.Store(e.st.Now())
	n, err := e.flushAds()
	if err != nil {
		return AdvanceOK{}, err
	}
	// Verify AFTER stepping: peers earlier in the harness round have
	// already advanced through the same events, so their pushes describe
	// publications this replica has just (re)made itself. Pushes from
	// peers later in the round arrive while we idle and are checked at the
	// next barrier (first query, next advance, or finish).
	if err := e.verifyPending(); err != nil {
		return AdvanceOK{}, err
	}
	ok := AdvanceOK{Done: e.batch == nil, Broadcast: n}
	for _, ev := range e.batch {
		terms := make([]uint32, len(ev.Terms))
		for i, t := range ev.Terms {
			terms[i] = uint32(t)
		}
		ok.Queries = append(ok.Queries, QueryRef{T: ev.Time, Node: int32(ev.Node), Terms: terms})
	}
	return ok, nil
}

func (e *Engine) handleQuery(payload []byte) (QueryOK, error) {
	var q QueryMsg
	if err := json.Unmarshal(payload, &q); err != nil {
		return QueryOK{}, err
	}
	if e.st == nil {
		return QueryOK{}, fmt.Errorf("query before warmup")
	}
	if q.Index < 0 || q.Index >= len(e.batch) {
		return QueryOK{}, fmt.Errorf("query index %d outside batch of %d", q.Index, len(e.batch))
	}
	if err := e.verifyPending(); err != nil {
		return QueryOK{}, err
	}
	ev := e.batch[q.Index]
	// Every replica executes every query (keeping caches and stats in
	// lockstep); only the owner's execution crosses the wire.
	e.curOwned = e.owns(ev.Node)
	r := e.sch.Search(ev)
	e.st.Record(ev, r)
	return QueryOK{Result: r, Owner: e.curOwned}, nil
}

func (e *Engine) handleFinish() (SummaryMsg, error) {
	if e.st == nil {
		return SummaryMsg{}, fmt.Errorf("finish before warmup")
	}
	if err := e.verifyPending(); err != nil {
		return SummaryMsg{}, err
	}
	sum := e.st.Finish()
	return SummaryMsg{Summary: sum, Net: NetStats{
		AdsOut:        e.adsOut.Load(),
		AdsIn:         e.adsIn.Load(),
		AdsVerified:   e.adsVerified.Load(),
		AdsSuperseded: e.adsSuperseded.Load(),
		ConfirmsOut:   e.confirmsOut.Load(),
		ConfirmsIn:    e.confirmsIn.Load(),
		AdsReqOut:     e.adsReqOut.Load(),
		AdsReqIn:      e.adsReqIn.Load(),
	}}, nil
}

// owns reports whether this daemon speaks for node n on the wire.
func (e *Engine) owns(n overlay.NodeID) bool { return e.shard.ShardOf(n) == e.index }

// observeAd is the core.AdObserver hook: owned publications queue for
// broadcast at the next step barrier. Runner thread (control goroutine);
// the pooled patch buffer must be encoded before returning.
func (e *Engine) observeAd(src overlay.NodeID, version uint16, topics content.ClassSet, filter *bloom.Filter, patch *bloom.Patch) {
	if !e.owns(src) || len(e.peers) <= 1 {
		return
	}
	m := transport.AdMsg{Src: uint32(src), Version: version, Topics: uint16(topics), Full: filter.EncodeWire()}
	if patch != nil {
		m.Kind = adKindPatch
		m.Patch = patch.Encode()
	}
	e.outAds = append(e.outAds, m)
}

// flushAds pushes every queued owned publication to every peer, awaiting
// each ack — so once the harness has collected this step's reply from all
// daemons, every broadcast sits in its receivers' pending queues.
func (e *Engine) flushAds() (int, error) {
	ads := e.outAds
	e.outAds = e.outAds[:0]
	for i := range ads {
		e.wbuf = ads[i].Encode(e.wbuf[:0])
		for j, pc := range e.peers {
			if pc == nil {
				continue
			}
			if err := pc.WriteFrame(transport.MAd, e.wbuf); err != nil {
				return 0, fmt.Errorf("pushing ad to daemon %d: %w", j, err)
			}
			t, _, err := pc.ReadFrame()
			if err != nil {
				return 0, fmt.Errorf("awaiting ad ack from daemon %d: %w", j, err)
			}
			if t != transport.MAdAck {
				return 0, fmt.Errorf("daemon %d answered ad with frame type %d", j, t)
			}
		}
		e.adsOut.Add(1)
	}
	return len(ads), nil
}

// verifyPending checks every publication received since the last barrier
// against the local replica: in lockstep the local scheme published the
// identical snapshot, so the received bytes must match it exactly. A
// version the local replica has already moved past is counted as
// superseded (the publisher sent several updates in one step) and skipped.
func (e *Engine) verifyPending() error {
	e.mu.Lock()
	pending := e.pending
	e.pending = nil
	e.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	if e.asap == nil {
		return fmt.Errorf("received %d ad pushes under a baseline scheme", len(pending))
	}
	for _, m := range pending {
		local, ok := e.asap.PublishedAd(overlay.NodeID(m.Src))
		if !ok {
			return fmt.Errorf("replica divergence: peer advertised node %d, which published nothing here", m.Src)
		}
		if newer16(local.Version, m.Version) {
			e.adsSuperseded.Add(1)
			continue
		}
		if local.Version != m.Version {
			return fmt.Errorf("replica divergence: node %d ad version %d from peer, %d here", m.Src, m.Version, local.Version)
		}
		if content.ClassSet(m.Topics) != local.Topics {
			return fmt.Errorf("replica divergence: node %d ad topics %04x from peer, %04x here", m.Src, m.Topics, uint16(local.Topics))
		}
		if !bytes.Equal(m.Full, local.Filter.EncodeWire()) {
			return fmt.Errorf("replica divergence: node %d v%d filter bytes differ from local replica", m.Src, m.Version)
		}
		if m.Kind == adKindPatch {
			if len(m.Patch) != local.PatchWire {
				return fmt.Errorf("replica divergence: node %d v%d patch is %d wire bytes, local sizing says %d",
					m.Src, m.Version, len(m.Patch), local.PatchWire)
			}
			if _, err := bloom.DecodePatch(m.Patch); err != nil {
				return fmt.Errorf("node %d v%d patch does not decode: %w", m.Src, m.Version, err)
			}
		}
		e.adsVerified.Add(1)
	}
	return nil
}

// newer16 reports a strictly newer than b under 16-bit serial-number
// arithmetic (the ad version space).
func newer16(a, b uint16) bool { return a != b && int16(a-b) > 0 }

// serveMesh answers one peer daemon's exchanges until its connection
// closes. Confirmations and ads requests are pure reads of the replica
// (safe during query execution); ad pushes queue for barrier verification.
func (e *Engine) serveMesh(c *transport.Conn) {
	defer c.Close()
	c.SetRecorder(e.rec, e.now.Load)
	var buf []byte
	for {
		t, p, err := c.ReadFrame()
		if err != nil {
			return
		}
		switch t {
		case transport.MAd:
			m, err := transport.DecodeAd(p)
			if err != nil {
				e.fail(fmt.Errorf("bad ad push: %w", err))
				return
			}
			// The payload aliases the read buffer of this frame only; the
			// decode above keeps sub-slices, which the next ReadFrame would
			// not clobber (each frame allocates its body) — queue as-is.
			e.mu.Lock()
			e.pending = append(e.pending, m)
			e.mu.Unlock()
			e.adsIn.Add(1)
			if err := c.WriteFrame(transport.MAdAck, nil); err != nil {
				return
			}
		case transport.MConfirmReq:
			req, err := transport.DecodeConfirmReq(p)
			if err != nil {
				e.fail(fmt.Errorf("bad confirm request: %w", err))
				return
			}
			if e.asap == nil {
				e.fail(fmt.Errorf("confirm request under a baseline scheme"))
				return
			}
			alive, match := e.asap.ConfirmWire(overlay.NodeID(req.Src), keywords(req.Terms))
			var flags byte
			if alive {
				flags |= transport.ConfirmAlive
			}
			if match {
				flags |= transport.ConfirmMatch
			}
			e.confirmsIn.Add(1)
			if err := c.WriteFrame(transport.MConfirmOK, []byte{flags}); err != nil {
				return
			}
		case transport.MAdsReq:
			req, err := transport.DecodeAdsReq(p)
			if err != nil {
				e.fail(fmt.Errorf("bad ads request: %w", err))
				return
			}
			if e.asap == nil {
				e.fail(fmt.Errorf("ads request under a baseline scheme"))
				return
			}
			served := e.asap.ServeAdsWire(overlay.NodeID(req.Requester), overlay.NodeID(req.Target),
				content.ClassSet(req.Interests), req.StaleBefore, keywords(req.Terms))
			offers := make([]transport.AdOffer, len(served))
			for i, s := range served {
				offers[i] = transport.AdOffer{Src: uint32(s.Src), Version: s.Version, Topics: uint16(s.Topics), Filter: s.Filter.EncodeWire()}
			}
			buf = transport.EncodeAdsReply(buf[:0], offers)
			e.adsReqIn.Add(1)
			if err := c.WriteFrame(transport.MAdsOK, buf); err != nil {
				return
			}
		default:
			e.fail(fmt.Errorf("unexpected mesh frame type %d", t))
			return
		}
	}
}

// Confirm implements core.Peering: the owner of the searching node asks
// the owner of the candidate source over the wire and checks the remote
// verdicts against the local replica's. The local verdicts drive the
// replay either way, so even a diverged run stays deterministic while the
// mismatch propagates to the harness.
func (e *Engine) Confirm(requester, src overlay.NodeID, terms []content.Keyword, localAlive, localMatch bool) (bool, bool) {
	if !e.curOwned || e.owns(src) || e.broken() {
		return localAlive, localMatch
	}
	pc := e.peers[e.shard.ShardOf(src)]
	req := transport.ConfirmReq{Src: uint32(src), Terms: termsU32(terms)}
	e.wbuf = req.Encode(e.wbuf[:0])
	if err := pc.WriteFrame(transport.MConfirmReq, e.wbuf); err != nil {
		e.fail(err)
		return localAlive, localMatch
	}
	t, p, err := pc.ReadFrame()
	if err != nil || t != transport.MConfirmOK || len(p) != 1 {
		e.fail(fmt.Errorf("confirm exchange for node %d failed (type %d, err %v)", src, t, err))
		return localAlive, localMatch
	}
	e.confirmsOut.Add(1)
	alive, match := p[0]&transport.ConfirmAlive != 0, p[0]&transport.ConfirmMatch != 0
	if alive != localAlive || match != localMatch {
		e.fail(fmt.Errorf("replica divergence: confirm(%d) = alive=%v match=%v remotely, alive=%v match=%v here",
			src, alive, match, localAlive, localMatch))
	}
	return localAlive, localMatch
}

// ServeAds implements core.Peering: the owner of the searching node
// fetches the same ads reply from the target's owner and checks it
// offer-for-offer — identity, topics and filter bytes — against what the
// local replica served.
func (e *Engine) ServeAds(requester, target overlay.NodeID, interests content.ClassSet, staleBefore sim.Clock, terms []content.Keyword, offered []core.AdServed) {
	if !e.curOwned || e.owns(target) || e.broken() {
		return
	}
	pc := e.peers[e.shard.ShardOf(target)]
	req := transport.AdsReq{
		Target:      uint32(target),
		Requester:   uint32(requester),
		Interests:   uint16(interests),
		StaleBefore: staleBefore,
		Max:         uint32(len(offered)) + 1, // informational; the server re-derives its own cap
		Terms:       termsU32(terms),
	}
	e.wbuf = req.Encode(e.wbuf[:0])
	if err := pc.WriteFrame(transport.MAdsReq, e.wbuf); err != nil {
		e.fail(err)
		return
	}
	t, p, err := pc.ReadFrame()
	if err != nil || t != transport.MAdsOK {
		e.fail(fmt.Errorf("ads exchange with owner of node %d failed (type %d, err %v)", target, t, err))
		return
	}
	remote, err := transport.DecodeAdsReply(p)
	if err != nil {
		e.fail(fmt.Errorf("bad ads reply for node %d: %w", target, err))
		return
	}
	e.adsReqOut.Add(1)
	if len(remote) != len(offered) {
		e.fail(fmt.Errorf("replica divergence: node %d served %d ads remotely, %d here", target, len(remote), len(offered)))
		return
	}
	for i, r := range remote {
		l := offered[i]
		if overlay.NodeID(r.Src) != l.Src || r.Version != l.Version || content.ClassSet(r.Topics) != l.Topics {
			e.fail(fmt.Errorf("replica divergence: node %d ads reply offer %d is %d/v%d remotely, %d/v%d here",
				target, i, r.Src, r.Version, l.Src, l.Version))
			return
		}
		if !bytes.Equal(r.Filter, l.Filter.EncodeWire()) {
			e.fail(fmt.Errorf("replica divergence: node %d ads reply offer %d (node %d v%d) filter bytes differ",
				target, i, r.Src, r.Version))
			return
		}
	}
}

func (e *Engine) broken() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failErr != nil
}

func termsU32(terms []content.Keyword) []uint32 {
	out := make([]uint32, len(terms))
	for i, t := range terms {
		out[i] = uint32(t)
	}
	return out
}

func keywords(terms []uint32) []content.Keyword {
	out := make([]content.Keyword, len(terms))
	for i, t := range terms {
		out[i] = content.Keyword(t)
	}
	return out
}

// SimBaseline runs the identical configuration through the in-memory
// sequential replay — the ground truth the cluster run must equal.
func SimBaseline(spec Spec) (metrics.Summary, error) {
	_, sys, sch, err := buildReplica(HelloMsg{Scale: spec.Scale, Scheme: spec.Scheme, Topo: spec.Topo,
		Seed: spec.Seed, Loss: spec.Loss, Scenario: spec.Scenario, Nodes: 1})
	if err != nil {
		return metrics.Summary{}, err
	}
	return sim.Run(sys, sch, sim.RunOptions{Workers: 1}), nil
}
