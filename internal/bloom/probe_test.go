package bloom

import (
	"math/rand/v2"
	"testing"
)

// probeGeometries covers the paper geometry, the variable-length pool
// extremes, and a deliberately tiny single-word filter (m < 64 makes the
// pos>>6 word indexing collapse to word 0 — an easy place for an
// off-by-one).
func probeGeometries() []*Filter {
	return []*Filter{
		NewDefault(),
		New(53, 4),
		New(64, 1),
		NewSized(10),
		NewSized(5000),
	}
}

// TestProbesAgreeWithKeys: for every geometry and random key mix, the
// precomputed-probe predicates must agree exactly with the hashing
// predicates — ContainsProbe ≡ ContainsKey and ContainsAllProbes ≡
// ContainsAllKeys, on hits, misses and false positives alike.
func TestProbesAgreeWithKeys(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 77))
	for _, f := range probeGeometries() {
		added := make([]uint64, 40)
		for i := range added {
			added[i] = rng.Uint64()
			f.AddKey(added[i])
		}
		// Single-key equivalence over members and random non-members.
		for _, k := range added {
			if !f.ContainsProbe(ProbeKey(k)) {
				t.Fatalf("m=%d k=%d: probe misses member %d", f.Bits(), f.Hashes(), k)
			}
		}
		for i := 0; i < 500; i++ {
			k := rng.Uint64()
			if f.ContainsKey(k) != f.ContainsProbe(ProbeKey(k)) {
				t.Fatalf("m=%d k=%d: ContainsProbe disagrees with ContainsKey on %d", f.Bits(), f.Hashes(), k)
			}
		}
		// Multi-key equivalence over random subsets mixing members and
		// non-members.
		for i := 0; i < 200; i++ {
			keys := make([]uint64, rng.IntN(6))
			for j := range keys {
				if rng.IntN(2) == 0 {
					keys[j] = added[rng.IntN(len(added))]
				} else {
					keys[j] = rng.Uint64()
				}
			}
			want := f.ContainsAllKeys(keys)
			if got := f.ContainsAllProbes(PrecomputeKeys(keys)); got != want {
				t.Fatalf("m=%d k=%d: ContainsAllProbes=%v, ContainsAllKeys=%v for %v",
					f.Bits(), f.Hashes(), got, want, keys)
			}
		}
	}
}

// TestProbesEmptyKeySet: an empty key list is vacuously contained, matching
// ContainsAllKeys — a term-less query matches every cached ad.
func TestProbesEmptyKeySet(t *testing.T) {
	for _, f := range probeGeometries() {
		if !f.ContainsAllProbes(nil) || !f.ContainsAllKeys(nil) {
			t.Fatalf("m=%d: empty key set not vacuously contained", f.Bits())
		}
	}
	// Even on an empty filter.
	if !NewDefault().ContainsAllProbes([]Probe{}) {
		t.Fatal("empty probe slice rejected by empty filter")
	}
}

// TestProbeGeometryIndependence: one probe works across filter lengths —
// the property that lets a query precompute once and scan a cache holding
// variable-length ads (§III-B's shared hash functions).
func TestProbeGeometryIndependence(t *testing.T) {
	key := uint64(0xdeadbeef)
	p := ProbeKey(key)
	for _, f := range probeGeometries() {
		f.AddKey(key)
		if !f.ContainsProbe(p) {
			t.Errorf("m=%d k=%d: shared probe misses key added via AddKey", f.Bits(), f.Hashes())
		}
	}
}

// TestProbeStringMatchesContains: the string form agrees with Contains.
func TestProbeStringMatchesContains(t *testing.T) {
	f := NewDefault()
	f.Add("guitar")
	if !f.ContainsProbe(ProbeString("guitar")) {
		t.Error("probe misses added string")
	}
	if f.Contains("violin") != f.ContainsProbe(ProbeString("violin")) {
		t.Error("probe disagrees with Contains on absent string")
	}
}

// TestAppendKeyProbesReuse: AppendKeyProbes grows the destination in place
// so hot paths can reuse scratch across queries.
func TestAppendKeyProbesReuse(t *testing.T) {
	scratch := make([]Probe, 0, 8)
	a := AppendKeyProbes(scratch, []uint64{1, 2, 3})
	if len(a) != 3 {
		t.Fatalf("len = %d, want 3", len(a))
	}
	b := AppendKeyProbes(a[:0], []uint64{4})
	if len(b) != 1 || &a[0] != &b[0] {
		t.Error("scratch not reused across AppendKeyProbes calls")
	}
	if got := AppendKeyProbes(nil, nil); got != nil {
		t.Error("append of no keys to nil allocated")
	}
}

func BenchmarkContainsAllKeys(b *testing.B) {
	f, keys := benchFilterAndKeys()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.ContainsAllKeys(keys)
	}
}

func BenchmarkContainsAllProbes(b *testing.B) {
	f, keys := benchFilterAndKeys()
	ps := PrecomputeKeys(keys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.ContainsAllProbes(ps)
	}
}

func benchFilterAndKeys() (*Filter, []uint64) {
	rng := rand.New(rand.NewPCG(9, 9))
	f := NewDefault()
	keys := make([]uint64, 3)
	for i := 0; i < 800; i++ {
		f.AddKey(rng.Uint64())
	}
	for i := range keys {
		keys[i] = rng.Uint64()
		f.AddKey(keys[i])
	}
	return f, keys
}
