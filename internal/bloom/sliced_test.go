package bloom

import (
	"math/rand/v2"
	"testing"
)

// slicedGeometries are the pool lengths the variable-sizing strategy can
// produce, plus deliberately odd shapes (non-word-multiple m, tiny m,
// extreme k) the matrix must still slice exactly.
var slicedGeometries = [][2]int{
	{DefaultBits, DefaultHashes},
	{DefaultBits / 16, DefaultHashes},
	{DefaultBits * 4, DefaultHashes},
	{64, 1},
	{65, 3},
	{7, 2},
	{129, 64},
}

// TestSlicedMatchesContainsAllProbes is the exactness property of the
// bit-sliced matrix: for random filters and random probe sets across
// geometries, the match word's slot bit equals the filter's scalar
// ContainsAllProbes — bit for bit, including slots far beyond the first
// block.
func TestSlicedMatchesContainsAllProbes(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for _, geo := range slicedGeometries {
		m, k := geo[0], geo[1]
		s := NewSliced(m, k)
		var filters []*Filter
		for i := 0; i < 150; i++ {
			f := New(m, k)
			for n := rng.IntN(20); n > 0; n-- {
				f.AddKey(rng.Uint64() % 500)
			}
			if slot := s.Add(f); slot != i {
				t.Fatalf("m=%d k=%d: slot %d assigned, want %d", m, k, slot, i)
			}
			filters = append(filters, f)
		}
		for trial := 0; trial < 50; trial++ {
			var keys []uint64
			for n := rng.IntN(5); n > 0; n-- {
				keys = append(keys, rng.Uint64()%500)
			}
			probes := AppendKeyProbes(nil, keys)
			match := s.AppendMatch(nil, s.AppendPositions(nil, probes))
			if len(match) != s.Blocks() {
				t.Fatalf("m=%d k=%d: %d match words, want %d", m, k, len(match), s.Blocks())
			}
			for slot, f := range filters {
				got := match[slot>>6]>>(uint(slot)&63)&1 != 0
				if want := f.ContainsAllProbes(probes); got != want {
					t.Fatalf("m=%d k=%d slot=%d keys=%v: sliced=%v scalar=%v", m, k, slot, keys, got, want)
				}
			}
		}
	}
}

// TestSlicedEmptyPositions: with no probe positions every assigned lane
// matches — the term-less query convention — and callers are expected to
// mask out unassigned lanes themselves.
func TestSlicedEmptyPositions(t *testing.T) {
	s := NewSliced(256, 4)
	for i := 0; i < 3; i++ {
		s.Add(New(256, 4))
	}
	match := s.AppendMatch(nil, nil)
	if len(match) != 1 || match[0] != ^uint64(0) {
		t.Fatalf("empty positions match = %x, want all-ones", match)
	}
}

// TestSlicedGeometryMismatchPanics: adding a filter of a foreign geometry
// must panic rather than corrupt the columns.
func TestSlicedGeometryMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add across geometries did not panic")
		}
	}()
	NewSliced(128, 4).Add(New(64, 4))
}

// TestSlicedAppendReusesBuffers: AppendPositions/AppendMatch write into
// the given buffers, the contract the per-query scratch relies on.
func TestSlicedAppendReusesBuffers(t *testing.T) {
	s := NewSliced(512, 8)
	f := New(512, 8)
	f.AddKey(1)
	s.Add(f)
	probes := []Probe{ProbeKey(1)}
	pos := make([]uint32, 0, 64)
	match := make([]uint64, 0, 8)
	p2 := s.AppendPositions(pos, probes)
	m2 := s.AppendMatch(match, p2)
	if &p2[0] != &pos[:1][0] || &m2[0] != &match[:1][0] {
		t.Fatal("append helpers reallocated despite sufficient capacity")
	}
	if m2[0]&1 == 0 {
		t.Fatal("added filter's own key did not match")
	}
}

// FuzzSlicedGeometry feeds arbitrary filter geometries and key material to
// the sliced index and cross-checks every slot's match bit against the
// scalar probe walk — the fuzz companion of the exactness property.
func FuzzSlicedGeometry(f *testing.F) {
	f.Add(uint16(DefaultBits), uint8(DefaultHashes), uint64(12345), uint8(7))
	f.Add(uint16(64), uint8(1), uint64(0), uint8(1))
	f.Add(uint16(3), uint8(64), uint64(1<<60), uint8(200))
	f.Fuzz(func(t *testing.T, m16 uint16, k8 uint8, seed uint64, nKeys uint8) {
		m := int(m16%4096) + 1
		k := int(k8%64) + 1
		rng := rand.New(rand.NewPCG(seed, 99))
		s := NewSliced(m, k)
		var filters []*Filter
		for i := 0; i < 70; i++ {
			fl := New(m, k)
			for n := int(nKeys) % 16; n > 0; n-- {
				fl.AddKey(rng.Uint64())
			}
			s.Add(fl)
			filters = append(filters, fl)
		}
		probes := AppendKeyProbes(nil, []uint64{seed, seed ^ 0xabcdef, rng.Uint64()})
		match := s.AppendMatch(nil, s.AppendPositions(nil, probes))
		for slot, fl := range filters {
			got := match[slot>>6]>>(uint(slot)&63)&1 != 0
			if want := fl.ContainsAllProbes(probes); got != want {
				t.Fatalf("m=%d k=%d slot=%d: sliced=%v scalar=%v", m, k, slot, got, want)
			}
		}
	})
}
