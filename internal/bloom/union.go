package bloom

// Aggregate-union support for the indexed ads cache: a node folds the
// filters of its cached ads into per-topic unions (raw word vectors) and
// tests query probes against the union to rule out a whole topic's ads at
// once. Unions are monotone — bits are ORed in and never cleared — so a
// union always remains a superset of every filter folded into it, which is
// what lets a failed union test prove that no folded filter can pass.
//
// Unions assume the paper's fixed default geometry; variable-length
// filters cannot share one union vector and callers disable aggregation
// when VariableFilters is on.

// DefaultWords is the word length of one default-geometry filter vector.
const DefaultWords = (DefaultBits + 63) / 64

// UnionInto ORs f's bit vector into dst, which must hold a default-
// geometry union. It panics on a geometry mismatch: folding a filter of a
// different length would corrupt the union's superset guarantee.
func (f *Filter) UnionInto(dst []uint64) {
	if f.m != DefaultBits {
		panic("bloom: UnionInto on a non-default filter geometry")
	}
	for i, w := range f.words {
		dst[i] |= w
	}
}

// WordsContainAllProbes tests probes against a raw default-geometry word
// vector (an aggregate union). A false result proves that no filter folded
// into the union contains all the probed keys.
func WordsContainAllProbes(words []uint64, ps []Probe) bool {
	for _, p := range ps {
		for i := uint32(0); i < DefaultHashes; i++ {
			pos := (p.h1 + i*p.h2) % DefaultBits
			if words[pos>>6]&(1<<(pos&63)) == 0 {
				return false
			}
		}
	}
	return true
}
