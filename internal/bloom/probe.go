package bloom

// Probe is the precomputed double-hash pair (h1, h2) of one key. The pair
// is geometry-independent — reduction mod m happens at probe time — so
// one precomputation serves filters of every pool length, matching
// §III-B's "only one set of hash functions are used everywhere". Hot
// paths that test one query against many filters (scanning a node's ads
// cache) precompute the probes once instead of re-hashing every key for
// every filter.
type Probe struct{ h1, h2 uint32 }

// ProbeString precomputes the probe for a string key.
func ProbeString(key string) Probe {
	h1, h2 := hashPair(sumString(key))
	return Probe{h1: h1, h2: h2}
}

// ProbeKey precomputes the probe for an interned integer key (the
// simulator's keyword IDs).
func ProbeKey(key uint64) Probe {
	h1, h2 := hashPair(sumUint64(key))
	return Probe{h1: h1, h2: h2}
}

// AppendKeyProbes appends the probes of keys to dst and returns it,
// letting callers reuse scratch space across queries.
func AppendKeyProbes(dst []Probe, keys []uint64) []Probe {
	for _, k := range keys {
		dst = append(dst, ProbeKey(k))
	}
	return dst
}

// PrecomputeKeys returns the probes of keys.
func PrecomputeKeys(keys []uint64) []Probe {
	return AppendKeyProbes(make([]Probe, 0, len(keys)), keys)
}

// ContainsProbe is ContainsKey without the per-call hash: it tests the k
// derived bit positions directly against the filter words and exits at
// the first unset bit.
func (f *Filter) ContainsProbe(p Probe) bool {
	for i := uint32(0); i < uint32(f.k); i++ {
		pos := (p.h1 + i*p.h2) % f.m
		if f.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// ContainsAllProbes reports whether every probed key may be in the set.
// It agrees with ContainsAllKeys for the same keys on every filter
// geometry (see TestProbesAgreeWithKeys); scanning N cached ads for a
// q-term query costs N·q·k word tests and zero hash computations instead
// of N·q FNV digests.
func (f *Filter) ContainsAllProbes(ps []Probe) bool {
	for _, p := range ps {
		if !f.ContainsProbe(p) {
			return false
		}
	}
	return true
}
