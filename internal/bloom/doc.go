// Package bloom implements the Bloom-filter machinery ASAP uses to
// summarise a peer's shared content (paper §III-B).
//
// The paper fixes one filter geometry for the whole system: with a maximum
// keyword set of |K_max| = 1,000 and k = 8 hash functions, the minimum
// filter length achieving the smallest false-positive rate is
//
//	m = |K_max|·k / ln 2 = 11,542 bits ≈ 1.43 KB,
//
// and the smallest reachable false-positive probability is
//
//	p_min = (1/2)^k = 0.6185^(m/n) ≈ 0.39%.
//
// The package provides:
//
//   - Filter: the fixed-geometry bit-array filter with membership tests.
//     Membership tests may return false positives with predictable
//     probability but never false negatives.
//   - Counting: a counting variant that supports removal, used by a peer to
//     maintain its own content filter as documents come and go. The paper
//     describes it as a collection of 2-tuples (i, x) meaning "bit i is set
//     x times"; only the bit positions travel over the wire.
//   - Compressed wire encodings: a full filter is shipped either as the raw
//     bitmap or as a delta-varint list of set-bit positions, whichever is
//     smaller ("for those peers who share few files and keywords, we use a
//     compressed representation").
//   - Patch: "an ad patch for content filter changes is implemented by a
//     list of changed bit locations in the filter".
//
// Keys are either strings or 64-bit integers (the simulator interns
// keywords as integers); both go through the same double-hashing scheme
// (Kirsch–Mitzenmacher: g_i(x) = h1(x) + i·h2(x) mod m), so one set of hash
// functions is "used everywhere" exactly as the paper's fixed-length design
// requires.
package bloom
