package bloom

import (
	"fmt"
	"math/bits"
)

// Sliced is a bit-sliced (column-major) signature matrix over filters that
// share one geometry (m, k). Filters are assigned consecutive slots,
// grouped into blocks of 64; block g keeps one machine word per filter bit
// position, where bit j of word pos says whether slot 64g+j's filter sets
// bit pos. A query's probe positions then test up to 64 filters per
// word-AND pass instead of probing each filter's bitmap in turn.
//
// The matrix is append-only: Add assigns the next slot and writes its
// column bits once; no written bit is ever changed afterwards, so a match
// word computed at any point stays correct for every slot that existed
// then. Add does write into the current block's words (the new slot's bit
// lane), so callers must not run Add concurrently with AppendMatch — the
// simulator registers slots only at publish time, behind the replay's
// query-batch barrier.
type Sliced struct {
	m, k   uint32
	n      int
	blocks [][]uint64 // blocks[g][pos]: bit j set ⇔ slot 64g+j sets bit pos
}

// NewSliced returns an empty signature matrix for filters of m bits probed
// by k hash functions. It panics on a non-positive geometry, like New.
func NewSliced(m, k int) *Sliced {
	if m <= 0 || k <= 0 || k > 64 {
		panic(fmt.Sprintf("bloom: invalid sliced geometry m=%d k=%d", m, k))
	}
	return &Sliced{m: uint32(m), k: uint32(k)}
}

// Geometry returns the shared filter geometry (m, k) of this matrix.
func (s *Sliced) Geometry() (m, k int) { return int(s.m), int(s.k) }

// Len returns the number of assigned slots.
func (s *Sliced) Len() int { return s.n }

// Blocks returns the number of 64-slot blocks, i.e. the length AppendMatch
// appends.
func (s *Sliced) Blocks() int { return len(s.blocks) }

// Add assigns the next slot to f and writes its signature columns: for
// every bit position set in f, the slot's lane bit in that position's
// column word. It panics on a geometry mismatch — a foreign geometry's bit
// positions would not line up with this matrix's columns.
func (s *Sliced) Add(f *Filter) int {
	if f.m != s.m || uint32(f.k) != s.k {
		panic(fmt.Sprintf("bloom: Add of (m=%d,k=%d) filter to (m=%d,k=%d) sliced matrix", f.m, f.k, s.m, s.k))
	}
	slot := s.n
	s.n++
	if slot>>6 == len(s.blocks) {
		s.blocks = append(s.blocks, make([]uint64, s.m))
	}
	blk := s.blocks[slot>>6]
	lane := uint64(1) << (uint(slot) & 63)
	for wi, w := range f.words {
		for ; w != 0; w &= w - 1 {
			blk[wi*64+bits.TrailingZeros64(w)] |= lane
		}
	}
	return slot
}

// AppendPositions appends each probe's k bit positions reduced mod this
// matrix's filter length, and returns dst. The positions are shared by
// every filter in the matrix — that is the point of grouping slots by
// geometry — so one reduction serves the whole scan.
func (s *Sliced) AppendPositions(dst []uint32, ps []Probe) []uint32 {
	for _, p := range ps {
		for i := uint32(0); i < s.k; i++ {
			dst = append(dst, (p.h1+i*p.h2)%s.m)
		}
	}
	return dst
}

// AppendMatch appends one match word per block to dst and returns it: bit
// j of word g is set iff slot 64g+j's filter has every one of positions
// set — exactly ContainsAllProbes of that filter for the probes the
// positions were derived from. With no positions every lane matches (a
// term-less query passes every filter), including lanes beyond Len(), so
// callers AND the result against a slot-membership mask rather than
// reading it raw.
func (s *Sliced) AppendMatch(dst []uint64, positions []uint32) []uint64 {
	for b := range s.blocks {
		dst = append(dst, s.MatchBlock(b, positions))
	}
	return dst
}

// MatchBlock computes the match word of one 64-slot block: bit j is set iff
// slot 64b+j's filter has every one of positions set. It AND-folds the
// block's column words with early exit once no lane survives.
func (s *Sliced) MatchBlock(b int, positions []uint32) uint64 {
	blk := s.blocks[b]
	w := ^uint64(0)
	for _, pos := range positions {
		w &= blk[pos]
		if w == 0 {
			break
		}
	}
	return w
}
