package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
)

// Filter is a fixed-geometry Bloom filter. All peers in an ASAP system share
// one geometry (m, k) so that "only one set of hash functions are used
// everywhere" (§III-B). The zero value is unusable; construct with New or
// NewDefault.
type Filter struct {
	m     uint32 // filter length in bits
	k     uint8  // number of hash functions
	words []uint64
}

// New returns an empty filter of m bits probed by k hash functions.
// It panics if m or k is non-positive, as that indicates a programming
// error in simulator configuration.
func New(m, k int) *Filter {
	if m <= 0 || k <= 0 || k > 64 {
		panic(fmt.Sprintf("bloom: invalid geometry m=%d k=%d", m, k))
	}
	return &Filter{m: uint32(m), k: uint8(k), words: make([]uint64, (m+63)/64)}
}

// NewDefault returns an empty filter with the paper's fixed geometry
// (m = 11,542 bits, k = 8).
func NewDefault() *Filter { return New(DefaultBits, DefaultHashes) }

// Bits returns the filter length m in bits.
func (f *Filter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions k.
func (f *Filter) Hashes() int { return int(f.k) }

// hashPair derives the two base hashes of the double-hashing scheme from a
// single 64-bit FNV-1a digest. The high half seeds h1 and the low half h2;
// h2 is forced odd so the probe sequence spans the filter.
func hashPair(sum uint64) (h1, h2 uint32) {
	h1 = uint32(sum >> 32)
	h2 = uint32(sum) | 1
	return h1, h2
}

func sumString(key string) uint64 {
	h := fnv.New64a()
	// (*fnv.sum64a).Write never fails.
	_, _ = h.Write([]byte(key))
	return h.Sum64()
}

func sumUint64(key uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], key)
	h := fnv.New64a()
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// probe invokes fn with each of the k bit positions for the given digest.
// fn returns false to stop early.
func (f *Filter) probe(sum uint64, fn func(pos uint32) bool) {
	h1, h2 := hashPair(sum)
	for i := uint32(0); i < uint32(f.k); i++ {
		if !fn((h1 + i*h2) % f.m) {
			return
		}
	}
}

// Add inserts a string key.
func (f *Filter) Add(key string) { f.addSum(sumString(key)) }

// AddKey inserts an interned integer key (the simulator's keyword IDs).
func (f *Filter) AddKey(key uint64) { f.addSum(sumUint64(key)) }

func (f *Filter) addSum(sum uint64) {
	f.probe(sum, func(pos uint32) bool {
		f.words[pos/64] |= 1 << (pos % 64)
		return true
	})
}

// Contains reports whether key may be in the set. False positives occur
// with probability given by FalsePositiveRate; false negatives never occur.
func (f *Filter) Contains(key string) bool { return f.containsSum(sumString(key)) }

// ContainsKey is Contains for interned integer keys.
func (f *Filter) ContainsKey(key uint64) bool { return f.containsSum(sumUint64(key)) }

func (f *Filter) containsSum(sum uint64) bool {
	ok := true
	f.probe(sum, func(pos uint32) bool {
		if f.words[pos/64]&(1<<(pos%64)) == 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// ContainsAllKeys reports whether every key may be in the set. An ad is
// considered a match for a query "if the Bloom filter returns true for all
// the query terms" (§III-C).
func (f *Filter) ContainsAllKeys(keys []uint64) bool {
	for _, k := range keys {
		if !f.ContainsKey(k) {
			return false
		}
	}
	return true
}

// SetBit sets bit position pos. It is used when applying patches and when
// decoding compressed filters. Positions outside [0, m) panic.
func (f *Filter) SetBit(pos uint32) {
	f.check(pos)
	f.words[pos/64] |= 1 << (pos % 64)
}

// ClearBit clears bit position pos.
func (f *Filter) ClearBit(pos uint32) {
	f.check(pos)
	f.words[pos/64] &^= 1 << (pos % 64)
}

// Bit reports whether bit position pos is set.
func (f *Filter) Bit(pos uint32) bool {
	f.check(pos)
	return f.words[pos/64]&(1<<(pos%64)) != 0
}

func (f *Filter) check(pos uint32) {
	if pos >= f.m {
		panic(fmt.Sprintf("bloom: bit %d out of range (m=%d)", pos, f.m))
	}
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bits are set. Free-riders "have a null content
// filter, thus having nothing to advertise" (§III-B).
func (f *Filter) Empty() bool {
	for _, w := range f.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// SetBits returns the sorted positions of all set bits.
func (f *Filter) SetBits() []uint32 {
	out := make([]uint32, 0, f.PopCount())
	for wi, w := range f.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, uint32(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Clone returns a deep copy.
func (f *Filter) Clone() *Filter {
	g := &Filter{m: f.m, k: f.k, words: make([]uint64, len(f.words))}
	copy(g.words, f.words)
	return g
}

// Clear resets all bits.
func (f *Filter) Clear() {
	for i := range f.words {
		f.words[i] = 0
	}
}

// Equal reports whether two filters have identical geometry and contents.
func (f *Filter) Equal(g *Filter) bool {
	if f.m != g.m || f.k != g.k {
		return false
	}
	for i := range f.words {
		if f.words[i] != g.words[i] {
			return false
		}
	}
	return true
}

// Diff returns the patch transforming f into g: the list of bit positions
// whose values differ, tagged with the value they take in g. Filters must
// share a geometry.
func (f *Filter) Diff(g *Filter) Patch {
	var p Patch
	f.AppendDiff(g, &p)
	return p
}

// AppendDiff is Diff writing into p, reusing its position slices. The
// publish path diffs one filter pair per content change all replay long;
// with a pooled patch the diff allocates nothing once the buffers have
// grown. Position lists come out ascending, as Diff produces them.
func (f *Filter) AppendDiff(g *Filter, p *Patch) {
	if f.m != g.m || f.k != g.k {
		panic("bloom: Diff across mismatched geometries")
	}
	p.Set, p.Cleared = p.Set[:0], p.Cleared[:0]
	for wi := range f.words {
		x := f.words[wi] ^ g.words[wi]
		for x != 0 {
			b := bits.TrailingZeros64(x)
			pos := uint32(wi*64 + b)
			if g.words[wi]&(1<<uint(b)) != 0 {
				p.Set = append(p.Set, pos)
			} else {
				p.Cleared = append(p.Cleared, pos)
			}
			x &= x - 1
		}
	}
}

// Apply applies a patch produced by Diff.
func (f *Filter) Apply(p Patch) {
	for _, pos := range p.Set {
		f.SetBit(pos)
	}
	for _, pos := range p.Cleared {
		f.ClearBit(pos)
	}
}
