package bloom

// Variable-length filters: the alternative sizing strategy §III-B
// describes. All nodes agree on one set of universal hash functions
// {h₁,…,h_k} and a pool of available filter lengths; each node picks the
// minimum pool length above |K_p|·k/ln 2, and probing a filter of length
// l uses h'_i = h_i mod l. This "releases the constraint on the maximum
// keyword set and utilizes the space more efficiently", at the cost of
// heterogeneous filters in the system.
//
// Filter already probes with (h₁ + i·h₂) mod m where h₁, h₂ are derived
// from a length-independent digest, so a variable-length filter is simply
// a Filter constructed with a pool-chosen m: membership tests, diffs,
// patches and wire encodings all carry the geometry with them.

// DefaultLengthPool returns the standard pool of available filter
// lengths: a geometric ladder from 1/16 of the fixed length up to the
// fixed length itself, then doubling twice more for future growth. The
// pool is shared system-wide; every node picks from it.
func DefaultLengthPool() []int {
	return []int{
		DefaultBits / 16, // 721 bits  (~62 keys at k=8)
		DefaultBits / 8,  // 1,442     (~125 keys)
		DefaultBits / 4,  // 2,885     (~250 keys)
		DefaultBits / 2,  // 5,771     (~500 keys)
		DefaultBits,      // 11,542    (1,000 keys — the fixed geometry)
		DefaultBits * 2,  // 23,084
		DefaultBits * 4,  // 46,168
	}
}

// ChooseLength returns the smallest pool length whose false-positive rate
// for n keys under k hashes does not exceed the design point, i.e. the
// smallest l ≥ n·k/ln 2. If the pool has no such length the largest pool
// entry is returned (the filter then operates above its design load, with
// a correspondingly higher false-positive rate — exactly the behaviour
// the paper's fixed scheme has when |K_p| outgrows |K_max|).
func ChooseLength(n, k int, pool []int) int {
	need := RequiredBits(max(1, n), k)
	if len(pool) == 0 {
		return need
	}
	smallest, maxLen := -1, 0
	for _, l := range pool {
		if l > maxLen {
			maxLen = l
		}
		if l >= need && (smallest == -1 || l < smallest) {
			smallest = l
		}
	}
	if smallest != -1 {
		return smallest
	}
	return maxLen
}

// NewSized returns an empty filter sized from the default pool for n keys
// under the default hash count.
func NewSized(n int) *Filter {
	return New(ChooseLength(n, DefaultHashes, DefaultLengthPool()), DefaultHashes)
}
