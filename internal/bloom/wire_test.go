package bloom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: compressed encode/decode round-trips any filter contents.
func TestCompressedRoundTripProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := New(2048, 5)
		for _, k := range keys {
			f.AddKey(k)
		}
		g, err := DecodeCompressed(f.EncodeCompressed())
		return err == nil && f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: raw encode/decode round-trips any filter contents.
func TestRawRoundTripProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := New(2048, 5)
		for _, k := range keys {
			f.AddKey(k)
		}
		g, err := DecodeRaw(f.EncodeRaw())
		return err == nil && f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the auto-selecting wire encoding round-trips and never exceeds
// the raw size by more than the 1-byte format tag.
func TestWireRoundTripProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := New(1024, 4)
		for _, k := range keys {
			f.AddKey(k)
		}
		enc := f.EncodeWire()
		if len(enc) > len(f.EncodeRaw())+1 {
			return false
		}
		g, err := DecodeWire(enc)
		return err == nil && f.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressedBeatsRawWhenSparse(t *testing.T) {
	f := NewDefault()
	f.AddKey(1)
	f.AddKey(2)
	if f.WireSize() >= 6+(DefaultBits+7)/8 {
		t.Errorf("sparse filter WireSize %d not below raw %d", f.WireSize(), 6+(DefaultBits+7)/8)
	}
}

func TestRawBeatsCompressedWhenDense(t *testing.T) {
	f := NewDefault()
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 5000; i++ {
		f.AddKey(rng.Uint64())
	}
	raw := 6 + (DefaultBits+7)/8
	if f.WireSize() != raw {
		t.Errorf("dense filter WireSize %d, want raw %d", f.WireSize(), raw)
	}
}

func TestEmptyFilterWire(t *testing.T) {
	f := NewDefault()
	g, err := DecodeWire(f.EncodeWire())
	if err != nil {
		t.Fatalf("DecodeWire(empty) error: %v", err)
	}
	if !g.Empty() || !f.Equal(g) {
		t.Error("empty filter did not round-trip")
	}
	// A free-rider's null filter costs almost nothing on the wire.
	if f.WireSize() > 16 {
		t.Errorf("empty filter WireSize %d, want tiny", f.WireSize())
	}
}

// Property: patch encode/decode round-trips.
func TestPatchRoundTripProperty(t *testing.T) {
	prop := func(aKeys, bKeys []uint64) bool {
		f := New(1024, 5)
		g := New(1024, 5)
		for _, k := range aKeys {
			f.AddKey(k)
		}
		for _, k := range bKeys {
			g.AddKey(k)
		}
		p := f.Diff(g)
		q, err := DecodePatch(p.Encode())
		if err != nil {
			return false
		}
		h := f.Clone()
		h.Apply(q)
		return h.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPatchWireSizeScalesWithChanges(t *testing.T) {
	f := NewDefault()
	g := f.Clone()
	g.AddKey(12345) // ~8 changed bits
	small := f.Diff(g).WireSize()

	h := f.Clone()
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 200; i++ {
		h.AddKey(rng.Uint64())
	}
	big := f.Diff(h).WireSize()
	if small >= big {
		t.Errorf("patch sizes not monotone: small=%d big=%d", small, big)
	}
	if small > 40 {
		t.Errorf("single-key patch costs %d bytes, want small", small)
	}
}

// Property: WireSize equals the materialised encoding's length for any
// position list — sorted, reversed, shuffled, or with duplicates. The
// unsorted path sizes by min-extraction instead of sorting a copy, so this
// pins the two walks against each other.
func TestPatchWireSizeExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 7))
	lists := [][]uint32{
		nil,
		{},
		{0},
		{5, 1},
		{9, 9, 9},
		{1 << 30, 0, 1 << 30, 77, 77},
		{^uint32(0) >> 1, 0, ^uint32(0) >> 1},
	}
	for i := 0; i < 50; i++ {
		n := rng.IntN(40)
		l := make([]uint32, n)
		for j := range l {
			l[j] = uint32(rng.IntN(1 << 14)) // small domain: plenty of dups
		}
		lists = append(lists, l)
	}
	for i, set := range lists {
		for j, cleared := range lists {
			p := Patch{Set: set, Cleared: cleared}
			if got, want := p.WireSize(), len(p.Encode()); got != want {
				t.Fatalf("lists %d/%d: WireSize %d, Encode %d bytes", i, j, got, want)
			}
		}
	}
}

// TestPatchWireSizeAllocs is the publish-path zero-alloc gate (wired into
// `make alloc-gate`): sizing a patch must not allocate even when the
// position lists arrive out of order — the documented contract WireSize
// previously broke by falling back to len(p.Encode()).
func TestPatchWireSizeAllocs(t *testing.T) {
	sorted := Patch{Set: []uint32{1, 5, 9, 9, 200}, Cleared: []uint32{0, 3}}
	unsorted := Patch{Set: []uint32{900, 4, 4, 31, 2}, Cleared: []uint32{77, 0, 77}}
	sink := 0
	if a := testing.AllocsPerRun(100, func() { sink += sorted.WireSize() }); a != 0 {
		t.Errorf("sorted WireSize allocates %.1f times per call, want 0", a)
	}
	if a := testing.AllocsPerRun(100, func() { sink += unsorted.WireSize() }); a != 0 {
		t.Errorf("unsorted WireSize allocates %.1f times per call, want 0", a)
	}
	_ = sink
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func([]byte) error
		data []byte
	}{
		{"compressed empty", func(b []byte) error { _, err := DecodeCompressed(b); return err }, nil},
		{"compressed bad k", func(b []byte) error { _, err := DecodeCompressed(b); return err }, []byte{8, 0}},
		{"compressed trailing", func(b []byte) error { _, err := DecodeCompressed(b); return err },
			append(New(64, 2).EncodeCompressed(), 0xFF)},
		{"raw empty", func(b []byte) error { _, err := DecodeRaw(b); return err }, nil},
		{"raw short body", func(b []byte) error { _, err := DecodeRaw(b); return err }, []byte{64, 2, 1, 2}},
		{"wire empty", func(b []byte) error { _, err := DecodeWire(b); return err }, nil},
		{"wire bad tag", func(b []byte) error { _, err := DecodeWire(b); return err }, []byte{9, 1, 2}},
		{"patch empty", func(b []byte) error { _, err := DecodePatch(b); return err }, nil},
		{"patch truncated", func(b []byte) error { _, err := DecodePatch(b); return err }, []byte{5, 1}},
	}
	for _, tc := range cases {
		if err := tc.fn(tc.data); err == nil {
			t.Errorf("%s: decode succeeded on malformed input", tc.name)
		}
	}
}

func TestDecodeCompressedRejectsOutOfRangePosition(t *testing.T) {
	f := New(64, 2)
	f.SetBit(63)
	enc := f.EncodeCompressed()
	// Corrupt: claim geometry m=32 with a position of 63.
	bad := append([]byte{32, 2}, enc[2:]...)
	if _, err := DecodeCompressed(bad); err == nil {
		t.Error("decode accepted out-of-range bit position")
	}
}

func TestPatchEmptyAndLen(t *testing.T) {
	var p Patch
	if !p.Empty() || p.Len() != 0 {
		t.Error("zero patch not empty")
	}
	p.Set = []uint32{1, 2}
	p.Cleared = []uint32{7}
	if p.Empty() || p.Len() != 3 {
		t.Errorf("Len() = %d, want 3", p.Len())
	}
}

func TestAppendPosListHandlesUnsorted(t *testing.T) {
	buf := appendPosList(nil, []uint32{9, 3, 7})
	got, rest, err := readPosList(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("readPosList error: %v rest=%d", err, len(rest))
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 7 || got[2] != 9 {
		t.Errorf("positions = %v, want sorted [3 7 9]", got)
	}
}

func BenchmarkAddKey(b *testing.B) {
	f := NewDefault()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.AddKey(uint64(i))
	}
}

func BenchmarkContainsKey(b *testing.B) {
	f := NewDefault()
	for i := uint64(0); i < 1000; i++ {
		f.AddKey(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ContainsKey(uint64(i % 2000))
	}
}

// BenchmarkAblationEncoding compares the two full-ad encodings at the load
// levels the paper discusses (DESIGN.md D5).
func BenchmarkAblationEncoding(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		f := NewDefault()
		rng := rand.New(rand.NewPCG(1, uint64(n)))
		for i := 0; i < n; i++ {
			f.AddKey(rng.Uint64())
		}
		b.Run("compressed/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.EncodeCompressed()
			}
			b.ReportMetric(float64(len(f.EncodeCompressed())), "wire-bytes")
		})
		b.Run("raw/n="+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = f.EncodeRaw()
			}
			b.ReportMetric(float64(len(f.EncodeRaw())), "wire-bytes")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
