package bloom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCountingAddRemove(t *testing.T) {
	c := NewCountingDefault()
	c.Add("jazz")
	c.Add("pop")
	if !c.Contains("jazz") || !c.Contains("pop") {
		t.Fatal("missing key after Add")
	}
	c.Remove("jazz")
	if c.Contains("jazz") && !c.Contains("pop") {
		t.Error("Remove cleared wrong key")
	}
	if !c.Contains("pop") {
		t.Error("pop lost after removing jazz")
	}
	c.Remove("pop")
	if !c.Empty() {
		t.Error("filter not empty after removing all keys")
	}
}

func TestCountingDuplicateAdds(t *testing.T) {
	c := NewCountingDefault()
	c.Add("dup")
	c.Add("dup")
	c.Remove("dup")
	if !c.Contains("dup") {
		t.Error("key lost after removing one of two copies")
	}
	c.Remove("dup")
	if c.Contains("dup") && c.Empty() {
		t.Error("inconsistent state after final removal")
	}
	if !c.Empty() {
		t.Error("filter not empty after removing both copies")
	}
}

// Property: after any interleaving of adds and removes (removes only of
// previously-added live keys), the counting filter's bit view equals a plain
// filter rebuilt from the surviving multiset.
func TestCountingMatchesRebuildProperty(t *testing.T) {
	type op struct {
		Key    uint8 // small key space to force collisions
		Remove bool
	}
	prop := func(ops []op) bool {
		c := NewCounting(512, 4)
		live := map[uint64]int{}
		for _, o := range ops {
			k := uint64(o.Key)
			if o.Remove {
				if live[k] == 0 {
					continue // only remove what exists
				}
				live[k]--
				c.RemoveKey(k)
			} else {
				live[k]++
				c.AddKey(k)
			}
		}
		want := New(512, 4)
		for k, n := range live {
			for i := 0; i < n; i++ {
				want.AddKey(k)
			}
		}
		return c.ToFilter().Equal(want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountingRemoveAbsentKeyIsSafe(t *testing.T) {
	c := NewCountingDefault()
	c.Add("present")
	// Removing an absent key must not underflow counters below zero.
	c.Remove("never added")
	if c.Count(0) > 100 {
		t.Error("counter underflow detected")
	}
}

func TestCountingViewIsLive(t *testing.T) {
	c := NewCountingDefault()
	v := c.View()
	c.Add("live")
	if !v.Contains("live") {
		t.Error("View() snapshot is stale; must be live")
	}
	s := c.ToFilter()
	c.Add("after snapshot")
	if s.Contains("after snapshot") && !s.Contains("live") {
		t.Error("ToFilter() snapshot mutated")
	}
}

func TestCountingDiffDrivesPatches(t *testing.T) {
	// The ASAP patch-ad flow: snapshot, mutate, diff, apply at a remote
	// cache.
	c := NewCountingDefault()
	rng := rand.New(rand.NewPCG(7, 7))
	keys := make([]uint64, 50)
	for i := range keys {
		keys[i] = rng.Uint64()
		c.AddKey(keys[i])
	}
	remote := c.ToFilter() // remote cache holds the full ad

	// Local content changes: drop 10 documents' keywords, add 5 new.
	before := c.ToFilter()
	for _, k := range keys[:10] {
		c.RemoveKey(k)
	}
	for i := 0; i < 5; i++ {
		c.AddKey(rng.Uint64())
	}
	patch := before.Diff(c.ToFilter())

	remote.Apply(patch)
	if !remote.Equal(c.ToFilter()) {
		t.Error("remote cache diverged after applying patch ad")
	}
}

func TestCountingCountAccess(t *testing.T) {
	c := NewCounting(64, 2)
	c.AddKey(5)
	total := 0
	for i := uint32(0); i < 64; i++ {
		total += int(c.Count(i))
	}
	if total != 2 {
		t.Errorf("sum of counters = %d, want k=2", total)
	}
}

func TestCountingSaturationIsSticky(t *testing.T) {
	// Saturate a counter: Add stops counting at 65535, so after 65536 adds
	// the filter has lost track of the true multiplicity. From then on the
	// counter must never decrement — one more Remove than increments were
	// recorded would clear a bit whose key is still (logically) present,
	// turning a false positive guarantee into a false negative.
	c := NewCountingDefault()
	const key = uint64(0xfeedbeef)
	const adds = 1 << 16 // one past saturation
	for i := 0; i < adds; i++ {
		c.AddKey(key)
	}
	for i := 0; i < adds-1; i++ {
		c.RemoveKey(key)
	}
	// Logically the key was added once more than removed.
	if !c.ContainsKey(key) {
		t.Fatal("key vanished: a saturated counter was decremented to zero")
	}
	// The saturated positions stay pinned at the ceiling.
	sawMax := false
	for pos := uint32(0); pos < uint32(c.Bits()); pos++ {
		if c.Count(pos) == ^uint16(0) {
			sawMax = true
			break
		}
	}
	if !sawMax {
		t.Error("no counter remained saturated after removals")
	}
}
