package bloom

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Patch is "a list of changed bit locations in the filter" (§III-B): the
// wire payload of a patch ad. Positions appear in ascending order within
// each list. Applying a patch to the filter it was diffed from yields the
// updated filter exactly.
type Patch struct {
	Set     []uint32 // positions that became 1
	Cleared []uint32 // positions that became 0
}

// Empty reports whether the patch changes nothing.
func (p Patch) Empty() bool { return len(p.Set) == 0 && len(p.Cleared) == 0 }

// Len returns the number of changed bit locations.
func (p Patch) Len() int { return len(p.Set) + len(p.Cleared) }

// WireSize returns the encoded size of the patch in bytes. It computes
// the varint lengths directly instead of materialising the encoding — the
// publish hot path sizes a patch per content change and must not allocate
// for it, not even for a caller-built unsorted list.
func (p Patch) WireSize() int {
	s := encodedPosListLen(p.Set)
	if s < 0 {
		s = unsortedPosListLen(p.Set)
	}
	c := encodedPosListLen(p.Cleared)
	if c < 0 {
		c = unsortedPosListLen(p.Cleared)
	}
	return s + c
}

// Encode serialises the patch as two delta-varint position lists, each
// preceded by its length.
func (p Patch) Encode() []byte {
	buf := make([]byte, 0, 2+3*(len(p.Set)+len(p.Cleared)))
	buf = appendPosList(buf, p.Set)
	buf = appendPosList(buf, p.Cleared)
	return buf
}

// DecodePatch parses an encoded patch.
func DecodePatch(data []byte) (Patch, error) {
	set, rest, err := readPosList(data)
	if err != nil {
		return Patch{}, fmt.Errorf("bloom: patch set list: %w", err)
	}
	cleared, rest, err := readPosList(rest)
	if err != nil {
		return Patch{}, fmt.Errorf("bloom: patch cleared list: %w", err)
	}
	if len(rest) != 0 {
		return Patch{}, fmt.Errorf("bloom: %d trailing bytes after patch", len(rest))
	}
	return Patch{Set: set, Cleared: cleared}, nil
}

// EncodeCompressed serialises the filter as a delta-varint list of set-bit
// positions — the "compressed representation" used when a peer shares few
// files and keywords. A 5-byte header carries geometry so the receiver can
// validate.
func (f *Filter) EncodeCompressed() []byte {
	buf := make([]byte, 0, 5+3*f.PopCount())
	buf = binary.AppendUvarint(buf, uint64(f.m))
	buf = append(buf, f.k)
	buf = appendPosList(buf, f.SetBits())
	return buf
}

// maxWireBits bounds the filter geometry a decoder accepts: 2^26 bits
// (8 MB) is orders of magnitude above any filter the sizing pools produce
// (DefaultBits is ~11.5 kbit) yet small enough that a forged header cannot
// make the decoder allocate an arbitrarily large bitmap.
const maxWireBits = 1 << 26

// DecodeCompressed parses a filter encoded by EncodeCompressed.
func DecodeCompressed(data []byte) (*Filter, error) {
	m, n := binary.Uvarint(data)
	if n <= 0 || m == 0 || m > maxWireBits {
		return nil, fmt.Errorf("bloom: bad compressed header")
	}
	data = data[n:]
	if len(data) < 1 {
		return nil, fmt.Errorf("bloom: truncated compressed header")
	}
	k := data[0]
	if k == 0 || k > 64 {
		return nil, fmt.Errorf("bloom: bad hash count %d", k)
	}
	pos, rest, err := readPosList(data[1:])
	if err != nil {
		return nil, fmt.Errorf("bloom: compressed positions: %w", err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("bloom: %d trailing bytes after filter", len(rest))
	}
	f := New(int(m), int(k))
	for _, p := range pos {
		if p >= uint32(m) {
			return nil, fmt.Errorf("bloom: position %d out of range (m=%d)", p, m)
		}
		f.SetBit(p)
	}
	return f, nil
}

// EncodeRaw serialises the filter as its raw bitmap preceded by the same
// 5-byte geometry header.
func (f *Filter) EncodeRaw() []byte {
	nbytes := (int(f.m) + 7) / 8
	buf := make([]byte, 0, 6+nbytes)
	buf = binary.AppendUvarint(buf, uint64(f.m))
	buf = append(buf, f.k)
	for i := 0; i < nbytes; i++ {
		buf = append(buf, byte(f.words[i/8]>>(8*(i%8))))
	}
	return buf
}

// DecodeRaw parses a filter encoded by EncodeRaw.
func DecodeRaw(data []byte) (*Filter, error) {
	m, n := binary.Uvarint(data)
	if n <= 0 || m == 0 || m > maxWireBits {
		return nil, fmt.Errorf("bloom: bad raw header")
	}
	data = data[n:]
	if len(data) < 1 {
		return nil, fmt.Errorf("bloom: truncated raw header")
	}
	k := data[0]
	if k == 0 || k > 64 {
		return nil, fmt.Errorf("bloom: bad hash count %d", k)
	}
	data = data[1:]
	nbytes := (int(m) + 7) / 8
	if len(data) != nbytes {
		return nil, fmt.Errorf("bloom: raw body %d bytes, want %d", len(data), nbytes)
	}
	f := New(int(m), int(k))
	for i, b := range data {
		f.words[i/8] |= uint64(b) << (8 * (i % 8))
	}
	// Mask stray bits beyond m so Equal and PopCount stay exact.
	if rem := f.m % 64; rem != 0 {
		f.words[len(f.words)-1] &= (1 << rem) - 1
	}
	return f, nil
}

// WireSize returns the number of bytes the filter occupies on the wire:
// the smaller of the raw bitmap and the compressed position-list encodings.
// This is the payload size charged to full-ad messages by the simulator.
// Like Patch.WireSize it sums varint lengths without building either
// encoding, so sizing a freshly built filter allocates nothing.
func (f *Filter) WireSize() int {
	raw := 6 + (int(f.m)+7)/8
	comp := uvarintLen(uint64(f.m)) + 1 + uvarintLen(uint64(f.PopCount()))
	prev := uint32(0)
	first := true
	for wi, w := range f.words {
		for ; w != 0; w &= w - 1 {
			pos := uint32(wi*64 + bits.TrailingZeros64(w))
			if first {
				comp += uvarintLen(uint64(pos))
				first = false
			} else {
				comp += uvarintLen(uint64(pos - prev))
			}
			prev = pos
			if comp >= raw {
				return raw
			}
		}
	}
	return comp
}

// uvarintLen returns the encoded length of x as an unsigned varint.
func uvarintLen(x uint64) int { return (bits.Len64(x|1) + 6) / 7 }

// encodedPosListLen returns the byte length appendPosList would write for
// an ascending position list, or -1 when the list is out of order (the
// caller then falls back to encoding, which sorts a copy).
func encodedPosListLen(pos []uint32) int {
	n := uvarintLen(uint64(len(pos)))
	prev := uint32(0)
	for i, p := range pos {
		if i == 0 {
			n += uvarintLen(uint64(p))
		} else {
			if p < prev {
				return -1
			}
			n += uvarintLen(uint64(p - prev))
		}
		prev = p
	}
	return n
}

// unsortedPosListLen sizes appendPosList's output for an out-of-order
// list without sorting a copy: it walks the distinct values in ascending
// order by repeated min-extraction, summing the same count + first-value +
// delta varints the encoder writes. Duplicates sort adjacent and encode as
// one-byte zero deltas. O(distinct · len) time, zero allocations — the
// sorted fast path (encodedPosListLen) covers every list the diff engine
// itself produces, so this only runs on caller-built patches.
func unsortedPosListLen(pos []uint32) int {
	n := uvarintLen(uint64(len(pos)))
	lo := uint32(0)   // next distinct value is the minimum ≥ lo
	prev := uint32(0) // previous distinct value, for delta sizing
	first := true
	for left := len(pos); left > 0; {
		cur := ^uint32(0)
		cnt := 0
		for _, p := range pos {
			switch {
			case p < lo || p > cur:
			case p < cur:
				cur, cnt = p, 1
			default:
				cnt++
			}
		}
		if first {
			n += uvarintLen(uint64(cur))
			first = false
		} else {
			n += uvarintLen(uint64(cur - prev))
		}
		n += cnt - 1 // duplicates: zero deltas, one byte each
		prev = cur
		lo = cur + 1 // cur == MaxUint32 wraps lo to 0, but then left is 0
		left -= cnt
	}
	return n
}

// EncodeWire picks the smaller of the two encodings, prefixing one format
// byte (0 = raw, 1 = compressed).
func (f *Filter) EncodeWire() []byte {
	raw := f.EncodeRaw()
	comp := f.EncodeCompressed()
	if len(comp) < len(raw) {
		return append([]byte{1}, comp...)
	}
	return append([]byte{0}, raw...)
}

// DecodeWire parses a filter encoded by EncodeWire.
func DecodeWire(data []byte) (*Filter, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("bloom: empty wire filter")
	}
	switch data[0] {
	case 0:
		return DecodeRaw(data[1:])
	case 1:
		return DecodeCompressed(data[1:])
	default:
		return nil, fmt.Errorf("bloom: unknown wire format %d", data[0])
	}
}

// appendPosList writes a sorted position list as count + delta varints.
func appendPosList(buf []byte, pos []uint32) []byte {
	if !sort.SliceIsSorted(pos, func(i, j int) bool { return pos[i] < pos[j] }) {
		pos = append([]uint32(nil), pos...)
		sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	}
	buf = binary.AppendUvarint(buf, uint64(len(pos)))
	prev := uint32(0)
	for i, p := range pos {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(p))
		} else {
			buf = binary.AppendUvarint(buf, uint64(p-prev))
		}
		prev = p
	}
	return buf
}

// readPosList parses a list written by appendPosList, returning the
// positions and the unread remainder of data.
func readPosList(data []byte) ([]uint32, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("bad count")
	}
	if count > 1<<28 {
		return nil, nil, fmt.Errorf("implausible count %d", count)
	}
	data = data[n:]
	// Every entry is at least one byte, so a count beyond the remaining
	// bytes is corrupt — reject it before sizing the slice from it.
	if count > uint64(len(data)) {
		return nil, nil, fmt.Errorf("count %d exceeds %d remaining bytes", count, len(data))
	}
	pos := make([]uint32, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		d, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("truncated at entry %d", i)
		}
		data = data[n:]
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		if prev > 1<<31 {
			return nil, nil, fmt.Errorf("position overflow at entry %d", i)
		}
		pos = append(pos, uint32(prev))
	}
	return pos, data, nil
}
