package bloom

import "fmt"

// Counting is a counting Bloom filter: the paper's "collection of 2-tuples
// (i, x), which means that the i-th bit is set x times" (§III-B). A peer
// maintains one Counting filter over its keyword set so that document
// removals can clear bits; the plain bit-array view (ToFilter / View) is
// what travels inside ads.
type Counting struct {
	m      uint32
	k      uint8
	counts []uint16
	flat   *Filter // materialised bit view, kept in sync
}

// NewCounting returns an empty counting filter with the given geometry.
func NewCounting(m, k int) *Counting {
	if m <= 0 || k <= 0 || k > 64 {
		panic(fmt.Sprintf("bloom: invalid geometry m=%d k=%d", m, k))
	}
	return &Counting{m: uint32(m), k: uint8(k), counts: make([]uint16, m), flat: New(m, k)}
}

// NewCountingDefault returns an empty counting filter with the paper's
// fixed geometry.
func NewCountingDefault() *Counting { return NewCounting(DefaultBits, DefaultHashes) }

// Bits returns the filter length in bits.
func (c *Counting) Bits() int { return int(c.m) }

// Add increments the counters for key.
func (c *Counting) Add(key string) { c.addSum(sumString(key)) }

// AddKey is Add for interned integer keys.
func (c *Counting) AddKey(key uint64) { c.addSum(sumUint64(key)) }

func (c *Counting) addSum(sum uint64) {
	c.flat.probe(sum, func(pos uint32) bool {
		if c.counts[pos] == ^uint16(0) {
			// Saturate rather than wrap; with |K_max|=1000 keys and k=8
			// probes a counter can never realistically reach 65535.
			return true
		}
		c.counts[pos]++
		if c.counts[pos] == 1 {
			c.flat.SetBit(pos)
		}
		return true
	})
}

// Remove decrements the counters for key. Removing a key that was never
// added corrupts the filter; the caller (the peer's content manager) must
// only remove keys it previously added. Counters at zero stay at zero.
func (c *Counting) Remove(key string) { c.removeSum(sumString(key)) }

// RemoveKey is Remove for interned integer keys.
func (c *Counting) RemoveKey(key uint64) { c.removeSum(sumUint64(key)) }

func (c *Counting) removeSum(sum uint64) {
	c.flat.probe(sum, func(pos uint32) bool {
		if c.counts[pos] == 0 {
			return true
		}
		if c.counts[pos] == ^uint16(0) {
			// Saturation is sticky: a saturated counter lost track of how
			// many keys map here, so decrementing it could zero a bit some
			// other key still needs. The bit stays set forever — a false
			// positive, never a false negative (mirrors addSum).
			return true
		}
		c.counts[pos]--
		if c.counts[pos] == 0 {
			c.flat.ClearBit(pos)
		}
		return true
	})
}

// Contains reports whether key may be present.
func (c *Counting) Contains(key string) bool { return c.flat.Contains(key) }

// ContainsKey is Contains for interned integer keys.
func (c *Counting) ContainsKey(key uint64) bool { return c.flat.ContainsKey(key) }

// Count returns the counter value at bit position pos.
func (c *Counting) Count(pos uint32) uint16 {
	if pos >= c.m {
		panic(fmt.Sprintf("bloom: bit %d out of range (m=%d)", pos, c.m))
	}
	return c.counts[pos]
}

// View returns the live bit-array view of the counting filter. The returned
// filter is shared: it mutates as the counting filter mutates. Use ToFilter
// for a snapshot.
func (c *Counting) View() *Filter { return c.flat }

// ToFilter returns an independent snapshot of the current bit view. This is
// what a peer embeds in a full ad.
func (c *Counting) ToFilter() *Filter { return c.flat.Clone() }

// Empty reports whether no bits are set.
func (c *Counting) Empty() bool { return c.flat.Empty() }
