package bloom

import "math"

// Paper defaults (§III-B): k = 8 hash functions sized for a maximum keyword
// set of 1,000 entries, giving m = ceil(1000·8/ln 2) = 11,542 bits.
const (
	// DefaultHashes is the number of hash functions k used everywhere.
	DefaultHashes = 8
	// DefaultMaxKeywords is |K_max|, the largest keyword set the fixed
	// geometry is provisioned for.
	DefaultMaxKeywords = 1000
	// DefaultBits is the fixed filter length m in bits.
	DefaultBits = 11542
)

// MinFalsePositive returns the smallest false-positive probability
// reachable with k hash functions: p_min = (1/2)^k. It is attained when the
// filter length satisfies m = n·k/ln 2.
func MinFalsePositive(k int) float64 {
	return math.Pow(0.5, float64(k))
}

// FalsePositiveRate returns the expected false-positive probability of a
// filter of m bits holding n elements under k hash functions:
// (1 - e^(-kn/m))^k.
func FalsePositiveRate(m, n, k int) float64 {
	if m <= 0 || k <= 0 {
		return 1
	}
	if n <= 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// RequiredBits returns the minimum filter length m (in bits) that achieves
// the minimum false-positive rate for n elements under k hash functions:
// m = ceil(n·k / ln 2). With n = 1000 and k = 8 this is the paper's 11,542.
func RequiredBits(n, k int) int {
	return int(math.Ceil(float64(n) * float64(k) / math.Ln2))
}

// BitsPerElement returns the bits-per-element cost k/ln 2 of operating at
// the minimum false-positive point (11.54 bits/element for k = 8).
func BitsPerElement(k int) float64 {
	return float64(k) / math.Ln2
}
