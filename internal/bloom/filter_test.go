package bloom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	f := NewDefault()
	if f.Bits() != DefaultBits {
		t.Errorf("Bits() = %d, want %d", f.Bits(), DefaultBits)
	}
	if f.Hashes() != DefaultHashes {
		t.Errorf("Hashes() = %d, want %d", f.Hashes(), DefaultHashes)
	}
	if !f.Empty() {
		t.Error("new filter not empty")
	}
	if f.PopCount() != 0 {
		t.Errorf("PopCount() = %d, want 0", f.PopCount())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct{ m, k int }{{0, 8}, {-1, 8}, {100, 0}, {100, -3}, {100, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", tc.m, tc.k)
				}
			}()
			New(tc.m, tc.k)
		}()
	}
}

func TestNoFalseNegativesStrings(t *testing.T) {
	f := NewDefault()
	keys := []string{"jazz", "pop", "country", "miles davis", "kind of blue", "", "日本語", "a b c"}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Errorf("Contains(%q) = false after Add", k)
		}
	}
}

// Property: a Bloom filter never returns a false negative, for any batch of
// integer keys.
func TestNoFalseNegativesProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := New(2048, 6)
		for _, k := range keys {
			f.AddKey(k)
		}
		for _, k := range keys {
			if !f.ContainsKey(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ContainsAllKeys is the conjunction of per-key membership.
func TestContainsAllKeysProperty(t *testing.T) {
	prop := func(add, query []uint64) bool {
		f := New(4096, 8)
		for _, k := range add {
			f.AddKey(k)
		}
		want := true
		for _, k := range query {
			if !f.ContainsKey(k) {
				want = false
				break
			}
		}
		return f.ContainsAllKeys(query) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateNearPrediction(t *testing.T) {
	// Load the paper's geometry to its design point (1,000 keys) and
	// measure the empirical false-positive rate against the prediction
	// p ≈ 0.39%.
	f := NewDefault()
	rng := rand.New(rand.NewPCG(1, 2))
	present := make(map[uint64]bool, 1000)
	for len(present) < DefaultMaxKeywords {
		k := rng.Uint64()
		present[k] = true
		f.AddKey(k)
	}
	const trials = 200000
	fp := 0
	for i := 0; i < trials; i++ {
		k := rng.Uint64()
		if present[k] {
			continue
		}
		if f.ContainsKey(k) {
			fp++
		}
	}
	got := float64(fp) / trials
	want := FalsePositiveRate(DefaultBits, DefaultMaxKeywords, DefaultHashes)
	if got > 3*want+0.001 {
		t.Errorf("empirical FP rate %.4f far above predicted %.4f", got, want)
	}
	if want > 0.006 {
		t.Errorf("predicted FP rate %.4f, paper says ≈0.39%%", want)
	}
}

func TestBitOps(t *testing.T) {
	f := New(128, 4)
	f.SetBit(0)
	f.SetBit(63)
	f.SetBit(64)
	f.SetBit(127)
	for _, p := range []uint32{0, 63, 64, 127} {
		if !f.Bit(p) {
			t.Errorf("Bit(%d) = false after SetBit", p)
		}
	}
	if f.PopCount() != 4 {
		t.Errorf("PopCount() = %d, want 4", f.PopCount())
	}
	f.ClearBit(63)
	if f.Bit(63) {
		t.Error("Bit(63) still set after ClearBit")
	}
	if got := f.SetBits(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 127 {
		t.Errorf("SetBits() = %v, want [0 64 127]", got)
	}
}

func TestBitOpsPanicOutOfRange(t *testing.T) {
	f := New(100, 4)
	defer func() {
		if recover() == nil {
			t.Error("SetBit(100) on m=100 filter did not panic")
		}
	}()
	f.SetBit(100)
}

func TestCloneIndependence(t *testing.T) {
	f := NewDefault()
	f.Add("original")
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal to source")
	}
	g.Add("extra key only in clone")
	if f.Equal(g) {
		t.Error("mutating clone affected source or Equal is broken")
	}
	if !f.Contains("original") {
		t.Error("source lost key after clone mutation")
	}
}

func TestClear(t *testing.T) {
	f := NewDefault()
	for i := uint64(0); i < 100; i++ {
		f.AddKey(i)
	}
	f.Clear()
	if !f.Empty() {
		t.Error("filter not empty after Clear")
	}
}

func TestEqualGeometryMismatch(t *testing.T) {
	a := New(128, 4)
	b := New(128, 5)
	c := New(192, 4)
	if a.Equal(b) || a.Equal(c) {
		t.Error("filters with different geometry reported equal")
	}
}

// Property: Diff/Apply round-trips — applying f.Diff(g) to a clone of f
// yields exactly g.
func TestDiffApplyProperty(t *testing.T) {
	prop := func(aKeys, bKeys []uint64) bool {
		f := New(1024, 5)
		g := New(1024, 5)
		for _, k := range aKeys {
			f.AddKey(k)
		}
		for _, k := range bKeys {
			g.AddKey(k)
		}
		h := f.Clone()
		h.Apply(f.Diff(g))
		return h.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDiffEmptyOnEqualFilters(t *testing.T) {
	f := NewDefault()
	f.Add("x")
	p := f.Diff(f.Clone())
	if !p.Empty() {
		t.Errorf("Diff of equal filters not empty: %+v", p)
	}
}

func TestDiffPanicsOnGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Diff across geometries did not panic")
		}
	}()
	New(128, 4).Diff(New(256, 4))
}

func TestProbeSpreadsAcrossFilter(t *testing.T) {
	// With k=8 distinct probes per key the popcount after one insertion
	// should almost always be 8 (collisions among 8 probes in 11,542 bits
	// are rare); assert at least 6 to allow for collisions.
	f := NewDefault()
	f.Add("spread-check")
	if pc := f.PopCount(); pc < 6 || pc > 8 {
		t.Errorf("PopCount after one Add = %d, want 6..8", pc)
	}
}

func TestStringAndKeyDomainsIndependent(t *testing.T) {
	f := NewDefault()
	f.AddKey(42)
	if !f.ContainsKey(42) {
		t.Error("ContainsKey(42) = false after AddKey")
	}
	// The string "42" hashes differently from the integer 42 (little-endian
	// 8-byte encoding); membership should not leak across domains.
	if f.Contains("42") && f.ContainsKey(999999999) {
		t.Log("coincidental false positive; acceptable")
	}
}

func TestMathConstantsMatchPaper(t *testing.T) {
	// p_min = (1/2)^8 = 0.39%
	if got := MinFalsePositive(8); math.Abs(got-0.00390625) > 1e-12 {
		t.Errorf("MinFalsePositive(8) = %v, want 0.00390625", got)
	}
	// m = 1000·8/ln2 = 11,542 bits
	if got := RequiredBits(1000, 8); got != 11542 {
		t.Errorf("RequiredBits(1000, 8) = %d, want 11542", got)
	}
	// 11.54 bits per element
	if got := BitsPerElement(8); math.Abs(got-11.5416) > 0.01 {
		t.Errorf("BitsPerElement(8) = %v, want ≈11.54", got)
	}
	// (0.6185)^(m/n) formulation agrees with (1/2)^k at the design point.
	alt := math.Pow(0.6185, 11542.0/1000.0)
	if math.Abs(alt-MinFalsePositive(8))/MinFalsePositive(8) > 0.02 {
		t.Errorf("0.6185^(m/n) = %v diverges from p_min = %v", alt, MinFalsePositive(8))
	}
}

func TestFalsePositiveRateEdgeCases(t *testing.T) {
	if got := FalsePositiveRate(0, 10, 8); got != 1 {
		t.Errorf("FP with m=0 = %v, want 1", got)
	}
	if got := FalsePositiveRate(1024, 0, 8); got != 0 {
		t.Errorf("FP with n=0 = %v, want 0", got)
	}
	// Monotone in n.
	if FalsePositiveRate(1024, 10, 4) >= FalsePositiveRate(1024, 500, 4) {
		t.Error("FP rate not increasing in n")
	}
}
