package bloom

import (
	"bytes"
	"testing"
)

// FuzzFilterWire feeds arbitrary bytes to the wire-filter decoder: it must
// never panic or allocate a bitmap larger than maxWireBits, and any filter
// it accepts must reach an encode/decode fixpoint (re-encoding yields a
// filter equal to the first decode).
func FuzzFilterWire(f *testing.F) {
	small := NewDefault()
	for _, k := range []uint64{1, 42, 1 << 40} {
		small.AddKey(k)
	}
	f.Add(small.EncodeWire())
	dense := NewDefault()
	for k := uint64(0); k < 2000; k++ {
		dense.AddKey(k) // dense enough that raw beats compressed
	}
	f.Add(dense.EncodeWire())
	f.Add(append([]byte{0}, dense.EncodeRaw()...))
	f.Add(append([]byte{1}, small.EncodeCompressed()...))
	f.Add([]byte{})
	f.Add([]byte{2, 0, 0})                      // unknown format byte
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0x7f, 8}) // oversized geometry

	f.Fuzz(func(t *testing.T, data []byte) {
		f1, err := DecodeWire(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		wire := f1.EncodeWire()
		f2, err := DecodeWire(wire)
		if err != nil {
			t.Fatalf("decoding re-encoded filter: %v", err)
		}
		if !f1.Equal(f2) {
			t.Fatal("re-encoded filter differs from first decode")
		}
	})
}

// FuzzPatchDecode feeds arbitrary bytes to the patch decoder: no panics,
// and accepted patches must re-encode to the exact same bytes (the encoder
// canonicalises, so a decoded patch is already canonical).
func FuzzPatchDecode(f *testing.F) {
	p := Patch{Set: []uint32{3, 90, 91, 4000}, Cleared: []uint32{17}}
	f.Add(p.Encode())
	f.Add(Patch{}.Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f}) // count exceeding the data

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePatch(data)
		if err != nil {
			return
		}
		enc := p.Encode()
		p2, err := DecodePatch(enc)
		if err != nil {
			t.Fatalf("decoding re-encoded patch: %v", err)
		}
		if !bytes.Equal(enc, p2.Encode()) {
			t.Fatal("patch encoding is not a fixpoint")
		}
	})
}

// TestDecodeWireRejectsOversizedGeometry pins the maxWireBits cap: a tiny
// forged header must not make the decoder allocate a giant bitmap.
func TestDecodeWireRejectsOversizedGeometry(t *testing.T) {
	// m = 2^30 as a varint, k = 8, raw format — body absent.
	hdr := []byte{0, 0x80, 0x80, 0x80, 0x80, 0x04, 8}
	if _, err := DecodeWire(hdr); err == nil {
		t.Fatal("raw decode accepted m beyond maxWireBits")
	}
	hdr[0] = 1 // compressed format
	if _, err := DecodeWire(hdr); err == nil {
		t.Fatal("compressed decode accepted m beyond maxWireBits")
	}
}
