package bloom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDefaultLengthPool(t *testing.T) {
	pool := DefaultLengthPool()
	if len(pool) < 5 {
		t.Fatalf("pool too small: %v", pool)
	}
	for i := 1; i < len(pool); i++ {
		if pool[i] <= pool[i-1] {
			t.Fatalf("pool not ascending at %d: %v", i, pool)
		}
	}
	// The fixed geometry must be in the pool (the paper's fixed scheme is
	// the variable scheme's design point for |K_max| keys).
	found := false
	for _, l := range pool {
		if l == DefaultBits {
			found = true
		}
	}
	if !found {
		t.Error("pool missing the fixed length 11,542")
	}
}

func TestChooseLength(t *testing.T) {
	pool := DefaultLengthPool()
	cases := []struct {
		n    int
		want int
	}{
		{1, pool[0]},     // tiny sharer → smallest filter
		{62, pool[0]},    // at the smallest design point
		{63, pool[1]},    // just above it
		{1000, 11542},    // the paper's worked example
		{4000, pool[6]},  // heavy sharer → largest
		{40000, pool[6]}, // beyond the pool → clamp to max
	}
	for _, tc := range cases {
		if got := ChooseLength(tc.n, DefaultHashes, pool); got != tc.want {
			t.Errorf("ChooseLength(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// Empty pool falls back to the exact requirement.
	if got := ChooseLength(1000, 8, nil); got != RequiredBits(1000, 8) {
		t.Errorf("ChooseLength with nil pool = %d", got)
	}
	if got := ChooseLength(0, 8, nil); got <= 0 {
		t.Errorf("ChooseLength(0) = %d, want positive", got)
	}
}

// Property: a variable-length filter never yields false negatives, for
// any key set within (or beyond) its design load.
func TestVarLenNoFalseNegativesProperty(t *testing.T) {
	prop := func(keys []uint64) bool {
		f := NewSized(len(keys))
		for _, k := range keys {
			f.AddKey(k)
		}
		for _, k := range keys {
			if !f.ContainsKey(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVarLenFalsePositiveAtDesignLoad(t *testing.T) {
	// A pool-sized filter loaded to its key count should stay near the
	// design false-positive rate, for small and large sharers alike.
	rng := rand.New(rand.NewPCG(3, 9))
	for _, n := range []int{20, 125, 500, 1000} {
		f := NewSized(n)
		present := map[uint64]bool{}
		for len(present) < n {
			k := rng.Uint64()
			present[k] = true
			f.AddKey(k)
		}
		fp := 0
		const trials = 50000
		for i := 0; i < trials; i++ {
			k := rng.Uint64()
			if !present[k] && f.ContainsKey(k) {
				fp++
			}
		}
		rate := float64(fp) / trials
		predicted := FalsePositiveRate(f.Bits(), n, DefaultHashes)
		if rate > 3*predicted+0.003 {
			t.Errorf("n=%d: empirical FP %.4f far above predicted %.4f (m=%d)", n, rate, predicted, f.Bits())
		}
	}
}

func TestVarLenSavesWireBytes(t *testing.T) {
	// The point of variable sizing: small sharers ship much smaller full
	// ads. Compare a 30-keyword node under both schemes.
	rng := rand.New(rand.NewPCG(4, 4))
	keys := make([]uint64, 30)
	fixed := NewDefault()
	sized := NewSized(len(keys))
	for i := range keys {
		keys[i] = rng.Uint64()
		fixed.AddKey(keys[i])
		sized.AddKey(keys[i])
	}
	if sized.Bits() >= fixed.Bits() {
		t.Fatalf("sized filter %d bits not below fixed %d", sized.Bits(), fixed.Bits())
	}
	if sized.WireSize() > fixed.WireSize() {
		t.Errorf("sized wire %d B above fixed %d B", sized.WireSize(), fixed.WireSize())
	}
}

// Property: filters of different lengths probed with the same universal
// hash family agree on definite negatives propagated through Diff/Apply —
// i.e. geometry travels correctly with patches across lengths.
func TestVarLenPatchWithinGeometry(t *testing.T) {
	prop := func(aKeys, bKeys []uint64, pick uint8) bool {
		pool := DefaultLengthPool()
		l := pool[int(pick)%len(pool)]
		f := New(l, DefaultHashes)
		g := New(l, DefaultHashes)
		for _, k := range aKeys {
			f.AddKey(k)
		}
		for _, k := range bKeys {
			g.AddKey(k)
		}
		h := f.Clone()
		h.Apply(f.Diff(g))
		return h.Equal(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVarLenWireRoundTripAcrossPool(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	for _, l := range DefaultLengthPool() {
		f := New(l, DefaultHashes)
		for i := 0; i < l/20; i++ {
			f.AddKey(rng.Uint64())
		}
		g, err := DecodeWire(f.EncodeWire())
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if !f.Equal(g) {
			t.Fatalf("l=%d: wire round trip lost bits", l)
		}
		if g.Bits() != l {
			t.Fatalf("l=%d: geometry lost (%d)", l, g.Bits())
		}
	}
}

// BenchmarkAblationFilterSizing contrasts fixed and variable sizing at
// typical sharer sizes (DESIGN.md D1): wire bytes of a full ad.
func BenchmarkAblationFilterSizing(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	for _, n := range []int{15, 60, 250, 1000} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
		}
		b.Run("fixed/n="+itoa(n), func(b *testing.B) {
			var wire int
			for i := 0; i < b.N; i++ {
				f := NewDefault()
				for _, k := range keys {
					f.AddKey(k)
				}
				wire = f.WireSize()
			}
			b.ReportMetric(float64(wire), "wire-bytes")
		})
		b.Run("variable/n="+itoa(n), func(b *testing.B) {
			var wire int
			for i := 0; i < b.N; i++ {
				f := NewSized(n)
				for _, k := range keys {
					f.AddKey(k)
				}
				wire = f.WireSize()
			}
			b.ReportMetric(float64(wire), "wire-bytes")
		})
	}
}
