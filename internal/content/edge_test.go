package content

import (
	"math"
	"testing"
)

// TestAllSingleCopy: SingleCopyFrac = 1 forces exactly one copy per doc
// and AvgCopies must be 1 for feasibility.
func TestAllSingleCopy(t *testing.T) {
	c := testConfig()
	c.SingleCopyFrac = 1
	c.AvgCopies = 1
	u := Generate(c)
	mean, single := u.CopyStats()
	if single != 1 {
		t.Errorf("single-copy fraction %v, want 1", single)
	}
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("mean copies %v, want exactly 1", mean)
	}
}

// TestNoFreeRiders: with FreeRiderFrac = 0 only capacity-starved peers
// may end up riding free.
func TestNoFreeRiders(t *testing.T) {
	c := testConfig()
	c.FreeRiderFrac = 0
	u := Generate(c)
	// Some peers may still end with zero docs if pools run dry, but the
	// overwhelming majority must share.
	if frac := float64(u.FreeRiderCount(nil)) / float64(u.NumPeers()); frac > 0.05 {
		t.Errorf("free-rider fraction %v with FreeRiderFrac=0", frac)
	}
}

// TestHighReplication: a generously replicated universe for ablations.
func TestHighReplication(t *testing.T) {
	c := testConfig()
	c.AvgCopies = 4
	c.SingleCopyFrac = 0.2
	c.NumDocs = 5000 // keep total instances within peer capacity
	u := Generate(c)
	mean, single := u.CopyStats()
	if mean < 3.0 {
		t.Errorf("mean copies %v, want ≈4", mean)
	}
	if single > 0.3 {
		t.Errorf("single fraction %v, want ≈0.2", single)
	}
}

// TestSingleInterestPeers: Min=Max=1 pins every sharer to one class.
func TestSingleInterestPeers(t *testing.T) {
	c := testConfig()
	c.MinInterests, c.MaxInterests = 1, 1
	u := Generate(c)
	for id := 0; id < u.NumPeers(); id++ {
		p := u.Peer(PeerID(id))
		if !p.FreeRider && p.Interests.Count() != 1 {
			t.Fatalf("sharer %d has %d interests, want 1", id, p.Interests.Count())
		}
	}
}

// TestWideKeywordRange: MaxKeywords at the representation limit.
func TestWideKeywordRange(t *testing.T) {
	c := testConfig()
	c.MinKeywords, c.MaxKeywords = 1, 12
	u := Generate(c)
	seenWide := false
	for d := 0; d < u.NumDocs(); d++ {
		n := len(u.Keywords(DocID(d)))
		if n < 1 || n > 12 {
			t.Fatalf("doc %d has %d keywords", d, n)
		}
		if n >= 10 {
			seenWide = true
		}
	}
	if !seenWide {
		t.Error("no wide-keyword docs generated")
	}
}
