package content

import "fmt"

// Config calibrates the synthetic universe. DefaultConfig reproduces every
// statistic the paper quotes about the eDonkey trace.
type Config struct {
	NumPeers int // peers in the observed universe (paper: 37,000)
	NumDocs  int // distinct documents (paper: 923,000)

	AvgCopies      float64 // mean copies per document (paper: ≈1.28)
	SingleCopyFrac float64 // fraction of documents with exactly one copy (paper: 0.89)
	FreeRiderFrac  float64 // fraction of peers sharing nothing (Saroiu et al. [25]: ≈25%)

	MinInterests int // sharer target interest classes, lower bound
	MaxInterests int // sharer target interest classes, upper bound
	MinKeywords  int // keywords per document, lower bound
	MaxKeywords  int // keywords per document, upper bound

	VocabPerClass int     // distinct keywords per semantic class
	ClassSkew     float64 // Zipf exponent of class popularity (Fig. 2 shape)
	KeywordSkew   float64 // Zipf exponent of keyword usage within a class
	CapacitySigma float64 // lognormal σ of per-peer shared-document counts

	Seed uint64
}

// DefaultConfig returns the full-scale universe matching the eDonkey trace
// statistics quoted in §IV-B and §V-A.
func DefaultConfig() Config {
	return Config{
		NumPeers:       37000,
		NumDocs:        923000,
		AvgCopies:      1.28,
		SingleCopyFrac: 0.89,
		FreeRiderFrac:  0.25,
		MinInterests:   1,
		MaxInterests:   4,
		MinKeywords:    2,
		MaxKeywords:    6,
		VocabPerClass:  4000,
		ClassSkew:      0.8,
		KeywordSkew:    1.05,
		CapacitySigma:  1.0,
		Seed:           1,
	}
}

// Scaled returns the configuration shrunk by factor f (0 < f ≤ 1) in peers
// and documents; all distributional knobs are preserved so the universe
// keeps its statistical shape.
func (c Config) Scaled(f float64) Config {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("content: scale factor %v out of (0,1]", f))
	}
	c.NumPeers = max(10, int(float64(c.NumPeers)*f))
	c.NumDocs = max(20, int(float64(c.NumDocs)*f))
	return c
}

// SmallConfig returns a 1/5-scale universe for tests and scaled benches.
func SmallConfig() Config { return DefaultConfig().Scaled(0.2) }

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.NumPeers <= 0 || c.NumDocs <= 0:
		return fmt.Errorf("content: need positive peers/docs, got %d/%d", c.NumPeers, c.NumDocs)
	case c.AvgCopies < 1:
		return fmt.Errorf("content: AvgCopies %v < 1", c.AvgCopies)
	case c.SingleCopyFrac < 0 || c.SingleCopyFrac > 1:
		return fmt.Errorf("content: SingleCopyFrac %v out of [0,1]", c.SingleCopyFrac)
	case c.FreeRiderFrac < 0 || c.FreeRiderFrac >= 1:
		return fmt.Errorf("content: FreeRiderFrac %v out of [0,1)", c.FreeRiderFrac)
	case c.MinInterests < 1 || c.MaxInterests < c.MinInterests || c.MaxInterests > NumClasses:
		return fmt.Errorf("content: interest bounds [%d,%d] invalid", c.MinInterests, c.MaxInterests)
	case c.MinKeywords < 1 || c.MaxKeywords < c.MinKeywords:
		return fmt.Errorf("content: keyword bounds [%d,%d] invalid", c.MinKeywords, c.MaxKeywords)
	case c.VocabPerClass < c.MaxKeywords:
		return fmt.Errorf("content: vocabulary %d smaller than MaxKeywords %d", c.VocabPerClass, c.MaxKeywords)
	case c.ClassSkew < 0 || c.KeywordSkew < 0:
		return fmt.Errorf("content: negative skew")
	case c.CapacitySigma < 0:
		return fmt.Errorf("content: negative CapacitySigma")
	}
	// The copy distribution must be feasible: mean ≥ contribution of the
	// single-copy mass.
	if c.AvgCopies < c.SingleCopyFrac+2*(1-c.SingleCopyFrac) && c.SingleCopyFrac < 1 {
		return fmt.Errorf("content: AvgCopies %v infeasible with SingleCopyFrac %v", c.AvgCopies, c.SingleCopyFrac)
	}
	return nil
}
