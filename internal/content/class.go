package content

import (
	"math/bits"
	"strings"
)

// Class is one of the 14 semantic categories the paper classifies eDonkey
// files into (§IV-B step 2). Classes double as ad topics and peer
// interests: "these semantic classes also define the universal set of peer
// interests and ad topics".
type Class uint8

// NumClasses is the size of the universal topic set U.
const NumClasses = 14

// classNames gives human-readable labels for the 14 categories. The paper
// does not enumerate its category names ("deduced from file name and
// extension"); these follow the usual eDonkey media taxonomy.
var classNames = [NumClasses]string{
	"audio", "video", "software", "documents", "images", "archives",
	"games", "ebooks", "source", "presentations", "spreadsheets",
	"fonts", "subtitles", "misc",
}

// String returns the class label.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return "invalid"
}

// ClassSet is a bitmask over the 14 classes: a node's interest set I(p) or
// an ad's topic set T(a).
type ClassSet uint16

// Add returns the set with c included.
func (s ClassSet) Add(c Class) ClassSet { return s | 1<<c }

// Has reports whether c is in the set.
func (s ClassSet) Has(c Class) bool { return s&(1<<c) != 0 }

// Intersects reports whether the two sets overlap. "A node q is interested
// in ad a if there is nonempty intersection between T(a) and I(q)"
// (§III-B).
func (s ClassSet) Intersects(t ClassSet) bool { return s&t != 0 }

// Count returns the number of classes in the set.
func (s ClassSet) Count() int { return bits.OnesCount16(uint16(s)) }

// Empty reports whether the set is empty.
func (s ClassSet) Empty() bool { return s == 0 }

// Classes expands the set into a slice of classes in ascending order.
func (s ClassSet) Classes() []Class {
	out := make([]Class, 0, s.Count())
	for c := Class(0); c < NumClasses; c++ {
		if s.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the set as a comma-separated label list.
func (s ClassSet) String() string {
	if s.Empty() {
		return "∅"
	}
	var b strings.Builder
	for i, c := range s.Classes() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.String())
	}
	return b.String()
}
