package content

import (
	"math"
	"math/rand/v2"
	"sort"
)

// Keyword is an interned keyword identifier. Keywords are class-scoped:
// keyword k of class c has ID c·VocabPerClass + k + 1 (0 is reserved as
// "no keyword"). Interning keeps the 923,000-document universe compact;
// the Bloom layer hashes the integer directly.
type Keyword uint32

// DocID identifies a distinct document (file name) in the universe.
type DocID uint32

// PeerID identifies a peer in the universe, 0 ≤ id < NumPeers.
type PeerID int32

// Document is one distinct file: its semantic class and a view into the
// keyword arena. Keyword slices are sorted ascending.
type Document struct {
	Class Class
	kwOff uint32
	kwLen uint8
	hOff  uint32
	hLen  uint8
}

// Peer is one peer's static profile: its interest set I(p), free-rider
// flag, and the documents it shares at trace start.
type Peer struct {
	Interests ClassSet
	FreeRider bool
	Docs      []DocID
}

// Universe is an immutable content-distribution snapshot. It is safe for
// concurrent reads.
type Universe struct {
	cfg     Config
	docs    []Document
	peers   []Peer
	kwArena []Keyword // all documents' keywords, concatenated
	hArena  []PeerID  // all documents' initial holders, concatenated

	sharerCount int // peers that were assigned sharing capacity
}

// Generate builds a universe from cfg. It panics on an invalid
// configuration.
func Generate(cfg Config) *Universe {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xda3e39cb94b95bdb))
	u := &Universe{cfg: cfg}
	u.generatePeers(rng)
	u.generateDocs(rng)
	u.finalizeInterests()
	return u
}

// Config returns the generating configuration.
func (u *Universe) Config() Config { return u.cfg }

// NumDocs returns the number of distinct documents.
func (u *Universe) NumDocs() int { return len(u.docs) }

// NumPeers returns the number of peers.
func (u *Universe) NumPeers() int { return len(u.peers) }

// Peer returns peer id's profile. The returned pointer aliases universe
// state; callers must not mutate it.
func (u *Universe) Peer(id PeerID) *Peer { return &u.peers[id] }

// ClassOf returns the document's semantic class.
func (u *Universe) ClassOf(d DocID) Class { return u.docs[d].Class }

// Keywords returns the document's sorted keyword list as a shared view.
func (u *Universe) Keywords(d DocID) []Keyword {
	doc := &u.docs[d]
	return u.kwArena[doc.kwOff : doc.kwOff+uint32(doc.kwLen)]
}

// Holders returns the peers sharing the document at trace start, as a
// shared view.
func (u *Universe) Holders(d DocID) []PeerID {
	doc := &u.docs[d]
	return u.hArena[doc.hOff : doc.hOff+uint32(doc.hLen)]
}

// TotalInstances returns the number of (document, holder) pairs: the total
// copies in the universe.
func (u *Universe) TotalInstances() int { return len(u.hArena) }

// DocMatches reports whether the document contains every query term — the
// ground truth a content confirmation checks against.
func (u *Universe) DocMatches(d DocID, terms []Keyword) bool {
	kws := u.Keywords(d)
	for _, t := range terms {
		i := sort.Search(len(kws), func(i int) bool { return kws[i] >= t })
		if i == len(kws) || kws[i] != t {
			return false
		}
	}
	return len(terms) > 0
}

// classWeights returns the skewed popularity weights of the 14 classes and
// their cumulative sum.
func (u *Universe) classWeights() ([NumClasses]float64, float64) {
	var w [NumClasses]float64
	total := 0.0
	for c := 0; c < NumClasses; c++ {
		w[c] = 1 / math.Pow(float64(c+1), u.cfg.ClassSkew)
		total += w[c]
	}
	return w, total
}

func sampleClass(w *[NumClasses]float64, total float64, rng *rand.Rand) Class {
	x := rng.Float64() * total
	for c := 0; c < NumClasses-1; c++ {
		x -= w[c]
		if x < 0 {
			return Class(c)
		}
	}
	return NumClasses - 1
}

// generatePeers draws each peer's free-rider flag, target interest set and
// sharing capacity, and builds per-class assignment pools.
func (u *Universe) generatePeers(rng *rand.Rand) {
	cfg := u.cfg
	u.peers = make([]Peer, cfg.NumPeers)
	w, totalW := u.classWeights()

	sharers := 0
	for i := range u.peers {
		if rng.Float64() < cfg.FreeRiderFrac {
			u.peers[i].FreeRider = true
			// Free-rider interests are assigned randomly (§IV-B step 3).
			n := 1 + rng.IntN(3)
			var s ClassSet
			for s.Count() < n {
				s = s.Add(Class(rng.IntN(NumClasses)))
			}
			u.peers[i].Interests = s
			continue
		}
		sharers++
		n := cfg.MinInterests + rng.IntN(cfg.MaxInterests-cfg.MinInterests+1)
		var s ClassSet
		for s.Count() < n {
			s = s.Add(sampleClass(&w, totalW, rng))
		}
		u.peers[i].Interests = s
	}
	u.sharerCount = sharers
}

// generateDocs creates the documents, draws their replication counts, and
// assigns copies to interested peers through per-class slot pools.
func (u *Universe) generateDocs(rng *rand.Rand) {
	cfg := u.cfg
	w, totalW := u.classWeights()

	// Target total copies and per-sharer capacities (lognormal, mean
	// totalCopies/sharers, minimum 1).
	totalCopies := float64(cfg.NumDocs) * cfg.AvgCopies
	meanCap := totalCopies / math.Max(1, float64(u.sharerCount))
	mu := math.Log(meanCap) - cfg.CapacitySigma*cfg.CapacitySigma/2

	// pools[c] lists peer slots willing to host a class-c document.
	var pools [NumClasses][]PeerID
	for id := range u.peers {
		p := &u.peers[id]
		if p.FreeRider {
			continue
		}
		capacity := int(math.Round(math.Exp(rng.NormFloat64()*cfg.CapacitySigma + mu)))
		if capacity < 1 {
			capacity = 1
		}
		interests := p.Interests.Classes()
		for s := 0; s < capacity; s++ {
			c := interests[rng.IntN(len(interests))]
			pools[c] = append(pools[c], PeerID(id))
		}
	}
	for c := range pools {
		rng.Shuffle(len(pools[c]), func(i, j int) {
			pools[c][i], pools[c][j] = pools[c][j], pools[c][i]
		})
	}

	// Geometric tail parameter for multi-copy documents: mean copies
	// must come out at AvgCopies given SingleCopyFrac.
	var pGeom float64
	if cfg.SingleCopyFrac < 1 {
		t := (cfg.AvgCopies - cfg.SingleCopyFrac - 2*(1-cfg.SingleCopyFrac)) / (1 - cfg.SingleCopyFrac)
		pGeom = 1 / (1 + math.Max(0, t))
	}

	// Shared keyword-rank CDF (Zipf over the class vocabulary).
	kwCum := make([]float64, cfg.VocabPerClass)
	acc := 0.0
	for i := range kwCum {
		acc += 1 / math.Pow(float64(i+1), cfg.KeywordSkew)
		kwCum[i] = acc
	}
	sampleKeyword := func(c Class) Keyword {
		x := rng.Float64() * acc
		i := sort.SearchFloat64s(kwCum, x)
		if i >= cfg.VocabPerClass {
			i = cfg.VocabPerClass - 1
		}
		return Keyword(int(c)*cfg.VocabPerClass + i + 1)
	}

	u.docs = make([]Document, 0, cfg.NumDocs)
	u.kwArena = make([]Keyword, 0, cfg.NumDocs*(cfg.MinKeywords+cfg.MaxKeywords)/2)
	u.hArena = make([]PeerID, 0, int(totalCopies)+cfg.NumDocs/10)

	var kwScratch []Keyword
	for d := 0; d < cfg.NumDocs; d++ {
		c := sampleClass(&w, totalW, rng)
		if len(pools[c]) == 0 {
			// The class pool ran dry: reassign to the fullest pool so the
			// "peers hold only interesting documents" invariant holds.
			best, bestLen := c, 0
			for cc := Class(0); cc < NumClasses; cc++ {
				if len(pools[cc]) > bestLen {
					best, bestLen = cc, len(pools[cc])
				}
			}
			if bestLen == 0 {
				break // universe capacity exhausted; docs truncated
			}
			c = best
		}

		copies := 1
		if rng.Float64() >= cfg.SingleCopyFrac && pGeom > 0 {
			copies = 2
			for rng.Float64() >= pGeom {
				copies++
			}
		}

		hOff := uint32(len(u.hArena))
		assigned := 0
		for assigned < copies && len(pools[c]) > 0 && assigned < 255 {
			pool := pools[c]
			id := pool[len(pool)-1]
			pools[c] = pool[:len(pool)-1]
			if containsPeer(u.hArena[hOff:], id) {
				continue // same holder drawn twice; copy dropped
			}
			u.hArena = append(u.hArena, id)
			assigned++
		}
		if assigned == 0 {
			continue // nobody left to host it; drop the document
		}

		// Keywords: MinKeywords..MaxKeywords distinct class-vocabulary
		// terms, sorted.
		nkw := cfg.MinKeywords + rng.IntN(cfg.MaxKeywords-cfg.MinKeywords+1)
		kwScratch = kwScratch[:0]
		for tries := 0; len(kwScratch) < nkw && tries < nkw*4; tries++ {
			kw := sampleKeyword(c)
			if !containsKeyword(kwScratch, kw) {
				kwScratch = append(kwScratch, kw)
			}
		}
		sort.Slice(kwScratch, func(i, j int) bool { return kwScratch[i] < kwScratch[j] })
		kwOff := uint32(len(u.kwArena))
		u.kwArena = append(u.kwArena, kwScratch...)

		doc := Document{Class: c, kwOff: kwOff, kwLen: uint8(len(kwScratch)), hOff: hOff, hLen: uint8(assigned)}
		u.docs = append(u.docs, doc)
		docID := DocID(len(u.docs) - 1)
		for _, h := range u.hArena[hOff : hOff+uint32(assigned)] {
			u.peers[h].Docs = append(u.peers[h].Docs, docID)
		}
	}
}

// finalizeInterests sets each sharer's interest set to the classes of its
// actual contents (§IV-B step 3). Sharers that ended up with no documents
// keep their target interests and are flagged free-riders.
func (u *Universe) finalizeInterests() {
	for id := range u.peers {
		p := &u.peers[id]
		if p.FreeRider {
			continue
		}
		if len(p.Docs) == 0 {
			p.FreeRider = true
			continue
		}
		var s ClassSet
		for _, d := range p.Docs {
			s = s.Add(u.docs[d].Class)
		}
		p.Interests = s
	}
}

func containsPeer(xs []PeerID, x PeerID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func containsKeyword(xs []Keyword, x Keyword) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// ClassOfKeyword returns the semantic class a keyword belongs to. Keywords
// are class-scoped by construction (see Keyword), so the mapping is exact:
// a document can only contain keyword kw if its class is ClassOfKeyword(kw).
func (u *Universe) ClassOfKeyword(kw Keyword) Class {
	return Class((int(kw) - 1) / u.cfg.VocabPerClass)
}
