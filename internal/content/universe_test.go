package content

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// testConfig is a fast universe for unit tests (~1/50 scale).
func testConfig() Config {
	c := DefaultConfig()
	c.NumPeers = 800
	c.NumDocs = 20000
	return c
}

func genTest(t *testing.T) *Universe {
	t.Helper()
	return Generate(testConfig())
}

func TestValidateDefaults(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := SmallConfig().Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.NumPeers = 0 },
		func(c *Config) { c.AvgCopies = 0.5 },
		func(c *Config) { c.SingleCopyFrac = 1.5 },
		func(c *Config) { c.FreeRiderFrac = 1 },
		func(c *Config) { c.MaxInterests = 0 },
		func(c *Config) { c.MaxInterests = NumClasses + 1 },
		func(c *Config) { c.MinKeywords = 0 },
		func(c *Config) { c.VocabPerClass = 2 },
		func(c *Config) { c.AvgCopies = 1.0; c.SingleCopyFrac = 0.5 }, // infeasible
	}
	for i, m := range mods {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed Validate", i)
		}
	}
}

func TestScaled(t *testing.T) {
	c := DefaultConfig().Scaled(0.1)
	if c.NumPeers != 3700 || c.NumDocs != 92300 {
		t.Errorf("Scaled(0.1) = %d peers %d docs", c.NumPeers, c.NumDocs)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scaled(0) did not panic")
		}
	}()
	DefaultConfig().Scaled(0)
}

func TestCopyStatisticsMatchCalibration(t *testing.T) {
	u := genTest(t)
	mean, single := u.CopyStats()
	if math.Abs(mean-1.28) > 0.08 {
		t.Errorf("mean copies %.3f, want ≈1.28", mean)
	}
	if math.Abs(single-0.89) > 0.03 {
		t.Errorf("single-copy fraction %.3f, want ≈0.89", single)
	}
}

func TestFreeRiderFraction(t *testing.T) {
	u := genTest(t)
	frac := float64(u.FreeRiderCount(nil)) / float64(u.NumPeers())
	if frac < 0.15 || frac > 0.40 {
		t.Errorf("free-rider fraction %.3f, want ≈0.25", frac)
	}
}

func TestSharersHoldOnlyInterestingDocs(t *testing.T) {
	u := genTest(t)
	for id := 0; id < u.NumPeers(); id++ {
		p := u.Peer(PeerID(id))
		if p.FreeRider {
			if len(p.Docs) != 0 {
				t.Fatalf("free-rider %d shares %d docs", id, len(p.Docs))
			}
			if p.Interests.Empty() {
				t.Fatalf("free-rider %d has no interests", id)
			}
			continue
		}
		for _, d := range p.Docs {
			if !p.Interests.Has(u.ClassOf(d)) {
				t.Fatalf("peer %d holds class %v outside interests %v", id, u.ClassOf(d), p.Interests)
			}
		}
	}
}

func TestInterestsEqualContentClasses(t *testing.T) {
	u := genTest(t)
	for id := 0; id < u.NumPeers(); id++ {
		p := u.Peer(PeerID(id))
		if p.FreeRider {
			continue
		}
		var want ClassSet
		for _, d := range p.Docs {
			want = want.Add(u.ClassOf(d))
		}
		if p.Interests != want {
			t.Fatalf("peer %d interests %v != content classes %v", id, p.Interests, want)
		}
	}
}

func TestHoldersConsistentWithPeerDocs(t *testing.T) {
	u := genTest(t)
	for d := 0; d < u.NumDocs(); d++ {
		holders := u.Holders(DocID(d))
		if len(holders) == 0 {
			t.Fatalf("doc %d has no holders", d)
		}
		seen := map[PeerID]bool{}
		for _, h := range holders {
			if seen[h] {
				t.Fatalf("doc %d lists holder %d twice", d, h)
			}
			seen[h] = true
			found := false
			for _, pd := range u.Peer(h).Docs {
				if pd == DocID(d) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("doc %d holder %d missing reverse link", d, h)
			}
		}
	}
}

func TestKeywordsSortedAndClassScoped(t *testing.T) {
	u := genTest(t)
	cfg := u.Config()
	for d := 0; d < u.NumDocs(); d++ {
		kws := u.Keywords(DocID(d))
		if len(kws) < cfg.MinKeywords || len(kws) > cfg.MaxKeywords {
			t.Fatalf("doc %d has %d keywords, want [%d,%d]", d, len(kws), cfg.MinKeywords, cfg.MaxKeywords)
		}
		c := u.ClassOf(DocID(d))
		lo := Keyword(int(c)*cfg.VocabPerClass + 1)
		hi := Keyword((int(c) + 1) * cfg.VocabPerClass)
		for i, kw := range kws {
			if kw < lo || kw > hi {
				t.Fatalf("doc %d keyword %d outside class %v vocabulary", d, kw, c)
			}
			if i > 0 && kws[i-1] >= kw {
				t.Fatalf("doc %d keywords not strictly ascending: %v", d, kws)
			}
		}
	}
}

func TestDocMatches(t *testing.T) {
	u := genTest(t)
	d := DocID(0)
	kws := u.Keywords(d)
	if !u.DocMatches(d, kws[:1]) {
		t.Error("DocMatches false for own first keyword")
	}
	if !u.DocMatches(d, kws) {
		t.Error("DocMatches false for full keyword set")
	}
	if u.DocMatches(d, []Keyword{0}) {
		t.Error("DocMatches true for reserved keyword 0")
	}
	if u.DocMatches(d, nil) {
		t.Error("DocMatches true for empty term list")
	}
	foreign := append(append([]Keyword{}, kws...), 0xFFFFFFF)
	if u.DocMatches(d, foreign) {
		t.Error("DocMatches true with a foreign term included")
	}
}

func TestKeywordSetSizeWithinBloomProvision(t *testing.T) {
	u := genTest(t)
	maxKp := 0
	for id := 0; id < u.NumPeers(); id++ {
		if k := u.KeywordSetSize(PeerID(id)); k > maxKp {
			maxKp = k
		}
	}
	// The fixed Bloom geometry is provisioned for |K_max| = 1,000.
	if maxKp > 1000 {
		t.Errorf("max keyword set %d exceeds the |K_max|=1000 provisioning", maxKp)
	}
	if maxKp == 0 {
		t.Error("no peer has any keywords")
	}
}

func TestClassDistributionSkewed(t *testing.T) {
	u := genTest(t)
	counts := u.ContentClassCounts(nil)
	if counts[0] <= counts[NumClasses-1] {
		t.Errorf("class popularity not skewed: first=%d last=%d", counts[0], counts[NumClasses-1])
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no content classes counted")
	}
}

func TestInterestCountsCoverFreeRiders(t *testing.T) {
	u := genTest(t)
	interests := u.InterestCounts(nil)
	contents := u.ContentClassCounts(nil)
	totI, totC := 0, 0
	for c := 0; c < NumClasses; c++ {
		totI += interests[c]
		totC += contents[c]
	}
	// Free-riders have interests but no contents, so interest mass must
	// strictly exceed content mass.
	if totI <= totC {
		t.Errorf("interest mass %d not above content mass %d", totI, totC)
	}
}

func TestSelectionSubsetCounts(t *testing.T) {
	u := genTest(t)
	rng := rand.New(rand.NewPCG(5, 5))
	sel := make([]PeerID, 0, 100)
	for len(sel) < 100 {
		sel = append(sel, PeerID(rng.IntN(u.NumPeers())))
	}
	sub := u.InterestCounts(sel)
	all := u.InterestCounts(nil)
	for c := 0; c < NumClasses; c++ {
		if sub[c] > all[c] {
			t.Fatalf("subset count %d exceeds total %d for class %d", sub[c], all[c], c)
		}
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a := Generate(testConfig())
	b := Generate(testConfig())
	if a.NumDocs() != b.NumDocs() || a.TotalInstances() != b.TotalInstances() {
		t.Fatal("same seed produced different universes")
	}
	for d := 0; d < 100; d++ {
		ka, kb := a.Keywords(DocID(d)), b.Keywords(DocID(d))
		if len(ka) != len(kb) {
			t.Fatalf("doc %d keyword count differs", d)
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("doc %d keywords differ", d)
			}
		}
	}
	c := testConfig()
	c.Seed = 2
	if Generate(c).TotalInstances() == a.TotalInstances() {
		t.Log("different seeds coincided on instance count (possible but unlikely)")
	}
}

func TestClassSetOps(t *testing.T) {
	var s ClassSet
	if !s.Empty() || s.Count() != 0 {
		t.Error("zero ClassSet not empty")
	}
	s = s.Add(3).Add(7).Add(3)
	if s.Count() != 2 || !s.Has(3) || !s.Has(7) || s.Has(4) {
		t.Errorf("ClassSet ops broken: %v", s)
	}
	var other ClassSet
	other = other.Add(7)
	if !s.Intersects(other) {
		t.Error("Intersects false despite shared class")
	}
	if s.Intersects(ClassSet(0).Add(5)) {
		t.Error("Intersects true without shared class")
	}
	cls := s.Classes()
	if len(cls) != 2 || cls[0] != 3 || cls[1] != 7 {
		t.Errorf("Classes() = %v, want [3 7]", cls)
	}
	if s.String() == "" || ClassSet(0).String() != "∅" {
		t.Error("String rendering broken")
	}
}

// Property: ClassSet Add/Has agree for all classes and sets.
func TestClassSetProperty(t *testing.T) {
	prop := func(mask uint16, c uint8) bool {
		s := ClassSet(mask & ((1 << NumClasses) - 1))
		cl := Class(c % NumClasses)
		return s.Add(cl).Has(cl) && s.Add(cl).Count() >= s.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestClassString(t *testing.T) {
	if Class(0).String() != "audio" {
		t.Errorf("Class(0) = %q", Class(0).String())
	}
	if Class(200).String() != "invalid" {
		t.Errorf("Class(200) = %q", Class(200).String())
	}
}

func TestFullScaleGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale universe in -short mode")
	}
	u := Generate(DefaultConfig())
	if u.NumPeers() != 37000 {
		t.Errorf("NumPeers = %d, want 37,000", u.NumPeers())
	}
	// Document count may truncate slightly if capacity runs dry, but must
	// be within 2% of the eDonkey 923,000.
	if u.NumDocs() < 904000 {
		t.Errorf("NumDocs = %d, want ≈923,000", u.NumDocs())
	}
	mean, single := u.CopyStats()
	if math.Abs(mean-1.28) > 0.05 {
		t.Errorf("mean copies %.3f, want ≈1.28", mean)
	}
	if math.Abs(single-0.89) > 0.02 {
		t.Errorf("single-copy fraction %.3f, want ≈0.89", single)
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	cfg := testConfig()
	for i := 0; i < b.N; i++ {
		_ = Generate(cfg)
	}
}
