package content

// ContentClassCounts returns, for each semantic class, the number of peers
// in sel whose shared contents fall in that class — the series of the
// paper's Figure 2. A nil sel counts all peers.
func (u *Universe) ContentClassCounts(sel []PeerID) [NumClasses]int {
	var out [NumClasses]int
	eachPeer(u, sel, func(p *Peer) {
		var seen ClassSet
		for _, d := range p.Docs {
			seen = seen.Add(u.docs[d].Class)
		}
		for _, c := range seen.Classes() {
			out[c]++
		}
	})
	return out
}

// InterestCounts returns, for each class, the number of peers in sel whose
// interest set contains it — the series of the paper's Figure 3. A nil sel
// counts all peers.
func (u *Universe) InterestCounts(sel []PeerID) [NumClasses]int {
	var out [NumClasses]int
	eachPeer(u, sel, func(p *Peer) {
		for _, c := range p.Interests.Classes() {
			out[c]++
		}
	})
	return out
}

// CopyStats returns the mean copies per document and the fraction of
// documents with exactly one copy — the two replication statistics §V-A
// quotes for the eDonkey trace (≈1.28 and 89%).
func (u *Universe) CopyStats() (mean float64, singleFrac float64) {
	if len(u.docs) == 0 {
		return 0, 0
	}
	single := 0
	for i := range u.docs {
		if u.docs[i].hLen == 1 {
			single++
		}
	}
	return float64(len(u.hArena)) / float64(len(u.docs)), float64(single) / float64(len(u.docs))
}

// FreeRiderCount returns the number of free-riding peers in sel (nil = all).
func (u *Universe) FreeRiderCount(sel []PeerID) int {
	n := 0
	eachPeer(u, sel, func(p *Peer) {
		if p.FreeRider {
			n++
		}
	})
	return n
}

// KeywordSetSize returns |K_p|: the number of distinct keywords across the
// peer's shared documents (§III-B). The fixed Bloom geometry is provisioned
// for |K_max| = 1,000.
func (u *Universe) KeywordSetSize(id PeerID) int {
	seen := make(map[Keyword]struct{}, 64)
	for _, d := range u.peers[id].Docs {
		for _, kw := range u.Keywords(d) {
			seen[kw] = struct{}{}
		}
	}
	return len(seen)
}

func eachPeer(u *Universe, sel []PeerID, fn func(*Peer)) {
	if sel == nil {
		for i := range u.peers {
			fn(&u.peers[i])
		}
		return
	}
	for _, id := range sel {
		fn(&u.peers[id])
	}
}
