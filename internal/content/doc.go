// Package content models the content-distribution universe the paper's
// trace is built from (§IV-B).
//
// The paper processes a November-2003 eDonkey snapshot [10] containing the
// names of 923,000 files shared among 37,000 peers, classifies every file
// into 14 semantic categories, derives per-peer interest sets from those
// categories, and reports two key replication statistics: the average
// number of copies per document is ≈1.28 and 89% of files have exactly one
// copy in the whole network.
//
// That trace is not publicly available, so this package generates a
// synthetic universe calibrated to every statistic the paper quotes
// (DESIGN.md substitution E2):
//
//   - NumPeers peers, NumDocs distinct documents;
//   - per-document copy counts: SingleCopyFrac of documents have one copy,
//     the rest follow a geometric tail tuned so the global mean is
//     AvgCopies;
//   - 14 semantic classes with skewed popularity (some classes are shared
//     by far more peers than others, Fig. 2);
//   - interest clustering: a sharing peer's documents are drawn only from
//     its interest classes, and its final interest set "contains all the
//     semantic classes of its contents" exactly as the paper prescribes;
//   - free-riders share nothing and receive random interests (Fig. 3);
//   - per-class keyword vocabularies with Zipf-distributed keyword usage;
//     a document carries the keywords "deduced from its name".
//
// The universe is immutable; the simulator layers dynamic per-node content
// state (downloads, removals, joins) on top of it.
package content
