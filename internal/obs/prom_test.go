package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition line: name, optional le label, value.
type promSample struct {
	name  string
	le    string
	value float64
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{le="([^"]*)"\})? (\S+)$`)
)

// parseProm validates the exposition text against the 0.0.4 grammar as the
// tests need it — every family opens with # HELP then # TYPE for the same
// name, every sample line parses, sample names belong to the most recent
// family (exact, or _bucket/_sum/_count for histograms), and no family
// name repeats — and returns samples grouped per family.
func parseProm(t *testing.T, text string) map[string][]promSample {
	t.Helper()
	fams := make(map[string][]promSample)
	var cur, curType string
	var wantType bool
	lines := strings.Split(text, "\n")
	if lines[len(lines)-1] != "" {
		t.Fatalf("exposition does not end with a newline")
	}
	for _, line := range lines[:len(lines)-1] {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !metricNameRE.MatchString(name) {
				t.Fatalf("bad HELP line: %q", line)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("family %q declared twice", name)
			}
			fams[name] = nil
			cur, wantType = name, true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if !wantType || len(fields) != 2 || fields[0] != cur {
				t.Fatalf("TYPE line %q does not follow HELP for %q", line, cur)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			curType, wantType = fields[1], false
		default:
			m := sampleRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			if wantType || cur == "" {
				t.Fatalf("sample %q before TYPE for %q", line, cur)
			}
			name := m[1]
			switch curType {
			case "histogram":
				if name != cur+"_bucket" && name != cur+"_sum" && name != cur+"_count" {
					t.Fatalf("sample %q not part of histogram %q", name, cur)
				}
				if name == cur+"_bucket" && m[2] == "" {
					t.Fatalf("histogram bucket %q missing le label", line)
				}
			default:
				if name != cur {
					t.Fatalf("sample %q under family %q", name, cur)
				}
			}
			var v float64
			if m[4] == "+Inf" {
				if m[1] != cur+"_bucket" {
					t.Fatalf("+Inf value outside a bucket: %q", line)
				}
			} else {
				var err error
				v, err = strconv.ParseFloat(m[4], 64)
				if err != nil {
					t.Fatalf("bad sample value in %q: %v", line, err)
				}
			}
			fams[cur] = append(fams[cur], promSample{name: name, le: m[3], value: v})
		}
	}
	return fams
}

// checkHistogram asserts the histogram invariants for family name: le
// bounds strictly increasing and ending at +Inf, cumulative bucket counts
// non-decreasing, +Inf bucket equal to _count.
func checkHistogram(t *testing.T, fams map[string][]promSample, name string) {
	t.Helper()
	samples, ok := fams[name]
	if !ok {
		t.Fatalf("histogram %s missing", name)
	}
	var lastLE, lastCum float64
	var first = true
	var infCount, count float64
	var sawInf, sawCount bool
	for _, s := range samples {
		switch s.name {
		case name + "_bucket":
			if s.le == "+Inf" {
				infCount, sawInf = s.value, true
				continue
			}
			le, err := strconv.ParseFloat(s.le, 64)
			if err != nil {
				t.Fatalf("%s: bad le %q: %v", name, s.le, err)
			}
			if sawInf {
				t.Fatalf("%s: bucket after +Inf", name)
			}
			if !first && le <= lastLE {
				t.Fatalf("%s: le not increasing: %v after %v", name, le, lastLE)
			}
			if s.value < lastCum {
				t.Fatalf("%s: cumulative count decreased at le=%q: %v < %v", name, s.le, s.value, lastCum)
			}
			lastLE, lastCum, first = le, s.value, false
		case name + "_count":
			count, sawCount = s.value, true
		}
	}
	if !sawInf || !sawCount {
		t.Fatalf("%s: missing +Inf bucket or _count", name)
	}
	if infCount != count || infCount < lastCum {
		t.Fatalf("%s: +Inf bucket %v, _count %v, last cum %v", name, infCount, count, lastCum)
	}
}

func TestPromWriterGrammar(t *testing.T) {
	var w PromWriter
	w.Counter("asap_requests_total", "Requests with a\nnewline and a \\ in help.", 42)
	w.Gauge("asap_temperature", "A gauge.", -3.5)
	w.Histogram("asap_latency_seconds", "A histogram.",
		[]float64{0.001, 0.01, 0.1}, []int64{1, 5, 9}, 11, 1.25)
	fams := parseProm(t, w.String())
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	if got := fams["asap_requests_total"][0].value; got != 42 {
		t.Fatalf("counter value %v, want 42", got)
	}
	if got := fams["asap_temperature"][0].value; got != -3.5 {
		t.Fatalf("gauge value %v, want -3.5", got)
	}
	checkHistogram(t, fams, "asap_latency_seconds")
	if strings.Contains(w.String(), "\nnewline") {
		t.Fatalf("HELP newline not escaped:\n%s", w.String())
	}
}

func TestRecorderWriteProm(t *testing.T) {
	r := NewRecorder(10)
	g := NewHeapGauge()
	r.SetHeapGauge(g)
	g.Sample()
	r.Search(1500, true, 12, 100)
	r.Search(2500, true, 700, 60)
	r.Search(3500, false, 0, 40)
	r.Count(1500, CDrop)
	r.CountN(2500, CRetry, 3)

	var w PromWriter
	r.WriteProm(&w)
	fams := parseProm(t, w.String())

	want := map[string]float64{
		"asap_searches_total":          3,
		"asap_successes_total":         2,
		"asap_drops_total":             1,
		"asap_retries_total":           3,
		"asap_search_cost_bytes_total": 200,
	}
	for name, v := range want {
		samples, ok := fams[name]
		if !ok {
			t.Fatalf("missing family %s", name)
		}
		if samples[0].value != v {
			t.Errorf("%s = %v, want %v", name, samples[0].value, v)
		}
	}
	checkHistogram(t, fams, "asap_search_response_seconds")
	// 12 ms lands in bucket 4 (le = 15 ms); 700 ms in bucket 10 (le =
	// 1023 ms). The cumulative count at le=0.015 must be exactly 1.
	var at15ms float64 = -1
	for _, s := range fams["asap_search_response_seconds"] {
		if s.name == "asap_search_response_seconds_bucket" && s.le == "0.015" {
			at15ms = s.value
		}
	}
	if at15ms != 1 {
		t.Errorf("bucket le=0.015 = %v, want 1", at15ms)
	}
	hg, ok := fams["asap_peak_heap_bytes"]
	if !ok || hg[0].value <= 0 {
		t.Fatalf("peak heap gauge missing or zero: %v", hg)
	}

	// Nil recorder: no families, no panic.
	var nw PromWriter
	(*Recorder)(nil).WriteProm(&nw)
	if nw.String() != "" {
		t.Fatalf("nil recorder wrote %q", nw.String())
	}
}

func TestWallHist(t *testing.T) {
	var h WallHist
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond) // bucket 7: [64, 128) µs
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond) // bucket 16: [32768, 65536) µs
	}
	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	wantSum := 90*100*time.Microsecond + 10*50*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("sum %v, want %v", h.Sum(), wantSum)
	}
	p50 := h.Quantile(0.50)
	if p50 < 64*time.Microsecond || p50 >= 128*time.Microsecond {
		t.Errorf("p50 %v outside bucket [64µs, 128µs)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 32768*time.Microsecond || p99 >= 65536*time.Microsecond {
		t.Errorf("p99 %v outside bucket [32.768ms, 65.536ms)", p99)
	}
	if q := h.Quantile(0.25); q >= p50 {
		t.Errorf("quantiles not monotone: q25 %v ≥ q50 %v", q, p50)
	}

	var w PromWriter
	h.WriteProm(&w, "asap_serve_wall_seconds", "Wall-clock serve latency.")
	fams := parseProm(t, w.String())
	checkHistogram(t, fams, "asap_serve_wall_seconds")

	// Nil receiver: everything is a no-op returning zeros.
	var nh *WallHist
	nh.Observe(time.Second)
	if nh.Count() != 0 || nh.Sum() != 0 || nh.Quantile(0.99) != 0 {
		t.Fatalf("nil WallHist not inert")
	}
	var nw PromWriter
	nh.WriteProm(&nw, "x", "y")
	if nw.String() != "" {
		t.Fatalf("nil WallHist wrote %q", nw.String())
	}
}

func TestWallHistOverflowBucket(t *testing.T) {
	var h WallHist
	h.Observe(time.Duration(1<<62 - 1)) // far past the last bucket bound
	if h.Count() != 1 {
		t.Fatalf("count %d", h.Count())
	}
	lo, _ := bucketBoundsUS(WallBuckets - 1)
	if q := h.Quantile(1); q < time.Duration(lo*float64(time.Microsecond)) {
		t.Fatalf("overflow quantile %v below last bucket lo", q)
	}
}
