package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// WallBuckets is the number of log2 wall-clock latency buckets a WallHist
// keeps: bucket i holds observations in [2^(i-1), 2^i) microseconds
// (bucket 0 is < 1 µs); the last bucket absorbs everything ≥ ~2¹⁴ seconds.
const WallBuckets = 34

// WallHist is a concurrent log2 histogram of wall-clock latencies for the
// serving plane: one atomic add per observation, no locks, no allocation.
// It complements the Recorder's sim-time response histogram — the Recorder
// buckets virtual (modelled) milliseconds keyed by replay time, while a
// WallHist buckets real elapsed time of live requests, which is what a p99
// gate must measure. The zero value is ready to use; all methods are valid
// on a nil receiver (no-ops returning zeros).
type WallHist struct {
	buckets [WallBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// Observe records one latency.
func (h *WallHist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	b := bits.Len64(uint64(max(us, 0)))
	if b >= WallBuckets {
		b = WallBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Count returns the number of observations.
func (h *WallHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *WallHist) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNS.Load())
}

// Quantile returns the q-quantile (0 < q ≤ 1) with linear interpolation
// inside the landing bucket — the usual histogram-quantile estimate, exact
// to within the bucket's resolution. Zero observations yield 0.
func (h *WallHist) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for b := 0; b < WallBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo, hi := bucketBoundsUS(b)
			frac := (rank - float64(cum)) / float64(n)
			us := lo + frac*(hi-lo)
			return time.Duration(us * float64(time.Microsecond))
		}
		cum += n
	}
	lo, _ := bucketBoundsUS(WallBuckets - 1)
	return time.Duration(lo * float64(time.Microsecond))
}

// bucketBoundsUS returns bucket b's [lo, hi) bounds in microseconds.
func bucketBoundsUS(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(int64(1) << (b - 1)), float64(int64(1) << b)
}

// WriteProm exports the histogram in Prometheus exposition format under
// the given fully qualified metric name: cumulative _bucket samples with
// le upper bounds in seconds, plus _sum and _count.
func (h *WallHist) WriteProm(w *PromWriter, name, help string) {
	if h == nil {
		return
	}
	var les []float64
	var cum []int64
	var run int64
	for b := 0; b < WallBuckets-1; b++ {
		_, hi := bucketBoundsUS(b)
		run += h.buckets[b].Load()
		les = append(les, hi/1e6)
		cum = append(cum, run)
	}
	w.Histogram(name, help, les, cum, h.Count(), h.Sum().Seconds())
}
