package obs

import (
	"runtime/metrics"
	"sync"
	"sync/atomic"
)

// heapMetric is the runtime/metrics gauge the high-water mark tracks: the
// bytes of live and dead heap objects plus unused reserved spans — the
// figure that actually bounds a replay's resident set, unlike
// runtime.MemStats deltas which miss what the GC is holding.
const heapMetric = "/memory/classes/heap/objects:bytes"

// HeapGauge tracks the peak observed heap occupancy of a run. Sampling is
// explicit (the replay runner samples once per simulated second and at
// phase boundaries) so the gauge costs nothing when absent: every method
// is valid and free on a nil receiver, and Sample allocates nothing after
// construction — the sample buffer is preallocated.
//
// One gauge may be shared across concurrent runs (RunMatrix cells): Sample
// serialises on an internal mutex and the peak folds through an atomic
// max, so the recorded high-water mark covers the whole process, which is
// what a memory bound must measure.
type HeapGauge struct {
	mu      sync.Mutex
	samples []metrics.Sample
	peak    atomic.Uint64
}

// NewHeapGauge returns a gauge ready to sample.
func NewHeapGauge() *HeapGauge {
	g := &HeapGauge{samples: make([]metrics.Sample, 1)}
	g.samples[0].Name = heapMetric
	return g
}

// Sample reads the current heap occupancy and folds it into the peak.
// Nil-safe and allocation-free.
func (g *HeapGauge) Sample() {
	if g == nil {
		return
	}
	g.mu.Lock()
	metrics.Read(g.samples)
	cur := g.samples[0].Value.Uint64()
	g.mu.Unlock()
	for {
		old := g.peak.Load()
		if cur <= old || g.peak.CompareAndSwap(old, cur) {
			return
		}
	}
}

// PeakBytes returns the largest heap occupancy any Sample observed
// (0 before the first sample, or on a nil gauge).
func (g *HeapGauge) PeakBytes() uint64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// PeakMB returns PeakBytes in mebibytes.
func (g *HeapGauge) PeakMB() float64 {
	return float64(g.PeakBytes()) / (1 << 20)
}

// SetHeapGauge attaches a heap gauge to the recorder; SampleHeap calls
// forward to it. A nil gauge (or nil recorder) detaches sampling.
func (r *Recorder) SetHeapGauge(g *HeapGauge) {
	if r == nil {
		return
	}
	r.heap = g
}

// SampleHeap folds the current heap occupancy into the attached gauge's
// peak. On a nil recorder, or one without a gauge, it does nothing and
// allocates nothing — the obs-off hot path.
func (r *Recorder) SampleHeap() {
	if r == nil {
		return
	}
	r.heap.Sample()
}
