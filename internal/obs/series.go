package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"asap/internal/metrics"
)

// RunSeries is one run's per-second observability table: a fixed column
// schema over int64 rows, plus the warm-up aggregate and the response-time
// histogram. Everything in it derives from deterministic simulated time,
// so two replays of the same run — at any worker count — produce
// byte-identical series.
type RunSeries struct {
	// Key names the run, e.g. "asap-rw/crawled" or
	// "flooding/crawled/loss=0.02". It doubles as the output file stem.
	Key string `json:"key"`
	// Seconds is the number of per-second rows.
	Seconds int `json:"seconds"`
	// Columns labels the row fields, in order.
	Columns []string `json:"columns"`
	// Warmup aggregates pre-trace (t < 0) activity in the row schema, with
	// sec = -1 and live = 0.
	Warmup []int64 `json:"warmup"`
	// Rows holds one entry per second, each in the Columns schema.
	Rows [][]int64 `json:"rows"`
	// LatencyHist is the log2-bucketed response-time histogram of
	// successful searches: bucket i covers [2^(i-1), 2^i) ms.
	LatencyHist []int64 `json:"latency_hist_log2_ms"`
}

// seriesColumns returns the RunSeries column schema: second, live-node
// count, per-class byte totals, the Counter columns (fault events, cache
// and confirmation outcomes, search counts, per-class message counts),
// and the per-second latency/byte sums.
func seriesColumns() []string {
	cols := []string{"sec", "live"}
	for c := 0; c < metrics.NumMsgClasses; c++ {
		cols = append(cols, "bytes_"+metrics.MsgClass(c).String())
	}
	for c := Counter(0); int(c) < NumCounters; c++ {
		cols = append(cols, c.String())
	}
	return append(cols, "latency_sum_ms", "search_bytes")
}

// Series snapshots the recorder's counters joined with the load account's
// per-class byte series into one table keyed by key. Call after the run
// completes (it reads the counters non-atomically consistent: the runner
// has quiesced).
func (r *Recorder) Series(key string, load *metrics.LoadAccount) RunSeries {
	s := RunSeries{
		Key:         key,
		Seconds:     r.seconds,
		Columns:     seriesColumns(),
		LatencyHist: append([]int64(nil), r.hist[:]...),
	}
	row := func(sec int) []int64 {
		// sec == -1 selects the warm-up aggregate (recorder row 0).
		rrow, live := sec+1, 0
		vals := make([]int64, 0, len(s.Columns))
		if sec >= 0 {
			live = load.Live(sec)
		}
		vals = append(vals, int64(sec), int64(live))
		for c := 0; c < metrics.NumMsgClasses; c++ {
			if sec < 0 {
				vals = append(vals, load.WarmupBytes(metrics.Mask(metrics.MsgClass(c))))
			} else {
				vals = append(vals, load.BytesAt(sec, metrics.Mask(metrics.MsgClass(c))))
			}
		}
		for c := Counter(0); int(c) < NumCounters; c++ {
			vals = append(vals, r.get(rrow, c))
		}
		return append(vals, r.latMS[rrow], r.srchB[rrow])
	}
	s.Warmup = row(-1)
	s.Rows = make([][]int64, 0, r.seconds)
	for sec := 0; sec < r.seconds; sec++ {
		s.Rows = append(s.Rows, row(sec))
	}
	return s
}

// ColumnIndex returns the row index of the named column, or -1 when the
// schema has no such column.
func (s *RunSeries) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// CSV renders the series as one CSV document: a header line, the warm-up
// row, then one row per second.
func (s *RunSeries) CSV() []byte {
	var b strings.Builder
	b.WriteString(strings.Join(s.Columns, ","))
	b.WriteByte('\n')
	writeRow := func(vals []int64) {
		for i, v := range vals {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatInt(v, 10))
		}
		b.WriteByte('\n')
	}
	writeRow(s.Warmup)
	for _, row := range s.Rows {
		writeRow(row)
	}
	return []byte(b.String())
}

// JSON renders the series as indented JSON.
func (s *RunSeries) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(s, "", " ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Collector gathers finished RunSeries across the concurrent runs of a
// matrix or sweep. A nil collector is valid and ignores Add.
type Collector struct {
	mu   sync.Mutex
	runs []RunSeries
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Add records one finished run's series.
func (c *Collector) Add(s RunSeries) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs = append(c.runs, s)
}

// Runs returns the collected series sorted by key — the deterministic
// merge order, independent of which worker finished first.
func (c *Collector) Runs() []RunSeries {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]RunSeries(nil), c.runs...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// fileStem maps a series key to a safe file name stem.
func fileStem(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '=':
			return r
		default:
			return '_'
		}
	}, key)
}

// WriteDir writes each series as <dir>/<key>.csv and <dir>/<key>.json,
// creating dir as needed, and returns the written paths in order.
func WriteDir(dir string, runs []RunSeries) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating %s: %w", dir, err)
	}
	var paths []string
	for i := range runs {
		s := &runs[i]
		stem := filepath.Join(dir, fileStem(s.Key))
		if err := os.WriteFile(stem+".csv", s.CSV(), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, stem+".csv")
		buf, err := s.JSON()
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(stem+".json", buf, 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, stem+".json")
	}
	return paths, nil
}
