package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asap/internal/metrics"
)

// TestNilRecorderIsInert: every recording method must be a no-op on a nil
// recorder — the obs-off configuration threads nil through the whole
// simulator, so any panic here is a crash in the default path.
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Count(0, CDrop)
	r.CountMsg(1000, metrics.MsgClass(0))
	r.Search(-500, true, 12, 900)
	r.End(PReplay, r.Begin())
	if r.Seconds() != 0 {
		t.Errorf("nil recorder Seconds() = %d, want 0", r.Seconds())
	}
	if r.Timing() != nil {
		t.Error("nil recorder Timing() != nil")
	}

	var tm *Timing
	(&Timing{}).Merge(tm) // nil argument is a no-op

	var c *Collector
	c.Add(RunSeries{Key: "x"})
	if got := c.Runs(); got != nil {
		t.Errorf("nil collector Runs() = %v, want nil", got)
	}
}

// TestRecorderRowFolding pins the row mapping shared with LoadAccount:
// negative times land in the warm-up row, in-range times in their second,
// and times at or past the horizon fold into the final row.
func TestRecorderRowFolding(t *testing.T) {
	r := NewRecorder(3)
	r.Count(-1, CDrop)      // warm-up
	r.Count(-999999, CDrop) // deep warm-up
	r.Count(0, CRetry)      // second 0
	r.Count(999, CRetry)    // still second 0
	r.Count(1000, CTimeout) // second 1
	r.Count(2999, CDrop)    // second 2
	r.Count(3000, CDrop)    // past horizon: folds to second 2
	r.Count(1<<40, CDrop)   // far past horizon: same

	if got := r.get(0, CDrop); got != 2 {
		t.Errorf("warm-up drops = %d, want 2", got)
	}
	if got := r.get(1, CRetry); got != 2 {
		t.Errorf("second-0 retries = %d, want 2", got)
	}
	if got := r.get(2, CTimeout); got != 1 {
		t.Errorf("second-1 timeouts = %d, want 1", got)
	}
	if got := r.get(3, CDrop); got != 3 {
		t.Errorf("final-row drops = %d, want 3 (1 in-range + 2 folded)", got)
	}
}

// TestRecorderSearchHistogram checks the latency bookkeeping: failures
// count searches and bytes but no latency, successes land in the log2
// bucket of their response time, and huge latencies clamp to the last
// bucket.
func TestRecorderSearchHistogram(t *testing.T) {
	r := NewRecorder(2)
	r.Search(100, false, 0, 500)
	r.Search(100, true, 0, 100)     // 0 ms → bucket 0
	r.Search(100, true, 3, 100)     // [2,4) → bucket 2
	r.Search(100, true, 1<<30, 100) // clamps to last bucket
	r.Search(100, true, -7, 100)    // negative latency clamps to bucket 0

	if got := r.get(1, CSearch); got != 5 {
		t.Errorf("searches = %d, want 5", got)
	}
	if got := r.get(1, CSearchOK); got != 4 {
		t.Errorf("successes = %d, want 4", got)
	}
	if r.srchB[1] != 900 {
		t.Errorf("search bytes = %d, want 900", r.srchB[1])
	}
	if r.latMS[1] != 3+(1<<30)-7 {
		t.Errorf("latency sum = %d, want %d", r.latMS[1], 3+(1<<30)-7)
	}
	if r.hist[0] != 2 || r.hist[2] != 1 || r.hist[HistBuckets-1] != 1 {
		t.Errorf("histogram %v: want 2 in bucket 0, 1 in bucket 2, 1 in last", r.hist)
	}
}

// TestSeriesShape checks the exported table: schema width, row count,
// warm-up placement, and that counter values land under their named
// column.
func TestSeriesShape(t *testing.T) {
	r := NewRecorder(2)
	r.Count(-10, CDrop)
	r.Count(500, CCacheHit)
	r.Count(1500, CConfirmNeg)
	load := metrics.NewLoadAccount(2)
	load.SetLive(0, 40)
	load.SetLive(1, 41)

	s := r.Series("asap-rw/crawled", load)
	if s.Key != "asap-rw/crawled" || s.Seconds != 2 {
		t.Fatalf("key %q seconds %d", s.Key, s.Seconds)
	}
	if len(s.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(s.Rows))
	}
	wantCols := 2 + metrics.NumMsgClasses + NumCounters + 2
	if len(s.Columns) != wantCols || len(s.Warmup) != wantCols {
		t.Fatalf("schema width %d, warmup width %d, want %d", len(s.Columns), len(s.Warmup), wantCols)
	}
	for _, row := range s.Rows {
		if len(row) != wantCols {
			t.Fatalf("row width %d, want %d", len(row), wantCols)
		}
	}
	if s.Warmup[0] != -1 || s.Warmup[1] != 0 {
		t.Errorf("warmup row starts %v, want sec=-1 live=0", s.Warmup[:2])
	}
	cell := func(row []int64, name string) int64 {
		i := s.ColumnIndex(name)
		if i < 0 {
			t.Fatalf("column %q missing from %v", name, s.Columns)
		}
		return row[i]
	}
	if got := cell(s.Warmup, "drops"); got != 1 {
		t.Errorf("warmup drops = %d, want 1", got)
	}
	if got := cell(s.Rows[0], "cache_hits"); got != 1 {
		t.Errorf("second-0 cache_hits = %d, want 1", got)
	}
	if got := cell(s.Rows[1], "confirm_neg"); got != 1 {
		t.Errorf("second-1 confirm_neg = %d, want 1", got)
	}
	if got := cell(s.Rows[1], "sec"); got != 1 {
		t.Errorf("second-1 sec column = %d, want 1", got)
	}
	if got := cell(s.Rows[0], "live"); got != 40 {
		t.Errorf("second-0 live = %d, want 40", got)
	}
	if s.ColumnIndex("no_such_column") != -1 {
		t.Error("ColumnIndex of unknown name != -1")
	}

	// CSV shape: header + warmup + one line per second.
	lines := strings.Split(strings.TrimRight(string(s.CSV()), "\n"), "\n")
	if len(lines) != 1+1+2 {
		t.Fatalf("CSV has %d lines, want 4", len(lines))
	}
	if lines[0] != strings.Join(s.Columns, ",") {
		t.Error("CSV header differs from Columns")
	}
	if !strings.HasPrefix(lines[1], "-1,0,") {
		t.Errorf("CSV warmup line %q does not start with -1,0,", lines[1])
	}
}

// TestCollectorSortsByKey: Runs() must return key order no matter the Add
// order — that ordering is what makes the merged series worker-count
// independent.
func TestCollectorSortsByKey(t *testing.T) {
	c := NewCollector()
	for _, k := range []string{"c/z", "a/x", "b/y"} {
		c.Add(RunSeries{Key: k})
	}
	runs := c.Runs()
	got := []string{runs[0].Key, runs[1].Key, runs[2].Key}
	want := []string{"a/x", "b/y", "c/z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Runs() order %v, want %v", got, want)
		}
	}
}

// TestWriteDir checks file emission: one CSV and one JSON per run, with
// hostile key characters sanitised out of the stem.
func TestWriteDir(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(1)
	load := metrics.NewLoadAccount(1)
	s := r.Series("asap-rw/crawled/loss=0.02", load)
	paths, err := WriteDir(filepath.Join(dir, "series"), []RunSeries{s})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		base := filepath.Base(p)
		if strings.ContainsAny(base, "/\\") {
			t.Errorf("path separator leaked into file name %q", base)
		}
		if !strings.HasPrefix(base, "asap-rw_crawled_loss=0.02") {
			t.Errorf("file stem %q: key not sanitised as expected", base)
		}
		if _, err := os.Stat(p); err != nil {
			t.Errorf("reported path %s missing: %v", p, err)
		}
	}
	buf, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, s.CSV()) {
		t.Error("written CSV differs from Series.CSV()")
	}
}

// TestTimingMergeAndStats: merged spans add, empty phases are omitted,
// and Stats reports phases in declaration order with millisecond totals.
func TestTimingMergeAndStats(t *testing.T) {
	var a, b Timing
	a.add(PReplay, 2_000_000) // 2 ms
	a.add(PReplay, 1_000_000)
	b.add(PAttach, 5_000_000)
	a.Merge(&b)
	a.Merge(nil)

	stats := a.Stats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v, want 2 phases", stats)
	}
	if stats[0].Phase != "attach" || stats[0].Count != 1 || stats[0].TotalMS != 5 {
		t.Errorf("attach stat = %+v", stats[0])
	}
	if stats[1].Phase != "replay" || stats[1].Count != 2 || stats[1].TotalMS != 3 {
		t.Errorf("replay stat = %+v", stats[1])
	}
}

// TestPhaseLabels pins the report labels — they are part of the
// BENCH_matrix.json and series-consumer contract.
func TestPhaseLabels(t *testing.T) {
	want := []string{"topo_gen", "topo_clone", "attach", "replay",
		"search_phase1", "search_phase2", "deliver_flood", "deliver_walk"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want[p])
		}
	}
	if Phase(NumPhases).String() != "invalid" {
		t.Error("out-of-range phase label != invalid")
	}
}

// TestStartProfilesWritesFiles smoke-tests the CLI profiling hooks: with
// paths given, stop() leaves non-empty pprof files behind; with all hooks
// empty the call is a no-op.
func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem, mtx := filepath.Join(dir, "cpu.pb"), filepath.Join(dir, "mem.pb"), filepath.Join(dir, "mutex.pb")
	stop, err := StartProfiles(cpu, mem, mtx, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ { // a little work for the CPU profiler
		_ = NewRecorder(4)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem, mtx} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile %s missing: %v", p, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}

	stop, err = StartProfiles("", "", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("all-empty stop: %v", err)
	}
}
