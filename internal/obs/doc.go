// Package obs is the simulator's deterministic observability plane.
//
// It has three layers, all optional and all inert when absent:
//
//   - Sim-time series: a Recorder keeps per-second (simulated clock, never
//     wall clock) counters for message classes, ads-cache hits and misses,
//     confirmation outcomes, fault-plane events and search outcomes. After
//     a run, Recorder.Series joins those counters with the LoadAccount's
//     per-class byte series into one RunSeries table, emitted as CSV and
//     JSON (WriteDir). Because every counter is keyed by deterministic
//     replay time and updated with commutative atomic adds, the series is
//     byte-identical for any worker count.
//
//   - Per-phase wall-clock timing: Begin/End spans around topology build,
//     trace replay, the two search phases and ad-delivery walks/floods
//     accumulate into a Timing, merged across runs after RunMatrix and
//     reported in BENCH_matrix.json. Wall clock is inherently
//     nondeterministic, so timing never feeds into a RunSeries.
//
//   - Profiling hooks: StartProfiles wires -cpuprofile/-memprofile/
//     -mutexprofile files and an optional net/http/pprof endpoint for the
//     CLIs.
//
// Nil-safety mirrors internal/faults: every Recorder method is valid on a
// nil receiver and does nothing, so instrumented hot paths cost one nil
// check — zero allocations — when observability is off (gated by
// TestObsOffHotPathAllocs in the root package).
package obs
