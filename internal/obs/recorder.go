package obs

import (
	"math/bits"
	"sync/atomic"
	"time"

	"asap/internal/metrics"
)

// Counter enumerates the per-second event counters a Recorder keeps in
// addition to the per-class message counts.
type Counter int

const (
	// CDrop counts messages the fault plane dropped.
	CDrop Counter = iota
	// CRetry counts retransmissions provoked by timeouts.
	CRetry
	// CTimeout counts contacts abandoned after their last attempt.
	CTimeout
	// CCacheHit counts searches whose phase-1 ads-cache scan produced at
	// least one candidate.
	CCacheHit
	// CCacheMiss counts searches whose phase-1 scan produced none.
	CCacheMiss
	// CConfirmPos counts content confirmations answered positively.
	CConfirmPos
	// CConfirmNeg counts content confirmations answered negatively (Bloom
	// false positives and stale filters surface here).
	CConfirmNeg
	// CSearch counts query events replayed.
	CSearch
	// CSearchOK counts query events that returned at least one result.
	CSearchOK
	// CNetFrameOut / CNetFrameIn count transport frames a node daemon
	// exchanged with its peers (internal/transport); CNetByteOut /
	// CNetByteIn total their sizes in bytes, length prefix included.
	// In-process replays never touch them.
	CNetFrameOut
	CNetFrameIn
	CNetByteOut
	CNetByteIn
	// CPartDrop counts messages dropped by an engaged scenario partition
	// (a subset of CDrop: partition drops count in both columns).
	CPartDrop
	// CRewire counts successful topology-adaptation rewires (one edge
	// dropped, one interest-similar edge added).
	CRewire
	// CInterestShift counts nodes whose interest classes an InterestDrift
	// act rotated.
	CInterestShift

	// cMsgBase is where the metrics.NumMsgClasses per-class message
	// counters start; they count message copies sent, per class.
	cMsgBase

	// NumCounters is the width of one per-second counter row.
	NumCounters = int(cMsgBase) + metrics.NumMsgClasses
)

// String returns the column label of c.
func (c Counter) String() string {
	switch c {
	case CDrop:
		return "drops"
	case CRetry:
		return "retries"
	case CTimeout:
		return "timeouts"
	case CCacheHit:
		return "cache_hits"
	case CCacheMiss:
		return "cache_misses"
	case CConfirmPos:
		return "confirm_pos"
	case CConfirmNeg:
		return "confirm_neg"
	case CSearch:
		return "searches"
	case CSearchOK:
		return "successes"
	case CNetFrameOut:
		return "net_frames_out"
	case CNetFrameIn:
		return "net_frames_in"
	case CNetByteOut:
		return "net_bytes_out"
	case CNetByteIn:
		return "net_bytes_in"
	case CPartDrop:
		return "part_drops"
	case CRewire:
		return "rewires"
	case CInterestShift:
		return "interest_shifts"
	}
	if c >= cMsgBase && int(c) < NumCounters {
		return "msgs_" + metrics.MsgClass(int(c)-int(cMsgBase)).String()
	}
	return "invalid"
}

// HistBuckets is the number of log2 response-latency histogram buckets:
// bucket i holds successful searches with response time in [2^(i-1), 2^i)
// ms (bucket 0 is 0 ms); the last bucket absorbs everything ≥ 2^19 ms.
const HistBuckets = 21

// Recorder accumulates one run's sim-time observability state. All
// recording methods are safe for concurrent use (atomic adds on
// preallocated cells) and valid on a nil receiver, where they do nothing
// and allocate nothing — the obs-off hot path.
//
// Rows follow the LoadAccount's bucketing exactly: row 0 holds warm-up
// events (t < 0), rows 1..seconds hold per-second counts, and times at or
// past the horizon fold into the final row.
type Recorder struct {
	seconds int
	cells   []int64 // (seconds+1) × NumCounters
	latMS   []int64 // per-row response-time sums of successful searches
	srchB   []int64 // per-row search-cost byte sums
	hist    [HistBuckets]int64
	timing  Timing
	heap    *HeapGauge // peak-heap high-water gauge (nil = sampling off)
}

// NewRecorder sizes a recorder for a run of the given duration in
// (simulated) seconds.
func NewRecorder(seconds int) *Recorder {
	if seconds < 1 {
		seconds = 1
	}
	return &Recorder{
		seconds: seconds,
		cells:   make([]int64, (seconds+1)*NumCounters),
		latMS:   make([]int64, seconds+1),
		srchB:   make([]int64, seconds+1),
	}
}

// Seconds returns the number of per-second rows (excluding warm-up).
func (r *Recorder) Seconds() int {
	if r == nil {
		return 0
	}
	return r.seconds
}

// row maps a virtual time in ms to its counter row: 0 for warm-up,
// otherwise 1 + the (horizon-folded) second.
func (r *Recorder) row(tMS int64) int {
	if tMS < 0 {
		return 0
	}
	sec := int(tMS / 1000)
	if sec >= r.seconds {
		sec = r.seconds - 1
	}
	return sec + 1
}

// Count records one event of counter c at virtual time tMS.
func (r *Recorder) Count(tMS int64, c Counter) {
	if r == nil {
		return
	}
	atomic.AddInt64(&r.cells[r.row(tMS)*NumCounters+int(c)], 1)
}

// CountN records n events of counter c at tMS in one cell update — the
// per-connection transport counters batch a frame and its byte size
// through this.
func (r *Recorder) CountN(tMS int64, c Counter, n int64) {
	if r == nil || n == 0 {
		return
	}
	atomic.AddInt64(&r.cells[r.row(tMS)*NumCounters+int(c)], n)
}

// CountMsg records one sent message copy of the given class at tMS.
func (r *Recorder) CountMsg(tMS int64, class metrics.MsgClass) {
	if r == nil {
		return
	}
	atomic.AddInt64(&r.cells[r.row(tMS)*NumCounters+int(cMsgBase)+int(class)], 1)
}

// CountMsgN records n sent message copies of the given class at tMS in
// one cell update. Cascades that send a whole neighbour view at the same
// virtual time batch their counting through this instead of paying one
// atomic add per copy; the resulting cells are identical.
func (r *Recorder) CountMsgN(tMS int64, class metrics.MsgClass, n int) {
	if r == nil || n == 0 {
		return
	}
	atomic.AddInt64(&r.cells[r.row(tMS)*NumCounters+int(cMsgBase)+int(class)], int64(n))
}

// Search records one replayed query: its issue time, outcome, observed
// response latency (successes only) and per-search cost in bytes.
func (r *Recorder) Search(tMS int64, ok bool, respMS int64, bytes int64) {
	if r == nil {
		return
	}
	row := r.row(tMS)
	atomic.AddInt64(&r.cells[row*NumCounters+int(CSearch)], 1)
	atomic.AddInt64(&r.srchB[row], bytes)
	if !ok {
		return
	}
	atomic.AddInt64(&r.cells[row*NumCounters+int(CSearchOK)], 1)
	atomic.AddInt64(&r.latMS[row], respMS)
	b := bits.Len64(uint64(max(respMS, 0)))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	atomic.AddInt64(&r.hist[b], 1)
}

// get reads one counter cell (test/series helper; not a hot path).
func (r *Recorder) get(row int, c Counter) int64 {
	return atomic.LoadInt64(&r.cells[row*NumCounters+int(c)])
}

// Begin starts a wall-clock span; pass the result to End. On a nil
// recorder it returns 0 and End discards the span.
func (r *Recorder) Begin() int64 {
	if r == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// End closes a wall-clock span opened by Begin, attributing the elapsed
// time to phase p.
func (r *Recorder) End(p Phase, start int64) {
	if r == nil {
		return
	}
	r.timing.add(p, time.Now().UnixNano()-start)
}

// Timing returns the recorder's accumulated per-phase wall-clock spans.
func (r *Recorder) Timing() *Timing {
	if r == nil {
		return nil
	}
	return &r.timing
}
