package obs

import (
	"bytes"
	"strconv"
	"strings"
	"sync/atomic"
)

// Prometheus text exposition (format version 0.0.4) for the observability
// plane: the serving layer's /metrics endpoint renders a Recorder's
// counter totals, the response-latency histogram and the peak-heap gauge
// through a PromWriter, alongside the serving plane's own wall-clock
// counters. The CSV/JSON series (series.go) stay the replay-analysis
// surface; this is the scrape surface.

// PromWriter accumulates metric families in Prometheus text exposition
// format. Each helper emits the # HELP / # TYPE header followed by the
// samples; families must not repeat a name.
type PromWriter struct {
	b bytes.Buffer
}

// header writes the HELP/TYPE preamble for one family.
func (w *PromWriter) header(name, help, typ string) {
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(escapeHelp(help))
	w.b.WriteString("\n# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// Counter emits one cumulative counter sample.
func (w *PromWriter) Counter(name, help string, v int64) {
	w.header(name, help, "counter")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(strconv.FormatInt(v, 10))
	w.b.WriteByte('\n')
}

// Gauge emits one gauge sample.
func (w *PromWriter) Gauge(name, help string, v float64) {
	w.header(name, help, "gauge")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(formatFloat(v))
	w.b.WriteByte('\n')
}

// Histogram emits one histogram family: cumulative _bucket samples for the
// given le upper bounds (cum[i] observations ≤ les[i]), the implicit +Inf
// bucket at count, then _sum and _count. les must be strictly increasing
// and cum non-decreasing — the exposition grammar's invariants.
func (w *PromWriter) Histogram(name, help string, les []float64, cum []int64, count int64, sum float64) {
	w.header(name, help, "histogram")
	for i, le := range les {
		w.b.WriteString(name)
		w.b.WriteString(`_bucket{le="`)
		w.b.WriteString(formatFloat(le))
		w.b.WriteString(`"} `)
		w.b.WriteString(strconv.FormatInt(cum[i], 10))
		w.b.WriteByte('\n')
	}
	w.b.WriteString(name)
	w.b.WriteString(`_bucket{le="+Inf"} `)
	w.b.WriteString(strconv.FormatInt(count, 10))
	w.b.WriteByte('\n')
	w.b.WriteString(name)
	w.b.WriteString("_sum ")
	w.b.WriteString(formatFloat(sum))
	w.b.WriteByte('\n')
	w.b.WriteString(name)
	w.b.WriteString("_count ")
	w.b.WriteString(strconv.FormatInt(count, 10))
	w.b.WriteByte('\n')
}

// Bytes returns the accumulated exposition body.
func (w *PromWriter) Bytes() []byte { return w.b.Bytes() }

// String returns the accumulated exposition body as a string.
func (w *PromWriter) String() string { return w.b.String() }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a HELP string per the exposition format (backslash
// and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promName maps an internal label to a legal metric-name fragment:
// anything outside [a-zA-Z0-9_:] becomes '_' (column labels such as
// "msgs_query-hit" carry hyphens).
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, s)
}

// WriteProm renders the recorder's whole-run totals as Prometheus metric
// families under the asap_ prefix: every counter column summed across the
// per-second grid (warm-up row included), the search-cost byte total, the
// response-latency histogram (log2 millisecond buckets re-expressed as
// cumulative le bounds in seconds), and — when a heap gauge is attached —
// the peak live-heap high-water mark. Nil-safe: a nil recorder writes
// nothing.
func (r *Recorder) WriteProm(w *PromWriter) {
	if r == nil {
		return
	}
	for c := Counter(0); int(c) < NumCounters; c++ {
		var total int64
		for row := 0; row <= r.seconds; row++ {
			total += r.get(row, c)
		}
		w.Counter("asap_"+promName(c.String())+"_total", "Total "+c.String()+" across the run.", total)
	}
	var bytesTotal int64
	for row := range r.srchB {
		bytesTotal += atomic.LoadInt64(&r.srchB[row])
	}
	w.Counter("asap_search_cost_bytes_total", "Total per-search traffic cost in bytes.", bytesTotal)

	// The sim-time response histogram: bucket b holds successes with
	// response in [2^(b-1), 2^b) ms, so integer-valued samples satisfy
	// "≤ 2^b − 1 ms" exactly — the le bounds below, in seconds.
	var les []float64
	var cum []int64
	var run, latSum int64
	for b := 0; b < HistBuckets-1; b++ {
		run += atomic.LoadInt64(&r.hist[b])
		les = append(les, float64(int64(1)<<b-1)/1000)
		cum = append(cum, run)
	}
	count := run + atomic.LoadInt64(&r.hist[HistBuckets-1])
	for row := range r.latMS {
		latSum += atomic.LoadInt64(&r.latMS[row])
	}
	w.Histogram("asap_search_response_seconds",
		"Modelled response latency of successful searches (sim time).",
		les, cum, count, float64(latSum)/1000)

	if r.heap != nil {
		w.Gauge("asap_peak_heap_bytes", "Peak live-heap high-water mark observed by the run's samples.",
			float64(r.heap.PeakBytes()))
	}
}
