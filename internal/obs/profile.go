package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles wires the standard profiling hooks for a CLI run: a CPU
// profile streamed to cpuPath, heap and mutex profiles written to
// memPath/mutexPath when the returned stop function runs, and a
// net/http/pprof endpoint on pprofAddr. Every argument is optional (empty
// disables that hook); with all four empty the call is a no-op. The stop
// function is always non-nil and safe to call once.
func StartProfiles(cpuPath, memPath, mutexPath, pprofAddr string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if mutexPath != "" {
		runtime.SetMutexProfileFraction(5)
	}
	if pprofAddr != "" {
		// The endpoint lives for the process; ListenAndServe only returns
		// on error, which a batch CLI reports but need not die on.
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "obs: pprof endpoint:", err)
			}
		}()
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
			runtime.GC() // materialise final heap statistics
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		if mutexPath != "" {
			f, err := os.Create(mutexPath)
			if err != nil {
				return fmt.Errorf("obs: mutex profile: %w", err)
			}
			err = pprof.Lookup("mutex").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return fmt.Errorf("obs: mutex profile: %w", err)
			}
		}
		return nil
	}, nil
}
