package obs

import "sync/atomic"

// Phase labels one instrumented wall-clock span of a run.
type Phase int

const (
	// PTopoGen is overlay generation from scratch (fresh-graph runs).
	PTopoGen Phase = iota
	// PTopoClone is stamping a run system from a topology prototype.
	PTopoClone
	// PAttach is scheme attachment, including ASAP's warm-up ad delivery.
	PAttach
	// PReplay is the trace replay proper (everything after Attach).
	PReplay
	// PSearchPhase1 is ASAP search phase 1: the local ads-cache scan plus
	// the first confirmation round.
	PSearchPhase1
	// PSearchPhase2 is ASAP search phase 2: the ads-request flood plus the
	// second confirmation round.
	PSearchPhase2
	// PDeliverFlood is one flood-based ad delivery cascade.
	PDeliverFlood
	// PDeliverWalk is one walk-based (RW or GSA) ad delivery.
	PDeliverWalk

	// NumPhases is the number of instrumented phases.
	NumPhases
)

// String returns the phase's report label.
func (p Phase) String() string {
	switch p {
	case PTopoGen:
		return "topo_gen"
	case PTopoClone:
		return "topo_clone"
	case PAttach:
		return "attach"
	case PReplay:
		return "replay"
	case PSearchPhase1:
		return "search_phase1"
	case PSearchPhase2:
		return "search_phase2"
	case PDeliverFlood:
		return "deliver_flood"
	case PDeliverWalk:
		return "deliver_walk"
	default:
		return "invalid"
	}
}

// Timing accumulates wall-clock span totals per phase. The zero value is
// ready to use; add and Merge are safe for concurrent use.
type Timing struct {
	ns [NumPhases]int64
	n  [NumPhases]int64
}

// add books one span of d nanoseconds against phase p.
func (tm *Timing) add(p Phase, d int64) {
	atomic.AddInt64(&tm.ns[p], d)
	atomic.AddInt64(&tm.n[p], 1)
}

// Merge folds o's spans into tm. A nil o is a no-op.
func (tm *Timing) Merge(o *Timing) {
	if o == nil {
		return
	}
	for p := 0; p < int(NumPhases); p++ {
		atomic.AddInt64(&tm.ns[p], atomic.LoadInt64(&o.ns[p]))
		atomic.AddInt64(&tm.n[p], atomic.LoadInt64(&o.n[p]))
	}
}

// PhaseStat is one phase's aggregate for machine-readable reports.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	TotalMS float64 `json:"total_ms"`
}

// Stats returns the phases with at least one span, in declaration order.
func (tm *Timing) Stats() []PhaseStat {
	out := make([]PhaseStat, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		n := atomic.LoadInt64(&tm.n[p])
		if n == 0 {
			continue
		}
		out = append(out, PhaseStat{
			Phase:   p.String(),
			Count:   n,
			TotalMS: float64(atomic.LoadInt64(&tm.ns[p])) / 1e6,
		})
	}
	return out
}
