package scenario

import (
	"fmt"
	"math/rand/v2"

	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// frStream and driftStream salt the pure per-node membership hash for
// free-rider and interest-drift selection. Membership is a stateless hash
// of (seed, stream, act, node) — not an RNG draw — so selecting nodes for
// one act can never shift any other random stream.
const (
	frStream    = 0xf8ee51de85eed004
	driftStream = 0xd81f7c1a55eed005
)

// Install wires the staged scenario into a freshly built system: it
// creates the unified fault plane (when the scenario needs one — loss > 0
// or any partition act) and installs the act director. seed and loss
// normally come from the scenario itself; the cluster harness passes its
// hello's values so replicas agree with the coordinator byte-for-byte.
func (st *Staged) Install(sys *sim.System, seed uint64, loss float64) {
	var plane *faults.Plane
	if loss > 0 || st.hasPartition {
		plane = faults.New(faults.Config{Seed: seed, LossRate: loss})
		sys.SetFaults(plane)
	}
	sys.SetDirector(&director{
		sys:   sys,
		plane: plane,
		ops:   st.ops,
		seed:  seed,
		rng:   rand.New(rand.NewPCG(seed, rewireStream)),
	})
}

// director applies staged acts when their trace.Directive events replay.
// The runner invokes Apply on the runner goroutine between query batches,
// so mutations of the system, plane, and overlay need no locking and land
// at a deterministic point of the event order.
type director struct {
	sys   *sim.System
	plane *faults.Plane
	ops   []Act
	seed  uint64
	rng   *rand.Rand // rewire picks only
}

// Apply implements sim.Director.
func (d *director) Apply(t sim.Clock, op int) {
	a := d.ops[op]
	switch a.Kind {
	case Partition:
		k := a.Groups
		if k < 2 {
			k = 2
		}
		n := d.sys.NumNodes()
		group := make([]int8, n)
		for i := range group {
			group[i] = int8(i * k / n)
		}
		d.plane.SetPartition(group)
	case Heal:
		d.plane.SetPartition(nil)
	case FreeRiders:
		if a.Frac <= 0 {
			d.sys.SetFreeRiders(nil)
			return
		}
		n := d.sys.NumNodes()
		mask := make([]bool, n)
		for i := 0; i < n; i++ {
			if nodeHash(d.seed, frStream^uint64(op)<<32, i) < a.Frac {
				mask[i] = true
			}
		}
		d.sys.SetFreeRiders(mask)
	case InterestDrift:
		n := d.sys.NumNodes()
		for i := 0; i < n; i++ {
			if a.Frac < 1 && nodeHash(d.seed, driftStream^uint64(op)<<32, i) >= a.Frac {
				continue
			}
			nd := overlay.NodeID(i)
			d.sys.SetInterests(nd, rotateClasses(d.sys.Interests(nd), a.Shift))
			d.sys.Obs().Count(t, obs.CInterestShift)
		}
	case Rewire:
		d.rewire(t, a)
	default:
		panic(fmt.Sprintf("scenario: directive op %d has non-directive kind %s", op, a.Kind))
	}
}

// rewire performs up to a.Rewires topology adaptations: a live node drops
// one live neighbour it shares no interest class with and attaches to an
// interest-similar live non-neighbour instead (Al-Asfoor & Abed's
// similarity-driven re-attachment, arXiv:2012.13146). Draws come from the
// director's dedicated PCG stream; all bounds are fixed, so the rng
// consumption — and therefore the replay — is deterministic.
func (d *director) rewire(t sim.Clock, a Act) {
	g := d.sys.G
	n := d.sys.NumNodes()
	for att := 0; att < a.Rewires; att++ {
		var v overlay.NodeID = -1
		for tries := 0; tries < 50; tries++ {
			cand := overlay.NodeID(d.rng.IntN(n))
			if g.Alive(cand) && len(g.LiveNeighbors(cand)) >= 2 {
				v = cand
				break
			}
		}
		if v < 0 {
			continue
		}
		vi := d.sys.Interests(v)
		drop := overlay.NodeID(-1)
		for _, nb := range g.LiveNeighbors(v) {
			if !d.sys.Interests(nb).Intersects(vi) {
				drop = nb
				break
			}
		}
		if drop < 0 {
			continue // every neighbour already shares an interest
		}
		add := overlay.NodeID(-1)
		for tries := 0; tries < 50; tries++ {
			cand := overlay.NodeID(d.rng.IntN(n))
			if cand == v || cand == drop || !g.Alive(cand) ||
				!d.sys.Interests(cand).Intersects(vi) || hasLiveEdge(g, v, cand) {
				continue
			}
			add = cand
			break
		}
		if add < 0 {
			continue
		}
		if !g.RemoveEdge(v, drop) {
			continue // super-peer parent link; leave it alone
		}
		if !g.AddEdge(v, add) {
			g.AddEdge(v, drop) // restore — add was a neighbour after all
			continue
		}
		d.sys.Obs().Count(t, obs.CRewire)
	}
}

// hasLiveEdge reports whether u appears in v's live-neighbour view.
func hasLiveEdge(g *overlay.Graph, v, u overlay.NodeID) bool {
	for _, nb := range g.LiveNeighbors(v) {
		if nb == u {
			return true
		}
	}
	return false
}

// nodeHash maps (seed, stream, node) to a uniform float64 in [0,1) via a
// splitmix64 finalizer — the same stateless construction the faults plane
// uses for drop decisions, and like them it consumes no RNG stream.
func nodeHash(seed, stream uint64, node int) float64 {
	x := seed ^ stream ^ uint64(node)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * (1.0 / (1 << 53))
}

// rotateClasses rotates a class set's bits by shift positions within the
// content.NumClasses-wide universe, preserving the interest count.
func rotateClasses(s content.ClassSet, shift int) content.ClassSet {
	const w = content.NumClasses
	const mask = (1 << w) - 1
	shift %= w
	if shift < 0 {
		shift += w
	}
	v := uint32(s) & mask
	return content.ClassSet((v<<shift | v>>(w-shift)) & mask)
}
