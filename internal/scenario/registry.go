package scenario

import (
	"fmt"
	"sort"
)

// builtins is the registry of named scenarios. Every entry replays on the
// tiny preset (≈400 nodes, ≈150 simulated seconds) so the whole battery —
// including the golden and determinism suites — stays fast enough for CI
// under -race. Act times sit well inside the trace span so each act has
// both a before and an after window in the series.
var builtins = []Scenario{
	{
		Name:   "partition-heal",
		Doc:    "overlay splits into two isolated halves at 30s and heals at 75s; searches and ad refreshes cross-partition fail until the heal",
		Scale:  "tiny",
		Scheme: "asap-rw",
		Topo:   "crawled",
		Seed:   1,
		Acts: []Act{
			{AtMS: 30_000, Kind: Partition, Groups: 2},
			{AtMS: 75_000, Kind: Heal},
		},
	},
	{
		Name:   "flash-crowd",
		Doc:    "400 extra queries for the most-queried content class burst in over 10s at t=40s",
		Scale:  "tiny",
		Scheme: "asap-rw",
		Topo:   "crawled",
		Seed:   1,
		Acts: []Act{
			{AtMS: 40_000, Kind: FlashCrowd, Class: -1, Queries: 400, DurationMS: 10_000},
		},
	},
	{
		Name:   "churn-storm",
		Doc:    "a quarter of the stable population leaves during 35–45s and rejoins during 45–55s",
		Scale:  "tiny",
		Scheme: "asap-fld",
		Topo:   "random",
		Seed:   1,
		Acts: []Act{
			{AtMS: 35_000, Kind: ChurnStorm, Frac: 0.25, DurationMS: 20_000},
		},
	},
	{
		Name:   "free-riders",
		Doc:    "from 20s on, 60% of peers keep querying but stop publishing and forwarding ads",
		Scale:  "tiny",
		Scheme: "asap-rw",
		Topo:   "crawled",
		Seed:   1,
		Acts: []Act{
			{AtMS: 20_000, Kind: FreeRiders, Frac: 0.6},
		},
	},
	{
		Name:   "interest-drift",
		Doc:    "half the peers rotate their interest classes by 3 at 30s and again at 80s; cached ads go stale against the drifted interests",
		Scale:  "tiny",
		Scheme: "asap-rw",
		Topo:   "crawled",
		Seed:   1,
		Acts: []Act{
			{AtMS: 30_000, Kind: InterestDrift, Frac: 0.5, Shift: 3},
			{AtMS: 80_000, Kind: InterestDrift, Frac: 0.5, Shift: 3},
		},
	},
	{
		Name:   "rewire",
		Doc:    "topology adaptation: 120 interest-similarity rewires at 30s and again at 60s (arXiv:2012.13146)",
		Scale:  "tiny",
		Scheme: "asap-gsa",
		Topo:   "powerlaw",
		Seed:   1,
		Acts: []Act{
			{AtMS: 30_000, Kind: Rewire, Rewires: 120},
			{AtMS: 60_000, Kind: Rewire, Rewires: 120},
		},
	},
	{
		Name:   "perfect-storm",
		Doc:    "everything at once on a 1%-lossy network: partition, flash crowd inside it, heal, churn storm, then a free-rider majority",
		Scale:  "tiny",
		Scheme: "asap-rw",
		Topo:   "crawled",
		Seed:   1,
		Loss:   0.01,
		Acts: []Act{
			{AtMS: 25_000, Kind: Partition, Groups: 2},
			{AtMS: 35_000, Kind: FlashCrowd, Class: -1, Queries: 300, DurationMS: 8_000},
			{AtMS: 55_000, Kind: Heal},
			{AtMS: 60_000, Kind: ChurnStorm, Frac: 0.2, DurationMS: 15_000},
			{AtMS: 80_000, Kind: FreeRiders, Frac: 0.5},
		},
	},
}

// Names lists the registered scenario names, sorted.
func Names() []string {
	out := make([]string, len(builtins))
	for i := range builtins {
		out[i] = builtins[i].Name
	}
	sort.Strings(out)
	return out
}

// ByName returns the registered scenario with the given name.
func ByName(name string) (Scenario, error) {
	for i := range builtins {
		if builtins[i].Name == name {
			return builtins[i], nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q", name)
}
