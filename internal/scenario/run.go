package scenario

import (
	"fmt"

	"asap/internal/experiments"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/sim"
)

// Options tunes one scenario replay. The zero value replays sequentially.
type Options struct {
	// Workers is the unsharded query worker count (0 = 1, the
	// deterministic default). Sharded replays ignore it.
	Workers int
	// Shards partitions the overlay for the parallel sharded replay
	// engine; outputs are byte-identical at every count.
	Shards int
}

// Result is one scenario replay's outputs: the paper summary plus the
// per-second observability series (the golden-replay hash input).
type Result struct {
	Scenario Scenario
	Summary  metrics.Summary
	Series   obs.RunSeries
}

// Build resolves the scenario's lab and stages its acts onto the lab's
// trace. The returned lab's trace is the merged sequence; LossRate is
// forced to 0 on the scale because the staged Install owns the plane.
func Build(sn Scenario) (*experiments.Lab, *Staged, error) {
	sc, err := sn.scale()
	if err != nil {
		return nil, nil, err
	}
	sc.LossRate = 0 // Install owns the fault plane
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return nil, nil, err
	}
	st, err := Stage(sn, lab)
	if err != nil {
		return nil, nil, err
	}
	return lab, st, nil
}

// Run replays one scenario end to end and returns its summary and series.
func Run(sn Scenario, opt Options) (*Result, error) {
	lab, st, err := Build(sn)
	if err != nil {
		return nil, err
	}
	kind, err := topoKind(sn.Topo)
	if err != nil {
		return nil, err
	}
	sch, err := lab.NewScheme(sn.Scheme)
	if err != nil {
		return nil, err
	}
	sys := sim.NewSystem(lab.U, lab.Tr, kind, lab.Net, sn.Seed)
	rec := obs.NewRecorder(int(lab.Tr.Span()/1000) + 2)
	sys.SetObs(rec)
	st.Install(sys, sn.Seed, sn.Loss)
	workers := opt.Workers
	if workers == 0 {
		workers = 1
	}
	sum := sim.Run(sys, sch, sim.RunOptions{Workers: workers, Shards: opt.Shards})
	key := fmt.Sprintf("%s/%s/%s", sn.Name, sum.Scheme, sum.Topology)
	return &Result{Scenario: sn, Summary: sum, Series: rec.Series(key, sys.Load)}, nil
}
