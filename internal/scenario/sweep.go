package scenario

import (
	"fmt"
	"strings"

	"asap/internal/obs"
)

// Sweep is one scenario-battery run: every selected scenario replayed
// end to end.
type Sweep struct {
	Results []*Result
}

// RunSweep replays the named scenarios (nil = every registered one, in
// registry order) and collects their results. A non-nil series collector
// receives each run's per-second observability series.
func RunSweep(names []string, opt Options, series *obs.Collector, progress func(name string)) (*Sweep, error) {
	var sns []Scenario
	if names == nil {
		sns = append(sns, builtins...)
	} else {
		for _, name := range names {
			sn, err := Resolve(strings.TrimSpace(name))
			if err != nil {
				return nil, err
			}
			sns = append(sns, sn)
		}
	}
	sw := &Sweep{}
	for _, sn := range sns {
		if progress != nil {
			progress(sn.Name)
		}
		res, err := Run(sn, opt)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sn.Name, err)
		}
		if series != nil {
			series.Add(res.Series)
		}
		sw.Results = append(sw.Results, res)
	}
	return sw, nil
}

// FormatSweep renders a sweep as an aligned table: one row per scenario
// with the headline search metrics plus the act-specific counters summed
// over the run (partition drops, rewires, interest shifts).
func FormatSweep(sw *Sweep) string {
	headers := []string{"scenario", "scheme", "topo", "requests", "success", "response ms",
		"KB/search", "drops", "part_drops", "rewires", "shifts"}
	var rows [][]string
	for _, r := range sw.Results {
		rows = append(rows, []string{
			r.Scenario.Name,
			r.Summary.Scheme,
			r.Summary.Topology,
			fmt.Sprintf("%d", r.Summary.Requests),
			fmt.Sprintf("%.3f", r.Summary.SuccessRate),
			fmt.Sprintf("%.0f", r.Summary.MeanRespMS),
			fmt.Sprintf("%.2f", r.Summary.MeanSearchBytes/1024),
			fmt.Sprintf("%d", r.Summary.Drops),
			fmt.Sprintf("%d", ColumnSum(&r.Series, obs.CPartDrop.String())),
			fmt.Sprintf("%d", ColumnSum(&r.Series, obs.CRewire.String())),
			fmt.Sprintf("%d", ColumnSum(&r.Series, obs.CInterestShift.String())),
		})
	}
	return "Scenario sweep (adversarial workloads)\n" + renderTable(headers, rows)
}

// ColumnSum totals one series column over warm-up and every second.
func ColumnSum(s *obs.RunSeries, col string) int64 {
	i := s.ColumnIndex(col)
	if i < 0 {
		return 0
	}
	total := s.Warmup[i]
	for _, row := range s.Rows {
		total += row[i]
	}
	return total
}

// renderTable prints an aligned text table (the experiments package keeps
// its own private copy; the format matches).
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
