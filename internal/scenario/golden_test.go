package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"asap/internal/metrics"
)

// update regenerates the golden fixtures:
//
//	go test ./internal/scenario -run TestGoldenReplay -update
var update = flag.Bool("update", false, "rewrite the golden scenario fixtures in testdata/")

// golden is one pinned scenario replay: the full summary, the SHA-256 of
// the per-second series CSV, and every column's run total. The hash is
// the regression gate; the sums exist so a mismatch reports WHICH counter
// moved, not just that something did.
type golden struct {
	Summary      metrics.Summary  `json:"summary"`
	SeriesSHA256 string           `json:"series_sha256"`
	ColumnSums   map[string]int64 `json:"column_sums"`
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

// snapshot reduces a result to its golden form.
func snapshot(res *Result) golden {
	sum := sha256.Sum256(res.Series.CSV())
	cols := map[string]int64{}
	for _, c := range res.Series.Columns {
		if c == "sec" {
			continue
		}
		cols[c] = ColumnSum(&res.Series, c)
	}
	return golden{
		Summary:      res.Summary,
		SeriesSHA256: hex.EncodeToString(sum[:]),
		ColumnSums:   cols,
	}
}

// TestGoldenReplay is the golden-replay regression gate: every built-in
// scenario must reproduce its pinned summary and series hash exactly. Any
// drift in the replay core, the schemes, the fault plane, or the scenario
// compiler shows up here first — with a per-counter diff naming the
// columns that moved. Regenerate deliberately with -update and review the
// fixture diff like code.
func TestGoldenReplay(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			if !*update {
				t.Parallel()
			}
			sn, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sn, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := snapshot(res)
			path := goldenPath(name)
			if *update {
				buf, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s", path)
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden fixture (run with -update to create): %v", err)
			}
			var want golden
			if err := json.Unmarshal(raw, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}
			if diff := diffGolden(&want, &got); diff != "" {
				t.Errorf("scenario %s diverged from its golden replay:\n%s", name, diff)
			}
		})
	}
}

// diffGolden renders a readable mismatch report: the summary fields and
// series columns that moved, with pinned vs observed values. Empty when
// the replay matches.
func diffGolden(want, got *golden) string {
	var out string
	ws, _ := json.Marshal(want.Summary)
	gs, _ := json.Marshal(got.Summary)
	if string(ws) != string(gs) {
		out += fmt.Sprintf("summary:\n  pinned:   %s\n  observed: %s\n", ws, gs)
	}
	if want.SeriesSHA256 != got.SeriesSHA256 {
		out += fmt.Sprintf("series hash: pinned %s, observed %s\n", want.SeriesSHA256, got.SeriesSHA256)
	}
	var cols []string
	for c := range want.ColumnSums {
		cols = append(cols, c)
	}
	for c := range got.ColumnSums {
		if _, ok := want.ColumnSums[c]; !ok {
			cols = append(cols, c)
		}
	}
	sort.Strings(cols)
	for _, c := range cols {
		w, wok := want.ColumnSums[c]
		g, gok := got.ColumnSums[c]
		switch {
		case !wok:
			out += fmt.Sprintf("  column %-24s new, observed %d\n", c, g)
		case !gok:
			out += fmt.Sprintf("  column %-24s gone, pinned %d\n", c, w)
		case w != g:
			out += fmt.Sprintf("  column %-24s pinned %d, observed %d (%+d)\n", c, w, g, g-w)
		}
	}
	return out
}

// TestDiffGoldenReadable pins the mismatch report itself: a perturbed
// snapshot must name the exact counter that moved with both values.
func TestDiffGoldenReadable(t *testing.T) {
	base := golden{
		Summary:      metrics.Summary{Scheme: "asap-rw", Requests: 10},
		SeriesSHA256: "aa",
		ColumnSums:   map[string]int64{"part_drops": 5, "rewires": 2},
	}
	same := base
	same.ColumnSums = map[string]int64{"part_drops": 5, "rewires": 2}
	if d := diffGolden(&base, &same); d != "" {
		t.Errorf("identical snapshots produced a diff:\n%s", d)
	}
	moved := base
	moved.SeriesSHA256 = "bb"
	moved.ColumnSums = map[string]int64{"part_drops": 7, "rewires": 2}
	d := diffGolden(&base, &moved)
	for _, frag := range []string{"part_drops", "pinned 5", "observed 7", "series hash"} {
		if !strings.Contains(d, frag) {
			t.Errorf("diff does not mention %q:\n%s", frag, d)
		}
	}
	if strings.Contains(d, "rewires") {
		t.Errorf("diff mentions an unchanged counter:\n%s", d)
	}
}
