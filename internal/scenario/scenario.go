// Package scenario is the declarative adversarial-workload engine: a
// Scenario is a warm-up phase (the paper's ad pre-distribution, untouched)
// plus an ordered list of timed acts — partitions and heals, flash crowds,
// churn storms, free-rider majorities, interest drift, and topology
// adaptation (rewiring toward interest-similar neighbours).
//
// Acts compile down to the existing deterministic seams. ChurnStorm and
// FlashCrowd become ordinary trace events (Leave/Join and Query) merged
// into the base trace; Partition/Heal, FreeRiders, InterestDrift, and
// Rewire become trace.Directive events whose payload indexes a staged act
// applied by a sim.Director on the runner goroutine, between query
// batches. Every source of randomness is a seeded PCG stream or a pure
// per-node hash of the scenario seed, and every mutation happens at a
// deterministic point of the event order — so a scenario replays
// bit-for-bit at any worker and shard count, and each built-in ships as a
// golden-replay regression test.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"asap/internal/content"
	"asap/internal/experiments"
	"asap/internal/overlay"
)

// ActKind names one act type.
type ActKind string

const (
	// Partition splits the overlay into Groups contiguous node-range
	// groups; messages between groups are dropped until a Heal.
	Partition ActKind = "partition"
	// Heal removes the current partition.
	Heal ActKind = "heal"
	// FlashCrowd injects Queries extra queries for content of one Class
	// (Class < 0 picks the most-queried class of the base trace), spread
	// uniformly over [At, At+Duration].
	FlashCrowd ActKind = "flash-crowd"
	// ChurnStorm makes a Frac fraction of the stable population leave
	// during the first half of [At, At+Duration] and rejoin during the
	// second half.
	ChurnStorm ActKind = "churn-storm"
	// FreeRiders marks a Frac fraction of nodes (pure per-node hash) as
	// free riders: they keep querying and caching but stop publishing and
	// forwarding ads. Frac = 0 lifts the mask.
	FreeRiders ActKind = "free-riders"
	// InterestDrift rotates the interest classes of a Frac fraction of
	// nodes by Shift positions (mod content.NumClasses).
	InterestDrift ActKind = "interest-drift"
	// Rewire attempts Rewires topology adaptations: a random live node
	// drops one live neighbour sharing no interest class with it and
	// attaches to an interest-similar live non-neighbour instead.
	Rewire ActKind = "rewire"
)

// Act is one timed scenario step. AtMS is virtual time in milliseconds
// from trace start; acts must be listed in non-decreasing AtMS order.
// The remaining fields parameterise the act kind that uses them.
type Act struct {
	AtMS       int64   `json:"at_ms"`
	Kind       ActKind `json:"kind"`
	Groups     int     `json:"groups,omitempty"`      // Partition: group count (default 2)
	Class      int     `json:"class,omitempty"`       // FlashCrowd: content class (< 0 = most-queried)
	Queries    int     `json:"queries,omitempty"`     // FlashCrowd: injected query count
	DurationMS int64   `json:"duration_ms,omitempty"` // FlashCrowd/ChurnStorm: act window
	Frac       float64 `json:"frac,omitempty"`        // ChurnStorm/FreeRiders/InterestDrift: node fraction
	Shift      int     `json:"shift,omitempty"`       // InterestDrift: class rotation distance
	Rewires    int     `json:"rewires,omitempty"`     // Rewire: adaptation attempts
}

// Scenario is one declarative adversarial workload: the base lab
// configuration plus the ordered act list layered onto its trace.
type Scenario struct {
	Name   string  `json:"name"`
	Doc    string  `json:"doc,omitempty"`
	Scale  string  `json:"scale"`
	Scheme string  `json:"scheme"`
	Topo   string  `json:"topo"`
	Seed   uint64  `json:"seed"`
	Loss   float64 `json:"loss,omitempty"`
	Acts   []Act   `json:"acts"`
}

// Validate reports the first structural error in the scenario, if any.
// Scale and scheme names are resolved at Stage/Run time against the
// experiments registry; Validate checks everything checkable standalone.
func (sn *Scenario) Validate() error {
	if sn.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if strings.ContainsAny(sn.Name, "/ \t\n") {
		return fmt.Errorf("scenario %s: name must not contain slashes or whitespace", sn.Name)
	}
	if sn.Loss < 0 || sn.Loss >= 1 {
		return fmt.Errorf("scenario %s: loss %v out of [0,1)", sn.Name, sn.Loss)
	}
	if len(sn.Acts) == 0 {
		return fmt.Errorf("scenario %s: no acts", sn.Name)
	}
	prev := int64(0)
	partitioned := false
	for i, a := range sn.Acts {
		where := fmt.Sprintf("scenario %s act %d (%s)", sn.Name, i, a.Kind)
		if a.AtMS < 0 {
			return fmt.Errorf("%s: negative time %d", where, a.AtMS)
		}
		if a.AtMS < prev {
			return fmt.Errorf("%s: out of order (%d < %d)", where, a.AtMS, prev)
		}
		prev = a.AtMS
		switch a.Kind {
		case Partition:
			if a.Groups < 0 || a.Groups > 127 {
				return fmt.Errorf("%s: groups %d out of [0,127]", where, a.Groups)
			}
			if partitioned {
				return fmt.Errorf("%s: already partitioned (heal first)", where)
			}
			partitioned = true
		case Heal:
			if !partitioned {
				return fmt.Errorf("%s: no partition to heal", where)
			}
			partitioned = false
		case FlashCrowd:
			if a.Queries <= 0 {
				return fmt.Errorf("%s: queries %d must be positive", where, a.Queries)
			}
			if a.Class >= content.NumClasses {
				return fmt.Errorf("%s: class %d out of range (max %d)", where, a.Class, content.NumClasses-1)
			}
			if a.DurationMS < 0 {
				return fmt.Errorf("%s: negative duration", where)
			}
		case ChurnStorm:
			if a.Frac <= 0 || a.Frac > 1 {
				return fmt.Errorf("%s: frac %v out of (0,1]", where, a.Frac)
			}
			if a.DurationMS <= 0 {
				return fmt.Errorf("%s: duration %d must be positive", where, a.DurationMS)
			}
		case FreeRiders:
			if a.Frac < 0 || a.Frac > 1 {
				return fmt.Errorf("%s: frac %v out of [0,1]", where, a.Frac)
			}
		case InterestDrift:
			if a.Frac <= 0 || a.Frac > 1 {
				return fmt.Errorf("%s: frac %v out of (0,1]", where, a.Frac)
			}
			if a.Shift <= 0 || a.Shift >= content.NumClasses {
				return fmt.Errorf("%s: shift %d out of [1,%d]", where, a.Shift, content.NumClasses-1)
			}
		case Rewire:
			if a.Rewires <= 0 {
				return fmt.Errorf("%s: rewires %d must be positive", where, a.Rewires)
			}
		default:
			return fmt.Errorf("%s: unknown act kind", where)
		}
	}
	return nil
}

// Load reads a JSON scenario definition from path and validates it.
func Load(path string) (Scenario, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sn Scenario
	dec := json.NewDecoder(strings.NewReader(string(buf)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sn); err != nil {
		return Scenario{}, fmt.Errorf("scenario: parsing %s: %w", path, err)
	}
	if err := sn.Validate(); err != nil {
		return Scenario{}, err
	}
	return sn, nil
}

// Resolve turns a -scenario argument into a Scenario: a registry name
// first, otherwise a JSON file path.
func Resolve(arg string) (Scenario, error) {
	if sn, err := ByName(arg); err == nil {
		return sn, nil
	}
	if _, err := os.Stat(arg); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %q is neither a registered scenario (%s) nor a readable file",
			arg, strings.Join(Names(), ", "))
	}
	return Load(arg)
}

// topoKind resolves a topology name, accepting the paper's three kinds
// plus the super-peer hierarchy.
func topoKind(name string) (overlay.Kind, error) {
	for _, k := range overlay.Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	if overlay.SuperPeerKind.String() == name {
		return overlay.SuperPeerKind, nil
	}
	return 0, fmt.Errorf("scenario: unknown topology %q", name)
}

// scale resolves the scenario's scale preset with its seed applied.
func (sn *Scenario) scale() (experiments.Scale, error) {
	sc, err := experiments.ByName(sn.Scale)
	if err != nil {
		return experiments.Scale{}, err
	}
	sc.Seed = sn.Seed
	return sc, nil
}
