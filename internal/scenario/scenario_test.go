package scenario

import (
	"encoding/json"
	"reflect"
	"testing"

	"asap/internal/content"
	"asap/internal/experiments"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// fingerprint reduces a result to the byte strings the determinism
// property compares: the summary's JSON encoding and the full per-second
// series CSV.
func fingerprint(t *testing.T, res *Result) (string, string) {
	t.Helper()
	sum, err := json.Marshal(res.Summary)
	if err != nil {
		t.Fatal(err)
	}
	return string(sum), string(res.Series.CSV())
}

// TestScenarioShardWorkerDeterminism is the property gate: every
// registered scenario must replay byte-identically — summary and
// per-second series — across the sequential (Workers=1, unsharded)
// replay and the sharded engine at S ∈ {1, 2, 4}. The sharded engine IS
// the deterministic N-worker execution (each query batch fans intra-shard
// lanes across goroutines, PR 7's shard-smoke pattern), so this covers
// "1 vs N workers" and shard counts in one sweep; -race doubles as a
// soundness proof that scenario directives never race the query lanes.
func TestScenarioShardWorkerDeterminism(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sn, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := Run(sn, Options{})
			if err != nil {
				t.Fatalf("sequential run: %v", err)
			}
			baseSum, baseCSV := fingerprint(t, base)
			checkActEffects(t, name, base)
			for _, shards := range []int{1, 2, 4} {
				got, err := Run(sn, Options{Shards: shards})
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				gotSum, gotCSV := fingerprint(t, got)
				if gotSum != baseSum {
					t.Errorf("shards=%d summary diverges:\nseq:     %s\nsharded: %s", shards, baseSum, gotSum)
				}
				if gotCSV != baseCSV {
					t.Errorf("shards=%d series CSV diverges (%d vs %d bytes)", shards, len(baseCSV), len(gotCSV))
				}
			}
		})
	}
}

// checkActEffects asserts, per built-in, that the acts actually bit: the
// adversarial machinery must leave its fingerprints in the series, not
// just replay cleanly.
func checkActEffects(t *testing.T, name string, res *Result) {
	t.Helper()
	partDrops := ColumnSum(&res.Series, obs.CPartDrop.String())
	switch name {
	case "partition-heal":
		if partDrops == 0 {
			t.Error("partition dropped no messages")
		}
		if res.Summary.Drops != partDrops {
			t.Errorf("loss-free scenario: total drops %d != partition drops %d", res.Summary.Drops, partDrops)
		}
	case "perfect-storm":
		if partDrops == 0 {
			t.Error("partition dropped no messages")
		}
		if res.Summary.Drops <= partDrops {
			t.Errorf("1%% loss added no drops beyond the partition's %d", partDrops)
		}
	case "interest-drift":
		if n := ColumnSum(&res.Series, obs.CInterestShift.String()); n == 0 {
			t.Error("interest drift shifted no nodes")
		}
	case "rewire":
		if n := ColumnSum(&res.Series, obs.CRewire.String()); n == 0 {
			t.Error("rewire adapted no edges")
		}
	case "churn-storm":
		live := res.Series.ColumnIndex("live")
		act := res.Scenario.Acts[0]
		before := res.Series.Rows[act.AtMS/1000-1][live]
		minLive := before
		for sec := act.AtMS / 1000; sec <= (act.AtMS+act.DurationMS/2)/1000; sec++ {
			if v := res.Series.Rows[sec][live]; v < minLive {
				minLive = v
			}
		}
		if minLive >= before {
			t.Errorf("churn storm never dipped the live count (before %d, min %d)", before, minLive)
		}
		after := res.Series.Rows[(act.AtMS+act.DurationMS)/1000+1][live]
		if after <= minLive {
			t.Errorf("live count did not recover after the storm (min %d, after %d)", minLive, after)
		}
	}
}

// TestStageInjectsEvents checks the compiler's arithmetic without a
// replay: flash crowds add exactly Queries query events, churn storms add
// matched leave/join pairs inside their window, and directive acts add
// one Directive event each.
func TestStageInjectsEvents(t *testing.T) {
	plain, err := experiments.NewLab(mustScale(t, "tiny", 1))
	if err != nil {
		t.Fatal(err)
	}
	base := plain.Tr.Stats()

	for _, tc := range []struct{ name string }{{"flash-crowd"}, {"churn-storm"}, {"partition-heal"}} {
		sn, err := ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		lab, st, err := Build(sn)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := lab.Tr.Stats()
		switch tc.name {
		case "flash-crowd":
			if want := base.Queries + sn.Acts[0].Queries; got.Queries != want {
				t.Errorf("flash-crowd: %d queries, want %d", got.Queries, want)
			}
		case "churn-storm":
			extraLeaves := got.Leaves - base.Leaves
			extraJoins := got.Joins - base.Joins
			if extraLeaves == 0 || extraLeaves != extraJoins {
				t.Errorf("churn-storm: %d extra leaves, %d extra joins", extraLeaves, extraJoins)
			}
			seen := map[overlay.NodeID]int64{}
			a := sn.Acts[0]
			for _, ev := range lab.Tr.Events {
				if ev.Time < a.AtMS || ev.Time >= a.AtMS+a.DurationMS+1 {
					continue
				}
				switch ev.Kind {
				case trace.Leave:
					seen[ev.Node] = ev.Time
				case trace.Join:
					if lt, ok := seen[ev.Node]; ok && ev.Time <= lt {
						t.Errorf("node %d rejoins at %d before leaving at %d", ev.Node, ev.Time, lt)
					}
				}
			}
		case "partition-heal":
			nd := 0
			for _, ev := range lab.Tr.Events {
				if ev.Kind == trace.Directive {
					nd++
				}
			}
			if nd != 2 || len(st.ops) != 2 {
				t.Errorf("partition-heal: %d directive events, %d ops, want 2/2", nd, len(st.ops))
			}
		}
		// Staging must never reorder: events stay non-decreasing in time.
		prev := int64(0)
		for i, ev := range lab.Tr.Events {
			if ev.Time < prev {
				t.Fatalf("%s: merged trace out of order at %d", tc.name, i)
			}
			prev = ev.Time
		}
	}
}

// TestInertActsMatchBaseline: a scenario whose only act is a no-op
// (FreeRiders with Frac=0 clears an already-empty mask) must replay to
// the exact summary of the plain lab run — the directive plumbing itself
// consumes no randomness and perturbs nothing.
func TestInertActsMatchBaseline(t *testing.T) {
	sn := Scenario{
		Name: "inert", Scale: "tiny", Scheme: "asap-rw", Topo: "crawled", Seed: 1,
		Acts: []Act{{AtMS: 20_000, Kind: FreeRiders, Frac: 0}},
	}
	res, err := Run(sn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := experiments.NewLab(mustScale(t, "tiny", 1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := lab.Run("asap-rw", overlay.Crawled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Summary, want) {
		t.Errorf("inert scenario diverges from the plain run:\nscenario: %+v\nplain:    %+v", res.Summary, want)
	}
}

func mustScale(t *testing.T, name string, seed uint64) experiments.Scale {
	t.Helper()
	sc, err := experiments.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = seed
	return sc
}

// TestValidateRejectsMalformed pins the validator's error surface.
func TestValidateRejectsMalformed(t *testing.T) {
	ok := Scenario{Name: "x", Scale: "tiny", Scheme: "asap-rw", Topo: "crawled",
		Acts: []Act{{AtMS: 1000, Kind: Partition}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	for _, tc := range []struct {
		label  string
		mutate func(*Scenario)
	}{
		{"empty name", func(s *Scenario) { s.Name = "" }},
		{"slash in name", func(s *Scenario) { s.Name = "a/b" }},
		{"loss out of range", func(s *Scenario) { s.Loss = 1 }},
		{"no acts", func(s *Scenario) { s.Acts = nil }},
		{"negative time", func(s *Scenario) { s.Acts = []Act{{AtMS: -1, Kind: Heal}} }},
		{"out of order", func(s *Scenario) {
			s.Acts = []Act{{AtMS: 2000, Kind: Partition}, {AtMS: 1000, Kind: Heal}}
		}},
		{"heal without partition", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: Heal}} }},
		{"double partition", func(s *Scenario) {
			s.Acts = []Act{{AtMS: 0, Kind: Partition}, {AtMS: 1, Kind: Partition}}
		}},
		{"flash without queries", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: FlashCrowd}} }},
		{"flash class too big", func(s *Scenario) {
			s.Acts = []Act{{AtMS: 0, Kind: FlashCrowd, Queries: 1, Class: 99}}
		}},
		{"churn frac", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: ChurnStorm, Frac: 0, DurationMS: 1}} }},
		{"churn duration", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: ChurnStorm, Frac: 0.5}} }},
		{"free-rider frac", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: FreeRiders, Frac: 1.5}} }},
		{"drift shift", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: InterestDrift, Frac: 0.5}} }},
		{"rewire count", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: Rewire}} }},
		{"unknown kind", func(s *Scenario) { s.Acts = []Act{{AtMS: 0, Kind: "melt"}} }},
	} {
		sn := ok
		sn.Acts = append([]Act(nil), ok.Acts...)
		tc.mutate(&sn)
		if err := sn.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.label)
		}
	}
}

// TestRegistryWellFormed: every built-in validates, resolves by name, and
// the registry meets the acceptance floor of six scenarios covering all
// act kinds.
func TestRegistryWellFormed(t *testing.T) {
	if len(builtins) < 6 {
		t.Fatalf("only %d built-in scenarios, want ≥ 6", len(builtins))
	}
	covered := map[ActKind]bool{}
	for _, sn := range builtins {
		if err := sn.Validate(); err != nil {
			t.Errorf("built-in %s invalid: %v", sn.Name, err)
		}
		got, err := ByName(sn.Name)
		if err != nil || got.Name != sn.Name {
			t.Errorf("ByName(%s): %v", sn.Name, err)
		}
		for _, a := range sn.Acts {
			covered[a.Kind] = true
		}
	}
	for _, k := range []ActKind{Partition, Heal, FlashCrowd, ChurnStorm, FreeRiders, InterestDrift, Rewire} {
		if !covered[k] {
			t.Errorf("no built-in exercises %s", k)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Resolve("no-such-scenario-or-file"); err == nil {
		t.Error("unresolvable argument accepted")
	}
}

// TestRotateClasses pins the drift rotation: count-preserving, in-range,
// and invertible by the complementary shift.
func TestRotateClasses(t *testing.T) {
	for _, set := range []uint16{0b1, 0b101, 0b10000000000011, 0b11111111111111} {
		s := content.ClassSet(set)
		for shift := 1; shift < 14; shift++ {
			r := rotateClasses(s, shift)
			if r.Count() != s.Count() {
				t.Errorf("rotate(%b, %d) changed the class count", set, shift)
			}
			if back := rotateClasses(r, 14-shift); back != s {
				t.Errorf("rotate(%b, %d) not inverted by %d: got %b", set, shift, 14-shift, back)
			}
		}
	}
}
