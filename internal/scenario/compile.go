package scenario

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"asap/internal/content"
	"asap/internal/experiments"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// PCG stream constants. Each compile-time randomness consumer draws from
// its own stream of the scenario seed, so adding one act kind can never
// shift the draws of another.
const (
	churnStream  = 0x5ca1ab1ec0ffee01
	flashStream  = 0xf1a5bc0bd5eed002
	rewireStream = 0x4e3712ee5eed0003
)

// Staged is a compiled scenario: the lab's trace has been replaced by the
// merged base+scenario event sequence, and ops holds the directive acts
// that trace.Directive events index (Event.Doc = ops index).
type Staged struct {
	sn  Scenario
	ops []Act
	// hasPartition forces a fault plane even at loss 0, so partition
	// drops have a plane to act through.
	hasPartition bool
}

// Scenario returns the staged scenario definition.
func (st *Staged) Scenario() Scenario { return st.sn }

// Stage compiles sn's acts against lab's base trace and installs the
// merged trace on the lab (replacing lab.Tr). Call between NewLab and
// system construction, so the replay horizon is sized to the merged span.
//
// Every choice is a deterministic function of (scenario seed, base
// trace): churn-storm victims and flash-crowd requesters come from
// dedicated PCG streams, so staging the same scenario on the same lab
// always produces the identical event sequence — the property the
// golden-replay and cluster-equivalence tests pin.
func Stage(sn Scenario, lab *experiments.Lab) (*Staged, error) {
	if err := sn.Validate(); err != nil {
		return nil, err
	}
	base := lab.Tr
	st := &Staged{sn: sn}

	// The stable population: nodes alive at t=0 that the base trace never
	// churns. Scenario churn and flash queries draw from it, so injected
	// Leave/Join/Query events can never collide with base churn.
	leaver := make(map[overlay.NodeID]bool)
	for i := range base.Events {
		if base.Events[i].Kind == trace.Leave {
			leaver[base.Events[i].Node] = true
		}
	}
	stable := make([]overlay.NodeID, 0, base.InitialLive)
	for n := 0; n < base.InitialLive; n++ {
		if !leaver[overlay.NodeID(n)] {
			stable = append(stable, overlay.NodeID(n))
		}
	}

	// Pass 1: churn storms claim their victims (each node at most once
	// across all storms, so leave/join pairs never interleave).
	churned := make(map[overlay.NodeID]bool)
	var injected []trace.Event
	for ai := range sn.Acts {
		a := &sn.Acts[ai]
		if a.Kind != ChurnStorm {
			continue
		}
		rng := rand.New(rand.NewPCG(sn.Seed^uint64(ai), churnStream))
		pool := make([]overlay.NodeID, 0, len(stable))
		for _, n := range stable {
			if !churned[n] {
				pool = append(pool, n)
			}
		}
		k := int(a.Frac*float64(len(pool)) + 0.5)
		if k < 1 {
			k = 1
		}
		if k > len(pool) {
			k = len(pool)
		}
		if k == 0 {
			return nil, fmt.Errorf("scenario %s: churn storm at %dms has no stable nodes left", sn.Name, a.AtMS)
		}
		// Partial Fisher–Yates: the first k entries of pool are the victims.
		for i := 0; i < k; i++ {
			j := i + rng.IntN(len(pool)-i)
			pool[i], pool[j] = pool[j], pool[i]
		}
		half := a.DurationMS / 2
		if half < 1 {
			half = 1
		}
		for i := 0; i < k; i++ {
			n := pool[i]
			churned[n] = true
			leaveT := a.AtMS + rng.Int64N(half)
			joinT := a.AtMS + half + rng.Int64N(a.DurationMS-half+1)
			injected = append(injected,
				trace.Event{Time: leaveT, Kind: trace.Leave, Node: n},
				trace.Event{Time: joinT, Kind: trace.Join, Node: n})
		}
	}

	// Pass 2: flash crowds replay extra queries of one class, issued by
	// stable non-churned nodes, with terms/targets sampled from the base
	// trace's own queries of that class.
	requesters := make([]overlay.NodeID, 0, len(stable))
	for _, n := range stable {
		if !churned[n] {
			requesters = append(requesters, n)
		}
	}
	for ai := range sn.Acts {
		a := &sn.Acts[ai]
		if a.Kind != FlashCrowd {
			continue
		}
		class, err := resolveFlashClass(a, base, lab.U)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sn.Name, err)
		}
		var templates []int // base event indices of class-matching queries
		for i := range base.Events {
			ev := &base.Events[i]
			if ev.Kind == trace.Query && int(lab.U.ClassOf(ev.Doc)) == class {
				templates = append(templates, i)
			}
		}
		if len(templates) == 0 {
			return nil, fmt.Errorf("scenario %s: flash crowd at %dms: base trace has no class-%d queries", sn.Name, a.AtMS, class)
		}
		if len(requesters) == 0 {
			return nil, fmt.Errorf("scenario %s: flash crowd at %dms has no stable requesters", sn.Name, a.AtMS)
		}
		rng := rand.New(rand.NewPCG(sn.Seed^uint64(ai), flashStream))
		for q := 0; q < a.Queries; q++ {
			tmpl := &base.Events[templates[rng.IntN(len(templates))]]
			injected = append(injected, trace.Event{
				Time:  a.AtMS + rng.Int64N(a.DurationMS+1),
				Kind:  trace.Query,
				Node:  requesters[rng.IntN(len(requesters))],
				Doc:   tmpl.Doc,
				Terms: tmpl.Terms,
			})
		}
	}

	// Pass 3: the remaining act kinds become Directive events indexing
	// the staged op table; the director applies them mid-replay.
	for ai := range sn.Acts {
		a := sn.Acts[ai]
		switch a.Kind {
		case ChurnStorm, FlashCrowd:
			continue
		case Partition:
			st.hasPartition = true
		}
		injected = append(injected, trace.Event{
			Time: a.AtMS,
			Kind: trace.Directive,
			Doc:  content.DocID(len(st.ops)),
		})
		st.ops = append(st.ops, a)
	}

	// Merge: injected events sort by time (stable, preserving generation
	// order on ties), then interleave with the base trace, base first on
	// equal timestamps.
	sort.SliceStable(injected, func(i, j int) bool { return injected[i].Time < injected[j].Time })
	merged := &trace.Trace{
		Peers:       base.Peers,
		InitialLive: base.InitialLive,
		Events:      make([]trace.Event, 0, len(base.Events)+len(injected)),
	}
	bi, ii := 0, 0
	for bi < len(base.Events) || ii < len(injected) {
		if ii >= len(injected) || (bi < len(base.Events) && base.Events[bi].Time <= injected[ii].Time) {
			merged.Events = append(merged.Events, base.Events[bi])
			bi++
		} else {
			merged.Events = append(merged.Events, injected[ii])
			ii++
		}
	}
	lab.Tr = merged
	return st, nil
}

// resolveFlashClass resolves a flash crowd's target class; negative means
// "the base trace's most-queried class" (ties break toward the lowest
// class index, deterministically).
func resolveFlashClass(a *Act, base *trace.Trace, u *content.Universe) (int, error) {
	if a.Class >= 0 {
		return a.Class, nil
	}
	var counts [content.NumClasses]int
	for i := range base.Events {
		if base.Events[i].Kind == trace.Query {
			counts[u.ClassOf(base.Events[i].Doc)]++
		}
	}
	best, bestN := -1, 0
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("flash crowd at %dms: base trace has no queries", a.AtMS)
	}
	return best, nil
}
