// Package search implements the paper's baseline query-based search
// algorithms (§IV-A):
//
//   - Flooding — the query is forwarded to every neighbour with TTL 6 and
//     duplicate suppression; every node holding a matching document replies
//     directly to the requester.
//   - RandomWalk — 5 walkers, each with TTL 1024 (Lv et al. [21]); a
//     walker checks back with the requester every few steps and terminates
//     once the query is resolved, the standard "checking" termination.
//   - GSA — the generalized search algorithm of Gkantsidis et al. [12]
//     ("hybrid search schemes"): a one-hop flood seeds one walker per
//     neighbour, and the whole query is limited by a total message budget
//     of 8,000.
//
// Because queries do not interact (see package sim), each Search call
// simulates its own message cascade over a snapshot of the live overlay:
// flooding is a time-ordered relaxation (each queue push is one query
// message), walks are stepwise traversals. Per-query scratch state
// (visit stamps, queues, walker paths) is pooled per worker.
//
// Cost accounting follows §V-B exactly: for baselines, both the per-search
// cost (Fig. 6) and the system load (Figs. 8–10) count query messages
// only; replies and walker check-backs are accounted under separate
// message classes that the baseline load mask excludes.
package search
