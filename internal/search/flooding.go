package search

import (
	"sync"

	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/sim"
	"asap/internal/trace"
)

// Flooding is the TTL-bounded flood baseline: the requester sends the
// query to all neighbours; each node forwards the first copy it receives
// to all neighbours but the sender while TTL remains; every matching node
// replies directly to the requester.
type Flooding struct {
	noopEvents
	// TTL is the flood radius (paper: 6).
	TTL int

	sys  *sim.System
	pool *sync.Pool
}

// NewFlooding returns a flooding scheme with the paper's TTL.
func NewFlooding() *Flooding { return &Flooding{TTL: FloodTTL} }

// Name implements sim.Scheme.
func (f *Flooding) Name() string { return "flooding" }

// Attach implements sim.Scheme.
func (f *Flooding) Attach(sys *sim.System) {
	f.sys = sys
	f.pool = newScratchPool(sys.NumNodes())
}

// Search simulates one flood cascade. Every queue push is one query
// message (duplicates included — a node that already saw the query still
// receives the copies its neighbours send). Under a fault plane a dropped
// copy costs its sender the message but never arrives (the branch is
// pruned unless another copy reaches the node), and a dropped hit reply
// costs the responder the bytes without the requester learning of the
// hit.
func (f *Flooding) Search(ev *trace.Event) metrics.SearchResult {
	sys := f.sys
	sc := f.pool.Get().(*scratch)
	defer f.pool.Put(sc)
	sc.begin(faults.Key(ev.Time, ev.Node))

	src := ev.Node
	qBytes := sim.QueryBytes(len(ev.Terms))
	t0 := ev.Time

	best := noResponse
	bestHop := int32(0)
	msgs := 0
	hits := 0

	sc.pq.Push(sim.PQItem{T: t0, Node: src, From: src, Hop: 0})
	for sc.pq.Len() > 0 {
		it := sc.pq.Pop()
		if sc.seen(it.Node) {
			continue // duplicate copy: already counted at send time
		}
		sc.visit(it.Node, it.T, it.Hop)

		if it.Node != src && sys.NodeMatches(it.Node, ev.Terms) {
			reply := it.T + sim.Clock(sys.Latency(it.Node, src))
			sc.acc.Add(it.T, sim.QueryHitBytes())
			rseq := sc.nextSeq()
			if sys.Arrives(it.T, metrics.MQueryHit, it.Node, src, sc.fkey, rseq) {
				hits++
				reply += sys.JitterMS(metrics.MQueryHit, it.Node, src, sc.fkey, rseq)
				if reply < best {
					best = reply
					bestHop = it.Hop
				}
			}
		}
		if int(it.Hop) >= f.TTL {
			continue
		}
		for _, nb := range sys.G.LiveNeighbors(it.Node) {
			if nb == it.From {
				continue
			}
			msgs++
			seq := sc.nextSeq()
			if !sys.Arrives(it.T, metrics.MQuery, it.Node, nb, sc.fkey, seq) {
				continue // copy lost; nb may still get one via another edge
			}
			sc.pq.Push(sim.PQItem{
				T: it.T + sim.Clock(sys.Latency(it.Node, nb)) +
					sys.JitterMS(metrics.MQuery, it.Node, nb, sc.fkey, seq),
				Node: nb,
				From: it.Node,
				Hop:  it.Hop + 1,
			})
		}
	}
	sc.acc.Flush(sys, metrics.MQueryHit)
	queryBytes := int64(msgs) * int64(qBytes)
	// Query bytes are spread across the cascade; bucketing them all at t0
	// is accurate to within the flood's ~1s lifetime.
	sys.Account(t0, metrics.MQuery, int(queryBytes))

	res := metrics.SearchResult{Bytes: queryBytes}
	if best != noResponse {
		res.Success = true
		res.ResponseMS = best - t0
		res.Hops = int(bestHop)
		res.Hits = hits
	}
	return res
}
