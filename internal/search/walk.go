package search

import (
	"math/rand/v2"
	"sync"

	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// walkRec summarises one walker's traversal: its step records live in the
// scratch's flat times/nodes arrays at [start, start+steps). A lost
// walker had a forwarded copy dropped at its final recorded step — the
// copy was paid for but never arrived, so the walk ends there and the
// final node was never actually visited.
type walkRec struct {
	start     int
	steps     int
	matched   bool
	matchTime sim.Clock
	lost      bool
}

// runWalker walks one random walker from src for at most ttl steps,
// stopping early at the first node matching the query. Step records are
// appended to the scratch arrays. Under a fault plane each forwarded copy
// can be dropped, killing the walker silently (nobody retransmits a
// walker).
func runWalker(sys *sim.System, sc *scratch, rng *rand.Rand, src overlay.NodeID, start overlay.NodeID, t sim.Clock, ttl int, terms []content.Keyword) walkRec {
	rec := walkRec{start: len(sc.nodes)}
	cur, prev := start, src
	if start != src {
		// Seeded walkers (GSA) begin at a neighbour that was already
		// visited by the seed flood; record and test it.
		sc.nodes = append(sc.nodes, cur)
		sc.times = append(sc.times, t)
		rec.steps++
		seq := sc.nextSeq()
		if !sys.Arrives(t, metrics.MQuery, src, cur, sc.fkey, seq) {
			rec.lost = true // seed copy dropped: the walker never starts
			return rec
		}
		t += sys.JitterMS(metrics.MQuery, src, cur, sc.fkey, seq)
		sc.times[rec.start] = t
		if sys.NodeMatches(cur, terms) {
			rec.matched, rec.matchTime = true, t
			return rec
		}
	}
	for rec.steps < ttl {
		next := pickNeighbor(sys, cur, prev, rng)
		if next < 0 {
			break // dead end
		}
		t += sim.Clock(sys.Latency(cur, next))
		prev, cur = cur, next
		sc.nodes = append(sc.nodes, cur)
		sc.times = append(sc.times, t)
		rec.steps++
		seq := sc.nextSeq()
		if !sys.Arrives(t, metrics.MQuery, prev, cur, sc.fkey, seq) {
			rec.lost = true // walker lost in transit
			break
		}
		t += sys.JitterMS(metrics.MQuery, prev, cur, sc.fkey, seq)
		sc.times[rec.start+rec.steps-1] = t
		if cur != src && sys.NodeMatches(cur, terms) {
			rec.matched, rec.matchTime = true, t
			break
		}
	}
	return rec
}

// pickNeighbor returns a uniformly random live neighbour of cur, avoiding
// an immediate return to prev when any alternative exists; -1 when cur has
// no live neighbour.
func pickNeighbor(sys *sim.System, cur, prev overlay.NodeID, rng *rand.Rand) overlay.NodeID {
	// The overlay's live view is pre-filtered and preserves adjacency
	// order, so the draw below replays exactly like the old Alive scan.
	nbs := sys.G.LiveNeighbors(cur)
	liveNotPrev := 0
	for _, nb := range nbs {
		if nb != prev {
			liveNotPrev++
		}
	}
	if len(nbs) == 0 {
		return -1
	}
	if liveNotPrev == 0 {
		return prev // backtracking is the only move
	}
	k := rng.IntN(liveNotPrev)
	for _, nb := range nbs {
		if nb == prev {
			continue
		}
		if k == 0 {
			return nb
		}
		k--
	}
	return -1 // unreachable
}

// settleWalk computes, for all walkers of one query, the resolution time,
// the effective message counts under the checking termination policy, and
// accounts the traffic. It returns the query's result.
//
// A walker stops at its own match, at a dead end, at TTL exhaustion, at
// the copy the fault plane dropped, or at the first check-back whose
// probe time is at or after the query's resolution time (the probe and
// its reply are accounted as control traffic, which baseline masks
// exclude). A hit reply or either check-back leg can itself be dropped: a
// lost hit reply means the requester never learns of the match, a lost
// check-back leg means the walker gets no stop instruction and keeps
// walking.
func settleWalk(sys *sim.System, sc *scratch, recs []walkRec, src overlay.NodeID,
	t0 sim.Clock, qBytes int, extraMsgs int) metrics.SearchResult {

	resolved := noResponse
	bestHop := 0
	hits := 0
	for _, r := range recs {
		if !r.matched {
			continue
		}
		matchNode := sc.nodes[r.start+r.steps-1]
		reply := r.matchTime + sim.Clock(sys.Latency(matchNode, src))
		sc.acc.Add(r.matchTime, sim.QueryHitBytes())
		rseq := sc.nextSeq()
		if !sys.Arrives(r.matchTime, metrics.MQueryHit, matchNode, src, sc.fkey, rseq) {
			continue // hit reply lost: the requester never hears of it
		}
		hits++
		reply += sys.JitterMS(metrics.MQueryHit, matchNode, src, sc.fkey, rseq)
		if reply < resolved {
			resolved = reply
			bestHop = r.steps
		}
	}
	sc.acc.Flush(sys, metrics.MQueryHit)

	msgs := extraMsgs
	for _, r := range recs {
		stop := r.steps
		// A lost walker's final copy never arrived, so no check-back can
		// originate from that step.
		checkable := r.steps
		if r.lost {
			checkable--
		}
		for s := CheckEvery; s <= checkable; s += CheckEvery {
			probeAt := sc.times[r.start+s-1]
			walker := sc.nodes[r.start+s-1]
			sc.accCtl.Add(probeAt, sim.CheckBackBytes())
			if !sys.Arrives(probeAt, metrics.MControl, walker, src, sc.fkey, sc.nextSeq()) {
				continue // probe lost: no reply, no instruction
			}
			sc.accCtl.Add(probeAt, sim.CheckBackBytes())
			if !sys.Arrives(probeAt, metrics.MControl, src, walker, sc.fkey, sc.nextSeq()) {
				continue // stop instruction lost: the walker keeps going
			}
			if resolved != noResponse && probeAt >= resolved {
				stop = s
				break
			}
		}
		msgs += stop
		for i := 0; i < stop; i++ {
			sc.acc.Add(sc.times[r.start+i], qBytes)
		}
	}
	sc.acc.Flush(sys, metrics.MQuery)
	sc.accCtl.Flush(sys, metrics.MControl)

	res := metrics.SearchResult{Bytes: int64(msgs) * int64(qBytes)}
	if resolved != noResponse {
		res.Success = true
		res.ResponseMS = resolved - t0
		res.Hops = bestHop
		res.Hits = hits
	}
	return res
}

// RandomWalk is the 5-walker random-walk baseline with checking
// termination.
type RandomWalk struct {
	noopEvents
	// Walkers and TTL follow the paper: 5 walkers, TTL 1024.
	Walkers int
	TTL     int
	// Seed drives per-query walk randomness.
	Seed uint64

	sys  *sim.System
	pool *sync.Pool
}

// NewRandomWalk returns a random-walk scheme with the paper's parameters.
func NewRandomWalk(seed uint64) *RandomWalk {
	return &RandomWalk{Walkers: NumWalkers, TTL: WalkTTL, Seed: seed}
}

// Name implements sim.Scheme.
func (w *RandomWalk) Name() string { return "random-walk" }

// Attach implements sim.Scheme.
func (w *RandomWalk) Attach(sys *sim.System) {
	w.sys = sys
	w.pool = newScratchPool(sys.NumNodes())
}

// Search implements sim.Scheme.
func (w *RandomWalk) Search(ev *trace.Event) metrics.SearchResult {
	sys := w.sys
	sc := w.pool.Get().(*scratch)
	defer w.pool.Put(sc)
	sc.begin(faults.Key(ev.Time, ev.Node))

	rng := rand.New(rand.NewPCG(querySeed(w.Seed, ev.Time, ev.Node), 0x9d8f3c21))
	recs := make([]walkRec, 0, w.Walkers)
	for k := 0; k < w.Walkers; k++ {
		recs = append(recs, runWalker(sys, sc, rng, ev.Node, ev.Node, ev.Time, w.TTL, ev.Terms))
	}
	return settleWalk(sys, sc, recs, ev.Node, ev.Time, sim.QueryBytes(len(ev.Terms)), 0)
}
