package search

import (
	"math/rand/v2"
	"sync"

	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/sim"
	"asap/internal/trace"
)

// GSA is the generalized search algorithm baseline (Gkantsidis et al.,
// "Hybrid search schemes for unstructured peer-to-peer networks"): a
// one-hop flood seeds one random walker per live neighbour, and the whole
// query is bounded by a total message budget (paper: 8,000), divided
// evenly among the walkers.
type GSA struct {
	noopEvents
	// Budget caps the total number of messages one query may generate.
	Budget int
	// Seed drives per-query walk randomness.
	Seed uint64

	sys  *sim.System
	pool *sync.Pool
}

// NewGSA returns a GSA scheme with the paper's budget.
func NewGSA(seed uint64) *GSA { return &GSA{Budget: GSABudget, Seed: seed} }

// Name implements sim.Scheme.
func (g *GSA) Name() string { return "gsa" }

// Attach implements sim.Scheme.
func (g *GSA) Attach(sys *sim.System) {
	g.sys = sys
	g.pool = newScratchPool(sys.NumNodes())
}

// Search implements sim.Scheme.
func (g *GSA) Search(ev *trace.Event) metrics.SearchResult {
	sys := g.sys
	sc := g.pool.Get().(*scratch)
	defer g.pool.Put(sc)
	sc.begin(faults.Key(ev.Time, ev.Node))

	src := ev.Node
	// The live view is the seed list directly — shared with the graph (no
	// per-query allocation) and stable for the query's duration, since
	// walkers never mutate the overlay.
	seeds := sys.G.LiveNeighbors(src)
	qBytes := sim.QueryBytes(len(ev.Terms))
	if len(seeds) == 0 {
		return metrics.SearchResult{}
	}

	// Phase 1: the seed flood consumes one message per neighbour; the
	// remainder of the budget is split across the walkers they become.
	remaining := g.Budget - len(seeds)
	perWalker := 0
	if remaining > 0 {
		perWalker = remaining / len(seeds)
	}

	rng := rand.New(rand.NewPCG(querySeed(g.Seed, ev.Time, ev.Node), 0x51a2b3c4))
	recs := make([]walkRec, 0, len(seeds))
	for _, nb := range seeds {
		arr := ev.Time + sim.Clock(sys.Latency(src, nb))
		recs = append(recs, runWalker(sys, sc, rng, src, nb, arr, perWalker+1, ev.Terms))
	}
	// The seed messages themselves are already the first step of each
	// walker record (runWalker records the starting neighbour), so
	// extraMsgs is zero: every message is a recorded step.
	return settleWalk(sys, sc, recs, src, ev.Time, qBytes, 0)
}
