package search

import (
	"math"
	"sync"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Paper baseline parameters (§IV-A).
const (
	// FloodTTL is the flooding TTL.
	FloodTTL = 6
	// NumWalkers is the random-walk walker count.
	NumWalkers = 5
	// WalkTTL is the per-walker TTL.
	WalkTTL = 1024
	// GSABudget is the total message budget of one GSA query.
	GSABudget = 8000
	// CheckEvery is how many walk steps pass between walker check-backs
	// with the requester (Lv et al.'s "checking" policy).
	CheckEvery = 4
)

// noResponse marks "no result yet" in cascade simulations.
const noResponse = sim.Clock(math.MaxInt64)

// noopEvents provides the baseline schemes' empty reactions to state
// events: query-based search keeps no distributed state, so content
// changes and churn need no work.
type noopEvents struct{}

// ContentChanged implements sim.Scheme with no work.
func (noopEvents) ContentChanged(sim.Clock, overlay.NodeID, content.DocID, bool) {}

// NodeJoined implements sim.Scheme with no work.
func (noopEvents) NodeJoined(sim.Clock, overlay.NodeID) {}

// NodeLeft implements sim.Scheme with no work.
func (noopEvents) NodeLeft(sim.Clock, overlay.NodeID) {}

// Tick implements sim.Scheme with no work.
func (noopEvents) Tick(sim.Clock) {}

// LoadMask returns the baseline accounting mask: query messages only.
func (noopEvents) LoadMask() metrics.ClassMask { return metrics.BaselineLoadMask }

// PureSearch implements sim.PureSearcher for every baseline: query-based
// search keeps no distributed state, so a Search outcome is a pure
// function of the batch-frozen system state and the query event (each
// query draws from its own querySeed-derived RNG stream, never a shared
// one). The sharded replay engine may therefore run baseline queries in
// any lane without conflict analysis.
func (noopEvents) PureSearch() {}

// scratch is per-worker reusable cascade state. The stamp/epoch trick
// avoids clearing the visit arrays between queries.
type scratch struct {
	stamp   []uint32
	epoch   uint32
	arrival []sim.Clock
	hop     []int32
	pq      sim.PQ
	times   []sim.Clock      // walker step times
	nodes   []overlay.NodeID // walker step nodes
	acc     sim.SecAccumulator
	accCtl  sim.SecAccumulator

	// Fault-plane message stream of the current query (see faults.Key):
	// fkey names the query, fseq numbers its messages, so drop decisions
	// depend on the query alone, never on worker scheduling.
	fkey uint64
	fseq uint32
}

// nextSeq returns the query's next message sequence number.
func (s *scratch) nextSeq() uint32 {
	v := s.fseq
	s.fseq++
	return v
}

func newScratchPool(n int) *sync.Pool {
	return &sync.Pool{New: func() any {
		return &scratch{
			stamp:   make([]uint32, n),
			arrival: make([]sim.Clock, n),
			hop:     make([]int32, n),
		}
	}}
}

// begin starts a fresh query in this scratch, keyed for the fault plane.
func (s *scratch) begin(fkey uint64) {
	s.fkey = fkey
	s.fseq = 0
	s.epoch++
	if s.epoch == 0 { // wrapped: clear stamps once per 2^32 queries
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	s.pq.Reset()
	s.acc.Reset()
	s.accCtl.Reset()
	s.times = s.times[:0]
	s.nodes = s.nodes[:0]
}

func (s *scratch) seen(n overlay.NodeID) bool { return s.stamp[n] == s.epoch }

func (s *scratch) visit(n overlay.NodeID, t sim.Clock, hop int32) {
	s.stamp[n] = s.epoch
	s.arrival[n] = t
	s.hop[n] = hop
}

// querySeed derives a deterministic per-query RNG seed so results do not
// depend on worker scheduling.
func querySeed(base uint64, t sim.Clock, node overlay.NodeID) uint64 {
	x := base ^ uint64(t)<<20 ^ uint64(uint32(node))
	// splitmix64 finalizer.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
