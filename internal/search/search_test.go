package search

import (
	"math/rand/v2"
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

var (
	testNet = netmodel.Generate(netmodel.SmallConfig())
	testU   = func() *content.Universe {
		c := content.DefaultConfig()
		c.NumPeers = 900
		c.NumDocs = 25000
		return content.Generate(c)
	}()
	testTr = func() *trace.Trace {
		cfg := trace.DefaultConfig()
		cfg.NumNodes = 400
		cfg.NumQueries = 800
		cfg.NumJoins = 30
		cfg.NumLeaves = 30
		tr, err := trace.Build(testU, cfg)
		if err != nil {
			panic(err)
		}
		return tr
	}()
)

func newSys(t *testing.T, kind overlay.Kind) *sim.System {
	t.Helper()
	return sim.NewSystem(testU, testTr, kind, testNet, 1)
}

func firstQuery(t *testing.T) *trace.Event {
	t.Helper()
	for i := range testTr.Events {
		if testTr.Events[i].Kind == trace.Query {
			return &testTr.Events[i]
		}
	}
	t.Fatal("no query in trace")
	return nil
}

func TestFloodingFindsPlantedDoc(t *testing.T) {
	sys := newSys(t, overlay.Random)
	f := NewFlooding()
	f.Attach(sys)
	ev := firstQuery(t)
	res := f.Search(ev)
	if !res.Success {
		t.Fatal("flooding failed on a satisfiable query in a connected 400-node overlay")
	}
	if res.ResponseMS <= 0 {
		t.Errorf("ResponseMS = %d, want positive", res.ResponseMS)
	}
	if res.Hops < 1 || res.Hops > f.TTL {
		t.Errorf("Hops = %d, want within [1,%d]", res.Hops, f.TTL)
	}
	if res.Bytes <= 0 {
		t.Error("no query bytes accounted")
	}
	// TTL-6 flooding on a connected degree-5 overlay touches nearly every
	// node: expect cost of the order of edges × query size.
	if res.Bytes < int64(200*sim.QueryBytes(len(ev.Terms))) {
		t.Errorf("flood cost %d suspiciously small", res.Bytes)
	}
}

func TestFloodingFailsOnForeignTerms(t *testing.T) {
	sys := newSys(t, overlay.Random)
	f := NewFlooding()
	f.Attach(sys)
	ev := &trace.Event{Time: 0, Kind: trace.Query, Node: 0, Terms: []content.Keyword{0xFFFFFFF}}
	res := f.Search(ev)
	if res.Success {
		t.Error("flooding succeeded on a term no document has")
	}
	if res.Bytes == 0 {
		t.Error("failed flood still floods; bytes must be accounted")
	}
}

func TestFloodingDeterministic(t *testing.T) {
	sys := newSys(t, overlay.Random)
	f := NewFlooding()
	f.Attach(sys)
	ev := firstQuery(t)
	a, b := f.Search(ev), f.Search(ev)
	if a != b {
		t.Errorf("flooding not deterministic: %+v vs %+v", a, b)
	}
}

func TestFloodingZeroTTL(t *testing.T) {
	sys := newSys(t, overlay.Random)
	f := &Flooding{TTL: 0}
	f.Attach(sys)
	res := f.Search(firstQuery(t))
	if res.Success || res.Bytes != 0 {
		t.Errorf("TTL-0 flood produced %+v", res)
	}
}

func TestRandomWalkBehaviour(t *testing.T) {
	sys := newSys(t, overlay.Random)
	w := NewRandomWalk(1)
	w.Attach(sys)

	succ, total := 0, 0
	var bytes int64
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		total++
		res := w.Search(ev)
		if res.Success {
			succ++
			if res.ResponseMS <= 0 {
				t.Fatalf("success with non-positive response %d", res.ResponseMS)
			}
			if res.Hops < 1 || res.Hops > w.TTL {
				t.Fatalf("hops %d out of range", res.Hops)
			}
		}
		maxBytes := int64((w.Walkers*w.TTL + w.Walkers)) * int64(sim.QueryBytes(len(ev.Terms)))
		if res.Bytes > maxBytes {
			t.Fatalf("walk cost %d exceeds ceiling %d", res.Bytes, maxBytes)
		}
		bytes += res.Bytes
		if total >= 200 {
			break
		}
	}
	rate := float64(succ) / float64(total)
	// 5 walkers × 1024 steps in a 400-node overlay should succeed often;
	// the paper's failure regime needs the full-scale 10k overlay.
	if rate < 0.5 {
		t.Errorf("random-walk success %.2f too low for a 400-node overlay", rate)
	}
	if bytes == 0 {
		t.Error("no walk traffic")
	}
}

func TestRandomWalkDeterministicPerQuery(t *testing.T) {
	sys := newSys(t, overlay.Random)
	w := NewRandomWalk(7)
	w.Attach(sys)
	ev := firstQuery(t)
	a, b := w.Search(ev), w.Search(ev)
	if a != b {
		t.Errorf("random walk not deterministic per query: %+v vs %+v", a, b)
	}
}

func TestRandomWalkCheaperThanFlooding(t *testing.T) {
	sys := newSys(t, overlay.Random)
	f := NewFlooding()
	f.Attach(sys)
	w := NewRandomWalk(1)
	w.Attach(sys)

	var fBytes, wBytes int64
	count := 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		fBytes += f.Search(ev).Bytes
		wBytes += w.Search(ev).Bytes
		if count++; count >= 100 {
			break
		}
	}
	if wBytes >= fBytes {
		t.Errorf("random walk (%d B) not cheaper than flooding (%d B)", wBytes, fBytes)
	}
}

func TestGSABudgetRespected(t *testing.T) {
	sys := newSys(t, overlay.Random)
	g := NewGSA(1)
	g.Attach(sys)
	count := 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		res := g.Search(ev)
		ceiling := int64(g.Budget+8) * int64(sim.QueryBytes(len(ev.Terms)))
		if res.Bytes > ceiling {
			t.Fatalf("GSA cost %d exceeds budget ceiling %d", res.Bytes, ceiling)
		}
		if count++; count >= 200 {
			break
		}
	}
}

func TestGSASucceedsOften(t *testing.T) {
	sys := newSys(t, overlay.Random)
	g := NewGSA(1)
	g.Attach(sys)
	succ, total := 0, 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		total++
		if g.Search(ev).Success {
			succ++
		}
		if total >= 200 {
			break
		}
	}
	if rate := float64(succ) / float64(total); rate < 0.5 {
		t.Errorf("GSA success %.2f too low for a 400-node overlay (budget 8000)", rate)
	}
}

func TestGSANoLiveNeighbors(t *testing.T) {
	sys := newSys(t, overlay.Random)
	g := NewGSA(1)
	g.Attach(sys)
	ev := firstQuery(t)
	// Isolate the requester by removing its entire neighbourhood.
	isolated := ev.Node
	for len(sys.G.Neighbors(isolated)) > 0 {
		sys.G.Leave(sys.G.Neighbors(isolated)[0])
	}
	res := g.Search(ev)
	if res.Success || res.Bytes != 0 {
		t.Errorf("isolated requester produced %+v", res)
	}
}

func TestEndToEndRunAllBaselines(t *testing.T) {
	for _, mk := range []func() sim.Scheme{
		func() sim.Scheme { return NewFlooding() },
		func() sim.Scheme { return NewRandomWalk(3) },
		func() sim.Scheme { return NewGSA(3) },
	} {
		sch := mk()
		sys := sim.NewSystem(testU, testTr, overlay.Crawled, testNet, 2)
		sum := sim.Run(sys, sch, sim.RunOptions{})
		if sum.Requests == 0 {
			t.Fatalf("%s: no requests replayed", sch.Name())
		}
		if sum.SuccessRate <= 0 || sum.SuccessRate > 1 {
			t.Errorf("%s: success rate %v", sch.Name(), sum.SuccessRate)
		}
		if sum.MeanRespMS <= 0 {
			t.Errorf("%s: mean response %v", sch.Name(), sum.MeanRespMS)
		}
		if sum.LoadMeanKBps <= 0 {
			t.Errorf("%s: zero system load", sch.Name())
		}
		// Baseline load must exclude hit replies and control traffic.
		if sys.Load.TotalBytes(metrics.Mask(metrics.MQueryHit)) == 0 {
			t.Errorf("%s: no hit replies accounted at all", sch.Name())
		}
		if sys.Load.TotalBytes(metrics.BaselineLoadMask) >= sys.Load.TotalBytes(metrics.AllMask) {
			t.Errorf("%s: load mask does not exclude replies", sch.Name())
		}
	}
}

func TestPickNeighborAvoidsBacktrack(t *testing.T) {
	sys := newSys(t, overlay.Random)
	w := NewRandomWalk(1)
	w.Attach(sys)
	// Statistical check: walk from a node with ≥3 live neighbours and
	// verify the immediate predecessor is never chosen when alternatives
	// exist (pickNeighbor is exercised through Search determinism tests;
	// here we call it directly).
	var cur overlay.NodeID = -1
	for v := 0; v < sys.NumNodes(); v++ {
		live := 0
		for _, nb := range sys.G.Neighbors(overlay.NodeID(v)) {
			if sys.G.Alive(nb) {
				live++
			}
		}
		if live >= 3 {
			cur = overlay.NodeID(v)
			break
		}
	}
	if cur < 0 {
		t.Skip("no node with 3 live neighbours")
	}
	prev := sys.G.Neighbors(cur)[0]
	rng := rand.New(rand.NewPCG(42, 42))
	for i := 0; i < 200; i++ {
		if got := pickNeighbor(sys, cur, prev, rng); got == prev {
			t.Fatal("pickNeighbor backtracked despite alternatives")
		}
	}
}

func TestScratchEpochWrap(t *testing.T) {
	sc := &scratch{stamp: make([]uint32, 4), arrival: make([]sim.Clock, 4), hop: make([]int32, 4)}
	sc.epoch = ^uint32(0) - 1
	sc.begin(0)
	sc.visit(1, 5, 0)
	if !sc.seen(1) || sc.seen(2) {
		t.Fatal("visit bookkeeping broken near wrap")
	}
	sc.begin(0) // wraps to 0 → forced clear to epoch 1
	if sc.seen(1) {
		t.Fatal("stale visit survived epoch wrap")
	}
}

func TestSecAccumulator(t *testing.T) {
	sys := newSys(t, overlay.Random)
	var a sim.SecAccumulator
	a.Add(500, 10)
	a.Add(900, 5)
	a.Add(1500, 7)
	a.Add(-3, 100) // warm-up
	a.Flush(sys, metrics.MQuery)
	if got := sys.Load.BytesAt(0, metrics.BaselineLoadMask); got != 15 {
		t.Errorf("second 0 = %d, want 15", got)
	}
	if got := sys.Load.BytesAt(1, metrics.BaselineLoadMask); got != 7 {
		t.Errorf("second 1 = %d, want 7", got)
	}
	if got := sys.Load.WarmupBytes(metrics.AllMask); got != 100 {
		t.Errorf("warmup = %d, want 100", got)
	}
}

func BenchmarkFloodingSearch(b *testing.B) {
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 1)
	f := NewFlooding()
	f.Attach(sys)
	var queries []*trace.Event
	for i := range testTr.Events {
		if testTr.Events[i].Kind == trace.Query {
			queries = append(queries, &testTr.Events[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Search(queries[i%len(queries)])
	}
}

func BenchmarkRandomWalkSearch(b *testing.B) {
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 1)
	w := NewRandomWalk(1)
	w.Attach(sys)
	var queries []*trace.Event
	for i := range testTr.Events {
		if testTr.Events[i].Kind == trace.Query {
			queries = append(queries, &testTr.Events[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Search(queries[i%len(queries)])
	}
}
