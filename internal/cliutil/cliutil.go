// Package cliutil holds the flag plumbing shared by the repo's commands.
//
// Several flags mean "keep the preset's own default unless the operator
// explicitly said otherwise" — a zero value is a legal explicit choice
// (e.g. -shards 0 forces the unsharded replay even on presets that shard
// by default), so presence must be detected with flag.Visit rather than by
// comparing against the default. asapsim and experiments each grew a copy
// of that sentinel dance and drifted once already; asapnode pins its
// operator-set flags against the harness Hello the same way.
package cliutil

import (
	"flag"
	"math"
)

// NoOverride marks "flag not given: keep the preset's own default". It is
// an implausible explicit value (one below MaxInt) rather than zero, so an
// explicit zero still overrides.
const NoOverride = int(^uint(0)>>1) - 1

// WasSet reports whether the named flag was explicitly given on the
// command line. Call after flag.Parse.
func WasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// IntOverride returns value when the named flag was explicitly set and
// NoOverride otherwise. Call after flag.Parse, passing the flag's parsed
// value.
func IntOverride(name string, value int) int {
	if WasSet(name) {
		return value
	}
	return NoOverride
}

// ApplyInt folds an IntOverride result into dst: NoOverride leaves the
// preset's default in place, anything else wins.
func ApplyInt(override int, dst *int) {
	if override != NoOverride {
		*dst = override
	}
}

// Float64Override returns value when the named flag was explicitly set
// and NaN (the float sentinel for "not given") otherwise. NaN rather
// than a magic finite value: every finite float, zero included, stays a
// legal explicit choice. Call after flag.Parse.
func Float64Override(name string, value float64) float64 {
	if WasSet(name) {
		return value
	}
	return math.NaN()
}

// ApplyFloat64 folds a Float64Override result into dst: NaN leaves the
// preset's default in place, anything else wins.
func ApplyFloat64(override float64, dst *float64) {
	if !math.IsNaN(override) {
		*dst = override
	}
}
