package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// Admission-control shed reasons. Endpoints map the first two to HTTP
// 429 (retryable) and ErrDraining to 503 (the node is going away).
var (
	// ErrThrottled means the token bucket is empty: the configured
	// sustained admission rate is exceeded.
	ErrThrottled = errors.New("serve: admission rate exceeded")
	// ErrOverloaded means every worker slot is busy and the bounded wait
	// queue is full.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrDraining means the node is shutting down gracefully.
	ErrDraining = errors.New("serve: draining")
)

// Config sizes a serving node's concurrency and admission control.
type Config struct {
	// Workers is the number of concurrent in-flight searches (reader
	// slots and pooled scratch states). Zero defaults to GOMAXPROCS.
	Workers int
	// MaxQueue bounds how many admitted requests may wait for a worker
	// slot beyond the in-flight cap before new ones shed with
	// ErrOverloaded. Zero means no queueing: busy ⇒ shed.
	MaxQueue int
	// Rate is the token-bucket admission rate in requests/second;
	// 0 disables rate limiting.
	Rate float64
	// Burst is the bucket depth; admitted bursts above the sustained
	// rate. Zero with Rate > 0 defaults to Rate (a one-second burst).
	Burst float64
}

// Stats are the serving plane's wall-clock counters, exported on
// /metrics next to the recorder's sim-time totals.
type Stats struct {
	// Served counts queries that executed (successfully admitted).
	Served atomic.Int64
	// ShedRate / ShedQueue / ShedDrain count requests shed by the token
	// bucket, the full wait queue, and graceful drain respectively.
	ShedRate  atomic.Int64
	ShedQueue atomic.Int64
	ShedDrain atomic.Int64
	// Wall is the wall-clock latency histogram of served queries,
	// measured around the lock-free search section.
	Wall obs.WallHist
}

// Shed returns the total number of shed requests.
func (s *Stats) Shed() int64 {
	return s.ShedRate.Load() + s.ShedQueue.Load() + s.ShedDrain.Load()
}

// WriteProm exports the serving counters and wall-latency histogram.
func (s *Stats) WriteProm(w *obs.PromWriter) {
	w.Counter("asap_serve_served_total", "Queries admitted and executed.", s.Served.Load())
	w.Counter("asap_serve_shed_rate_total", "Requests shed by the admission token bucket.", s.ShedRate.Load())
	w.Counter("asap_serve_shed_queue_total", "Requests shed because the wait queue was full.", s.ShedQueue.Load())
	w.Counter("asap_serve_shed_drain_total", "Requests shed during graceful drain.", s.ShedDrain.Load())
	s.Wall.WriteProm(w, "asap_serve_wall_seconds", "Wall-clock latency of served queries.")
}

// servCtx is one worker slot's pooled per-query state: the slot index
// into the gate and the search scratch. Slots circulate through a
// channel, so acquiring one is a single channel receive and steady-state
// serving allocates nothing.
type servCtx struct {
	slot int
	sc   *core.ServeScratch
}

// Node is a warm ASAP node serving concurrent read-only searches while
// trace state events apply between them. The read path is lock-free
// (Gate); writes are serialised through Apply. The virtual clock — the
// `now` searches evaluate staleness against — only moves inside write
// sections, so every answer is a pure function of the epoch it was read
// under.
type Node struct {
	sys  *sim.System
	sch  *core.Scheme
	gate *Gate

	nowMS atomic.Int64
	ctxs  chan servCtx

	cfg      Config
	bucket   tokenBucket
	waiting  atomic.Int64
	draining atomic.Bool
	drained  chan struct{} // closed once Drain has collected every slot

	stats Stats
}

// NewNode wraps an attached (warm) scheme and its system in a serving
// node. The caller must not mutate the scheme except through Apply from
// this point on.
func NewNode(sys *sim.System, sch *core.Scheme, cfg Config) *Node {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
	}
	n := &Node{
		sys:     sys,
		sch:     sch,
		gate:    NewGate(cfg.Workers),
		ctxs:    make(chan servCtx, cfg.Workers),
		cfg:     cfg,
		drained: make(chan struct{}),
	}
	n.bucket.rate, n.bucket.burst = cfg.Rate, cfg.Burst
	n.bucket.tokens, n.bucket.last = cfg.Burst, time.Now()
	for i := 0; i < cfg.Workers; i++ {
		n.ctxs <- servCtx{slot: i, sc: core.NewServeScratch()}
	}
	return n
}

// System returns the underlying replay system (read it only via Apply
// or from endpoint setup code before serving starts).
func (n *Node) System() *sim.System { return n.sys }

// Scheme returns the underlying scheme.
func (n *Node) Scheme() *core.Scheme { return n.sch }

// Stats returns the serving counters.
func (n *Node) Stats() *Stats { return &n.stats }

// Now returns the virtual clock in ms (the time of the last Apply).
func (n *Node) Now() sim.Clock { return n.nowMS.Load() }

// Epoch returns the gate epoch: 2 × the number of completed applies.
func (n *Node) Epoch() uint64 { return n.gate.Epoch() }

// Apply runs fn inside the write section: the virtual clock advances to
// nowMS, then fn may mutate the system and scheme freely. No search
// executes concurrently; searches admitted meanwhile spin briefly in the
// gate. Answers computed by fn (e.g. oracle snapshots) happen-before any
// read section that observes the new epoch.
func (n *Node) Apply(nowMS int64, fn func()) {
	n.gate.BeginApply()
	if nowMS > n.nowMS.Load() {
		n.nowMS.Store(nowMS)
	}
	if fn != nil {
		fn()
	}
	n.gate.EndApply()
}

// ApplyEvent applies one non-query trace event (churn, content, join,
// leave) through the write section, advancing the clock to the event
// time.
func (n *Node) ApplyEvent(ev *trace.Event) {
	n.Apply(ev.Time, func() { sim.ApplyStateEvent(n.sys, n.sch, ev) })
}

// Tick fires the scheme's periodic work (ad refresh, cache maintenance)
// at the given virtual time through the write section.
func (n *Node) Tick(nowMS int64) {
	n.Apply(nowMS, func() { n.sch.Tick(nowMS) })
}

// Search executes one read-only ASAP search from peer p with the given
// terms, appending verified sources to dst and returning the (possibly
// reallocated) slice, the serve result, and the even epoch the answer
// was computed under. Admission control applies: the token bucket, then
// the in-flight cap with bounded queueing, then graceful drain — a shed
// request returns one of ErrThrottled, ErrOverloaded, ErrDraining
// without touching the store.
//
// The hot path is allocation-free in steady state: slot acquisition is a
// channel receive of a pooled scratch, the gate is two atomic stores,
// and SearchRO reuses the scratch and dst.
func (n *Node) Search(p overlay.NodeID, terms []content.Keyword, dst []overlay.NodeID) (core.ServeResult, []overlay.NodeID, uint64, error) {
	if n.draining.Load() {
		n.stats.ShedDrain.Add(1)
		return core.ServeResult{}, dst, 0, ErrDraining
	}
	if !n.bucket.take(time.Now()) {
		n.stats.ShedRate.Add(1)
		return core.ServeResult{}, dst, 0, ErrThrottled
	}
	var c servCtx
	select {
	case c = <-n.ctxs:
	default:
		if n.cfg.MaxQueue <= 0 {
			n.stats.ShedQueue.Add(1)
			return core.ServeResult{}, dst, 0, ErrOverloaded
		}
		if n.waiting.Add(1) > int64(n.cfg.MaxQueue) {
			n.waiting.Add(-1)
			n.stats.ShedQueue.Add(1)
			return core.ServeResult{}, dst, 0, ErrOverloaded
		}
		// Re-check drain after publishing the waiting claim: Drain
		// stores the flag before reading the counter, so (seq-cst) at
		// least one side sees the other — either we back out here or
		// Drain waits for this receive to complete.
		if n.draining.Load() {
			n.waiting.Add(-1)
			n.stats.ShedDrain.Add(1)
			return core.ServeResult{}, dst, 0, ErrDraining
		}
		c = <-n.ctxs
		n.waiting.Add(-1)
	}
	t0 := time.Now()
	epoch := n.gate.Enter(c.slot)
	now := n.nowMS.Load()
	res, dst := n.sch.SearchRO(p, terms, now, c.sc, dst)
	n.gate.Exit(c.slot)
	n.stats.Wall.Observe(time.Since(t0))
	n.stats.Served.Add(1)
	n.ctxs <- c
	return res, dst, epoch, nil
}

// Drain gracefully shuts the serving plane down: new requests shed with
// ErrDraining, queued requests finish, and Drain returns once every
// in-flight search has completed. Idempotent-safe for a single caller;
// concurrent Drain calls are not supported.
func (n *Node) Drain() {
	n.draining.Store(true)
	// Let already-queued waiters claim their slots before we start
	// collecting them, so none blocks forever against our receives.
	for i := 0; n.waiting.Load() > 0; i++ {
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	for i := 0; i < cap(n.ctxs); i++ {
		<-n.ctxs
	}
	close(n.drained)
}

// Draining reports whether Drain has been initiated.
func (n *Node) Draining() bool { return n.draining.Load() }

// tokenBucket is a mutex-protected token bucket refilled on demand from
// the wall clock. rate ≤ 0 disables it.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take consumes one token if available.
func (b *tokenBucket) take(now time.Time) bool {
	if b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
