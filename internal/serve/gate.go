// Package serve is the always-on query serving plane: it wraps a warm
// replay node (sim.System + core.Scheme) behind a lock-free read path so
// many goroutines can execute ASAP searches concurrently while trace
// state events (churn, content, ticks) apply between them, and fronts
// that path with token-bucket admission control, bounded queueing and
// graceful drain. HTTP JSON and length-prefixed binary endpoints
// (http.go, binary.go) expose it over internal/transport listeners;
// cmd/asapload drives it open-loop.
package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// gateSlot is one reader's padded epoch marker. The padding keeps each
// slot on its own cache line so readers entering and exiting do not
// false-share, which is what makes the read side scale.
type gateSlot struct {
	v atomic.Uint64
	_ [120]byte
}

// Gate is an epoch-based reader/writer barrier in the RCU style: readers
// are lock-free and wait-free against each other (two uncontended atomic
// stores per section, no shared mutation), and the single writer waits
// for the readers that entered before its epoch bump to leave.
//
// The protocol: the epoch counter is even when the store is stable and
// odd while an apply is in progress. A reader claims its private slot by
// storing the observed even epoch (made odd, so zero stays "empty"),
// then re-checks the epoch — if an apply snuck in between the load and
// the claim, the reader backs out and retries. A writer bumps the epoch
// to odd, then spins until every slot is empty: any reader that published
// its claim before the bump is waited for, and any reader that loads the
// epoch after the bump sees it odd and backs off. All operations are
// sequentially consistent atomics, so the race detector proves the
// happens-before edges rather than taking them on faith.
//
// Epoch after the i-th completed apply is 2i; Enter always returns the
// even epoch the read section is valid for.
type Gate struct {
	epoch atomic.Uint64
	mu    sync.Mutex // serialises writers
	slots []gateSlot
}

// NewGate returns a gate with n reader slots (one per serving worker).
func NewGate(n int) *Gate {
	return &Gate{slots: make([]gateSlot, n)}
}

// Slots returns the number of reader slots.
func (g *Gate) Slots() int { return len(g.slots) }

// Epoch returns the current epoch: even when stable (2 × applies so
// far), odd while an apply is in progress.
func (g *Gate) Epoch() uint64 { return g.epoch.Load() }

// Enter begins a read section on the given slot and returns the even
// epoch it is valid for. It spins (yielding) while an apply is in
// progress, and retries if one begins between observing the epoch and
// claiming the slot — the epoch-validated snapshot acquisition.
func (g *Gate) Enter(slot int) uint64 {
	s := &g.slots[slot].v
	for i := 0; ; i++ {
		e := g.epoch.Load()
		if e&1 == 0 {
			s.Store(e + 1) // claim: odd marker, never zero
			if g.epoch.Load() == e {
				return e
			}
			s.Store(0) // writer raced in; back out and retry
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
}

// Exit ends the read section on the given slot.
func (g *Gate) Exit(slot int) {
	g.slots[slot].v.Store(0)
}

// BeginApply starts a write section: it takes the writer lock, flips the
// epoch odd, and waits for every in-flight reader to leave. Until the
// matching EndApply, new readers spin in Enter.
func (g *Gate) BeginApply() {
	g.mu.Lock()
	g.epoch.Add(1) // now odd: no new reader can claim a slot
	for i := range g.slots {
		for j := 0; g.slots[i].v.Load() != 0; j++ {
			if j&15 == 15 {
				runtime.Gosched()
			}
		}
	}
}

// EndApply ends the write section, flipping the epoch back to even and
// releasing the writer lock.
func (g *Gate) EndApply() {
	g.epoch.Add(1)
	g.mu.Unlock()
}
