package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"

	"asap/internal/content"
	"asap/internal/obs"
	"asap/internal/overlay"
)

// SearchRequest is the JSON body of POST /search.
type SearchRequest struct {
	// From is the querying peer's node id.
	From uint32 `json:"from"`
	// Terms are the query keywords.
	Terms []uint32 `json:"terms"`
}

// SearchResponse is the JSON body of a successful search.
type SearchResponse struct {
	// Epoch is the even store epoch the answer was computed under.
	Epoch uint64 `json:"epoch"`
	// Phase2 reports whether the h-hop ads-request walk ran.
	Phase2 bool `json:"phase2"`
	// Sources are the verified source node ids.
	Sources []uint32 `json:"sources"`
}

// errorResponse is the JSON body of a shed or rejected request.
type errorResponse struct {
	Error string `json:"error"`
}

// httpScratch pools the per-request conversion buffers so a served HTTP
// query costs only the JSON codec's allocations.
type httpScratch struct {
	terms []content.Keyword
	dst   []overlay.NodeID
	srcs  []uint32
}

// Server exposes a serving Node over HTTP: POST /search (JSON), GET
// /metrics (Prometheus text exposition), GET /healthz.
type Server struct {
	n    *Node
	rec  *obs.Recorder // sim-time totals for /metrics; may be nil
	mux  *http.ServeMux
	hs   *http.Server
	pool sync.Pool
}

// NewHTTP builds the HTTP front end for n. rec, when non-nil, is
// exported on /metrics alongside the serving counters.
func NewHTTP(n *Node, rec *obs.Recorder) *Server {
	s := &Server{n: n, rec: rec, mux: http.NewServeMux()}
	s.pool.New = func() any { return &httpScratch{} }
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.hs = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Handler returns the route mux (test helper).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the node (in-flight and queued searches finish, new
// ones shed with 503) and then closes the HTTP server gracefully.
func (s *Server) Shutdown(ctx context.Context) error {
	s.n.Drain()
	return s.hs.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// shedStatus maps an admission error to its HTTP status.
func shedStatus(err error) int {
	switch {
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable // 503: going away
	default:
		return http.StatusTooManyRequests // 429: retryable
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if int(req.From) >= s.n.sys.G.N() {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "unknown peer"})
		return
	}
	sc := s.pool.Get().(*httpScratch)
	defer s.pool.Put(sc)
	sc.terms = sc.terms[:0]
	for _, t := range req.Terms {
		sc.terms = append(sc.terms, content.Keyword(t))
	}
	res, dst, epoch, err := s.n.Search(overlay.NodeID(req.From), sc.terms, sc.dst[:0])
	sc.dst = dst
	if err != nil {
		writeJSON(w, shedStatus(err), errorResponse{Error: err.Error()})
		return
	}
	sc.srcs = sc.srcs[:0]
	for _, id := range dst {
		sc.srcs = append(sc.srcs, uint32(id))
	}
	writeJSON(w, http.StatusOK, SearchResponse{Epoch: epoch, Phase2: res.Phase2, Sources: sc.srcs})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var pw obs.PromWriter
	s.rec.WriteProm(&pw)
	s.n.stats.WriteProm(&pw)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(pw.Bytes())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.n.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
