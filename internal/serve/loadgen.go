package serve

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"asap/internal/content"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// loadStream is the PCG stream constant of the load-generator RNG, so a
// schedule depends on the user seed alone.
const loadStream = 0x9b6ae3f24c81d705

// CatalogEntry is one query template: the issuing peer and its terms.
type CatalogEntry struct {
	From  overlay.NodeID
	Terms []content.Keyword
}

// BuildCatalog extracts the query templates from a trace, in trace
// order: every query event whose issuing node passes alive (nil accepts
// all). The load generator replays these templates at arbitrary rates —
// the trace's own query mix, decoupled from its timeline.
func BuildCatalog(tr *trace.Trace, alive func(overlay.NodeID) bool) []CatalogEntry {
	var out []CatalogEntry
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		if alive != nil && !alive(ev.Node) {
			continue
		}
		out = append(out, CatalogEntry{From: ev.Node, Terms: ev.Terms})
	}
	return out
}

// LoadConfig shapes an open-loop load schedule.
type LoadConfig struct {
	// Rate is the mean arrival rate in queries/second (Poisson process —
	// exponential inter-arrivals, the trace generator's λ generalised to
	// arbitrary rates).
	Rate float64
	// Count is the total number of queries.
	Count int
	// Seed seeds the schedule; the same seed, rate, count, skew and
	// catalog size produce a byte-identical schedule.
	Seed uint64
	// ZipfS is the Zipf popularity skew over the catalog: entry i is
	// drawn with weight (i+1)^-s. 0 means uniform.
	ZipfS float64
}

// Arrival is one scheduled query: its offset from the run start and the
// catalog entry to issue.
type Arrival struct {
	AtNS  int64
	Entry int32
}

// BuildSchedule precomputes the whole open-loop schedule: Poisson
// arrival offsets and a Zipf-popular query mix over a catalog of the
// given size. Precomputing keeps execution allocation-free and makes the
// schedule a pure function of the config — workers only execute it, so
// worker count cannot perturb arrivals or mix.
func BuildSchedule(catalog int, cfg LoadConfig) []Arrival {
	if catalog <= 0 || cfg.Count <= 0 || cfg.Rate <= 0 {
		return nil
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, loadStream))
	// Inverse-CDF table for the Zipf mix: cum[i] = Σ_{j≤i} (j+1)^-s.
	cum := make([]float64, catalog)
	total := 0.0
	for i := range cum {
		total += math.Pow(float64(i+1), -cfg.ZipfS)
		cum[i] = total
	}
	out := make([]Arrival, cfg.Count)
	at := 0.0
	for i := range out {
		at += rng.ExpFloat64() / cfg.Rate
		e := sort.SearchFloat64s(cum, rng.Float64()*total)
		if e >= catalog {
			e = catalog - 1
		}
		out[i] = Arrival{AtNS: int64(at * 1e9), Entry: int32(e)}
	}
	return out
}

// LoadResult accumulates one load run's client-side outcome counts and
// wall-clock latency histogram (served queries only).
type LoadResult struct {
	Served    atomic.Int64
	ShedRate  atomic.Int64
	ShedQueue atomic.Int64
	ShedDrain atomic.Int64
	Failed    atomic.Int64 // transport/protocol errors
	Wall      obs.WallHist
	Elapsed   time.Duration
}

// Shed returns the total shed count.
func (r *LoadResult) Shed() int64 {
	return r.ShedRate.Load() + r.ShedQueue.Load() + r.ShedDrain.Load()
}

// QPS returns the served throughput over the run's wall time.
func (r *LoadResult) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Served.Load()) / r.Elapsed.Seconds()
}

// RunLoad executes a prebuilt schedule open-loop across workers: each
// arrival fires at its scheduled offset (never earlier; a lagging
// worker pool fires late but never skips), calling do with the worker
// index — for per-worker connections and buffers — and the catalog
// entry. do's error classifies the outcome: nil served, the admission
// sentinels shed, anything else failed.
func RunLoad(sched []Arrival, workers int, do func(worker int, entry int32) error) *LoadResult {
	if workers <= 0 {
		workers = 1
	}
	res := &LoadResult{}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := cursor.Add(1) - 1
				if int(i) >= len(sched) {
					return
				}
				a := &sched[i]
				if d := time.Duration(a.AtNS) - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				t0 := time.Now()
				err := do(w, a.Entry)
				switch {
				case err == nil:
					res.Wall.Observe(time.Since(t0))
					res.Served.Add(1)
				case errors.Is(err, ErrThrottled):
					res.ShedRate.Add(1)
				case errors.Is(err, ErrOverloaded):
					res.ShedQueue.Add(1)
				case errors.Is(err, ErrDraining):
					res.ShedDrain.Add(1)
				default:
					res.Failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	return res
}
