package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/experiments"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
	"asap/internal/transport"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
	labErr  error

	warmOnce sync.Once
	warmN    *Node
	warmRec  *obs.Recorder
	warmErr  error
)

// tinyLab builds (once) the tiny-preset lab shared by every test.
func tinyLab(t *testing.T) *experiments.Lab {
	t.Helper()
	labOnce.Do(func() { lab, labErr = experiments.NewLab(experiments.ScaleTiny()) })
	if labErr != nil {
		t.Fatalf("building tiny lab: %v", labErr)
	}
	return lab
}

// sharedWarmNode builds (once) a fully warm serving node shared by the
// read-only tests: Search mutates nothing, so they can't interfere.
func sharedWarmNode(t *testing.T) *Node {
	t.Helper()
	l := tinyLab(t)
	warmOnce.Do(func() {
		warmN, warmRec, warmErr = Warm(l, "asap-rw", overlay.Random, Config{Workers: 4, MaxQueue: 16})
	})
	if warmErr != nil {
		t.Fatalf("warming node: %v", warmErr)
	}
	return warmN
}

// coldNode builds a fresh attached-but-unreplayed node for admission
// tests, which only exercise the control plane.
func coldNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	l := tinyLab(t)
	sch := core.New(l.Scale.ASAPConfig(core.RW))
	sys := sim.NewSystem(l.U, l.Tr, overlay.Random, l.Net, l.Scale.Seed)
	sim.NewStepper(sys, sch, 0) // attach + warm-up only
	return NewNode(sys, sch, cfg)
}

// liveQuery returns a catalog entry whose issuing node is alive on n.
func liveQuery(t *testing.T, n *Node) CatalogEntry {
	t.Helper()
	cat := BuildCatalog(n.sys.Tr, func(id overlay.NodeID) bool { return n.sys.G.Alive(id) })
	if len(cat) == 0 {
		t.Fatal("no live catalog entries")
	}
	return cat[0]
}

// TestServeConcurrentOracle is the serving plane's -race property test:
// serving goroutines hammer Search while state events (churn, content,
// ticks) apply through the write side. Every served answer must equal,
// bit for bit, the quiescent SearchRO answer computed inside the apply
// section that produced the answer's epoch — i.e. concurrent reads never
// observe a torn store. Chained with core's TestSearchROMatchesOracle
// (quiescent SearchRO ≡ the scalar map-and-loop oracle), this pins every
// concurrent answer to the scalar oracle at its epoch.
func TestServeConcurrentOracle(t *testing.T) {
	l := tinyLab(t)

	// Warm on a prefix of the trace; the suffix's state events become the
	// live apply stream.
	evs := l.Tr.Events
	split := len(evs) * 2 / 3
	prefix := *l.Tr
	prefix.Events = evs[:split]
	sch := core.New(l.Scale.ASAPConfig(core.RW))
	sys := sim.NewSystem(l.U, &prefix, overlay.Random, l.Net, l.Scale.Seed)
	st := sim.NewStepper(sys, sch, 0)
	for batch := st.NextBatch(); batch != nil; batch = st.NextBatch() {
		for _, ev := range batch {
			st.Record(ev, sch.Search(ev))
		}
	}
	st.Finish()
	n := NewNode(sys, sch, Config{Workers: 4, MaxQueue: 8})

	// The suffix state events to apply live (bounded for test time).
	var suffix []*trace.Event
	for i := split; i < len(evs) && len(suffix) < 200; i++ {
		if evs[i].Kind != trace.Query {
			suffix = append(suffix, &evs[i])
		}
	}
	if len(suffix) < 20 {
		t.Fatalf("only %d suffix state events; trace too small for the test", len(suffix))
	}

	// Probe queries: the suffix's first queries.
	var probes []CatalogEntry
	for i := split; i < len(evs) && len(probes) < 6; i++ {
		if evs[i].Kind == trace.Query {
			probes = append(probes, CatalogEntry{From: evs[i].Node, Terms: evs[i].Terms})
		}
	}

	// answers[k][q] is probe q's quiescent answer after the k-th Apply,
	// computed inside that apply's write section — so it happens-before
	// any read section observing epoch 2k.
	ticks := int((evs[len(evs)-1].Time-prefix.Span())/1000) + 2
	answers := make([][][]overlay.NodeID, len(suffix)+ticks+2)
	oracle := core.NewServeScratch()
	compute := func(k int) {
		answers[k] = make([][]overlay.NodeID, len(probes))
		for qi, q := range probes {
			_, out := sch.SearchRO(q.From, q.Terms, n.Now(), oracle, nil)
			answers[k][qi] = out
		}
	}
	applies := 1
	n.Apply(prefix.Span(), func() { compute(1) })

	var done atomic.Bool
	var mismatches atomic.Int64
	var checks atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var dst []overlay.NodeID
			for i := r; !done.Load(); i++ {
				q := probes[i%len(probes)]
				_, out, epoch, err := n.Search(q.From, q.Terms, dst[:0])
				dst = out
				if err != nil {
					continue // queue overflow under contention is legal
				}
				want := answers[epoch/2]
				if want == nil {
					t.Errorf("no oracle for epoch %d", epoch)
					mismatches.Add(1)
					return
				}
				if !reflect.DeepEqual(append([]overlay.NodeID{}, out...), append([]overlay.NodeID{}, want[i%len(probes)]...)) {
					mismatches.Add(1)
					t.Errorf("epoch %d probe %d: got %v, want %v", epoch, i%len(probes), out, want[i%len(probes)])
					return
				}
				checks.Add(1)
			}
		}(r)
	}

	nextTick := prefix.Span()/1000*1000 + 1000
	for _, ev := range suffix {
		for nextTick <= ev.Time {
			tick := nextTick
			applies++
			k := applies
			n.Apply(tick, func() {
				sch.Tick(tick)
				compute(k)
			})
			nextTick += 1000
		}
		applies++
		k := applies
		ev := ev
		n.Apply(ev.Time, func() {
			sim.ApplyStateEvent(sys, sch, ev)
			compute(k)
		})
	}
	// Keep serving briefly against the final state.
	time.Sleep(20 * time.Millisecond)
	done.Store(true)
	wg.Wait()

	if got := n.Epoch(); got != uint64(2*applies) {
		t.Fatalf("epoch %d after %d applies, want %d", got, applies, 2*applies)
	}
	if mismatches.Load() != 0 {
		t.Fatalf("%d mismatched answers", mismatches.Load())
	}
	if checks.Load() < 100 {
		t.Fatalf("only %d concurrent checks ran; test under-exercised", checks.Load())
	}
}

func TestAdmissionThrottle(t *testing.T) {
	n := coldNode(t, Config{Workers: 2, Rate: 1, Burst: 1})
	q := liveQuery(t, n)
	if _, _, _, err := n.Search(q.From, q.Terms, nil); err != nil {
		t.Fatalf("first search: %v", err)
	}
	if _, _, _, err := n.Search(q.From, q.Terms, nil); !errors.Is(err, ErrThrottled) {
		t.Fatalf("second search: %v, want ErrThrottled", err)
	}
	if n.Stats().ShedRate.Load() != 1 || n.Stats().Served.Load() != 1 {
		t.Fatalf("stats served=%d shedRate=%d", n.Stats().Served.Load(), n.Stats().ShedRate.Load())
	}
}

func TestAdmissionQueueOverflowAndDrain(t *testing.T) {
	n := coldNode(t, Config{Workers: 1, MaxQueue: 1})
	q := liveQuery(t, n)

	// Hold the write section open so an admitted search parks inside the
	// gate with the only worker slot claimed.
	applyIn, release := make(chan struct{}), make(chan struct{})
	go n.Apply(n.Now(), func() { applyIn <- struct{}{}; <-release })
	<-applyIn

	res1 := make(chan error, 1)
	go func() {
		_, _, _, err := n.Search(q.From, q.Terms, nil)
		res1 <- err
	}()
	for len(n.ctxs) != 0 { // wait until the slot is taken
		time.Sleep(time.Millisecond)
	}
	res2 := make(chan error, 1)
	go func() {
		_, _, _, err := n.Search(q.From, q.Terms, nil)
		res2 <- err
	}()
	for n.waiting.Load() != 1 { // wait until it queues
		time.Sleep(time.Millisecond)
	}
	if _, _, _, err := n.Search(q.From, q.Terms, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third search: %v, want ErrOverloaded", err)
	}
	close(release)
	if err := <-res1; err != nil {
		t.Fatalf("first search: %v", err)
	}
	if err := <-res2; err != nil {
		t.Fatalf("queued search: %v", err)
	}

	n.Drain()
	if _, _, _, err := n.Search(q.From, q.Terms, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain search: %v, want ErrDraining", err)
	}
	if n.Stats().Shed() != 2 {
		t.Fatalf("shed total %d, want 2", n.Stats().Shed())
	}
}

func TestHTTPEndpoint(t *testing.T) {
	n := sharedWarmNode(t)
	srv := httptest.NewServer(NewHTTP(n, warmRec).Handler())
	defer srv.Close()
	q := liveQuery(t, n)

	// Direct answer for comparison (the store is quiescent here).
	_, want, _, err := n.Search(q.From, q.Terms, nil)
	if err != nil {
		t.Fatalf("direct search: %v", err)
	}

	body, _ := json.Marshal(SearchRequest{From: uint32(q.From), Terms: kwU32(q.Terms)})
	resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /search: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var sr SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if sr.Epoch%2 != 0 {
		t.Errorf("odd epoch %d", sr.Epoch)
	}
	if !reflect.DeepEqual(sr.Sources, idU32(want)) && (len(sr.Sources) != 0 || len(want) != 0) {
		t.Errorf("sources %v, want %v", sr.Sources, want)
	}

	// Unknown peer → 400.
	body, _ = json.Marshal(SearchRequest{From: 1 << 30})
	resp2, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown peer status %d, want 400", resp2.StatusCode)
	}

	// /metrics serves the exposition with both planes' families.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	for _, fam := range []string{"asap_serve_served_total", "asap_serve_wall_seconds_bucket", "asap_searches_total", "asap_search_response_seconds_count"} {
		if !bytes.Contains(buf.Bytes(), []byte(fam)) {
			t.Errorf("/metrics missing %s", fam)
		}
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", hresp.StatusCode)
	}
}

func TestBinaryEndpoint(t *testing.T) {
	n := sharedWarmNode(t)
	ln, err := transport.Mem{}.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBinary(n, ln)
	go bs.Serve()
	defer bs.Close()

	c, err := transport.Mem{}.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := liveQuery(t, n)
	_, want, _, err := n.Search(q.From, q.Terms, nil)
	if err != nil {
		t.Fatalf("direct search: %v", err)
	}

	req := transport.ServeQuery{From: uint32(q.From), Terms: kwU32(q.Terms)}
	if err := c.WriteFrame(transport.MServeQuery, req.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	mt, p, err := c.ReadFrame()
	if err != nil || mt != transport.MServeOK {
		t.Fatalf("reply type %v err %v", mt, err)
	}
	reply, err := transport.DecodeServeReply(p)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Epoch%2 != 0 {
		t.Errorf("odd epoch %d", reply.Epoch)
	}
	if !reflect.DeepEqual(reply.Sources, idU32(want)) && (len(reply.Sources) != 0 || len(want) != 0) {
		t.Errorf("sources %v, want %v", reply.Sources, want)
	}

	// Out-of-range peer → bad-request error frame.
	bad := transport.ServeQuery{From: 1 << 30}
	if err := c.WriteFrame(transport.MServeQuery, bad.Encode(nil)); err != nil {
		t.Fatal(err)
	}
	mt, p, err = c.ReadFrame()
	if err != nil || mt != transport.MServeErr || len(p) != 1 || p[0] != transport.ServeErrBadRequest {
		t.Fatalf("bad query reply: type %v payload %v err %v", mt, p, err)
	}

	// Bye handshake.
	if err := c.WriteFrame(transport.MServeBye, nil); err != nil {
		t.Fatal(err)
	}
	if mt, _, err = c.ReadFrame(); err != nil || mt != transport.MServeByeOK {
		t.Fatalf("bye reply: type %v err %v", mt, err)
	}
}

// TestServeSearchAllocs is the serving-plane zero-alloc gate (wired into
// `make bench-serve`): once the pooled scratch and result buffer are
// warm, a served search — admission, slot acquisition, gated SearchRO,
// stats — must not allocate at all.
func TestServeSearchAllocs(t *testing.T) {
	n := sharedWarmNode(t)
	q := liveQuery(t, n)
	var dst []overlay.NodeID
	run := func() {
		_, out, _, err := n.Search(q.From, q.Terms, dst[:0])
		if err != nil {
			t.Fatalf("search: %v", err)
		}
		dst = out
	}
	for i := 0; i < 5; i++ {
		run()
	}
	if a := testing.AllocsPerRun(50, run); a != 0 {
		t.Errorf("served search allocates %.1f times, want 0", a)
	}
}

func TestScheduleDeterminism(t *testing.T) {
	cfg := LoadConfig{Rate: 100_000, Count: 3_000, Seed: 7, ZipfS: 1.1}
	a := BuildSchedule(120, cfg)
	b := BuildSchedule(120, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different schedules")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	if reflect.DeepEqual(a, BuildSchedule(120, cfg2)) {
		t.Fatal("different seeds produced identical schedules")
	}

	// Arrival offsets are strictly non-decreasing and roughly match the
	// rate (mean inter-arrival 10 µs at 100k/s: total ≈ 30 ms ± slack).
	for i := 1; i < len(a); i++ {
		if a[i].AtNS < a[i-1].AtNS {
			t.Fatalf("arrival %d precedes %d", i, i-1)
		}
	}
	span := time.Duration(a[len(a)-1].AtNS)
	if span < 10*time.Millisecond || span > 100*time.Millisecond {
		t.Errorf("schedule span %v implausible for 3000 arrivals at 100k/s", span)
	}

	// Zipf skew: the head entry must dominate the tail entry.
	var head, tail int
	for _, ar := range a {
		switch ar.Entry {
		case 0:
			head++
		case 119:
			tail++
		}
	}
	if head <= tail {
		t.Errorf("zipf mix not skewed: head %d, tail %d", head, tail)
	}

	// Execution at any worker count issues exactly the scheduled mix.
	counts := func(workers int) []int64 {
		per := make([]atomic.Int64, 120)
		res := RunLoad(a, workers, func(_ int, e int32) error {
			per[e].Add(1)
			return nil
		})
		if res.Served.Load() != int64(len(a)) {
			t.Fatalf("workers=%d served %d of %d", workers, res.Served.Load(), len(a))
		}
		out := make([]int64, len(per))
		for i := range per {
			out[i] = per[i].Load()
		}
		return out
	}
	if !reflect.DeepEqual(counts(1), counts(8)) {
		t.Fatal("issued query mix differs across worker counts")
	}
}

func TestRunLoadClassifiesErrors(t *testing.T) {
	sched := BuildSchedule(4, LoadConfig{Rate: 1_000_000, Count: 8, Seed: 1})
	errs := []error{nil, ErrThrottled, ErrOverloaded, ErrDraining, errors.New("boom"), nil, ErrThrottled, nil}
	var i atomic.Int64
	res := RunLoad(sched, 1, func(_ int, _ int32) error {
		return errs[i.Add(1)-1]
	})
	if res.Served.Load() != 3 || res.ShedRate.Load() != 2 || res.ShedQueue.Load() != 1 ||
		res.ShedDrain.Load() != 1 || res.Failed.Load() != 1 {
		t.Fatalf("classification: served=%d rate=%d queue=%d drain=%d failed=%d",
			res.Served.Load(), res.ShedRate.Load(), res.ShedQueue.Load(), res.ShedDrain.Load(), res.Failed.Load())
	}
	if res.Shed() != 4 {
		t.Fatalf("shed total %d", res.Shed())
	}
	if res.Wall.Count() != 3 {
		t.Fatalf("wall hist observed %d, want served only (3)", res.Wall.Count())
	}
}

func TestBuildCatalogFiltersDead(t *testing.T) {
	l := tinyLab(t)
	all := BuildCatalog(l.Tr, nil)
	if len(all) == 0 {
		t.Fatal("empty catalog")
	}
	none := BuildCatalog(l.Tr, func(overlay.NodeID) bool { return false })
	if len(none) != 0 {
		t.Fatalf("filter accepted %d entries", len(none))
	}
}

func kwU32(ks []content.Keyword) []uint32 {
	out := make([]uint32, len(ks))
	for i, k := range ks {
		out[i] = uint32(k)
	}
	return out
}

func idU32(ids []overlay.NodeID) []uint32 {
	out := make([]uint32, 0, len(ids))
	for _, id := range ids {
		out = append(out, uint32(id))
	}
	return out
}
