package serve

import (
	"fmt"

	"asap/internal/core"
	"asap/internal/experiments"
	"asap/internal/faults"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Warm builds a serving node from a lab preset: it constructs the system
// for the given topology, attaches the named ASAP scheme, replays the
// whole trace (queries included, so the ad caches carry a realistic
// working set), and wraps the warm state in a Node with its virtual clock
// at the trace horizon. The returned recorder holds the warm-up replay's
// sim-time series and keeps accumulating if the caller drives further
// state through the node.
func Warm(lab *experiments.Lab, schemeName string, topo overlay.Kind, cfg Config) (*Node, *obs.Recorder, error) {
	raw, err := lab.NewScheme(schemeName)
	if err != nil {
		return nil, nil, err
	}
	sch, ok := raw.(*core.Scheme)
	if !ok {
		return nil, nil, fmt.Errorf("serve: scheme %q has no read-only serving path (ASAP schemes only)", schemeName)
	}
	rec := obs.NewRecorder(int(lab.Tr.Span()/1000) + 2)
	sys := sim.NewSystem(lab.U, lab.Tr, topo, lab.Net, lab.Scale.Seed)
	sys.SetObs(rec)
	if lab.Scale.LossRate > 0 {
		sys.SetFaults(faults.New(faults.Config{Seed: lab.Scale.Seed, LossRate: lab.Scale.LossRate}))
	}
	st := sim.NewStepper(sys, sch, 0)
	for batch := st.NextBatch(); batch != nil; batch = st.NextBatch() {
		for _, ev := range batch {
			st.Record(ev, sch.Search(ev))
		}
	}
	st.Finish()
	n := NewNode(sys, sch, cfg)
	n.Apply(lab.Tr.Span(), nil) // position the serving clock at the horizon
	return n, rec, nil
}
