package serve

import (
	"errors"
	"io"
	"net"

	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/transport"
)

// BinaryServer exposes a serving Node over the length-prefixed binary
// protocol (internal/transport framing, MServe* frame types): one
// request/response exchange per frame, many concurrent connections, each
// connection serving requests sequentially from its own reused buffers —
// the zero-allocation steady state the wire path inherits from the node.
type BinaryServer struct {
	n  *Node
	ln transport.Listener
}

// NewBinary builds the binary front end for n on ln.
func NewBinary(n *Node, ln transport.Listener) *BinaryServer {
	return &BinaryServer{n: n, ln: ln}
}

// Addr returns the bound listener address.
func (b *BinaryServer) Addr() string { return b.ln.Addr() }

// Serve accepts connections until the listener closes (Close or process
// shutdown). Each connection is served on its own goroutine.
func (b *BinaryServer) Serve() error {
	for {
		c, err := b.ln.Accept()
		if err != nil {
			return nil // listener closed: clean shutdown
		}
		go b.serveConn(c)
	}
}

// Close stops accepting new connections. In-flight exchanges finish on
// their own goroutines; pair with Node.Drain for a full graceful stop.
func (b *BinaryServer) Close() error { return b.ln.Close() }

// shedCode maps an admission error to its wire reason code.
func shedCode(err error) byte {
	switch {
	case errors.Is(err, ErrThrottled):
		return transport.ServeErrThrottled
	case errors.Is(err, ErrOverloaded):
		return transport.ServeErrOverloaded
	case errors.Is(err, ErrDraining):
		return transport.ServeErrDraining
	default:
		return transport.ServeErrBadRequest
	}
}

// serveConn runs one connection's request loop. Buffers persist across
// requests, so a warm connection allocates only inside the transport
// reader (frame payload) and whatever SearchRO grows once.
func (b *BinaryServer) serveConn(c *transport.Conn) {
	defer c.Close()
	var (
		terms []content.Keyword
		dst   []overlay.NodeID
		buf   []byte
		reply transport.ServeReply
	)
	for {
		t, p, err := c.ReadFrame()
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				return
			}
			return
		}
		switch t {
		case transport.MServeBye:
			c.WriteFrame(transport.MServeByeOK, nil)
			return
		case transport.MServeQuery:
			q, err := transport.DecodeServeQuery(p)
			if err != nil || int(q.From) >= b.n.sys.G.N() {
				c.WriteFrame(transport.MServeErr, []byte{transport.ServeErrBadRequest})
				continue
			}
			terms = terms[:0]
			for _, kw := range q.Terms {
				terms = append(terms, content.Keyword(kw))
			}
			res, out, epoch, err := b.n.Search(overlay.NodeID(q.From), terms, dst[:0])
			dst = out
			if err != nil {
				c.WriteFrame(transport.MServeErr, []byte{shedCode(err)})
				continue
			}
			reply.Epoch, reply.Phase2 = epoch, res.Phase2
			reply.Sources = reply.Sources[:0]
			for _, id := range out {
				reply.Sources = append(reply.Sources, uint32(id))
			}
			buf = reply.Encode(buf[:0])
			if c.WriteFrame(transport.MServeOK, buf) != nil {
				return
			}
		default:
			c.WriteFrame(transport.MServeErr, []byte{transport.ServeErrBadRequest})
		}
	}
}
