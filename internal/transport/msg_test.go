package transport

import (
	"bytes"
	"reflect"
	"testing"
)

func TestAdMsgRoundTrip(t *testing.T) {
	cases := []AdMsg{
		{Src: 0, Version: 0, Topics: 0, Kind: 0, Full: []byte{1}},
		{Src: 440, Version: 65535, Topics: 0x3fff, Kind: 1, Full: bytes.Repeat([]byte{7}, 64), Patch: []byte{1, 2, 3}},
		{Src: 1<<31 - 1, Version: 1, Topics: 1, Kind: 0, Full: nil},
	}
	for i, m := range cases {
		enc := m.Encode(nil)
		got, err := DecodeAd(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// An empty filter may decode as a non-nil empty slice; compare values.
		if len(m.Full) == 0 {
			m.Full = nil
		}
		if len(got.Full) == 0 {
			got.Full = nil
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, m)
		}
		if _, err := DecodeAd(append(enc, 0)); err == nil {
			t.Fatalf("case %d: trailing byte accepted", i)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeAd(enc[:cut]); err == nil {
				t.Fatalf("case %d: truncation at %d accepted", i, cut)
			}
		}
	}
}

func TestConfirmReqRoundTrip(t *testing.T) {
	r := ConfirmReq{Src: 123, Terms: []uint32{5, 0, 1 << 30}}
	enc := r.Encode(nil)
	got, err := DecodeConfirmReq(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip %+v != %+v", got, r)
	}
	if _, err := DecodeConfirmReq(append(enc, 9)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeConfirmReq(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestAdsReqRoundTrip(t *testing.T) {
	cases := []AdsReq{
		{Target: 1, Requester: 2, Interests: 0x00ff, StaleBefore: -1, Max: 10, Terms: []uint32{9, 9, 9}},
		{Target: 0, Requester: 0, Interests: 0, StaleBefore: 1 << 40, Max: 0, Terms: nil},
	}
	for i, r := range cases {
		enc := r.Encode(nil)
		got, err := DecodeAdsReq(enc)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(r.Terms) == 0 {
			r.Terms = got.Terms // both empty; DeepEqual cares about nil-ness
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, r)
		}
		if _, err := DecodeAdsReq(append(enc, 1)); err == nil {
			t.Fatalf("case %d: trailing byte accepted", i)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, err := DecodeAdsReq(enc[:cut]); err == nil {
				t.Fatalf("case %d: truncation at %d accepted", i, cut)
			}
		}
	}
}

func TestAdsReplyRoundTrip(t *testing.T) {
	offers := []AdOffer{
		{Src: 5, Version: 2, Topics: 0x0101, Filter: []byte{1, 2, 3, 4}},
		{Src: 7, Version: 65534, Topics: 1, Filter: bytes.Repeat([]byte{0xaa}, 128)},
	}
	enc := EncodeAdsReply(nil, offers)
	got, err := DecodeAdsReply(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, offers) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, offers)
	}
	if _, err := DecodeAdsReply(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeAdsReply(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}

	empty, err := DecodeAdsReply(EncodeAdsReply(nil, nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty reply round trip = (%v, %v)", empty, err)
	}
}

func TestDecodeHostileHeaders(t *testing.T) {
	// Declared counts and lengths far beyond the payload must be rejected
	// before allocation, exactly like the trace codec's hostile headers.
	hostile := [][]byte{
		{0xff, 0xff, 0xff, 0xff, 0x7f},       // uvarint near 2^35 as a src
		{0x01, 0x00, 0x00, 0xff, 0xff, 0x03}, // huge filter length
	}
	for i, p := range hostile {
		if _, err := DecodeAd(p); err == nil {
			t.Errorf("hostile ad %d accepted", i)
		}
		if _, err := DecodeAdsReply(p); err == nil {
			t.Errorf("hostile ads reply %d accepted", i)
		}
	}
}
