package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"testing"
)

// pipePair returns two framed ends of an in-memory byte stream.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	t.Cleanup(func() { ca.Close(); cb.Close() })
	return ca, cb
}

func TestFrameRoundTrip(t *testing.T) {
	ca, cb := pipePair(t)
	payloads := [][]byte{
		nil,
		{},
		{0xff},
		bytes.Repeat([]byte("asap"), 100),
		make([]byte, 70<<10), // larger than the 64 KB bufio windows
	}
	go func() {
		for i, p := range payloads {
			if err := ca.WriteFrame(MsgType(i+1), p); err != nil {
				t.Errorf("WriteFrame %d: %v", i, err)
				return
			}
		}
	}()
	for i, want := range payloads {
		typ, got, err := cb.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if typ != MsgType(i+1) {
			t.Fatalf("frame %d: type = %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload differs (%d bytes vs %d)", i, len(got), len(want))
		}
	}
}

func TestFrameTruncatedStream(t *testing.T) {
	// A header promising more payload than the stream carries must surface
	// io.ErrUnexpectedEOF, never a short read or a hang.
	for cut := 1; cut < 9; cut++ {
		var full bytes.Buffer
		full.Write([]byte{0, 0, 0, 5})            // n = 5: type + 4 payload bytes
		full.Write([]byte{byte(MAd), 1, 2, 3, 4}) // the frame body
		raw := full.Bytes()[:cut]

		a, b := net.Pipe()
		go func() {
			b.Write(raw)
			b.Close()
		}()
		cn := NewConn(a)
		_, _, err := cn.ReadFrame()
		if cut < 4 && err != io.ErrUnexpectedEOF && err != io.EOF {
			t.Errorf("cut=%d: err = %v, want unexpected EOF", cut, err)
		}
		if cut >= 4 && err != io.ErrUnexpectedEOF {
			t.Errorf("cut=%d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
		cn.Close()
	}
}

func TestFrameRejectsZeroLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	go func() {
		b.Write([]byte{0, 0, 0, 0})
		b.Close()
	}()
	if _, _, err := NewConn(a).ReadFrame(); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	// Write side: the length check fires before any bytes move.
	ca, _ := pipePair(t)
	big := make([]byte, MaxFrame) // n = MaxFrame+1 once the type byte counts
	err := ca.WriteFrame(MAd, big)
	var tooBig ErrFrameTooLarge
	if !errors.As(err, &tooBig) {
		t.Fatalf("WriteFrame(MaxFrame payload) = %v, want ErrFrameTooLarge", err)
	}

	// Read side: a forged header is rejected before allocating the body.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	a, b := net.Pipe()
	defer a.Close()
	go func() {
		b.Write(hdr[:])
		b.Close()
	}()
	_, _, err = NewConn(a).ReadFrame()
	if !errors.As(err, &tooBig) {
		t.Fatalf("ReadFrame(forged %d header) = %v, want ErrFrameTooLarge", MaxFrame+1, err)
	}
}

func TestMemTransportRoundTrip(t *testing.T) {
	var tp Mem
	ln, err := tp.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := tp.Dial("mem:999999"); err == nil {
		t.Fatal("dial of an unbound mem address succeeded")
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		typ, p, err := c.ReadFrame()
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		c.WriteFrame(typ, p)
		c.Close()
	}()
	c, err := tp.Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteFrame(MConfirmReq, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	typ, p, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MConfirmReq || string(p) != "ping" {
		t.Fatalf("echo = (%d, %q)", typ, p)
	}
}
