package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"asap/internal/obs"
)

// Frame layout: a 4-byte big-endian length n, one type byte, then n-1
// payload bytes. The length covers the type byte so a zero length is
// structurally impossible and rejected outright.
const (
	// MaxFrame bounds a frame's declared length: 16 MB is far above any
	// legitimate message (a full mega-scale binary trace is the largest)
	// yet small enough that a forged header cannot make a receiver
	// allocate arbitrarily.
	MaxFrame = 1 << 24

	headerLen = 4
)

// MsgType tags a frame's payload.
type MsgType byte

// ErrFrameTooLarge reports a declared frame length beyond MaxFrame.
type ErrFrameTooLarge struct{ N uint32 }

func (e ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("transport: frame length %d exceeds %d", e.N, MaxFrame)
}

// Conn is one framed connection. Reads and writes each assume a single
// caller at a time (the request/response discipline every ASAP exchange
// follows); a write mutex still serialises concurrent senders so a
// misbehaving caller corrupts nothing.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	// Optional per-connection accounting: frames and bytes in/out land on
	// the recorder keyed by the replay clock. Set before first use.
	rec   *obs.Recorder
	clock func() int64
}

// NewConn wraps a byte stream in the frame codec.
func NewConn(c net.Conn) *Conn {
	return &Conn{c: c, br: bufio.NewReaderSize(c, 64<<10), bw: bufio.NewWriterSize(c, 64<<10)}
}

// SetRecorder attaches per-connection frame/byte counters. clock supplies
// the virtual time each frame is charged to; both may be nil (off).
func (cn *Conn) SetRecorder(rec *obs.Recorder, clock func() int64) {
	cn.rec, cn.clock = rec, clock
}

func (cn *Conn) now() int64 {
	if cn.clock == nil {
		return 0
	}
	return cn.clock()
}

// WriteFrame sends one frame and flushes it.
func (cn *Conn) WriteFrame(t MsgType, payload []byte) error {
	n := uint32(len(payload) + 1)
	if n > MaxFrame {
		return ErrFrameTooLarge{n}
	}
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	var hdr [headerLen + 1]byte
	binary.BigEndian.PutUint32(hdr[:], n)
	hdr[headerLen] = byte(t)
	if _, err := cn.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cn.bw.Write(payload); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	if cn.rec != nil {
		now := cn.now()
		cn.rec.CountN(now, obs.CNetFrameOut, 1)
		cn.rec.CountN(now, obs.CNetByteOut, int64(headerLen)+int64(n))
	}
	return nil
}

// ReadFrame receives one frame. A declared length of zero or beyond
// MaxFrame is rejected before any payload allocation; a stream that ends
// mid-frame surfaces io.ErrUnexpectedEOF.
func (cn *Conn) ReadFrame() (MsgType, []byte, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(cn.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("transport: zero-length frame")
	}
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge{n}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(cn.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if cn.rec != nil {
		now := cn.now()
		cn.rec.CountN(now, obs.CNetFrameIn, 1)
		cn.rec.CountN(now, obs.CNetByteIn, int64(headerLen)+int64(n))
	}
	return MsgType(body[0]), body[1:], nil
}

// Close tears the connection down.
func (cn *Conn) Close() error { return cn.c.Close() }
