package transport

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// Frame types. Control frames (harness ↔ daemon) carry JSON payloads —
// they are rare and inspection-friendly. Mesh frames (daemon ↔ daemon)
// carry the binary ad/confirm/search encodings the batch engine already
// uses: Bloom filters travel as bloom.EncodeWire bytes, patches as
// Patch.Encode bytes, terms and ids as uvarints.
const (
	// Harness → daemon.
	MHello MsgType = iota + 1
	MPeers
	MWarmup
	MAdvance
	MQuery
	MFinish
	MBye

	// Daemon → harness.
	MHelloOK
	MPeersOK
	MWarmupOK
	MAdvanceOK
	MQueryOK
	MSummary
	MByeOK
	MErr

	// Daemon ↔ daemon mesh.
	MPeerHello
	MAd
	MAdAck
	MConfirmReq
	MConfirmOK
	MAdsReq
	MAdsOK
)

// WriteJSON marshals v and sends it as one frame of type t.
func (cn *Conn) WriteJSON(t MsgType, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return cn.WriteFrame(t, p)
}

// ErrMsg is the payload of an MErr frame.
type ErrMsg struct {
	Msg string `json:"msg"`
}

// AdMsg is an MAd mesh frame: one ad publication, broadcast by the
// publishing node's owner daemon so every replica can verify its local
// snapshot byte-for-byte. Full always carries the bloom.EncodeWire filter
// encoding; Patch carries the Patch.Encode bytes when the publication was
// a patch ad (nil otherwise). Kind mirrors the scheme's ad kind byte.
type AdMsg struct {
	Src     uint32
	Version uint16
	Topics  uint16
	Kind    byte
	Full    []byte
	Patch   []byte
}

// Encode appends the binary form of m to buf.
func (m *AdMsg) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(m.Src))
	buf = binary.LittleEndian.AppendUint16(buf, m.Version)
	buf = binary.AppendUvarint(buf, uint64(m.Topics))
	buf = append(buf, m.Kind)
	buf = binary.AppendUvarint(buf, uint64(len(m.Full)))
	buf = append(buf, m.Full...)
	buf = binary.AppendUvarint(buf, uint64(len(m.Patch)))
	buf = append(buf, m.Patch...)
	return buf
}

// DecodeAd parses an MAd payload.
func DecodeAd(p []byte) (AdMsg, error) {
	var m AdMsg
	src, p, err := readUvarint(p, "ad src", 1<<31)
	if err != nil {
		return m, err
	}
	if len(p) < 3 {
		return m, fmt.Errorf("transport: truncated ad header")
	}
	m.Src = uint32(src)
	m.Version = binary.LittleEndian.Uint16(p)
	p = p[2:]
	topics, p, err := readUvarint(p, "ad topics", 1<<16)
	if err != nil {
		return m, err
	}
	m.Topics = uint16(topics)
	if len(p) < 1 {
		return m, fmt.Errorf("transport: truncated ad kind")
	}
	m.Kind = p[0]
	if m.Full, p, err = readBytes(p[1:], "ad filter"); err != nil {
		return m, err
	}
	if m.Patch, p, err = readBytes(p, "ad patch"); err != nil {
		return m, err
	}
	if len(m.Patch) == 0 {
		m.Patch = nil
	}
	if len(p) != 0 {
		return m, fmt.Errorf("transport: %d trailing bytes after ad", len(p))
	}
	return m, nil
}

// ConfirmReq is an MConfirmReq mesh frame: the two-phase search's content
// confirmation, asked of the daemon owning the candidate source.
type ConfirmReq struct {
	Src   uint32
	Terms []uint32
}

// Encode appends the binary form of r to buf.
func (r *ConfirmReq) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Src))
	return appendU32List(buf, r.Terms)
}

// DecodeConfirmReq parses an MConfirmReq payload.
func DecodeConfirmReq(p []byte) (ConfirmReq, error) {
	var r ConfirmReq
	src, p, err := readUvarint(p, "confirm src", 1<<31)
	if err != nil {
		return r, err
	}
	r.Src = uint32(src)
	if r.Terms, p, err = readU32List(p, "confirm terms"); err != nil {
		return r, err
	}
	if len(p) != 0 {
		return r, fmt.Errorf("transport: %d trailing bytes after confirm", len(p))
	}
	return r, nil
}

// ConfirmOK flag bits (MConfirmOK payload: one byte).
const (
	ConfirmAlive = 1 << 0
	ConfirmMatch = 1 << 1
)

// AdsReq is an MAdsReq mesh frame: phase 2's ads-request, served by the
// daemon owning the target node from the target's replicated cache.
type AdsReq struct {
	Target      uint32
	Requester   uint32
	Interests   uint16
	StaleBefore int64
	Max         uint32
	Terms       []uint32 // query terms; empty for a join pull
}

// Encode appends the binary form of r to buf.
func (r *AdsReq) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(r.Target))
	buf = binary.AppendUvarint(buf, uint64(r.Requester))
	buf = binary.AppendUvarint(buf, uint64(r.Interests))
	buf = binary.AppendVarint(buf, r.StaleBefore)
	buf = binary.AppendUvarint(buf, uint64(r.Max))
	return appendU32List(buf, r.Terms)
}

// DecodeAdsReq parses an MAdsReq payload.
func DecodeAdsReq(p []byte) (AdsReq, error) {
	var r AdsReq
	target, p, err := readUvarint(p, "ads target", 1<<31)
	if err != nil {
		return r, err
	}
	requester, p, err := readUvarint(p, "ads requester", 1<<31)
	if err != nil {
		return r, err
	}
	interests, p, err := readUvarint(p, "ads interests", 1<<16)
	if err != nil {
		return r, err
	}
	stale, n := binary.Varint(p)
	if n <= 0 {
		return r, fmt.Errorf("transport: bad ads stale-before")
	}
	p = p[n:]
	max, p, err := readUvarint(p, "ads max", 1<<20)
	if err != nil {
		return r, err
	}
	r.Target, r.Requester, r.Interests, r.StaleBefore, r.Max = uint32(target), uint32(requester), uint16(interests), stale, uint32(max)
	if r.Terms, p, err = readU32List(p, "ads terms"); err != nil {
		return r, err
	}
	if len(p) != 0 {
		return r, fmt.Errorf("transport: %d trailing bytes after ads request", len(p))
	}
	return r, nil
}

// AdOffer is one served ad inside an MAdsOK reply: the snapshot identity
// plus its bloom.EncodeWire filter bytes, which the requester verifies
// against its own replica before merging.
type AdOffer struct {
	Src     uint32
	Version uint16
	Topics  uint16
	Filter  []byte
}

// EncodeAdsReply appends the binary MAdsOK payload for offers to buf.
func EncodeAdsReply(buf []byte, offers []AdOffer) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(offers)))
	for i := range offers {
		o := &offers[i]
		buf = binary.AppendUvarint(buf, uint64(o.Src))
		buf = binary.LittleEndian.AppendUint16(buf, o.Version)
		buf = binary.AppendUvarint(buf, uint64(o.Topics))
		buf = binary.AppendUvarint(buf, uint64(len(o.Filter)))
		buf = append(buf, o.Filter...)
	}
	return buf
}

// DecodeAdsReply parses an MAdsOK payload.
func DecodeAdsReply(p []byte) ([]AdOffer, error) {
	count, p, err := readUvarint(p, "ads count", 1<<20)
	if err != nil {
		return nil, err
	}
	offers := make([]AdOffer, 0, min(int(count), 4096))
	for i := uint64(0); i < count; i++ {
		var o AdOffer
		src, rest, err := readUvarint(p, "offer src", 1<<31)
		if err != nil {
			return nil, err
		}
		if len(rest) < 2 {
			return nil, fmt.Errorf("transport: truncated offer version")
		}
		o.Src = uint32(src)
		o.Version = binary.LittleEndian.Uint16(rest)
		rest = rest[2:]
		topics, rest, err := readUvarint(rest, "offer topics", 1<<16)
		if err != nil {
			return nil, err
		}
		o.Topics = uint16(topics)
		if o.Filter, rest, err = readBytes(rest, "offer filter"); err != nil {
			return nil, err
		}
		offers = append(offers, o)
		p = rest
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("transport: %d trailing bytes after ads reply", len(p))
	}
	return offers, nil
}

func readUvarint(p []byte, what string, limit uint64) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("transport: bad %s", what)
	}
	if v > limit {
		return 0, nil, fmt.Errorf("transport: %s %d exceeds limit %d", what, v, limit)
	}
	return v, p[n:], nil
}

func readBytes(p []byte, what string) ([]byte, []byte, error) {
	n, p, err := readUvarint(p, what+" length", MaxFrame)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(p)) {
		return nil, nil, fmt.Errorf("transport: %s length %d exceeds %d remaining bytes", what, n, len(p))
	}
	return p[:n], p[n:], nil
}

func appendU32List(buf []byte, vs []uint32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

func readU32List(p []byte, what string) ([]uint32, []byte, error) {
	count, p, err := readUvarint(p, what+" count", 1<<16)
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(len(p)) {
		return nil, nil, fmt.Errorf("transport: %s count %d exceeds %d remaining bytes", what, count, len(p))
	}
	out := make([]uint32, 0, count)
	for i := uint64(0); i < count; i++ {
		v, rest, err := readUvarint(p, what, 1<<31)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, uint32(v))
		p = rest
	}
	return out, p, nil
}
