// Package transport moves the ASAP wire protocol between processes. It
// deliberately stays dumb: length-prefixed frames over a byte stream,
// with two interchangeable backends — real TCP sockets for the asapnode
// daemon, and an in-memory pipe registry so the cluster harness and the
// equivalence tests can run the exact same daemon engine without touching
// the network stack. Frame payloads reuse the fuzz-hardened encodings the
// batch engine already has (bloom.EncodeWire, Patch.Encode, the trace
// event fields); this package never interprets them.
package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
)

// Transport abstracts how daemons reach each other: Listen binds a
// service address, Dial connects to one. Addresses are backend-specific
// strings (TCP "host:port", Mem "mem:n").
type Transport interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (*Conn, error)
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (*Conn, error)
	// Addr returns the bound address in the form Dial accepts — for TCP
	// with a ":0" listen address, the kernel-assigned port.
	Addr() string
	Close() error
}

// TCP is the socket-backed Transport.
type TCP struct{}

// Listen binds a TCP listener; "127.0.0.1:0" picks a free loopback port.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return tcpListener{l}, nil
}

// Dial connects to a TCP daemon address.
func (TCP) Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

type tcpListener struct{ l net.Listener }

func (t tcpListener) Accept() (*Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

func (t tcpListener) Addr() string { return t.l.Addr().String() }
func (t tcpListener) Close() error { return t.l.Close() }

// Mem is the in-process Transport: listeners register in a shared table
// and Dial splices the two ends with net.Pipe. The zero value is ready to
// use; all Mem values share one address space.
type Mem struct{}

var memReg = struct {
	sync.Mutex
	next      int
	listeners map[string]*memListener
}{listeners: map[string]*memListener{}}

// Listen binds an in-memory listener. "mem:0" (or "") allocates a fresh
// address; anything else must be unbound.
func (Mem) Listen(addr string) (Listener, error) {
	memReg.Lock()
	defer memReg.Unlock()
	if addr == "" || addr == "mem:0" {
		memReg.next++
		addr = fmt.Sprintf("mem:%d", memReg.next)
	}
	if _, taken := memReg.listeners[addr]; taken {
		return nil, fmt.Errorf("transport: %s already bound", addr)
	}
	ln := &memListener{addr: addr, ch: make(chan *Conn), done: make(chan struct{})}
	memReg.listeners[addr] = ln
	return ln, nil
}

// Dial connects to a bound in-memory listener.
func (Mem) Dial(addr string) (*Conn, error) {
	memReg.Lock()
	ln := memReg.listeners[addr]
	memReg.Unlock()
	if ln == nil {
		return nil, fmt.Errorf("transport: no listener at %s", addr)
	}
	a, b := net.Pipe()
	select {
	case ln.ch <- NewConn(b):
		return NewConn(a), nil
	case <-ln.done:
		return nil, fmt.Errorf("transport: %s closed", addr)
	}
}

// MemAddrs lists the currently bound in-memory addresses (test helper).
func MemAddrs() []string {
	memReg.Lock()
	defer memReg.Unlock()
	out := make([]string, 0, len(memReg.listeners))
	for a := range memReg.listeners {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

type memListener struct {
	addr      string
	ch        chan *Conn
	done      chan struct{}
	closeOnce sync.Once
}

func (ln *memListener) Accept() (*Conn, error) {
	select {
	case c := <-ln.ch:
		return c, nil
	case <-ln.done:
		return nil, fmt.Errorf("transport: %s closed", ln.addr)
	}
}

func (ln *memListener) Addr() string { return ln.addr }

func (ln *memListener) Close() error {
	ln.closeOnce.Do(func() {
		close(ln.done)
		memReg.Lock()
		delete(memReg.listeners, ln.addr)
		memReg.Unlock()
	})
	return nil
}
