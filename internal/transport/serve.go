package transport

import (
	"encoding/binary"
	"fmt"
)

// Serving-plane frame types (internal/serve's binary endpoint). They live
// in a separate numeric range (0x50+) so they can never collide with the
// cluster-harness and mesh types above, and a daemon can multiplex both
// planes on one listener if it ever needs to.
const (
	// MServeQuery is a client → server search request.
	MServeQuery MsgType = 0x50 + iota
	// MServeOK answers a query with the verified sources.
	MServeOK
	// MServeErr answers a shed query with a one-byte reason code.
	MServeErr
	// MServeBye asks the server to close the connection (acked with
	// MServeByeOK so the client can distinguish clean shutdown).
	MServeBye
	// MServeByeOK acknowledges MServeBye.
	MServeByeOK
)

// MServeErr reason codes.
const (
	// ServeErrThrottled: the admission token bucket is empty (retryable).
	ServeErrThrottled byte = 1
	// ServeErrOverloaded: all worker slots busy and the queue is full
	// (retryable).
	ServeErrOverloaded byte = 2
	// ServeErrDraining: the server is shutting down.
	ServeErrDraining byte = 3
	// ServeErrBadRequest: the query frame did not decode or named an
	// out-of-range peer.
	ServeErrBadRequest byte = 4
)

// ServeQuery is an MServeQuery payload: the requesting peer and its
// query terms.
type ServeQuery struct {
	From  uint32
	Terms []uint32
}

// Encode appends the binary form of q to buf.
func (q *ServeQuery) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(q.From))
	return appendU32List(buf, q.Terms)
}

// DecodeServeQuery parses an MServeQuery payload.
func DecodeServeQuery(p []byte) (ServeQuery, error) {
	var q ServeQuery
	from, p, err := readUvarint(p, "serve from", 1<<31)
	if err != nil {
		return q, err
	}
	q.From = uint32(from)
	if q.Terms, p, err = readU32List(p, "serve terms"); err != nil {
		return q, err
	}
	if len(p) != 0 {
		return q, fmt.Errorf("transport: %d trailing bytes after serve query", len(p))
	}
	return q, nil
}

// ServeReply is an MServeOK payload: the even store epoch the answer was
// computed under, whether phase 2 (the h-hop ads request walk) ran, and
// the verified source node ids.
type ServeReply struct {
	Epoch   uint64
	Phase2  bool
	Sources []uint32
}

// Encode appends the binary form of r to buf.
func (r *ServeReply) Encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, r.Epoch)
	if r.Phase2 {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	return appendU32List(buf, r.Sources)
}

// DecodeServeReply parses an MServeOK payload.
func DecodeServeReply(p []byte) (ServeReply, error) {
	var r ServeReply
	epoch, p, err := readUvarint(p, "serve epoch", 1<<62)
	if err != nil {
		return r, err
	}
	r.Epoch = epoch
	if len(p) < 1 {
		return r, fmt.Errorf("transport: truncated serve reply")
	}
	r.Phase2 = p[0] != 0
	if r.Sources, p, err = readU32List(p[1:], "serve sources"); err != nil {
		return r, err
	}
	if len(p) != 0 {
		return r, fmt.Errorf("transport: %d trailing bytes after serve reply", len(p))
	}
	return r, nil
}
