package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestMsgClassString(t *testing.T) {
	for c := MsgClass(0); c < NumMsgClasses; c++ {
		if c.String() == "invalid" || c.String() == "" {
			t.Errorf("class %d has no label", c)
		}
	}
	if MsgClass(99).String() != "invalid" {
		t.Error("out-of-range class not invalid")
	}
}

func TestMaskOps(t *testing.T) {
	m := Mask(MQuery, MAdFull)
	if !m.Has(MQuery) || !m.Has(MAdFull) || m.Has(MConfirm) {
		t.Errorf("mask %b wrong", m)
	}
	if !BaselineLoadMask.Has(MQuery) || BaselineLoadMask.Has(MQueryHit) {
		t.Error("BaselineLoadMask must count query messages only")
	}
	for _, c := range []MsgClass{MConfirm, MAdsRequest, MAdFull, MAdPatch, MAdRefresh} {
		if !ASAPLoadMask.Has(c) {
			t.Errorf("ASAPLoadMask missing %v", c)
		}
	}
	if ASAPLoadMask.Has(MQuery) {
		t.Error("ASAPLoadMask must not count baseline queries")
	}
	for c := MsgClass(0); c < NumMsgClasses; c++ {
		if !AllMask.Has(c) {
			t.Errorf("AllMask missing %v", c)
		}
	}
}

func TestLoadAccountBuckets(t *testing.T) {
	a := NewLoadAccount(10)
	a.Add(0, MQuery, 100)
	a.Add(999, MQuery, 50)
	a.Add(1000, MQuery, 25)
	a.Add(50_000, MQuery, 7) // past the end → folded into last bucket
	if got := a.BytesAt(0, BaselineLoadMask); got != 150 {
		t.Errorf("bucket 0 = %d, want 150", got)
	}
	if got := a.BytesAt(1, BaselineLoadMask); got != 25 {
		t.Errorf("bucket 1 = %d, want 25", got)
	}
	if got := a.BytesAt(9, BaselineLoadMask); got != 7 {
		t.Errorf("last bucket = %d, want 7", got)
	}
	if got := a.TotalBytes(BaselineLoadMask); got != 182 {
		t.Errorf("total = %d, want 182", got)
	}
}

func TestLoadAccountWarmup(t *testing.T) {
	a := NewLoadAccount(5)
	a.Add(-100, MAdFull, 1000)
	a.Add(100, MAdFull, 10)
	if got := a.WarmupBytes(AllMask); got != 1000 {
		t.Errorf("warmup = %d, want 1000", got)
	}
	if got := a.TotalBytes(AllMask); got != 10 {
		t.Errorf("run total = %d, want 10 (warm-up excluded)", got)
	}
}

func TestLoadAccountClassSeparation(t *testing.T) {
	a := NewLoadAccount(3)
	a.Add(0, MQuery, 100)
	a.Add(0, MAdPatch, 200)
	a.Add(0, MQueryHit, 300)
	if got := a.BytesAt(0, BaselineLoadMask); got != 100 {
		t.Errorf("baseline mask = %d, want 100", got)
	}
	if got := a.BytesAt(0, ASAPLoadMask); got != 200 {
		t.Errorf("asap mask = %d, want 200", got)
	}
	by := a.ByClass()
	if by[MQuery] != 100 || by[MAdPatch] != 200 || by[MQueryHit] != 300 {
		t.Errorf("ByClass = %v", by)
	}
}

func TestLoadSeriesAndMeanStd(t *testing.T) {
	a := NewLoadAccount(4)
	// 2 live nodes; loads: 2048B, 4096B, 0B, (no live → skipped).
	a.SetLive(0, 2)
	a.SetLive(1, 2)
	a.SetLive(2, 2)
	a.SetLive(3, 0)
	a.Add(0, MQuery, 2048)
	a.Add(1000, MQuery, 4096)
	a.Add(3500, MQuery, 999999) // second 3 has no live peers → not in series
	series := a.Series(BaselineLoadMask)
	if len(series) != 3 {
		t.Fatalf("series length %d, want 3", len(series))
	}
	// KB/node/s: 1, 2, 0.
	want := []float64{1, 2, 0}
	for i := range want {
		if math.Abs(series[i]-want[i]) > 1e-9 {
			t.Errorf("series[%d] = %v, want %v", i, series[i], want[i])
		}
	}
	mean, std := a.MeanStd(BaselineLoadMask)
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("mean = %v, want 1", mean)
	}
	wantStd := math.Sqrt((0 + 1 + 1) / 3.0)
	if math.Abs(std-wantStd) > 1e-9 {
		t.Errorf("std = %v, want %v", std, wantStd)
	}
}

func TestLoadEmptySeries(t *testing.T) {
	a := NewLoadAccount(3)
	if s := a.Series(AllMask); len(s) != 0 {
		t.Errorf("series over zero live peers = %v", s)
	}
	mean, std := a.MeanStd(AllMask)
	if mean != 0 || std != 0 {
		t.Error("MeanStd on empty series not zero")
	}
}

func TestBreakdown(t *testing.T) {
	a := NewLoadAccount(2)
	a.Add(0, MAdFull, 85)
	a.Add(0, MAdPatch, 600)
	a.Add(0, MAdRefresh, 310)
	a.Add(0, MConfirm, 5)
	bd := a.Breakdown(ASAPLoadMask)
	total := bd[MAdFull] + bd[MAdPatch] + bd[MAdRefresh] + bd[MConfirm]
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("breakdown mass %v, want 1", total)
	}
	if math.Abs(bd[MAdFull]-0.085) > 1e-9 {
		t.Errorf("full-ad share %v, want 0.085", bd[MAdFull])
	}
	var zero LoadAccount
	_ = zero
	empty := NewLoadAccount(1)
	bd = empty.Breakdown(ASAPLoadMask)
	for _, v := range bd {
		if v != 0 {
			t.Error("breakdown of empty account not zero")
		}
	}
}

func TestLoadAccountConcurrentAdds(t *testing.T) {
	a := NewLoadAccount(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				a.Add(500, MQuery, 3)
			}
		}()
	}
	wg.Wait()
	if got := a.TotalBytes(BaselineLoadMask); got != 8*1000*3 {
		t.Errorf("concurrent total = %d, want %d", got, 8*1000*3)
	}
}

func TestLoadAccountMinimumSize(t *testing.T) {
	a := NewLoadAccount(0)
	if a.Seconds() != 1 {
		t.Errorf("Seconds = %d, want clamped to 1", a.Seconds())
	}
	a.Add(0, MQuery, 1)
	a.SetLive(5, 3) // past the end: folds into the final (only) bucket, like Add
	if a.Live(0) != 3 {
		t.Error("out-of-range SetLive did not fold into the final bucket")
	}
}

func TestSearchStats(t *testing.T) {
	var s SearchStats
	s.Record(SearchResult{Success: true, ResponseMS: 100, Bytes: 10, Hops: 1})
	s.Record(SearchResult{Success: true, ResponseMS: 300, Bytes: 30, Hops: 3})
	s.Record(SearchResult{Success: false, Bytes: 20})
	if s.Total() != 3 {
		t.Errorf("Total = %d", s.Total())
	}
	if got := s.SuccessRate(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("SuccessRate = %v", got)
	}
	if got := s.MeanResponseMS(); math.Abs(got-200) > 1e-9 {
		t.Errorf("MeanResponseMS = %v, want 200", got)
	}
	if got := s.MeanBytes(); math.Abs(got-20) > 1e-9 {
		t.Errorf("MeanBytes = %v, want 20", got)
	}
	if got := s.MeanHops(); math.Abs(got-2) > 1e-9 {
		t.Errorf("MeanHops = %v, want 2", got)
	}
	if got := s.OneHopRate(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("OneHopRate = %v, want 0.5", got)
	}
	if got := s.Percentile(0); got != 100 {
		t.Errorf("P0 = %d, want 100", got)
	}
	if got := s.Percentile(1); got != 300 {
		t.Errorf("P100 = %d, want 300", got)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSearchStatsEmpty(t *testing.T) {
	var s SearchStats
	if s.SuccessRate() != 0 || s.MeanResponseMS() != 0 || s.MeanBytes() != 0 || s.MeanHops() != 0 || s.OneHopRate() != 0 || s.Percentile(0.5) != 0 {
		t.Error("empty stats must be all zero")
	}
}

// Property: SuccessRate is always in [0,1] and MeanResponse only reflects
// successes.
func TestSearchStatsProperty(t *testing.T) {
	prop := func(outcomes []bool, resp uint16) bool {
		var s SearchStats
		for _, ok := range outcomes {
			s.Record(SearchResult{Success: ok, ResponseMS: int64(resp), Hops: 1})
		}
		r := s.SuccessRate()
		if r < 0 || r > 1 {
			return false
		}
		if anyTrue(outcomes) && s.MeanResponseMS() != float64(resp) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func anyTrue(xs []bool) bool {
	for _, x := range xs {
		if x {
			return true
		}
	}
	return false
}

func TestSummarize(t *testing.T) {
	var ss SearchStats
	ss.Record(SearchResult{Success: true, ResponseMS: 50, Bytes: 5, Hops: 1})
	la := NewLoadAccount(2)
	la.SetLive(0, 1)
	la.SetLive(1, 1)
	la.Add(0, MConfirm, 1024)
	la.Add(-1, MAdFull, 777)
	sum := Summarize("asap-rw", "crawled", &ss, la, ASAPLoadMask)
	if sum.Scheme != "asap-rw" || sum.Topology != "crawled" {
		t.Error("labels lost")
	}
	if sum.Requests != 1 || sum.SuccessRate != 1 || sum.MeanRespMS != 50 {
		t.Errorf("search fields wrong: %+v", sum)
	}
	if sum.WarmupBytes != 777 {
		t.Errorf("WarmupBytes = %d, want 777", sum.WarmupBytes)
	}
	if len(sum.LoadSeries) != 2 {
		t.Errorf("series length %d, want 2", len(sum.LoadSeries))
	}
	if sum.LoadMeanKBps <= 0 {
		t.Error("zero load mean")
	}
	if sum.Breakdown[MConfirm] != 1 {
		t.Errorf("breakdown = %v", sum.Breakdown)
	}
}

func TestSearchStatsConcurrent(t *testing.T) {
	var s SearchStats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Record(SearchResult{Success: true, ResponseMS: 10, Hops: 1})
			}
		}()
	}
	wg.Wait()
	if s.Total() != 4000 {
		t.Errorf("Total = %d, want 4000", s.Total())
	}
}

func TestSetLiveFoldsBoundarySecond(t *testing.T) {
	// Add folds bytes at or past the horizon into the final bucket, so
	// SetLive must fold the matching live-count update the same way — the
	// runner's last advance calls SetLive(Seconds()), and dropping it
	// leaves the final bucket's bytes divided by a stale denominator.
	a := NewLoadAccount(3)
	a.SetLive(0, 4)
	a.SetLive(1, 4)
	a.SetLive(2, 4)
	a.Add(3500, MQuery, 8192) // folded into second 2
	a.SetLive(3, 2)           // boundary second: must update bucket 2
	if got := a.Live(2); got != 2 {
		t.Fatalf("Live(2) = %d after SetLive(3, 2), want 2", got)
	}
	series := a.Series(BaselineLoadMask)
	// 8 KB over 2 live nodes → 4 KB/node/s in the final bucket.
	if got := series[2]; math.Abs(got-4) > 1e-9 {
		t.Errorf("final-bucket load %v KB/node/s, want 4", got)
	}
	a.SetLive(-1, 99) // negative seconds stay ignored
	for s := 0; s < 3; s++ {
		if a.Live(s) == 99 {
			t.Error("negative-second SetLive mutated a bucket")
		}
	}
}

func TestFaultCounters(t *testing.T) {
	a := NewLoadAccount(1)
	if d, r, to := a.FaultCounts(); d != 0 || r != 0 || to != 0 {
		t.Fatal("fresh account has non-zero fault counts")
	}
	a.CountDrop()
	a.CountDrop()
	a.CountRetry()
	a.CountTimeout()
	a.CountTimeout()
	a.CountTimeout()
	d, r, to := a.FaultCounts()
	if d != 2 || r != 1 || to != 3 {
		t.Fatalf("FaultCounts = (%d, %d, %d), want (2, 1, 3)", d, r, to)
	}
	sum := Summarize("s", "t", &SearchStats{}, a, AllMask)
	if sum.Drops != 2 || sum.Retries != 1 || sum.Timeouts != 3 {
		t.Errorf("Summary fault counts = (%d, %d, %d), want (2, 1, 3)",
			sum.Drops, sum.Retries, sum.Timeouts)
	}
}
