package metrics

import (
	"fmt"
	"math"
	"sync/atomic"
)

// MsgClass labels every byte the simulator accounts, so load can be
// aggregated per the paper's per-scheme definitions.
type MsgClass uint8

const (
	// MQuery is a baseline query/walk message.
	MQuery MsgClass = iota
	// MQueryHit is a baseline reply to the requester. The paper's load and
	// cost metrics count "query messages only" for baselines, so this class
	// is tracked for diagnostics but excluded from their masks.
	MQueryHit
	// MConfirm is an ASAP content-confirmation message or its reply.
	MConfirm
	// MAdsRequest is an ASAP ads-request message or its reply.
	MAdsRequest
	// MAdFull is a full-ad delivery message.
	MAdFull
	// MAdPatch is a patch-ad delivery message.
	MAdPatch
	// MAdRefresh is a refresh-ad delivery message.
	MAdRefresh
	// MControl is auxiliary traffic: walker check-backs, full-ad
	// re-requests after a version gap.
	MControl

	// NumMsgClasses is the number of message classes.
	NumMsgClasses = 8
)

// String returns the class label.
func (c MsgClass) String() string {
	switch c {
	case MQuery:
		return "query"
	case MQueryHit:
		return "query-hit"
	case MConfirm:
		return "confirm"
	case MAdsRequest:
		return "ads-request"
	case MAdFull:
		return "ad-full"
	case MAdPatch:
		return "ad-patch"
	case MAdRefresh:
		return "ad-refresh"
	case MControl:
		return "control"
	default:
		return "invalid"
	}
}

// ClassMask selects which message classes an aggregate includes.
type ClassMask uint16

// Mask builds a ClassMask from classes.
func Mask(classes ...MsgClass) ClassMask {
	var m ClassMask
	for _, c := range classes {
		m |= 1 << c
	}
	return m
}

// Has reports whether the mask includes c.
func (m ClassMask) Has(c MsgClass) bool { return m&(1<<c) != 0 }

// Standard masks for the paper's metrics.
var (
	// BaselineLoadMask counts "all the query messages" (§V-B).
	BaselineLoadMask = Mask(MQuery)
	// ASAPLoadMask counts "all ad delivery messages … in addition to the
	// search-related traffics including content confirmation and ads
	// request messages" (§V-B).
	ASAPLoadMask = Mask(MConfirm, MAdsRequest, MAdFull, MAdPatch, MAdRefresh, MControl)
	// AdMask selects ad-delivery traffic only (Fig. 7 numerator).
	AdMask = Mask(MAdFull, MAdPatch, MAdRefresh)
	// AllMask selects everything.
	AllMask = ClassMask(1<<NumMsgClasses - 1)
)

// LoadAccount buckets accounted bytes into one-second bins per message
// class. Add is safe for concurrent use; SetLive and the aggregate readers
// must be externally serialised against Add (the runner reads only between
// replay batches).
type LoadAccount struct {
	seconds int
	cells   []int64 // seconds × NumMsgClasses, atomically updated
	warm    [NumMsgClasses]int64
	live    []int32 // live peers at each second

	// Fault-plane event counters (atomically updated): messages the
	// network dropped, retries those drops provoked, and contacts given
	// up on after every attempt failed.
	drops    int64
	retries  int64
	timeouts int64
}

// NewLoadAccount sizes an account for the given experiment duration in
// seconds. Bytes accounted past the end are folded into the final bucket.
func NewLoadAccount(seconds int) *LoadAccount {
	if seconds < 1 {
		seconds = 1
	}
	return &LoadAccount{
		seconds: seconds,
		cells:   make([]int64, seconds*NumMsgClasses),
		live:    make([]int32, seconds),
	}
}

// Seconds returns the number of one-second buckets.
func (a *LoadAccount) Seconds() int { return a.seconds }

// Add accounts bytes of class c at virtual time tMS (milliseconds).
// Negative times (warm-up traffic, before the trace starts) go to the
// warm-up counters, which are excluded from the per-second series.
func (a *LoadAccount) Add(tMS int64, c MsgClass, bytes int) {
	if bytes == 0 {
		return
	}
	if tMS < 0 {
		atomic.AddInt64(&a.warm[c], int64(bytes))
		return
	}
	sec := int(tMS / 1000)
	if sec >= a.seconds {
		sec = a.seconds - 1
	}
	atomic.AddInt64(&a.cells[sec*NumMsgClasses+int(c)], int64(bytes))
}

// SetLive records the number of live peers during second sec. Seconds at
// or past the end update the final bucket — the same fold Add applies —
// so the horizon second's bytes divide by the live count that produced
// them instead of a silently stale one.
func (a *LoadAccount) SetLive(sec, n int) {
	if sec < 0 {
		return
	}
	if sec >= a.seconds {
		sec = a.seconds - 1
	}
	a.live[sec] = int32(n)
}

// CountDrop records one message lost to the fault plane.
func (a *LoadAccount) CountDrop() { atomic.AddInt64(&a.drops, 1) }

// CountRetry records one retransmission provoked by a timeout.
func (a *LoadAccount) CountRetry() { atomic.AddInt64(&a.retries, 1) }

// CountTimeout records one contact abandoned after its last attempt.
func (a *LoadAccount) CountTimeout() { atomic.AddInt64(&a.timeouts, 1) }

// FaultCounts returns the fault-plane event totals.
func (a *LoadAccount) FaultCounts() (drops, retries, timeouts int64) {
	return atomic.LoadInt64(&a.drops), atomic.LoadInt64(&a.retries), atomic.LoadInt64(&a.timeouts)
}

// Live returns the recorded live-peer count for second sec.
func (a *LoadAccount) Live(sec int) int { return int(a.live[sec]) }

// BytesAt returns the bytes of classes in mask accounted during second sec.
func (a *LoadAccount) BytesAt(sec int, mask ClassMask) int64 {
	total := int64(0)
	row := a.cells[sec*NumMsgClasses : (sec+1)*NumMsgClasses]
	for c := 0; c < NumMsgClasses; c++ {
		if mask.Has(MsgClass(c)) {
			total += atomic.LoadInt64(&row[c])
		}
	}
	return total
}

// TotalBytes returns all bytes of classes in mask over the whole run
// (warm-up excluded).
func (a *LoadAccount) TotalBytes(mask ClassMask) int64 {
	total := int64(0)
	for s := 0; s < a.seconds; s++ {
		total += a.BytesAt(s, mask)
	}
	return total
}

// WarmupBytes returns warm-up bytes of classes in mask.
func (a *LoadAccount) WarmupBytes(mask ClassMask) int64 {
	total := int64(0)
	for c := 0; c < NumMsgClasses; c++ {
		if mask.Has(MsgClass(c)) {
			total += atomic.LoadInt64(&a.warm[c])
		}
	}
	return total
}

// ByClass returns per-class byte totals over the run (warm-up excluded).
func (a *LoadAccount) ByClass() [NumMsgClasses]int64 {
	var out [NumMsgClasses]int64
	for s := 0; s < a.seconds; s++ {
		row := a.cells[s*NumMsgClasses : (s+1)*NumMsgClasses]
		for c := 0; c < NumMsgClasses; c++ {
			out[c] += atomic.LoadInt64(&row[c])
		}
	}
	return out
}

// Series returns the per-node system load in KB/node/s for every second
// with at least one live peer — the paper's Fig. 10 series.
func (a *LoadAccount) Series(mask ClassMask) []float64 {
	out := make([]float64, 0, a.seconds)
	for s := 0; s < a.seconds; s++ {
		n := a.live[s]
		if n <= 0 {
			continue
		}
		out = append(out, float64(a.BytesAt(s, mask))/float64(n)/1024)
	}
	return out
}

// MeanStd returns the mean and population standard deviation of the
// per-node load series — Figs. 8 and 9.
func (a *LoadAccount) MeanStd(mask ClassMask) (mean, std float64) {
	series := a.Series(mask)
	if len(series) == 0 {
		return 0, 0
	}
	for _, v := range series {
		mean += v
	}
	mean /= float64(len(series))
	for _, v := range series {
		d := v - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(series)))
}

// Breakdown returns each class's share of the masked byte total — Fig. 7.
func (a *LoadAccount) Breakdown(mask ClassMask) [NumMsgClasses]float64 {
	var out [NumMsgClasses]float64
	by := a.ByClass()
	total := int64(0)
	for c := 0; c < NumMsgClasses; c++ {
		if mask.Has(MsgClass(c)) {
			total += by[c]
		}
	}
	if total == 0 {
		return out
	}
	for c := 0; c < NumMsgClasses; c++ {
		if mask.Has(MsgClass(c)) {
			out[c] = float64(by[c]) / float64(total)
		}
	}
	return out
}

func (a *LoadAccount) String() string {
	mean, std := a.MeanStd(AllMask)
	return fmt.Sprintf("load{%ds mean=%.3f std=%.3f KB/node/s}", a.seconds, mean, std)
}
