package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// SearchResult is the outcome of one simulated search request.
type SearchResult struct {
	Success    bool
	ResponseMS int64 // requester-observed latency of the first result
	Bytes      int64 // per-search cost under the scheme's cost definition
	Hops       int   // overlay hops to the first result (1 = one-hop)
	Hits       int   // distinct sources that answered positively
}

// SearchStats aggregates SearchResults. Record is safe for concurrent use.
type SearchStats struct {
	mu        sync.Mutex
	total     int
	successes int
	respSum   int64
	bytesSum  int64
	hopsSum   int64
	hitsSum   int64
	oneHop    int
	latencies []int32 // successful response times, for percentiles
}

// Record adds one search outcome.
func (s *SearchStats) Record(r SearchResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	s.bytesSum += r.Bytes
	if r.Success {
		s.successes++
		s.respSum += r.ResponseMS
		s.hopsSum += int64(r.Hops)
		s.hitsSum += int64(r.Hits)
		if r.Hops <= 1 {
			s.oneHop++
		}
		s.latencies = append(s.latencies, int32(r.ResponseMS))
	}
}

// Total returns the number of recorded searches.
func (s *SearchStats) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// SuccessRate returns the fraction of searches with ≥1 result.
func (s *SearchStats) SuccessRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return 0
	}
	return float64(s.successes) / float64(s.total)
}

// MeanResponseMS returns the mean response time over successful searches
// (the paper averages "among all successful search requests").
func (s *SearchStats) MeanResponseMS() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.successes == 0 {
		return 0
	}
	return float64(s.respSum) / float64(s.successes)
}

// MeanBytes returns the mean per-search bandwidth cost over all searches.
func (s *SearchStats) MeanBytes() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return 0
	}
	return float64(s.bytesSum) / float64(s.total)
}

// MeanHops returns the mean overlay hop count of first results.
func (s *SearchStats) MeanHops() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.successes == 0 {
		return 0
	}
	return float64(s.hopsSum) / float64(s.successes)
}

// MeanHits returns the mean number of positive sources per successful
// search (≥1; larger when searches demand multiple results).
func (s *SearchStats) MeanHits() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.successes == 0 {
		return 0
	}
	return float64(s.hitsSum) / float64(s.successes)
}

// OneHopRate returns the fraction of successful searches resolved in a
// single hop — ASAP's headline property.
func (s *SearchStats) OneHopRate() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.successes == 0 {
		return 0
	}
	return float64(s.oneHop) / float64(s.successes)
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of successful response
// times in milliseconds.
func (s *SearchStats) Percentile(p float64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.latencies) == 0 {
		return 0
	}
	sorted := append([]int32(nil), s.latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return int64(sorted[idx])
}

func (s *SearchStats) String() string {
	return fmt.Sprintf("search{n=%d success=%.1f%% resp=%.0fms cost=%.0fB}",
		s.Total(), s.SuccessRate()*100, s.MeanResponseMS(), s.MeanBytes())
}

// Summary is the flattened result of one scheme × topology run: one bar in
// each of the paper's comparison figures.
type Summary struct {
	Scheme   string
	Topology string

	Requests    int
	SuccessRate float64 // Fig. 4
	MeanRespMS  float64 // Fig. 5
	P95RespMS   int64
	MeanHops    float64
	MeanHits    float64
	OneHopRate  float64

	MeanSearchBytes float64 // Fig. 6

	LoadMeanKBps float64 // Fig. 8
	LoadStdKBps  float64 // Fig. 9

	Breakdown  [NumMsgClasses]float64 // Fig. 7 (ASAP schemes)
	LoadSeries []float64              // Fig. 10

	WarmupBytes int64 // ad pre-distribution cost, excluded from load

	// Fault-plane event totals; all zero on a reliable network.
	Drops    int64
	Retries  int64
	Timeouts int64
}

// Summarize combines search stats and load accounting into a Summary.
func Summarize(scheme, topology string, ss *SearchStats, la *LoadAccount, loadMask ClassMask) Summary {
	mean, std := la.MeanStd(loadMask)
	drops, retries, timeouts := la.FaultCounts()
	return Summary{
		Scheme:          scheme,
		Topology:        topology,
		Requests:        ss.Total(),
		SuccessRate:     ss.SuccessRate(),
		MeanRespMS:      ss.MeanResponseMS(),
		P95RespMS:       ss.Percentile(0.95),
		MeanHops:        ss.MeanHops(),
		MeanHits:        ss.MeanHits(),
		OneHopRate:      ss.OneHopRate(),
		MeanSearchBytes: ss.MeanBytes(),
		LoadMeanKBps:    mean,
		LoadStdKBps:     std,
		Breakdown:       la.Breakdown(loadMask),
		LoadSeries:      la.Series(loadMask),
		WarmupBytes:     la.WarmupBytes(AllMask),
		Drops:           drops,
		Retries:         retries,
		Timeouts:        timeouts,
	}
}
