// Package metrics implements the measurement machinery behind the paper's
// evaluation section (§V):
//
//   - search efficiency: success rate (requests with ≥1 result) and mean
//     response time over successful requests (§V-A), plus the bandwidth
//     consumed per search (Fig. 6);
//   - system load: "all P2P traffics triggered by external events such as a
//     search request", measured as bandwidth consumption per node per
//     second (footnote 1, §V-B). Keep-alive and download traffic are out of
//     scope and never accounted. The per-second series yields the mean
//     (Fig. 8), the standard deviation (Fig. 9) and the real-time snapshot
//     (Fig. 10);
//   - the ASAP load breakdown by message class (Fig. 7): full ads versus
//     patch ads, refresh ads and search traffic.
//
// LoadAccount buckets message bytes into one-second bins by message class
// with atomic adds, so concurrently simulated searches can account without
// locks. Which classes count toward "system load" differs per scheme (the
// paper counts only query messages for the baselines, and everything but
// downloads for ASAP), so aggregation takes a class mask.
package metrics
