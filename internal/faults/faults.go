// Package faults is the simulator's deterministic fault-injection plane.
//
// A Plane decides, per message, whether the network drops it and how much
// extra latency it suffers. Decisions are pure functions of the plane's
// seed and the message's identity — (stream key, sequence number, source,
// destination, class) — hashed through a PCG output permutation, so a
// replay makes exactly the same decisions regardless of worker count or
// scheduling. Stream keys derive from event identity (Key), and sequence
// numbers are local counters within one query or one ad delivery, both of
// which execute sequentially, so no global state is shared between
// concurrent searches.
//
// A nil *Plane is valid everywhere and behaves as a perfectly reliable
// network, which keeps the zero-loss hot path to a single nil check.
package faults

import (
	"fmt"

	"asap/internal/metrics"
	"asap/internal/overlay"
)

// Config parameterises a fault plane.
type Config struct {
	// Seed drives every drop and jitter decision. Two planes with the
	// same Config make identical decisions.
	Seed uint64
	// LossRate is the independent per-message drop probability in [0, 1).
	LossRate float64
	// JitterMS adds a per-message uniform extra latency in [0, JitterMS]
	// milliseconds; 0 disables jitter.
	JitterMS int
	// GracefulLeave makes departing nodes announce themselves (schemes
	// send goodbye messages over the still-lossy links) instead of
	// crashing silently.
	GracefulLeave bool
}

// Plane is a seeded, replay-stable fault injector. The zero value and the
// nil pointer are both inert (no drops, no jitter, crash-style leaves).
type Plane struct {
	seed     uint64
	loss     float64
	jitterMS int64
	graceful bool
	// group, when non-nil, partitions the overlay: group[n] is node n's
	// partition group, and messages between different groups are dropped.
	// Partition membership is a pure table lookup — it consumes no hash
	// stream and never feeds into Drop's (key, seq, src, dst, class)
	// hashing, so engaging or healing a partition cannot perturb the
	// outcome of any loss-stream decision (Drop is stateless: the same
	// message identity hashes to the same verdict with or without a
	// partition engaged). Mutated only between replay batches on the
	// runner goroutine.
	group []int8
}

// New builds a plane from cfg. It panics on an out-of-range loss rate —
// fault configuration is static experiment setup, like core.Config.
func New(cfg Config) *Plane {
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		panic(fmt.Sprintf("faults: LossRate %v out of [0,1)", cfg.LossRate))
	}
	if cfg.JitterMS < 0 {
		panic(fmt.Sprintf("faults: JitterMS %d < 0", cfg.JitterMS))
	}
	return &Plane{
		seed:     cfg.Seed,
		loss:     cfg.LossRate,
		jitterMS: int64(cfg.JitterMS),
		graceful: cfg.GracefulLeave,
	}
}

// LossRate returns the configured per-message drop probability.
func (p *Plane) LossRate() float64 {
	if p == nil {
		return 0
	}
	return p.loss
}

// Active reports whether the plane can actually drop messages. Retry
// machinery keys off this so a zero-loss plane replays byte-identically
// to no plane at all. An engaged partition counts: cross-group messages
// are dropped, so retry/timeout semantics must be live while it holds.
func (p *Plane) Active() bool { return p != nil && (p.loss > 0 || p.group != nil) }

// SetPartition installs (or, with nil, heals) a partition grouping.
// group[n] is node n's partition group; messages whose source and
// destination land in different groups are dropped unconditionally.
// The slice is retained, not copied. Callers must serialise SetPartition
// against message delivery — the scenario director applies it between
// replay batches on the runner goroutine.
func (p *Plane) SetPartition(group []int8) { p.group = group }

// PartitionEngaged reports whether a partition grouping is installed.
func (p *Plane) PartitionEngaged() bool { return p != nil && p.group != nil }

// Partitioned reports whether src and dst are currently in different
// partition groups. Nodes outside the group table (never the case for
// groupings sized to the overlay) default to group 0.
func (p *Plane) Partitioned(src, dst overlay.NodeID) bool {
	if p == nil || p.group == nil {
		return false
	}
	var gs, gd int8
	if int(src) < len(p.group) {
		gs = p.group[src]
	}
	if int(dst) < len(p.group) {
		gd = p.group[dst]
	}
	return gs != gd
}

// GracefulLeave reports whether departing nodes say goodbye.
func (p *Plane) GracefulLeave() bool { return p != nil && p.graceful }

// Drop reports whether the message identified by (key, seq, src, dst,
// class) is lost in transit.
func (p *Plane) Drop(c metrics.MsgClass, src, dst overlay.NodeID, key uint64, seq uint32) bool {
	if p == nil || p.loss == 0 {
		return false
	}
	h := p.hash(c, src, dst, key, seq)
	// Top 53 bits → uniform in [0,1); a strict compare keeps the decision
	// an exact function of the hash with no rounding surprises.
	return float64(h>>11)*(1.0/(1<<53)) < p.loss
}

// Jitter returns the message's extra one-way latency in milliseconds,
// uniform over [0, JitterMS]. It reuses the message identity with a
// distinct tweak so jitter and drop outcomes are decorrelated.
func (p *Plane) Jitter(c metrics.MsgClass, src, dst overlay.NodeID, key uint64, seq uint32) int64 {
	if p == nil || p.jitterMS == 0 {
		return 0
	}
	h := pcg64(p.hash(c, src, dst, key, seq) + 0x9e3779b97f4a7c15)
	return int64(h % uint64(p.jitterMS+1))
}

// hash mixes the plane seed with the full message identity through three
// PCG rounds. Every input bit reaches every output bit; adjacent seq
// values (the common case within one query) land in unrelated cells.
func (p *Plane) hash(c metrics.MsgClass, src, dst overlay.NodeID, key uint64, seq uint32) uint64 {
	h := pcg64(p.seed ^ key)
	h = pcg64(h ^ uint64(uint32(src)) ^ uint64(uint32(dst))<<32)
	return pcg64(h ^ uint64(seq)<<8 ^ uint64(c))
}

// pcg64 is one PCG step: an LCG state advance followed by the RXS-M-XS
// output permutation (the 64-bit PCG variant).
func pcg64(state uint64) uint64 {
	state = state*6364136223846793005 + 1442695040888963407
	word := ((state >> ((state >> 59) + 5)) ^ state) * 12605985483714917081
	return (word >> 43) ^ word
}

// Key derives a message-stream key from an event identity — typically the
// (time, node) pair of the query or delivery the stream belongs to. The
// splitmix64 finalizer decorrelates nearby times and node IDs.
func Key(t int64, node overlay.NodeID) uint64 {
	x := uint64(t)<<20 ^ uint64(uint32(node))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Fold mixes an extra discriminator (e.g. an ad version and delivery
// kind) into a stream key, for events not unique in (time, node) alone.
func Fold(key, extra uint64) uint64 { return pcg64(key ^ extra) }
