package faults

import (
	"math"
	"testing"

	"asap/internal/metrics"
	"asap/internal/overlay"
)

func TestNilPlaneIsReliable(t *testing.T) {
	var p *Plane
	if p.Active() {
		t.Error("nil plane reports Active")
	}
	if p.GracefulLeave() {
		t.Error("nil plane reports GracefulLeave")
	}
	if p.LossRate() != 0 {
		t.Error("nil plane has non-zero loss rate")
	}
	for seq := uint32(0); seq < 100; seq++ {
		if p.Drop(metrics.MQuery, 1, 2, 42, seq) {
			t.Fatal("nil plane dropped a message")
		}
		if p.Jitter(metrics.MQuery, 1, 2, 42, seq) != 0 {
			t.Fatal("nil plane jittered a message")
		}
	}
}

func TestZeroLossNeverDrops(t *testing.T) {
	p := New(Config{Seed: 7})
	if p.Active() {
		t.Error("zero-loss plane reports Active")
	}
	for seq := uint32(0); seq < 10000; seq++ {
		if p.Drop(metrics.MConfirm, 3, 9, 1234, seq) {
			t.Fatal("zero-loss plane dropped a message")
		}
	}
}

func TestDropIsDeterministic(t *testing.T) {
	a := New(Config{Seed: 11, LossRate: 0.3})
	b := New(Config{Seed: 11, LossRate: 0.3})
	diff := 0
	for seq := uint32(0); seq < 5000; seq++ {
		x := a.Drop(metrics.MQuery, 5, 17, 99, seq)
		if y := b.Drop(metrics.MQuery, 5, 17, 99, seq); x != y {
			t.Fatalf("seq %d: same plane config disagrees (%v vs %v)", seq, x, y)
		}
		if x != a.Drop(metrics.MQuery, 5, 17, 100, seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("drop decisions ignore the stream key")
	}
}

func TestDropRateCalibration(t *testing.T) {
	for _, rate := range []float64{0.01, 0.05, 0.2, 0.5} {
		p := New(Config{Seed: 3, LossRate: rate})
		const n = 200000
		drops := 0
		for seq := uint32(0); seq < n; seq++ {
			if p.Drop(metrics.MAdFull, 1, 2, uint64(seq>>8), seq) {
				drops++
			}
		}
		got := float64(drops) / n
		// 6σ binomial tolerance.
		tol := 6 * math.Sqrt(rate*(1-rate)/n)
		if math.Abs(got-rate) > tol {
			t.Errorf("loss %v: observed %v (outside ±%v)", rate, got, tol)
		}
	}
}

func TestDecisionVariesWithIdentity(t *testing.T) {
	p := New(Config{Seed: 1, LossRate: 0.5})
	// Each perturbation of the message identity must flip the decision for
	// some stream key — i.e. every identity component feeds the hash.
	var flips [4]int
	for key := uint64(0); key < 100; key++ {
		base := p.Drop(metrics.MQuery, 1, 2, key, 0)
		variants := [...]bool{
			p.Drop(metrics.MQueryHit, 1, 2, key, 0),  // class
			p.Drop(metrics.MQuery, 2, 1, key, 0),     // direction
			p.Drop(metrics.MQuery, 1, 2, key+500, 0), // key
			p.Drop(metrics.MQuery, 1, 2, key, 1),     // seq
		}
		for i, v := range variants {
			if v != base {
				flips[i]++
			}
		}
	}
	for i, n := range flips {
		if n == 0 {
			t.Errorf("identity component %d never affected the decision", i)
		}
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	p := New(Config{Seed: 5, JitterMS: 30})
	seen := map[int64]bool{}
	for seq := uint32(0); seq < 2000; seq++ {
		j := p.Jitter(metrics.MQuery, 4, 8, 77, seq)
		if j < 0 || j > 30 {
			t.Fatalf("jitter %d out of [0,30]", j)
		}
		if j != p.Jitter(metrics.MQuery, 4, 8, 77, seq) {
			t.Fatal("jitter is not deterministic")
		}
		seen[j] = true
	}
	if len(seen) < 20 {
		t.Errorf("jitter covers only %d of 31 values over 2000 draws", len(seen))
	}
	if New(Config{Seed: 5}).Jitter(metrics.MQuery, 4, 8, 77, 0) != 0 {
		t.Error("jitter without JitterMS configured")
	}
}

func TestKeyDistinguishesEvents(t *testing.T) {
	seen := map[uint64]bool{}
	for tms := int64(0); tms < 50; tms++ {
		for node := overlay.NodeID(0); node < 50; node++ {
			k := Key(tms, node)
			if seen[k] {
				t.Fatalf("key collision at t=%d node=%d", tms, node)
			}
			seen[k] = true
		}
	}
	if Fold(Key(1, 1), 2) == Key(1, 1) {
		t.Error("Fold is a no-op")
	}
}

// TestPartitionMembership pins the partition semantics: cross-group pairs
// partitioned, same-group pairs not, nil group inert, and Active() lit by
// an engaged partition even at loss 0 (retry machinery must run).
func TestPartitionMembership(t *testing.T) {
	p := New(Config{Seed: 9})
	if p.PartitionEngaged() || p.Partitioned(0, 5) {
		t.Error("fresh plane reports a partition")
	}
	p.SetPartition([]int8{0, 0, 0, 1, 1, 1})
	if !p.PartitionEngaged() || !p.Active() {
		t.Error("engaged partition not reported Active")
	}
	if !p.Partitioned(0, 3) || !p.Partitioned(5, 2) {
		t.Error("cross-group pair not partitioned")
	}
	if p.Partitioned(0, 2) || p.Partitioned(3, 5) {
		t.Error("same-group pair partitioned")
	}
	p.SetPartition(nil)
	if p.PartitionEngaged() || p.Active() || p.Partitioned(0, 3) {
		t.Error("healed plane still partitioned/active")
	}
	var nilPlane *Plane
	if nilPlane.Partitioned(0, 1) || nilPlane.PartitionEngaged() {
		t.Error("nil plane reports a partition")
	}
}

// TestPartitionDoesNotPerturbDropStreams is the stream-key audit: a
// partition verdict is a pure membership lookup, so engaging or healing a
// partition must leave every Drop decision — the loss streams — exactly
// where it was. Any hash-stream consumption by the partition path would
// flip some of these.
func TestPartitionDoesNotPerturbDropStreams(t *testing.T) {
	p := New(Config{Seed: 21, LossRate: 0.3})
	type id struct {
		c        metrics.MsgClass
		src, dst overlay.NodeID
		key      uint64
		seq      uint32
	}
	var ids []id
	var before []bool
	for key := uint64(0); key < 200; key++ {
		for seq := uint32(0); seq < 5; seq++ {
			i := id{metrics.MsgClass(key % 3), overlay.NodeID(key % 7), overlay.NodeID(seq % 5), key, seq}
			ids = append(ids, i)
			before = append(before, p.Drop(i.c, i.src, i.dst, i.key, i.seq))
		}
	}
	check := func(phase string) {
		for k, i := range ids {
			if p.Drop(i.c, i.src, i.dst, i.key, i.seq) != before[k] {
				t.Fatalf("%s: drop decision %d changed", phase, k)
			}
		}
	}
	p.SetPartition([]int8{0, 0, 0, 0, 1, 1, 1})
	check("partition engaged")
	p.SetPartition(nil)
	check("after heal")
}

func TestNewValidates(t *testing.T) {
	for _, cfg := range []Config{{LossRate: -0.1}, {LossRate: 1}, {JitterMS: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
