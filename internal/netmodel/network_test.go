package netmodel

import (
	"math/rand/v2"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if got := c.NumTransit(); got != 144 {
		t.Errorf("NumTransit = %d, want 144", got)
	}
	if got := c.TotalNodes(); got != 51984 {
		t.Errorf("TotalNodes = %d, want 51,984 (paper §IV-A)", got)
	}
	if c.LatInterTransit != 50 || c.LatIntraTransit != 20 || c.LatTransitStub != 5 || c.LatIntraStub != 2 {
		t.Errorf("latencies %d/%d/%d/%d, want 50/20/5/2", c.LatInterTransit, c.LatIntraTransit, c.LatTransitStub, c.LatIntraStub)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.TransitDomains = 0 },
		func(c *Config) { c.TransitPerDomain = -1 },
		func(c *Config) { c.StubPerDomain = 0 },
		func(c *Config) { c.PIntraTransit = 1.5 },
		func(c *Config) { c.PIntraStub = -0.1 },
		func(c *Config) { c.LatIntraStub = -2 },
	}
	for i, m := range mods {
		c := DefaultConfig()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed Validate", i)
		}
	}
}

func TestGenerateFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale universe in -short mode")
	}
	nw := Generate(DefaultConfig())
	if nw.TotalNodes() != 51984 {
		t.Fatalf("TotalNodes = %d, want 51,984", nw.TotalNodes())
	}
	// Spot-check reachability: distances finite across the whole universe.
	rng := rand.New(rand.NewPCG(42, 0))
	for i := 0; i < 2000; i++ {
		a := PhysID(rng.IntN(nw.TotalNodes()))
		b := PhysID(rng.IntN(nw.TotalNodes()))
		d := nw.Distance(a, b)
		if d < 0 || d > 10000 {
			t.Fatalf("Distance(%d,%d) = %d, implausible", a, b, d)
		}
	}
}

func newSmall(t *testing.T) *Network {
	t.Helper()
	return Generate(SmallConfig())
}

func TestDistanceSelfZero(t *testing.T) {
	nw := newSmall(t)
	for _, id := range []PhysID{0, PhysID(nw.NumTransit()), PhysID(nw.TotalNodes() - 1)} {
		if d := nw.Distance(id, id); d != 0 {
			t.Errorf("Distance(%d,%d) = %d, want 0", id, id, d)
		}
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	nw := newSmall(t)
	n := nw.TotalNodes()
	prop := func(a, b uint32) bool {
		x, y := PhysID(int(a)%n), PhysID(int(b)%n)
		return nw.Distance(x, y) == nw.Distance(y, x)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDistancePositiveBetweenDistinct(t *testing.T) {
	nw := newSmall(t)
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 2000; i++ {
		a := PhysID(rng.IntN(nw.TotalNodes()))
		b := PhysID(rng.IntN(nw.TotalNodes()))
		if a == b {
			continue
		}
		if d := nw.Distance(a, b); d <= 0 {
			t.Fatalf("Distance(%d,%d) = %d, want > 0", a, b, d)
		}
	}
}

func TestIntraStubDistanceIsEvenSmallMultiple(t *testing.T) {
	nw := newSmall(t)
	cfg := nw.Config()
	// Two stub nodes in the same domain: distance = hops × 2 ms.
	base := PhysID(nw.NumTransit())
	for l := 1; l < cfg.StubPerDomain; l++ {
		d := nw.Distance(base, base+PhysID(l))
		if d%cfg.LatIntraStub != 0 {
			t.Errorf("intra-stub distance %d not a multiple of %d", d, cfg.LatIntraStub)
		}
		if d <= 0 || d > cfg.StubPerDomain*cfg.LatIntraStub {
			t.Errorf("intra-stub distance %d out of plausible range", d)
		}
	}
}

func TestCrossDomainDistanceIncludesUplinks(t *testing.T) {
	nw := newSmall(t)
	cfg := nw.Config()
	// First stub node of domain 0 vs first stub node of the last domain:
	// the path must include two 5 ms uplinks.
	a := PhysID(nw.NumTransit())
	b := PhysID(nw.TotalNodes() - cfg.StubPerDomain)
	if nw.DomainOf(a) == nw.DomainOf(b) {
		t.Fatal("test nodes unexpectedly in one domain")
	}
	if d := nw.Distance(a, b); d < 2*cfg.LatTransitStub {
		t.Errorf("cross-domain distance %d below two uplinks (%d)", d, 2*cfg.LatTransitStub)
	}
}

func TestTransitDistances(t *testing.T) {
	nw := newSmall(t)
	cfg := nw.Config()
	// Transit nodes in different domains must pay at least one 50 ms hop
	// unless... they cannot avoid it: every inter-domain edge costs 50.
	a, b := PhysID(0), PhysID(cfg.TransitPerDomain) // domain 0 vs domain 1
	if d := nw.Distance(a, b); d < cfg.LatInterTransit {
		t.Errorf("inter-domain transit distance %d < %d", d, cfg.LatInterTransit)
	}
	// Same-domain transit nodes are connected by 20 ms links only; the
	// domain has ≤ TransitPerDomain-1 path hops.
	c, d := PhysID(0), PhysID(1)
	if dist := nw.Distance(c, d); dist%cfg.LatIntraTransit != 0 && dist < cfg.LatInterTransit {
		t.Errorf("intra-domain transit distance %d not multiple of %d", dist, cfg.LatIntraTransit)
	}
}

func TestDomainOf(t *testing.T) {
	nw := newSmall(t)
	if got := nw.DomainOf(0); got != -1 {
		t.Errorf("DomainOf(transit) = %d, want -1", got)
	}
	per := nw.Config().StubPerDomain
	first := PhysID(nw.NumTransit())
	if got := nw.DomainOf(first); got != 0 {
		t.Errorf("DomainOf(first stub) = %d, want 0", got)
	}
	if got := nw.DomainOf(first + PhysID(per)); got != 1 {
		t.Errorf("DomainOf(second domain) = %d, want 1", got)
	}
}

func TestRandomNodesDistinct(t *testing.T) {
	nw := newSmall(t)
	rng := rand.New(rand.NewPCG(11, 0))
	k := nw.TotalNodes() / 3
	ids := nw.RandomNodes(k, rng)
	if len(ids) != k {
		t.Fatalf("got %d ids, want %d", len(ids), k)
	}
	seen := make(map[PhysID]bool, k)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		if int(id) < 0 || int(id) >= nw.TotalNodes() {
			t.Fatalf("id %d out of range", id)
		}
		seen[id] = true
	}
}

func TestRandomNodesPanicsWhenOversampled(t *testing.T) {
	nw := newSmall(t)
	defer func() {
		if recover() == nil {
			t.Error("RandomNodes(n+1) did not panic")
		}
	}()
	nw.RandomNodes(nw.TotalNodes()+1, rand.New(rand.NewPCG(1, 1)))
}

func TestDeterminism(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	rng := rand.New(rand.NewPCG(123, 0))
	for i := 0; i < 500; i++ {
		x := PhysID(rng.IntN(a.TotalNodes()))
		y := PhysID(rng.IntN(a.TotalNodes()))
		if a.Distance(x, y) != b.Distance(x, y) {
			t.Fatalf("same seed produced different universes at (%d,%d)", x, y)
		}
	}
	c := SmallConfig()
	c.Seed = 999
	diff := Generate(c)
	same := true
	for i := 0; i < 500 && same; i++ {
		x := PhysID(rng.IntN(a.TotalNodes()))
		y := PhysID(rng.IntN(a.TotalNodes()))
		if a.Distance(x, y) != diff.Distance(x, y) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical universes (suspicious)")
	}
}

func TestMaxDistanceBounds(t *testing.T) {
	nw := newSmall(t)
	maxd := nw.MaxDistance()
	rng := rand.New(rand.NewPCG(77, 0))
	for i := 0; i < 5000; i++ {
		a := PhysID(rng.IntN(nw.TotalNodes()))
		b := PhysID(rng.IntN(nw.TotalNodes()))
		if d := nw.Distance(a, b); d > maxd {
			t.Fatalf("Distance(%d,%d) = %d exceeds MaxDistance %d", a, b, d, maxd)
		}
	}
}

// TestMaxDistanceMemoized: repeated and concurrent calls return the
// uncached scan's value. Parallel experiment runs share one Network, so
// the memo must be race-free (this test runs under -race in `make race`).
func TestMaxDistanceMemoized(t *testing.T) {
	nw := newSmall(t)
	want := nw.computeMaxDistance()
	var wg sync.WaitGroup
	got := make([]int, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = nw.MaxDistance()
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Fatalf("concurrent MaxDistance[%d] = %d, want %d", i, g, want)
		}
	}
	if nw.MaxDistance() != want {
		t.Fatal("memoized value drifted")
	}
}

func TestLocatePanicsOutOfRange(t *testing.T) {
	nw := newSmall(t)
	defer func() {
		if recover() == nil {
			t.Error("Distance with out-of-range id did not panic")
		}
	}()
	nw.Distance(0, PhysID(nw.TotalNodes()+100000))
}

func BenchmarkDistance(b *testing.B) {
	nw := Generate(SmallConfig())
	rng := rand.New(rand.NewPCG(1, 1))
	pairs := make([][2]PhysID, 1024)
	for i := range pairs {
		pairs[i] = [2]PhysID{PhysID(rng.IntN(nw.TotalNodes())), PhysID(rng.IntN(nw.TotalNodes()))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		_ = nw.Distance(p[0], p[1])
	}
}

func BenchmarkGenerateFullScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Generate(DefaultConfig())
	}
}
