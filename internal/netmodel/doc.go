// Package netmodel implements the GT-ITM transit-stub physical network the
// paper's simulator runs on (§IV-A; Zegura, Calvert, Bhattacharjee [26]).
//
// The model is a two-level hierarchical Internet: transit domains whose
// nodes form the backbone, and stub domains hanging off individual transit
// nodes. The paper's configuration is
//
//   - 9 transit domains × 16 transit nodes = 144 transit nodes,
//   - 9 stub domains per transit node × 40 stub nodes = 51,840 stub nodes,
//   - 51,984 physical nodes total,
//   - the 9 transit domains fully connected at the top level,
//   - intra-transit-domain edges with probability 0.6,
//   - intra-stub-domain edges with probability 0.4,
//   - no edges between stub nodes of different stub domains,
//
// with link latencies 50 ms (inter-transit-domain), 20 ms (intra-transit-
// domain), 5 ms (transit→stub uplink) and 2 ms (intra-stub-domain).
//
// Only some physical nodes participate in the P2P overlay, but all of them
// contribute to network latency: Distance returns the shortest-path latency
// between any two physical nodes. The hierarchy makes this O(1) per query
// after an O(per-domain all-pairs) precomputation — per-stub-domain BFS hop
// matrices (all intra-stub edges cost the same) plus an all-pairs Dijkstra
// over the 144-node transit backbone. Stub-domain construction is
// parallelised across CPUs.
//
// Random intra-domain graphs are forced connected by seeding each domain
// with a random Hamiltonian path before sampling the probabilistic edges,
// so every pair of physical nodes has a finite distance.
package netmodel
