package netmodel

import (
	"fmt"
	"math/rand/v2"
)

// loc resolves a PhysID into its position in the hierarchy.
type loc struct {
	transit bool
	domain  int32 // stub-domain index (stub nodes only)
	local   int32 // index within the stub domain, or transit node index
}

func (nw *Network) locate(id PhysID) loc {
	if int(id) < nw.numTransit {
		return loc{transit: true, local: int32(id)}
	}
	s := int(id) - nw.numTransit
	per := nw.cfg.StubPerDomain
	d := s / per
	if d >= len(nw.domains) {
		panic(fmt.Sprintf("netmodel: PhysID %d out of range (%d nodes)", id, nw.TotalNodes()))
	}
	return loc{domain: int32(d), local: int32(s % per)}
}

// transitDist returns the backbone latency between transit nodes a and b.
func (nw *Network) transitDist(a, b int32) int {
	return int(nw.tdist[int(a)*nw.numTransit+int(b)])
}

// stubHops returns BFS hop count between two nodes of one stub domain.
func (d *stubDomain) stubHops(a, b int32) int {
	return int(d.hops[int(a)*int(d.n)+int(b)])
}

// climb returns the latency from stub node l of domain d up to the domain's
// parent transit node: intra-stub hops to the gateway plus the 5 ms uplink.
func (nw *Network) climb(d *stubDomain, local int32) int {
	return d.stubHops(local, d.gateway)*nw.cfg.LatIntraStub + nw.cfg.LatTransitStub
}

// Distance returns the shortest-path latency in milliseconds between two
// physical nodes. Paths follow the transit-stub hierarchy: stub→gateway→
// parent transit→backbone→parent transit→gateway→stub. Within one stub
// domain the direct intra-domain path is always at least as short as a
// detour through the parent (hop counts obey the triangle inequality and
// the uplink alone costs more than two intra-stub hops), so it is used
// directly.
func (nw *Network) Distance(a, b PhysID) int {
	if a == b {
		return 0
	}
	la, lb := nw.locate(a), nw.locate(b)
	switch {
	case la.transit && lb.transit:
		return nw.transitDist(la.local, lb.local)
	case la.transit:
		db := &nw.domains[lb.domain]
		return nw.transitDist(la.local, db.parent) + nw.climb(db, lb.local)
	case lb.transit:
		da := &nw.domains[la.domain]
		return nw.climb(da, la.local) + nw.transitDist(da.parent, lb.local)
	case la.domain == lb.domain:
		d := &nw.domains[la.domain]
		return d.stubHops(la.local, lb.local) * nw.cfg.LatIntraStub
	default:
		da, db := &nw.domains[la.domain], &nw.domains[lb.domain]
		return nw.climb(da, la.local) + nw.transitDist(da.parent, db.parent) + nw.climb(db, lb.local)
	}
}

// Loc is a resolved physical location: id's coordinates in the
// transit-stub hierarchy plus its precomputed climb cost to the backbone.
// Two Locs make pairwise latency an O(1) arithmetic (LocDistance) with no
// per-call locate division or gateway BFS-table walk. Overlay graphs
// resolve every host once at build time and share the vector across
// clones.
type Loc struct {
	Domain int32 // stub-domain index, or -1 for transit nodes
	Local  int32 // index within the stub domain, or transit node index
	Parent int32 // parent transit node (the node itself for transit nodes)
	Climb  int32 // ms from the node up to Parent (0 for transit nodes)
}

// Resolve returns id's location with the climb to its parent transit node
// precomputed.
func (nw *Network) Resolve(id PhysID) Loc {
	l := nw.locate(id)
	if l.transit {
		return Loc{Domain: -1, Local: l.local, Parent: l.local}
	}
	d := &nw.domains[l.domain]
	return Loc{Domain: l.domain, Local: l.local, Parent: d.parent, Climb: int32(nw.climb(d, l.local))}
}

// LocDistance is Distance over two resolved locations: on the cross-domain
// path it costs two precomputed climbs and one backbone-matrix lookup;
// within one stub domain it is a single hop-matrix read. It agrees with
// Distance(a, b) on every node pair (see TestLocDistanceAgreesWithDistance).
func (nw *Network) LocDistance(a, b Loc) int {
	if a.Domain == b.Domain && a.Domain >= 0 {
		// Same stub domain (including a == b: zero hops). The -1 transit
		// pseudo-domain must not take this branch — transit pairs have no
		// hop matrix — hence the a.Domain >= 0 guard.
		return nw.domains[a.Domain].stubHops(a.Local, b.Local) * nw.cfg.LatIntraStub
	}
	// Every other pair climbs to the backbone: a transit node's climb is 0
	// and its parent is itself, so the transit cases collapse into this
	// expression (tdist of a node to itself is 0).
	return int(a.Climb) + nw.transitDist(a.Parent, b.Parent) + int(b.Climb)
}

// DomainOf returns the stub-domain index of id, or -1 for transit nodes.
// Exposed for locality-aware tests and diagnostics.
func (nw *Network) DomainOf(id PhysID) int {
	l := nw.locate(id)
	if l.transit {
		return -1
	}
	return int(l.domain)
}

// RandomNodes samples k distinct physical node IDs uniformly. The paper
// randomly selects 10,000 P2P participants out of all 51,984 physical
// nodes. It panics if k exceeds the universe size.
func (nw *Network) RandomNodes(k int, rng *rand.Rand) []PhysID {
	n := nw.TotalNodes()
	if k > n {
		panic(fmt.Sprintf("netmodel: cannot sample %d of %d nodes", k, n))
	}
	// Partial Fisher–Yates over the full ID space.
	ids := make([]PhysID, n)
	for i := range ids {
		ids[i] = PhysID(i)
	}
	for i := 0; i < k; i++ {
		j := i + rng.IntN(n-i)
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids[:k]
}

// MaxDistance returns an upper bound on any pairwise latency in this
// universe, used to size histograms: two maximal climbs plus the backbone
// diameter. The network is immutable after Generate, so the scan over
// every stub domain runs once and the result is memoized.
func (nw *Network) MaxDistance() int {
	nw.maxDistOnce.Do(func() { nw.maxDist = nw.computeMaxDistance() })
	return nw.maxDist
}

func (nw *Network) computeMaxDistance() int {
	maxT := 0
	for _, d := range nw.tdist {
		if int(d) > maxT {
			maxT = int(d)
		}
	}
	maxClimb := 0
	for i := range nw.domains {
		d := &nw.domains[i]
		for l := int32(0); l < d.n; l++ {
			if c := nw.climb(d, l); c > maxClimb {
				maxClimb = c
			}
		}
	}
	return 2*maxClimb + maxT
}
