package netmodel

import (
	"math/rand/v2"
	"testing"
)

// TestTransitOnlyUniverse: a configuration without stub domains is valid
// (backbone-only simulations) and distances stay finite.
func TestTransitOnlyUniverse(t *testing.T) {
	c := SmallConfig()
	c.StubDomainsPerTransit = 0
	if err := c.Validate(); err != nil {
		t.Fatalf("transit-only config invalid: %v", err)
	}
	nw := Generate(c)
	if nw.TotalNodes() != c.NumTransit() {
		t.Fatalf("TotalNodes = %d, want %d", nw.TotalNodes(), c.NumTransit())
	}
	for i := 0; i < nw.TotalNodes(); i++ {
		for j := i + 1; j < nw.TotalNodes(); j += 7 {
			d := nw.Distance(PhysID(i), PhysID(j))
			if d <= 0 || d > 10000 {
				t.Fatalf("Distance(%d,%d) = %d", i, j, d)
			}
		}
	}
	if nw.MaxDistance() <= 0 {
		t.Error("MaxDistance must be positive for ≥2 nodes")
	}
}

// TestSingleTransitDomain: one domain means no 50 ms links anywhere.
func TestSingleTransitDomain(t *testing.T) {
	c := SmallConfig()
	c.TransitDomains = 1
	nw := Generate(c)
	rng := rand.New(rand.NewPCG(2, 2))
	for i := 0; i < 500; i++ {
		a := PhysID(rng.IntN(nw.TotalNodes()))
		b := PhysID(rng.IntN(nw.TotalNodes()))
		d := nw.Distance(a, b)
		// Upper bound: two maximal climbs + intra-domain transit paths;
		// with one domain no path needs an inter-domain hop, so distances
		// stay well under the multi-domain worst case.
		if d > 2*(int(c.StubPerDomain)*c.LatIntraStub+c.LatTransitStub)+c.TransitPerDomain*c.LatIntraTransit {
			t.Fatalf("single-domain distance %d implausible", d)
		}
	}
}

// TestDenseAndSparseDomains: edge probabilities at the extremes still
// produce connected, sane universes (the Hamiltonian-path seed guarantees
// connectivity at p=0).
func TestDenseAndSparseDomains(t *testing.T) {
	for _, p := range []float64{0, 1} {
		c := SmallConfig()
		c.PIntraTransit = p
		c.PIntraStub = p
		nw := Generate(c)
		a := PhysID(0)
		b := PhysID(nw.TotalNodes() - 1)
		if d := nw.Distance(a, b); d <= 0 {
			t.Errorf("p=%v: distance %d", p, d)
		}
	}
}

// TestIsTransit verifies the ID-space split.
func TestIsTransit(t *testing.T) {
	nw := Generate(SmallConfig())
	if !nw.IsTransit(0) || !nw.IsTransit(PhysID(nw.NumTransit()-1)) {
		t.Error("transit prefix wrong")
	}
	if nw.IsTransit(PhysID(nw.NumTransit())) {
		t.Error("first stub reported as transit")
	}
}

// TestGeneratePanicsOnInvalidConfig ensures configuration errors fail
// fast.
func TestGeneratePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Generate with invalid config did not panic")
		}
	}()
	c := SmallConfig()
	c.PIntraStub = 2
	Generate(c)
}
