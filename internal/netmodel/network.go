package netmodel

import (
	"container/heap"
	"math/rand/v2"
	"runtime"
	"sync"
)

// PhysID identifies a physical node. Transit nodes occupy [0, NumTransit);
// stub nodes follow, grouped by stub domain.
type PhysID int32

// Network is a generated transit-stub universe with an O(1) shortest-path
// latency oracle. It is immutable after Generate and safe for concurrent
// use.
type Network struct {
	cfg        Config
	numTransit int

	// tdist[i*numTransit+j] is the shortest-path latency in ms between
	// transit nodes i and j.
	tdist []uint16

	// One entry per stub domain, in PhysID order.
	domains []stubDomain

	// maxDist memoizes MaxDistance: the network is immutable after
	// Generate, so the bound is computed once (thread-safely — concurrent
	// experiment runs share one Network).
	maxDistOnce sync.Once
	maxDist     int
}

// stubDomain holds a stub domain's parent attachment and its all-pairs hop
// matrix (every intra-stub edge has the same latency, so shortest paths are
// BFS hop counts).
type stubDomain struct {
	parent  int32   // transit node the domain attaches to
	gateway int32   // local index of the stub node carrying the uplink
	n       int32   // nodes in the domain
	hops    []uint8 // n×n BFS hop counts
}

// Generate builds a universe from cfg. It panics on an invalid
// configuration (validated explicitly so simulator setup fails fast).
func Generate(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nw := &Network{cfg: cfg, numTransit: cfg.NumTransit()}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	nw.buildTransit(rng)
	nw.buildStubDomains(rng)
	return nw
}

// Config returns the configuration the network was generated from.
func (nw *Network) Config() Config { return nw.cfg }

// TotalNodes returns the number of physical nodes.
func (nw *Network) TotalNodes() int { return nw.cfg.TotalNodes() }

// NumTransit returns the number of transit nodes.
func (nw *Network) NumTransit() int { return nw.numTransit }

// IsTransit reports whether id is a transit node.
func (nw *Network) IsTransit(id PhysID) bool { return int(id) < nw.numTransit }

// buildTransit constructs the 144-node backbone and its all-pairs distance
// matrix. Each domain gets a random Hamiltonian path (connectivity) plus
// probabilistic intra-domain edges; each domain pair gets one inter-domain
// edge between uniformly chosen endpoints ("nine transit domains at the top
// level are fully connected").
func (nw *Network) buildTransit(rng *rand.Rand) {
	n := nw.numTransit
	per := nw.cfg.TransitPerDomain
	adj := make([][]edge, n)

	addEdge := func(a, b int, w uint16) {
		adj[a] = append(adj[a], edge{to: int32(b), w: w})
		adj[b] = append(adj[b], edge{to: int32(a), w: w})
	}

	for d := 0; d < nw.cfg.TransitDomains; d++ {
		base := d * per
		// Hamiltonian path over a random permutation keeps the domain
		// connected regardless of the probabilistic edges.
		perm := rng.Perm(per)
		for i := 1; i < per; i++ {
			addEdge(base+perm[i-1], base+perm[i], uint16(nw.cfg.LatIntraTransit))
		}
		for i := 0; i < per; i++ {
			for j := i + 1; j < per; j++ {
				if rng.Float64() < nw.cfg.PIntraTransit && !containsEdge(adj[base+i], int32(base+j)) {
					addEdge(base+i, base+j, uint16(nw.cfg.LatIntraTransit))
				}
			}
		}
	}
	for d1 := 0; d1 < nw.cfg.TransitDomains; d1++ {
		for d2 := d1 + 1; d2 < nw.cfg.TransitDomains; d2++ {
			a := d1*per + rng.IntN(per)
			b := d2*per + rng.IntN(per)
			addEdge(a, b, uint16(nw.cfg.LatInterTransit))
		}
	}

	nw.tdist = make([]uint16, n*n)
	for src := 0; src < n; src++ {
		dijkstra(adj, src, nw.tdist[src*n:(src+1)*n])
	}
}

// buildStubDomains constructs every stub domain and its BFS hop matrix,
// fanning the work out across CPUs (domain construction is independent).
func (nw *Network) buildStubDomains(rng *rand.Rand) {
	per := nw.cfg.StubPerDomain
	total := nw.numTransit * nw.cfg.StubDomainsPerTransit
	nw.domains = make([]stubDomain, total)

	// Pre-draw each domain's RNG seed from the master stream so the result
	// is deterministic regardless of goroutine scheduling.
	seeds := make([]uint64, total)
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}

	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (total + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, total)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for d := lo; d < hi; d++ {
				drng := rand.New(rand.NewPCG(seeds[d], uint64(d)))
				nw.domains[d] = buildStubDomain(int32(d/nw.cfg.StubDomainsPerTransit), per, nw.cfg.PIntraStub, drng)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func buildStubDomain(parent int32, n int, p float64, rng *rand.Rand) stubDomain {
	adj := make([][]int32, n)
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], int32(b))
		adj[b] = append(adj[b], int32(a))
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addEdge(perm[i-1], perm[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p && !containsInt32(adj[i], int32(j)) {
				addEdge(i, j)
			}
		}
	}
	d := stubDomain{parent: parent, gateway: int32(rng.IntN(n)), n: int32(n), hops: make([]uint8, n*n)}
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		row := d.hops[src*n : (src+1)*n]
		for i := range row {
			row[i] = 0xFF
		}
		row[src] = 0
		queue = append(queue[:0], int32(src))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if row[v] == 0xFF {
					row[v] = row[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return d
}

type edge struct {
	to int32
	w  uint16
}

func containsEdge(es []edge, to int32) bool {
	for _, e := range es {
		if e.to == to {
			return true
		}
	}
	return false
}

func containsInt32(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// dijkstra fills dist with shortest-path latencies from src over adj.
func dijkstra(adj [][]edge, src int, dist []uint16) {
	const inf = ^uint16(0)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	pq := &distHeap{{node: int32(src), d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		for _, e := range adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{node: e.to, d: nd})
			}
		}
	}
}

type distItem struct {
	node int32
	d    uint16
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
