package netmodel

import (
	"math/rand/v2"
	"testing"
)

// TestLocDistanceAgreesWithDistance checks the precomputed-climb fast path
// against the reference Distance over every pair class: transit–transit,
// transit–stub, same-domain stub pairs, cross-domain stub pairs, and
// self-distances.
func TestLocDistanceAgreesWithDistance(t *testing.T) {
	nw := Generate(SmallConfig())
	n := nw.TotalNodes()
	locs := make([]Loc, n)
	for i := 0; i < n; i++ {
		locs[i] = nw.Resolve(PhysID(i))
	}

	check := func(a, b PhysID) {
		t.Helper()
		want := nw.Distance(a, b)
		got := nw.LocDistance(locs[a], locs[b])
		if got != want {
			t.Fatalf("LocDistance(%d, %d) = %d, Distance = %d", a, b, got, want)
		}
	}

	// All transit pairs (including self) and each transit against a spread
	// of stub nodes.
	for a := 0; a < nw.NumTransit(); a++ {
		for b := 0; b < nw.NumTransit(); b++ {
			check(PhysID(a), PhysID(b))
		}
		for b := nw.NumTransit(); b < n; b += 97 {
			check(PhysID(a), PhysID(b))
			check(PhysID(b), PhysID(a))
		}
	}
	// Same-domain pairs: consecutive stub IDs share a domain most of the
	// time; walk a window inside the first domain explicitly.
	per := nw.Config().StubPerDomain
	for i := 0; i < per; i++ {
		for j := 0; j < per; j++ {
			check(PhysID(nw.NumTransit()+i), PhysID(nw.NumTransit()+j))
		}
	}
	// Random pairs across the whole universe.
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 20000; i++ {
		a, b := PhysID(rng.IntN(n)), PhysID(rng.IntN(n))
		check(a, b)
	}
}
