package netmodel

import "fmt"

// Config describes a transit-stub universe. All latencies are in
// milliseconds.
type Config struct {
	TransitDomains        int // top-level domains, fully connected pairwise
	TransitPerDomain      int // transit nodes per transit domain
	StubDomainsPerTransit int // stub domains attached to each transit node
	StubPerDomain         int // stub nodes per stub domain

	PIntraTransit float64 // edge probability between transit nodes in a domain
	PIntraStub    float64 // edge probability between stub nodes in a domain

	LatInterTransit int // ms, link between transit nodes in different domains
	LatIntraTransit int // ms, link between transit nodes in one domain
	LatTransitStub  int // ms, uplink from a stub domain's gateway to its transit node
	LatIntraStub    int // ms, link between stub nodes in one domain

	Seed uint64
}

// DefaultConfig returns the paper's exact GT-ITM parameters: 51,984
// physical nodes with 50/20/5/2 ms latencies.
func DefaultConfig() Config {
	return Config{
		TransitDomains:        9,
		TransitPerDomain:      16,
		StubDomainsPerTransit: 9,
		StubPerDomain:         40,
		PIntraTransit:         0.6,
		PIntraStub:            0.4,
		LatInterTransit:       50,
		LatIntraTransit:       20,
		LatTransitStub:        5,
		LatIntraStub:          2,
		Seed:                  1,
	}
}

// SmallConfig returns a reduced universe (~2,600 physical nodes) with the
// same latency constants, for tests and the scaled benchmark preset.
func SmallConfig() Config {
	c := DefaultConfig()
	c.TransitDomains = 4
	c.TransitPerDomain = 8
	c.StubDomainsPerTransit = 4
	c.StubPerDomain = 20
	return c
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.TransitDomains <= 0 || c.TransitPerDomain <= 0:
		return fmt.Errorf("netmodel: need positive transit domain geometry, got %d×%d", c.TransitDomains, c.TransitPerDomain)
	case c.StubDomainsPerTransit < 0 || c.StubPerDomain <= 0:
		return fmt.Errorf("netmodel: need positive stub geometry, got %d×%d", c.StubDomainsPerTransit, c.StubPerDomain)
	case c.PIntraTransit < 0 || c.PIntraTransit > 1:
		return fmt.Errorf("netmodel: PIntraTransit %v out of [0,1]", c.PIntraTransit)
	case c.PIntraStub < 0 || c.PIntraStub > 1:
		return fmt.Errorf("netmodel: PIntraStub %v out of [0,1]", c.PIntraStub)
	case c.LatInterTransit < 0 || c.LatIntraTransit < 0 || c.LatTransitStub < 0 || c.LatIntraStub < 0:
		return fmt.Errorf("netmodel: negative latency")
	}
	return nil
}

// NumTransit returns the number of transit nodes the configuration yields.
func (c Config) NumTransit() int { return c.TransitDomains * c.TransitPerDomain }

// NumStub returns the number of stub nodes the configuration yields.
func (c Config) NumStub() int {
	return c.NumTransit() * c.StubDomainsPerTransit * c.StubPerDomain
}

// TotalNodes returns the total number of physical nodes.
func (c Config) TotalNodes() int { return c.NumTransit() + c.NumStub() }
