package core

import (
	"cmp"
	"slices"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// candidate is a confirmable ad match: the source to confirm with, the
// moment the requester can send (t0, or the arrival of the ads reply that
// carried the ad), and the round-trip time to the source.
type candidate struct {
	src   overlay.NodeID
	avail sim.Clock
	rtt   sim.Clock
}

// contactAttempts returns how many times one search contact is tried.
// Retries exist only to survive a lossy network: without an active fault
// plane every contact is attempted exactly once, whatever RetryAttempts
// says, which keeps the zero-loss replay byte-identical to the paper's
// reliable model.
func (s *Scheme) contactAttempts() int {
	if !s.sys.Faults().Active() {
		return 1
	}
	return max(1, s.cfg.RetryAttempts)
}

// Search implements sim.Scheme: the ASAP_search algorithm of Table I.
// Phase 1 scans the local ads cache and confirms the best matches with the
// ad sources (one-hop search). If that yields nothing, phase 2 requests
// interest-matching ads from all peers within AdsRequestHops, merges the
// replies into the cache, and confirms again.
//
// The query's Bloom probes are precomputed once; the cache scan then tests
// filter words directly instead of re-hashing every term per cached ad.
func (s *Scheme) Search(ev *trace.Event) metrics.SearchResult {
	p := ev.Node
	t0 := ev.Time
	sc := s.getScratch()
	defer s.putScratch(sc)
	sc.fkey = faults.Key(ev.Time, ev.Node)
	for _, term := range ev.Terms {
		sc.keys = append(sc.keys, uint64(term))
	}
	sc.probes = bloom.AppendKeyProbes(sc.probes, sc.keys)
	sc.qa.reset(&s.slots, sc.probes)

	// Hierarchical mode: a leaf routes its request through its super peer
	// (one extra round trip and two extra messages); the search proper
	// then runs at the super peer. The uplink request is retried like any
	// other contact; the downlink reply's fate is drawn now and applied at
	// the success returns (the whole search's bytes are spent either way).
	uplinkMS := sim.Clock(0)
	var uplinkBytes int64
	extraHops := 0
	downOK := true
	if rp := s.repr(p); rp != p {
		if rp < 0 {
			return metrics.SearchResult{} // detached leaf: nowhere to route
		}
		uplinkMS = sim.Clock(s.sys.Latency(p, rp))
		up := sim.QueryBytes(len(ev.Terms))
		down := sim.QueryHitBytes()
		attempts := s.contactAttempts()
		routed := false
		for a := 0; a < attempts; a++ {
			if a > 0 {
				s.sys.CountRetry(t0)
				t0 += 2*uplinkMS + sim.Clock(s.cfg.RetryTimeoutMS)
			}
			uplinkBytes += int64(up)
			if s.sys.Deliver(t0, metrics.MConfirm, up, p, rp, sc.fkey, sc.nextSeq()) {
				routed = true
				break
			}
		}
		if !routed {
			s.sys.CountTimeout(t0)
			return metrics.SearchResult{Bytes: uplinkBytes}
		}
		s.sys.Account(t0, metrics.MConfirm, down)
		uplinkBytes += int64(down)
		downOK = s.sys.Arrives(t0, metrics.MConfirm, rp, p, sc.fkey, sc.nextSeq())
		extraHops = 1
		p = rp
		t0 += uplinkMS
	}

	tPhase1 := s.obs.Begin()
	ns := &s.nodes[p]
	ns.mu.Lock()
	s.checkStable()
	if s.cfg.RefreshPeriodSec > 0 {
		// The minSeen watermark bounds every entry's lastSeen from below,
		// so the expiry sweep runs only when something can actually expire.
		window := sim.Clock(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec) * 1000
		if deadline := t0 - window; ns.minSeen < deadline {
			ns.dropStale(deadline)
		}
	}
	// Scan the cache in insertion order through the query accumulator: one
	// word-AND pass per touched signature block, then a bit test per entry
	// (see adindex.go).
	srcs := ns.scanCache(&sc.qa, sc.srcs[:0])
	ns.mu.Unlock()
	sc.srcs = srcs
	if len(srcs) > 0 {
		s.obs.Count(t0, obs.CCacheHit)
	} else {
		s.obs.Count(t0, obs.CCacheMiss)
	}
	cands := sc.cands[:0]
	for _, src := range srcs {
		cands = append(cands, candidate{src: src, avail: t0, rtt: 2 * sim.Clock(s.sys.Latency(p, src))})
	}
	sc.cands = cands

	var bytes int64
	confirmed := sc.confirmed
	hits, resp, b := s.confirmRound(p, ev.Terms, cands, confirmed, sc)
	bytes += b + uplinkBytes
	s.obs.End(obs.PSearchPhase1, tPhase1)
	// Table I: phase 2 runs when the cache yielded nothing, or when "more
	// responses [are] needed" than phase 1 confirmed.
	if hits >= s.cfg.MinResults || s.cfg.AdsRequestHops == 0 {
		if hits > 0 {
			if !downOK {
				s.sys.CountTimeout(t0)
				return metrics.SearchResult{Bytes: bytes}
			}
			return metrics.SearchResult{Success: true, ResponseMS: resp - t0 + 2*uplinkMS, Bytes: bytes, Hops: 1 + extraHops, Hits: hits}
		}
		return metrics.SearchResult{Bytes: bytes}
	}

	// Phase 2: pull ads from the h-hop neighbourhood and retry.
	tPhase2 := s.obs.Begin()
	more, b2 := s.adsRequest(t0, p, sc, sc.probes, ev.Terms)
	bytes += b2
	fresh := more[:0]
	for _, c := range more {
		if !confirmed[c.src] {
			fresh = append(fresh, c)
		}
	}
	hits2, resp2, b := s.confirmRound(p, ev.Terms, fresh, confirmed, sc)
	bytes += b
	s.obs.End(obs.PSearchPhase2, tPhase2)
	if hits+hits2 == 0 {
		return metrics.SearchResult{Bytes: bytes}
	}
	if !downOK {
		// The super peer found results but its reply to the leaf was lost:
		// the requester observes a failed (timed-out) search.
		s.sys.CountTimeout(t0)
		return metrics.SearchResult{Bytes: bytes}
	}
	// The first answer wins: a phase-1 hit keeps its one-hop latency even
	// when phase 2 only ran for additional results.
	hops := 1 + extraHops
	if hits == 0 {
		resp = resp2
		hops = 2 + extraHops
	} else if hits2 > 0 && resp2 < resp {
		resp = resp2
	}
	return metrics.SearchResult{Success: true, ResponseMS: resp - t0 + 2*uplinkMS, Bytes: bytes, Hops: hops, Hits: hits + hits2}
}

// confirmRound sends content confirmations to up to MaxConfirms candidates
// in parallel and returns the number of positive replies, the earliest
// positive reply time, and the traffic spent. Confirmations are checked
// against the source's real contents, so Bloom false positives,
// out-of-date filters and departed sources all surface here. All
// candidates tried are recorded in confirmed.
//
// Under an active fault plane each contact gets RetryAttempts tries — a
// lost request, a dead source, or a lost reply all look the same to the
// requester: silence until the timeout. A contact that stays silent
// through its last attempt has its ad evicted from the cache, the
// on-demand liveness cleanup of the reliable dead-source path generalised
// to lossy links (a live source whose ad was evicted re-advertises within
// a refresh period).
func (s *Scheme) confirmRound(p overlay.NodeID, terms []content.Keyword, cands []candidate, confirmed map[overlay.NodeID]bool, sc *searchScratch) (int, sim.Clock, int64) {
	if len(cands) == 0 {
		return 0, 0, 0
	}
	// The comparator totally orders candidates (src is unique within a
	// round), so the result is deterministic whatever the sort algorithm.
	slices.SortFunc(cands, func(a, b candidate) int {
		if c := cmp.Compare(a.avail+a.rtt, b.avail+b.rtt); c != 0 {
			return c
		}
		return cmp.Compare(a.src, b.src)
	})
	if len(cands) > s.cfg.MaxConfirms {
		cands = cands[:s.cfg.MaxConfirms]
	}

	attempts := s.contactAttempts()
	var bytes int64
	best := sim.Clock(-1)
	positives := 0
	for _, c := range cands {
		confirmed[c.src] = true
		// Both confirmation verdicts are constant for the query's duration:
		// liveness only changes at state events, which the runner never
		// interleaves with searches, and groupMatches is a pure read. Hoisting
		// them out of the retry loop changes nothing observable and gives the
		// peering seam a single point to resolve the whole contact — one
		// exchange per candidate, whatever the retry schedule does.
		alive := s.sys.G.Alive(c.src)
		match := alive && s.groupMatches(c.src, terms)
		if s.peering != nil {
			alive, match = s.peering.Confirm(p, c.src, terms, alive, match)
		}
		cb := sim.ConfirmBytes(len(terms))
		sendAt := c.avail
		answered := false
		var reply sim.Clock
		for a := 0; a < attempts; a++ {
			if a > 0 {
				s.sys.CountRetry(sendAt)
				sendAt += c.rtt + sim.Clock(s.cfg.RetryTimeoutMS)
			}
			bytes += int64(cb)
			if !s.sys.Deliver(sendAt, metrics.MConfirm, cb, p, c.src, sc.fkey, sc.nextSeq()) {
				continue // request lost in transit
			}
			if !alive {
				continue // source departed: no reply will ever come
			}
			rb := sim.ConfirmReplyBytes()
			bytes += int64(rb)
			rseq := sc.nextSeq()
			if !s.sys.Deliver(sendAt, metrics.MConfirm, rb, c.src, p, sc.fkey, rseq) {
				continue // reply lost: same silence as a dead source
			}
			answered = true
			reply = sendAt + c.rtt + s.sys.JitterMS(metrics.MConfirm, c.src, p, sc.fkey, rseq)
			break
		}
		if !answered {
			// Every attempt timed out. Drop the ad so later searches stop
			// paying for this contact — on-demand liveness detection
			// complementing refresh-based expiry.
			s.sys.CountTimeout(sendAt)
			ns := &s.nodes[p]
			ns.mu.Lock()
			s.checkStable()
			ns.drop(c.src)
			ns.mu.Unlock()
			continue
		}
		if !match {
			s.obs.Count(sendAt, obs.CConfirmNeg)
			continue // false positive or stale index: negative reply
		}
		s.obs.Count(sendAt, obs.CConfirmPos)
		positives++
		if best < 0 || reply < best {
			best = reply
		}
	}
	return positives, best, bytes
}

// adsRequest floods an ads request over the h-hop neighbourhood of p,
// merges the replied ads into p's cache, and returns the candidates among
// them whose filters pass every query probe. The second result is the
// traffic this cost. Returned slices are backed by sc.
//
// Reply contents depend on the request flavour. A join-time pull
// (probes == nil) returns every cached ad whose topics intersect the
// requester's interests, exactly Table I's requestAdFromNeighbors(i, h,
// I(p)). A search-time pull additionally has the neighbour filter its
// cache against the query terms — the neighbour runs the same Bloom match
// the requester would run on the replied set, so only useful ads travel.
// This keeps miss-path replies a few ads instead of the neighbour's whole
// interest-overlapping cache; the requester's subsequent lookup over the
// replied ads is unchanged. Neighbours never serve entries their own
// staleness window has expired.
//
// Every reached peer replies, even with an empty ad list, so on a lossy
// network "not one reply arrived" is the requester's retry signal: the
// whole request flood is re-issued (with fresh per-copy drop decisions)
// up to RetryAttempts times before the phase is abandoned.
func (s *Scheme) adsRequest(t sim.Clock, p overlay.NodeID, sc *searchScratch, probes []bloom.Probe, terms []content.Keyword) ([]candidate, int64) {
	interests := s.groupInterests(p)
	attempts := s.contactAttempts()
	var bytes int64
	offers := sc.offers[:0]
	sent := false
	arrived := false
	tA := t
	for a := 0; a < attempts; a++ {
		if a > 0 {
			s.sys.CountRetry(tA)
			tA += sim.Clock(s.cfg.RetryTimeoutMS)
		}
		targets, reqMsgs := s.hopNeighborhood(tA, p, s.cfg.AdsRequestHops, sc)
		if reqMsgs == 0 {
			break // no live peers to ask; nothing was (or will be) sent
		}
		sent = true
		reqBytes := int64(reqMsgs) * int64(sim.AdsRequestBytes())
		s.sys.Account(tA, metrics.MAdsRequest, int(reqBytes))
		bytes += reqBytes

		staleBefore := sim.Clock(minClock)
		if s.cfg.RefreshPeriodSec > 0 {
			staleBefore = tA - sim.Clock(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec)*1000
		}
		// Search-time pulls filter offered ads through the query
		// accumulator; join-time pulls (probes == nil) serve unfiltered.
		var qa *queryAcc
		if probes != nil {
			qa = &sc.qa
		}
		for _, tg := range targets {
			q := &s.nodes[tg.node]
			q.mu.Lock()
			s.checkStable()
			serve := sc.serve[:0]
			if pub := q.published; pub != nil && s.cfg.MaxAdsPerReply > 0 &&
				pub.src != p && pub.topics.Intersects(interests) &&
				(qa == nil || qa.matches(pub)) {
				serve = append(serve, pub)
			}
			// Serve cache entries in insertion order: under MaxAdsPerReply the
			// subset offered must not depend on anything but replay state, or
			// two replays of one run diverge.
			serve = q.serveAds(qa, serve, interests, staleBefore, p, s.cfg.MaxAdsPerReply)
			q.mu.Unlock()
			sc.serve = serve
			if s.peering != nil && probes != nil {
				// The seam sees the serve AFTER the lock is released: snapshots
				// are immutable, so the projection needs no lock, and the
				// peering implementation is free to do network I/O.
				s.peering.ServeAds(p, tg.node, interests, staleBefore, terms, appendServed(nil, serve))
			}
			payload := 0
			for _, snap := range serve {
				payload += sim.AdHeaderBytes + snap.fullWire
			}
			reply := sim.AdsReplyBytes(payload)
			bytes += int64(reply)
			rseq := sc.nextSeq()
			if !s.sys.Deliver(tA, metrics.MAdsRequest, reply, tg.node, p, sc.fkey, rseq) {
				continue // the whole reply is one message; it was lost
			}
			arrived = true
			avail := tA + tg.pathLat + sim.Clock(s.sys.Latency(tg.node, p)) +
				s.sys.JitterMS(metrics.MAdsRequest, tg.node, p, sc.fkey, rseq)
			for _, snap := range serve {
				offers = append(offers, adOffer{snap: snap, avail: avail})
			}
		}
		if arrived {
			break // at least one peer answered (possibly with zero ads)
		}
	}
	if sent && !arrived {
		s.sys.CountTimeout(tA)
	}
	sc.offers = offers

	// Merge all offered ads into p's cache, collecting term matches. The
	// phase-1 candidates are dead by now, so their scratch space is reused.
	ns := &s.nodes[p]
	cands := sc.cands[:0]
	seen := sc.seen
	ns.mu.Lock()
	s.checkStable()
	for _, of := range offers {
		ns.store(of.snap, adFull, of.avail, s.cfg.CacheCapacity)
		if probes != nil && sc.qa.matches(of.snap) {
			if i, dup := seen[of.snap.src]; dup {
				if of.avail < cands[i].avail {
					cands[i].avail = of.avail
				}
				continue
			}
			seen[of.snap.src] = len(cands)
			cands = append(cands, candidate{
				src:   of.snap.src,
				avail: of.avail,
				rtt:   2 * sim.Clock(s.sys.Latency(p, of.snap.src)),
			})
		}
	}
	ns.mu.Unlock()
	sc.cands = cands
	return cands, bytes
}

// hopTarget is one reachable peer of an ads request with the one-way
// request path latency.
type hopTarget struct {
	node    overlay.NodeID
	pathLat sim.Clock
}

// hopNeighborhood returns the peers an ads request flooded to radius h
// from p actually reaches (excluding p) and the number of request
// messages the duplicate-suppressed flood sends. Under a fault plane a
// request copy can be lost — it still counts as sent, but the node behind
// it is only reached via surviving copies, so drops prune whole branches
// of the multi-hop case. The returned slice is backed by sc; the BFS
// tracks visited nodes in sc's epoch-stamped slices, so the multi-hop
// case does no per-query map work.
func (s *Scheme) hopNeighborhood(t sim.Clock, p overlay.NodeID, h int, sc *searchScratch) ([]hopTarget, int) {
	if h <= 0 {
		return nil, 0
	}
	out := sc.targets[:0]
	if h == 1 {
		// The common case: direct neighbours, one request each.
		msgs := 0
		for _, nb := range s.eligibleView(p) {
			msgs++
			if !s.sys.Arrives(t, metrics.MAdsRequest, p, nb, sc.fkey, sc.nextSeq()) {
				continue
			}
			out = append(out, hopTarget{node: nb, pathLat: sim.Clock(s.sys.Latency(p, nb))})
		}
		sc.targets = out
		return out, msgs
	}
	visited, pathLat := sc.bfsState(s.sys.NumNodes())
	epoch := sc.epoch
	visited[p] = epoch
	pathLat[p] = 0
	frontier := append(sc.frontier[:0], p)
	next := sc.next[:0]
	msgs := 0
	for hop := 1; hop <= h && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, u := range frontier {
			for _, nb := range s.eligibleView(u) {
				msgs++
				if !s.sys.Arrives(t, metrics.MAdsRequest, u, nb, sc.fkey, sc.nextSeq()) {
					continue // copy lost: nb may still arrive via another edge
				}
				if visited[nb] == epoch {
					continue
				}
				visited[nb] = epoch
				pathLat[nb] = pathLat[u] + sim.Clock(s.sys.Latency(u, nb))
				out = append(out, hopTarget{node: nb, pathLat: pathLat[nb]})
				next = append(next, nb)
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	sc.targets = out
	return out, msgs
}

// minClock is the lowest representable virtual time; used to disable the
// staleness filter when refreshing is off.
const minClock = -1 << 62
