package core

import (
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Hierarchical (super-peer) helpers, per the paper's footnote 3. In flat
// mode every node represents itself and all helpers degenerate to the
// single-node case at zero cost.

// repr returns the node responsible for n's ads: n itself in flat mode or
// for super peers, n's parent super peer for leaves, -1 for a detached
// leaf.
func (s *Scheme) repr(n overlay.NodeID) overlay.NodeID {
	if !s.cfg.Hierarchical {
		return n
	}
	return s.sys.G.SuperOf(n)
}

// cacheEligible reports whether v participates in ad caching and
// processing — everyone in flat mode, super peers only in hierarchical
// mode.
func (s *Scheme) cacheEligible(v overlay.NodeID) bool {
	return !s.cfg.Hierarchical || s.sys.G.IsSuper(v)
}

// eligibleView returns n's live, cache-eligible neighbours as the
// overlay's incrementally maintained packed view — all live neighbours in
// flat mode, live super-peer neighbours in hierarchical mode. The view
// preserves exact adjacency order, so it is element-for-element identical
// to the old `Alive(nb) && cacheEligible(nb)` filtered scan and every RNG
// draw consuming it replays byte-identically. The slice is shared with the
// graph and valid until the next overlay mutation.
func (s *Scheme) eligibleView(n overlay.NodeID) []overlay.NodeID {
	if s.cfg.Hierarchical {
		return s.sys.G.LiveSuperNeighbors(n)
	}
	return s.sys.G.LiveNeighbors(n)
}

// eachGroupMember invokes fn for every live node whose content rp
// represents: rp itself plus, in hierarchical mode, its attached leaves.
func (s *Scheme) eachGroupMember(rp overlay.NodeID, fn func(overlay.NodeID) bool) {
	if !fn(rp) {
		return
	}
	if !s.cfg.Hierarchical {
		return
	}
	for _, leaf := range s.sys.G.LeavesOf(rp) {
		if !fn(leaf) {
			return
		}
	}
}

// groupMatches reports whether any node represented by rp shares a
// document matching all terms — the hierarchical confirmation ground
// truth.
func (s *Scheme) groupMatches(rp overlay.NodeID, terms []content.Keyword) bool {
	match := false
	s.eachGroupMember(rp, func(m overlay.NodeID) bool {
		if s.sys.NodeMatches(m, terms) {
			match = true
			return false
		}
		return true
	})
	return match
}

// groupInterests returns the union of interests across rp's group; a
// super peer caches on behalf of all its leaves.
func (s *Scheme) groupInterests(rp overlay.NodeID) content.ClassSet {
	if !s.cfg.Hierarchical {
		return s.sys.Interests(rp)
	}
	var set content.ClassSet
	s.eachGroupMember(rp, func(m overlay.NodeID) bool {
		set |= s.sys.Interests(m)
		return true
	})
	return set
}

// groupTopics returns T(a) for rp's aggregate ad: the classes of every
// document in the group.
func (s *Scheme) groupTopics(rp overlay.NodeID) content.ClassSet {
	var set content.ClassSet
	s.eachGroupMember(rp, func(m overlay.NodeID) bool {
		for _, d := range s.sys.Docs(m) {
			set = set.Add(s.sys.U.ClassOf(d))
		}
		return true
	})
	return set
}

// republishAndDeliver rebuilds rp's ad after its group's contents changed
// and delivers the update — a patch when rp had advertised before, a full
// ad otherwise.
func (s *Scheme) republishAndDeliver(t sim.Clock, rp overlay.NodeID) {
	if rp < 0 || !s.sys.G.Alive(rp) {
		return
	}
	oldSnap := s.publishedSnapshot(rp)
	snap := s.publish(rp)
	if snap == nil {
		return
	}
	if oldSnap == nil {
		s.deliver(t, snap, adFull, snap.topics)
		return
	}
	s.deliver(t, snap, adPatch, oldSnap.topics|snap.topics)
}
