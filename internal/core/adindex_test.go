package core

import (
	"math/rand/v2"
	"slices"
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// idxSnap builds a snapshot whose filter holds the given keys. Tests keep
// keys class-scoped by convention (class c owns keys c*1000+1 …
// c*1000+999), mirroring the production invariant that an ad's filter only
// contains keywords of its topic classes.
func idxSnap(src overlay.NodeID, version uint16, topics content.ClassSet, keys []uint64) *adSnapshot {
	f := bloom.NewDefault()
	for _, k := range keys {
		f.AddKey(k)
	}
	return &adSnapshot{src: src, version: version, topics: topics, filter: f, fullWire: f.WireSize(), patchWire: 8}
}

// randTopics draws 1–3 distinct classes.
func randTopics(rng *rand.Rand) content.ClassSet {
	var ts content.ClassSet
	for n := 1 + rng.IntN(3); n > 0; n-- {
		ts = ts.Add(content.Class(rng.IntN(content.NumClasses)))
	}
	return ts
}

// classKeys draws 1–4 keys from each of the topic classes' key ranges.
func classKeys(rng *rand.Rand, topics content.ClassSet) []uint64 {
	var keys []uint64
	for _, c := range topics.Classes() {
		for n := 1 + rng.IntN(4); n > 0; n-- {
			keys = append(keys, uint64(int(c)*1000+1+rng.IntN(999)))
		}
	}
	return keys
}

// churn applies one random cache mutation and returns the version counter
// map it maintains.
func churnStep(rng *rand.Rand, ns *nodeState, vers map[overlay.NodeID]uint16, now sim.Clock, capacity int) {
	src := overlay.NodeID(rng.IntN(120))
	switch rng.IntN(8) {
	case 0, 1, 2, 3: // full ad (insert or replace), sometimes with new topics
		vers[src]++
		topics := randTopics(rng)
		ns.store(idxSnap(src, vers[src], topics, classKeys(rng, topics)), adFull, now, capacity)
	case 4: // sequential patch with possibly different topics
		if cur, ok := ns.cache[src]; ok {
			vers[src] = cur.snap.version + 1
			topics := randTopics(rng)
			ns.store(idxSnap(src, vers[src], topics, classKeys(rng, topics)), adPatch, now, capacity)
		}
	case 5: // refresh
		if cur, ok := ns.cache[src]; ok {
			ns.store(cur.snap, adRefresh, now, capacity)
		}
	case 6:
		ns.drop(src)
	case 7:
		ns.dropStale(now - 400)
	}
}

// TestScanChainsMatchesLinearScan is the tentpole's exactness property:
// across random caches under churn and eviction, the topic-indexed lookup
// (query classes plus aggregate-passing complement classes) returns
// exactly the candidate set of a reference linear scan — same members,
// same order after a deterministic sort.
func TestScanChainsMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	ns := &nodeState{cache: make(map[overlay.NodeID]*cachedAd), aggOn: true, minSeen: maxClock}
	vers := make(map[overlay.NodeID]uint16)
	const capacity = 40

	for i := 0; i < 4000; i++ {
		churnStep(rng, ns, vers, sim.Clock(i), capacity)
		if i%7 != 0 {
			continue
		}
		// A query over 1–2 classes, 1–3 terms each.
		qClasses := content.ClassSet(0).Add(content.Class(rng.IntN(content.NumClasses)))
		if rng.IntN(2) == 0 {
			qClasses = qClasses.Add(content.Class(rng.IntN(content.NumClasses)))
		}
		keys := classKeys(rng, qClasses)
		probes := bloom.AppendKeyProbes(nil, keys)

		// Scan set as Search computes it: query classes plus complement
		// classes whose aggregate union passes every probe.
		scan := qClasses
		if ns.agg != nil {
			for c := content.Class(0); c < content.NumClasses; c++ {
				if !qClasses.Has(c) && bloom.WordsContainAllProbes(ns.agg[int(c)*aggStride:(int(c)+1)*aggStride], probes) {
					scan = scan.Add(c)
				}
			}
		} else {
			scan = allClasses
		}

		var want []overlay.NodeID
		for src, e := range ns.cache {
			if e.snap.filter.ContainsAllProbes(probes) {
				want = append(want, src)
			}
		}
		got := ns.scanChains(scan, probes, nil)
		full := ns.scanChains(allClasses, probes, nil)
		slices.Sort(want)
		slices.Sort(got)
		slices.Sort(full)
		if !slices.Equal(got, want) {
			t.Fatalf("step %d: indexed scan %v != linear scan %v (scan=%b)", i, got, want, scan)
		}
		if !slices.Equal(full, want) {
			t.Fatalf("step %d: full chain scan %v != linear scan %v", i, full, want)
		}
	}
}

// TestServeAdsMatchesFifoWalk: the chain merge that builds an ads reply
// enumerates exactly the snapshots a full fifo walk with the same
// predicate would, in the same order, under every combination of interest
// sets, staleness cut-offs, probe filtering, requester exclusion and
// reply caps.
func TestServeAdsMatchesFifoWalk(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	ns := &nodeState{cache: make(map[overlay.NodeID]*cachedAd), aggOn: true, minSeen: maxClock}
	vers := make(map[overlay.NodeID]uint16)
	const capacity = 40

	var buf []*adSnapshot
	for i := 0; i < 4000; i++ {
		churnStep(rng, ns, vers, sim.Clock(i), capacity)
		if i%5 != 0 {
			continue
		}
		interests := randTopics(rng)
		if rng.IntN(8) == 0 {
			interests = 0 // uninterested requester: empty reply
		}
		staleBefore := sim.Clock(i - rng.IntN(600))
		var probes []bloom.Probe
		if rng.IntN(2) == 0 { // search-time pull; nil = join-time pull
			probes = bloom.AppendKeyProbes(nil, classKeys(rng, randTopics(rng)))
		}
		requester := overlay.NodeID(rng.IntN(120))
		max := 1 + rng.IntN(8)

		var want []*adSnapshot
		count := 0
		for _, src := range ns.fifo {
			e := ns.cache[src]
			if e.lastSeen < staleBefore {
				continue
			}
			if count >= max {
				break
			}
			if e.snap.src == requester || !e.snap.topics.Intersects(interests) {
				continue
			}
			if probes != nil && !e.snap.filter.ContainsAllProbes(probes) {
				continue
			}
			want = append(want, e.snap)
			count++
		}
		got := ns.serveAds(buf[:0], interests, staleBefore, probes, requester, max)
		buf = got
		if !slices.Equal(got, want) {
			t.Fatalf("step %d: serveAds returned %d ads, fifo walk %d (interests=%b max=%d)", i, len(got), len(want), interests, max)
		}
	}
}

// TestDropStaleWatermarkGateEquivalence: gating the expiry sweep on the
// minSeen watermark (as Search does) never changes observable cache
// state versus sweeping unconditionally on every query.
func TestDropStaleWatermarkGateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	gated := &nodeState{cache: make(map[overlay.NodeID]*cachedAd), minSeen: maxClock}
	ref := &nodeState{cache: make(map[overlay.NodeID]*cachedAd), minSeen: maxClock}
	const capacity = 25

	for i := 0; i < 3000; i++ {
		now := sim.Clock(i * 3)
		src := overlay.NodeID(rng.IntN(60))
		switch rng.IntN(4) {
		case 0, 1:
			sp := idxSnap(src, uint16(i), randTopics(rng), nil)
			gated.store(sp, adFull, now, capacity)
			ref.store(sp, adFull, now, capacity)
		case 2:
			gated.drop(src)
			ref.drop(src)
		case 3: // a search arrives: gated sweep vs unconditional sweep
			deadline := now - 200
			if gated.minSeen < deadline {
				gated.dropStale(deadline)
			}
			ref.dropStale(deadline)
			if !slices.Equal(gated.fifo, ref.fifo) {
				t.Fatalf("step %d: fifo diverged: %v vs %v", i, gated.fifo, ref.fifo)
			}
			for k, v := range ref.cache {
				if g, ok := gated.cache[k]; !ok || g.lastSeen != v.lastSeen || g.snap != v.snap {
					t.Fatalf("step %d: cache diverged at %d", i, k)
				}
			}
			if len(gated.cache) != len(ref.cache) {
				t.Fatalf("step %d: cache sizes diverged", i)
			}
		}
	}
}

// TestStaleWindowRegression pins the staleness window semantics end to
// end: an ad last refreshed at time T is served by Search up to and
// including T + StaleFactor×RefreshPeriodSec seconds and expired from the
// cache strictly after.
func TestStaleWindowRegression(t *testing.T) {
	s, _ := attach(t, FLD)
	p := overlay.NodeID(1)
	// A reserve node that never joined: no real published ad of its can
	// reach p's cache through phase-2 pulls and resurrect the entry.
	src := overlay.NodeID(s.sys.NumNodes() - 1)
	window := sim.Clock(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec) * 1000

	const T = sim.Clock(1_000_000)
	ns := &s.nodes[p]
	topics := content.ClassSet(0).Add(0)
	sp := idxSnap(src, 1000, topics, []uint64{42})
	ns.mu.Lock()
	ns.store(sp, adFull, T, s.cfg.CacheCapacity)
	ns.mu.Unlock()

	search := func(at sim.Clock) {
		t.Helper()
		ev := &trace.Event{Kind: trace.Query, Node: p, Time: at, Terms: []content.Keyword{1}}
		s.Search(ev)
	}

	// At deadline == T the entry is not yet stale (strict <).
	search(T + window)
	ns.mu.Lock()
	_, ok := ns.cache[src]
	ns.mu.Unlock()
	if !ok {
		t.Fatalf("entry expired at exactly window boundary; want survival (lastSeen < deadline is strict)")
	}
	// One millisecond later it is.
	search(T + window + 1)
	ns.mu.Lock()
	_, ok = ns.cache[src]
	ns.mu.Unlock()
	if ok {
		t.Fatalf("entry still cached %d ms past its staleness window", 1)
	}
}
