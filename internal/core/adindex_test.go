package core

import (
	"math/rand/v2"
	"slices"
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// idxSnap builds a snapshot whose filter holds the given keys. Tests keep
// keys class-scoped by convention (class c owns keys c*1000+1 …
// c*1000+999), mirroring the production invariant that an ad's filter only
// contains keywords of its topic classes. The snapshot is unslotted; churn
// helpers register it with a test adSlots when slotting is under test.
func idxSnap(src overlay.NodeID, version uint16, topics content.ClassSet, keys []uint64) *adSnapshot {
	f := bloom.NewDefault()
	for _, k := range keys {
		f.AddKey(k)
	}
	return &adSnapshot{src: src, version: version, topics: topics, filter: f, fullWire: f.WireSize(), patchWire: 8}
}

// randTopics draws 1–3 distinct classes.
func randTopics(rng *rand.Rand) content.ClassSet {
	var ts content.ClassSet
	for n := 1 + rng.IntN(3); n > 0; n-- {
		ts = ts.Add(content.Class(rng.IntN(content.NumClasses)))
	}
	return ts
}

// classKeys draws 1–4 keys from each of the topic classes' key ranges.
func classKeys(rng *rand.Rand, topics content.ClassSet) []uint64 {
	var keys []uint64
	for _, c := range topics.Classes() {
		for n := 1 + rng.IntN(4); n > 0; n-- {
			keys = append(keys, uint64(int(c)*1000+1+rng.IntN(999)))
		}
	}
	return keys
}

// churnStep applies one random cache mutation, maintaining the version
// counter map. Freshly built snapshots register with slots three times out
// of four (when given), so slotted and unslotted (scalar-fallback) ads mix
// in every cache under test.
func churnStep(rng *rand.Rand, ns *nodeState, slots *adSlots, vers map[overlay.NodeID]uint16, now sim.Clock, capacity int) {
	src := overlay.NodeID(rng.IntN(120))
	mkSnap := func(version uint16, topics content.ClassSet) *adSnapshot {
		sn := idxSnap(src, version, topics, classKeys(rng, topics))
		if slots != nil && rng.IntN(4) != 0 {
			slots.register(sn)
		}
		return sn
	}
	switch rng.IntN(8) {
	case 0, 1, 2, 3: // full ad (insert or replace), sometimes with new topics
		vers[src]++
		ns.store(mkSnap(vers[src], randTopics(rng)), adFull, now, capacity)
	case 4: // sequential patch with possibly different topics
		if cur := ns.entry(src); cur != nil {
			vers[src] = cur.snap.version + 1
			ns.store(mkSnap(vers[src], randTopics(rng)), adPatch, now, capacity)
		}
	case 5: // refresh
		if cur := ns.entry(src); cur != nil {
			ns.store(cur.snap, adRefresh, now, capacity)
		}
	case 6:
		ns.drop(src)
	case 7:
		ns.dropStale(now - 400)
	}
}

// TestScanCacheMatchesLinearScan is the tentpole's exactness property:
// across random caches under churn, eviction, and a mixed slotted/unslotted
// ad population, the bit-sliced accumulator scan returns exactly the
// candidate set of the scalar reference walk — same members, same order.
func TestScanCacheMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 23))
	ns := &nodeState{minSeen: maxClock}
	slots := &adSlots{}
	vers := make(map[overlay.NodeID]uint16)
	var qa queryAcc
	const capacity = 40

	for i := 0; i < 4000; i++ {
		churnStep(rng, ns, slots, vers, sim.Clock(i), capacity)
		if i%7 != 0 {
			continue
		}
		// A query over 1–2 classes, 1–3 terms each.
		qClasses := content.ClassSet(0).Add(content.Class(rng.IntN(content.NumClasses)))
		if rng.IntN(2) == 0 {
			qClasses = qClasses.Add(content.Class(rng.IntN(content.NumClasses)))
		}
		keys := classKeys(rng, qClasses)
		probes := bloom.AppendKeyProbes(nil, keys)

		qa.reset(slots, probes)
		got := ns.scanCache(&qa, nil)
		want := scanCacheReference(ns, probes)
		if !slices.Equal(got, want) {
			t.Fatalf("step %d: sliced scan %v != reference scan %v", i, got, want)
		}
	}
}

// TestServeAdsMatchesFifoWalk: the reply assembly enumerates exactly the
// snapshots the reference fifo walk with the same predicate would, in the
// same order, under every combination of interest sets, staleness
// cut-offs, probe filtering, requester exclusion and reply caps — with
// both the accumulator path (search pull) and the nil path (join pull).
func TestServeAdsMatchesFifoWalk(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 17))
	ns := &nodeState{minSeen: maxClock}
	slots := &adSlots{}
	vers := make(map[overlay.NodeID]uint16)
	var qacc queryAcc
	const capacity = 40

	var buf []*adSnapshot
	for i := 0; i < 4000; i++ {
		churnStep(rng, ns, slots, vers, sim.Clock(i), capacity)
		if i%5 != 0 {
			continue
		}
		interests := randTopics(rng)
		if rng.IntN(8) == 0 {
			interests = 0 // uninterested requester: empty reply
		}
		staleBefore := sim.Clock(i - rng.IntN(600))
		var probes []bloom.Probe
		var qa *queryAcc
		if rng.IntN(2) == 0 { // search-time pull; nil = join-time pull
			probes = bloom.AppendKeyProbes(nil, classKeys(rng, randTopics(rng)))
			qacc.reset(slots, probes)
			qa = &qacc
		}
		requester := overlay.NodeID(rng.IntN(120))
		max := 1 + rng.IntN(8)

		want := serveAdsReference(ns, interests, staleBefore, probes, requester, max)
		got := ns.serveAds(qa, buf[:0], interests, staleBefore, requester, max)
		buf = got
		if !slices.Equal(got, want) {
			t.Fatalf("step %d: serveAds returned %d ads, fifo reference %d (interests=%b max=%d)", i, len(got), len(want), interests, max)
		}
	}
}

// TestDropStaleWatermarkGateEquivalence: gating the expiry sweep on the
// minSeen watermark (as Search does) never changes observable cache
// state versus sweeping unconditionally on every query.
func TestDropStaleWatermarkGateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	gated := &nodeState{minSeen: maxClock}
	ref := &nodeState{minSeen: maxClock}
	const capacity = 25

	for i := 0; i < 3000; i++ {
		now := sim.Clock(i * 3)
		src := overlay.NodeID(rng.IntN(60))
		switch rng.IntN(4) {
		case 0, 1:
			sp := idxSnap(src, uint16(i), randTopics(rng), nil)
			gated.store(sp, adFull, now, capacity)
			ref.store(sp, adFull, now, capacity)
		case 2:
			gated.drop(src)
			ref.drop(src)
		case 3: // a search arrives: gated sweep vs unconditional sweep
			deadline := now - 200
			if gated.minSeen < deadline {
				gated.dropStale(deadline)
			}
			ref.dropStale(deadline)
			if !slices.Equal(gated.fifo, ref.fifo) {
				t.Fatalf("step %d: fifo diverged: %v vs %v", i, gated.fifo, ref.fifo)
			}
			for _, k := range ref.fifo {
				v := ref.entry(k)
				if g := gated.entry(k); g == nil || g.lastSeen != v.lastSeen || g.snap != v.snap {
					t.Fatalf("step %d: cache diverged at %d", i, k)
				}
			}
			if gated.cacheLen() != ref.cacheLen() {
				t.Fatalf("step %d: cache sizes diverged", i)
			}
		}
	}
}

// TestAdTableBasics pins the flat table's semantics directly: put/get/del
// round-trips, replacement, growth past many inserts, and backward-shift
// deletion keeping every surviving key reachable.
func TestAdTableBasics(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	var tab adTable
	ref := make(map[overlay.NodeID]*cachedAd)
	for i := 0; i < 20000; i++ {
		src := overlay.NodeID(rng.IntN(300))
		switch rng.IntN(3) {
		case 0, 1:
			e := &cachedAd{lastSeen: sim.Clock(i)}
			tab.put(src, e)
			ref[src] = e
		case 2:
			got := tab.del(src)
			want := ref[src]
			delete(ref, src)
			if got != want {
				t.Fatalf("step %d: del(%d) = %p, want %p", i, src, got, want)
			}
		}
		if tab.n != len(ref) {
			t.Fatalf("step %d: table n=%d, reference %d", i, tab.n, len(ref))
		}
		if i%500 == 0 {
			for k, v := range ref {
				if tab.get(k) != v {
					t.Fatalf("step %d: get(%d) lost entry after churn", i, k)
				}
			}
		}
	}
	for k, v := range ref {
		if tab.get(k) != v {
			t.Fatalf("final: get(%d) != reference", k)
		}
	}
	if tab.get(overlay.NodeID(301)) != nil {
		t.Fatal("get of never-inserted key returned an entry")
	}
}

// TestAdSlotsRegister: same-geometry filters share one group, new
// geometries open new groups up to maxSigGroups, and overflow geometries
// stay unslotted (the scalar-fallback path).
func TestAdSlotsRegister(t *testing.T) {
	slots := &adSlots{}
	a := &adSnapshot{filter: bloom.NewDefault()}
	b := &adSnapshot{filter: bloom.NewDefault()}
	slots.register(a)
	slots.register(b)
	if a.sigSlot != 1 || b.sigSlot != 2 || a.sigGroup != b.sigGroup {
		t.Fatalf("same geometry split groups: a=(%d,%d) b=(%d,%d)", a.sigGroup, a.sigSlot, b.sigGroup, b.sigSlot)
	}
	for m := 0; m < maxSigGroups-1; m++ {
		sn := &adSnapshot{filter: bloom.New(64+m+1, 2)}
		slots.register(sn)
		if sn.sigSlot != 1 {
			t.Fatalf("new geometry %d not slotted at lane 1", m)
		}
	}
	over := &adSnapshot{filter: bloom.New(8192, 3)}
	slots.register(over)
	if over.sigSlot != 0 {
		t.Fatalf("geometry beyond maxSigGroups got slot %d, want unslotted", over.sigSlot)
	}
	if len(slots.groups) != maxSigGroups {
		t.Fatalf("%d groups, want %d", len(slots.groups), maxSigGroups)
	}
}

// TestStaleWindowRegression pins the staleness window semantics end to
// end: an ad last refreshed at time T is served by Search up to and
// including T + StaleFactor×RefreshPeriodSec seconds and expired from the
// cache strictly after.
func TestStaleWindowRegression(t *testing.T) {
	s, _ := attach(t, FLD)
	p := overlay.NodeID(1)
	// A reserve node that never joined: no real published ad of its can
	// reach p's cache through phase-2 pulls and resurrect the entry.
	src := overlay.NodeID(s.sys.NumNodes() - 1)
	window := sim.Clock(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec) * 1000

	const T = sim.Clock(1_000_000)
	ns := &s.nodes[p]
	topics := content.ClassSet(0).Add(0)
	sp := idxSnap(src, 1000, topics, []uint64{42})
	ns.mu.Lock()
	ns.store(sp, adFull, T, s.cfg.CacheCapacity)
	ns.mu.Unlock()

	search := func(at sim.Clock) {
		t.Helper()
		ev := &trace.Event{Kind: trace.Query, Node: p, Time: at, Terms: []content.Keyword{1}}
		s.Search(ev)
	}

	// At deadline == T the entry is not yet stale (strict <).
	search(T + window)
	ns.mu.Lock()
	ok := ns.entry(src) != nil
	ns.mu.Unlock()
	if !ok {
		t.Fatalf("entry expired at exactly window boundary; want survival (lastSeen < deadline is strict)")
	}
	// One millisecond later it is.
	search(T + window + 1)
	ns.mu.Lock()
	ok = ns.entry(src) != nil
	ns.mu.Unlock()
	if ok {
		t.Fatalf("entry still cached %d ms past its staleness window", 1)
	}
}
