package core

import (
	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Read-only serving search (see DESIGN.md §16). The batch-replay Search is
// a mutator: it sweeps stale cache entries, evicts silent sources, and
// merges phase-2 ad offers back into the requester's cache. The serving
// plane instead answers live queries from many goroutines against a state
// frozen by internal/serve's epoch gate, so it needs a search that touches
// nothing: SearchRO runs the same two-phase candidate discovery — the
// bit-sliced fifo cache scan, ground-truth confirmation, the h-hop
// neighbourhood pull — but filters staleness inline, confirms locally
// (serving confirmations are ground-truth content lookups, not simulated
// round trips), and never writes a single byte of scheme state. For one
// frozen state the answer is a pure function of (requester, terms), which
// is what lets the serving race test pin every concurrent answer to a
// per-epoch quiescent oracle.

// ServeScratch is one serving worker's reusable working set for SearchRO:
// probe buffers, the lazy signature-match accumulator and epoch-stamped
// BFS state. A scratch must not be shared by concurrent calls; the serving
// layer keeps one per in-flight slot, so the steady state allocates
// nothing per query.
type ServeScratch struct {
	keys    []uint64
	probes  []bloom.Probe
	srcs    []overlay.NodeID
	seen    map[overlay.NodeID]struct{}
	targets []overlay.NodeID
	qa      queryAcc

	visited  []uint32
	epoch    uint32
	frontier []overlay.NodeID
	next     []overlay.NodeID
}

// NewServeScratch returns a scratch ready for SearchRO.
func NewServeScratch() *ServeScratch {
	return &ServeScratch{
		probes: make([]bloom.Probe, 0, 8),
		seen:   make(map[overlay.NodeID]struct{}, 16),
	}
}

// ServeResult is one serving answer: the verified sources (a sub-slice of
// the caller's dst buffer) and whether phase 2 (the neighbourhood pull)
// ran.
type ServeResult struct {
	Sources []overlay.NodeID
	Phase2  bool
}

// SearchRO answers one live query for requester p at virtual time now,
// reading scheme state only. It appends verified sources (nodes that
// really hold a document matching every term, ground-truth checked) to dst
// and returns the result. The caller must hold the state frozen for the
// duration (no concurrent apply section may be open — asserted via
// checkStable); internal/serve's gate provides exactly that.
//
// Phase 1 scans p's representative's ads cache in fifo order through the
// bit-sliced signature index, skipping entries its staleness window has
// expired (the batch path drops them; the read-only path merely ignores
// them — the next apply section sweeps). Matches are confirmed in fifo
// order under a MaxConfirms attempt budget, the batch path's contact cap.
// If fewer than MinResults verify and AdsRequestHops > 0, phase 2 walks
// the h-hop eligible neighbourhood and confirms the ads each peer would
// offer a lossless search-time pull — published ad plus cached entries
// passing the topic/staleness/probe filters, fifo order, MaxAdsPerReply
// per peer — deduplicated against phase 1, under a fresh MaxConfirms
// budget, without merging anything back.
func (s *Scheme) SearchRO(p overlay.NodeID, terms []content.Keyword, now sim.Clock, sc *ServeScratch, dst []overlay.NodeID) (ServeResult, []overlay.NodeID) {
	s.checkStable()
	rp := s.repr(p)
	if rp < 0 {
		return ServeResult{}, dst // detached leaf: nowhere to route
	}
	sc.keys = sc.keys[:0]
	for _, term := range terms {
		sc.keys = append(sc.keys, uint64(term))
	}
	sc.probes = bloom.AppendKeyProbes(sc.probes[:0], sc.keys)
	sc.qa.reset(&s.slots, sc.probes)
	clear(sc.seen)

	staleBefore := sim.Clock(minClock)
	if s.cfg.RefreshPeriodSec > 0 {
		staleBefore = now - sim.Clock(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec)*1000
	}

	// Phase 1: the representative's own cache, fifo order, staleness
	// filtered inline, confirm attempts capped at MaxConfirms.
	base := len(dst)
	ns := &s.nodes[rp]
	srcs := sc.srcs[:0]
	for _, src := range ns.fifo {
		e := ns.tab.get(src)
		if e == nil || e.lastSeen < staleBefore {
			continue
		}
		if sc.qa.matches(e.snap) {
			srcs = append(srcs, src)
		}
	}
	sc.srcs = srcs
	attempts := 0
	for _, src := range srcs {
		if attempts >= s.cfg.MaxConfirms {
			break
		}
		attempts++
		sc.seen[src] = struct{}{}
		if s.sys.G.Alive(src) && s.groupMatches(src, terms) {
			dst = append(dst, src)
		}
	}
	if len(dst)-base >= s.cfg.MinResults || s.cfg.AdsRequestHops == 0 {
		return ServeResult{Sources: dst[base:]}, dst
	}

	// Phase 2: the h-hop eligible neighbourhood's offers under a fresh
	// MaxConfirms attempt budget. Only fully qualifying ads occupy a
	// peer's MaxAdsPerReply slots, exactly serveAds' accounting.
	interests := s.groupInterests(rp)
	attempts = 0
	for _, tg := range s.hopNeighborhoodRO(rp, s.cfg.AdsRequestHops, sc) {
		if attempts >= s.cfg.MaxConfirms {
			break
		}
		q := &s.nodes[tg]
		offered := 0
		if pub := q.published; pub != nil && s.cfg.MaxAdsPerReply > 0 &&
			pub.src != rp && pub.topics.Intersects(interests) && sc.qa.matches(pub) {
			offered++
			dst, attempts = s.confirmServe(pub.src, terms, dst, attempts, sc)
		}
		for _, src := range q.fifo {
			if offered >= s.cfg.MaxAdsPerReply || attempts >= s.cfg.MaxConfirms {
				break
			}
			e := q.tab.get(src)
			if e == nil || !e.snap.topics.Intersects(interests) {
				continue
			}
			if e.lastSeen < staleBefore || src == rp {
				continue
			}
			if !sc.qa.matches(e.snap) {
				continue
			}
			offered++
			dst, attempts = s.confirmServe(src, terms, dst, attempts, sc)
		}
	}
	return ServeResult{Sources: dst[base:], Phase2: true}, dst
}

// confirmServe ground-truth confirms one phase-2 candidate at most once
// per query (the seen set spans both phases; duplicates spend no attempt)
// and appends it on a match.
func (s *Scheme) confirmServe(src overlay.NodeID, terms []content.Keyword, dst []overlay.NodeID, attempts int, sc *ServeScratch) ([]overlay.NodeID, int) {
	if _, dup := sc.seen[src]; dup {
		return dst, attempts
	}
	sc.seen[src] = struct{}{}
	attempts++
	if s.sys.G.Alive(src) && s.groupMatches(src, terms) {
		dst = append(dst, src)
	}
	return dst, attempts
}

// hopNeighborhoodRO returns the eligible peers within h hops of p in
// deterministic BFS order (adjacency order per frontier node, excluding
// p), the lossless read-only counterpart of hopNeighborhood. The slice is
// backed by sc.
func (s *Scheme) hopNeighborhoodRO(p overlay.NodeID, h int, sc *ServeScratch) []overlay.NodeID {
	out := sc.targets[:0]
	if h <= 0 {
		sc.targets = out
		return out
	}
	if h == 1 {
		out = append(out, s.eligibleView(p)...)
		sc.targets = out
		return out
	}
	if n := s.sys.NumNodes(); len(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	visited, epoch := sc.visited, sc.epoch
	visited[p] = epoch
	frontier := append(sc.frontier[:0], p)
	next := sc.next[:0]
	for hop := 1; hop <= h && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, u := range frontier {
			for _, nb := range s.eligibleView(u) {
				if visited[nb] == epoch {
					continue
				}
				visited[nb] = epoch
				out = append(out, nb)
				next = append(next, nb)
			}
		}
		frontier, next = next, frontier
	}
	sc.frontier, sc.next = frontier, next
	sc.targets = out
	return out
}

// ServeVersion returns the delivery seqlock's current version — even when
// no apply section is open. The serving gate records it around reads as a
// cheap cross-check of the frozen-state contract.
func (s *Scheme) ServeVersion() uint32 { return s.applyVer.Load() }
