package core

import (
	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Replay-plane acceleration over the ads caches (see DESIGN.md §12).
//
// Every published adSnapshot is immutable and shared by pointer across all
// caches, so its Bloom signature is sliced ONCE, globally, at publication:
// the Scheme keeps one bit-sliced column matrix per filter geometry
// (adSlots), and each snapshot records which matrix (sigGroup) and which
// column lane (sigSlot) holds its signature. A query then derives its probe
// positions once per geometry group and resolves "does this cached ad match
// every term" to a single bit test against a lazily computed 64-ad match
// word (queryAcc) — the word-parallel replacement for the per-ad
// ContainsAllProbes walk.
//
// Per-node cache lookup is a flat open-addressed table (adTable) instead of
// a Go map: the store path is the single hottest map user in replay
// profiles, and the table's linear probing over a two-word slot array keeps
// it to one predictable cache line in the common case.
//
// Concurrency: adSlots is written only on the runner thread (publishWith),
// which the runner's query-batch barrier orders strictly before and after
// any Search; during a query batch the matrices are frozen and read-only.
// Per-node state (adTable, fifo) keeps the existing discipline — nodeState.mu
// across searches, the delivery seqlock across runner-thread writes.

// maxClock is the highest representable virtual time; the watermark of an
// empty cache.
const maxClock = sim.Clock(1)<<62 - 1

// maxSigGroups bounds the number of distinct filter geometries the global
// signature index slices. The variable-sizing pool produces 7 lengths and
// fixed sizing exactly one, so the bound is never hit in practice; a
// geometry beyond it simply stays unslotted and matches via the scalar
// fallback (the "odd geometry" path).
const maxSigGroups = 16

// adSlots is the global signature index: one bit-sliced matrix per filter
// geometry, growing append-only as snapshots are published. Runner thread
// only for writes; frozen during query batches.
type adSlots struct {
	groups []*bloom.Sliced
}

// register slices snap's filter into the matrix of its geometry, creating
// the group on first sight. Snapshots beyond maxSigGroups geometries stay
// unslotted (sigSlot 0) and are matched scalar.
func (s *adSlots) register(snap *adSnapshot) {
	m, k := snap.filter.Bits(), snap.filter.Hashes()
	for gi, g := range s.groups {
		gm, gk := g.Geometry()
		if gm == m && gk == k {
			snap.sigGroup, snap.sigSlot = uint8(gi), int32(g.Add(snap.filter))+1
			return
		}
	}
	if len(s.groups) >= maxSigGroups {
		return
	}
	g := bloom.NewSliced(m, k)
	snap.sigGroup, snap.sigSlot = uint8(len(s.groups)), int32(g.Add(snap.filter))+1
	s.groups = append(s.groups, g)
}

// queryAcc is one query's lazy match accumulator over the global signature
// index. Probe positions are derived at most once per geometry group, and
// match words at most once per 64-slot block — only for blocks a tested
// snapshot actually lives in — so a cache scan costs one word-AND pass per
// touched block plus a bit test per entry. Buffers persist across queries
// in the search scratch; reset clears the computed marks, not the storage,
// so the steady state allocates nothing.
type queryAcc struct {
	slots  *adSlots
	probes []bloom.Probe
	pos    [][]uint32 // per group: probe bit positions (shared by the group)
	posOK  []bool
	accs   [][]uint64 // per group: per-block match words
	comp   [][]uint64 // per group: bitmap of computed blocks
}

// reset rebinds the accumulator to a query's probes, invalidating all
// cached positions and match words.
func (qa *queryAcc) reset(slots *adSlots, probes []bloom.Probe) {
	qa.slots, qa.probes = slots, probes
	for g := range qa.posOK {
		qa.posOK[g] = false
	}
	for g := range qa.comp {
		clear(qa.comp[g])
	}
}

// matches reports whether snap's filter passes every probe of the query:
// the sliced bit test for slotted snapshots, the scalar probe walk for
// unslotted ones. The two agree exactly — the matrix columns are the
// filter's own bits and the positions are the same (h1+i·h2) mod m
// sequence ContainsAllProbes walks.
func (qa *queryAcc) matches(snap *adSnapshot) bool {
	slot := int(snap.sigSlot) - 1
	if slot < 0 || qa.slots == nil {
		return snap.filter.ContainsAllProbes(qa.probes)
	}
	g, b := int(snap.sigGroup), slot>>6
	if g >= len(qa.accs) || b >= len(qa.accs[g]) {
		qa.grow(g, b)
	}
	if qa.comp[g][b>>6]&(1<<(uint(b)&63)) == 0 {
		qa.comp[g][b>>6] |= 1 << (uint(b) & 63)
		sl := qa.slots.groups[g]
		if !qa.posOK[g] {
			qa.posOK[g] = true
			qa.pos[g] = sl.AppendPositions(qa.pos[g][:0], qa.probes)
		}
		qa.accs[g][b] = sl.MatchBlock(b, qa.pos[g])
	}
	return qa.accs[g][b]>>(uint(slot)&63)&1 != 0
}

// grow sizes the per-group buffers to cover group g, block b. Growth is
// monotone over a run (groups and blocks only ever appear), so it amortises
// to nothing once the index stops growing.
func (qa *queryAcc) grow(g, b int) {
	for len(qa.accs) <= g {
		qa.pos = append(qa.pos, nil)
		qa.posOK = append(qa.posOK, false)
		qa.accs = append(qa.accs, nil)
		qa.comp = append(qa.comp, nil)
	}
	for len(qa.accs[g]) <= b {
		qa.accs[g] = append(qa.accs[g], 0)
	}
	for len(qa.comp[g]) <= b>>6 {
		qa.comp[g] = append(qa.comp[g], 0)
	}
}

// adTable is a flat open-addressed hash table mapping ad source → cache
// entry: power-of-two sizing, multiplicative hashing, linear probing,
// backward-shift deletion (no tombstones). The zero value is a valid empty
// table. It replaces the per-node Go map on the store/serve hot paths.
type adTable struct {
	slots []adTabSlot
	n     int
}

// adTabSlot is one table slot. key is src+1 so 0 marks an empty slot for
// any valid NodeID.
type adTabSlot struct {
	key uint32
	e   *cachedAd
}

func adTabHash(key, mask uint32) uint32 { return (key * 2654435761) & mask }

// get returns the entry cached for src, or nil.
func (t *adTable) get(src overlay.NodeID) *cachedAd {
	if len(t.slots) == 0 {
		return nil
	}
	mask := uint32(len(t.slots) - 1)
	key := uint32(src) + 1
	for i := adTabHash(key, mask); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.key == key {
			return s.e
		}
		if s.key == 0 {
			return nil
		}
	}
}

// put inserts or replaces src's entry, growing at 50% load so probe runs
// stay short.
func (t *adTable) put(src overlay.NodeID, e *cachedAd) {
	if 2*(t.n+1) > len(t.slots) {
		t.grow()
	}
	mask := uint32(len(t.slots) - 1)
	key := uint32(src) + 1
	for i := adTabHash(key, mask); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.key == key {
			s.e = e
			return
		}
		if s.key == 0 {
			s.key, s.e = key, e
			t.n++
			return
		}
	}
}

// del removes and returns src's entry (nil if absent), backward-shifting
// the displaced run so lookups never need tombstones.
func (t *adTable) del(src overlay.NodeID) *cachedAd {
	if len(t.slots) == 0 {
		return nil
	}
	mask := uint32(len(t.slots) - 1)
	key := uint32(src) + 1
	i := adTabHash(key, mask)
	for ; ; i = (i + 1) & mask {
		s := &t.slots[i]
		if s.key == 0 {
			return nil
		}
		if s.key == key {
			break
		}
	}
	e := t.slots[i].e
	t.n--
	// Backward shift: slide later run members whose home position reaches
	// back to (or past) the vacated slot, preserving probe invariants.
	j := i
	for {
		j = (j + 1) & mask
		s := t.slots[j]
		if s.key == 0 {
			break
		}
		if h := adTabHash(s.key, mask); (j-h)&mask >= (j-i)&mask {
			t.slots[i] = s
			i = j
		}
	}
	t.slots[i] = adTabSlot{}
	return e
}

func (t *adTable) grow() {
	old := t.slots
	size := 2 * len(old)
	if size < 16 {
		size = 16
	}
	t.slots = make([]adTabSlot, size)
	t.n = 0
	for _, s := range old {
		if s.key != 0 {
			t.put(overlay.NodeID(s.key-1), s.e)
		}
	}
}

// entry returns the cache entry for src, or nil. Called under mu (or on the
// runner thread inside an apply section).
func (ns *nodeState) entry(src overlay.NodeID) *cachedAd { return ns.tab.get(src) }

// cacheLen returns the cache population.
func (ns *nodeState) cacheLen() int { return ns.tab.n }

// scanCache appends the sources of cached ads whose filters pass every
// query probe, in fifo (insertion) order — phase 1's candidate scan.
// Called under mu.
func (ns *nodeState) scanCache(qa *queryAcc, out []overlay.NodeID) []overlay.NodeID {
	for _, src := range ns.fifo {
		e := ns.tab.get(src)
		if e == nil {
			continue
		}
		if qa.matches(e.snap) {
			out = append(out, src)
		}
	}
	return out
}

// serveAds appends up to max cached snapshots whose topics intersect
// interests, in fifo (insertion) order, skipping entries staler than
// staleBefore, the requester's own ad, and — on search-time pulls
// (qa != nil) — ads failing the query probes. Called under mu. Insertion
// order matters: under MaxAdsPerReply the subset offered must not depend
// on anything but replay state, or two replays of one run diverge.
func (ns *nodeState) serveAds(qa *queryAcc, buf []*adSnapshot, interests content.ClassSet, staleBefore sim.Clock, requester overlay.NodeID, max int) []*adSnapshot {
	for _, src := range ns.fifo {
		if len(buf) >= max {
			break
		}
		e := ns.tab.get(src)
		if e == nil || !e.snap.topics.Intersects(interests) {
			continue
		}
		if e.lastSeen < staleBefore || e.snap.src == requester {
			continue
		}
		if qa != nil && !qa.matches(e.snap) {
			continue
		}
		buf = append(buf, e.snap)
	}
	return buf
}
