package core

import (
	"math/bits"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Topic-keyed posting chains over the ads cache. Each cached entry is
// threaded into one singly linked chain per topic class, so Search scans
// only the chains that can hold a match and ads replies enumerate a
// neighbour's interest-matching entries without touching the rest of the
// cache. The chains are an acceleration structure over the fifo/cache
// pair, not a second source of truth:
//
//   - every element carries the entry's fifo insertion sequence (seq);
//     chains are kept in ascending seq order, so fifo order is recovered
//     exactly by merging chains (serveAds);
//   - elements are validated lazily against the cache on traversal — an
//     element whose entry was evicted, replaced under a new seq, or
//     re-topiced away from the chain's class is unlinked in passing;
//   - per-class aggregate filter unions (see bloom.UnionInto) are monotone
//     supersets of every cached filter with that topic, letting Search
//     skip whole complement classes whose union fails the query probes.
//
// All index state lives in nodeState and is guarded by nodeState.mu.

// idxElem is one posting-chain element. Links are 1-based arena indices
// (0 terminates), so a zero-valued nodeState has valid empty chains.
type idxElem struct {
	src  overlay.NodeID
	seq  uint32
	next int32
}

// maxClock is the highest representable virtual time; the watermark of an
// empty cache.
const maxClock = sim.Clock(1)<<62 - 1

// aggStride is the word length of one class's aggregate union.
const aggStride = bloom.DefaultWords

// allClasses selects every posting chain (the full linear scan).
const allClasses = content.ClassSet(1)<<content.NumClasses - 1

// idxInsert threads a freshly inserted cache entry into the chains of its
// topics. seq is monotone over insertions, so appending at the tails
// preserves the ascending-seq invariant.
func (ns *nodeState) idxInsert(src overlay.NodeID, seq uint32, topics content.ClassSet) {
	for t := uint16(topics); t != 0; t &= t - 1 {
		c := bits.TrailingZeros16(t)
		e := int32(len(ns.elems)) + 1
		ns.elems = append(ns.elems, idxElem{src: src, seq: seq})
		if ns.tail[c] == 0 {
			ns.head[c] = e
		} else {
			ns.elems[ns.tail[c]-1].next = e
		}
		ns.tail[c] = e
	}
}

// idxRetopic fixes the chains after src's cached snapshot changed topics
// in place (a patch or full-ad replacement): classes the new set gains get
// a seq-ordered insertion at the entry's original fifo position, classes
// it loses are left to lazy cleanup. The entry keeps its seq — replacing a
// cached ad does not move it in the fifo.
func (ns *nodeState) idxRetopic(src overlay.NodeID, seq uint32, oldT, newT content.ClassSet) {
	for t := uint16(newT &^ oldT); t != 0; t &= t - 1 {
		ns.idxSortedInsert(content.Class(bits.TrailingZeros16(t)), src, seq)
	}
	ns.deadElems += int32((oldT &^ newT).Count())
}

// idxSortedInsert links (src, seq) into chain c at its seq position. If a
// lazily retained element for the same (src, seq) is still threaded — the
// entry's topics flapped c off and back on — it simply becomes valid again.
func (ns *nodeState) idxSortedInsert(c content.Class, src overlay.NodeID, seq uint32) {
	prev := int32(0)
	for e := ns.head[c]; e != 0; e = ns.elems[e-1].next {
		el := &ns.elems[e-1]
		if el.seq == seq && el.src == src {
			return
		}
		if el.seq > seq {
			break
		}
		prev = e
	}
	e := int32(len(ns.elems)) + 1
	var next int32
	if prev == 0 {
		next = ns.head[c]
		ns.head[c] = e
	} else {
		next = ns.elems[prev-1].next
		ns.elems[prev-1].next = e
	}
	ns.elems = append(ns.elems, idxElem{src: src, seq: seq, next: next})
	if next == 0 {
		ns.tail[c] = e
	}
}

// unlink removes element e (whose predecessor in chain c is prev, 0 for
// the head) and returns its successor.
func (ns *nodeState) unlink(c content.Class, prev, e int32) int32 {
	next := ns.elems[e-1].next
	if prev == 0 {
		ns.head[c] = next
	} else {
		ns.elems[prev-1].next = next
	}
	if next == 0 {
		ns.tail[c] = prev
	}
	return next
}

// aggOr folds snap's filter into the aggregate unions of its topics. Bits
// are never cleared, so each union stays a superset of every filter folded
// in — the property the complement-class skip in Search relies on.
func (ns *nodeState) aggOr(snap *adSnapshot) {
	if !ns.aggOn {
		return
	}
	if ns.agg == nil {
		ns.agg = make([]uint64, content.NumClasses*aggStride)
	}
	for t := uint16(snap.topics); t != 0; t &= t - 1 {
		c := bits.TrailingZeros16(t)
		snap.filter.UnionInto(ns.agg[c*aggStride : (c+1)*aggStride])
	}
}

// noteAgg keeps the aggregates current after a cache insert/replace. A
// warm-up store (now < 0) only marks them stale: the warm-up flood pushes
// far more ads through each node than its cache keeps, so folding every
// insertion eagerly mostly unions filters that are evicted again before
// anything reads the aggregate. scanClasses rebuilds from the surviving
// entries on first use — the same monotone-superset property, a fraction
// of the union work, and one rebuild per node per run (replay-time stores
// go back to incremental folding).
func (ns *nodeState) noteAgg(snap *adSnapshot, now sim.Clock) {
	if now < 0 {
		ns.aggStale = true
		return
	}
	ns.aggOr(snap)
}

// aggRebuild reconstructs the per-class aggregate unions from the live
// cache, clearing the stale mark. Union is commutative, so cache iteration
// order does not matter; the result depends only on the cache contents.
func (ns *nodeState) aggRebuild() {
	ns.aggStale = false
	if !ns.aggOn {
		return
	}
	if ns.agg == nil {
		ns.agg = make([]uint64, content.NumClasses*aggStride)
	} else {
		clear(ns.agg)
	}
	for _, e := range ns.cache {
		ns.aggOr(e.snap)
	}
}

// maybeCompact rebuilds the posting arena once dead (unlinked or
// invalidated) elements dominate it, bounding index memory under cache
// churn. Rebuilding in fifo order restores the ascending-seq invariant.
func (ns *nodeState) maybeCompact() {
	if ns.deadElems < 64 || int(ns.deadElems)*2 < len(ns.elems) {
		return
	}
	ns.elems = ns.elems[:0]
	for i := range ns.head {
		ns.head[i], ns.tail[i] = 0, 0
	}
	ns.deadElems = 0
	for _, src := range ns.fifo {
		if e, ok := ns.cache[src]; ok {
			ns.idxInsert(src, e.seq, e.snap.topics)
		}
	}
}

// scanChains walks the posting chains of the classes in scan and appends
// the sources whose filters pass every probe. A valid entry is processed
// exactly once — in the chain of the lowest class of topics ∩ scan — and
// elements pointing at evicted, superseded or re-topiced entries are
// unlinked in passing. Called under mu; with scan == allClasses this is
// the full cache scan in chain order.
func (ns *nodeState) scanChains(scan content.ClassSet, probes []bloom.Probe, out []overlay.NodeID) []overlay.NodeID {
	for t := uint16(scan); t != 0; t &= t - 1 {
		c := content.Class(bits.TrailingZeros16(t))
		prev := int32(0)
		for e := ns.head[c]; e != 0; {
			el := ns.elems[e-1]
			entry, ok := ns.cache[el.src]
			if !ok || entry.seq != el.seq || !entry.snap.topics.Has(c) {
				e = ns.unlink(c, prev, e)
				continue
			}
			prev, e = e, el.next
			hit := uint16(entry.snap.topics & scan)
			if content.Class(bits.TrailingZeros16(hit)) != c {
				continue // processed in its canonical (lowest shared) chain
			}
			if entry.snap.filter.ContainsAllProbes(probes) {
				out = append(out, el.src)
			}
		}
	}
	return out
}

// serveAds appends up to max cached snapshots whose topics intersect
// interests, in fifo (ascending-seq) order, skipping entries staler than
// staleBefore, the requester's own ad, and — on search-time pulls — ads
// failing the query probes. It merges the interest-class chains by seq,
// which enumerates exactly the entries a full fifo walk with the same
// predicate would, in the same order. Called under mu.
func (ns *nodeState) serveAds(buf []*adSnapshot, interests content.ClassSet, staleBefore sim.Clock, probes []bloom.Probe, requester overlay.NodeID, max int) []*adSnapshot {
	var cur, prv [content.NumClasses]int32
	var cls [content.NumClasses]content.Class
	nc := 0
	for t := uint16(interests); t != 0; t &= t - 1 {
		c := content.Class(bits.TrailingZeros16(t))
		if ns.head[c] != 0 {
			cls[nc], cur[nc] = c, ns.head[c]
			nc++
		}
	}
	for len(buf) < max {
		best := -1
		var bestSeq uint32
		for i := 0; i < nc; i++ {
			if cur[i] == 0 {
				continue
			}
			if sq := ns.elems[cur[i]-1].seq; best < 0 || sq < bestSeq {
				best, bestSeq = i, sq
			}
		}
		if best < 0 {
			break
		}
		c, e := cls[best], cur[best]
		el := ns.elems[e-1]
		entry, ok := ns.cache[el.src]
		if !ok || entry.seq != el.seq || !entry.snap.topics.Has(c) {
			cur[best] = ns.unlink(c, prv[best], e)
			continue
		}
		prv[best], cur[best] = e, el.next
		if hit := uint16(entry.snap.topics & interests); content.Class(bits.TrailingZeros16(hit)) != c {
			continue // offered from its canonical chain
		}
		if entry.lastSeen < staleBefore || entry.snap.src == requester {
			continue
		}
		if probes != nil && !entry.snap.filter.ContainsAllProbes(probes) {
			continue
		}
		buf = append(buf, entry.snap)
	}
	return buf
}

// scanClasses returns the classes whose chains phase 1 must scan: the
// query's own keyword classes plus every complement class whose aggregate
// union passes all probes. Keywords are class-scoped (ClassOfKeyword is
// exact), so an ad that truly contains every query term carries at least
// one query class among its topics. An ad that merely Bloom-false-
// -positives the probes has a filter that is a subset of each of its topic
// unions, so those unions pass the probes too and its chains are scanned —
// the candidate set is exactly the linear scan's, false positives
// included. Without aggregates (variable filter geometries, or an empty
// cache history) every class is scanned. The scan-set choice never changes
// search output, only how much of the cache is touched: any entry whose
// filter passes the probes has every one of its topic-class unions passing
// too (its filter is a subset of each), so its canonical chain — and with
// it the candidate set and order — is the same under any scan superset.
func (s *Scheme) scanClasses(ns *nodeState, terms []content.Keyword, probes []bloom.Probe) content.ClassSet {
	if !ns.aggOn {
		return allClasses
	}
	if ns.aggStale {
		ns.aggRebuild()
	}
	if ns.agg == nil {
		return allClasses
	}
	var q content.ClassSet
	for _, t := range terms {
		q = q.Add(s.sys.U.ClassOfKeyword(t))
	}
	scan := q
	for c := Class(0); c < content.NumClasses; c++ {
		if q.Has(c) {
			continue
		}
		if bloom.WordsContainAllProbes(ns.agg[int(c)*aggStride:(int(c)+1)*aggStride], probes) {
			scan = scan.Add(c)
		}
	}
	return scan
}

// Class aliases content.Class for the loop above.
type Class = content.Class
