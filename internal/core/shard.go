package core

import (
	"asap/internal/overlay"
	"asap/internal/sim"
)

// ASAP's search data flow has exactly the shape the sharded replay engine
// consumes (sim.SearchSharder): one query mutates scheme state on a single
// node — the requester's representative, whose ads cache absorbs drops,
// staleness sweeps and phase-2 merges — and reads scheme state only from
// that node plus its AdsRequestHops-hop eligible neighbourhood (the peers
// a phase-2 ads request can serve from). Everything else a search touches
// (the overlay, document sets, the signature index, latencies) is frozen
// for the whole query batch by the runner's barrier, so it partitions as
// "no scheme state" here.
//
// The read set is computed without the fault plane: message loss can only
// shrink the set of peers actually served from, so the lossless
// neighbourhood is the required conservative superset.

var (
	_ sim.SearchSharder = (*Scheme)(nil)
	_ sim.QueryPhaser   = (*Scheme)(nil)
)

// planScratch is the runner-thread-only working set of AppendSearchReads'
// multi-hop BFS (epoch-stamped visit marks, reusable frontiers). It is
// separate from the delivery buffers on Scheme so a conflict plan can
// never perturb a cascade replay, whatever order the runner interleaves
// them in.
type planScratch struct {
	stamp    []uint32
	epoch    uint32
	frontier []overlay.NodeID
	next     []overlay.NodeID
}

// SearchOwner implements sim.SearchSharder: the only node Search(ev) may
// mutate is ev.Node's representative — itself in flat mode, its super peer
// for an attached leaf, none (negative) for a detached leaf, whose search
// fails before touching any state.
func (s *Scheme) SearchOwner(n overlay.NodeID) overlay.NodeID {
	return s.repr(n)
}

// AppendSearchReads implements sim.SearchSharder: the owner plus its
// h-hop eligible neighbourhood, h = AdsRequestHops. Runner thread only.
func (s *Scheme) AppendSearchReads(owner overlay.NodeID, buf []overlay.NodeID) []overlay.NodeID {
	buf = append(buf, owner)
	h := s.cfg.AdsRequestHops
	if h <= 0 {
		return buf
	}
	if h == 1 {
		// The common case: phase 2 serves from direct neighbours only.
		return append(buf, s.eligibleView(owner)...)
	}
	ps := &s.plan
	if len(ps.stamp) < s.sys.NumNodes() {
		ps.stamp = make([]uint32, s.sys.NumNodes())
	}
	ps.epoch++
	if ps.epoch == 0 {
		clear(ps.stamp)
		ps.epoch = 1
	}
	ps.stamp[owner] = ps.epoch
	frontier := append(ps.frontier[:0], owner)
	next := ps.next[:0]
	for hop := 1; hop <= h && len(frontier) > 0; hop++ {
		next = next[:0]
		for _, u := range frontier {
			for _, nb := range s.eligibleView(u) {
				if ps.stamp[nb] == ps.epoch {
					continue
				}
				ps.stamp[nb] = ps.epoch
				buf = append(buf, nb)
				next = append(next, nb)
			}
		}
		frontier, next = next, frontier
	}
	ps.frontier, ps.next = frontier, next
	return buf
}

// BeginQueryPhase implements sim.QueryPhaser: while a sharded query phase
// is live, the per-shard single-writer contract holds — search threads may
// write their own owners' states (under each node's mu), and no delivery
// write may open at all. beginApply enforces the latter half.
func (s *Scheme) BeginQueryPhase() {
	s.queryPhase.Store(true)
}

// EndQueryPhase implements sim.QueryPhaser, closing the phase opened by
// BeginQueryPhase.
func (s *Scheme) EndQueryPhase() {
	s.queryPhase.Store(false)
}
