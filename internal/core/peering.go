package core

import (
	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// The transport seam. A Scheme normally runs self-contained inside one
// process; the asapnode daemon (internal/cluster) instead runs one replica
// of the scheme per process and performs the search-time exchanges —
// content confirmations and ads requests — over real connections. The seam
// has two halves:
//
//   - Outbound (Peering): the scheme resolves each exchange's verdict
//     through the installed Peering instead of purely local state. Every
//     hook also receives the local replica's own answer, so an
//     implementation can verify remote state against local state and
//     detect replica divergence; returning the local answers unchanged
//     makes the hook a pure observer and keeps the replay byte-identical
//     to the unpeered run.
//   - Inbound (ConfirmWire, ServeAdsWire, PublishedAd, AdObserver): the
//     read-only serving methods a daemon's connection handlers call to
//     answer a remote scheme's exchanges from this replica, plus the
//     publication hook that tells a daemon which ads to push to its peers.
//
// All serving methods take the same locks the in-process search path
// takes, so they are safe to call from connection goroutines while the
// local replica is executing a query batch. None of them touch the
// scheme's RNG or the fault plane: serving a remote peer never perturbs
// the local replay.
type Peering interface {
	// Confirm resolves one content confirmation: does candidate src answer
	// (it is alive) and do its group contents match every term.
	// localAlive/localMatch are this replica's own verdicts; requester is
	// the searching node (after any super-peer rerouting). The returned
	// verdicts drive the retry loop and the hit count exactly as the local
	// ones would.
	Confirm(requester, src overlay.NodeID, terms []content.Keyword, localAlive, localMatch bool) (alive, match bool)

	// ServeAds observes one ads-request exchange: target was asked (with
	// the given interest set, staleness horizon and query terms) and this
	// replica computed offered as the reply. Implementations may fetch the
	// same reply from target's owning daemon and compare. The offered
	// snapshots' filters are immutable and safe to retain for the call's
	// duration only.
	ServeAds(requester, target overlay.NodeID, interests content.ClassSet, staleBefore sim.Clock, terms []content.Keyword, offered []AdServed)
}

// AdServed is one ad as it crosses the seam: the snapshot identity plus
// its immutable filter. FullWire/PatchWire mirror the snapshot's wire
// sizing so a verifier can check encoded lengths without re-deriving them.
type AdServed struct {
	Src       overlay.NodeID
	Version   uint16
	Topics    content.ClassSet
	Filter    *bloom.Filter
	FullWire  int
	PatchWire int
}

// AdObserver sees every ad publication the moment its snapshot is
// installed (warm-up, content changes, joins, hierarchical reconciles).
// filter is the published snapshot's immutable filter; patch is non-nil
// when the publication produced a patch from the previous version — it
// aliases the scheme's pooled diff buffer and MUST be consumed (encoded or
// copied) before the observer returns. The observer runs on the runner
// thread inside the publication's apply section; it must not call back
// into the scheme.
type AdObserver func(src overlay.NodeID, version uint16, topics content.ClassSet, filter *bloom.Filter, patch *bloom.Patch)

// SetPeering installs the transport seam; nil (the default) keeps every
// exchange local. Set before Attach and never change it mid-run.
func (s *Scheme) SetPeering(p Peering) { s.peering = p }

// SetAdObserver installs the publication hook; nil (the default) disables
// it. Set before Attach — warm-up publications fire it too.
func (s *Scheme) SetAdObserver(fn AdObserver) { s.adObs = fn }

// ConfirmWire answers a content confirmation against this replica: is src
// alive, and do its group contents match every term. Read-only; safe from
// connection goroutines during a query batch.
func (s *Scheme) ConfirmWire(src overlay.NodeID, terms []content.Keyword) (alive, match bool) {
	if !s.sys.G.Alive(src) {
		return false, false
	}
	return true, s.groupMatches(src, terms)
}

// ServeAdsWire computes the ads target would serve requester — the exact
// search-time selection adsRequest makes, in the same (insertion) order —
// from this replica's state. Safe from connection goroutines during a
// query batch: it locks target's state like any in-process neighbour
// serve, and mutates nothing.
func (s *Scheme) ServeAdsWire(requester, target overlay.NodeID, interests content.ClassSet, staleBefore sim.Clock, terms []content.Keyword) []AdServed {
	sc := s.getScratch()
	defer s.putScratch(sc)
	for _, term := range terms {
		sc.keys = append(sc.keys, uint64(term))
	}
	sc.probes = bloom.AppendKeyProbes(sc.probes, sc.keys)
	sc.qa.reset(&s.slots, sc.probes)

	q := &s.nodes[target]
	q.mu.Lock()
	s.checkStable()
	serve := sc.serve[:0]
	if pub := q.published; pub != nil && s.cfg.MaxAdsPerReply > 0 &&
		pub.src != requester && pub.topics.Intersects(interests) && sc.qa.matches(pub) {
		serve = append(serve, pub)
	}
	serve = q.serveAds(&sc.qa, serve, interests, staleBefore, requester, s.cfg.MaxAdsPerReply)
	q.mu.Unlock()
	sc.serve = serve
	return appendServed(nil, serve)
}

// PublishedAd returns node n's current published ad, and whether one
// exists. Runner thread only (between query batches) — daemons verify
// replicated publications against it at step barriers.
func (s *Scheme) PublishedAd(n overlay.NodeID) (AdServed, bool) {
	snap := s.nodes[n].published
	if snap == nil {
		return AdServed{}, false
	}
	return servedOf(snap), true
}

func servedOf(snap *adSnapshot) AdServed {
	return AdServed{
		Src:       snap.src,
		Version:   snap.version,
		Topics:    snap.topics,
		Filter:    snap.filter,
		FullWire:  snap.fullWire,
		PatchWire: snap.patchWire,
	}
}

func appendServed(out []AdServed, snaps []*adSnapshot) []AdServed {
	for _, snap := range snaps {
		out = append(out, servedOf(snap))
	}
	return out
}
