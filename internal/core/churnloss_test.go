package core

import (
	"slices"
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// TestIndexedCacheEquivalenceUnderChurnAndLoss replays the shared test
// trace — joins, leaves, content churn and lossy searches all active at
// once — against a deliberately tiny cache, and continually checks the
// bit-sliced signature scan against the scalar linear-scan specification
// (oracle_test.go). The regime exercises exactly the paths that can
// desynchronise the signature index from the caches: FIFO eviction (tiny
// capacity), dead-source eviction after failed confirmations (loss plane),
// staleness expiry, patch snapshot swaps, and the steady growth of the
// global slot matrix as republished ads register new signatures. Run under
// -race it additionally validates that concurrent searches share the
// frozen matrices safely.
func TestIndexedCacheEquivalenceUnderChurnAndLoss(t *testing.T) {
	sys := sim.NewSystem(testU, testTr, overlay.Crawled, testNet, 77)
	sys.SetFaults(faults.New(faults.Config{Seed: 77, LossRate: 0.05}))
	cfg := testConfig(RW)
	cfg.CacheCapacity = 25 // force constant eviction pressure
	s := New(cfg)
	s.Attach(sys)

	// sample holds the nodes audited at every checkpoint; the querying
	// node is additionally audited around each of its searches.
	sample := []overlay.NodeID{1, 17, 99, 250, 399}

	var qa queryAcc
	verify := func(where string, p overlay.NodeID, now sim.Clock, terms []content.Keyword) {
		ns := &s.nodes[p]
		var keys []uint64
		for _, term := range terms {
			keys = append(keys, uint64(term))
		}
		probes := bloom.AppendKeyProbes(nil, keys)
		qa.reset(&s.slots, probes)

		ns.mu.Lock()
		defer ns.mu.Unlock()

		got := append([]overlay.NodeID(nil), ns.scanCache(&qa, nil)...)
		want := scanCacheReference(ns, probes)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: node %d at t=%d: sliced scan %v != linear scan %v", where, p, now, got, want)
		}

		interests := s.groupInterests(p)
		staleBefore := now - sim.Clock(cfg.StaleFactor*cfg.RefreshPeriodSec)*1000
		for _, max := range []int{1, 4, 1 << 30} {
			gotAds := ns.serveAds(&qa, nil, interests, staleBefore, p, max)
			wantAds := serveAdsReference(ns, interests, staleBefore, probes, p, max)
			if !slices.Equal(gotAds, wantAds) {
				t.Fatalf("%s: node %d at t=%d max=%d: serveAds %d entries, fifo reference %d", where, p, now, max, len(gotAds), len(wantAds))
			}
		}
	}

	// Replay mirrors sim.Run's serial schedule: per-second ticks, state
	// events applied in order, queries searched in place — with index
	// audits interleaved so every churn step is checked soon after.
	curSec := 0
	advance := func(tm sim.Clock) {
		for int64(curSec+1)*1000 <= tm {
			curSec++
			s.Tick(int64(curSec) * 1000)
		}
	}
	queries := 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		advance(ev.Time)
		if ev.Kind == trace.Query {
			verify("pre-search", ev.Node, ev.Time, ev.Terms)
			s.Search(ev)
			queries++
			verify("post-search", ev.Node, ev.Time, ev.Terms)
			continue
		}
		if ev.Kind == trace.Leave {
			s.NodeLeaving(ev.Time, ev.Node)
		}
		sys.ApplyEvent(ev)
		switch ev.Kind {
		case trace.ContentAdd:
			s.ContentChanged(ev.Time, ev.Node, ev.Doc, true)
		case trace.ContentRemove:
			s.ContentChanged(ev.Time, ev.Node, ev.Doc, false)
		case trace.Join:
			s.NodeJoined(ev.Time, ev.Node)
		case trace.Leave:
			s.NodeLeft(ev.Time, ev.Node)
		}
		if i%25 == 0 {
			for _, p := range sample {
				verify("churn checkpoint", p, ev.Time, nil)
			}
		}
	}
	if queries == 0 {
		t.Fatal("trace replayed no queries; the property was never exercised")
	}
}
