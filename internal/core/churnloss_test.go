package core

import (
	"slices"
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// chainScanReference is the straight-line specification of phase 1's cache
// lookup: every cached source whose filter passes all probes, regardless
// of topic chains, aggregates or index state.
func chainScanReference(ns *nodeState, probes []bloom.Probe) []overlay.NodeID {
	var out []overlay.NodeID
	for src, e := range ns.cache {
		if e.snap.filter.ContainsAllProbes(probes) {
			out = append(out, src)
		}
	}
	slices.Sort(out)
	return out
}

// serveAdsReference is the straight-line specification of serveAds: walk
// the fifo in insertion order and offer every fresh, interest-matching,
// probe-passing entry except the requester's own, up to max.
func serveAdsReference(ns *nodeState, interests content.ClassSet, staleBefore sim.Clock, probes []bloom.Probe, requester overlay.NodeID, max int) []*adSnapshot {
	var out []*adSnapshot
	for _, src := range ns.fifo {
		if len(out) >= max {
			break
		}
		e, ok := ns.cache[src]
		if !ok || !e.snap.topics.Intersects(interests) {
			continue
		}
		if e.lastSeen < staleBefore || e.snap.src == requester {
			continue
		}
		if probes != nil && !e.snap.filter.ContainsAllProbes(probes) {
			continue
		}
		out = append(out, e.snap)
	}
	return out
}

// TestIndexedCacheEquivalenceUnderChurnAndLoss replays the shared test
// trace — joins, leaves, content churn and lossy searches all active at
// once — against a deliberately tiny cache, and continually checks the
// posting-chain index against the linear-scan specification. The regime
// exercises exactly the paths that can desynchronise the index from the
// cache: FIFO eviction (tiny capacity), dead-source eviction after failed
// confirmations (loss plane), staleness expiry, patch re-topicing, and
// arena compaction once dead elements dominate.
func TestIndexedCacheEquivalenceUnderChurnAndLoss(t *testing.T) {
	sys := sim.NewSystem(testU, testTr, overlay.Crawled, testNet, 77)
	sys.SetFaults(faults.New(faults.Config{Seed: 77, LossRate: 0.05}))
	cfg := testConfig(RW)
	cfg.CacheCapacity = 25 // force constant eviction pressure
	s := New(cfg)
	s.Attach(sys)

	// sample holds the nodes audited at every checkpoint; the querying
	// node is additionally audited around each of its searches.
	sample := []overlay.NodeID{1, 17, 99, 250, 399}

	verify := func(where string, p overlay.NodeID, now sim.Clock, terms []content.Keyword) {
		ns := &s.nodes[p]
		var keys []uint64
		for _, term := range terms {
			keys = append(keys, uint64(term))
		}
		probes := bloom.AppendKeyProbes(nil, keys)

		ns.mu.Lock()
		defer ns.mu.Unlock()

		got := append([]overlay.NodeID(nil), ns.scanChains(s.scanClasses(ns, terms, probes), probes, nil)...)
		slices.Sort(got)
		want := chainScanReference(ns, probes)
		if !slices.Equal(got, want) {
			t.Fatalf("%s: node %d at t=%d: indexed scan %v != linear scan %v", where, p, now, got, want)
		}

		interests := s.groupInterests(p)
		staleBefore := now - sim.Clock(cfg.StaleFactor*cfg.RefreshPeriodSec)*1000
		for _, max := range []int{1, 4, 1 << 30} {
			gotAds := ns.serveAds(nil, interests, staleBefore, probes, p, max)
			wantAds := serveAdsReference(ns, interests, staleBefore, probes, p, max)
			if !slices.Equal(gotAds, wantAds) {
				t.Fatalf("%s: node %d at t=%d max=%d: serveAds %d entries, fifo reference %d", where, p, now, max, len(gotAds), len(wantAds))
			}
		}
	}

	// Replay mirrors sim.Run's serial schedule: per-second ticks, state
	// events applied in order, queries searched in place — with index
	// audits interleaved so every churn step is checked soon after.
	curSec := 0
	advance := func(tm sim.Clock) {
		for int64(curSec+1)*1000 <= tm {
			curSec++
			s.Tick(int64(curSec) * 1000)
		}
	}
	queries := 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		advance(ev.Time)
		if ev.Kind == trace.Query {
			verify("pre-search", ev.Node, ev.Time, ev.Terms)
			s.Search(ev)
			queries++
			verify("post-search", ev.Node, ev.Time, ev.Terms)
			continue
		}
		if ev.Kind == trace.Leave {
			s.NodeLeaving(ev.Time, ev.Node)
		}
		sys.ApplyEvent(ev)
		switch ev.Kind {
		case trace.ContentAdd:
			s.ContentChanged(ev.Time, ev.Node, ev.Doc, true)
		case trace.ContentRemove:
			s.ContentChanged(ev.Time, ev.Node, ev.Doc, false)
		case trace.Join:
			s.NodeJoined(ev.Time, ev.Node)
		case trace.Leave:
			s.NodeLeft(ev.Time, ev.Node)
		}
		if i%25 == 0 {
			for _, p := range sample {
				verify("churn checkpoint", p, ev.Time, nil)
			}
		}
	}
	if queries == 0 {
		t.Fatal("trace replayed no queries; the property was never exercised")
	}
}
