package core

import "fmt"

// DeliveryKind selects the ad-forwarding algorithm, giving the three ASAP
// schemes the paper examines: ASAP(FLD), ASAP(RW) and ASAP(GSA).
type DeliveryKind uint8

const (
	// FLD floods ads with a TTL.
	FLD DeliveryKind = iota
	// RW forwards ads along random walks under a message budget.
	RW
	// GSAKind seeds one walker per neighbour under a shared budget.
	GSAKind
)

// DeliveryKinds lists the three variants in paper order.
var DeliveryKinds = []DeliveryKind{FLD, RW, GSAKind}

// String returns the paper's scheme suffix.
func (d DeliveryKind) String() string {
	switch d {
	case FLD:
		return "fld"
	case RW:
		return "rw"
	case GSAKind:
		return "gsa"
	default:
		return "invalid"
	}
}

// Config parameterises an ASAP scheme. Defaults follow §IV-A where the
// paper pins a value and are stated assumptions elsewhere (the paper gives
// no refresh period or cache capacity; DESIGN.md D4/D6 ablate them).
type Config struct {
	// Delivery is the ad-forwarding algorithm.
	Delivery DeliveryKind
	// FloodTTL bounds FLD ad floods (paper: 6, same as query flooding).
	FloodTTL int
	// Walkers is the RW walker count (paper: 5).
	Walkers int
	// BudgetUnit is M₀: one ad delivery under RW/GSA may send at most
	// |topics|·M₀ messages (paper: 3,000).
	BudgetUnit int
	// UpdateBudgetDiv reduces the budget of post-warm-up deliveries
	// (patch ads, refresh ads, and full ads published mid-run) to
	// |topics|·M₀/UpdateBudgetDiv. The initial distribution invests the
	// full budget to seed caches; updates only need to re-touch them.
	// This calibration is what keeps full ads a single-digit share of ad
	// traffic (Fig. 7) and ASAP(RW)'s load under the paper's ceiling
	// (DESIGN.md §2).
	UpdateBudgetDiv int
	// AdsRequestHops is h, the radius of the neighbour ads request
	// (paper default: 1).
	AdsRequestHops int
	// MaxConfirms caps how many matching ad sources one search confirms
	// in parallel.
	MaxConfirms int
	// MinResults is how many positive confirmations satisfy a search.
	// Table I continues to the neighbour ads request "if more responses
	// needed": with MinResults > 1 a search that confirmed fewer sources
	// than this runs phase 2 even though it already has an answer.
	MinResults int
	// BiasedDelivery makes budgeted ad walks prefer forwarding to
	// neighbours whose interests intersect the ad's topics, steering ads
	// toward their "potential consumers" (§III-A) at equal budget. Off by
	// default (the paper's walks are uniform).
	BiasedDelivery bool
	// CacheCapacity bounds each node's ads cache (FIFO eviction).
	CacheCapacity int
	// RefreshPeriodSec is how often a node re-advertises liveness with a
	// refresh ad; 0 disables refreshing.
	RefreshPeriodSec int
	// StaleFactor expires cached ads not seen for
	// StaleFactor×RefreshPeriodSec seconds (lazy eviction during scans).
	StaleFactor int
	// MaxAdsPerReply caps the ads returned in one ads-request reply.
	MaxAdsPerReply int
	// Hierarchical enables the super-peer mode of the paper's footnote 3:
	// "only super peers are responsible for ad representation, delivery,
	// caching and processing". Requires an overlay.SuperPeerKind graph; a
	// super peer advertises the union of its own and its leaves' contents,
	// leaves route searches through their super peer, and only super
	// peers cache ads.
	Hierarchical bool
	// RetryAttempts is how many times a search contact (confirmation, ads
	// request) is attempted before the requester gives up, when a fault
	// plane can drop messages; 0 and 1 both mean a single attempt. On a
	// reliable network (no plane, or loss rate 0) exactly one attempt is
	// made regardless, which keeps the zero-loss replay byte-identical to
	// the paper's model.
	RetryAttempts int
	// RetryTimeoutMS is the extra wait beyond the contact's round-trip
	// time before a lost request or reply is retried.
	RetryTimeoutMS int
	// VariableFilters switches content filters from the paper's chosen
	// fixed geometry (m = 11,542) to the variable-length alternative it
	// describes: each node picks the smallest pool length covering its
	// keyword set (§III-B; DESIGN.md D1). Patch ads across a length
	// change fall back to a full ad.
	VariableFilters bool
	// Seed drives delivery-walk randomness.
	Seed uint64
}

// DefaultConfig returns the paper's parameters for the given delivery
// algorithm at full (10,000-node) scale.
func DefaultConfig(d DeliveryKind) Config {
	return Config{
		Delivery:         d,
		FloodTTL:         6,
		Walkers:          5,
		BudgetUnit:       3000,
		UpdateBudgetDiv:  12,
		AdsRequestHops:   1,
		MaxConfirms:      5,
		MinResults:       1,
		CacheCapacity:    2000,
		RefreshPeriodSec: 300,
		StaleFactor:      12,
		MaxAdsPerReply:   64,
		RetryAttempts:    2,
		RetryTimeoutMS:   200,
		Seed:             1,
	}
}

// Scaled shrinks the size-dependent knobs (delivery budget, cache
// capacity) by factor f for reduced-scale experiments, keeping the
// algorithmic parameters intact. The paper's M₀ = 3,000 is calibrated to a
// 10,000-node overlay; a budget that floods a small test overlay many
// times over would make every variant degenerate to "everyone caches
// everything".
func (c Config) Scaled(f float64) Config {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("core: scale factor %v out of (0,1]", f))
	}
	c.BudgetUnit = max(50, int(float64(c.BudgetUnit)*f))
	c.CacheCapacity = max(50, int(float64(c.CacheCapacity)*f))
	return c
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Delivery > GSAKind:
		return fmt.Errorf("core: unknown delivery kind %d", c.Delivery)
	case c.FloodTTL < 1:
		return fmt.Errorf("core: FloodTTL %d < 1", c.FloodTTL)
	case c.Walkers < 1:
		return fmt.Errorf("core: Walkers %d < 1", c.Walkers)
	case c.BudgetUnit < 1:
		return fmt.Errorf("core: BudgetUnit %d < 1", c.BudgetUnit)
	case c.UpdateBudgetDiv < 1:
		return fmt.Errorf("core: UpdateBudgetDiv %d < 1", c.UpdateBudgetDiv)
	case c.AdsRequestHops < 0:
		return fmt.Errorf("core: AdsRequestHops %d < 0", c.AdsRequestHops)
	case c.MaxConfirms < 1:
		return fmt.Errorf("core: MaxConfirms %d < 1", c.MaxConfirms)
	case c.MinResults < 1 || c.MinResults > c.MaxConfirms:
		return fmt.Errorf("core: MinResults %d out of [1, MaxConfirms=%d]", c.MinResults, c.MaxConfirms)
	case c.CacheCapacity < 1:
		return fmt.Errorf("core: CacheCapacity %d < 1", c.CacheCapacity)
	case c.RefreshPeriodSec < 0:
		return fmt.Errorf("core: RefreshPeriodSec %d < 0", c.RefreshPeriodSec)
	case c.RefreshPeriodSec > 0 && c.StaleFactor < 1:
		return fmt.Errorf("core: StaleFactor %d < 1 with refreshing enabled", c.StaleFactor)
	case c.MaxAdsPerReply < 1:
		return fmt.Errorf("core: MaxAdsPerReply %d < 1", c.MaxAdsPerReply)
	case c.RetryAttempts < 0:
		return fmt.Errorf("core: RetryAttempts %d < 0", c.RetryAttempts)
	case c.RetryTimeoutMS < 0:
		return fmt.Errorf("core: RetryTimeoutMS %d < 0", c.RetryTimeoutMS)
	}
	return nil
}
