package core

import "asap/internal/content"

// termKeys converts query terms to the Bloom layer's integer key domain.
// Test-only: production paths build probe lists in place on the search
// scratch instead of allocating a key slice per query.
func termKeys(terms []content.Keyword) []uint64 {
	keys := make([]uint64, len(terms))
	for i, t := range terms {
		keys[i] = uint64(t)
	}
	return keys
}
