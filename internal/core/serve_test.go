package core

import (
	"slices"
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// searchROReference is the straight-line specification of SearchRO: scalar
// Bloom probing, map-based BFS, no accumulator, no scratch reuse. The
// optimised path must match it element for element on any quiescent state.
func searchROReference(s *Scheme, p overlay.NodeID, terms []content.Keyword, now sim.Clock) ([]overlay.NodeID, bool) {
	rp := s.repr(p)
	if rp < 0 {
		return nil, false
	}
	keys := make([]uint64, 0, len(terms))
	for _, term := range terms {
		keys = append(keys, uint64(term))
	}
	probes := bloom.AppendKeyProbes(nil, keys)
	staleBefore := sim.Clock(minClock)
	if s.cfg.RefreshPeriodSec > 0 {
		staleBefore = now - sim.Clock(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec)*1000
	}

	ns := &s.nodes[rp]
	var out []overlay.NodeID
	seen := map[overlay.NodeID]bool{}
	attempts := 0
	for _, src := range ns.fifo {
		if attempts >= s.cfg.MaxConfirms {
			break
		}
		e := ns.entry(src)
		if e == nil || e.lastSeen < staleBefore || !e.snap.filter.ContainsAllProbes(probes) {
			continue
		}
		attempts++
		seen[src] = true
		if s.sys.G.Alive(src) && s.groupMatches(src, terms) {
			out = append(out, src)
		}
	}
	if len(out) >= s.cfg.MinResults || s.cfg.AdsRequestHops == 0 {
		return out, false
	}

	// Phase 2: BFS in adjacency order, confirm each peer's qualifying
	// offers (published first, then fifo, MaxAdsPerReply per peer).
	interests := s.groupInterests(rp)
	visited := map[overlay.NodeID]bool{rp: true}
	frontier := []overlay.NodeID{rp}
	var targets []overlay.NodeID
	for hop := 1; hop <= s.cfg.AdsRequestHops && len(frontier) > 0; hop++ {
		var next []overlay.NodeID
		for _, u := range frontier {
			for _, nb := range s.eligibleView(u) {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				targets = append(targets, nb)
				next = append(next, nb)
			}
		}
		frontier = next
	}
	attempts = 0
	confirm := func(src overlay.NodeID) {
		if seen[src] {
			return
		}
		seen[src] = true
		attempts++
		if s.sys.G.Alive(src) && s.groupMatches(src, terms) {
			out = append(out, src)
		}
	}
	for _, tg := range targets {
		if attempts >= s.cfg.MaxConfirms {
			break
		}
		q := &s.nodes[tg]
		offered := 0
		if pub := q.published; pub != nil && s.cfg.MaxAdsPerReply > 0 &&
			pub.src != rp && pub.topics.Intersects(interests) &&
			pub.filter.ContainsAllProbes(probes) {
			offered++
			confirm(pub.src)
		}
		for _, src := range q.fifo {
			if offered >= s.cfg.MaxAdsPerReply || attempts >= s.cfg.MaxConfirms {
				break
			}
			e := q.tab.get(src)
			if e == nil || !e.snap.topics.Intersects(interests) {
				continue
			}
			if e.lastSeen < staleBefore || src == rp {
				continue
			}
			if !e.snap.filter.ContainsAllProbes(probes) {
				continue
			}
			offered++
			confirm(src)
		}
	}
	return out, true
}

// TestSearchROMatchesOracle replays the test trace — churn, content drift,
// 5% loss, staleness expiry, evictions — through the real mutating replay
// and, at every batch boundary (a quiescent state), pins SearchRO against
// the scalar reference for the queries of that batch, with one shared
// scratch and result buffer to prove reuse is clean.
func TestSearchROMatchesOracle(t *testing.T) {
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 1)
	sys.SetFaults(faults.New(faults.Config{Seed: 1, LossRate: 0.05}))
	s := New(testConfig(RW))
	st := sim.NewStepper(sys, s, 0)

	sc := NewServeScratch()
	var dst []overlay.NodeID
	checked := 0
	phase2Seen := false
	for batch := st.NextBatch(); batch != nil; batch = st.NextBatch() {
		for _, ev := range batch {
			// Check BEFORE the mutating Search, so the state under test is
			// exactly the quiescent post-apply state.
			want, wantP2 := searchROReference(s, ev.Node, ev.Terms, ev.Time)
			var res ServeResult
			res, dst = s.SearchRO(ev.Node, ev.Terms, ev.Time, sc, dst[:0])
			if !slices.Equal(res.Sources, want) || res.Phase2 != wantP2 {
				t.Fatalf("query %d (node %d, t=%d): SearchRO = %v (phase2=%v), oracle %v (phase2=%v)",
					checked, ev.Node, ev.Time, res.Sources, res.Phase2, want, wantP2)
			}
			phase2Seen = phase2Seen || res.Phase2
			checked++
			st.Record(ev, s.Search(ev))
		}
	}
	st.Finish()
	if checked < 500 {
		t.Fatalf("only %d queries checked", checked)
	}
	if !phase2Seen {
		t.Error("no query exercised the phase-2 neighbourhood path")
	}
}

// TestSearchROIsReadOnly pins the no-mutation contract: a SearchRO burst
// between two identical mutating searches must not change the second
// search's outcome, cache population, or the seqlock version.
func TestSearchROIsReadOnly(t *testing.T) {
	s, sys := attach(t, RW)
	var q *trace.Event
	for i := range testTr.Events {
		if testTr.Events[i].Kind == trace.Query {
			q = &testTr.Events[i]
			break
		}
	}
	if q == nil {
		t.Fatal("no query in test trace")
	}
	sizes := func() []int {
		out := make([]int, sys.NumNodes())
		for n := range out {
			out[n] = s.CacheSize(overlay.NodeID(n))
		}
		return out
	}
	before := sizes()
	verBefore := s.ServeVersion()
	sc := NewServeScratch()
	var dst []overlay.NodeID
	var first ServeResult
	for i := 0; i < 50; i++ {
		var res ServeResult
		res, dst = s.SearchRO(q.Node, q.Terms, q.Time, sc, dst[:0])
		if i == 0 {
			first = ServeResult{Sources: append([]overlay.NodeID(nil), res.Sources...), Phase2: res.Phase2}
		} else if !slices.Equal(res.Sources, first.Sources) || res.Phase2 != first.Phase2 {
			t.Fatalf("iteration %d: answer drifted: %v vs %v", i, res.Sources, first.Sources)
		}
	}
	if got := s.ServeVersion(); got != verBefore {
		t.Fatalf("seqlock version moved %d → %d across read-only searches", verBefore, got)
	}
	if after := sizes(); !slices.Equal(before, after) {
		t.Fatal("SearchRO changed a cache population")
	}
}
