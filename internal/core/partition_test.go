package core

import (
	"testing"

	"asap/internal/overlay"
	"asap/internal/search"
	"asap/internal/sim"
	"asap/internal/trace"
)

// TestSearchSurvivesOverlayPartition injects the harshest overlay failure
// — the requester loses every neighbour — and contrasts ASAP with
// flooding. Query-based search dies with the overlay: no neighbours, no
// propagation. ASAP keeps answering from the local ads cache because a
// confirmation involves "only the initiating and destination nodes"
// (§III-C); the overlay is only needed to refill the cache.
func TestSearchSurvivesOverlayPartition(t *testing.T) {
	sysA := sim.NewSystem(testU, testTr, overlay.Random, testNet, 11)
	asap := New(testConfig(FLD)) // broad warm-up so the cache is rich
	asap.Attach(sysA)

	sysF := sim.NewSystem(testU, testTr, overlay.Random, testNet, 11)
	flood := search.NewFlooding()
	flood.Attach(sysF)

	// Pick a query whose requester we can isolate in both systems (same
	// seed → same graphs).
	var ev *trace.Event
	for i := range testTr.Events {
		if testTr.Events[i].Kind == trace.Query {
			ev = &testTr.Events[i]
			break
		}
	}
	if ev == nil {
		t.Fatal("no query")
	}
	// Both searches succeed pre-partition.
	if !asap.Search(ev).Success {
		t.Skip("ASAP missed pre-partition; isolation comparison is moot for this trace head")
	}
	if !flood.Search(ev).Success {
		t.Fatal("flooding failed pre-partition in a connected overlay")
	}

	isolate := func(sys *sim.System, n overlay.NodeID) {
		for len(sys.G.Neighbors(n)) > 0 {
			sys.G.Leave(sys.G.Neighbors(n)[0])
		}
	}
	isolate(sysA, ev.Node)
	isolate(sysF, ev.Node)

	if flood.Search(ev).Success {
		t.Error("flooding succeeded with zero live neighbours")
	}
	res := asap.Search(ev)
	if !res.Success {
		t.Error("ASAP failed despite a warm ads cache; partitions must not break cached one-hop search")
	}
	if res.Success && res.Hops != 1 {
		t.Errorf("isolated ASAP search took %d hops, want 1 (pure cache + confirmation)", res.Hops)
	}
}

// TestMassDepartureDegradesGracefully kills half the overlay at once and
// verifies ASAP neither panics nor wedges: success drops but stays
// nonzero, and dead sources get evicted on contact.
func TestMassDepartureDegradesGracefully(t *testing.T) {
	sys := sim.NewSystem(testU, testTr, overlay.Crawled, testNet, 12)
	s := New(testConfig(RW))
	s.Attach(sys)

	// Kill every odd node.
	for n := 1; n < testTr.InitialLive; n += 2 {
		node := overlay.NodeID(n)
		if sys.G.Alive(node) {
			ev := trace.Event{Time: 1000, Kind: trace.Leave, Node: node}
			sys.ApplyEvent(&ev)
			s.NodeLeft(1000, node)
		}
	}

	succ, total := 0, 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query || ev.Node%2 == 1 {
			continue // dead requesters don't search
		}
		if !sys.G.Alive(ev.Node) {
			continue
		}
		total++
		if s.Search(ev).Success {
			succ++
		}
		if total >= 200 {
			break
		}
	}
	if total == 0 {
		t.Fatal("no live requesters")
	}
	rate := float64(succ) / float64(total)
	if rate == 0 {
		t.Error("mass departure killed every search; expected graceful degradation")
	}
	t.Logf("success after 50%% departure: %.1f%% (%d/%d)", rate*100, succ, total)
}
