package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Scheme is the ASAP search algorithm as a pluggable sim.Scheme. Create
// one per run with New; a Scheme is bound to a single system by Attach.
type Scheme struct {
	cfg   Config
	sys   *sim.System
	nodes []nodeState

	// obs caches the system's observability recorder (nil when off) so
	// search/delivery hot paths skip the System indirection.
	obs *obs.Recorder

	// wheel[slot] lists nodes whose refresh ad fires at seconds ≡ slot
	// (mod RefreshPeriodSec), spreading refresh traffic evenly.
	wheel [][]overlay.NodeID

	// Runner-thread-only state for ad deliveries. The buffers amortise the
	// per-delivery queue and neighbour-list allocations across a run.
	rng    *rand.Rand
	acc    sim.SecAccumulator
	stamp  []uint32
	epoch  uint32
	floodQ []floodItem
	wlkBuf []overlay.NodeID

	// slots is the global signature index (see adindex.go): every published
	// snapshot's filter is bit-sliced into the matrix of its geometry, so
	// searches match cached ads by word-parallel bit tests. Written on the
	// runner thread only (publishWith), frozen during query batches.
	slots adSlots

	// patchBuf is the pooled diff buffer of publishWith (runner thread
	// only): one publish per content change all replay long reuses its
	// position slices instead of allocating a fresh patch.
	patchBuf bloom.Patch

	// applyVer is the delivery-plane seqlock: odd while a runner-thread
	// write section (a delivery, a publish, a graceful-leave eviction) is
	// open. The runner's query-batch barrier guarantees such sections never
	// overlap a search, so per-node state needs no lock on the apply path;
	// search-side critical sections assert the guarantee via checkStable.
	// One version bump per section — not per visited node — keeps the
	// cost off the delivery hot loop entirely.
	applyVer atomic.Uint32

	// queryPhase extends the seqlock contract to sharded replay (shard.go):
	// true while the runner has a parallel intra-shard query phase open, in
	// which the only legal writers are search threads mutating their own
	// owners' states. beginApply panics while it is set.
	queryPhase atomic.Bool

	// peering, when set, resolves search-time exchanges through a remote
	// replica; adObs, when set, sees every publication (see peering.go).
	// Both are nil in ordinary in-process runs.
	peering Peering
	adObs   AdObserver

	// plan is AppendSearchReads' BFS scratch (runner thread only).
	plan planScratch

	// scratch pools per-query working sets; see searchScratch.
	scratch sync.Pool
}

// The runner coalesces same-second same-node content runs for schemes that
// opt in; Scheme does (ContentChangedBatch).
var _ sim.ContentBatcher = (*Scheme)(nil)

// New returns an ASAP scheme with the given configuration. It panics on an
// invalid configuration.
func New(cfg Config) *Scheme {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Scheme{cfg: cfg}
	s.scratch.New = func() any {
		return &searchScratch{
			// Non-nil empty probes keep the search/join pull distinction
			// (probes == nil means a join-time interest pull) even for
			// term-less queries.
			probes:    make([]bloom.Probe, 0, 8),
			confirmed: make(map[overlay.NodeID]bool, 8),
			seen:      make(map[overlay.NodeID]int, 8),
		}
	}
	return s
}

// Name implements sim.Scheme: "asap-fld", "asap-rw" or "asap-gsa".
func (s *Scheme) Name() string { return fmt.Sprintf("asap-%s", s.cfg.Delivery) }

// Config returns the scheme's configuration.
func (s *Scheme) Config() Config { return s.cfg }

// LoadMask implements sim.Scheme: ASAP's system load counts ad deliveries
// plus search-related confirmation and ads-request traffic (§V-B).
func (s *Scheme) LoadMask() metrics.ClassMask { return metrics.ASAPLoadMask }

// Attach implements sim.Scheme: it initialises per-node state and performs
// the warm-up ad distribution — every initially-live sharer publishes and
// delivers its full ad before the trace starts (accounted as warm-up, not
// system load; the paper measures load on a warmed-up system).
func (s *Scheme) Attach(sys *sim.System) {
	if s.cfg.Hierarchical && sys.G.Kind() != overlay.SuperPeerKind {
		panic("core: Hierarchical config requires an overlay.SuperPeerKind graph")
	}
	s.sys = sys
	s.obs = sys.Obs()
	n := sys.NumNodes()
	s.nodes = make([]nodeState, n)
	s.rng = rand.New(rand.NewPCG(s.cfg.Seed, 0x5851f42d4c957f2d))
	s.stamp = make([]uint32, n)
	if s.cfg.RefreshPeriodSec > 0 {
		s.wheel = make([][]overlay.NodeID, s.cfg.RefreshPeriodSec)
	}

	for v := 0; v < n; v++ {
		ns := &s.nodes[v]
		ns.minSeen = maxClock
		ns.dirty = true
		for _, d := range sys.Docs(overlay.NodeID(v)) {
			ns.classCnt[sys.U.ClassOf(d)]++
		}
		if s.wheel != nil {
			slot := v % s.cfg.RefreshPeriodSec
			s.wheel[slot] = append(s.wheel[slot], overlay.NodeID(v))
		}
	}
	// Warm-up: every initially-live representative publishes a full ad.
	// Filter construction dominates the publish cost and is a pure read of
	// immutable system state, so the builds fan out across GOMAXPROCS
	// workers; publication and delivery stay serial on this thread, in
	// node order, so the warm-up replays byte-identically to the old
	// all-serial loop.
	reps := make([]overlay.NodeID, 0, sys.InitialLive())
	for v := 0; v < sys.InitialLive(); v++ {
		node := overlay.NodeID(v)
		if s.repr(node) != node {
			continue // leaves are represented by their super peer
		}
		reps = append(reps, node)
	}
	filters := s.buildFiltersParallel(reps)
	for i, node := range reps {
		if snap := s.publishWith(node, filters[i]); snap != nil {
			s.deliver(-1, snap, adFull, snap.topics)
		}
	}
}

// beginApply opens a delivery-path write section on the runner thread:
// the version goes odd. The single-writer guarantee (the runner drains
// query batches before any state event) makes a plain load-then-store
// sufficient — there is no competing writer to lose an increment to.
// Opening a section inside a sharded query phase would race every lane,
// so it panics — the per-shard single-writer contract's other half (the
// search side asserts via checkStable).
func (s *Scheme) beginApply() {
	if s.queryPhase.Load() {
		panic("core: delivery write opened inside a sharded query phase (runner barrier breached)")
	}
	s.applyVer.Store(s.applyVer.Load() + 1)
}

// endApply closes a delivery-path write section: the version returns to
// even, publishing the new state.
func (s *Scheme) endApply() {
	s.applyVer.Store(s.applyVer.Load() + 1)
}

// checkStable validates the seqlock contract from the search side: a
// search holding a nodeState's mu must never observe an open delivery
// write section. An odd version here means the runner's flush barrier was
// breached — state corruption, not a recoverable condition — so it panics.
func (s *Scheme) checkStable() {
	if s.applyVer.Load()&1 != 0 {
		panic("core: delivery write overlapped a search (runner barrier breached)")
	}
}

// buildFiltersParallel builds the given nodes' content filters across
// GOMAXPROCS workers. Each filter is built whole by one worker from
// deterministic per-node state, so the result is independent of how nodes
// land on workers — the merge is simply indexed assignment. Below two
// workers (or two nodes) it builds inline: on a single-CPU host the
// fan-out would only add scheduling overhead.
func (s *Scheme) buildFiltersParallel(nodes []overlay.NodeID) []*bloom.Filter {
	filters := make([]*bloom.Filter, len(nodes))
	workers := min(runtime.GOMAXPROCS(0), len(nodes))
	if workers <= 1 {
		for i, n := range nodes {
			filters[i] = s.buildFilter(n)
		}
		return filters
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(nodes) {
					return
				}
				filters[i] = s.buildFilter(nodes[i])
			}
		}()
	}
	wg.Wait()
	return filters
}

// publish materialises node n's current ad snapshot and installs it as the
// node's published ad. It returns nil when the node has nothing to
// advertise and never had ("free-riders have a null content filter, thus
// having nothing to advertise"), or when nothing changed since the last
// publication.
func (s *Scheme) publish(n overlay.NodeID) *adSnapshot {
	return s.publishWith(n, nil)
}

// publishWith is publish with an optionally prebuilt content filter
// (Attach's parallel warm-up builds them ahead of the serial
// publication loop); prebuilt == nil builds the filter inline.
func (s *Scheme) publishWith(n overlay.NodeID, prebuilt *bloom.Filter) *adSnapshot {
	ns := &s.nodes[n]
	// Scenario free riders publish nothing while masked. The dirty bit is
	// deliberately left untouched, so content changes accumulated during
	// the mask republish at the first reconcile after it lifts.
	if s.sys.FreeRider(n) {
		return nil
	}
	// Flat nodes see every content change as an event, so an unchanged
	// dirty bit proves the rebuilt filter and topics would equal the
	// published ones and publish would return nil — skip the rebuild.
	// Hierarchical groups drift silently (leaf departures are not evented
	// to the super peer) and must always reconcile.
	if !s.cfg.Hierarchical && !ns.dirty {
		return nil
	}
	ns.dirty = false
	f := prebuilt
	if f == nil {
		f = s.buildFilter(n)
	}
	topics := ns.topicsFromCounts()
	if s.cfg.Hierarchical {
		topics = s.groupTopics(n)
	}

	// publish runs on the runner thread only (Attach, event callbacks,
	// Tick), so the published-snapshot swap uses the delivery seqlock.
	s.beginApply()
	defer s.endApply()
	old := ns.published
	if old == nil && f.Empty() {
		return nil
	}
	version := uint16(1)
	patchWire := 0
	if old != nil {
		if old.filter.Bits() == f.Bits() {
			old.filter.AppendDiff(f, &s.patchBuf)
			if s.patchBuf.Empty() && old.topics == topics {
				return nil // no index change worth advertising
			}
			patchWire = s.patchBuf.WireSize()
		} else {
			// Variable sizing crossed a pool boundary: no patch exists
			// across geometries, so the update ships as a full ad.
			patchWire = f.WireSize()
		}
		version = old.version + 1
	}
	snap := &adSnapshot{
		src:       n,
		version:   version,
		topics:    topics,
		filter:    f,
		fullWire:  f.WireSize(),
		patchWire: patchWire,
	}
	s.slots.register(snap)
	ns.published = snap
	if s.adObs != nil {
		var patch *bloom.Patch
		if old != nil && old.filter.Bits() == f.Bits() {
			patch = &s.patchBuf
		}
		s.adObs(snap.src, snap.version, snap.topics, snap.filter, patch)
	}
	return snap
}

// buildFilter assembles node n's content filter from its current
// documents under the configured sizing strategy.
func (s *Scheme) buildFilter(n overlay.NodeID) *bloom.Filter {
	if !s.cfg.VariableFilters {
		f := bloom.NewDefault()
		s.eachGroupMember(n, func(m overlay.NodeID) bool {
			for _, d := range s.sys.Docs(m) {
				for _, kw := range s.sys.U.Keywords(d) {
					f.AddKey(uint64(kw))
				}
			}
			return true
		})
		return f
	}
	// Variable sizing needs |K_p| first: collect the distinct keyword set,
	// then size the filter from the shared pool.
	seen := make(map[content.Keyword]struct{}, 64)
	s.eachGroupMember(n, func(m overlay.NodeID) bool {
		for _, d := range s.sys.Docs(m) {
			for _, kw := range s.sys.U.Keywords(d) {
				seen[kw] = struct{}{}
			}
		}
		return true
	})
	f := bloom.NewSized(len(seen))
	for kw := range seen {
		f.AddKey(uint64(kw))
	}
	return f
}

// publishedSnapshot returns node n's current published ad (nil if none).
// Runner thread only — every caller (applyAd's gap fetch, Tick's refresh,
// republishAndDeliver) runs behind the query-batch barrier, so the read
// needs no lock; searches read `published` themselves under mu.
func (s *Scheme) publishedSnapshot(n overlay.NodeID) *adSnapshot {
	return s.nodes[n].published
}

// ContentChanged implements sim.Scheme: the node republishes and delivers
// a patch ad (or its first full ad, if it previously advertised nothing).
// Patch targeting uses the union of old and new topics so removals reach
// the caches that hold the ad.
func (s *Scheme) ContentChanged(t sim.Clock, n overlay.NodeID, d content.DocID, added bool) {
	ns := &s.nodes[n]
	ns.dirty = true
	cls := s.sys.U.ClassOf(d)
	if added {
		ns.classCnt[cls]++
	} else if ns.classCnt[cls] > 0 {
		ns.classCnt[cls]--
	}
	if !s.sys.G.Alive(n) {
		return
	}
	s.republishAndDeliver(t, s.repr(n))
}

// ContentChangedBatch implements sim.ContentBatcher: a same-second run of
// content changes at one node folds into a single republish — the document
// counts advance through the whole run first, then one patch ad (carrying
// the net filter change) is published and delivered at the run's last
// event time. No other node can observe the intermediate states: the
// runner coalesces only consecutive events with no query, tick, or other
// state event between them.
func (s *Scheme) ContentChangedBatch(t sim.Clock, n overlay.NodeID, docs []content.DocID, added []bool) {
	ns := &s.nodes[n]
	ns.dirty = true
	for i, d := range docs {
		cls := s.sys.U.ClassOf(d)
		if added[i] {
			ns.classCnt[cls]++
		} else if ns.classCnt[cls] > 0 {
			ns.classCnt[cls]--
		}
	}
	if !s.sys.G.Alive(n) {
		return
	}
	s.republishAndDeliver(t, s.repr(n))
}

// NodeJoined implements sim.Scheme: the joiner advertises a full ad and
// pulls interesting ads from its neighbourhood — "the same ads requesting
// process as the one when a brand new node joins" (§III-C).
func (s *Scheme) NodeJoined(t sim.Clock, n overlay.NodeID) {
	if s.cfg.Hierarchical {
		// The joiner attaches as a leaf; its contents fold into the parent
		// super peer's aggregate ad. Leaves neither cache nor pull ads.
		s.republishAndDeliver(t, s.repr(n))
		return
	}
	if snap := s.publish(n); snap != nil {
		s.deliver(t, snap, adFull, snap.topics)
	}
	sc := s.getScratch()
	// The join pull gets its own drop stream, folded apart from any query
	// the same node issues in the same millisecond.
	sc.fkey = faults.Fold(faults.Key(int64(t), n), 1)
	s.adsRequest(t, n, sc, nil, nil)
	s.putScratch(sc)
}

// NodeLeaving implements sim.GracefulLeaver: when the fault plane models
// graceful departures, a leaving node tells its neighbours goodbye while
// its links still exist, and every neighbour the goodbye reaches evicts
// the leaver's ad immediately instead of waiting for a failed
// confirmation or staleness expiry. Without a graceful-leave plane this is
// a no-op — departures stay ungraceful, the paper's churn model.
func (s *Scheme) NodeLeaving(t sim.Clock, n overlay.NodeID) {
	if !s.sys.Faults().GracefulLeave() || s.repr(n) != n {
		return
	}
	gkey := faults.Fold(faults.Key(int64(t), n), 2)
	var gseq uint32
	s.beginApply()
	defer s.endApply()
	for _, nb := range s.eligibleView(n) {
		if !s.sys.Deliver(t, metrics.MControl, sim.HeaderBytes, n, nb, gkey, nextSeq(&gseq)) {
			continue // goodbye lost: nb finds out the hard way
		}
		s.nodes[nb].drop(n)
	}
}

// NodeLeft implements sim.Scheme: departures are ungraceful; the node's
// ads elsewhere go stale until refresh-based expiry (or until a failed
// confirmation drops them). In hierarchical mode a departing super peer's
// leaves are re-homed by the overlay; their new parents republish so the
// migrated contents become findable again.
func (s *Scheme) NodeLeft(t sim.Clock, n overlay.NodeID) {
	if !s.cfg.Hierarchical {
		return
	}
	seen := map[overlay.NodeID]bool{}
	for _, leaf := range s.sys.G.TakeRehomed() {
		rp := s.repr(leaf)
		if rp >= 0 && !seen[rp] {
			seen[rp] = true
			s.republishAndDeliver(t, rp)
		}
	}
}

// Tick implements sim.Scheme: fires the refresh wheel slot due this
// second.
func (s *Scheme) Tick(t sim.Clock) {
	if s.wheel == nil {
		return
	}
	slot := int(t/1000) % s.cfg.RefreshPeriodSec
	for _, n := range s.wheel[slot] {
		if !s.sys.G.Alive(n) || s.repr(n) != n {
			continue
		}
		// Reconcile first: hierarchical groups drift when leaves depart
		// silently (flat nodes never drift here — every content change is
		// evented — so publish returns nil and a plain refresh goes out).
		if snap := s.publish(n); snap != nil {
			s.deliver(t, snap, adPatch, snap.topics)
			continue
		}
		if snap := s.publishedSnapshot(n); snap != nil {
			s.deliver(t, snap, adRefresh, snap.topics)
		}
	}
}

// HasCachedAd reports whether node p currently caches an ad published by
// src (diagnostics).
func (s *Scheme) HasCachedAd(p, src overlay.NodeID) bool {
	ns := &s.nodes[p]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.entry(src) != nil
}

// CacheSize returns node n's current ads-cache population (diagnostics).
func (s *Scheme) CacheSize(n overlay.NodeID) int {
	ns := &s.nodes[n]
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.cacheLen()
}
