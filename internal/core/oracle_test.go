package core

import (
	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Shared straight-line reference implementations ("oracles") of the cache
// scans, used by the index/churn/store property tests. Each is the
// specification the optimised path must match exactly — a plain fifo walk
// with scalar Bloom probing, no signature index, no accumulator.

// scanCacheReference is the specification of phase 1's cache lookup: every
// cached source whose filter passes all probes, in fifo (insertion) order —
// the same candidates in the same order scanCache must produce.
func scanCacheReference(ns *nodeState, probes []bloom.Probe) []overlay.NodeID {
	var out []overlay.NodeID
	for _, src := range ns.fifo {
		e := ns.entry(src)
		if e != nil && e.snap.filter.ContainsAllProbes(probes) {
			out = append(out, src)
		}
	}
	return out
}

// serveAdsReference is the specification of serveAds: walk the fifo in
// insertion order and offer every fresh, interest-matching, probe-passing
// entry except the requester's own, up to max. probes == nil is a
// join-time pull (no probe filtering).
func serveAdsReference(ns *nodeState, interests content.ClassSet, staleBefore sim.Clock, probes []bloom.Probe, requester overlay.NodeID, max int) []*adSnapshot {
	var out []*adSnapshot
	for _, src := range ns.fifo {
		if len(out) >= max {
			break
		}
		e := ns.entry(src)
		if e == nil || !e.snap.topics.Intersects(interests) {
			continue
		}
		if e.lastSeen < staleBefore || e.snap.src == requester {
			continue
		}
		if probes != nil && !e.snap.filter.ContainsAllProbes(probes) {
			continue
		}
		out = append(out, e.snap)
	}
	return out
}

// cacheSources returns the cached sources in fifo order (test inspection).
func cacheSources(ns *nodeState) []overlay.NodeID {
	return append([]overlay.NodeID(nil), ns.fifo...)
}
