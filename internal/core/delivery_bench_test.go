package core

import (
	"slices"
	"testing"

	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// firstPublished returns the lowest-numbered node's published snapshot
// after warm-up.
func firstPublished(tb testing.TB, s *Scheme) *adSnapshot {
	tb.Helper()
	for v := 0; v < s.sys.NumNodes(); v++ {
		if snap := s.publishedSnapshot(overlay.NodeID(v)); snap != nil {
			return snap
		}
	}
	tb.Fatal("no node published an ad during warm-up")
	return nil
}

// TestWalkStartsLiveViewAliasingContract pins the buffer-aliasing contract
// of the delivery helpers: liveNeighbors returns the overlay's shared live
// view (stable until the next graph mutation), walkStarts returns s.wlkBuf
// (stable until the next walkStarts call), and the two never clobber each
// other — the GSA seed path holds a liveNeighbors result across an entire
// delivery, and the RW path holds wlkBuf across deliverWalk's internal
// liveNeighbors/pickNextHop calls.
func TestWalkStartsLiveViewAliasingContract(t *testing.T) {
	s, _ := attach(t, GSAKind)
	var a, b overlay.NodeID = -1, -1
	for v := 0; v < s.sys.NumNodes(); v++ {
		if len(s.liveNeighbors(overlay.NodeID(v))) > 0 {
			if a < 0 {
				a = overlay.NodeID(v)
			} else {
				b = overlay.NodeID(v)
				break
			}
		}
	}
	if b < 0 {
		t.Fatal("need two nodes with live neighbours")
	}

	live := s.liveNeighbors(a)
	liveCopy := slices.Clone(live)
	starts := s.walkStarts(b, s.cfg.Walkers)
	startsCopy := slices.Clone(starts)

	// walkStarts(b) ran liveNeighbors(b) internally; the held view of a's
	// neighbourhood must not move.
	if !slices.Equal(live, liveCopy) {
		t.Fatal("walkStarts clobbered a held liveNeighbors result")
	}

	// A full walk delivery while both buffers are held: it runs
	// liveNeighbors (GSA seeds), pickNextHop and applyAd — but never
	// walkStarts, so both held slices must come through intact.
	snap := firstPublished(t, s)
	s.deliver(0, snap, adRefresh, snap.topics)

	if !slices.Equal(live, liveCopy) {
		t.Fatal("a delivery invalidated a held live view without any overlay mutation")
	}
	if !slices.Equal(starts, startsCopy) {
		t.Fatal("a walk delivery clobbered wlkBuf without calling walkStarts")
	}
}

// TestDeliveryHotPathAllocs is the delivery-side zero-alloc gate (wired
// into `make alloc-gate`): after one warm-up pass grows the reusable
// buffers, refresh deliveries over flood and walk — and a single applyAd —
// must not allocate at all.
func TestDeliveryHotPathAllocs(t *testing.T) {
	fld, _ := attach(t, FLD)
	fsnap := firstPublished(t, fld)
	var dseq uint32
	flood := func() {
		dseq = 0
		fld.deliverFlood(0, fsnap, adRefresh, fsnap.topics, fsnap.wireBytes(adRefresh), metrics.MAdRefresh, 1, &dseq)
		fld.acc.Flush(fld.sys, metrics.MAdRefresh)
	}
	flood()
	if a := testing.AllocsPerRun(10, flood); a != 0 {
		t.Errorf("deliverFlood allocates %.1f times per delivery, want 0", a)
	}

	rw, _ := attach(t, RW)
	wsnap := firstPublished(t, rw)
	budget := max(1, wsnap.topics.Count()) * rw.cfg.BudgetUnit
	walk := func() {
		dseq = 0
		starts := rw.walkStarts(wsnap.src, rw.cfg.Walkers)
		rw.deliverWalk(0, wsnap, adRefresh, wsnap.topics, wsnap.wireBytes(adRefresh), starts, budget, metrics.MAdRefresh, 1, &dseq)
		rw.acc.Flush(rw.sys, metrics.MAdRefresh)
	}
	walk()
	if a := testing.AllocsPerRun(10, walk); a != 0 {
		t.Errorf("deliverWalk allocates %.1f times per delivery, want 0", a)
	}

	// A refresh re-application to one already-caching node.
	var target overlay.NodeID = -1
	for v := 0; v < rw.sys.NumNodes(); v++ {
		if overlay.NodeID(v) != wsnap.src && rw.HasCachedAd(overlay.NodeID(v), wsnap.src) {
			target = overlay.NodeID(v)
			break
		}
	}
	if target < 0 {
		t.Fatal("warm-up cached the ad nowhere")
	}
	apply := func() {
		dseq = 0
		rw.applyAd(0, target, wsnap, adRefresh, wsnap.topics, 1, &dseq)
	}
	apply()
	if a := testing.AllocsPerRun(10, apply); a != 0 {
		t.Errorf("applyAd allocates %.1f times per application, want 0", a)
	}
}

func benchScheme(b *testing.B, d DeliveryKind) *Scheme {
	b.Helper()
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 1)
	s := New(testConfig(d))
	s.Attach(sys)
	return s
}

func BenchmarkDeliverFlood(b *testing.B) {
	s := benchScheme(b, FLD)
	snap := firstPublished(b, s)
	msgBytes := snap.wireBytes(adRefresh)
	var dseq uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dseq = 0
		s.deliverFlood(0, snap, adRefresh, snap.topics, msgBytes, metrics.MAdRefresh, 1, &dseq)
		s.acc.Flush(s.sys, metrics.MAdRefresh)
	}
}

func BenchmarkDeliverWalk(b *testing.B) {
	s := benchScheme(b, RW)
	snap := firstPublished(b, s)
	msgBytes := snap.wireBytes(adRefresh)
	budget := max(1, snap.topics.Count()) * s.cfg.BudgetUnit
	var dseq uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dseq = 0
		starts := s.walkStarts(snap.src, s.cfg.Walkers)
		s.deliverWalk(0, snap, adRefresh, snap.topics, msgBytes, starts, budget, metrics.MAdRefresh, 1, &dseq)
		s.acc.Flush(s.sys, metrics.MAdRefresh)
	}
}

func BenchmarkApplyAd(b *testing.B) {
	s := benchScheme(b, RW)
	snap := firstPublished(b, s)
	var target overlay.NodeID = -1
	for v := 0; v < s.sys.NumNodes(); v++ {
		if overlay.NodeID(v) != snap.src && s.HasCachedAd(overlay.NodeID(v), snap.src) {
			target = overlay.NodeID(v)
			break
		}
	}
	if target < 0 {
		b.Fatal("warm-up cached the ad nowhere")
	}
	var dseq uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dseq = 0
		s.applyAd(0, target, snap, adRefresh, snap.topics, 1, &dseq)
	}
}
