package core

import (
	"math/rand/v2"
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

// superSystem builds a super-peer system over the shared test universe
// and trace.
func superSystem(t *testing.T, seed uint64) *sim.System {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0x1234))
	hosts := testNet.RandomNodes(len(testTr.Peers), rng)
	g := overlay.NewSuperPeer(testNet, hosts, testTr.InitialLive,
		overlay.DefaultSuperFraction, overlay.DefaultSuperDegree, rng)
	return sim.NewSystemWithGraph(testU, testTr, g)
}

func hierConfig() Config {
	c := testConfig(RW)
	c.Hierarchical = true
	return c
}

func TestHierarchicalRequiresSuperGraph(t *testing.T) {
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 1)
	defer func() {
		if recover() == nil {
			t.Error("Attach on flat graph did not panic")
		}
	}()
	New(hierConfig()).Attach(sys)
}

func TestHierarchicalOnlySupersPublishAndCache(t *testing.T) {
	sys := superSystem(t, 2)
	s := New(hierConfig())
	s.Attach(sys)
	for n := 0; n < testTr.InitialLive; n++ {
		node := overlay.NodeID(n)
		if sys.G.IsSuper(node) {
			continue
		}
		if s.publishedSnapshot(node) != nil {
			t.Fatalf("leaf %d published an ad", n)
		}
		if s.CacheSize(node) != 0 {
			t.Fatalf("leaf %d cached %d ads", n, s.CacheSize(node))
		}
	}
	published, cached := 0, 0
	for _, sp := range sys.G.Supers() {
		if s.publishedSnapshot(sp) != nil {
			published++
		}
		if s.CacheSize(sp) > 0 {
			cached++
		}
	}
	if published == 0 || cached == 0 {
		t.Errorf("supers published=%d cached=%d, want both positive", published, cached)
	}
}

func TestHierarchicalAggregateAdsCoverLeafContent(t *testing.T) {
	sys := superSystem(t, 3)
	s := New(hierConfig())
	s.Attach(sys)
	// Find a leaf with docs; its super peer's filter must contain the
	// leaf's keywords.
	for n := 0; n < testTr.InitialLive; n++ {
		leaf := overlay.NodeID(n)
		if sys.G.IsSuper(leaf) || len(sys.Docs(leaf)) == 0 {
			continue
		}
		sp := sys.G.SuperOf(leaf)
		snap := s.publishedSnapshot(sp)
		if snap == nil {
			t.Fatalf("super %d of sharing leaf %d published nothing", sp, leaf)
		}
		kws := testU.Keywords(sys.Docs(leaf)[0])
		if !snap.filter.ContainsAllKeys(termKeys(kws)) {
			t.Fatalf("super %d's aggregate filter misses leaf %d's keywords", sp, leaf)
		}
		if !s.groupMatches(sp, kws) {
			t.Fatal("groupMatches misses leaf content")
		}
		return
	}
	t.Fatal("no sharing leaf found")
}

func TestHierarchicalSearchFromLeaf(t *testing.T) {
	sys := superSystem(t, 4)
	s := New(hierConfig())
	s.Attach(sys)
	succ, total, viaSuper := 0, 0, 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		total++
		res := s.Search(ev)
		if res.Success {
			succ++
			if !sys.G.IsSuper(ev.Node) && res.Hops >= 2 {
				viaSuper++
			}
			if res.ResponseMS <= 0 {
				t.Fatalf("success with response %d", res.ResponseMS)
			}
		}
		if total >= 300 {
			break
		}
	}
	rate := float64(succ) / float64(total)
	if rate < 0.6 {
		t.Errorf("hierarchical success %.2f, want decent", rate)
	}
	if viaSuper == 0 {
		t.Error("no leaf search routed through a super peer")
	}
}

func TestHierarchicalContentChangeRepublishesSuper(t *testing.T) {
	sys := superSystem(t, 5)
	s := New(hierConfig())
	s.Attach(sys)
	var leaf overlay.NodeID = -1
	for n := 0; n < testTr.InitialLive; n++ {
		if !sys.G.IsSuper(overlay.NodeID(n)) && sys.G.Alive(overlay.NodeID(n)) {
			leaf = overlay.NodeID(n)
			break
		}
	}
	sp := sys.G.SuperOf(leaf)
	before := s.publishedSnapshot(sp)

	var doc content.DocID
	found := false
	for d := 0; d < testU.NumDocs(); d++ {
		if !sys.HasDoc(leaf, content.DocID(d)) && sys.Interests(leaf).Has(testU.ClassOf(content.DocID(d))) {
			doc = content.DocID(d)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no addable doc")
	}
	ev := trace.Event{Time: 3000, Kind: trace.ContentAdd, Node: leaf, Doc: doc}
	sys.ApplyEvent(&ev)
	s.ContentChanged(3000, leaf, doc, true)

	after := s.publishedSnapshot(sp)
	if after == nil || (before != nil && after.version == before.version) {
		t.Fatal("super peer did not republish after leaf content change")
	}
	if !after.filter.ContainsAllKeys(termKeys(testU.Keywords(doc))) {
		t.Fatal("republished aggregate misses the new doc")
	}
}

func TestHierarchicalSuperDepartureRecovery(t *testing.T) {
	sys := superSystem(t, 6)
	s := New(hierConfig())
	s.Attach(sys)
	// Pick a super with sharing leaves.
	var victim overlay.NodeID = -1
	var sharerLeaf overlay.NodeID = -1
	for _, sp := range sys.G.Supers() {
		for _, leaf := range sys.G.LeavesOf(sp) {
			if len(sys.Docs(leaf)) > 0 {
				victim, sharerLeaf = sp, leaf
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no super with a sharing leaf")
	}
	ev := trace.Event{Time: 4000, Kind: trace.Leave, Node: victim}
	sys.ApplyEvent(&ev)
	s.NodeLeft(4000, victim)

	newSP := sys.G.SuperOf(sharerLeaf)
	if newSP < 0 || newSP == victim {
		t.Fatal("leaf not rehomed")
	}
	snap := s.publishedSnapshot(newSP)
	if snap == nil {
		t.Fatal("new super published nothing after adoption")
	}
	kws := testU.Keywords(sys.Docs(sharerLeaf)[0])
	if !snap.filter.ContainsAllKeys(termKeys(kws)) {
		t.Error("adopting super's ad misses the migrated leaf's content")
	}
}

func TestHierarchicalEndToEndRun(t *testing.T) {
	sys := superSystem(t, 7)
	sch := New(hierConfig())
	sum := sim.Run(sys, sch, sim.RunOptions{})
	if sum.Requests == 0 {
		t.Fatal("no requests")
	}
	if sum.SuccessRate < 0.5 {
		t.Errorf("hierarchical end-to-end success %.2f", sum.SuccessRate)
	}
	if sum.LoadMeanKBps <= 0 {
		t.Error("no load")
	}
	if sum.Topology != "superpeer" {
		t.Errorf("topology label %q", sum.Topology)
	}
	// Breakdown mass sums to 1.
	total := 0.0
	for c := 0; c < metrics.NumMsgClasses; c++ {
		total += sum.Breakdown[metrics.MsgClass(c)]
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("breakdown mass %v", total)
	}
}
