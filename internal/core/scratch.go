package core

import (
	"asap/internal/bloom"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// adOffer is one ad offered in an ads-request reply: the snapshot plus
// the moment it reaches the requester.
type adOffer struct {
	snap  *adSnapshot
	avail sim.Clock
}

// searchScratch is the per-query working set of Search, adsRequest and
// hopNeighborhood. Scratch objects live in the Scheme's pool: each query
// borrows one for its whole lifetime, so concurrent Search calls never
// share a scratch and the steady state allocates nothing per query.
type searchScratch struct {
	keys      []uint64
	probes    []bloom.Probe
	cands     []candidate
	confirmed map[overlay.NodeID]bool
	offers    []adOffer
	seen      map[overlay.NodeID]int
	targets   []hopTarget
	srcs      []overlay.NodeID // phase-1 cache-scan matches
	serve     []*adSnapshot    // per-target ads-reply assembly

	// qa is the query's lazy signature-match accumulator (see adindex.go);
	// Search rebinds it to the query's probes once they are built.
	qa queryAcc

	// Epoch-stamped BFS state for hopNeighborhood: visited[v] holds the
	// epoch of the last traversal that reached v, so the visited set
	// resets in O(1) per query instead of reallocating a map.
	visited  []uint32
	pathLat  []sim.Clock
	epoch    uint32
	frontier []overlay.NodeID
	next     []overlay.NodeID

	// Fault-plane message stream of this query: fkey derives from the
	// query's (time, node) identity, fseq numbers its messages. Together
	// they make every drop/jitter decision a function of the query alone,
	// independent of worker scheduling.
	fkey uint64
	fseq uint32
}

// nextSeq returns the query's next message sequence number.
func (sc *searchScratch) nextSeq() uint32 {
	s := sc.fseq
	sc.fseq++
	return s
}

// getScratch borrows a reset scratch from the pool.
func (s *Scheme) getScratch() *searchScratch {
	sc := s.scratch.Get().(*searchScratch)
	sc.keys = sc.keys[:0]
	sc.probes = sc.probes[:0]
	sc.cands = sc.cands[:0]
	sc.offers = sc.offers[:0]
	sc.targets = sc.targets[:0]
	sc.srcs = sc.srcs[:0]
	sc.serve = sc.serve[:0]
	sc.fkey = 0
	sc.fseq = 0
	clear(sc.confirmed)
	clear(sc.seen)
	return sc
}

// putScratch returns a scratch to the pool. Slices handed out of the
// scratch must not be retained past this call.
func (s *Scheme) putScratch(sc *searchScratch) { s.scratch.Put(sc) }

// bfsState returns the epoch-stamped visited/latency slices sized for n
// nodes, advancing the epoch (with wrap-around reset).
func (sc *searchScratch) bfsState(n int) ([]uint32, []sim.Clock) {
	if len(sc.visited) < n {
		sc.visited = make([]uint32, n)
		sc.pathLat = make([]sim.Clock, n)
		sc.epoch = 0
	}
	sc.epoch++
	if sc.epoch == 0 {
		clear(sc.visited)
		sc.epoch = 1
	}
	return sc.visited, sc.pathLat
}
