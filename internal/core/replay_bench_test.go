package core

import (
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// benchQueryProbes derives the probe set of the shared trace's first query
// and returns it together with the warmed node holding the largest cache —
// the densest scan the replay performs.
func benchQueryProbes(tb testing.TB, s *Scheme) (overlay.NodeID, []bloom.Probe) {
	tb.Helper()
	var terms []content.Keyword
	for i := range testTr.Events {
		if testTr.Events[i].Kind == trace.Query {
			terms = testTr.Events[i].Terms
			break
		}
	}
	if terms == nil {
		tb.Fatal("shared trace has no query event")
	}
	var keys []uint64
	for _, term := range terms {
		keys = append(keys, uint64(term))
	}
	probes := bloom.AppendKeyProbes(nil, keys)

	best, bestLen := overlay.NodeID(-1), 0
	for v := 0; v < s.sys.NumNodes(); v++ {
		if n := s.CacheSize(overlay.NodeID(v)); n > bestLen {
			best, bestLen = overlay.NodeID(v), n
		}
	}
	if best < 0 {
		tb.Fatal("warm-up cached no ads anywhere")
	}
	return best, probes
}

// TestScanHotPathAllocs is the replay-side zero-alloc gate (wired into
// `make alloc-gate`): once one warmed pass has grown the query
// accumulator's per-group buffers, a full reset + bit-sliced cache scan +
// serveAds walk must not allocate at all.
func TestScanHotPathAllocs(t *testing.T) {
	s, _ := attach(t, RW)
	p, probes := benchQueryProbes(t, s)
	ns := &s.nodes[p]
	interests := s.groupInterests(p)

	var qa queryAcc
	var srcs []overlay.NodeID
	scan := func() {
		qa.reset(&s.slots, probes)
		srcs = ns.scanCache(&qa, srcs[:0])
	}
	scan()
	if a := testing.AllocsPerRun(20, scan); a != 0 {
		t.Errorf("scanCache allocates %.1f times per query, want 0", a)
	}

	var serve []*adSnapshot
	offer := func() {
		qa.reset(&s.slots, probes)
		serve = ns.serveAds(&qa, serve[:0], interests, -1, p, 1<<30)
	}
	offer()
	if a := testing.AllocsPerRun(20, offer); a != 0 {
		t.Errorf("serveAds allocates %.1f times per request, want 0", a)
	}
}

// BenchmarkScanChains measures phase 1's cache scan — probe-position
// derivation, lazy word-parallel block matching and the per-slot bit tests
// — against the warmed node with the largest cache. The name is kept from
// the posting-chain implementation this path replaced so perf history
// stays comparable across BENCH records.
func BenchmarkScanChains(b *testing.B) {
	s := benchScheme(b, RW)
	p, probes := benchQueryProbes(b, s)
	ns := &s.nodes[p]

	var qa queryAcc
	var srcs []overlay.NodeID
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qa.reset(&s.slots, probes)
		srcs = ns.scanCache(&qa, srcs[:0])
	}
	b.ReportMetric(float64(ns.cacheLen()), "cached-ads")
	b.ReportMetric(float64(len(srcs)), "candidates")
}
