package core

import (
	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// nextSeq increments a local per-delivery message counter. Together with
// the delivery key it names each forwarded copy uniquely, so the fault
// plane's drop decisions replay identically run over run.
func nextSeq(p *uint32) uint32 {
	v := *p
	*p++
	return v
}

// deliver pushes one ad through the overlay under the configured
// forwarding algorithm, caching it at every reached node whose interests
// intersect targeting (the delivery topic set; normally the ad's own
// topics, widened for patches). Deliveries run on the runner thread only.
//
// Under a fault plane, forwarded copies can be lost: a lost flood copy
// prunes that branch (the node may still be reached another way), a lost
// walk copy kills the walker. Senders pay for lost copies — the bytes are
// on the wire either way — so ad coverage degrades under loss while ad
// traffic does not.
func (s *Scheme) deliver(t sim.Clock, snap *adSnapshot, kind adKind, targeting content.ClassSet) {
	// Scenario free riders send no ads at all — publishWith already gates
	// new publications, and this catches refresh deliveries of snapshots
	// published before the mask engaged.
	if s.sys.FreeRider(snap.src) {
		return
	}
	// One seqlock section brackets the whole delivery (every applyAd within
	// it included); searches cannot run concurrently with any of it.
	s.beginApply()
	defer s.endApply()
	msgBytes := snap.wireBytes(kind)
	var class metrics.MsgClass
	switch kind {
	case adFull:
		class = metrics.MAdFull
	case adPatch:
		class = metrics.MAdPatch
	default:
		class = metrics.MAdRefresh
	}
	// One drop stream per delivery: (time, source) names the delivery,
	// folded with (version, kind) to separate a refresh from the full ad
	// that replaced it within the same second.
	dkey := faults.Fold(faults.Key(int64(t), snap.src), uint64(snap.version)<<2|uint64(kind))
	var dseq uint32

	// Warm-up deliveries (t < 0) invest the full per-topic budget to seed
	// the caches; everything published mid-run is an update of already-
	// seeded state and spends a fraction of it.
	budget := max(1, targeting.Count()) * s.cfg.BudgetUnit
	if t >= 0 {
		budget = max(1, budget/s.cfg.UpdateBudgetDiv)
	}
	switch s.cfg.Delivery {
	case FLD:
		td := s.obs.Begin()
		s.deliverFlood(t, snap, kind, targeting, msgBytes, class, dkey, &dseq)
		s.obs.End(obs.PDeliverFlood, td)
	case RW:
		td := s.obs.Begin()
		s.deliverWalk(t, snap, kind, targeting, msgBytes, s.walkStarts(snap.src, s.cfg.Walkers), budget, class, dkey, &dseq)
		s.obs.End(obs.PDeliverWalk, td)
	case GSAKind:
		td := s.obs.Begin()
		seeds := s.liveNeighbors(snap.src)
		s.deliverWalk(t, snap, kind, targeting, msgBytes, seeds, budget, class, dkey, &dseq)
		s.obs.End(obs.PDeliverWalk, td)
	}
	s.acc.Flush(s.sys, class)
}

// walkStarts returns w walker start points: the source's live neighbours,
// cycled if w exceeds the neighbourhood. The result aliases s.wlkBuf and
// is valid until the next call. It copies out of the live view that
// liveNeighbors returns, never into it, so a liveNeighbors result held by
// a caller (the GSA seed path) survives a walkStarts call unclobbered —
// see TestWalkStartsLiveViewAliasing.
func (s *Scheme) walkStarts(src overlay.NodeID, w int) []overlay.NodeID {
	live := s.liveNeighbors(src)
	if len(live) == 0 {
		return nil
	}
	starts := s.wlkBuf[:0]
	for i := 0; i < w; i++ {
		starts = append(starts, live[i%len(live)])
	}
	s.wlkBuf = starts
	return starts
}

// liveNeighbors returns n's live neighbours; in hierarchical mode only
// super-peer neighbours qualify (ads travel the backbone; leaves neither
// forward nor cache). The result is the overlay's packed live view — no
// copy, no per-edge liveness test — shared with the graph and valid until
// the next overlay mutation. It does NOT alias s.wlkBuf: walkStarts may
// copy from it into wlkBuf while a caller still holds it (the GSA seed
// path does exactly that across a whole delivery).
func (s *Scheme) liveNeighbors(n overlay.NodeID) []overlay.NodeID {
	return s.eligibleView(n)
}

// deliverFlood floods the ad with TTL FloodTTL and duplicate suppression;
// every reached node applies it once. A dropped copy leaves its receiver
// unstamped, so a later surviving copy (from another branch) still reaches
// it.
func (s *Scheme) deliverFlood(t sim.Clock, snap *adSnapshot, kind adKind, targeting content.ClassSet, msgBytes int, class metrics.MsgClass, dkey uint64, dseq *uint32) {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	queue := append(s.floodQ[:0], floodItem{snap.src, 0})
	s.stamp[snap.src] = s.epoch
	faultFree := s.sys.FaultFree()
	for i := 0; i < len(queue); i++ {
		it := queue[i]
		if it.node != snap.src {
			s.applyAd(t, it.node, snap, kind, targeting, dkey, dseq)
		}
		if it.hop >= s.cfg.FloodTTL {
			continue
		}
		if s.sys.FreeRider(it.node) {
			continue // free riders receive ads but never forward them
		}
		// The eligible view is pre-filtered: no per-edge Alive or
		// cacheEligible test on the flood's inner loop.
		view := s.eligibleView(it.node)
		if faultFree {
			// No fault plane: every copy arrives and no drop-seq stream is
			// consumed, so accounting and message counting batch to one
			// call per node and the per-edge work is just the
			// duplicate-suppression stamp.
			if len(view) > 0 {
				s.acc.Add(t, msgBytes*len(view))
				s.obs.CountMsgN(int64(t), class, len(view))
			}
			for _, nb := range view {
				if s.stamp[nb] != s.epoch {
					s.stamp[nb] = s.epoch
					queue = append(queue, floodItem{nb, it.hop + 1})
				}
			}
			continue
		}
		for _, nb := range view {
			s.acc.Add(t, msgBytes) // the copy is sent even to nodes that saw it
			if !s.sys.Arrives(t, class, it.node, nb, dkey, nextSeq(dseq)) {
				continue // copy lost; nb may still get one via another edge
			}
			if s.stamp[nb] == s.epoch {
				continue
			}
			s.stamp[nb] = s.epoch
			queue = append(queue, floodItem{nb, it.hop + 1})
		}
	}
	s.floodQ = queue
}

// floodItem is one BFS queue entry of deliverFlood: a reached node and its
// hop distance from the source. The queue lives on the Scheme (runner
// thread only) and is reused across deliveries.
type floodItem struct {
	node overlay.NodeID
	hop  int
}

// deliverWalk forwards the ad along random walks from the given start
// nodes under a total message budget split evenly across walkers. Every
// visited node applies the ad (re-applications only bump freshness). A
// walker whose forwarded copy is lost dies on the spot — nobody detects
// the loss, so its remaining budget is simply wasted.
func (s *Scheme) deliverWalk(t sim.Clock, snap *adSnapshot, kind adKind, targeting content.ClassSet, msgBytes int, starts []overlay.NodeID, budget int, class metrics.MsgClass, dkey uint64, dseq *uint32) {
	if len(starts) == 0 {
		return
	}
	perWalker := budget / len(starts)
	if perWalker < 1 {
		perWalker = 1
	}
	if s.sys.FaultFree() {
		// No fault plane: no copy is ever lost, so walkers never die in
		// transit and the per-step Arrives calls (and the drop-seq stream
		// they would consume) vanish; accounting batches to one call per
		// delivery — every step happens at the same virtual time t.
		sent := 0
		for _, start := range starts {
			sent++
			s.applyAd(t, start, snap, kind, targeting, dkey, dseq)
			if s.sys.FreeRider(start) {
				continue // free riders kill walkers: received, never forwarded
			}
			cur, prev := start, snap.src
			for step := 1; step < perWalker; step++ {
				next := s.pickNextHop(cur, prev, targeting)
				if next < 0 {
					break
				}
				prev, cur = cur, next
				sent++
				if cur != snap.src {
					s.applyAd(t, cur, snap, kind, targeting, dkey, dseq)
				}
				if s.sys.FreeRider(cur) {
					break
				}
			}
		}
		s.acc.Add(t, msgBytes*sent)
		s.obs.CountMsgN(int64(t), class, sent)
		return
	}
	for _, start := range starts {
		cur, prev := start, snap.src
		s.acc.Add(t, msgBytes) // source → start
		if !s.sys.Arrives(t, class, snap.src, cur, dkey, nextSeq(dseq)) {
			continue // seed copy lost: this walker never starts
		}
		s.applyAd(t, cur, snap, kind, targeting, dkey, dseq)
		if s.sys.FreeRider(cur) {
			continue // free riders kill walkers: received, never forwarded
		}
		for step := 1; step < perWalker; step++ {
			next := s.pickNextHop(cur, prev, targeting)
			if next < 0 {
				break
			}
			prev, cur = cur, next
			s.acc.Add(t, msgBytes)
			if !s.sys.Arrives(t, class, prev, cur, dkey, nextSeq(dseq)) {
				break // walker lost in transit
			}
			if cur != snap.src {
				s.applyAd(t, cur, snap, kind, targeting, dkey, dseq)
			}
			if s.sys.FreeRider(cur) {
				break
			}
		}
	}
}

// pickNextHop chooses a delivery walker's next hop. With BiasedDelivery
// it prefers neighbours whose (group) interests intersect the ad's
// targeting topics, steering ads toward potential consumers at equal
// budget; otherwise it falls back to the uniform pick.
func (s *Scheme) pickNextHop(cur, prev overlay.NodeID, targeting content.ClassSet) overlay.NodeID {
	if !s.cfg.BiasedDelivery {
		return s.pickLiveNeighbor(cur, prev)
	}
	nbs := s.eligibleView(cur)
	interested, other := 0, 0
	for _, nb := range nbs {
		if nb == prev {
			continue
		}
		if s.groupInterests(nb).Intersects(targeting) {
			interested++
		} else {
			other++
		}
	}
	if interested == 0 && other == 0 {
		return s.pickLiveNeighbor(cur, prev) // only prev (or nothing) left
	}
	wantInterested := interested > 0
	pool := interested
	if !wantInterested {
		pool = other
	}
	k := s.rng.IntN(pool)
	for _, nb := range nbs {
		if nb == prev {
			continue
		}
		if s.groupInterests(nb).Intersects(targeting) != wantInterested {
			continue
		}
		if k == 0 {
			return nb
		}
		k--
	}
	return -1 // unreachable
}

// pickLiveNeighbor picks a uniformly random live neighbour of cur,
// avoiding an immediate return to prev when alternatives exist.
// Adjacency holds no duplicate edges, so prev appears at most once: one
// early-exiting indexOf scan replaces the count-then-select double scan,
// with the same rng draw and the same pick as selecting the k-th
// non-prev element in view order.
func (s *Scheme) pickLiveNeighbor(cur, prev overlay.NodeID) overlay.NodeID {
	nbs := s.eligibleView(cur)
	if len(nbs) == 0 {
		return -1
	}
	pi := -1
	for i, nb := range nbs {
		if nb == prev {
			pi = i
			break
		}
	}
	liveNotPrev := len(nbs)
	if pi >= 0 {
		liveNotPrev--
	}
	if liveNotPrev == 0 {
		return prev
	}
	k := s.rng.IntN(liveNotPrev)
	if pi >= 0 && k >= pi {
		k++
	}
	return nbs[k]
}

// applyAd lets node v react to an arriving ad: cache it when interesting,
// and resolve version gaps by fetching the source's current full ad
// directly (a control request plus a full-ad reply). Either leg of that
// fetch can be lost; the gap then persists until the next ad (or the next
// gap) retriggers it.
func (s *Scheme) applyAd(t sim.Clock, v overlay.NodeID, snap *adSnapshot, kind adKind, targeting content.ClassSet, dkey uint64, dseq *uint32) {
	if !s.cacheEligible(v) || !s.groupInterests(v).Intersects(targeting) {
		return
	}
	ns := &s.nodes[v]
	outcome := ns.store(snap, kind, t, s.cfg.CacheCapacity)
	if outcome != storedGap {
		return
	}
	// Version gap: v's copy is too old to patch. Fetch the current full ad
	// from the source (alive: it just sent this ad).
	cur := s.publishedSnapshot(snap.src)
	if cur == nil {
		return
	}
	s.sys.Account(t, metrics.MControl, sim.HeaderBytes)
	if !s.sys.Arrives(t, metrics.MControl, v, snap.src, dkey, nextSeq(dseq)) {
		return // fetch request lost: the reply is never sent
	}
	s.sys.Account(t, metrics.MAdFull, cur.wireBytes(adFull))
	if !s.sys.Arrives(t, metrics.MAdFull, snap.src, v, dkey, nextSeq(dseq)) {
		return // reply lost: v keeps its stale copy
	}
	ns.store(cur, adFull, t, s.cfg.CacheCapacity)
}
