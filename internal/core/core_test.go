package core

import (
	"testing"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
)

func TestDeliveryKindString(t *testing.T) {
	want := map[DeliveryKind]string{FLD: "fld", RW: "rw", GSAKind: "gsa", DeliveryKind(9): "invalid"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("DeliveryKind(%d) = %q, want %q", k, k.String(), s)
		}
	}
	if len(DeliveryKinds) != 3 {
		t.Error("DeliveryKinds must list the paper's three variants")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, d := range DeliveryKinds {
		if err := DefaultConfig(d).Validate(); err != nil {
			t.Errorf("default %v config invalid: %v", d, err)
		}
	}
	mods := []func(*Config){
		func(c *Config) { c.Delivery = 9 },
		func(c *Config) { c.FloodTTL = 0 },
		func(c *Config) { c.Walkers = 0 },
		func(c *Config) { c.BudgetUnit = 0 },
		func(c *Config) { c.AdsRequestHops = -1 },
		func(c *Config) { c.MaxConfirms = 0 },
		func(c *Config) { c.CacheCapacity = 0 },
		func(c *Config) { c.RefreshPeriodSec = -5 },
		func(c *Config) { c.StaleFactor = 0 },
		func(c *Config) { c.MaxAdsPerReply = 0 },
	}
	for i, m := range mods {
		c := DefaultConfig(RW)
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed", i)
		}
	}
}

func TestConfigScaled(t *testing.T) {
	c := DefaultConfig(RW).Scaled(0.2)
	if c.BudgetUnit != 600 || c.CacheCapacity != 400 {
		t.Errorf("Scaled(0.2) = budget %d cap %d, want 600/400", c.BudgetUnit, c.CacheCapacity)
	}
	if c.FloodTTL != 6 || c.Walkers != 5 {
		t.Error("Scaled must not touch algorithmic parameters")
	}
	defer func() {
		if recover() == nil {
			t.Error("Scaled(2) did not panic")
		}
	}()
	DefaultConfig(RW).Scaled(2)
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{})
}

func snap(src overlay.NodeID, version uint16, topics content.ClassSet) *adSnapshot {
	f := bloom.NewDefault()
	f.AddKey(uint64(version)) // distinct contents per version
	return &adSnapshot{src: src, version: version, topics: topics, filter: f, fullWire: f.WireSize(), patchWire: 8}
}

func newNS() *nodeState {
	return &nodeState{}
}

func TestStoreFullAndReplace(t *testing.T) {
	ns := newNS()
	a1 := snap(5, 1, 1)
	if got := ns.store(a1, adFull, 100, 10); got != storedOK {
		t.Fatalf("store full = %v", got)
	}
	if e := ns.entry(5); e.snap != a1 || e.lastSeen != 100 {
		t.Fatal("entry not cached")
	}
	a2 := snap(5, 2, 1)
	ns.store(a2, adFull, 200, 10)
	if ns.entry(5).snap != a2 {
		t.Fatal("newer full did not replace")
	}
	// An older full arriving late must not clobber the newer one.
	ns.store(a1, adFull, 300, 10)
	if ns.entry(5).snap != a2 {
		t.Fatal("stale full clobbered newer version")
	}
	if ns.entry(5).lastSeen != 300 {
		t.Fatal("stale full should still bump freshness")
	}
	if len(ns.fifo) != 1 {
		t.Fatalf("fifo length %d, want 1 (one source)", len(ns.fifo))
	}
}

func TestStorePatchSemantics(t *testing.T) {
	ns := newNS()
	// Patch for an unknown source is ignored.
	if got := ns.store(snap(7, 2, 1), adPatch, 0, 10); got != storedIgnored {
		t.Fatalf("patch on empty cache = %v, want ignored", got)
	}
	ns.store(snap(7, 1, 1), adFull, 0, 10)
	// Sequential patch advances.
	p2 := snap(7, 2, 1)
	if got := ns.store(p2, adPatch, 10, 10); got != storedOK {
		t.Fatalf("sequential patch = %v", got)
	}
	if ns.entry(7).snap != p2 {
		t.Fatal("patch did not advance snapshot")
	}
	// Version gap demands a full fetch.
	if got := ns.store(snap(7, 5, 1), adPatch, 20, 10); got != storedGap {
		t.Fatal("gap not detected")
	}
	// Old patch re-delivered: freshness only.
	if got := ns.store(snap(7, 1, 1), adPatch, 30, 10); got != storedOK {
		t.Fatal("stale patch should be absorbed")
	}
	if ns.entry(7).snap != p2 {
		t.Fatal("stale patch rewound the snapshot")
	}
}

func TestStoreRefreshSemantics(t *testing.T) {
	ns := newNS()
	if got := ns.store(snap(3, 1, 1), adRefresh, 0, 10); got != storedIgnored {
		t.Fatal("refresh for unknown source should be ignored")
	}
	a := snap(3, 1, 1)
	ns.store(a, adFull, 0, 10)
	if got := ns.store(snap(3, 1, 1), adRefresh, 50, 10); got != storedOK {
		t.Fatal("same-version refresh failed")
	}
	if ns.entry(3).lastSeen != 50 {
		t.Fatal("refresh did not bump freshness")
	}
	if got := ns.store(snap(3, 4, 1), adRefresh, 60, 10); got != storedGap {
		t.Fatal("refresh with newer version must signal a gap")
	}
}

func TestVersionWrapAround(t *testing.T) {
	if !newerVersion(0, 65535) {
		t.Error("0 must be newer than 65535 under serial arithmetic")
	}
	if newerVersion(65535, 0) {
		t.Error("65535 must be older than 0")
	}
	if newerVersion(5, 5) {
		t.Error("equal versions are not newer")
	}
	ns := newNS()
	ns.store(snap(1, 65535, 1), adFull, 0, 10)
	if got := ns.store(snap(1, 0, 1), adPatch, 1, 10); got != storedOK {
		t.Errorf("wrap-around patch = %v, want stored", got)
	}
}

func TestFIFOEviction(t *testing.T) {
	ns := newNS()
	for i := 0; i < 5; i++ {
		ns.store(snap(overlay.NodeID(i), 1, 1), adFull, int64(i), 3)
	}
	if ns.cacheLen() != 3 {
		t.Fatalf("cache size %d, want capacity 3", ns.cacheLen())
	}
	// Oldest insertions (0, 1) must be gone.
	for _, gone := range []overlay.NodeID{0, 1} {
		if ns.entry(gone) != nil {
			t.Errorf("source %d survived FIFO eviction", gone)
		}
	}
	for _, kept := range []overlay.NodeID{2, 3, 4} {
		if ns.entry(kept) == nil {
			t.Errorf("source %d evicted out of order", kept)
		}
	}
}

func TestDropStale(t *testing.T) {
	ns := newNS()
	ns.store(snap(1, 1, 1), adFull, 100, 10)
	ns.store(snap(2, 1, 1), adFull, 500, 10)
	ns.dropStale(300)
	if ns.entry(1) != nil {
		t.Error("stale entry survived")
	}
	if ns.entry(2) == nil {
		t.Error("fresh entry dropped")
	}
	if len(ns.fifo) != 1 {
		t.Errorf("fifo length %d after dropStale, want 1", len(ns.fifo))
	}
}

func TestTopicsFromCounts(t *testing.T) {
	var ns nodeState
	ns.classCnt[2] = 3
	ns.classCnt[9] = 1
	s := ns.topicsFromCounts()
	if !s.Has(2) || !s.Has(9) || s.Count() != 2 {
		t.Errorf("topics = %v", s)
	}
}

func TestWireBytesByKind(t *testing.T) {
	a := snap(1, 1, 1)
	full, patch, refresh := a.wireBytes(adFull), a.wireBytes(adPatch), a.wireBytes(adRefresh)
	if full <= patch || patch <= refresh {
		t.Errorf("wire sizes not ordered: full=%d patch=%d refresh=%d", full, patch, refresh)
	}
}
