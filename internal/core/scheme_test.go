package core

import (
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

var (
	testNet = netmodel.Generate(netmodel.SmallConfig())
	testU   = func() *content.Universe {
		c := content.DefaultConfig()
		c.NumPeers = 900
		c.NumDocs = 25000
		return content.Generate(c)
	}()
	testTr = func() *trace.Trace {
		cfg := trace.DefaultConfig()
		cfg.NumNodes = 400
		cfg.NumQueries = 1000
		cfg.NumJoins = 40
		cfg.NumLeaves = 40
		tr, err := trace.Build(testU, cfg)
		if err != nil {
			panic(err)
		}
		return tr
	}()
)

// testConfig scales the paper's knobs to the 400-node test overlay.
func testConfig(d DeliveryKind) Config {
	c := DefaultConfig(d).Scaled(0.05)
	c.RefreshPeriodSec = 30
	return c
}

func attach(t *testing.T, d DeliveryKind) (*Scheme, *sim.System) {
	t.Helper()
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 1)
	s := New(testConfig(d))
	s.Attach(sys)
	return s, sys
}

func TestAttachWarmsCaches(t *testing.T) {
	s, sys := attach(t, RW)
	// Warm-up delivery is accounted as warm-up, not run load.
	if sys.Load.WarmupBytes(metrics.AllMask) == 0 {
		t.Fatal("no warm-up ad traffic")
	}
	if sys.Load.TotalBytes(metrics.AllMask) != 0 {
		t.Fatal("warm-up leaked into the run window")
	}
	// Most nodes should have cached something interesting.
	warmed := 0
	for n := 0; n < testTr.InitialLive; n++ {
		if s.CacheSize(overlay.NodeID(n)) > 0 {
			warmed++
		}
	}
	if warmed < testTr.InitialLive/2 {
		t.Errorf("only %d/%d nodes warmed a cache", warmed, testTr.InitialLive)
	}
}

func TestSchemeNames(t *testing.T) {
	for _, d := range DeliveryKinds {
		s := New(testConfig(d))
		want := "asap-" + d.String()
		if s.Name() != want {
			t.Errorf("Name = %q, want %q", s.Name(), want)
		}
		if s.LoadMask() != metrics.ASAPLoadMask {
			t.Error("wrong load mask")
		}
	}
}

func TestSearchOneHopAfterWarmup(t *testing.T) {
	s, _ := attach(t, FLD) // FLD warms most broadly
	succ, oneHop, total := 0, 0, 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		total++
		res := s.Search(ev)
		if res.Success {
			succ++
			if res.Hops == 1 {
				oneHop++
			}
			if res.ResponseMS <= 0 {
				t.Fatalf("success with response %d", res.ResponseMS)
			}
		}
		if total >= 300 {
			break
		}
	}
	rate := float64(succ) / float64(total)
	if rate < 0.7 {
		t.Errorf("ASAP(FLD) success %.2f after warm-up, want high", rate)
	}
	if succ > 0 && float64(oneHop)/float64(succ) < 0.6 {
		t.Errorf("one-hop fraction %.2f, ASAP should resolve mostly locally", float64(oneHop)/float64(succ))
	}
}

func TestSearchCostTiny(t *testing.T) {
	s, _ := attach(t, RW)
	var total int64
	count := 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		res := s.Search(ev)
		total += res.Bytes
		count++
		if count >= 200 {
			break
		}
	}
	mean := float64(total) / float64(count)
	// A flood in this overlay costs ≈2,000 messages ≈ 180 KB; ASAP
	// searches must be orders of magnitude below that.
	if mean > 20_000 {
		t.Errorf("mean ASAP search cost %.0f B, want ≪ flooding", mean)
	}
	if mean == 0 {
		t.Error("searches cost nothing at all")
	}
}

func TestSearchFailsOnForeignTerm(t *testing.T) {
	s, _ := attach(t, RW)
	res := s.Search(&trace.Event{Time: 0, Kind: trace.Query, Node: 0, Terms: []content.Keyword{0xFFFFFF0}})
	if res.Success {
		t.Error("search succeeded for a term nobody shares")
	}
}

func TestContentChangePropagatesPatch(t *testing.T) {
	s, sys := attach(t, FLD)
	// Find a live sharer and one of its docs' keywords that is rare.
	var node overlay.NodeID = -1
	for n := 0; n < testTr.InitialLive; n++ {
		if len(sys.Docs(overlay.NodeID(n))) > 0 {
			node = overlay.NodeID(n)
			break
		}
	}
	if node < 0 {
		t.Fatal("no sharer")
	}
	before := sys.Load.TotalBytes(metrics.Mask(metrics.MAdPatch))

	// Give the node a brand-new document (simulate a content add).
	var newDoc content.DocID
	found := false
	for d := 0; d < testU.NumDocs(); d++ {
		if !sys.HasDoc(node, content.DocID(d)) && sys.Interests(node).Has(testU.ClassOf(content.DocID(d))) {
			newDoc = content.DocID(d)
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no addable doc")
	}
	ev := trace.Event{Time: 5000, Kind: trace.ContentAdd, Node: node, Doc: newDoc}
	sys.ApplyEvent(&ev)
	s.ContentChanged(5000, node, newDoc, true)

	after := sys.Load.TotalBytes(metrics.Mask(metrics.MAdPatch))
	if after <= before {
		t.Fatal("content change delivered no patch ad")
	}

	// The node itself must now answer confirmations for the new doc.
	kws := testU.Keywords(newDoc)
	if !sys.NodeMatches(node, kws) {
		t.Fatal("system state missing new doc")
	}

	// A peer that cached the patched ad finds the new keywords in it.
	pub := s.publishedSnapshot(node)
	if pub == nil {
		t.Fatal("no published snapshot after change")
	}
	if !pub.filter.ContainsAllKeys(termKeys(kws)) {
		t.Fatal("published filter missing new doc's keywords")
	}
}

func TestJoinAdvertisesAndPullsAds(t *testing.T) {
	s, sys := attach(t, RW)
	joiner := overlay.NodeID(testTr.InitialLive)
	ev := trace.Event{Time: 2000, Kind: trace.Join, Node: joiner}
	sys.ApplyEvent(&ev)
	s.NodeJoined(2000, joiner)
	if s.CacheSize(joiner) == 0 {
		t.Error("joiner pulled no ads from neighbours")
	}
	if sys.Load.TotalBytes(metrics.Mask(metrics.MAdsRequest)) == 0 {
		t.Error("join produced no ads-request traffic")
	}
}

func TestRefreshTickProducesTraffic(t *testing.T) {
	s, sys := attach(t, RW)
	before := sys.Load.TotalBytes(metrics.Mask(metrics.MAdRefresh))
	for sec := 1; sec <= s.cfg.RefreshPeriodSec; sec++ {
		s.Tick(int64(sec) * 1000)
	}
	after := sys.Load.TotalBytes(metrics.Mask(metrics.MAdRefresh))
	if after <= before {
		t.Error("a full refresh period produced no refresh-ad traffic")
	}
}

func TestStaleAdsExpireAfterDeparture(t *testing.T) {
	s, sys := attach(t, FLD)
	// Find a source that some other node caches.
	var holder, src overlay.NodeID = -1, -1
	for n := 0; n < testTr.InitialLive && holder < 0; n++ {
		ns := &s.nodes[n]
		ns.mu.Lock()
		if len(ns.fifo) > 0 {
			holder, src = overlay.NodeID(n), ns.fifo[0]
		}
		ns.mu.Unlock()
	}
	if holder < 0 {
		t.Fatal("no cached ads anywhere")
	}
	// The source departs; its ad is not refreshed again.
	sys.G.Leave(src)
	s.NodeLeft(1000, src)

	// Search far beyond the staleness window: the entry must be dropped.
	window := int64(s.cfg.StaleFactor*s.cfg.RefreshPeriodSec) * 1000
	s.Search(&trace.Event{Time: 1000 + 2*window, Kind: trace.Query, Node: holder, Terms: []content.Keyword{1}})
	ns := &s.nodes[holder]
	ns.mu.Lock()
	still := ns.entry(src) != nil
	ns.mu.Unlock()
	if still {
		t.Error("departed source's ad survived far past the staleness window")
	}
}

func TestEndToEndRunAllVariants(t *testing.T) {
	for _, d := range DeliveryKinds {
		sys := sim.NewSystem(testU, testTr, overlay.Crawled, testNet, 3)
		sch := New(testConfig(d))
		sum := sim.Run(sys, sch, sim.RunOptions{})
		if sum.Requests == 0 {
			t.Fatalf("%v: no requests", d)
		}
		if sum.SuccessRate < 0.5 {
			t.Errorf("asap-%v success %.2f, want decent on 400 nodes", d, sum.SuccessRate)
		}
		if sum.MeanRespMS <= 0 {
			t.Errorf("asap-%v mean response %v", d, sum.MeanRespMS)
		}
		if sum.LoadMeanKBps <= 0 {
			t.Errorf("asap-%v zero load", d)
		}
		if sum.OneHopRate < 0.5 {
			t.Errorf("asap-%v one-hop rate %.2f, want mostly local", d, sum.OneHopRate)
		}
		// Breakdown mass sums to 1 over the ASAP mask.
		total := 0.0
		for c := 0; c < metrics.NumMsgClasses; c++ {
			total += sum.Breakdown[metrics.MsgClass(c)]
		}
		if total < 0.99 || total > 1.01 {
			t.Errorf("asap-%v breakdown mass %v", d, total)
		}
	}
}

func TestParallelSearchSafety(t *testing.T) {
	// Run with many workers; the race detector guards correctness.
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 4)
	sch := New(testConfig(RW))
	sum := sim.Run(sys, sch, sim.RunOptions{Workers: 8})
	if sum.Requests == 0 {
		t.Fatal("no requests")
	}
}

func TestHopNeighborhoodRadii(t *testing.T) {
	s, sys := attach(t, RW)
	var p overlay.NodeID
	for n := 0; n < testTr.InitialLive; n++ {
		if sys.G.Alive(overlay.NodeID(n)) && len(sys.G.Neighbors(overlay.NodeID(n))) >= 2 {
			p = overlay.NodeID(n)
			break
		}
	}
	// Each radius gets its own scratch: the returned slices are
	// scratch-backed, and h1 must survive the h2 traversal.
	h0, m0 := s.hopNeighborhood(0, p, 0, s.getScratch())
	if h0 != nil || m0 != 0 {
		t.Error("h=0 neighbourhood not empty")
	}
	h1, m1 := s.hopNeighborhood(0, p, 1, s.getScratch())
	h2, m2 := s.hopNeighborhood(0, p, 2, s.getScratch())
	if len(h1) == 0 || m1 != len(h1) {
		t.Errorf("h=1: %d targets %d msgs", len(h1), m1)
	}
	if len(h2) <= len(h1) {
		t.Errorf("h=2 (%d) not larger than h=1 (%d)", len(h2), len(h1))
	}
	if m2 <= m1 {
		t.Errorf("h=2 messages (%d) not above h=1 (%d)", m2, m1)
	}
	// h=2 path latencies are positive and include both hops.
	for _, tg := range h2 {
		if tg.pathLat <= 0 {
			t.Fatalf("non-positive path latency to %d", tg.node)
		}
	}
}

func TestVariableFiltersEndToEnd(t *testing.T) {
	cfg := testConfig(RW)
	cfg.VariableFilters = true
	sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 5)
	s := New(cfg)
	s.Attach(sys)

	// Published filters must use pool lengths matched to keyword sets —
	// small sharers get short filters.
	sawShort, sawAny := false, false
	for n := 0; n < testTr.InitialLive; n++ {
		snap := s.publishedSnapshot(overlay.NodeID(n))
		if snap == nil {
			continue
		}
		sawAny = true
		if snap.filter.Bits() < 11542 {
			sawShort = true
		}
	}
	if !sawAny {
		t.Fatal("nothing published")
	}
	if !sawShort {
		t.Error("no node used a short filter; variable sizing inert")
	}

	// Searches still work across heterogeneous filter lengths.
	succ, total := 0, 0
	for i := range testTr.Events {
		ev := &testTr.Events[i]
		if ev.Kind != trace.Query {
			continue
		}
		total++
		if s.Search(ev).Success {
			succ++
		}
		if total >= 200 {
			break
		}
	}
	if rate := float64(succ) / float64(total); rate < 0.5 {
		t.Errorf("variable-filter success %.2f, want comparable to fixed", rate)
	}

	// A content change that crosses a pool boundary ships a full-sized
	// patch (no cross-geometry patches) and search state stays coherent.
	var node overlay.NodeID = -1
	for n := 0; n < testTr.InitialLive; n++ {
		if len(sys.Docs(overlay.NodeID(n))) > 0 {
			node = overlay.NodeID(n)
			break
		}
	}
	if node < 0 {
		t.Fatal("no sharer")
	}
	added := 0
	for d := 0; d < testU.NumDocs() && added < 40; d++ {
		doc := content.DocID(d)
		if sys.HasDoc(node, doc) || !sys.Interests(node).Has(testU.ClassOf(doc)) {
			continue
		}
		ev := trace.Event{Time: 1000, Kind: trace.ContentAdd, Node: node, Doc: doc}
		sys.ApplyEvent(&ev)
		s.ContentChanged(1000, node, doc, true)
		added++
	}
	snap := s.publishedSnapshot(node)
	if snap == nil {
		t.Fatal("no snapshot after growth")
	}
	kws := testU.Keywords(sys.Docs(node)[0])
	if !snap.filter.ContainsAllKeys(termKeys(kws)) {
		t.Error("published filter lost keys across geometry growth")
	}
}

func TestFreeRiderAdvertisesNothing(t *testing.T) {
	s, sys := attach(t, RW)
	for n := 0; n < testTr.InitialLive; n++ {
		if len(sys.Docs(overlay.NodeID(n))) == 0 {
			if snap := s.publishedSnapshot(overlay.NodeID(n)); snap != nil {
				t.Fatalf("free-rider %d published an ad", n)
			}
			return
		}
	}
	t.Skip("no free-rider among initial nodes")
}
