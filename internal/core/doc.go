// Package core implements ASAP, the paper's contribution (§III): a
// content-pushing, advertisement-based search algorithm for unstructured
// P2P systems.
//
// # Ads
//
// An ad is a tuple (I, C, T, v): node identity, content information, topic
// set and a 16-bit version (§III-B). Three ad types exist:
//
//   - full ad — complete content indices as a fixed-geometry Bloom filter
//     over the node's keyword set;
//   - patch ad — the incremental index change since the last update, a
//     list of changed filter-bit locations;
//   - refresh ad — empty content information, asserting liveness and the
//     current version.
//
// Internally each publication is materialised once as an immutable
// adSnapshot; caches hold pointers. Applying a patch at a cache is a
// pointer swap to the successor snapshot — bit-for-bit identical to
// applying the changed-bit list the wire carries, but O(1) and allocation-
// free per recipient. Wire sizes are still charged from the real
// encodings (compressed filter for full ads, changed-bit list for patch
// ads).
//
// # Delivery
//
// Ads are delivered by one of three forwarding algorithms (§IV-A):
// flooding with TTL 6 (ASAP(FLD)), 5 random walkers (ASAP(RW)), or a
// GSA-style seeded walk (ASAP(GSA)). For the budgeted schemes the total
// message allowance of one delivery is |T(a)|·M₀ with M₀ = 3,000. A node
// receiving an ad caches it iff the ad's topics intersect its interests.
// Caches are capacity-bounded with FIFO eviction, and entries not
// refreshed within a staleness window are dropped lazily.
//
// # Search (Table I)
//
// A request first scans the local ads cache for filters matching all query
// terms and confirms the best candidates directly with the ad sources
// (one-hop search; confirmations are sent in parallel and checked against
// the source's real contents, so Bloom false positives and departed
// sources surface as negative/absent replies). If the cache yields
// nothing, the node requests interest-matching ads from every peer within
// h hops (default 1), merges the replies into its cache, and retries —
// the same ads-request flow a freshly joined node runs.
//
// # Churn and updates
//
// Content changes republish a patch ad; joins publish a full ad and pull
// neighbour ads; departures are silent (ungraceful) — stale ads linger
// until refresh-based expiry, exactly the failure mode §III-C discusses.
package core
