package core

import (
	"testing"
	"testing/quick"

	"asap/internal/bloom"
	"asap/internal/overlay"
)

// storeOp is one randomly generated cache interaction.
type storeOp struct {
	Src     uint8
	Version uint8 // kept small so sequences and gaps both occur
	Kind    uint8
	Time    uint16
}

// TestStoreInvariantsProperty drives a nodeState cache with arbitrary
// operation sequences and checks the structural invariants:
//
//   - the cache never exceeds capacity;
//   - fifo lists exactly the cached sources, no duplicates;
//   - a cached entry's version never moves backwards;
//   - lastSeen never decreases for a surviving entry.
func TestStoreInvariantsProperty(t *testing.T) {
	const capacity = 8
	prop := func(ops []storeOp) bool {
		ns := newNS()
		lastVersion := map[overlay.NodeID]uint16{}
		lastSeen := map[overlay.NodeID]int64{}
		now := int64(0)
		for _, op := range ops {
			now += int64(op.Time) // replay time is monotonic
			src := overlay.NodeID(op.Src % 16)
			kind := adKind(op.Kind % 3)
			f := bloom.New(64, 2)
			sn := &adSnapshot{src: src, version: uint16(op.Version), topics: 1, filter: f, fullWire: 8, patchWire: 4}
			ns.store(sn, kind, now, capacity)

			if ns.cacheLen() > capacity {
				return false
			}
			if len(ns.fifo) != ns.cacheLen() {
				return false
			}
			seen := map[overlay.NodeID]bool{}
			for _, k := range ns.fifo {
				if seen[k] {
					return false
				}
				seen[k] = true
				if ns.entry(k) == nil {
					return false
				}
			}
			for _, k := range ns.fifo {
				e := ns.entry(k)
				if prev, ok := lastVersion[k]; ok && newerVersion(prev, e.snap.version) {
					return false // version went backwards
				}
				lastVersion[k] = e.snap.version
				if prev, ok := lastSeen[k]; ok && e.lastSeen < prev {
					return false
				}
				lastSeen[k] = e.lastSeen
			}
			// Entries that vanished (evicted) reset their history.
			for k := range lastVersion {
				if ns.entry(k) == nil {
					delete(lastVersion, k)
					delete(lastSeen, k)
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStoreGapAlwaysRecoverable: after any gap outcome, storing the
// source's current full snapshot always lands the cache at that version.
func TestStoreGapAlwaysRecoverable(t *testing.T) {
	prop := func(haveV, newV uint16) bool {
		ns := newNS()
		ns.store(snap(1, haveV, 1), adFull, 0, 8)
		outcome := ns.store(snap(1, newV, 1), adPatch, 1, 8)
		if outcome == storedGap {
			cur := snap(1, newV, 1)
			ns.store(cur, adFull, 2, 8)
			return ns.entry(1).snap.version == newV
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestNewerVersionProperty: serial-number comparison is antisymmetric and
// irreflexive.
func TestNewerVersionProperty(t *testing.T) {
	prop := func(a, b uint16) bool {
		if a == b {
			return !newerVersion(a, b) && !newerVersion(b, a)
		}
		// Exactly at the half-range boundary both directions are "older"
		// (RFC 1982 leaves it undefined); elsewhere exactly one wins.
		if uint16(a-b) == 1<<15 {
			return true
		}
		return newerVersion(a, b) != newerVersion(b, a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
