package core

import (
	"testing"

	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

func TestMinResultsValidation(t *testing.T) {
	c := DefaultConfig(RW)
	c.MinResults = 0
	if c.Validate() == nil {
		t.Error("MinResults 0 accepted")
	}
	c.MinResults = c.MaxConfirms + 1
	if c.Validate() == nil {
		t.Error("MinResults above MaxConfirms accepted")
	}
}

// TestMinResultsTriggersPhase2 compares a single-result and a multi-result
// configuration on the same queries: demanding more results must generate
// at least as much ads-request traffic and never fewer hits.
func TestMinResultsTriggersPhase2(t *testing.T) {
	run := func(minResults int) (sums *metrics.SearchStats, adsReqBytes int64) {
		cfg := testConfig(RW)
		cfg.MinResults = minResults
		cfg.MaxConfirms = 5
		sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 21)
		s := New(cfg)
		s.Attach(sys)
		stats := &metrics.SearchStats{}
		n := 0
		for i := range testTr.Events {
			ev := &testTr.Events[i]
			if ev.Kind != trace.Query {
				continue
			}
			stats.Record(s.Search(ev))
			if n++; n >= 300 {
				break
			}
		}
		return stats, sys.Load.TotalBytes(metrics.Mask(metrics.MAdsRequest))
	}

	one, oneReq := run(1)
	many, manyReq := run(3)
	if many.MeanHits() < one.MeanHits() {
		t.Errorf("MinResults=3 mean hits %.2f below MinResults=1's %.2f", many.MeanHits(), one.MeanHits())
	}
	if manyReq <= oneReq {
		t.Errorf("MinResults=3 ads-request traffic %d not above MinResults=1's %d", manyReq, oneReq)
	}
	if many.SuccessRate() < one.SuccessRate() {
		t.Errorf("asking for more results lowered success: %.2f vs %.2f", many.SuccessRate(), one.SuccessRate())
	}
	// First-answer latency must not regress: phase 2 runs after a hit but
	// the hit's response time stands.
	if one.SuccessRate() > 0 && many.MeanResponseMS() > one.MeanResponseMS()*1.25 {
		t.Errorf("multi-result raised mean response %.0f → %.0f ms", one.MeanResponseMS(), many.MeanResponseMS())
	}
}

// TestBiasedDeliveryImprovesPlacement: at identical budget, biased walks
// must land ads on at least as many interested caches as uniform walks.
func TestBiasedDeliveryImprovesPlacement(t *testing.T) {
	cached := func(biased bool) int {
		cfg := testConfig(RW)
		cfg.BiasedDelivery = biased
		sys := sim.NewSystem(testU, testTr, overlay.Random, testNet, 22)
		s := New(cfg)
		s.Attach(sys)
		total := 0
		for n := 0; n < testTr.InitialLive; n++ {
			total += s.CacheSize(overlay.NodeID(n))
		}
		return total
	}
	uniform := cached(false)
	biased := cached(true)
	if biased <= uniform {
		t.Errorf("biased delivery placed %d cached ads, uniform placed %d", biased, uniform)
	}
	t.Logf("cached ads after warm-up: uniform=%d biased=%d (+%.0f%%)",
		uniform, biased, 100*float64(biased-uniform)/float64(uniform))
}

// TestBiasedDeliveryEndToEnd: the placement advantage should show up as
// equal-or-better success at equal budget.
func TestBiasedDeliveryEndToEnd(t *testing.T) {
	run := func(biased bool) float64 {
		cfg := testConfig(RW)
		cfg.BiasedDelivery = biased
		sys := sim.NewSystem(testU, testTr, overlay.Crawled, testNet, 23)
		sch := New(cfg)
		sum := sim.Run(sys, sch, sim.RunOptions{})
		return sum.SuccessRate
	}
	uniform := run(false)
	biased := run(true)
	if biased+0.03 < uniform {
		t.Errorf("biased delivery success %.3f well below uniform %.3f", biased, uniform)
	}
	t.Logf("success: uniform=%.3f biased=%.3f", uniform, biased)
}
