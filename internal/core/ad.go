package core

import (
	"sync"

	"asap/internal/bloom"
	"asap/internal/content"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// adSnapshot is one published state of a node's ad (I, C, T, v). It is
// immutable after publication; caches across the whole overlay share the
// pointer. A patch ad with version v carries the changed-bit list from
// v-1; a recipient at v-1 swaps to this snapshot, which is bit-identical
// to applying that list.
type adSnapshot struct {
	src     overlay.NodeID
	version uint16
	topics  content.ClassSet
	filter  *bloom.Filter // immutable; never mutate after publish

	// Global signature-index coordinates (see adindex.go): sigSlot is the
	// 1-based lane in geometry group sigGroup's bit-sliced matrix, 0 for an
	// unslotted snapshot (odd geometry, or one built outside a Scheme — unit
	// tests construct such snapshots and take the scalar match path).
	sigGroup uint8
	sigSlot  int32

	fullWire  int // wire bytes of the full-ad content encoding
	patchWire int // wire bytes of the patch from the previous version
}

// cachedAd is one ads-cache entry: a snapshot pointer plus freshness.
type cachedAd struct {
	snap     *adSnapshot
	lastSeen sim.Clock
}

// nodeState is the per-node ASAP state: own publication and the ads cache.
//
// Two distinct race surfaces exist, and each gets its own mechanism:
//
//   - Search vs Search: the runner fans query batches across workers, and
//     two concurrent searches can touch the same nodeState (a neighbour
//     serving ads while also running its own query). mu serialises these.
//   - Delivery vs Search: ad deliveries, publishes and leave/join events
//     all run on the runner thread, and the runner flushes every query
//     batch (wg.Wait) before processing a state event — so delivery-path
//     writes NEVER overlap a search. That single-writer guarantee lets
//     the delivery path skip mu entirely: the Scheme brackets each
//     delivery-path write section with beginApply/endApply (one scheme-
//     level version bump per delivery, not a lock per visited node) and
//     search-side sections validate the contract via Scheme.checkStable.
//
// Own content bookkeeping (classCnt, dirty) is only touched from
// runner-serialised callbacks and needs neither.
//
// The zero value is valid: the flat table starts empty, and minSeen=0
// makes the staleness gate conservative (dropStale runs and self-heals
// it).
type nodeState struct {
	mu        sync.Mutex
	published *adSnapshot
	tab       adTable          // src → cache entry (see adindex.go)
	free      []*cachedAd      // recycled cache entries (slab-backed)
	slabbed   bool             // the one-shot entry slab has been carved
	fifo      []overlay.NodeID // insertion order for eviction and serving
	classCnt  [content.NumClasses]int32
	dirty     bool      // own content changed since the last publish rebuild
	minSeen   sim.Clock // lower bound on cached lastSeen; staleness gate
}

// topicsFromCounts derives the node's current topic set T(a) = {t(d) | d ∈
// D_p} from its per-class document counts.
func (ns *nodeState) topicsFromCounts() content.ClassSet {
	var s content.ClassSet
	for c := 0; c < content.NumClasses; c++ {
		if ns.classCnt[c] > 0 {
			s = s.Add(content.Class(c))
		}
	}
	return s
}

// newEntry returns a zeroed cache entry, recycled or slab-allocated.
// Entries are table values by pointer so the delivery hot path can bump
// freshness (and swap snapshots) in place: one table lookup, no re-insert.
//
// The first insertion carves one slab for the node's whole lifetime:
// evictOver brings the cache back to capacity before store returns, so
// at most capacity+1 entries are ever live at once, and the slab plus
// its free list are the node's only two cache-entry allocations however
// much ad traffic passes through. A capacity raised between calls (unit
// tests do this) falls back to single-entry allocations once the slab is
// exhausted.
func (ns *nodeState) newEntry(capacity int) *cachedAd {
	if n := len(ns.free); n > 0 {
		e := ns.free[n-1]
		ns.free = ns.free[:n-1]
		return e
	}
	if ns.slabbed {
		return &cachedAd{}
	}
	ns.slabbed = true
	slab := make([]cachedAd, capacity+1)
	ns.free = make([]*cachedAd, 0, capacity+1)
	for i := len(slab) - 1; i >= 1; i-- {
		ns.free = append(ns.free, &slab[i])
	}
	return &slab[0]
}

// freeEntry recycles a removed cache entry, dropping its snapshot
// reference so the arena does not pin dead ads for the GC.
func (ns *nodeState) freeEntry(e *cachedAd) {
	*e = cachedAd{}
	ns.free = append(ns.free, e)
}

// storeOutcome reports what a cache store did, so the caller can account
// follow-up traffic (full-ad refetch after a version gap).
type storeOutcome uint8

const (
	storedOK      storeOutcome = iota // cached, updated, or refreshed
	storedIgnored                     // not interesting / unknown patch source
	storedGap                         // version gap: caller must fetch a full ad
)

// store merges an incoming ad into the cache under ns.mu. kind dictates
// semantics:
//
//   - full: cache or replace when the version is not older;
//   - patch: advance v-1 → v by snapshot swap; unknown source is ignored
//     (the node never cached the full ad the patch amends); an older
//     cached version is a gap;
//   - refresh: bump freshness; a version mismatch is a gap.
//
// capacity enforcement evicts the oldest-inserted entry (FIFO).
func (ns *nodeState) store(snap *adSnapshot, kind adKind, now sim.Clock, capacity int) storeOutcome {
	cur := ns.tab.get(snap.src)
	switch kind {
	case adFull:
		if cur != nil && newerVersion(cur.snap.version, snap.version) {
			// Cached version is newer (reordered delivery); keep it.
			cur.lastSeen = now
			return storedOK
		}
		if cur != nil {
			// Replacement keeps the entry's fifo position.
			cur.snap, cur.lastSeen = snap, now
			return storedOK
		}
		e := ns.newEntry(capacity)
		*e = cachedAd{snap: snap, lastSeen: now}
		ns.tab.put(snap.src, e)
		ns.fifo = append(ns.fifo, snap.src)
		if now < ns.minSeen {
			ns.minSeen = now
		}
		ns.evictOver(capacity)
		return storedOK
	case adPatch:
		if cur == nil {
			return storedIgnored
		}
		if cur.snap.version+1 == snap.version {
			cur.snap, cur.lastSeen = snap, now
			return storedOK
		}
		if newerVersion(snap.version, cur.snap.version) {
			return storedGap
		}
		cur.lastSeen = now
		return storedOK
	case adRefresh:
		if cur == nil {
			return storedIgnored
		}
		if cur.snap.version == snap.version {
			cur.lastSeen = now
			return storedOK
		}
		if newerVersion(snap.version, cur.snap.version) {
			return storedGap
		}
		cur.lastSeen = now
		return storedOK
	}
	return storedIgnored
}

// newerVersion reports whether a is strictly newer than b under 16-bit
// serial-number arithmetic (RFC 1982 style), so versions survive wrap.
func newerVersion(a, b uint16) bool {
	return a != b && int16(a-b) > 0
}

// evictOver pops FIFO entries until the cache fits capacity.
func (ns *nodeState) evictOver(capacity int) {
	for ns.tab.n > capacity && len(ns.fifo) > 0 {
		victim := ns.fifo[0]
		ns.fifo = ns.fifo[1:]
		if e := ns.tab.del(victim); e != nil {
			ns.freeEntry(e)
		}
	}
}

// drop removes src from the cache and its insertion-order list, keeping
// fifo an exact mirror of the cached sources (ads replies serve entries in
// fifo order, so a stale fifo entry would change reply contents). Called
// under mu; dead-source eviction is rare enough that the linear scan does
// not matter.
func (ns *nodeState) drop(src overlay.NodeID) {
	e := ns.tab.del(src)
	if e == nil {
		return
	}
	ns.freeEntry(e)
	for i, x := range ns.fifo {
		if x == src {
			ns.fifo = append(ns.fifo[:i], ns.fifo[i+1:]...)
			break
		}
	}
}

// dropStale removes entries last seen before deadline and recomputes the
// minSeen watermark from the survivors, so Search can skip the sweep until
// an entry can actually expire. Called under mu.
func (ns *nodeState) dropStale(deadline sim.Clock) {
	if ns.tab.n == 0 {
		ns.minSeen = maxClock
		return
	}
	minSeen := maxClock
	kept := ns.fifo[:0]
	for _, src := range ns.fifo {
		e := ns.tab.get(src)
		if e == nil {
			continue
		}
		if e.lastSeen < deadline {
			ns.tab.del(src)
			ns.freeEntry(e)
		} else {
			if e.lastSeen < minSeen {
				minSeen = e.lastSeen
			}
			kept = append(kept, src)
		}
	}
	ns.fifo = kept
	ns.minSeen = minSeen
}

// adKind discriminates the three ad types of §III-B.
type adKind uint8

const (
	adFull adKind = iota
	adPatch
	adRefresh
)

// wireBytes returns the on-wire message size of this snapshot under the
// given ad kind.
func (s *adSnapshot) wireBytes(kind adKind) int {
	switch kind {
	case adFull:
		return sim.FullAdBytes(s.fullWire)
	case adPatch:
		return sim.PatchAdBytes(s.patchWire)
	default:
		return sim.RefreshAdBytes()
	}
}
