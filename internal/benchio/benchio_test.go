package benchio

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMergeEntryPreservesOtherKeys(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	seed := `{"benchjson":{"goos":"linux"},"scale_runs":{"full":{"wall_ms":1}}}`
	if err := os.WriteFile(path, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	type rec struct {
		QPS float64 `json:"qps"`
	}
	if err := MergeEntry(path, "serving", "inproc", rec{QPS: 1234.5}); err != nil {
		t.Fatal(err)
	}
	if err := MergeEntry(path, "scale_runs", "tiny", rec{QPS: 9}); err != nil {
		t.Fatal(err)
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if buf[len(buf)-1] != '\n' {
		t.Error("merged file does not end with newline")
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("merged file is not JSON: %v", err)
	}
	for _, key := range []string{"benchjson", "scale_runs", "serving"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("key %q missing after merges", key)
		}
	}
	var runs map[string]json.RawMessage
	if err := json.Unmarshal(doc["scale_runs"], &runs); err != nil {
		t.Fatal(err)
	}
	if _, ok := runs["full"]; !ok {
		t.Error("pre-existing scale_runs entry clobbered")
	}
	if _, ok := runs["tiny"]; !ok {
		t.Error("new scale_runs entry missing")
	}
}

func TestMergeEntryCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fresh.json")
	if err := MergeEntry(path, "serving", "k", map[string]int{"v": 1}); err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]map[string]int
	buf, _ := os.ReadFile(path)
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["serving"]["k"]["v"] != 1 {
		t.Fatalf("round-trip: %v", doc)
	}
}

func TestMergeEntryRejectsNonObject(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.json")
	os.WriteFile(path, []byte(`[1,2,3]`), 0o644)
	if err := MergeEntry(path, "serving", "k", 1); err == nil {
		t.Fatal("merging into a non-object file succeeded")
	}
}
