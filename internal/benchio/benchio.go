// Package benchio persists benchmark records: atomic file replacement
// and read-modify-write merging of keyed blocks inside a shared bench
// JSON document (BENCH_matrix.json). Every producer — the scale runner,
// the scenario sweep, the serving-plane load generator — merges its own
// block and leaves every other key of the file byte-for-byte intact, so
// independent runs compose instead of clobbering each other.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic replaces path via a temp file in the same directory and
// an atomic rename, so a crash mid-write can never destroy the existing
// record — the file either keeps its old contents or has the new ones.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// MergeEntries read-modify-writes the JSON object at path: for each
// (key, rec) pair, doc[block][key] is replaced with rec's JSON encoding.
// Every other key — of the document and of the block — survives
// verbatim. A missing file starts as an empty document.
func MergeEntries(path, block string, entries map[string]any) error {
	doc := map[string]json.RawMessage{}
	if buf, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(buf, &doc); err != nil {
			return fmt.Errorf("benchio: %s is not a JSON object: %w", path, err)
		}
	}
	blk := map[string]json.RawMessage{}
	if raw, ok := doc[block]; ok {
		if err := json.Unmarshal(raw, &blk); err != nil {
			return fmt.Errorf("benchio: %s block in %s: %w", block, path, err)
		}
	}
	for key, rec := range entries {
		entry, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		blk[key] = entry
	}
	raw, err := json.Marshal(blk)
	if err != nil {
		return err
	}
	doc[block] = raw
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(buf, '\n'), 0o644)
}

// MergeEntry merges a single keyed record into a block (see
// MergeEntries).
func MergeEntry(path, block, key string, rec any) error {
	return MergeEntries(path, block, map[string]any{key: rec})
}
