package sim

import (
	"sync"

	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// The sharded replay engine partitions the overlay's node ID space into S
// contiguous ranges (overlay.Sharding) and replays each query batch as a
// parallel intra-shard phase followed by an epoch barrier that drains the
// batch's cross-shard work in deterministic trace order. Outputs are
// byte-identical to the Workers=1 sequential replay at every shard count,
// including S=1, because the engine only ever reorders query pairs it has
// proven commutative:
//
//   - Each query is planned on the runner thread, in trace order, into
//     either its owner shard's lane or the barrier's deferred queue. A
//     lane replays its queries sequentially, in trace order.
//   - A query is deferred exactly when it conflicts with an earlier query
//     in a different lane (or one already deferred): its written state is
//     read or written by the other, or vice versa. Every surviving
//     cross-lane pair therefore commutes, and the deferred queue replays
//     after all lanes join, still in trace order.
//   - Search outcomes land in a per-batch results array indexed by trace
//     position; the runner folds them into the metrics and observability
//     accumulators sequentially, in trace order, after the barrier — the
//     exact call sequence of the sequential replay.
//
// Schemes declare their data-flow shape through two optional interfaces.
// PureSearcher marks schemes whose Search writes no scheme state at all
// (the stateless baselines); their queries never conflict and lane
// placement is pure load spreading. SearchSharder exposes ASAP's shape:
// one written node (the requester's representative) plus a bounded read
// neighbourhood, which is what the conflict plan consumes.

// SearchSharder is an optional Scheme extension for stateful schemes whose
// per-query writes are confined to a single owner node. Implementing it
// enables sharded replay (RunOptions.Shards).
type SearchSharder interface {
	// SearchOwner returns the node whose scheme state Search(ev) may
	// mutate when ev.Node == n, or a negative ID when the query touches no
	// scheme state at all (e.g. a detached hierarchical leaf).
	SearchOwner(n overlay.NodeID) overlay.NodeID
	// AppendSearchReads appends every node whose scheme state Search may
	// read for a query owned by owner — the owner itself plus its
	// request neighbourhood — and returns the extended buffer. A
	// conservative superset is correct; a missed node is not.
	AppendSearchReads(owner overlay.NodeID, buf []overlay.NodeID) []overlay.NodeID
}

// PureSearcher is an optional Scheme extension marking schemes whose
// Search neither reads nor writes scheme-owned mutable state: the outcome
// is a pure function of the batch-frozen system state and the query event.
// Pure queries never conflict, so sharded replay fans them out freely.
type PureSearcher interface {
	PureSearch()
}

// QueryPhaser is an optional Scheme extension: the sharded engine brackets
// every parallel intra-shard phase with BeginQueryPhase/EndQueryPhase so
// the scheme can extend its single-writer assertions — ASAP's delivery
// seqlock panics on any delivery write opened while a query phase is live,
// turning a runner-barrier breach into an immediate failure instead of
// silent corruption.
type QueryPhaser interface {
	BeginQueryPhase()
	EndQueryPhase()
}

// deferredBit marks a node as touched by a barrier-deferred query in the
// per-batch lane masks. It is disjoint from every lane bit (lanes occupy
// bits [0, MaxShards)), so later queries conflicting with deferred work
// are themselves deferred, preserving their relative trace order.
const deferredBit = uint64(1) << overlay.MaxShards

// shardDispatcher executes query batches for one run under the sharded
// discipline. It is created per Run and used from the runner thread only;
// the lane goroutines it spawns live for a single batch.
type shardDispatcher struct {
	sch     Scheme
	sharder SearchSharder // nil for pure schemes
	phaser  QueryPhaser   // nil when the scheme has no phase hooks
	sh      overlay.Sharding

	// Per-batch planning state, epoch-stamped so no per-batch clearing of
	// the node-indexed tables is needed.
	epoch     uint32
	stamp     []uint32 // node → epoch the masks below are valid for
	readMask  []uint64 // node → lanes that read it this batch
	writeMask []uint64 // node → lanes that wrote it this batch

	lanes    [][]int32 // shard → query indexes, in trace order
	deferred []int32   // barrier queue, in trace order
	readBuf  []overlay.NodeID
	results  []metrics.SearchResult
}

// newShardDispatcher returns a dispatcher for sch over n nodes in shards
// lanes, or nil when the scheme declares no shardable search shape — the
// caller then falls back to the unsharded batch path.
func newShardDispatcher(sch Scheme, n, shards int) *shardDispatcher {
	d := &shardDispatcher{sch: sch, sh: overlay.NewSharding(n, shards)}
	d.sharder, _ = sch.(SearchSharder)
	if d.sharder == nil {
		if _, pure := sch.(PureSearcher); !pure {
			return nil
		}
	}
	d.phaser, _ = sch.(QueryPhaser)
	d.stamp = make([]uint32, n)
	d.readMask = make([]uint64, n)
	d.writeMask = make([]uint64, n)
	d.lanes = make([][]int32, d.sh.NumShards())
	return d
}

// masks returns node's per-batch read and write lane masks, resetting them
// on first touch this batch.
func (d *shardDispatcher) masks(node overlay.NodeID) (*uint64, *uint64) {
	if d.stamp[node] != d.epoch {
		d.stamp[node] = d.epoch
		d.readMask[node] = 0
		d.writeMask[node] = 0
	}
	return &d.readMask[node], &d.writeMask[node]
}

// runBatch plans, executes and folds one query batch. See the package
// comment above for the equivalence argument.
func (d *shardDispatcher) runBatch(batch []*trace.Event, stats *metrics.SearchStats, rec *obs.Recorder) {
	// Plan: walk the batch in trace order, landing each query in its
	// owner's lane unless it conflicts with earlier cross-lane work.
	d.epoch++
	if d.epoch == 0 { // wrapped: invalidate all stamps once per 2^32 batches
		clear(d.stamp)
		d.epoch = 1
	}
	for i := range d.lanes {
		d.lanes[i] = d.lanes[i][:0]
	}
	d.deferred = d.deferred[:0]
	if cap(d.results) < len(batch) {
		d.results = make([]metrics.SearchResult, len(batch))
	}
	results := d.results[:len(batch)]

	for i, ev := range batch {
		if d.sharder == nil {
			// Pure scheme: no conflicts exist; spread by requester range.
			d.lanes[d.sh.ShardOf(ev.Node)] = append(d.lanes[d.sh.ShardOf(ev.Node)], int32(i))
			continue
		}
		owner := d.sharder.SearchOwner(ev.Node)
		if owner < 0 {
			// The query touches no scheme state: pure by construction.
			d.lanes[d.sh.ShardOf(ev.Node)] = append(d.lanes[d.sh.ShardOf(ev.Node)], int32(i))
			continue
		}
		reads := d.sharder.AppendSearchReads(owner, d.readBuf[:0])
		d.readBuf = reads
		lane := d.sh.ShardOf(owner)
		bit := uint64(1) << lane

		// Conflict iff an earlier query in another lane (or the barrier)
		// read or wrote this query's written node, or wrote any node this
		// query reads. Read-read overlap commutes and does not defer.
		ownerR, ownerW := d.masks(owner)
		foreign := (*ownerR | *ownerW) &^ bit
		for _, r := range reads {
			_, w := d.masks(r)
			foreign |= *w &^ bit
		}
		if foreign != 0 {
			bit = deferredBit
			d.deferred = append(d.deferred, int32(i))
		} else {
			d.lanes[lane] = append(d.lanes[lane], int32(i))
		}
		*ownerW |= bit
		for _, r := range reads {
			rm, _ := d.masks(r)
			*rm |= bit
		}
	}

	// Parallel intra-shard phase: one goroutine per non-empty lane, each
	// replaying its queries sequentially in trace order.
	if d.phaser != nil {
		d.phaser.BeginQueryPhase()
	}
	var wg sync.WaitGroup
	for _, lane := range d.lanes {
		if len(lane) == 0 {
			continue
		}
		wg.Add(1)
		go func(idx []int32) {
			defer wg.Done()
			for _, i := range idx {
				results[i] = d.sch.Search(batch[i])
			}
		}(lane)
	}
	wg.Wait()

	// Epoch barrier: drain the cross-shard queue in trace order on the
	// runner thread, then fold every outcome sequentially — the sequential
	// replay's exact accumulator call sequence.
	for _, i := range d.deferred {
		results[i] = d.sch.Search(batch[i])
	}
	if d.phaser != nil {
		d.phaser.EndQueryPhase()
	}
	for i, ev := range batch {
		stats.Record(results[i])
		rec.Search(ev.Time, results[i].Success, results[i].ResponseMS, results[i].Bytes)
	}
}
