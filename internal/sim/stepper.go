package sim

import (
	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/trace"
)

// Stepper is the sequential replay core, extracted from Run so callers
// other than the batch runner can drive it incrementally: the asapnode
// daemon replays the same trace event-by-event between wire exchanges
// (internal/cluster), while Run layers worker fan-out and the sharded
// dispatcher on top. The stepping discipline is exactly the loop Run has
// always executed — same tick boundaries, same content-run coalescing,
// same graceful-leave ordering — so a Workers=1 Run and a Stepper driven
// to completion produce byte-identical summaries.
//
// The protocol is: NextBatch() applies state events (content churn,
// joins, leaves, ticks) up to the next flush point and returns the
// pending run of consecutive query events, or nil when the trace is
// exhausted. The caller executes each query (in order, via the scheme's
// Search) and folds every outcome with Record. Finish() fills the load
// series to the horizon and summarises.
type Stepper struct {
	sys   *System
	sch   Scheme
	rec   *obs.Recorder
	stats *metrics.SearchStats

	curSec   int
	nextTick Clock
	i        int // next unconsumed trace event
	batch    []*trace.Event
	maxBatch int

	leaver   GracefulLeaver // nil unless the scheme opts in
	batcher  ContentBatcher // nil unless the scheme opts in
	runDocs  []content.DocID
	runAdded []bool

	tReplay int64
}

// NewStepper attaches the scheme (warm-up) and positions the replay at
// the first trace event. maxBatch caps the query-run length NextBatch
// returns; 0 means a run only ends at the next state event or tick
// boundary — Run's semantics.
func NewStepper(sys *System, sch Scheme, maxBatch int) *Stepper {
	st := &Stepper{sys: sys, sch: sch, rec: sys.Obs(), stats: &metrics.SearchStats{}, maxBatch: maxBatch}
	tAttach := st.rec.Begin()
	sch.Attach(sys)
	st.rec.End(obs.PAttach, tAttach)
	st.rec.SampleHeap()
	st.tReplay = st.rec.Begin()
	st.nextTick = 1000
	sys.Load.SetLive(0, sys.G.LiveCount())
	st.leaver, _ = sch.(GracefulLeaver)
	st.batcher, _ = sch.(ContentBatcher)
	return st
}

// Now returns the replay clock in virtual milliseconds: the last tick
// boundary crossed. Connection counters key network traffic by it.
func (st *Stepper) Now() Clock { return int64(st.curSec) * 1000 }

// advance fires tick work for every second boundary at or before t.
func (st *Stepper) advance(t Clock) {
	for st.nextTick <= t {
		st.curSec++
		st.sys.Load.SetLive(st.curSec, st.sys.G.LiveCount())
		st.sch.Tick(int64(st.curSec) * 1000)
		st.nextTick += 1000
		// One heap high-water sample per simulated second: free when no
		// gauge is attached, dense enough to catch the replay peak.
		st.rec.SampleHeap()
	}
}

// NextBatch applies state events up to the next flush point and returns
// the pending run of consecutive query events, in trace order. The
// returned slice is valid until the next NextBatch call. A nil return
// means the trace is exhausted: call Finish.
//
// Flush points mirror Run exactly: a query run ends when a state event or
// a tick boundary intervenes (ticks may mutate scheme state, so the run
// drains before the boundary is crossed), or when maxBatch is reached.
func (st *Stepper) NextBatch() []*trace.Event {
	st.batch = st.batch[:0]
	evs := st.sys.Tr.Events
	for ; st.i < len(evs); st.i++ {
		ev := &evs[st.i]
		if ev.Kind == trace.Query {
			if st.nextTick <= ev.Time {
				if len(st.batch) > 0 {
					return st.batch // drain before crossing the boundary
				}
				st.advance(ev.Time)
			}
			st.batch = append(st.batch, ev)
			if st.maxBatch > 0 && len(st.batch) >= st.maxBatch {
				st.i++
				return st.batch
			}
			continue
		}
		if len(st.batch) > 0 {
			return st.batch // drain before any state mutation
		}
		st.advance(ev.Time)
		st.applyState(evs, ev)
	}
	if len(st.batch) > 0 {
		return st.batch
	}
	return nil
}

// applyState applies one non-query event (plus, for a content-batching
// scheme, the rest of its same-node same-second run) and notifies the
// scheme. It may consume extra events by moving st.i forward.
func (st *Stepper) applyState(evs []trace.Event, ev *trace.Event) {
	if st.batcher != nil && (ev.Kind == trace.ContentAdd || ev.Kind == trace.ContentRemove) {
		if run := trace.ContentRun(evs, st.i); run > 1 {
			// Coalesce the run: apply every system mutation, then
			// notify the scheme once at the run's last event time.
			st.runDocs, st.runAdded = st.runDocs[:0], st.runAdded[:0]
			for j := st.i; j < st.i+run; j++ {
				e := &evs[j]
				st.sys.ApplyEvent(e)
				st.runDocs = append(st.runDocs, e.Doc)
				st.runAdded = append(st.runAdded, e.Kind == trace.ContentAdd)
			}
			st.batcher.ContentChangedBatch(evs[st.i+run-1].Time, ev.Node, st.runDocs, st.runAdded)
			st.i += run - 1
			return
		}
	}
	applyOne(st.sys, st.sch, st.leaver, ev)
}

// ApplyStateEvent applies one non-query trace event to the system and
// notifies the scheme — the single-event core of the stepper's state
// application, shared with the serving plane's live driver
// (internal/serve), which applies churn and content events one at a time
// between query bursts instead of batch-stepping a whole trace.
func ApplyStateEvent(sys *System, sch Scheme, ev *trace.Event) {
	leaver, _ := sch.(GracefulLeaver)
	applyOne(sys, sch, leaver, ev)
}

// applyOne is the shared single-event application: graceful-leave
// announcement while links still exist, the system mutation, then the
// scheme callback.
func applyOne(sys *System, sch Scheme, leaver GracefulLeaver, ev *trace.Event) {
	if ev.Kind == trace.Leave && leaver != nil {
		leaver.NodeLeaving(ev.Time, ev.Node)
	}
	sys.ApplyEvent(ev)
	switch ev.Kind {
	case trace.ContentAdd:
		sch.ContentChanged(ev.Time, ev.Node, ev.Doc, true)
	case trace.ContentRemove:
		sch.ContentChanged(ev.Time, ev.Node, ev.Doc, false)
	case trace.Join:
		sch.NodeJoined(ev.Time, ev.Node)
	case trace.Leave:
		sch.NodeLeft(ev.Time, ev.Node)
	}
}

// Record folds one query outcome into the metrics and observability
// accumulators — the sequential replay's exact call sequence when invoked
// in trace order.
func (st *Stepper) Record(ev *trace.Event, r metrics.SearchResult) {
	st.stats.Record(r)
	st.rec.Search(ev.Time, r.Success, r.ResponseMS, r.Bytes)
}

// Finish fills the remaining seconds so the load series covers the full
// span and returns the run's summary.
func (st *Stepper) Finish() metrics.Summary {
	st.advance(int64(st.sys.Load.Seconds()) * 1000)
	st.rec.SampleHeap()
	st.rec.End(obs.PReplay, st.tReplay)
	return metrics.Summarize(st.sch.Name(), st.sys.G.Kind().String(), st.stats, st.sys.Load, st.sch.LoadMask())
}
