package sim

import (
	"fmt"
	"math/rand/v2"
	"slices"

	"asap/internal/content"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// Clock is virtual time in milliseconds since trace start. Warm-up
// activity happens at negative times.
type Clock = int64

// sysRngStream is the PCG stream constant of the system-construction RNG
// (host placement, overlay generation, join wiring).
const sysRngStream = 0xe7037ed1a0b428db

// System is the dynamic state a scheme searches over: the overlay graph,
// per-node shared contents with a keyword index, node interests, and the
// load account. State mutations (ApplyEvent) are serialised by the runner;
// reads and Account are safe from concurrent Search calls.
type System struct {
	G    *overlay.Graph
	U    *content.Universe
	Tr   *trace.Trace
	Load *metrics.LoadAccount

	initialLive int

	interests []content.ClassSet
	docs      [][]content.DocID
	docPos    []map[content.DocID]int32
	kwIdx     []nodeIndex

	// faults is the optional fault-injection plane; nil means a perfectly
	// reliable network (the paper's model).
	faults *faults.Plane

	// obs is the optional observability recorder; nil (the default) keeps
	// the hot path free of recording work (every method is nil-safe).
	obs *obs.Recorder

	// director handles trace.Directive events (scenario acts); nil
	// rejects them. freeRiders, when non-nil, marks nodes that query but
	// never publish or forward ads. Both are mutated only between replay
	// batches on the runner goroutine.
	director   Director
	freeRiders []bool

	rng *rand.Rand // runner-side mutations (join wiring) only
}

// Director applies one staged scenario act. The runner invokes it on the
// runner goroutine while applying state events, so implementations may
// mutate the system, the fault plane, and the overlay without locking.
type Director interface {
	Apply(t Clock, op int)
}

// nodeIndex is one node's keyword → postings index. The base postings are
// packed into System-wide arenas at construction (kws sorted ascending;
// keyword k's segment is post[off[k]:off[k+1]], live up to cnt[k]), which
// costs a handful of allocations per System instead of one map plus one
// slice per (node, keyword). Removals shrink cnt in place; additions
// refill freed base slots and otherwise overflow into extra, which stays
// nil for the many nodes whose contents never grow mid-run.
type nodeIndex struct {
	kws   []content.Keyword
	off   []int32
	cnt   []int32
	post  []content.DocID
	extra map[content.Keyword][]content.DocID
}

// base returns the live base postings of kw (nil when kw is not indexed).
func (ix *nodeIndex) base(kw content.Keyword) []content.DocID {
	if k, ok := slices.BinarySearch(ix.kws, kw); ok {
		return ix.post[ix.off[k] : ix.off[k]+ix.cnt[k]]
	}
	return nil
}

// add records that doc d contains kw.
func (ix *nodeIndex) add(kw content.Keyword, d content.DocID) {
	if k, ok := slices.BinarySearch(ix.kws, kw); ok {
		if ix.cnt[k] < ix.off[k+1]-ix.off[k] {
			ix.post[ix.off[k]+ix.cnt[k]] = d
			ix.cnt[k]++
			return
		}
	}
	if ix.extra == nil {
		ix.extra = make(map[content.Keyword][]content.DocID, 4)
	}
	ix.extra[kw] = append(ix.extra[kw], d)
}

// remove erases doc d from kw's postings.
func (ix *nodeIndex) remove(kw content.Keyword, d content.DocID) {
	if k, ok := slices.BinarySearch(ix.kws, kw); ok {
		seg := ix.post[ix.off[k] : ix.off[k]+ix.cnt[k]]
		for i, x := range seg {
			if x == d {
				seg[i] = seg[len(seg)-1]
				ix.cnt[k]--
				return
			}
		}
	}
	if post, ok := ix.extra[kw]; ok {
		for i, x := range post {
			if x == d {
				post[i] = post[len(post)-1]
				ix.extra[kw] = post[:len(post)-1]
				return
			}
		}
	}
}

// NewSystem builds the replay state for one (universe, trace, topology)
// combination: it places every trace participant on a random physical
// host, generates the overlay with the initial participants live, and
// loads each node's starting contents from its universe peer.
func NewSystem(u *content.Universe, tr *trace.Trace, kind overlay.Kind, net *netmodel.Network, seed uint64) *System {
	s := NewSystemForPeers(u, tr.Peers, tr.InitialLive, int(tr.Span()/1000)+2, kind, net, seed)
	s.Tr = tr
	return s
}

// NewSystemWithGraph builds replay state over a caller-constructed
// overlay — the entry point for topologies outside the paper's three
// (e.g. the super-peer hierarchy of footnote 3). The graph must cover one
// node per trace peer with the initial participants already live.
func NewSystemWithGraph(u *content.Universe, tr *trace.Trace, g *overlay.Graph) *System {
	if g.N() != len(tr.Peers) {
		panic(fmt.Sprintf("sim: graph has %d nodes, trace has %d peers", g.N(), len(tr.Peers)))
	}
	s := newSystemState(u, tr.Peers, tr.InitialLive, int(tr.Span()/1000)+2, g,
		rand.New(rand.NewPCG(uint64(g.N()), sysRngStream)))
	s.Tr = tr
	return s
}

// TopoProto is a reusable topology prototype: one generated overlay plus
// the replay RNG state captured right after generation. Overlay
// generation dominates per-run setup cost, so experiment drivers generate
// each topology once and stamp out per-run copies with NewSystem. Because
// the captured RNG resumes exactly where NewSystem's own would, the
// copies replay bit-for-bit like a System built from scratch with the
// same seed (join wiring draws the same numbers).
type TopoProto struct {
	g        *overlay.Graph
	rngState []byte
}

// NewTopoProto generates the overlay for one (topology, network, peer
// population, seed) combination, mirroring NewSystem's setup sequence.
func NewTopoProto(kind overlay.Kind, net *netmodel.Network, nPeers, initialLive int, seed uint64) *TopoProto {
	src := rand.NewPCG(seed, sysRngStream)
	rng := rand.New(src)
	hosts := net.RandomNodes(nPeers, rng)
	g := overlay.New(kind, net, hosts, initialLive, rng)
	state, err := src.MarshalBinary()
	if err != nil {
		panic(fmt.Sprintf("sim: snapshotting rng: %v", err))
	}
	return &TopoProto{g: g, rngState: state}
}

// Graph exposes the prototype's master overlay (read-only; runs always
// operate on clones).
func (p *TopoProto) Graph() *overlay.Graph { return p.g }

// NewSystem stamps out one independent replay state over a clone of the
// prototype's overlay. The trace must cover exactly the peer count the
// prototype was generated for. Safe to call concurrently: each call
// clones the master graph and restores a private RNG.
func (p *TopoProto) NewSystem(u *content.Universe, tr *trace.Trace) *System {
	if p.g.N() != len(tr.Peers) {
		panic(fmt.Sprintf("sim: prototype has %d nodes, trace has %d peers", p.g.N(), len(tr.Peers)))
	}
	src := &rand.PCG{}
	if err := src.UnmarshalBinary(p.rngState); err != nil {
		panic(fmt.Sprintf("sim: restoring rng: %v", err))
	}
	s := newSystemState(u, tr.Peers, tr.InitialLive, int(tr.Span()/1000)+2, p.g.Clone(), rand.New(src))
	s.Tr = tr
	return s
}

// NewSystemForPeers builds system state for an explicit node⇄peer mapping
// without a trace — the entry point for interactively driven systems (the
// public Cluster API). horizonSec sizes the load account.
func NewSystemForPeers(u *content.Universe, peers []content.PeerID, initialLive, horizonSec int, kind overlay.Kind, net *netmodel.Network, seed uint64) *System {
	n := len(peers)
	rng := rand.New(rand.NewPCG(seed, sysRngStream))
	hosts := net.RandomNodes(n, rng)
	g := overlay.New(kind, net, hosts, initialLive, rng)
	return newSystemState(u, peers, initialLive, horizonSec, g, rng)
}

// newSystemState loads per-node content state over a ready overlay.
func newSystemState(u *content.Universe, peers []content.PeerID, initialLive, horizonSec int, g *overlay.Graph, rng *rand.Rand) *System {
	n := len(peers)
	s := &System{
		G:           g,
		U:           u,
		Load:        metrics.NewLoadAccount(horizonSec),
		initialLive: initialLive,
		interests:   make([]content.ClassSet, n),
		docs:        make([][]content.DocID, n),
		docPos:      make([]map[content.DocID]int32, n),
		kwIdx:       make([]nodeIndex, n),
		rng:         rng,
	}
	// Pass 1: load contents and size the packed index arenas.
	totalPost := 0
	for i := 0; i < n; i++ {
		peer := u.Peer(peers[i])
		s.interests[i] = peer.Interests
		s.docPos[i] = make(map[content.DocID]int32, len(peer.Docs))
		docs := make([]content.DocID, 0, len(peer.Docs))
		for _, d := range peer.Docs {
			if _, dup := s.docPos[i][d]; dup {
				continue
			}
			s.docPos[i][d] = int32(len(docs))
			docs = append(docs, d)
			totalPost += len(u.Keywords(d))
		}
		s.docs[i] = docs
	}
	// Pass 2: build every node's index over shared arenas. Distinct-keyword
	// counts come from sorting the node's keyword occurrences in a reused
	// scratch buffer; cnt doubles as the fill cursor and ends at each
	// segment's full length.
	postArena := make([]content.DocID, totalPost)
	kwArena := make([]content.Keyword, totalPost)
	cntArena := make([]int32, totalPost)
	offArena := make([]int32, totalPost+n)
	var scratch []content.Keyword
	postBase, kwBase, offBase := 0, 0, 0
	for i := 0; i < n; i++ {
		scratch = scratch[:0]
		for _, d := range s.docs[i] {
			scratch = append(scratch, u.Keywords(d)...)
		}
		slices.Sort(scratch)
		nk := 0
		off := offArena[offBase:]
		off[0] = 0
		for j := 0; j < len(scratch); {
			kw := scratch[j]
			run := j
			for j < len(scratch) && scratch[j] == kw {
				j++
			}
			kwArena[kwBase+nk] = kw
			off[nk+1] = off[nk] + int32(j-run)
			nk++
		}
		ix := &s.kwIdx[i]
		ix.kws = kwArena[kwBase : kwBase+nk : kwBase+nk]
		ix.off = off[: nk+1 : nk+1]
		ix.cnt = cntArena[kwBase : kwBase+nk : kwBase+nk]
		ix.post = postArena[postBase : postBase+len(scratch) : postBase+len(scratch)]
		for _, d := range s.docs[i] {
			for _, kw := range u.Keywords(d) {
				k, _ := slices.BinarySearch(ix.kws, kw)
				ix.post[ix.off[k]+ix.cnt[k]] = d
				ix.cnt[k]++
			}
		}
		kwBase += nk
		offBase += nk + 1
		postBase += len(scratch)
	}
	return s
}

// NumNodes returns the total node count (live + reserves).
func (s *System) NumNodes() int { return s.G.N() }

// InitialLive returns the number of nodes live at time zero.
func (s *System) InitialLive() int { return s.initialLive }

// Interests returns node n's interest set I(n).
func (s *System) Interests(n overlay.NodeID) content.ClassSet { return s.interests[n] }

// Docs returns node n's current shared documents as a shared view.
func (s *System) Docs(n overlay.NodeID) []content.DocID { return s.docs[n] }

// HasDoc reports whether node n currently shares document d.
func (s *System) HasDoc(n overlay.NodeID, d content.DocID) bool {
	_, ok := s.docPos[n][d]
	return ok
}

// Latency returns the physical latency between two overlay nodes in ms.
func (s *System) Latency(a, b overlay.NodeID) int { return s.G.Latency(a, b) }

// Account books message bytes into the load account.
func (s *System) Account(t Clock, c metrics.MsgClass, bytes int) { s.Load.Add(t, c, bytes) }

// FaultFree reports that no fault plane is installed: every sent copy
// arrives and no per-copy drop decision exists. Delivery cascades use this
// to take a batched fast path — per-edge Arrives calls (and the drop-seq
// stream they would consume) are only needed when drops are possible.
func (s *System) FaultFree() bool { return s.faults == nil }

// SetFaults installs a fault-injection plane. Call before Attach/replay;
// nil (the default) models the paper's perfectly reliable network.
func (s *System) SetFaults(p *faults.Plane) { s.faults = p }

// Faults returns the installed fault plane (nil-safe to use directly).
func (s *System) Faults() *faults.Plane { return s.faults }

// SetObs installs an observability recorder. Call before Attach/replay;
// nil (the default) records nothing and costs the hot path one nil check.
func (s *System) SetObs(r *obs.Recorder) { s.obs = r }

// Obs returns the installed recorder (nil-safe to use directly).
func (s *System) Obs() *obs.Recorder { return s.obs }

// SetDirector installs the handler for trace.Directive events.
func (s *System) SetDirector(d Director) { s.director = d }

// SetInterests replaces node n's interest set. Schemes read interests
// live (no caching), so the change takes effect for every subsequent
// delivery, caching decision, and ads request.
func (s *System) SetInterests(n overlay.NodeID, set content.ClassSet) { s.interests[n] = set }

// SetFreeRiders installs (or, with nil, clears) the free-rider mask:
// marked nodes keep searching and caching but stop publishing and
// forwarding ads until the mask is lifted.
func (s *System) SetFreeRiders(mask []bool) { s.freeRiders = mask }

// FreeRider reports whether node n is currently free-riding.
func (s *System) FreeRider(n overlay.NodeID) bool {
	return s.freeRiders != nil && s.freeRiders[n]
}

// Arrives decides whether the message identified by (key, seq) on the
// src→dst link, sent at virtual time t, survives the network. Senders
// account bytes regardless — a dropped message was still sent and still
// cost bandwidth — so call Arrives after accounting. Every call counts
// one sent copy toward the per-class message series, and lost messages
// are tallied on the load account. Always true without a fault plane.
func (s *System) Arrives(t Clock, c metrics.MsgClass, src, dst overlay.NodeID, key uint64, seq uint32) bool {
	s.obs.CountMsg(t, c)
	if s.faults == nil {
		return true
	}
	// Partition verdicts are pure group-membership lookups — they consume
	// no hash stream, so the Drop decision below sees exactly the inputs
	// it would see with no partition engaged (see faults.Plane.group).
	if s.faults.Partitioned(src, dst) {
		s.Load.CountDrop()
		s.obs.Count(t, obs.CDrop)
		s.obs.Count(t, obs.CPartDrop)
		return false
	}
	if s.faults.Drop(c, src, dst, key, seq) {
		s.Load.CountDrop()
		s.obs.Count(t, obs.CDrop)
		return false
	}
	return true
}

// Deliver is the per-message choke point: it accounts the send and
// reports whether the message arrives. Cascades that batch their
// accounting through a SecAccumulator call Arrives directly instead.
func (s *System) Deliver(t Clock, c metrics.MsgClass, bytes int, src, dst overlay.NodeID, key uint64, seq uint32) bool {
	s.Load.Add(t, c, bytes)
	return s.Arrives(t, c, src, dst, key, seq)
}

// CountRetry records one retransmission provoked by a timeout at virtual
// time t, on both the load account and the observability series.
func (s *System) CountRetry(t Clock) {
	s.Load.CountRetry()
	s.obs.Count(t, obs.CRetry)
}

// CountTimeout records one contact abandoned after its last attempt at
// virtual time t.
func (s *System) CountTimeout(t Clock) {
	s.Load.CountTimeout()
	s.obs.Count(t, obs.CTimeout)
}

// JitterMS returns the message's extra one-way latency under the fault
// plane (0 without one).
func (s *System) JitterMS(c metrics.MsgClass, src, dst overlay.NodeID, key uint64, seq uint32) Clock {
	if s.faults == nil {
		return 0
	}
	return s.faults.Jitter(c, src, dst, key, seq)
}

// NodeMatches reports whether node n shares at least one document
// containing every query term — the ground truth used by baseline replies
// and by ASAP content confirmations. It consults the node's keyword index,
// scanning only the postings of the rarest term.
func (s *System) NodeMatches(n overlay.NodeID, terms []content.Keyword) bool {
	if len(terms) == 0 {
		return false
	}
	ix := &s.kwIdx[n]
	var sBase, sExtra []content.DocID
	shortest := -1
	for _, t := range terms {
		base := ix.base(t)
		var extra []content.DocID
		if ix.extra != nil {
			extra = ix.extra[t]
		}
		plen := len(base) + len(extra)
		if plen == 0 {
			return false
		}
		if shortest < 0 || plen < shortest {
			shortest, sBase, sExtra = plen, base, extra
		}
	}
	if len(terms) == 1 {
		return true
	}
	for _, d := range sBase {
		if s.U.DocMatches(d, terms) {
			return true
		}
	}
	for _, d := range sExtra {
		if s.U.DocMatches(d, terms) {
			return true
		}
	}
	return false
}

// addDoc inserts d into node n's contents and keyword index.
func (s *System) addDoc(n overlay.NodeID, d content.DocID) {
	if _, dup := s.docPos[n][d]; dup {
		return
	}
	s.docPos[n][d] = int32(len(s.docs[n]))
	s.docs[n] = append(s.docs[n], d)
	for _, kw := range s.U.Keywords(d) {
		s.kwIdx[n].add(kw, d)
	}
}

// removeDoc removes d from node n's contents and keyword index.
func (s *System) removeDoc(n overlay.NodeID, d content.DocID) {
	pos, ok := s.docPos[n][d]
	if !ok {
		return
	}
	docs := s.docs[n]
	last := len(docs) - 1
	docs[pos] = docs[last]
	s.docPos[n][docs[pos]] = pos
	s.docs[n] = docs[:last]
	delete(s.docPos[n], d)
	for _, kw := range s.U.Keywords(d) {
		s.kwIdx[n].remove(kw, d)
	}
}

// ApplyEvent applies a state-mutating trace event; Query events are
// rejected (the runner dispatches them to the scheme instead).
func (s *System) ApplyEvent(ev *trace.Event) {
	switch ev.Kind {
	case trace.ContentAdd:
		s.addDoc(ev.Node, ev.Doc)
	case trace.ContentRemove:
		s.removeDoc(ev.Node, ev.Doc)
	case trace.Join:
		s.G.Join(ev.Node, s.rng)
	case trace.Leave:
		s.G.Leave(ev.Node)
	case trace.Directive:
		if s.director == nil {
			panic(fmt.Sprintf("sim: Directive event %d with no director installed", ev.Doc))
		}
		s.director.Apply(ev.Time, int(ev.Doc))
	default:
		panic(fmt.Sprintf("sim: ApplyEvent on %v event", ev.Kind))
	}
}
