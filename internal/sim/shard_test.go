package sim

import (
	"reflect"
	"slices"
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// shardProbeScheme is a synthetic stateful scheme built to make any illegal
// reordering by the sharded dispatcher visible: each query non-commutatively
// mutates its requester's per-node state (state' = 31·state + t, so even two
// swapped same-node queries diverge) and folds its live neighbours' states
// into the returned bytes, so a cross-lane read racing a write changes an
// aggregate — and trips the race detector. SearchOwner/AppendSearchReads
// declare exactly that shape to the planner.
type shardProbeScheme struct {
	sys   *System
	state []int64
	phase bool // inside BeginQueryPhase..EndQueryPhase
}

func (p *shardProbeScheme) Name() string { return "shard-probe" }
func (p *shardProbeScheme) Attach(sys *System) {
	p.sys = sys
	p.state = make([]int64, sys.NumNodes())
}

func (p *shardProbeScheme) Search(ev *trace.Event) metrics.SearchResult {
	sum := p.state[ev.Node]
	for _, nb := range p.sys.G.Neighbors(ev.Node) {
		sum += p.state[nb]
	}
	p.state[ev.Node] = p.state[ev.Node]*31 + ev.Time
	p.sys.Account(ev.Time, metrics.MQuery, 10)
	return metrics.SearchResult{
		Success:    sum%3 != 1,
		ResponseMS: ev.Time % 97,
		Bytes:      sum&0xffff + int64(ev.Node),
		Hops:       1,
	}
}

func (p *shardProbeScheme) SearchOwner(n overlay.NodeID) overlay.NodeID { return n }
func (p *shardProbeScheme) AppendSearchReads(owner overlay.NodeID, buf []overlay.NodeID) []overlay.NodeID {
	buf = append(buf, owner)
	return append(buf, p.sys.G.Neighbors(owner)...)
}
func (p *shardProbeScheme) BeginQueryPhase() { p.phase = true }
func (p *shardProbeScheme) EndQueryPhase()   { p.phase = false }

func (p *shardProbeScheme) ContentChanged(Clock, overlay.NodeID, content.DocID, bool) {}
func (p *shardProbeScheme) NodeJoined(Clock, overlay.NodeID)                          {}
func (p *shardProbeScheme) NodeLeft(Clock, overlay.NodeID)                            {}
func (p *shardProbeScheme) Tick(Clock)                                                {}
func (p *shardProbeScheme) LoadMask() metrics.ClassMask                               { return metrics.AllMask }

// TestShardedDispatcherMatchesSequential: for a stateful, order-sensitive
// scheme the sharded engine must reproduce the Workers=1 sequential replay
// exactly — summary, load series, and the final per-node state vector — at
// every shard count, including 1 and a count that does not divide the node
// space. Run under -race this also proves the conflict plan is sound: any
// undeclared overlap would race on the probe's plain int64 state.
func TestShardedDispatcherMatchesSequential(t *testing.T) {
	tr := testTrace(t)
	run := func(shards int) (metrics.Summary, []int64) {
		sys := NewSystem(testU, tr, overlay.Crawled, testNet, 9)
		sch := &shardProbeScheme{}
		sum := Run(sys, sch, RunOptions{Workers: 1, Shards: shards})
		if sch.phase {
			t.Fatalf("shards=%d: query phase left open", shards)
		}
		return sum, sch.state
	}
	wantSum, wantState := run(0)
	for _, s := range []int{1, 2, 4, 7, -1} {
		sum, state := run(s)
		if !reflect.DeepEqual(wantSum, sum) {
			t.Errorf("shards=%d: summary diverged from sequential replay:\n%+v\n%+v", s, wantSum, sum)
		}
		if !slices.Equal(wantState, state) {
			t.Errorf("shards=%d: final scheme state diverged from sequential replay", s)
		}
	}
}

// pureProbeScheme is echoScheme plus the PureSearcher marker: stateless
// search, shardable by pure fan-out with no conflict analysis.
type pureProbeScheme struct{ echoScheme }

func (*pureProbeScheme) PureSearch() {}

// TestShardedPureSchemeMatchesSequential: a PureSearcher shards without
// declaring owners or read sets, and its outputs must still be identical to
// the sequential replay.
func TestShardedPureSchemeMatchesSequential(t *testing.T) {
	tr := testTrace(t)
	run := func(shards int) metrics.Summary {
		sys := NewSystem(testU, tr, overlay.Crawled, testNet, 9)
		return Run(sys, &pureProbeScheme{}, RunOptions{Workers: 1, Shards: shards})
	}
	want := run(0)
	for _, s := range []int{1, 3, 8} {
		sameSummary(t, "pure sharded", want, run(s))
	}
}

// TestShardedFallbackWithoutInterfaces: a scheme that declares neither
// SearchSharder nor PureSearcher must fall back to the unsharded path
// rather than being fanned out on unproven assumptions.
func TestShardedFallbackWithoutInterfaces(t *testing.T) {
	if d := newShardDispatcher(&echoScheme{}, 100, 4); d != nil {
		t.Fatal("dispatcher built for a scheme with no declared search shape")
	}
	if d := newShardDispatcher(&shardProbeScheme{}, 100, 4); d == nil {
		t.Fatal("no dispatcher for a SearchSharder scheme")
	}
	if d := newShardDispatcher(&pureProbeScheme{}, 100, 4); d == nil {
		t.Fatal("no dispatcher for a PureSearcher scheme")
	}
}
