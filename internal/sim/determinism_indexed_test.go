package sim_test

// External-package determinism coverage for the real ASAP scheme (the
// indexed ads cache), complementing determinism_test.go's echo-scheme
// checks: single-worker replays must be bit-for-bit identical, and the
// parallel query fan-out must drive the indexed search hot path cleanly
// under the race detector (the `make race` target runs this package with
// -race and multiple workers).

import (
	"slices"
	"testing"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

var (
	idxNet = netmodel.Generate(netmodel.SmallConfig())
	idxU   = func() *content.Universe {
		c := content.DefaultConfig()
		c.NumPeers = 500
		c.NumDocs = 12000
		return content.Generate(c)
	}()
	idxTr = func() *trace.Trace {
		cfg := trace.DefaultConfig()
		cfg.NumNodes = 200
		cfg.NumQueries = 600
		cfg.NumJoins = 20
		cfg.NumLeaves = 20
		tr, err := trace.Build(idxU, cfg)
		if err != nil {
			panic(err)
		}
		return tr
	}()
)

// runASAP replays the shared trace against a freshly attached ASAP(FLD)
// scheme with the given query fan-out.
func runASAP(workers int) metrics.Summary {
	cfg := core.DefaultConfig(core.FLD).Scaled(0.05)
	cfg.RefreshPeriodSec = 30
	sys := sim.NewSystem(idxU, idxTr, overlay.Random, idxNet, 7)
	return sim.Run(sys, core.New(cfg), sim.RunOptions{Workers: workers})
}

// TestIndexedReplayDeterministicSingleWorker: two single-worker replays of
// the ASAP scheme over identically seeded systems agree on every
// aggregate — the property the experiment matrix rests on, now exercised
// through the topic-indexed cache, the aggregate early-exit and the
// watermark-gated expiry.
func TestIndexedReplayDeterministicSingleWorker(t *testing.T) {
	a, b := runASAP(1), runASAP(1)
	if a.Requests == 0 || a.SuccessRate == 0 {
		t.Fatalf("degenerate replay: %+v", a)
	}
	if a.Requests != b.Requests || a.SuccessRate != b.SuccessRate ||
		a.MeanRespMS != b.MeanRespMS || a.MeanSearchBytes != b.MeanSearchBytes ||
		a.LoadMeanKBps != b.LoadMeanKBps || a.LoadStdKBps != b.LoadStdKBps {
		t.Fatalf("single-worker replays differ:\n%+v\n%+v", a, b)
	}
	if !slices.Equal(a.LoadSeries, b.LoadSeries) {
		t.Fatal("load series diverge")
	}
}

// TestIndexedSearchParallelWorkers drives concurrent Search calls over
// shared per-node caches (chain scans, lazy unlinking, merge serving, all
// under nodeState.mu). Query scheduling may reorder cache mutations, so
// only scheduling-independent aggregates are asserted; the substantive
// check is the race detector observing the parallel fan-out.
func TestIndexedSearchParallelWorkers(t *testing.T) {
	a := runASAP(4)
	if a.Requests == 0 || a.SuccessRate == 0 {
		t.Fatalf("degenerate parallel replay: %+v", a)
	}
	b := runASAP(4)
	if a.Requests != b.Requests {
		t.Fatalf("request counts differ: %d vs %d", a.Requests, b.Requests)
	}
}
