// Package sim is the trace-driven simulator of §IV: it owns the dynamic
// system state (who is live, who shares what), replays a trace against a
// pluggable search Scheme, and produces the metrics of §V.
//
// # Fidelity model
//
// The paper ignores queuing delay and Bloom-filter computation when
// calculating response times (§V-A): a message's delivery time is the sum
// of physical link latencies on its path and nothing else. A consequence
// this package exploits heavily is that concurrently outstanding searches
// do not interact — each query's message cascade can be simulated
// independently, given a fixed snapshot of system state.
//
// The runner therefore replays the trace as an alternation of
//
//   - state events (content changes, joins, departures), applied
//     sequentially in trace order, and
//   - query batches — maximal runs of consecutive Query events — fanned
//     out across a worker pool. Schemes may only touch shared state from
//     Search through synchronised or atomic paths (ASAP's per-node ad
//     caches are individually locked; load accounting is atomic).
//
// With a single worker the replay is fully deterministic; with N workers
// the aggregate metrics are unchanged except for ASAP cache-insertion
// order within one batch (which only reorders equally-valid ads).
//
// # Message size model
//
// The paper reports bandwidth, not packet traces, so sizes are a fixed
// per-type model (sizes.go): an 80-byte header approximating IP+TCP+
// protocol framing, plus type-specific payloads — 4 bytes per query term,
// Bloom-filter wire bytes for full ads, changed-bit lists for patch ads,
// and a bare header for refresh ads. Full ads dwarf queries (≈1.5 KB vs
// ≈0.1 KB), exactly the relationship Fig. 7's discussion relies on.
package sim
