package sim

import "asap/internal/metrics"

// SecAccumulator batches per-message byte accounting by second, so a
// cascade of thousands of messages costs a handful of atomic adds on the
// shared LoadAccount instead of one per message. Warm-up bytes (negative
// times) collapse into a single slot. The zero value is ready to use; it
// is not safe for concurrent use (keep one per worker).
type SecAccumulator struct {
	secs  []int32
	bytes []int64
}

// Reset empties the accumulator, keeping capacity.
func (a *SecAccumulator) Reset() {
	a.secs = a.secs[:0]
	a.bytes = a.bytes[:0]
}

// Add books bytes at virtual time t.
func (a *SecAccumulator) Add(t Clock, bytes int) {
	sec := int32(t / 1000)
	if t < 0 {
		sec = -1
	}
	for i, s := range a.secs {
		if s == sec {
			a.bytes[i] += int64(bytes)
			return
		}
	}
	a.secs = append(a.secs, sec)
	a.bytes = append(a.bytes, int64(bytes))
}

// Flush transfers the batched bytes to the system's load account under the
// given message class and resets the accumulator.
func (a *SecAccumulator) Flush(sys *System, class metrics.MsgClass) {
	for i, s := range a.secs {
		t := Clock(s) * 1000
		if s < 0 {
			t = -1
		}
		sys.Account(t, class, int(a.bytes[i]))
	}
	a.Reset()
}
