package sim

import (
	"runtime"
	"sync"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// Scheme is a pluggable search algorithm under test: the three baselines
// and the three ASAP variants all implement it.
//
// Attach is called once before replay and may pre-distribute state (ASAP's
// warm-up ad delivery). Search must be safe for concurrent calls — the
// runner fans query batches across workers; all other methods are called
// with the runner's state lock held (never concurrently).
type Scheme interface {
	// Name returns the scheme label used in figures (e.g. "flooding",
	// "asap-rw").
	Name() string
	// Attach binds the scheme to a system and performs warm-up work.
	Attach(sys *System)
	// Search executes one query event and returns its outcome.
	Search(ev *trace.Event) metrics.SearchResult
	// ContentChanged notifies that node n added (or removed) document d at
	// time t; the system state is already updated.
	ContentChanged(t Clock, n overlay.NodeID, d content.DocID, added bool)
	// NodeJoined notifies that n has joined and been wired.
	NodeJoined(t Clock, n overlay.NodeID)
	// NodeLeft notifies that n has left ungracefully.
	NodeLeft(t Clock, n overlay.NodeID)
	// Tick fires once per virtual second, for periodic work (refresh ads).
	Tick(t Clock)
	// LoadMask selects which message classes count toward this scheme's
	// system load (§V-B counts query messages for baselines, everything
	// for ASAP).
	LoadMask() metrics.ClassMask
}

// GracefulLeaver is an optional Scheme extension. When a scheme
// implements it, the runner announces every Leave event before the
// overlay detaches the node — while its links are still intact — so the
// scheme can send goodbye traffic. Schemes gate the actual goodbye on the
// fault plane's graceful-leave mode; without it the hook must be a no-op
// (departures stay ungraceful, the paper's model).
type GracefulLeaver interface {
	NodeLeaving(t Clock, n overlay.NodeID)
}

// ContentBatcher is an optional Scheme extension. When a scheme implements
// it, the runner coalesces each run of consecutive same-node, same-second
// ContentAdd/ContentRemove events into one ContentChangedBatch call (system
// state for the whole run is already applied; t is the run's last event
// time) instead of per-event ContentChanged calls. Coalescing never spans a
// query, tick boundary, or any other event, so no observer can distinguish
// the intermediate states — the scheme is free to advertise the run's net
// effect once.
type ContentBatcher interface {
	ContentChangedBatch(t Clock, n overlay.NodeID, docs []content.DocID, added []bool)
}

// RunOptions tunes the replay.
type RunOptions struct {
	// Workers is the query-batch fan-out; 0 means GOMAXPROCS. Workers=1
	// gives a bit-for-bit deterministic replay.
	Workers int
	// MaxBatch caps how many consecutive queries are fanned out at once;
	// 0 means unlimited (a batch ends at the next state event).
	MaxBatch int
	// Shards selects the sharded replay engine (see shard.go): the node ID
	// space splits into Shards contiguous ranges, query batches replay as a
	// parallel intra-shard phase plus an ordered epoch-barrier drain, and
	// the output stays byte-identical to the Workers=1 sequential replay at
	// every shard count (including 1). 0 keeps the unsharded path; negative
	// means auto (GOMAXPROCS, capped at overlay.MaxShards). Shards > 0
	// overrides Workers for query batches. A scheme that implements neither
	// SearchSharder nor PureSearcher falls back to the unsharded path.
	Shards int
}

// Run replays the system's trace against the scheme and summarises the
// paper's metrics for it. The sequential stepping core lives in Stepper
// (stepper.go); Run layers the query-batch execution strategy on top —
// worker fan-out or the sharded dispatcher — and stays byte-identical to
// driving the Stepper alone at Workers=1.
func Run(sys *System, sch Scheme, opts RunOptions) metrics.Summary {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var dispatcher *shardDispatcher
	if shards := opts.Shards; shards != 0 {
		if shards < 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		dispatcher = newShardDispatcher(sch, sys.NumNodes(), shards)
	}

	st := NewStepper(sys, sch, opts.MaxBatch)
	rec := sys.Obs()
	for batch := st.NextBatch(); batch != nil; batch = st.NextBatch() {
		if dispatcher != nil {
			dispatcher.runBatch(batch, st.stats, rec)
		} else {
			runBatch(batch, sch, st.stats, workers, rec)
		}
	}
	return st.Finish()
}

// runBatch fans a query batch across workers. Search outcomes land on the
// observability recorder keyed by the query's issue time — deterministic
// replay state — so the recorded series is independent of how the batch
// was split.
func runBatch(batch []*trace.Event, sch Scheme, stats *metrics.SearchStats, workers int, rec *obs.Recorder) {
	if workers == 1 || len(batch) == 1 {
		for _, ev := range batch {
			r := sch.Search(ev)
			stats.Record(r)
			rec.Search(ev.Time, r.Success, r.ResponseMS, r.Bytes)
		}
		return
	}
	if workers > len(batch) {
		workers = len(batch)
	}
	var wg sync.WaitGroup
	chunk := (len(batch) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(batch))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(evs []*trace.Event) {
			defer wg.Done()
			for _, ev := range evs {
				r := sch.Search(ev)
				stats.Record(r)
				rec.Search(ev.Time, r.Success, r.ResponseMS, r.Bytes)
			}
		}(batch[lo:hi])
	}
	wg.Wait()
}
