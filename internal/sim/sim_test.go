package sim

import (
	"math/rand/v2"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/trace"
)

var (
	testNet = netmodel.Generate(netmodel.SmallConfig())
	testU   = func() *content.Universe {
		c := content.DefaultConfig()
		c.NumPeers = 900
		c.NumDocs = 25000
		return content.Generate(c)
	}()
)

func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumNodes = 400
	cfg.NumQueries = 1200
	cfg.NumJoins = 40
	cfg.NumLeaves = 40
	tr, err := trace.Build(testU, cfg)
	if err != nil {
		t.Fatalf("trace.Build: %v", err)
	}
	return tr
}

func newTestSystem(t *testing.T) *System {
	t.Helper()
	return NewSystem(testU, testTrace(t), overlay.Random, testNet, 1)
}

func TestNewSystemState(t *testing.T) {
	sys := newTestSystem(t)
	if sys.NumNodes() != len(sys.Tr.Peers) {
		t.Errorf("NumNodes = %d, want %d", sys.NumNodes(), len(sys.Tr.Peers))
	}
	if sys.G.LiveCount() != sys.Tr.InitialLive {
		t.Errorf("LiveCount = %d, want %d", sys.G.LiveCount(), sys.Tr.InitialLive)
	}
	// Node contents mirror the universe peers.
	for n := 0; n < 20; n++ {
		peer := testU.Peer(sys.Tr.Peers[n])
		if len(sys.Docs(overlay.NodeID(n))) != len(peer.Docs) {
			t.Fatalf("node %d docs %d, want %d", n, len(sys.Docs(overlay.NodeID(n))), len(peer.Docs))
		}
		if sys.Interests(overlay.NodeID(n)) != peer.Interests {
			t.Fatalf("node %d interests mismatch", n)
		}
	}
}

func TestNodeMatches(t *testing.T) {
	sys := newTestSystem(t)
	// Find a sharing node and query its own docs.
	for n := 0; n < sys.NumNodes(); n++ {
		docs := sys.Docs(overlay.NodeID(n))
		if len(docs) == 0 {
			continue
		}
		d := docs[0]
		kws := testU.Keywords(d)
		if !sys.NodeMatches(overlay.NodeID(n), kws) {
			t.Fatalf("node %d does not match its own doc's full keyword set", n)
		}
		if !sys.NodeMatches(overlay.NodeID(n), kws[:1]) {
			t.Fatalf("node %d does not match single term", n)
		}
		if sys.NodeMatches(overlay.NodeID(n), []content.Keyword{0xFFFFFF}) {
			t.Fatalf("node %d matches foreign term", n)
		}
		if sys.NodeMatches(overlay.NodeID(n), nil) {
			t.Fatal("empty term list matched")
		}
		// Terms from two different docs that no single doc contains: mix a
		// real keyword with a foreign one.
		mixed := []content.Keyword{kws[0], 0xFFFFFF}
		if sys.NodeMatches(overlay.NodeID(n), mixed) {
			t.Fatal("mixed foreign term matched")
		}
		return
	}
	t.Fatal("no sharing node found")
}

func TestApplyContentEvents(t *testing.T) {
	sys := newTestSystem(t)
	var node overlay.NodeID = -1
	for n := 0; n < sys.NumNodes(); n++ {
		if len(sys.Docs(overlay.NodeID(n))) > 0 {
			node = overlay.NodeID(n)
			break
		}
	}
	if node < 0 {
		t.Fatal("no sharer")
	}
	d := sys.Docs(node)[0]
	kws := testU.Keywords(d)

	sys.ApplyEvent(&trace.Event{Kind: trace.ContentRemove, Node: node, Doc: d})
	if sys.HasDoc(node, d) {
		t.Fatal("doc still present after remove")
	}
	// The keyword may still match via other docs; verify via HasDoc only.
	sys.ApplyEvent(&trace.Event{Kind: trace.ContentAdd, Node: node, Doc: d})
	if !sys.HasDoc(node, d) {
		t.Fatal("doc absent after re-add")
	}
	if !sys.NodeMatches(node, kws) {
		t.Fatal("keyword index broken after remove/add cycle")
	}
	// Duplicate add is a no-op.
	before := len(sys.Docs(node))
	sys.ApplyEvent(&trace.Event{Kind: trace.ContentAdd, Node: node, Doc: d})
	if len(sys.Docs(node)) != before {
		t.Fatal("duplicate add changed contents")
	}
	// Removing an absent doc is a no-op.
	sys.ApplyEvent(&trace.Event{Kind: trace.ContentRemove, Node: node, Doc: 0xFFFFFF0})
	if len(sys.Docs(node)) != before {
		t.Fatal("absent remove changed contents")
	}
}

func TestApplyChurnEvents(t *testing.T) {
	sys := newTestSystem(t)
	live := sys.G.LiveCount()
	joiner := overlay.NodeID(sys.Tr.InitialLive)
	sys.ApplyEvent(&trace.Event{Kind: trace.Join, Node: joiner})
	if !sys.G.Alive(joiner) || sys.G.LiveCount() != live+1 {
		t.Fatal("join not applied")
	}
	sys.ApplyEvent(&trace.Event{Kind: trace.Leave, Node: joiner})
	if sys.G.Alive(joiner) || sys.G.LiveCount() != live {
		t.Fatal("leave not applied")
	}
}

func TestApplyEventRejectsQuery(t *testing.T) {
	sys := newTestSystem(t)
	defer func() {
		if recover() == nil {
			t.Error("ApplyEvent(Query) did not panic")
		}
	}()
	sys.ApplyEvent(&trace.Event{Kind: trace.Query})
}

func TestSizesModel(t *testing.T) {
	if QueryBytes(3) <= QueryBytes(1) {
		t.Error("query size not increasing in terms")
	}
	if FullAdBytes(1443) < 1443+HeaderBytes {
		t.Error("full ad smaller than its filter")
	}
	if RefreshAdBytes() >= FullAdBytes(1443) {
		t.Error("refresh ad not smaller than full ad")
	}
	if PatchAdBytes(10) >= FullAdBytes(1443) {
		t.Error("small patch not smaller than full ad")
	}
	if AdsReplyBytes(100) != HeaderBytes+100 {
		t.Error("ads reply size wrong")
	}
	if CheckBackBytes() != HeaderBytes || AdsRequestBytes() != HeaderBytes+InterestBytes {
		t.Error("control sizes wrong")
	}
	if ConfirmBytes(2) != HeaderBytes+2*TermBytes || ConfirmReplyBytes() != HeaderBytes+HitBytes {
		t.Error("confirm sizes wrong")
	}
	if QueryHitBytes() != HeaderBytes+HitBytes {
		t.Error("hit size wrong")
	}
}

// Property: PQ pops in nondecreasing time order.
func TestPQOrderingProperty(t *testing.T) {
	prop := func(times []int64) bool {
		var q PQ
		for i, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			q.Push(PQItem{T: tm, Node: overlay.NodeID(i)})
		}
		var got []int64
		for q.Len() > 0 {
			got = append(got, q.Pop().T)
		}
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPQReset(t *testing.T) {
	var q PQ
	q.Push(PQItem{T: 5})
	q.Reset()
	if q.Len() != 0 {
		t.Error("Reset did not empty queue")
	}
}

// fakeScheme counts runner callbacks and returns canned results.
type fakeScheme struct {
	searches atomic.Int64
	events   atomic.Int64
	ticks    atomic.Int64
	attached bool
}

func (f *fakeScheme) Name() string       { return "fake" }
func (f *fakeScheme) Attach(sys *System) { f.attached = true }
func (f *fakeScheme) Search(ev *trace.Event) metrics.SearchResult {
	f.searches.Add(1)
	return metrics.SearchResult{Success: true, ResponseMS: 10, Bytes: 100, Hops: 1}
}
func (f *fakeScheme) ContentChanged(t Clock, n overlay.NodeID, d content.DocID, added bool) {
	f.events.Add(1)
}
func (f *fakeScheme) NodeJoined(t Clock, n overlay.NodeID) { f.events.Add(1) }
func (f *fakeScheme) NodeLeft(t Clock, n overlay.NodeID)   { f.events.Add(1) }
func (f *fakeScheme) Tick(t Clock)                         { f.ticks.Add(1) }
func (f *fakeScheme) LoadMask() metrics.ClassMask          { return metrics.AllMask }

func TestRunnerDispatch(t *testing.T) {
	sys := newTestSystem(t)
	sch := &fakeScheme{}
	sum := Run(sys, sch, RunOptions{Workers: 4})
	st := sys.Tr.Stats()
	if !sch.attached {
		t.Error("Attach not called")
	}
	if got := int(sch.searches.Load()); got != st.Queries {
		t.Errorf("searches = %d, want %d", got, st.Queries)
	}
	wantEvents := st.ContentAdds + st.ContentRemoves + st.Joins + st.Leaves
	if got := int(sch.events.Load()); got != wantEvents {
		t.Errorf("state callbacks = %d, want %d", got, wantEvents)
	}
	if sch.ticks.Load() == 0 {
		t.Error("no ticks fired")
	}
	if sum.Requests != st.Queries || sum.SuccessRate != 1 || sum.MeanRespMS != 10 {
		t.Errorf("summary wrong: %+v", sum)
	}
	if sum.Scheme != "fake" || sum.Topology != "random" {
		t.Errorf("labels wrong: %s/%s", sum.Scheme, sum.Topology)
	}
}

func TestRunnerLiveSeriesTracksChurn(t *testing.T) {
	sys := newTestSystem(t)
	Run(sys, &fakeScheme{}, RunOptions{Workers: 1})
	la := sys.Load
	nonzero := 0
	for s := 0; s < la.Seconds(); s++ {
		if la.Live(s) > 0 {
			nonzero++
		}
	}
	if nonzero < la.Seconds()-1 {
		t.Errorf("live counts recorded for %d of %d seconds", nonzero, la.Seconds())
	}
}

func TestRunnerWorkerCountInvariance(t *testing.T) {
	// A stateless scheme must produce identical aggregates regardless of
	// worker count.
	tr := testTrace(t)
	run := func(workers int) metrics.Summary {
		sys := NewSystem(testU, tr, overlay.Random, testNet, 1)
		return Run(sys, &fakeScheme{}, RunOptions{Workers: workers})
	}
	a, b := run(1), run(8)
	if a.Requests != b.Requests || a.SuccessRate != b.SuccessRate || a.MeanRespMS != b.MeanRespMS {
		t.Errorf("worker count changed aggregates: %+v vs %+v", a, b)
	}
}

func TestRunnerMaxBatch(t *testing.T) {
	sys := newTestSystem(t)
	sch := &fakeScheme{}
	Run(sys, sch, RunOptions{Workers: 2, MaxBatch: 7})
	if int(sch.searches.Load()) != sys.Tr.Stats().Queries {
		t.Error("MaxBatch dropped searches")
	}
}

func TestSystemRandomDifferentSeeds(t *testing.T) {
	tr := testTrace(t)
	a := NewSystem(testU, tr, overlay.Random, testNet, 1)
	b := NewSystem(testU, tr, overlay.Random, testNet, 2)
	same := true
	for n := 0; n < 50; n++ {
		if a.G.Host(overlay.NodeID(n)) != b.G.Host(overlay.NodeID(n)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical host placements")
	}
}

func BenchmarkNodeMatches(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.NumNodes = 400
	cfg.NumQueries = 100
	tr, err := trace.Build(testU, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sys := NewSystem(testU, tr, overlay.Random, testNet, 1)
	var terms [][]content.Keyword
	for i := range tr.Events {
		if tr.Events[i].Kind == trace.Query {
			terms = append(terms, tr.Events[i].Terms)
		}
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := overlay.NodeID(rng.IntN(sys.NumNodes()))
		_ = sys.NodeMatches(n, terms[i%len(terms)])
	}
}
