package sim

import (
	"slices"
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// echoScheme returns results derived deterministically from the query so
// replays can be compared field by field.
type echoScheme struct{ sys *System }

func (e *echoScheme) Name() string       { return "echo" }
func (e *echoScheme) Attach(sys *System) { e.sys = sys }
func (e *echoScheme) Search(ev *trace.Event) metrics.SearchResult {
	e.sys.Account(ev.Time, metrics.MQuery, 10)
	return metrics.SearchResult{
		Success:    true,
		ResponseMS: int64(len(ev.Terms)) + ev.Time%7,
		Bytes:      int64(ev.Node),
		Hops:       1,
	}
}
func (e *echoScheme) ContentChanged(Clock, overlay.NodeID, content.DocID, bool) {}
func (e *echoScheme) NodeJoined(Clock, overlay.NodeID)                          {}
func (e *echoScheme) NodeLeft(Clock, overlay.NodeID)                            {}
func (e *echoScheme) Tick(Clock)                                                {}
func (e *echoScheme) LoadMask() metrics.ClassMask                               { return metrics.AllMask }

// TestReplayDeterministicSingleWorker: two single-worker replays over
// freshly built systems with the same seed are identical in every
// aggregate, including the load series.
func TestReplayDeterministicSingleWorker(t *testing.T) {
	tr := testTrace(t)
	runOnce := func() metrics.Summary {
		sys := NewSystem(testU, tr, overlay.Crawled, testNet, 9)
		return Run(sys, &echoScheme{}, RunOptions{Workers: 1})
	}
	a, b := runOnce(), runOnce()
	if a.Requests != b.Requests || a.SuccessRate != b.SuccessRate ||
		a.MeanRespMS != b.MeanRespMS || a.MeanSearchBytes != b.MeanSearchBytes ||
		a.LoadMeanKBps != b.LoadMeanKBps || a.LoadStdKBps != b.LoadStdKBps {
		t.Fatalf("replays differ:\n%+v\n%+v", a, b)
	}
	if len(a.LoadSeries) != len(b.LoadSeries) {
		t.Fatal("load series lengths differ")
	}
	for i := range a.LoadSeries {
		if a.LoadSeries[i] != b.LoadSeries[i] {
			t.Fatalf("load series diverges at second %d", i)
		}
	}
}

// TestParallelAggregatesMatchSerial: for a scheme whose per-query results
// are scheduling-independent, worker count must not change any aggregate.
func TestParallelAggregatesMatchSerial(t *testing.T) {
	tr := testTrace(t)
	run := func(workers int) metrics.Summary {
		sys := NewSystem(testU, tr, overlay.Crawled, testNet, 9)
		return Run(sys, &echoScheme{}, RunOptions{Workers: workers})
	}
	serial, parallel := run(1), run(8)
	if serial.MeanRespMS != parallel.MeanRespMS || serial.MeanSearchBytes != parallel.MeanSearchBytes {
		t.Fatalf("parallel changed aggregates: %+v vs %+v", serial, parallel)
	}
	if serial.LoadMeanKBps != parallel.LoadMeanKBps {
		t.Fatalf("parallel changed load accounting: %v vs %v", serial.LoadMeanKBps, parallel.LoadMeanKBps)
	}
}

// sameSummary compares every scalar aggregate plus the load series.
func sameSummary(t *testing.T, label string, a, b metrics.Summary) {
	t.Helper()
	if a.Requests != b.Requests || a.SuccessRate != b.SuccessRate ||
		a.MeanRespMS != b.MeanRespMS || a.MeanSearchBytes != b.MeanSearchBytes ||
		a.LoadMeanKBps != b.LoadMeanKBps || a.LoadStdKBps != b.LoadStdKBps {
		t.Fatalf("%s: summaries differ:\n%+v\n%+v", label, a, b)
	}
	if !slices.Equal(a.LoadSeries, b.LoadSeries) {
		t.Fatalf("%s: load series diverge", label)
	}
}

// TestTopoProtoReplayMatchesFresh: a System stamped from a TopoProto
// (cloned overlay + restored construction RNG) replays bit-for-bit like
// one built from scratch with the same seed — the equivalence RunMatrix's
// per-Lab graph reuse rests on.
func TestTopoProtoReplayMatchesFresh(t *testing.T) {
	tr := testTrace(t)
	for _, kind := range overlay.Kinds {
		proto := NewTopoProto(kind, testNet, len(tr.Peers), tr.InitialLive, 9)
		fresh := NewSystem(testU, tr, kind, testNet, 9)
		stamped := proto.NewSystem(testU, tr)
		for n := 0; n < fresh.NumNodes(); n++ {
			id := overlay.NodeID(n)
			if fresh.G.Host(id) != stamped.G.Host(id) {
				t.Fatalf("%v: host placement differs at node %d", kind, n)
			}
			if !slices.Equal(fresh.G.Neighbors(id), stamped.G.Neighbors(id)) {
				t.Fatalf("%v: initial wiring differs at node %d", kind, n)
			}
		}
		a := Run(fresh, &echoScheme{}, RunOptions{Workers: 1})
		b := Run(stamped, &echoScheme{}, RunOptions{Workers: 1})
		sameSummary(t, kind.String(), a, b)
		// Mid-run joins draw from the restored RNG; the overlays must have
		// evolved identically.
		for n := 0; n < fresh.NumNodes(); n++ {
			id := overlay.NodeID(n)
			if fresh.G.Alive(id) != stamped.G.Alive(id) ||
				!slices.Equal(fresh.G.Neighbors(id), stamped.G.Neighbors(id)) {
				t.Fatalf("%v: post-replay overlay diverged at node %d", kind, n)
			}
		}
	}
}

// TestTopoProtoStampsAreIndependent: consecutive stamps from one prototype
// replay identically and never contaminate each other or the master graph.
func TestTopoProtoStampsAreIndependent(t *testing.T) {
	tr := testTrace(t)
	proto := NewTopoProto(overlay.Crawled, testNet, len(tr.Peers), tr.InitialLive, 9)
	liveBefore := proto.Graph().LiveCount()
	a := Run(proto.NewSystem(testU, tr), &echoScheme{}, RunOptions{Workers: 1})
	b := Run(proto.NewSystem(testU, tr), &echoScheme{}, RunOptions{Workers: 1})
	sameSummary(t, "stamp", a, b)
	if proto.Graph().LiveCount() != liveBefore {
		t.Fatal("replays mutated the prototype's master graph")
	}
}
