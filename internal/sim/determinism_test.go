package sim

import (
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// echoScheme returns results derived deterministically from the query so
// replays can be compared field by field.
type echoScheme struct{ sys *System }

func (e *echoScheme) Name() string       { return "echo" }
func (e *echoScheme) Attach(sys *System) { e.sys = sys }
func (e *echoScheme) Search(ev *trace.Event) metrics.SearchResult {
	e.sys.Account(ev.Time, metrics.MQuery, 10)
	return metrics.SearchResult{
		Success:    true,
		ResponseMS: int64(len(ev.Terms)) + ev.Time%7,
		Bytes:      int64(ev.Node),
		Hops:       1,
	}
}
func (e *echoScheme) ContentChanged(Clock, overlay.NodeID, content.DocID, bool) {}
func (e *echoScheme) NodeJoined(Clock, overlay.NodeID)                          {}
func (e *echoScheme) NodeLeft(Clock, overlay.NodeID)                            {}
func (e *echoScheme) Tick(Clock)                                                {}
func (e *echoScheme) LoadMask() metrics.ClassMask                               { return metrics.AllMask }

// TestReplayDeterministicSingleWorker: two single-worker replays over
// freshly built systems with the same seed are identical in every
// aggregate, including the load series.
func TestReplayDeterministicSingleWorker(t *testing.T) {
	tr := testTrace(t)
	runOnce := func() metrics.Summary {
		sys := NewSystem(testU, tr, overlay.Crawled, testNet, 9)
		return Run(sys, &echoScheme{}, RunOptions{Workers: 1})
	}
	a, b := runOnce(), runOnce()
	if a.Requests != b.Requests || a.SuccessRate != b.SuccessRate ||
		a.MeanRespMS != b.MeanRespMS || a.MeanSearchBytes != b.MeanSearchBytes ||
		a.LoadMeanKBps != b.LoadMeanKBps || a.LoadStdKBps != b.LoadStdKBps {
		t.Fatalf("replays differ:\n%+v\n%+v", a, b)
	}
	if len(a.LoadSeries) != len(b.LoadSeries) {
		t.Fatal("load series lengths differ")
	}
	for i := range a.LoadSeries {
		if a.LoadSeries[i] != b.LoadSeries[i] {
			t.Fatalf("load series diverges at second %d", i)
		}
	}
}

// TestParallelAggregatesMatchSerial: for a scheme whose per-query results
// are scheduling-independent, worker count must not change any aggregate.
func TestParallelAggregatesMatchSerial(t *testing.T) {
	tr := testTrace(t)
	run := func(workers int) metrics.Summary {
		sys := NewSystem(testU, tr, overlay.Crawled, testNet, 9)
		return Run(sys, &echoScheme{}, RunOptions{Workers: workers})
	}
	serial, parallel := run(1), run(8)
	if serial.MeanRespMS != parallel.MeanRespMS || serial.MeanSearchBytes != parallel.MeanSearchBytes {
		t.Fatalf("parallel changed aggregates: %+v vs %+v", serial, parallel)
	}
	if serial.LoadMeanKBps != parallel.LoadMeanKBps {
		t.Fatalf("parallel changed load accounting: %v vs %v", serial.LoadMeanKBps, parallel.LoadMeanKBps)
	}
}
