package sim

// Message size model in bytes. The absolute values matter less than the
// ratios: a query is ~0.1 KB while a full ad carrying a Bloom filter is
// ~1.5 KB, matching the paper's remark that "the size of a full ad is
// larger than a query message".
const (
	// HeaderBytes approximates IP + transport + protocol framing of every
	// overlay message.
	HeaderBytes = 80
	// AdHeaderBytes carries an ad's fixed fields: node identity I, topic
	// set T, and the 16-bit version v.
	AdHeaderBytes = 16
	// TermBytes is the wire cost of one query term (an interned keyword).
	TermBytes = 4
	// HitBytes is the payload of a baseline query-hit reply or an ASAP
	// confirmation reply.
	HitBytes = 16
	// InterestBytes is the payload of an ads request: the requester's
	// interest bitmask.
	InterestBytes = 2
)

// QueryBytes returns the size of a baseline query or walker message
// carrying n search terms.
func QueryBytes(n int) int { return HeaderBytes + TermBytes*n }

// QueryHitBytes returns the size of a baseline reply to the requester.
func QueryHitBytes() int { return HeaderBytes + HitBytes }

// ConfirmBytes returns the size of an ASAP content-confirmation request
// carrying n search terms.
func ConfirmBytes(n int) int { return HeaderBytes + TermBytes*n }

// ConfirmReplyBytes returns the size of a confirmation reply.
func ConfirmReplyBytes() int { return HeaderBytes + HitBytes }

// AdsRequestBytes returns the size of an ads request message.
func AdsRequestBytes() int { return HeaderBytes + InterestBytes }

// AdsReplyBytes returns the size of an ads reply carrying cached ads whose
// payloads total payload bytes.
func AdsReplyBytes(payload int) int { return HeaderBytes + payload }

// FullAdBytes returns the size of a full-ad message whose content filter
// encodes to filterWire bytes.
func FullAdBytes(filterWire int) int { return HeaderBytes + AdHeaderBytes + filterWire }

// PatchAdBytes returns the size of a patch-ad message whose changed-bit
// list encodes to patchWire bytes.
func PatchAdBytes(patchWire int) int { return HeaderBytes + AdHeaderBytes + patchWire }

// RefreshAdBytes returns the size of a refresh ad ("empty content
// information").
func RefreshAdBytes() int { return HeaderBytes + AdHeaderBytes }

// CheckBackBytes returns the size of a walker check-back probe (or its
// reply).
func CheckBackBytes() int { return HeaderBytes }
