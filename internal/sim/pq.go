package sim

import "asap/internal/overlay"

// PQItem is one pending message arrival in a cascade simulation.
type PQItem struct {
	T    Clock          // arrival time, ms
	Node overlay.NodeID // receiving node
	From overlay.NodeID // sending node (for reverse-path suppression)
	Hop  int32          // hops taken so far
}

// PQ is a binary min-heap of cascade arrivals ordered by time. It is a
// bare-metal heap (no container/heap indirection) because flood cascades
// push millions of items per full-scale run. The zero value is ready to
// use; Reset allows buffer reuse across queries.
type PQ struct {
	items []PQItem
}

// Len returns the number of pending items.
func (q *PQ) Len() int { return len(q.items) }

// Reset empties the queue, keeping its capacity.
func (q *PQ) Reset() { q.items = q.items[:0] }

// Push adds an arrival.
func (q *PQ) Push(it PQItem) {
	q.items = append(q.items, it)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].T <= q.items[i].T {
			break
		}
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

// Pop removes and returns the earliest arrival. It panics on an empty
// queue; callers guard with Len.
func (q *PQ) Pop() PQItem {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items = q.items[:last]
	n := len(q.items)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.items[l].T < q.items[smallest].T {
			smallest = l
		}
		if r < n && q.items[r].T < q.items[smallest].T {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}
