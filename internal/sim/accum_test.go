package sim

import (
	"math/rand/v2"
	"testing"

	"asap/internal/metrics"
	"asap/internal/overlay"
)

func TestSecAccumulatorBatching(t *testing.T) {
	sys := newTestSystem(t)
	var a SecAccumulator
	a.Add(100, 10)
	a.Add(900, 5)   // same second, coalesced
	a.Add(2500, 7)  // second 2
	a.Add(-50, 100) // warm-up slot
	a.Flush(sys, metrics.MAdFull)
	mask := metrics.Mask(metrics.MAdFull)
	if got := sys.Load.BytesAt(0, mask); got != 15 {
		t.Errorf("second 0 = %d, want 15", got)
	}
	if got := sys.Load.BytesAt(2, mask); got != 7 {
		t.Errorf("second 2 = %d, want 7", got)
	}
	if got := sys.Load.WarmupBytes(mask); got != 100 {
		t.Errorf("warm-up = %d, want 100", got)
	}
	// Flush resets: a second flush adds nothing.
	a.Flush(sys, metrics.MAdFull)
	if got := sys.Load.BytesAt(0, mask); got != 15 {
		t.Errorf("double flush changed totals: %d", got)
	}
}

func TestNewSystemWithGraphValidatesSize(t *testing.T) {
	tr := testTrace(t)
	hosts := testNet.RandomNodes(10, newRng())
	g := overlay.NewRandom(testNet, hosts, 10, 3, newRng())
	defer func() {
		if recover() == nil {
			t.Error("mismatched graph size did not panic")
		}
	}()
	NewSystemWithGraph(testU, tr, g)
}

func TestSystemAccessors(t *testing.T) {
	sys := newTestSystem(t)
	if sys.InitialLive() != sys.Tr.InitialLive {
		t.Errorf("InitialLive = %d", sys.InitialLive())
	}
	if d := sys.Latency(0, 1); d <= 0 {
		t.Errorf("Latency(0,1) = %d", d)
	}
	if d := sys.Latency(3, 3); d != 0 {
		t.Errorf("self latency = %d", d)
	}
}

func newRng() *rand.Rand { return rand.New(rand.NewPCG(3, 3)) }
