package experiments

import (
	"testing"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/trace"
)

// TestMegaPresetInvariants checks the arithmetic the mega preset must obey
// before anything is generated: the physical universe holds every peer the
// trace can ever attach (netmodel.RandomNodes panics past TotalNodes), the
// content snapshot covers the full churn population (trace.Build rejects
// otherwise), and the two size-coupled ASAP knobs are pinned down far below
// their full-scale defaults so per-node slabs stay bounded at half a
// million nodes.
func TestMegaPresetInvariants(t *testing.T) {
	sc := ScaleMega()
	population := sc.Trace.NumNodes + sc.Trace.NumJoins
	if sc.Net.TotalNodes() < population {
		t.Fatalf("physical universe %d nodes < overlay population %d", sc.Net.TotalNodes(), population)
	}
	if sc.Content.NumPeers < population {
		t.Fatalf("content snapshot %d peers < overlay population %d", sc.Content.NumPeers, population)
	}
	if sc.Trace.NumNodes < 500_000 {
		t.Fatalf("mega is the ≥500k preset, got %d nodes", sc.Trace.NumNodes)
	}
	if sc.ShardCount == 0 {
		t.Fatal("mega must shard by default")
	}
	cfg := sc.ASAPConfig(core.RW)
	full := core.DefaultConfig(core.RW)
	if cfg.CacheCapacity <= 0 || cfg.CacheCapacity >= full.CacheCapacity {
		t.Fatalf("mega cache capacity %d not pinned below the full-scale %d", cfg.CacheCapacity, full.CacheCapacity)
	}
	if cfg.BudgetUnit <= 0 || cfg.BudgetUnit >= full.BudgetUnit {
		t.Fatalf("mega budget unit %d not pinned below the full-scale %d", cfg.BudgetUnit, full.BudgetUnit)
	}
	if cfg.RefreshPeriodSec != sc.RefreshPeriodSec {
		t.Fatalf("mega refresh period %d, want %d", cfg.RefreshPeriodSec, sc.RefreshPeriodSec)
	}
}

// TestMegaTraceGeneration builds (but does not replay) the mega preset's
// content universe and trace — the expensive halves of lab construction
// that must hold up at 520k peers — and asserts the event-stream
// invariants the replay engine depends on: exact churn and query counts,
// nondecreasing timestamps, and node IDs inside the overlay population.
// trace.Build itself enforces the ≥90% satisfiability floor.
func TestMegaTraceGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("mega generation in -short mode")
	}
	sc := ScaleMega()
	sc.Content.Seed = sc.Seed
	sc.Trace.Seed = sc.Seed
	u := content.Generate(sc.Content)
	tr, err := trace.Build(u, sc.Trace)
	if err != nil {
		t.Fatalf("mega trace: %v", err)
	}
	if len(tr.Peers) != sc.Trace.NumNodes+sc.Trace.NumJoins {
		t.Fatalf("trace population %d, want %d", len(tr.Peers), sc.Trace.NumNodes+sc.Trace.NumJoins)
	}
	st := tr.Stats()
	if st.Queries != sc.Trace.NumQueries || st.Joins != sc.Trace.NumJoins || st.Leaves != sc.Trace.NumLeaves {
		t.Fatalf("event counts %+v, want q=%d join=%d leave=%d",
			st, sc.Trace.NumQueries, sc.Trace.NumJoins, sc.Trace.NumLeaves)
	}
	last := int64(-1 << 62)
	for i := range tr.Events {
		ev := &tr.Events[i]
		if ev.Time < last {
			t.Fatalf("event %d goes back in time (%d after %d)", i, ev.Time, last)
		}
		last = ev.Time
		if ev.Kind == trace.Query || ev.Kind == trace.Join || ev.Kind == trace.Leave {
			if int(ev.Node) < 0 || int(ev.Node) >= len(tr.Peers) {
				t.Fatalf("event %d targets node %d outside [0,%d)", i, ev.Node, len(tr.Peers))
			}
		}
	}
}
