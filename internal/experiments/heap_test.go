package experiments

import (
	"testing"

	"asap/internal/obs"
	"asap/internal/overlay"
)

// smallPeakHeapBudgetMB bounds the live-heap high-water mark of one
// small-scale asap-rw replay. The observed peak on the reference host is
// ~30 MB (lab inputs included); the budget leaves ~4× headroom for GC
// timing and allocator noise while still catching a structural regression
// — per-node state creeping from O(shard) back to O(universe) blows
// through 3× immediately at any scale.
const smallPeakHeapBudgetMB = 128

// TestSmallReplayPeakHeapBound is the mem-gate (make mem-gate): replay
// asap-rw on the crawled overlay at small scale, sharded, with the heap
// gauge attached, and require the peak stays inside the budget — and that
// the gauge actually sampled something, so the gate can never pass vacuously.
func TestSmallReplayPeakHeapBound(t *testing.T) {
	if testing.Short() {
		t.Skip("small-scale replay in -short mode")
	}
	sc := ScaleSmall()
	sc.ShardCount = 4
	lab, err := NewLab(sc)
	if err != nil {
		t.Fatalf("lab: %v", err)
	}
	gauge := obs.NewHeapGauge()
	if _, err := lab.RunMatrixOpt([]string{"asap-rw"}, []overlay.Kind{overlay.Crawled}, nil,
		MatrixOptions{Workers: 1, Heap: gauge}); err != nil {
		t.Fatalf("run: %v", err)
	}
	peak := gauge.PeakMB()
	if peak <= 0 {
		t.Fatal("heap gauge recorded no samples")
	}
	if peak > smallPeakHeapBudgetMB {
		t.Fatalf("peak live heap %.1f MB exceeds the %d MB budget", peak, smallPeakHeapBudgetMB)
	}
	t.Logf("peak live heap: %.1f MB (budget %d MB)", peak, smallPeakHeapBudgetMB)
}
