package experiments

import (
	"strings"
	"sync"
	"testing"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
)

var (
	labOnce sync.Once
	tinyLab *Lab
	tinyMat Matrix
	labErr  error
)

// sharedTiny runs the full 6×3 matrix once at tiny scale for all tests.
func sharedTiny(t *testing.T) (*Lab, Matrix) {
	t.Helper()
	labOnce.Do(func() {
		tinyLab, labErr = NewLab(ScaleTiny())
		if labErr != nil {
			return
		}
		tinyMat, labErr = tinyLab.RunMatrix(nil, nil, nil)
	})
	if labErr != nil {
		t.Fatalf("shared tiny lab: %v", labErr)
	}
	return tinyLab, tinyMat
}

func TestByName(t *testing.T) {
	for _, name := range []string{"full", "small", "tiny"} {
		sc, err := ByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ByName(%q) = %v, %v", name, sc.Name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName accepted bogus scale")
	}
}

func TestScalePresetsValid(t *testing.T) {
	for _, sc := range []Scale{ScaleFull(), ScaleSmall(), ScaleTiny()} {
		if err := sc.Net.Validate(); err != nil {
			t.Errorf("%s net: %v", sc.Name, err)
		}
		if err := sc.Content.Validate(); err != nil {
			t.Errorf("%s content: %v", sc.Name, err)
		}
		if err := sc.Trace.Validate(); err != nil {
			t.Errorf("%s trace: %v", sc.Name, err)
		}
		for _, d := range []string{"asap-fld", "asap-rw", "asap-gsa"} {
			_ = d
		}
		if err := sc.ASAPConfig(0).Validate(); err != nil {
			t.Errorf("%s asap: %v", sc.Name, err)
		}
	}
}

func TestNewSchemeRegistry(t *testing.T) {
	lab, _ := sharedTiny(t)
	for _, name := range SchemeNames {
		sch, err := lab.NewScheme(name)
		if err != nil {
			t.Fatalf("NewScheme(%q): %v", name, err)
		}
		if sch.Name() != name {
			t.Errorf("scheme %q reports name %q", name, sch.Name())
		}
	}
	if _, err := lab.NewScheme("bogus"); err == nil {
		t.Error("NewScheme accepted bogus name")
	}
}

func TestMatrixComplete(t *testing.T) {
	_, m := sharedTiny(t)
	for _, s := range SchemeNames {
		per, ok := m[s]
		if !ok {
			t.Fatalf("matrix missing scheme %s", s)
		}
		for _, k := range overlay.Kinds {
			sum, ok := per[k]
			if !ok {
				t.Fatalf("matrix missing %s/%s", s, k)
			}
			if sum.Requests == 0 {
				t.Errorf("%s/%s: zero requests", s, k)
			}
			if sum.SuccessRate <= 0 {
				t.Errorf("%s/%s: zero success", s, k)
			}
		}
	}
}

func TestComparativeShape(t *testing.T) {
	_, m := sharedTiny(t)
	for _, k := range overlay.Kinds {
		flood := m["flooding"][k]
		aRw := m["asap-rw"][k]
		if aRw.MeanRespMS >= flood.MeanRespMS {
			t.Errorf("%s: asap-rw response %.0f ms not below flooding %.0f ms",
				k, aRw.MeanRespMS, flood.MeanRespMS)
		}
		if aRw.MeanSearchBytes*10 >= flood.MeanSearchBytes {
			t.Errorf("%s: asap-rw search cost %.0f B not ≥10x below flooding %.0f B",
				k, aRw.MeanSearchBytes, flood.MeanSearchBytes)
		}
		if aRw.LoadMeanKBps >= flood.LoadMeanKBps {
			t.Errorf("%s: asap-rw load %.3f not below flooding %.3f",
				k, aRw.LoadMeanKBps, flood.LoadMeanKBps)
		}
	}
}

func TestFigureFormatting(t *testing.T) {
	lab, m := sharedTiny(t)
	for name, out := range map[string]string{
		"fig2":  FormatFig2(lab),
		"fig3":  FormatFig3(lab),
		"fig4":  FormatFig4(m),
		"fig5":  FormatFig5(m),
		"fig6":  FormatFig6(m),
		"fig7":  FormatFig7(m["asap-rw"][overlay.Crawled]),
		"fig8":  FormatFig8(m),
		"fig9":  FormatFig9(m),
		"fig10": FormatFig10(m, 20),
	} {
		if len(out) == 0 || !strings.Contains(out, "\n") {
			t.Errorf("%s: empty output", name)
		}
	}
	if !strings.Contains(FormatFig4(m), "flooding") {
		t.Error("fig4 missing scheme rows")
	}
	if !strings.Contains(FormatFig7(m["asap-rw"][overlay.Crawled]), "patch ads") {
		t.Error("fig7 missing breakdown rows")
	}
	if got := FormatFig10(Matrix{}, 10); !strings.Contains(got, "no crawled") {
		t.Error("fig10 with empty matrix should say so")
	}
}

func TestFig2Fig3Shapes(t *testing.T) {
	lab, _ := sharedTiny(t)
	f2, f3 := lab.Fig2(), lab.Fig3()
	tot2, tot3 := 0, 0
	for c := 0; c < content.NumClasses; c++ {
		tot2 += f2[c]
		tot3 += f3[c]
		if f3[c] < f2[c] {
			// Interests include free-riders, so interest counts dominate
			// content counts per class only in aggregate; per-class noise
			// is possible but rare at this scale.
			t.Logf("class %d: interests %d < contents %d", c, f3[c], f2[c])
		}
	}
	if tot2 == 0 || tot3 <= tot2 {
		t.Errorf("figure masses implausible: contents %d interests %d", tot2, tot3)
	}
}

func TestClaims(t *testing.T) {
	_, m := sharedTiny(t)
	claims := CheckClaims(m)
	if len(claims) < 5 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	failed := 0
	for _, c := range claims {
		if !c.Pass {
			failed++
			t.Logf("claim %s FAILED: %s (%s)", c.ID, c.Text, c.Note)
		}
	}
	// Claims C2 (orders-of-magnitude cost gap), C3 (load gap) and C5
	// (walker failure under low replication) are scale-dependent: a
	// 5×1024-step walk covers a 400-node overlay completely, and flooding
	// is cheap when the flood horizon is the whole network. Those claims
	// are asserted at larger scales (see bench_test.go and EXPERIMENTS.md).
	// The response-time and variance shape must hold even here.
	for _, c := range claims {
		if (c.ID == "C1" || c.ID == "C4" || c.ID == "C6" || c.ID == "C7") && !c.Pass {
			t.Errorf("core claim %s failed at tiny scale: %s", c.ID, c.Note)
		}
	}
	out := FormatClaims(claims)
	if !strings.Contains(out, "C1") {
		t.Error("claims table missing rows")
	}
}

func TestRenderTable(t *testing.T) {
	out := renderTable([]string{"a", "bb"}, [][]string{{"x", "y"}, {"long", "z"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator misaligned")
	}
}

func TestRunUnknownScheme(t *testing.T) {
	lab, _ := sharedTiny(t)
	if _, err := lab.Run("bogus", overlay.Random); err == nil {
		t.Error("Run accepted bogus scheme")
	}
}

func TestMatrixSubset(t *testing.T) {
	lab, _ := sharedTiny(t)
	calls := 0
	m, err := lab.RunMatrix([]string{"flooding"}, []overlay.Kind{overlay.Random},
		func(string, overlay.Kind) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(m) != 1 || len(m["flooding"]) != 1 {
		t.Errorf("subset run wrong: calls=%d", calls)
	}
}

func TestSortedKinds(t *testing.T) {
	m := map[overlay.Kind]metrics.Summary{overlay.Crawled: {}, overlay.Random: {}}
	ks := SortedKinds(m)
	if len(ks) != 2 || ks[0] != overlay.Random || ks[1] != overlay.Crawled {
		t.Errorf("SortedKinds = %v", ks)
	}
}
