package experiments

import (
	"fmt"
	"strings"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/netmodel"
	"asap/internal/trace"
)

// Scale bundles every configuration knob of one experiment size.
type Scale struct {
	Name    string
	Net     netmodel.Config
	Content content.Config
	Trace   trace.Config
	// Factor is the linear reduction relative to the paper's scale; ASAP's
	// size-coupled knobs shrink by it.
	Factor float64
	// RefreshPeriodSec overrides the ASAP refresh period (0 keeps the
	// core default scaled by Factor).
	RefreshPeriodSec int
	// Workers is the per-run query replay fan-out (0 = GOMAXPROCS). It
	// applies to single-run entry points (Lab.Run, seed sweeps);
	// RunMatrix cells always replay single-threaded so the matrix stays
	// deterministic.
	Workers int
	// MatrixWorkers bounds RunMatrix's scheme×topology fan-out (0 =
	// GOMAXPROCS). Runs are independent, so the worker count never
	// changes the Matrix (see TestRunMatrixParallelDeterminism).
	MatrixWorkers int
	// ShardCount selects the sharded replay engine for every run,
	// including matrix cells: the overlay splits into this many contiguous
	// node-range shards, each query batch replays as a parallel intra-shard
	// phase plus an ordered barrier drain, and outputs stay byte-identical
	// to the unsharded Workers=1 replay at every count (see sim.RunOptions
	// and TestShardedReplayEquivalence). 0 keeps the unsharded path;
	// negative means auto (GOMAXPROCS, capped at overlay.MaxShards).
	ShardCount int
	// CacheCapacity, when positive, overrides the ASAP ads-cache capacity
	// the Factor scaling would pick. The mega preset needs this: per-node
	// cache slabs are the dominant term of peak heap at 500k nodes, so the
	// capacity must shrink far below the Scaled floor for memory to scale
	// with the shard, not the universe.
	CacheCapacity int
	// BudgetUnit, when positive, overrides ASAP's per-ad delivery budget B
	// the same way (delivery fan-out, and with it warm-up cost, scales
	// linearly in B).
	BudgetUnit int
	// LossRate attaches a fault plane dropping this fraction of messages
	// (0 = reliable network, the paper's model). Drops are a pure function
	// of the lab seed and each message's identity, so lossy runs stay as
	// deterministic as reliable ones (see internal/faults).
	LossRate float64
	Seed     uint64
}

// ScaleFull is the paper's configuration.
func ScaleFull() Scale {
	return Scale{
		Name:    "full",
		Net:     netmodel.DefaultConfig(),
		Content: content.DefaultConfig(),
		Trace:   trace.DefaultConfig(),
		Factor:  1,
		Seed:    1,
	}
}

// ScaleSmall is a 1/10 linear reduction: 1,000 peers, 3,000 requests over
// a proportionally smaller physical universe and content snapshot. The
// query rate (λ=8/s), content-change fraction and churn proportions are
// unchanged.
func ScaleSmall() Scale {
	s := ScaleFull()
	s.Name = "small"
	s.Net = netmodel.SmallConfig()
	s.Content = s.Content.Scaled(0.1)
	s.Trace = s.Trace.Scaled(0.1)
	s.Factor = 0.1
	// Scale the refresh period with the trace span so each node refreshes
	// as many times per run as at full scale.
	s.RefreshPeriodSec = 30
	return s
}

// ScaleTiny is a 1/25 reduction for unit tests and the quickstart example.
func ScaleTiny() Scale {
	s := ScaleFull()
	s.Name = "tiny"
	s.Net = netmodel.SmallConfig()
	s.Content = s.Content.Scaled(0.04)
	s.Trace = s.Trace.Scaled(0.04)
	s.Factor = 0.04
	s.RefreshPeriodSec = 12
	return s
}

// ScaleMega is the beyond-the-paper configuration: half a million peers on
// a physical universe sized to hold them, a proportionally larger Zipf
// content snapshot, and a scaled trace. It exists to exercise the sharded
// replay engine past the single-process comfort zone, so it runs one scheme
// (asap-rw on the random overlay) rather than the whole matrix, shards by
// default, and pins the two size-coupled ASAP knobs that would otherwise
// make peak heap scale with the universe instead of the shard.
func ScaleMega() Scale {
	s := ScaleFull()
	s.Name = "mega"
	// 24 transit domains × 25 routers, 21 stub domains per transit router ×
	// 42 nodes: 529,800 physical nodes, enough for every peer plus churn
	// joins to claim a distinct attachment point.
	s.Net = netmodel.Config{
		TransitDomains:        24,
		TransitPerDomain:      25,
		StubDomainsPerTransit: 21,
		StubPerDomain:         42,
		Seed:                  netmodel.DefaultConfig().Seed,
	}
	s.Content = content.DefaultConfig()
	s.Content.NumPeers = 520_000
	s.Content.NumDocs = 2_080_000
	s.Trace = trace.DefaultConfig()
	s.Trace.NumNodes = 500_000
	s.Trace.NumJoins = 5_000
	s.Trace.NumLeaves = 5_000
	s.Trace.NumQueries = 20_000
	s.Trace.Lambda = 50
	// Keep protocol knobs at paper scale (Factor 1) except the two that
	// multiply by the node count: a 500k-node universe at the default cache
	// capacity and budget would spend tens of GB on ads slabs alone.
	s.Factor = 1
	s.RefreshPeriodSec = 120
	s.CacheCapacity = 8
	s.BudgetUnit = 512
	s.ShardCount = -1 // auto: GOMAXPROCS
	return s
}

// presets is the single registry every name-keyed surface derives from:
// ByName, Names, and the CLI help strings all read this slice, so adding a
// preset is one entry here and nothing else.
var presets = []struct {
	name string
	make func() Scale
}{
	{"full", ScaleFull},
	{"small", ScaleSmall},
	{"tiny", ScaleTiny},
	{"mega", ScaleMega},
}

// Names lists the preset names in registry order.
func Names() []string {
	out := make([]string, len(presets))
	for i, p := range presets {
		out[i] = p.name
	}
	return out
}

// ByName resolves a preset name.
func ByName(name string) (Scale, error) {
	for _, p := range presets {
		if p.name == name {
			return p.make(), nil
		}
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (%s)", name, strings.Join(Names(), "|"))
}

// ASAPConfig derives the ASAP configuration for this scale and delivery
// kind.
func (s Scale) ASAPConfig(d core.DeliveryKind) core.Config {
	cfg := core.DefaultConfig(d).Scaled(s.Factor)
	cfg.Seed = s.Seed
	if s.RefreshPeriodSec > 0 {
		cfg.RefreshPeriodSec = s.RefreshPeriodSec
	}
	if s.CacheCapacity > 0 {
		cfg.CacheCapacity = s.CacheCapacity
	}
	if s.BudgetUnit > 0 {
		cfg.BudgetUnit = s.BudgetUnit
	}
	return cfg
}
