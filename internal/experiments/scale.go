package experiments

import (
	"fmt"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/netmodel"
	"asap/internal/trace"
)

// Scale bundles every configuration knob of one experiment size.
type Scale struct {
	Name    string
	Net     netmodel.Config
	Content content.Config
	Trace   trace.Config
	// Factor is the linear reduction relative to the paper's scale; ASAP's
	// size-coupled knobs shrink by it.
	Factor float64
	// RefreshPeriodSec overrides the ASAP refresh period (0 keeps the
	// core default scaled by Factor).
	RefreshPeriodSec int
	// Workers is the per-run query replay fan-out (0 = GOMAXPROCS). It
	// applies to single-run entry points (Lab.Run, seed sweeps);
	// RunMatrix cells always replay single-threaded so the matrix stays
	// deterministic.
	Workers int
	// MatrixWorkers bounds RunMatrix's scheme×topology fan-out (0 =
	// GOMAXPROCS). Runs are independent, so the worker count never
	// changes the Matrix (see TestRunMatrixParallelDeterminism).
	MatrixWorkers int
	// LossRate attaches a fault plane dropping this fraction of messages
	// (0 = reliable network, the paper's model). Drops are a pure function
	// of the lab seed and each message's identity, so lossy runs stay as
	// deterministic as reliable ones (see internal/faults).
	LossRate float64
	Seed     uint64
}

// ScaleFull is the paper's configuration.
func ScaleFull() Scale {
	return Scale{
		Name:    "full",
		Net:     netmodel.DefaultConfig(),
		Content: content.DefaultConfig(),
		Trace:   trace.DefaultConfig(),
		Factor:  1,
		Seed:    1,
	}
}

// ScaleSmall is a 1/10 linear reduction: 1,000 peers, 3,000 requests over
// a proportionally smaller physical universe and content snapshot. The
// query rate (λ=8/s), content-change fraction and churn proportions are
// unchanged.
func ScaleSmall() Scale {
	s := ScaleFull()
	s.Name = "small"
	s.Net = netmodel.SmallConfig()
	s.Content = s.Content.Scaled(0.1)
	s.Trace = s.Trace.Scaled(0.1)
	s.Factor = 0.1
	// Scale the refresh period with the trace span so each node refreshes
	// as many times per run as at full scale.
	s.RefreshPeriodSec = 30
	return s
}

// ScaleTiny is a 1/25 reduction for unit tests and the quickstart example.
func ScaleTiny() Scale {
	s := ScaleFull()
	s.Name = "tiny"
	s.Net = netmodel.SmallConfig()
	s.Content = s.Content.Scaled(0.04)
	s.Trace = s.Trace.Scaled(0.04)
	s.Factor = 0.04
	s.RefreshPeriodSec = 12
	return s
}

// ByName resolves a preset name.
func ByName(name string) (Scale, error) {
	switch name {
	case "full":
		return ScaleFull(), nil
	case "small":
		return ScaleSmall(), nil
	case "tiny":
		return ScaleTiny(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (full|small|tiny)", name)
	}
}

// ASAPConfig derives the ASAP configuration for this scale and delivery
// kind.
func (s Scale) ASAPConfig(d core.DeliveryKind) core.Config {
	cfg := core.DefaultConfig(d).Scaled(s.Factor)
	cfg.Seed = s.Seed
	if s.RefreshPeriodSec > 0 {
		cfg.RefreshPeriodSec = s.RefreshPeriodSec
	}
	return cfg
}
