package experiments

import (
	"fmt"
	"strings"

	"asap/internal/content"
	"asap/internal/metrics"
	"asap/internal/overlay"
)

// renderTable prints an aligned text table.
func renderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// classTable renders a per-class count series (Figs. 2 and 3).
func classTable(title string, counts [content.NumClasses]int) string {
	rows := make([][]string, 0, content.NumClasses)
	for c := 0; c < content.NumClasses; c++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c), content.Class(c).String(), fmt.Sprintf("%d", counts[c]),
		})
	}
	return title + "\n" + renderTable([]string{"class", "label", "peers"}, rows)
}

// FormatFig2 renders the semantic-class distribution of the selected
// peers' contents.
func FormatFig2(l *Lab) string {
	return classTable("Fig 2 — peers with shared contents per semantic class", l.Fig2())
}

// FormatFig3 renders the node-interest distribution.
func FormatFig3(l *Lab) string {
	return classTable("Fig 3 — peers per interest", l.Fig3())
}

// matrixTable renders one metric across the scheme × topology matrix.
func matrixTable(title string, m Matrix, cell func(metrics.Summary) string) string {
	headers := []string{"scheme"}
	for _, k := range overlay.Kinds {
		headers = append(headers, k.String())
	}
	var rows [][]string
	for _, s := range SchemeNames {
		per, ok := m[s]
		if !ok {
			continue
		}
		row := []string{s}
		for _, k := range overlay.Kinds {
			if sum, ok := per[k]; ok {
				row = append(row, cell(sum))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return title + "\n" + renderTable(headers, rows)
}

// FormatFig4 renders search success rates.
func FormatFig4(m Matrix) string {
	return matrixTable("Fig 4 — search success rate (%)", m, func(s metrics.Summary) string {
		return fmt.Sprintf("%.1f", s.SuccessRate*100)
	})
}

// FormatFig5 renders mean response times.
func FormatFig5(m Matrix) string {
	return matrixTable("Fig 5 — mean response time (ms, successful searches)", m, func(s metrics.Summary) string {
		return fmt.Sprintf("%.0f", s.MeanRespMS)
	})
}

// FormatFig6 renders per-search bandwidth cost (the paper plots this on a
// log scale; orders of magnitude are the point).
func FormatFig6(m Matrix) string {
	return matrixTable("Fig 6 — bandwidth per search (KB)", m, func(s metrics.Summary) string {
		return fmt.Sprintf("%.2f", s.MeanSearchBytes/1024)
	})
}

// FormatFig7 renders the ASAP(RW) load breakdown: each message class's
// share of the scheme's total system load, plus its share of ad-delivery
// traffic alone — the paper quotes the latter ("around 91% ads system
// load is from patch ads or refresh ads and full ads contribute 8.5%").
func FormatFig7(sum metrics.Summary) string {
	type entry struct {
		class metrics.MsgClass
		label string
		isAd  bool
	}
	entries := []entry{
		{metrics.MAdFull, "full ads", true},
		{metrics.MAdPatch, "patch ads", true},
		{metrics.MAdRefresh, "refresh ads", true},
		{metrics.MConfirm, "confirmations", false},
		{metrics.MAdsRequest, "ads requests", false},
		{metrics.MControl, "control", false},
	}
	adTotal := 0.0
	for _, e := range entries {
		if e.isAd {
			adTotal += sum.Breakdown[e.class]
		}
	}
	var rows [][]string
	for _, e := range entries {
		share := sum.Breakdown[e.class] * 100
		adShare := "-"
		if e.isAd && adTotal > 0 {
			adShare = fmt.Sprintf("%.1f", sum.Breakdown[e.class]/adTotal*100)
		}
		rows = append(rows, []string{e.label, fmt.Sprintf("%.1f", share), adShare})
	}
	title := fmt.Sprintf("Fig 7 — %s system-load breakdown on %s (%% of bytes)", sum.Scheme, sum.Topology)
	return title + "\n" + renderTable([]string{"message class", "share of load %", "share of ads %"}, rows)
}

// FormatFig8 renders mean system load.
func FormatFig8(m Matrix) string {
	return matrixTable("Fig 8 — mean system load (KB/node/s)", m, func(s metrics.Summary) string {
		return fmt.Sprintf("%.3f", s.LoadMeanKBps)
	})
}

// FormatFig9 renders system-load standard deviation.
func FormatFig9(m Matrix) string {
	return matrixTable("Fig 9 — system load stddev (KB/node/s)", m, func(s metrics.Summary) string {
		return fmt.Sprintf("%.3f", s.LoadStdKBps)
	})
}

// FormatFig10 renders a window of the per-second load series on the
// crawled topology for every scheme in the matrix, mirroring the paper's
// 100-second snapshot.
func FormatFig10(m Matrix, window int) string {
	if window <= 0 {
		window = 100
	}
	series := map[string][]float64{}
	maxLen := 0
	for _, s := range SchemeNames {
		if per, ok := m[s]; ok {
			if sum, ok := per[overlay.Crawled]; ok {
				series[s] = sum.LoadSeries
				if len(sum.LoadSeries) > maxLen {
					maxLen = len(sum.LoadSeries)
				}
			}
		}
	}
	if maxLen == 0 {
		return "Fig 10 — no crawled-topology series available\n"
	}
	// Pick a window in the middle of the run (the system is warm and churn
	// is active).
	start := maxLen / 3
	if start+window > maxLen {
		start = max(0, maxLen-window)
	}
	headers := []string{"second"}
	var present []string
	for _, s := range SchemeNames {
		if _, ok := series[s]; ok {
			headers = append(headers, s)
			present = append(present, s)
		}
	}
	var rows [][]string
	for t := start; t < start+window && t < maxLen; t++ {
		row := []string{fmt.Sprintf("%d", t)}
		for _, s := range present {
			sr := series[s]
			if t < len(sr) {
				row = append(row, fmt.Sprintf("%.3f", sr[t]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Fig 10 — real-time system load, crawled topology, %d s window (KB/node/s)", window)
	return title + "\n" + renderTable(headers, rows)
}

// Claim is one of the paper's headline comparative results, checked
// against a reproduced matrix.
type Claim struct {
	ID   string
	Text string
	Pass bool
	Note string
}

// CheckClaims evaluates the paper's headline claims (DESIGN.md §3) on the
// crawled topology, which the paper uses for its detailed discussion.
func CheckClaims(m Matrix) []Claim {
	crawled := func(s string) (metrics.Summary, bool) {
		per, ok := m[s]
		if !ok {
			return metrics.Summary{}, false
		}
		sum, ok := per[overlay.Crawled]
		return sum, ok
	}
	flood, okF := crawled("flooding")
	rw, okR := crawled("random-walk")
	gsa, okG := crawled("gsa")
	aFld, okAF := crawled("asap-fld")
	aRw, okAR := crawled("asap-rw")
	var claims []Claim
	add := func(id, text string, ok, pass bool, note string) {
		if !ok {
			note = "missing runs"
			pass = false
		}
		claims = append(claims, Claim{ID: id, Text: text, Pass: pass, Note: note})
	}

	if okF && okAR {
		imp := 1 - aRw.MeanRespMS/flood.MeanRespMS
		add("C1", "ASAP response ≥62% shorter than flooding", true, imp >= 0.5,
			fmt.Sprintf("improvement %.0f%%", imp*100))
		ratio := flood.MeanSearchBytes / aRw.MeanSearchBytes
		add("C2", "ASAP search cost 2–3 orders below flooding", true, ratio >= 100,
			fmt.Sprintf("ratio %.0fx", ratio))
		loadRatio := flood.LoadMeanKBps / aRw.LoadMeanKBps
		add("C3", "ASAP load well below flooding", true, loadRatio >= 2,
			fmt.Sprintf("ratio %.1fx", loadRatio))
		add("C4", "ASAP load variance below flooding's", true, aRw.LoadStdKBps < flood.LoadStdKBps,
			fmt.Sprintf("%.3f vs %.3f", aRw.LoadStdKBps, flood.LoadStdKBps))
	} else {
		add("C1", "ASAP response ≥62% shorter than flooding", false, false, "")
	}
	if okR && okG && okF {
		add("C5", "random walk/GSA success suffers under low replication", true,
			rw.SuccessRate < flood.SuccessRate,
			fmt.Sprintf("rw %.1f%% gsa %.1f%% vs flood %.1f%%", rw.SuccessRate*100, gsa.SuccessRate*100, flood.SuccessRate*100))
	}
	if okAF && okAR {
		add("C6", "ASAP(FLD) highest load, ASAP(RW) lowest load", true,
			aRw.LoadMeanKBps < aFld.LoadMeanKBps,
			fmt.Sprintf("rw %.3f vs fld %.3f KB/node/s", aRw.LoadMeanKBps, aFld.LoadMeanKBps))
		frac := aRw.Breakdown[metrics.MAdPatch] + aRw.Breakdown[metrics.MAdRefresh]
		add("C7", "patch+refresh ads dominate steady-state ad traffic", true, frac > 0.5,
			fmt.Sprintf("patch+refresh %.0f%%, full %.0f%%", frac*100, aRw.Breakdown[metrics.MAdFull]*100))
	}
	return claims
}

// FormatClaims renders claim-check results.
func FormatClaims(claims []Claim) string {
	var rows [][]string
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		rows = append(rows, []string{c.ID, status, c.Text, c.Note})
	}
	return "Headline claims (crawled topology)\n" + renderTable([]string{"id", "status", "claim", "measured"}, rows)
}
