package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/search"
	"asap/internal/sim"
	"asap/internal/trace"
)

// SchemeNames lists the six schemes of the comparison figures, in the
// paper's order.
var SchemeNames = []string{"flooding", "random-walk", "gsa", "asap-fld", "asap-rw", "asap-gsa"}

// Lab owns the shared inputs of one scale preset: generating the physical
// network, the content universe and the trace is expensive, so one Lab is
// reused across all scheme × topology runs. Runs themselves are
// independent — each operates on its own system over a private clone of
// the lab's per-topology overlay prototype — which is what lets RunMatrix
// fan them across a worker pool.
type Lab struct {
	Scale Scale
	Net   *netmodel.Network
	U     *content.Universe
	Tr    *trace.Trace

	// Per-kind topology prototypes: each topology is generated once per
	// Lab and cheaply cloned per run (generation dominates per-run setup
	// cost). Guarded so concurrent RunMatrix workers can share the cache.
	topoMu sync.Mutex
	topos  map[overlay.Kind]*sim.TopoProto
}

// NewLab builds the shared inputs for a scale preset.
func NewLab(sc Scale) (*Lab, error) {
	sc.Net.Seed = sc.Seed
	sc.Content.Seed = sc.Seed
	sc.Trace.Seed = sc.Seed
	net := netmodel.Generate(sc.Net)
	u := content.Generate(sc.Content)
	tr, err := trace.Build(u, sc.Trace)
	if err != nil {
		return nil, fmt.Errorf("experiments: building trace: %w", err)
	}
	return &Lab{Scale: sc, Net: net, U: u, Tr: tr}, nil
}

// NewScheme constructs a named scheme configured for this lab's scale.
func (l *Lab) NewScheme(name string) (sim.Scheme, error) {
	switch name {
	case "flooding":
		return search.NewFlooding(), nil
	case "random-walk":
		return search.NewRandomWalk(l.Scale.Seed), nil
	case "gsa":
		return search.NewGSA(l.Scale.Seed), nil
	case "asap-fld":
		return core.New(l.Scale.ASAPConfig(core.FLD)), nil
	case "asap-rw":
		return core.New(l.Scale.ASAPConfig(core.RW)), nil
	case "asap-gsa":
		return core.New(l.Scale.ASAPConfig(core.GSAKind)), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// topoProto returns the lab's shared prototype for kind, generating it on
// first use. Safe for concurrent callers.
func (l *Lab) topoProto(kind overlay.Kind) *sim.TopoProto {
	l.topoMu.Lock()
	defer l.topoMu.Unlock()
	if l.topos == nil {
		l.topos = make(map[overlay.Kind]*sim.TopoProto, len(overlay.Kinds))
	}
	p, ok := l.topos[kind]
	if !ok {
		p = sim.NewTopoProto(kind, l.Net, len(l.Tr.Peers), l.Tr.InitialLive, l.Scale.Seed)
		l.topos[kind] = p
	}
	return p
}

// Run replays the lab's trace under one scheme on one topology with
// Scale.Workers query-replay workers (the interactive single-run entry
// point; multi-worker replay trades bit-for-bit reproducibility for
// speed, see sim.RunOptions).
func (l *Lab) Run(schemeName string, topo overlay.Kind) (metrics.Summary, error) {
	return l.run(schemeName, topo, false, l.Scale.Workers, nil, nil, nil)
}

// RunObs is Run with observability attached: the run's per-second series
// lands in series (keyed "scheme/topology") and its wall-clock phase
// timing is merged into timing. Either may be nil to skip that layer.
func (l *Lab) RunObs(schemeName string, topo overlay.Kind, series *obs.Collector, timing *obs.Timing) (metrics.Summary, error) {
	return l.run(schemeName, topo, false, l.Scale.Workers, series, timing, nil)
}

// run builds the system — from the cached prototype, or from scratch when
// fresh is set — and replays the trace under the scheme. The two system
// paths are bit-for-bit equivalent (see TestMatrixClonedMatchesFresh);
// fresh exists as the pre-clone baseline for benchmarking.
func (l *Lab) run(schemeName string, topo overlay.Kind, fresh bool, queryWorkers int, series *obs.Collector, timing *obs.Timing, heap *obs.HeapGauge) (metrics.Summary, error) {
	sch, err := l.NewScheme(schemeName)
	if err != nil {
		return metrics.Summary{}, err
	}
	// The recorder's horizon mirrors the LoadAccount's (see sim.NewSystem)
	// so the two per-second series line up row for row.
	var rec *obs.Recorder
	if series != nil || timing != nil || heap != nil {
		rec = obs.NewRecorder(int(l.Tr.Span()/1000) + 2)
		rec.SetHeapGauge(heap)
	}
	var sys *sim.System
	if fresh {
		t0 := rec.Begin()
		sys = sim.NewSystem(l.U, l.Tr, topo, l.Net, l.Scale.Seed)
		rec.End(obs.PTopoGen, t0)
	} else {
		proto := l.topoProto(topo)
		t0 := rec.Begin()
		sys = proto.NewSystem(l.U, l.Tr)
		rec.End(obs.PTopoClone, t0)
	}
	sys.SetObs(rec)
	if l.Scale.LossRate > 0 {
		sys.SetFaults(faults.New(faults.Config{Seed: l.Scale.Seed, LossRate: l.Scale.LossRate}))
	}
	sum := sim.Run(sys, sch, sim.RunOptions{Workers: queryWorkers, Shards: l.Scale.ShardCount})
	if timing != nil {
		timing.Merge(rec.Timing())
	}
	if series != nil {
		series.Add(rec.Series(schemeName+"/"+topo.String(), sys.Load))
	}
	return sum, nil
}

// Matrix holds one Summary per scheme × topology.
type Matrix map[string]map[overlay.Kind]metrics.Summary

// MatrixOptions tunes RunMatrixOpt.
type MatrixOptions struct {
	// Workers bounds the scheme×topology fan-out; 0 means GOMAXPROCS.
	Workers int
	// FreshGraphs regenerates the overlay for every run instead of
	// cloning the lab's per-kind prototype — the pre-optimization
	// baseline, kept for benchmarking (cmd/experiments -benchjson).
	FreshGraphs bool
	// Series, when non-nil, collects each cell's per-second observability
	// series (keyed "scheme/topology"). Collection is deterministic: the
	// merged set is identical for every Workers value.
	Series *obs.Collector
	// Timing, when non-nil, accumulates wall-clock phase timing across all
	// cells (nondeterministic by nature; reporting only).
	Timing *obs.Timing
	// Heap, when non-nil, tracks the peak live-heap high-water mark across
	// all cells (sampled once per simulated second; reporting only, never
	// part of the deterministic Matrix).
	Heap *obs.HeapGauge
}

// RunMatrix runs every given scheme on every given topology across a
// worker pool of Scale.MatrixWorkers (0 = GOMAXPROCS). Nil slices select
// the full paper matrix. Progress, if non-nil, is invoked before each run
// and is never called concurrently.
//
// Parallelism lives at the cell level (and, when Scale.ShardCount is set,
// inside each cell via the sharded replay engine, which is byte-identical
// to single-threaded replay at every shard count): each cell replays its
// queries single-threaded otherwise, which keeps every run deterministic
// in the lab seed alone (multi-worker query replay is
// scheduling-sensitive for schemes with shared caches — see
// sim.RunOptions). The returned Matrix is therefore identical for every
// worker count (TestRunMatrixParallelDeterminism).
func (l *Lab) RunMatrix(schemes []string, topos []overlay.Kind, progress func(scheme string, topo overlay.Kind)) (Matrix, error) {
	return l.RunMatrixOpt(schemes, topos, progress, MatrixOptions{Workers: l.Scale.MatrixWorkers})
}

// RunMatrixOpt is RunMatrix with explicit execution options.
func (l *Lab) RunMatrixOpt(schemes []string, topos []overlay.Kind, progress func(scheme string, topo overlay.Kind), opt MatrixOptions) (Matrix, error) {
	if schemes == nil {
		schemes = SchemeNames
	}
	if topos == nil {
		topos = overlay.Kinds
	}
	type cell struct {
		scheme string
		topo   overlay.Kind
	}
	jobs := make([]cell, 0, len(schemes)*len(topos))
	for _, s := range schemes {
		for _, k := range topos {
			jobs = append(jobs, cell{scheme: s, topo: k})
		}
	}
	if !opt.FreshGraphs {
		// Generate each topology once, up front, so workers only clone.
		for _, k := range topos {
			l.topoProto(k)
		}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	sums := make([]metrics.Summary, len(jobs))
	errs := make([]error, len(jobs))
	runJob := func(i int) {
		sums[i], errs[i] = l.run(jobs[i].scheme, jobs[i].topo, opt.FreshGraphs, 1, opt.Series, opt.Timing, opt.Heap)
	}
	if workers <= 1 {
		for i := range jobs {
			if progress != nil {
				progress(jobs[i].scheme, jobs[i].topo)
			}
			runJob(i)
		}
	} else {
		var (
			progressMu sync.Mutex
			next       atomic.Int64
			wg         sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					if progress != nil {
						progressMu.Lock()
						progress(jobs[i].scheme, jobs[i].topo)
						progressMu.Unlock()
					}
					runJob(i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	m := make(Matrix, len(schemes))
	for i, j := range jobs {
		per := m[j.scheme]
		if per == nil {
			per = make(map[overlay.Kind]metrics.Summary, len(topos))
			m[j.scheme] = per
		}
		per[j.topo] = sums[i]
	}
	return m, nil
}

// Participants returns the universe peers selected as initial overlay
// participants — the population Figs. 2 and 3 describe.
func (l *Lab) Participants() []content.PeerID {
	return l.Tr.Peers[:l.Tr.InitialLive]
}

// Fig2 returns the number of selected peers whose contents fall in each
// semantic class.
func (l *Lab) Fig2() [content.NumClasses]int {
	return l.U.ContentClassCounts(l.Participants())
}

// Fig3 returns the number of selected peers interested in each class.
func (l *Lab) Fig3() [content.NumClasses]int {
	return l.U.InterestCounts(l.Participants())
}

// SortedKinds returns topology kinds in paper order (helper for stable
// output).
func SortedKinds(m map[overlay.Kind]metrics.Summary) []overlay.Kind {
	out := make([]overlay.Kind, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
