package experiments

import (
	"fmt"
	"sort"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/search"
	"asap/internal/sim"
	"asap/internal/trace"
)

// SchemeNames lists the six schemes of the comparison figures, in the
// paper's order.
var SchemeNames = []string{"flooding", "random-walk", "gsa", "asap-fld", "asap-rw", "asap-gsa"}

// Lab owns the shared inputs of one scale preset: generating the physical
// network, the content universe and the trace is expensive, so one Lab is
// reused across all scheme × topology runs. Runs themselves are
// independent (each builds a fresh overlay and system).
type Lab struct {
	Scale Scale
	Net   *netmodel.Network
	U     *content.Universe
	Tr    *trace.Trace
}

// NewLab builds the shared inputs for a scale preset.
func NewLab(sc Scale) (*Lab, error) {
	sc.Net.Seed = sc.Seed
	sc.Content.Seed = sc.Seed
	sc.Trace.Seed = sc.Seed
	net := netmodel.Generate(sc.Net)
	u := content.Generate(sc.Content)
	tr, err := trace.Build(u, sc.Trace)
	if err != nil {
		return nil, fmt.Errorf("experiments: building trace: %w", err)
	}
	return &Lab{Scale: sc, Net: net, U: u, Tr: tr}, nil
}

// NewScheme constructs a named scheme configured for this lab's scale.
func (l *Lab) NewScheme(name string) (sim.Scheme, error) {
	switch name {
	case "flooding":
		return search.NewFlooding(), nil
	case "random-walk":
		return search.NewRandomWalk(l.Scale.Seed), nil
	case "gsa":
		return search.NewGSA(l.Scale.Seed), nil
	case "asap-fld":
		return core.New(l.Scale.ASAPConfig(core.FLD)), nil
	case "asap-rw":
		return core.New(l.Scale.ASAPConfig(core.RW)), nil
	case "asap-gsa":
		return core.New(l.Scale.ASAPConfig(core.GSAKind)), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheme %q", name)
	}
}

// Run replays the lab's trace under one scheme on one topology.
func (l *Lab) Run(schemeName string, topo overlay.Kind) (metrics.Summary, error) {
	sch, err := l.NewScheme(schemeName)
	if err != nil {
		return metrics.Summary{}, err
	}
	sys := sim.NewSystem(l.U, l.Tr, topo, l.Net, l.Scale.Seed)
	return sim.Run(sys, sch, sim.RunOptions{Workers: l.Scale.Workers}), nil
}

// Matrix holds one Summary per scheme × topology.
type Matrix map[string]map[overlay.Kind]metrics.Summary

// RunMatrix runs every given scheme on every given topology. Nil slices
// select the full paper matrix. Progress, if non-nil, is invoked before
// each run.
func (l *Lab) RunMatrix(schemes []string, topos []overlay.Kind, progress func(scheme string, topo overlay.Kind)) (Matrix, error) {
	if schemes == nil {
		schemes = SchemeNames
	}
	if topos == nil {
		topos = overlay.Kinds
	}
	m := make(Matrix, len(schemes))
	for _, s := range schemes {
		m[s] = make(map[overlay.Kind]metrics.Summary, len(topos))
		for _, k := range topos {
			if progress != nil {
				progress(s, k)
			}
			sum, err := l.Run(s, k)
			if err != nil {
				return nil, err
			}
			m[s][k] = sum
		}
	}
	return m, nil
}

// Participants returns the universe peers selected as initial overlay
// participants — the population Figs. 2 and 3 describe.
func (l *Lab) Participants() []content.PeerID {
	return l.Tr.Peers[:l.Tr.InitialLive]
}

// Fig2 returns the number of selected peers whose contents fall in each
// semantic class.
func (l *Lab) Fig2() [content.NumClasses]int {
	return l.U.ContentClassCounts(l.Participants())
}

// Fig3 returns the number of selected peers interested in each class.
func (l *Lab) Fig3() [content.NumClasses]int {
	return l.U.InterestCounts(l.Participants())
}

// SortedKinds returns topology kinds in paper order (helper for stable
// output).
func SortedKinds(m map[overlay.Kind]metrics.Summary) []overlay.Kind {
	out := make([]overlay.Kind, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
