package experiments

import (
	"reflect"
	"testing"

	"asap/internal/overlay"
)

// TestRunMatrixParallelDeterminism: the matrix worker count must not change
// a single field of any summary — the contract that lets RunMatrix default
// to GOMAXPROCS workers without perturbing figure output. The progress
// callback deliberately mutates unsynchronised state: RunMatrixOpt promises
// to serialise progress calls, and `go test -race` holds it to that.
func TestRunMatrixParallelDeterminism(t *testing.T) {
	lab, _ := sharedTiny(t)
	seq, err := lab.RunMatrixOpt(nil, nil, nil, MatrixOptions{Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	calls := 0
	par, err := lab.RunMatrixOpt(nil, nil, func(string, overlay.Kind) { calls++ }, MatrixOptions{Workers: 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if want := len(SchemeNames) * len(overlay.Kinds); calls != want {
		t.Errorf("progress called %d times, want %d", calls, want)
	}
	if !reflect.DeepEqual(seq, par) {
		for s, per := range seq {
			for k := range per {
				if !reflect.DeepEqual(seq[s][k], par[s][k]) {
					t.Errorf("%s/%s differs:\nseq: %+v\npar: %+v", s, k, seq[s][k], par[s][k])
				}
			}
		}
		t.Fatal("parallel matrix differs from sequential")
	}
}

// TestMatrixClonedMatchesFresh: runs over cloned topology prototypes (the
// default) must equal runs that regenerate the overlay from scratch — the
// pre-optimization behaviour.
func TestMatrixClonedMatchesFresh(t *testing.T) {
	lab, _ := sharedTiny(t)
	schemes := []string{"flooding", "asap-rw"}
	topos := []overlay.Kind{overlay.Crawled}
	fresh, err := lab.RunMatrixOpt(schemes, topos, nil, MatrixOptions{Workers: 1, FreshGraphs: true})
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	cloned, err := lab.RunMatrixOpt(schemes, topos, nil, MatrixOptions{Workers: 1})
	if err != nil {
		t.Fatalf("cloned: %v", err)
	}
	if !reflect.DeepEqual(fresh, cloned) {
		t.Fatal("cloned-prototype matrix differs from fresh-graph matrix")
	}
}

// TestRunMatrixParallelPropagatesErrors: a bad scheme name must surface as
// an error from the parallel path, not a hang or partial matrix.
func TestRunMatrixParallelPropagatesErrors(t *testing.T) {
	lab, _ := sharedTiny(t)
	if _, err := lab.RunMatrixOpt([]string{"bogus"}, nil, nil, MatrixOptions{Workers: 4}); err == nil {
		t.Error("parallel RunMatrixOpt accepted bogus scheme")
	}
}

// TestScaleMatrixWorkersFlows: Scale.MatrixWorkers reaches the plain
// RunMatrix entry point (output equality with the explicit-worker path).
func TestScaleMatrixWorkersFlows(t *testing.T) {
	lab, mat := sharedTiny(t)
	prev := lab.Scale.MatrixWorkers
	lab.Scale.MatrixWorkers = 3
	defer func() { lab.Scale.MatrixWorkers = prev }()
	m, err := lab.RunMatrix(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, mat) {
		t.Fatal("MatrixWorkers=3 run differs from the shared matrix")
	}
}
