package experiments

import (
	"reflect"
	"testing"

	"asap/internal/faults"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// lossySchemes is the subset exercised by the loss-plane tests: one
// baseline per family plus one ASAP variant keeps them fast while still
// crossing every drop site (flood copies, walkers, confirmations, ads
// requests, ad deliveries).
var lossySchemes = []string{"flooding", "random-walk", "asap-fld"}

// TestLossMatrixWorkerDeterminism: with a fault plane attached, the matrix
// must still be identical for any worker count — every drop decision is a
// pure function of the lab seed and the message's identity, never of
// scheduling. This is the property that lets lossy experiments fan out
// like reliable ones.
func TestLossMatrixWorkerDeterminism(t *testing.T) {
	sc := ScaleTiny()
	sc.LossRate = 0.02
	mk := func() *Lab {
		lab, err := NewLab(sc)
		if err != nil {
			t.Fatalf("lab: %v", err)
		}
		return lab
	}
	seq, err := mk().RunMatrixOpt(lossySchemes, []overlay.Kind{overlay.Crawled}, nil, MatrixOptions{Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := mk().RunMatrixOpt(lossySchemes, []overlay.Kind{overlay.Crawled}, nil, MatrixOptions{Workers: 4})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if !reflect.DeepEqual(seq, par) {
		for s, per := range seq {
			for k := range per {
				if !reflect.DeepEqual(seq[s][k], par[s][k]) {
					t.Errorf("%s/%s differs:\nseq: %+v\npar: %+v", s, k, seq[s][k], par[s][k])
				}
			}
		}
		t.Fatal("lossy matrix differs across worker counts")
	}
	for s, per := range seq {
		for k, sum := range per {
			if sum.Drops == 0 {
				t.Errorf("%s/%s: 2%% loss produced zero drops", s, k)
			}
		}
	}
}

// TestLossSweepDegradesGracefully: the loss-sweep figure runs, its rate-0
// column is drop-free, and lossy columns actually drop messages.
func TestLossSweepDegradesGracefully(t *testing.T) {
	sw, err := RunLossSweep(ScaleTiny(), []string{"flooding"}, overlay.Crawled, []float64{0, 0.05}, nil)
	if err != nil {
		t.Fatalf("RunLossSweep: %v", err)
	}
	if len(sw.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(sw.Points))
	}
	reliable, lossy := sw.Points[0], sw.Points[1]
	if reliable.Summary.Drops != 0 {
		t.Errorf("rate 0 dropped %d messages", reliable.Summary.Drops)
	}
	if lossy.Summary.Drops == 0 {
		t.Error("rate 0.05 dropped nothing")
	}
	if lossy.Summary.SuccessRate > reliable.Summary.SuccessRate {
		t.Errorf("5%% loss improved success rate: %.3f > %.3f",
			lossy.Summary.SuccessRate, reliable.Summary.SuccessRate)
	}
	if out := FormatLossSweep(sw); len(out) == 0 {
		t.Error("FormatLossSweep returned nothing")
	}
}

// TestLossZeroMatchesNoPlane: a plane configured with loss rate 0 must be
// completely inert — every summary field byte-identical to a run with no
// plane at all. This pins the Active() gating that keeps retry machinery
// (and its accounting) out of the reliable replay.
func TestLossZeroMatchesNoPlane(t *testing.T) {
	lab, err := NewLab(ScaleTiny())
	if err != nil {
		t.Fatalf("lab: %v", err)
	}
	for _, scheme := range lossySchemes {
		bare, err := lab.run(scheme, overlay.Crawled, false, 1, nil, nil, nil)
		if err != nil {
			t.Fatalf("%s bare: %v", scheme, err)
		}
		sch, err := lab.NewScheme(scheme)
		if err != nil {
			t.Fatal(err)
		}
		sys := lab.topoProto(overlay.Crawled).NewSystem(lab.U, lab.Tr)
		sys.SetFaults(faults.New(faults.Config{Seed: lab.Scale.Seed, LossRate: 0}))
		planed := sim.Run(sys, sch, sim.RunOptions{Workers: 1})
		if !reflect.DeepEqual(bare, planed) {
			t.Errorf("%s: zero-loss plane changed the summary:\nbare:   %+v\nplaned: %+v", scheme, bare, planed)
		}
	}
}

// TestLossUnchangedByInertPartition pins the faults stream-key audit at
// the replay level: a 2%-loss run through a plane whose partition seam was
// exercised (engaged, then healed) before the replay must be byte-identical
// to the plain 2%-loss run. Partition verdicts are pure group-membership
// lookups — they consume no hash stream — so an inert partition plane
// cannot collide with or shift any pre-existing loss stream.
func TestLossUnchangedByInertPartition(t *testing.T) {
	sc := ScaleTiny()
	sc.LossRate = 0.02
	lab, err := NewLab(sc)
	if err != nil {
		t.Fatalf("lab: %v", err)
	}
	for _, scheme := range lossySchemes {
		bare, err := lab.run(scheme, overlay.Crawled, false, 1, nil, nil, nil)
		if err != nil {
			t.Fatalf("%s bare: %v", scheme, err)
		}
		sch, err := lab.NewScheme(scheme)
		if err != nil {
			t.Fatal(err)
		}
		sys := lab.topoProto(overlay.Crawled).NewSystem(lab.U, lab.Tr)
		pl := faults.New(faults.Config{Seed: lab.Scale.Seed, LossRate: 0.02})
		group := make([]int8, sys.NumNodes())
		for i := range group {
			group[i] = int8(i % 2)
		}
		pl.SetPartition(group) // engage…
		pl.SetPartition(nil)   // …and heal before the replay: plane is inert again
		sys.SetFaults(pl)
		planed := sim.Run(sys, sch, sim.RunOptions{Workers: 1})
		if !reflect.DeepEqual(bare, planed) {
			t.Errorf("%s: inert partition plane changed the 2%%-loss summary:\nbare:   %+v\nplaned: %+v", scheme, bare, planed)
		}
		if planed.Drops == 0 {
			t.Errorf("%s: 2%% loss produced zero drops", scheme)
		}
	}
}
