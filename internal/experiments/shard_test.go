package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"asap/internal/obs"
	"asap/internal/overlay"
)

// TestShardedReplayEquivalence is the engine's acceptance property: the
// full scheme matrix — stateful ASAP variants and pure baselines — replayed
// under churn and 2% message loss must be byte-identical to the unsharded
// Workers=1 replay at every shard count, including S=1 and an S=7 that
// divides nothing evenly. Both the Matrix (summaries, load series) and the
// serialized per-second observability series are compared. Run under -race
// (make shard-smoke) this doubles as a soundness check of the conflict
// plan: an undeclared read/write overlap between lanes is a data race.
func TestShardedReplayEquivalence(t *testing.T) {
	sc := ScaleTiny()
	sc.LossRate = 0.02
	run := func(shards int) (Matrix, []byte) {
		sc := sc
		sc.ShardCount = shards
		lab, err := NewLab(sc)
		if err != nil {
			t.Fatalf("lab: %v", err)
		}
		col := obs.NewCollector()
		m, err := lab.RunMatrixOpt(nil, []overlay.Kind{overlay.Crawled}, nil,
			MatrixOptions{Workers: 1, Series: col})
		if err != nil {
			t.Fatalf("matrix (%d shards): %v", shards, err)
		}
		return m, serializeRuns(t, col)
	}
	wantM, wantS := run(0)
	for _, s := range []int{1, 2, 4, 7} {
		m, series := run(s)
		if !reflect.DeepEqual(wantM, m) {
			t.Errorf("shards=%d: matrix diverged from unsharded replay", s)
		}
		if !bytes.Equal(wantS, series) {
			t.Errorf("shards=%d: serialized series diverged from unsharded replay", s)
		}
	}
}

// TestShardCountIsNotPartOfTheSeed: sharding is pure execution strategy —
// the auto count (negative, resolved from GOMAXPROCS at run time) must
// yield the same Matrix as any explicit count, or replays would stop being
// reproducible across machines.
func TestShardCountIsNotPartOfTheSeed(t *testing.T) {
	sc := ScaleTiny()
	run := func(shards int) Matrix {
		sc := sc
		sc.ShardCount = shards
		lab, err := NewLab(sc)
		if err != nil {
			t.Fatalf("lab: %v", err)
		}
		m, err := lab.RunMatrixOpt([]string{"asap-rw", "asap-gsa"}, []overlay.Kind{overlay.Random}, nil,
			MatrixOptions{Workers: 1})
		if err != nil {
			t.Fatalf("matrix (%d shards): %v", shards, err)
		}
		return m
	}
	want := run(3)
	if got := run(-1); !reflect.DeepEqual(want, got) {
		t.Fatal("auto shard count changed the matrix")
	}
}
