package experiments

import (
	"math"
	"strings"
	"testing"

	"asap/internal/overlay"
)

func TestNewSeedStats(t *testing.T) {
	s := newSeedStats([]float64{1, 2, 3})
	if math.Abs(s.Mean-2) > 1e-12 || math.Abs(s.Min-1) > 1e-12 || math.Abs(s.Max-3) > 1e-12 {
		t.Errorf("stats = %+v", s)
	}
	wantStd := math.Sqrt(2.0 / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, wantStd)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
	zero := newSeedStats(nil)
	if zero.Mean != 0 || zero.Std != 0 {
		t.Error("empty stats not zero")
	}
}

func TestRunSeedsSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed tiny runs in -short mode")
	}
	sc := ScaleTiny()
	sweep, err := RunSeeds(sc, "asap-rw", overlay.Crawled, []uint64{1, 2, 3})
	if err != nil {
		t.Fatalf("RunSeeds: %v", err)
	}
	if len(sweep.Seeds) != 3 {
		t.Errorf("seeds recorded %d", len(sweep.Seeds))
	}
	// Success should be consistently decent with modest spread.
	if sweep.SuccessRate.Mean < 0.5 {
		t.Errorf("mean success %.2f", sweep.SuccessRate.Mean)
	}
	if sweep.SuccessRate.Std > 0.15 {
		t.Errorf("success spread %.3f across seeds suspiciously large", sweep.SuccessRate.Std)
	}
	if sweep.SuccessRate.Min > sweep.SuccessRate.Max {
		t.Error("min > max")
	}
	// Different seeds must actually differ somewhere (not a frozen RNG).
	if sweep.MeanRespMS.Std == 0 && sweep.LoadKBps.Std == 0 && sweep.SuccessRate.Std == 0 {
		t.Error("zero spread across seeds: seeding is inert")
	}

	out := FormatSeedSweeps([]SeedSweep{sweep})
	if !strings.Contains(out, "asap-rw") || !strings.Contains(out, "±") {
		t.Errorf("sweep table wrong:\n%s", out)
	}
}

func TestRunSeedsErrors(t *testing.T) {
	if _, err := RunSeeds(ScaleTiny(), "asap-rw", overlay.Crawled, nil); err == nil {
		t.Error("empty seed list accepted")
	}
	if _, err := RunSeeds(ScaleTiny(), "bogus", overlay.Crawled, []uint64{1}); err == nil {
		t.Error("bogus scheme accepted")
	}
}

func TestFormatSeedSweepsEmpty(t *testing.T) {
	out := FormatSeedSweeps(nil)
	if !strings.Contains(out, "0 seeds") {
		t.Errorf("empty sweep table: %s", out)
	}
}
