// Package experiments reproduces the paper's evaluation section (§V):
// given a scale preset it builds the shared inputs (physical network,
// content universe, trace) once, runs any scheme × topology combination,
// and formats the same series every figure reports.
//
// Figure index (see DESIGN.md for the full mapping):
//
//	Fig. 2  — peers per semantic class over the selected participants
//	Fig. 3  — peers per interest
//	Fig. 4  — search success rate, 6 schemes × 3 topologies
//	Fig. 5  — mean response time over successful searches
//	Fig. 6  — bandwidth per search (log-scale in the paper)
//	Fig. 7  — ASAP(RW) system-load breakdown by message class
//	Fig. 8  — mean system load, KB/node/s
//	Fig. 9  — system-load standard deviation
//	Fig. 10 — real-time load, a 100-second snapshot, crawled topology
//
// Two presets exist: ScaleFull is the paper's configuration (51,984
// physical nodes, 10,000 peers, 30,000 requests) and is meant for
// cmd/experiments; ScaleSmall is a 1/10 linear reduction whose
// size-coupled ASAP knobs (delivery budget M₀, cache capacity, refresh
// period) shrink by the same factor, preserving the comparative shape at
// bench-friendly cost.
package experiments
