package experiments

import (
	"fmt"
	"math"

	"asap/internal/overlay"
)

// SeedStats summarises one metric's spread across seeds.
type SeedStats struct {
	Mean, Std, Min, Max float64
}

func newSeedStats(xs []float64) SeedStats {
	if len(xs) == 0 {
		return SeedStats{}
	}
	s := SeedStats{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		s.Std += (x - s.Mean) * (x - s.Mean)
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	return s
}

func (s SeedStats) String() string {
	return fmt.Sprintf("%.3f ± %.3f [%.3f, %.3f]", s.Mean, s.Std, s.Min, s.Max)
}

// SeedSweep holds per-metric spreads of one scheme × topology over seeds.
type SeedSweep struct {
	Scheme   string
	Topology overlay.Kind
	Seeds    []uint64

	SuccessRate SeedStats
	MeanRespMS  SeedStats
	SearchKB    SeedStats
	LoadKBps    SeedStats
	LoadStd     SeedStats
}

// RunSeeds replays one scheme × topology under each seed, rebuilding the
// entire input chain (universe, trace, placement, topology) every time,
// and reports the spread of each headline metric. This is the robustness
// check the paper's single-trace evaluation lacks.
func RunSeeds(sc Scale, scheme string, topo overlay.Kind, seeds []uint64) (SeedSweep, error) {
	if len(seeds) == 0 {
		return SeedSweep{}, fmt.Errorf("experiments: no seeds")
	}
	sweep := SeedSweep{Scheme: scheme, Topology: topo, Seeds: seeds}
	var succ, resp, kb, load, loadStd []float64
	for _, seed := range seeds {
		s := sc
		s.Seed = seed
		lab, err := NewLab(s)
		if err != nil {
			return SeedSweep{}, fmt.Errorf("experiments: seed %d: %w", seed, err)
		}
		sum, err := lab.Run(scheme, topo)
		if err != nil {
			return SeedSweep{}, err
		}
		succ = append(succ, sum.SuccessRate)
		resp = append(resp, sum.MeanRespMS)
		kb = append(kb, sum.MeanSearchBytes/1024)
		load = append(load, sum.LoadMeanKBps)
		loadStd = append(loadStd, sum.LoadStdKBps)
	}
	sweep.SuccessRate = newSeedStats(succ)
	sweep.MeanRespMS = newSeedStats(resp)
	sweep.SearchKB = newSeedStats(kb)
	sweep.LoadKBps = newSeedStats(load)
	sweep.LoadStd = newSeedStats(loadStd)
	return sweep, nil
}

// FormatSeedSweeps renders sweeps as an aligned table.
func FormatSeedSweeps(sweeps []SeedSweep) string {
	headers := []string{"scheme", "topology", "success", "response ms", "KB/search", "load KB/node/s"}
	var rows [][]string
	for _, sw := range sweeps {
		rows = append(rows, []string{
			sw.Scheme,
			sw.Topology.String(),
			fmt.Sprintf("%.3f±%.3f", sw.SuccessRate.Mean, sw.SuccessRate.Std),
			fmt.Sprintf("%.0f±%.0f", sw.MeanRespMS.Mean, sw.MeanRespMS.Std),
			fmt.Sprintf("%.2f±%.2f", sw.SearchKB.Mean, sw.SearchKB.Std),
			fmt.Sprintf("%.3f±%.3f", sw.LoadKBps.Mean, sw.LoadKBps.Std),
		})
	}
	title := fmt.Sprintf("Seed sweep (%d seeds per cell)", lenOrZero(sweeps))
	return title + "\n" + renderTable(headers, rows)
}

func lenOrZero(sweeps []SeedSweep) int {
	if len(sweeps) == 0 {
		return 0
	}
	return len(sweeps[0].Seeds)
}
