package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"asap/internal/obs"
	"asap/internal/overlay"
)

// serializeRuns renders every collected series to its CSV and JSON forms,
// concatenated in key order — the byte-level artifact -series writes.
func serializeRuns(t *testing.T, c *obs.Collector) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rs := range c.Runs() {
		buf.WriteString(rs.Key)
		buf.WriteByte('\n')
		buf.Write(rs.CSV())
		j, err := rs.JSON()
		if err != nil {
			t.Fatalf("series %s: %v", rs.Key, err)
		}
		buf.Write(j)
	}
	return buf.Bytes()
}

// TestObsSeriesWorkerDeterminism: with series collection on and a fault
// plane active, both the matrix summaries and the byte-serialized series
// must be identical for any matrix worker count. Every counter lands on a
// row keyed by deterministic replay time and the collector orders runs by
// key, so scheduling must never show through.
func TestObsSeriesWorkerDeterminism(t *testing.T) {
	sc := ScaleTiny()
	sc.LossRate = 0.02
	run := func(workers int) (Matrix, *obs.Collector) {
		lab, err := NewLab(sc)
		if err != nil {
			t.Fatalf("lab: %v", err)
		}
		col := obs.NewCollector()
		m, err := lab.RunMatrixOpt(lossySchemes, []overlay.Kind{overlay.Crawled}, nil,
			MatrixOptions{Workers: workers, Series: col})
		if err != nil {
			t.Fatalf("matrix (%d workers): %v", workers, err)
		}
		return m, col
	}
	seqM, seqC := run(1)
	parM, parC := run(4)
	if !reflect.DeepEqual(seqM, parM) {
		t.Fatal("matrix differs across worker counts with series collection on")
	}
	seqB, parB := serializeRuns(t, seqC), serializeRuns(t, parC)
	if !bytes.Equal(seqB, parB) {
		t.Fatal("serialized series differ across worker counts")
	}

	runs := seqC.Runs()
	if len(runs) != len(lossySchemes) {
		t.Fatalf("collected %d series, want %d", len(runs), len(lossySchemes))
	}
	for _, rs := range runs {
		if len(rs.Rows) != rs.Seconds {
			t.Errorf("%s: %d rows, want %d seconds", rs.Key, len(rs.Rows), rs.Seconds)
		}
		if len(rs.Warmup) != len(rs.Columns) {
			t.Errorf("%s: warmup row has %d fields, want %d", rs.Key, len(rs.Warmup), len(rs.Columns))
		}
		var drops, searches int64
		ci := rs.ColumnIndex("drops")
		si := rs.ColumnIndex("searches")
		if ci < 0 || si < 0 {
			t.Fatalf("%s: missing drops/searches columns in %v", rs.Key, rs.Columns)
		}
		for _, row := range rs.Rows {
			drops += row[ci]
			searches += row[si]
		}
		if drops == 0 {
			t.Errorf("%s: 2%% loss recorded zero drops in the series", rs.Key)
		}
		if searches == 0 {
			t.Errorf("%s: series recorded zero searches", rs.Key)
		}
	}
}

// TestObsSeriesMatchesSummary: the series is an honest decomposition —
// summing its per-second search/success counters reproduces the summary's
// totals, and attaching the recorder must not change the summary at all
// (the obs plane observes, never perturbs).
func TestObsSeriesMatchesSummary(t *testing.T) {
	sc := ScaleTiny()
	sc.LossRate = 0.02
	lab, err := NewLab(sc)
	if err != nil {
		t.Fatalf("lab: %v", err)
	}
	bare, err := lab.run("asap-rw", overlay.Crawled, false, 1, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	timing := &obs.Timing{}
	observed, err := lab.run("asap-rw", overlay.Crawled, false, 1, col, timing, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, observed) {
		t.Fatalf("attaching the obs plane changed the summary:\nbare:     %+v\nobserved: %+v", bare, observed)
	}

	runs := col.Runs()
	if len(runs) != 1 {
		t.Fatalf("collected %d series, want 1", len(runs))
	}
	rs := runs[0]
	if rs.Key != "asap-rw/crawled" {
		t.Errorf("series key %q, want asap-rw/crawled", rs.Key)
	}
	var searches, successes int64
	si, oi := rs.ColumnIndex("searches"), rs.ColumnIndex("successes")
	for _, row := range rs.Rows {
		searches += row[si]
		successes += row[oi]
	}
	if searches != int64(observed.Requests) {
		t.Errorf("series searches %d != summary requests %d", searches, observed.Requests)
	}
	wantOK := int64(observed.SuccessRate*float64(observed.Requests) + 0.5)
	if successes != wantOK {
		t.Errorf("series successes %d != summary successes %d", successes, wantOK)
	}

	// Phase timing is wall-clock and unasserted numerically, but the
	// phases that must have run in this configuration have to be present.
	stats := timing.Stats()
	seen := map[string]bool{}
	for _, ps := range stats {
		if ps.Count <= 0 || ps.TotalMS < 0 {
			t.Errorf("phase %s: count %d total %.3fms", ps.Phase, ps.Count, ps.TotalMS)
		}
		seen[ps.Phase] = true
	}
	for _, want := range []string{"topo_clone", "attach", "replay", "search_phase1", "deliver_walk"} {
		if !seen[want] {
			t.Errorf("phase %s missing from timing stats (got %v)", want, stats)
		}
	}
}
