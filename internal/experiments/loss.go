package experiments

import (
	"fmt"

	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
)

// LossPoint is one cell of a loss sweep: a scheme's summary under one
// message-loss rate.
type LossPoint struct {
	Scheme   string
	LossRate float64
	Summary  metrics.Summary
}

// LossSweep holds a scheme × loss-rate grid on one topology.
type LossSweep struct {
	Topology overlay.Kind
	Rates    []float64
	Points   []LossPoint
}

// RunLossSweep replays every scheme on one topology under each loss rate,
// rebuilding the lab per rate so each point is exactly the -loss <rate>
// run of the CLI. Rate 0 is the paper's reliable network; the sweep shows
// how gracefully each scheme's success rate and response time degrade as
// the network loses messages, and what the retry machinery spends to get
// there.
//
// A non-nil series collects each point's per-second observability series,
// keyed "scheme/topology/loss=<rate>".
func RunLossSweep(sc Scale, schemes []string, topo overlay.Kind, rates []float64, series *obs.Collector) (LossSweep, error) {
	if len(rates) == 0 {
		return LossSweep{}, fmt.Errorf("experiments: no loss rates")
	}
	if schemes == nil {
		schemes = SchemeNames
	}
	sweep := LossSweep{Topology: topo, Rates: rates}
	for _, rate := range rates {
		s := sc
		s.LossRate = rate
		lab, err := NewLab(s)
		if err != nil {
			return LossSweep{}, fmt.Errorf("experiments: loss %v: %w", rate, err)
		}
		for _, scheme := range schemes {
			var sum metrics.Summary
			if series != nil {
				// Collect into a private sub-collector so the sweep can
				// suffix the keys with the loss rate before publishing.
				sub := obs.NewCollector()
				sum, err = lab.RunObs(scheme, topo, sub, nil)
				for _, rs := range sub.Runs() {
					rs.Key = fmt.Sprintf("%s/loss=%g", rs.Key, rate)
					series.Add(rs)
				}
			} else {
				sum, err = lab.Run(scheme, topo)
			}
			if err != nil {
				return LossSweep{}, err
			}
			sweep.Points = append(sweep.Points, LossPoint{Scheme: scheme, LossRate: rate, Summary: sum})
		}
	}
	return sweep, nil
}

// FormatLossSweep renders a sweep as an aligned table.
func FormatLossSweep(sw LossSweep) string {
	headers := []string{"scheme", "loss", "success", "response ms", "KB/search", "drops", "retries", "timeouts"}
	var rows [][]string
	for _, p := range sw.Points {
		rows = append(rows, []string{
			p.Scheme,
			fmt.Sprintf("%.0f%%", p.LossRate*100),
			fmt.Sprintf("%.3f", p.Summary.SuccessRate),
			fmt.Sprintf("%.0f", p.Summary.MeanRespMS),
			fmt.Sprintf("%.2f", p.Summary.MeanSearchBytes/1024),
			fmt.Sprintf("%d", p.Summary.Drops),
			fmt.Sprintf("%d", p.Summary.Retries),
			fmt.Sprintf("%d", p.Summary.Timeouts),
		})
	}
	title := fmt.Sprintf("Loss sweep (%s topology)", sw.Topology)
	return title + "\n" + renderTable(headers, rows)
}
