package asap

import (
	"testing"
)

func newTestCluster(t *testing.T, scheme string) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Nodes: 200, Reserve: 10, Scheme: scheme, Seed: 7})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	return c
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 1}); err == nil {
		t.Error("accepted a 1-node cluster")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 50, Scheme: "bogus"}); err == nil {
		t.Error("accepted bogus scheme")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 10_000_000}); err == nil {
		t.Error("accepted cluster larger than any universe")
	}
}

func TestClusterBasics(t *testing.T) {
	c := newTestCluster(t, "asap-rw")
	if c.NumNodes() != 210 || c.LiveCount() != 200 {
		t.Errorf("sizes: total=%d live=%d", c.NumNodes(), c.LiveCount())
	}
	if c.SchemeName() != "asap-rw" {
		t.Errorf("scheme %q", c.SchemeName())
	}
	if c.Now() != 0 {
		t.Error("fresh cluster clock nonzero")
	}
	c.Advance(3)
	if c.Now() != 3000 {
		t.Errorf("Now = %d after Advance(3)", c.Now())
	}
}

func TestClusterSearchFindsSharedDoc(t *testing.T) {
	c := newTestCluster(t, "asap-fld")
	succ := 0
	for i := 0; i < 50; i++ {
		n, d, ok := c.RandomQuery()
		if !ok {
			t.Fatal("RandomQuery found nothing")
		}
		if res := c.SearchForDoc(n, d, 2); res.Success {
			succ++
			if res.ResponseMS <= 0 {
				t.Fatal("non-positive response on success")
			}
		}
	}
	if succ < 30 {
		t.Errorf("only %d/50 searches succeeded on a warmed ASAP(FLD) cluster", succ)
	}
	sum := c.Stats()
	if sum.Requests != 50 {
		t.Errorf("stats requests = %d", sum.Requests)
	}
}

func TestClusterContentLifecycle(t *testing.T) {
	c := newTestCluster(t, "asap-fld")
	// Find a node and a doc it does not share but is interested in.
	var node NodeID = -1
	var doc DocID
	for n := 0; n < c.NumNodes() && node < 0; n++ {
		if !c.Alive(NodeID(n)) {
			continue
		}
		for d := 0; d < c.NumDocs(); d++ {
			if c.Interests(NodeID(n)).Has(c.ClassOf(DocID(d))) && !hasDoc(c, NodeID(n), DocID(d)) {
				node, doc = NodeID(n), DocID(d)
				break
			}
		}
	}
	if node < 0 {
		t.Fatal("no addable (node, doc) pair")
	}
	before := len(c.Docs(node))
	c.AddDocument(node, doc)
	if len(c.Docs(node)) != before+1 {
		t.Fatal("AddDocument did not add")
	}
	// Another interested node should now find it via ASAP.
	found := false
	for n := 0; n < c.NumNodes(); n++ {
		if NodeID(n) == node || !c.Alive(NodeID(n)) || !c.Interests(NodeID(n)).Has(c.ClassOf(doc)) {
			continue
		}
		if res := c.SearchForDoc(NodeID(n), doc, 2); res.Success {
			found = true
			break
		}
	}
	if !found {
		t.Error("no peer found the freshly added document")
	}
	c.RemoveDocument(node, doc)
	if len(c.Docs(node)) != before {
		t.Fatal("RemoveDocument did not remove")
	}
}

func hasDoc(c *Cluster, n NodeID, d DocID) bool {
	for _, x := range c.Docs(n) {
		if x == d {
			return true
		}
	}
	return false
}

func TestClusterChurn(t *testing.T) {
	c := newTestCluster(t, "asap-rw")
	joiner := NodeID(205) // reserve
	if err := c.Join(joiner); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if !c.Alive(joiner) || c.LiveCount() != 201 {
		t.Error("join not effective")
	}
	if err := c.Join(joiner); err == nil {
		t.Error("double join accepted")
	}
	if err := c.Leave(joiner); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if c.Alive(joiner) || c.LiveCount() != 200 {
		t.Error("leave not effective")
	}
	if err := c.Leave(joiner); err == nil {
		t.Error("double leave accepted")
	}
}

func TestClusterWithBaselineScheme(t *testing.T) {
	c := newTestCluster(t, "flooding")
	n, d, ok := c.RandomQuery()
	if !ok {
		t.Fatal("no query")
	}
	res := c.SearchForDoc(n, d, 1)
	if !res.Success {
		t.Error("flooding failed on a live target in a connected cluster")
	}
	sum := c.Stats()
	if sum.Scheme != "flooding" {
		t.Errorf("summary scheme %q", sum.Scheme)
	}
}

func TestClusterExplicitASAPConfig(t *testing.T) {
	cfg := ClusterConfig{Nodes: 100, Scheme: "asap-rw", Seed: 3}
	custom := ASAPConfig{
		FloodTTL: 4, Walkers: 3, BudgetUnit: 100, UpdateBudgetDiv: 4,
		AdsRequestHops: 2, MaxConfirms: 3, MinResults: 1, CacheCapacity: 64,
		RefreshPeriodSec: 30, StaleFactor: 2, MaxAdsPerReply: 16, Seed: 3,
	}
	cfg.ASAP = &custom
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("NewCluster with custom ASAP config: %v", err)
	}
	if c.SchemeName() != "asap-rw" {
		t.Error("custom config lost scheme")
	}
	// ASAP config with a baseline scheme is an error.
	cfg.Scheme = "flooding"
	if _, err := NewCluster(cfg); err == nil {
		t.Error("ASAP config accepted for baseline scheme")
	}
}

func TestClusterAdvanceAccountsLoad(t *testing.T) {
	c := newTestCluster(t, "asap-rw")
	for i := 0; i < 30; i++ {
		if n, d, ok := c.RandomQuery(); ok {
			c.SearchForDoc(n, d, 1)
		}
		c.Advance(2)
	}
	sum := c.Stats()
	if len(sum.LoadSeries) == 0 {
		t.Error("no load series after advancing")
	}
}

func TestClusterSuperPeerHierarchy(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 300, Reserve: 20, Topology: SuperPeer, Scheme: "asap-rw", Seed: 13})
	if err != nil {
		t.Fatalf("NewCluster(SuperPeer): %v", err)
	}
	succ, total := 0, 0
	for i := 0; i < 60; i++ {
		node, doc, ok := c.RandomQuery()
		if !ok {
			continue
		}
		total++
		if c.SearchForDoc(node, doc, 2).Success {
			succ++
		}
		if i%5 == 0 {
			c.Advance(1)
		}
	}
	if total == 0 {
		t.Fatal("no queries issued")
	}
	if rate := float64(succ) / float64(total); rate < 0.5 {
		t.Errorf("super-peer cluster success %.2f", rate)
	}
	// Churn a node; the hierarchy must keep working.
	if err := c.Join(NodeID(305)); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if n, d, ok := c.RandomQuery(); ok {
		c.SearchForDoc(n, d, 1)
	}
	sum := c.Stats()
	if sum.Topology != "superpeer" {
		t.Errorf("topology label %q", sum.Topology)
	}
}

func TestRunExperimentAndTopologyByName(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny lab run in -short mode")
	}
	sum, err := RunExperiment("tiny", "asap-rw", Crawled)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if sum.Requests == 0 || sum.SuccessRate == 0 {
		t.Errorf("empty summary: %+v", sum)
	}
	if _, err := RunExperiment("bogus", "asap-rw", Crawled); err == nil {
		t.Error("bogus scale accepted")
	}
	if _, err := RunExperiment("tiny", "bogus", Crawled); err == nil {
		t.Error("bogus scheme accepted")
	}
	for _, name := range []string{"random", "powerlaw", "crawled"} {
		k, err := TopologyByName(name)
		if err != nil || k.String() != name {
			t.Errorf("TopologyByName(%q) = %v, %v", name, k, err)
		}
	}
	if _, err := TopologyByName("mesh"); err == nil {
		t.Error("bogus topology accepted")
	}
}
