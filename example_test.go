package asap_test

import (
	"fmt"
	"log"

	"asap"
)

// ExampleNewCluster builds a small warmed-up ASAP cluster and inspects
// its shape.
func ExampleNewCluster() {
	cluster, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    100,
		Reserve:  5,
		Topology: asap.Random,
		Scheme:   "asap-rw",
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live peers:", cluster.LiveCount())
	fmt.Println("scheme:", cluster.SchemeName())
	fmt.Println("reserves:", cluster.NumNodes()-cluster.LiveCount())
	// Output:
	// live peers: 100
	// scheme: asap-rw
	// reserves: 5
}

// ExampleCluster_Search shows the everyday search flow: pick a document
// another peer shares, search for it by keywords, and read the outcome.
func ExampleCluster_Search() {
	cluster, err := asap.NewCluster(asap.ClusterConfig{Nodes: 200, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	node, doc, ok := cluster.RandomQuery()
	if !ok {
		log.Fatal("no satisfiable query")
	}
	res := cluster.SearchForDoc(node, doc, 2)
	fmt.Println("found:", res.Success)
	fmt.Println("one hop:", res.Hops == 1)
	// Output:
	// found: true
	// one hop: true
}

// ExampleCluster_churn drives joins and departures through the public
// API.
func ExampleCluster_churn() {
	cluster, err := asap.NewCluster(asap.ClusterConfig{Nodes: 50, Reserve: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	joiner := asap.NodeID(50) // first reserve slot
	if err := cluster.Join(joiner); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after join:", cluster.LiveCount())
	if err := cluster.Leave(joiner); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after leave:", cluster.LiveCount())
	// Output:
	// after join: 51
	// after leave: 50
}

// ExampleTopologyByName resolves topology labels.
func ExampleTopologyByName() {
	for _, name := range []string{"random", "powerlaw", "crawled"} {
		k, _ := asap.TopologyByName(name)
		fmt.Println(k)
	}
	// Output:
	// random
	// powerlaw
	// crawled
}
