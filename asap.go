package asap

import (
	"fmt"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/experiments"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/overlay"
	"asap/internal/trace"
)

// Topology selects one of the paper's overlay families.
type Topology = overlay.Kind

// The three topologies of §IV-A, plus the two-tier super-peer hierarchy
// of footnote 3.
const (
	Random    Topology = overlay.Random
	PowerLaw  Topology = overlay.PowerLaw
	Crawled   Topology = overlay.Crawled
	SuperPeer Topology = overlay.SuperPeerKind
)

// Re-exported identifier and data types, so downstream code rarely needs
// the internal packages.
type (
	// NodeID identifies an overlay node.
	NodeID = overlay.NodeID
	// DocID identifies a distinct document.
	DocID = content.DocID
	// Keyword is an interned search term.
	Keyword = content.Keyword
	// Class is one of the 14 semantic categories.
	Class = content.Class
	// ClassSet is a bitmask of classes: interests or ad topics.
	ClassSet = content.ClassSet
	// Summary carries one run's evaluation metrics (one bar per figure).
	Summary = metrics.Summary
	// Result is the outcome of a single search.
	Result = metrics.SearchResult
	// Matrix maps scheme × topology to summaries.
	Matrix = experiments.Matrix
	// Scale is an experiment size preset.
	Scale = experiments.Scale
	// Lab owns the shared inputs of one scale preset.
	Lab = experiments.Lab
	// ASAPConfig tunes the ASAP scheme (delivery algorithm, budgets,
	// cache capacity, refresh period).
	ASAPConfig = core.Config
	// FaultsConfig parameterises the deterministic fault-injection plane
	// (message loss rate, latency jitter, graceful-leave mode).
	FaultsConfig = faults.Config
)

// SchemeNames lists the six schemes of the paper's comparison, in order:
// flooding, random-walk, gsa, asap-fld, asap-rw, asap-gsa.
var SchemeNames = experiments.SchemeNames

// Scale presets.
var (
	// ScaleFull is the paper's configuration: 51,984 physical nodes,
	// 10,000 peers, 30,000 requests.
	ScaleFull = experiments.ScaleFull
	// ScaleSmall is a 1/10 linear reduction for benches.
	ScaleSmall = experiments.ScaleSmall
	// ScaleTiny is a 1/25 reduction for tests and quickstarts.
	ScaleTiny = experiments.ScaleTiny
	// ScaleByName resolves "full", "small" or "tiny".
	ScaleByName = experiments.ByName
)

// NewLab generates the shared experiment inputs (physical network, content
// universe, trace) for a scale preset. Labs are reusable across runs.
func NewLab(sc Scale) (*Lab, error) { return experiments.NewLab(sc) }

// RunExperiment builds a lab at the named scale and replays its trace
// under the named scheme on the given topology. For several runs at one
// scale, build a Lab once and call its Run method instead.
func RunExperiment(scaleName, scheme string, topo Topology) (Summary, error) {
	sc, err := experiments.ByName(scaleName)
	if err != nil {
		return Summary{}, err
	}
	lab, err := experiments.NewLab(sc)
	if err != nil {
		return Summary{}, err
	}
	return lab.Run(scheme, topo)
}

// TopologyByName resolves "random", "powerlaw" or "crawled".
func TopologyByName(name string) (Topology, error) {
	for _, k := range overlay.Kinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("asap: unknown topology %q (random|powerlaw|crawled)", name)
}

// Event re-exports the trace event type for custom replay tooling.
type Event = trace.Event
