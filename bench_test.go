package asap

// One benchmark per table/figure of the paper's evaluation (§V), per the
// experiment index in DESIGN.md. Each bench regenerates its figure at the
// ScaleSmall preset (1/10 linear scale; run cmd/experiments -scale full
// for the paper-scale numbers recorded in EXPERIMENTS.md) and prints the
// same rows/series the paper reports. The 6-scheme × 3-topology matrix is
// computed once and shared across benches.

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/experiments"
	"asap/internal/metrics"
	"asap/internal/obs"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/trace"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
	benchMat  experiments.Matrix
	benchErr  error
)

func benchMatrix(b *testing.B) (*experiments.Lab, experiments.Matrix) {
	b.Helper()
	benchOnce.Do(func() {
		benchLab, benchErr = experiments.NewLab(experiments.ScaleSmall())
		if benchErr != nil {
			return
		}
		// RunMatrix fans the 18 runs across GOMAXPROCS workers over cloned
		// topology prototypes, so the shared setup of `go test -bench .`
		// costs one parallel matrix instead of a sequential replay.
		benchMat, benchErr = benchLab.RunMatrix(nil, nil, nil)
	})
	if benchErr != nil {
		b.Fatalf("bench matrix: %v", benchErr)
	}
	return benchLab, benchMat
}

// BenchmarkRunMatrix measures one full 6-scheme × 3-topology small-scale
// matrix replay — the repo's headline throughput number (recorded in
// BENCH_matrix.json via cmd/experiments -benchjson). "sequential" is the
// pre-optimization baseline: one run at a time, overlay regenerated per
// run. "parallel" is the production path: MatrixWorkers fan-out over
// cloned topology prototypes. Both produce identical Matrix output.
func BenchmarkRunMatrix(b *testing.B) {
	lab, err := experiments.NewLab(experiments.ScaleSmall())
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		opt  experiments.MatrixOptions
	}{
		{"sequential", experiments.MatrixOptions{Workers: 1, FreshGraphs: true}},
		{"parallel", experiments.MatrixOptions{}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			runs := 0
			for i := 0; i < b.N; i++ {
				m, err := lab.RunMatrixOpt(nil, nil, nil, bc.opt)
				if err != nil {
					b.Fatal(err)
				}
				runs = 0
				for _, per := range m {
					runs += len(per)
				}
			}
			b.ReportMetric(float64(runs*b.N)/b.Elapsed().Seconds(), "runs/s")
		})
	}
}

// hotPathAllocs measures steady-state allocations per operation of the
// two replay hot paths — Search and the ad-delivery cascade behind
// ContentChanged — on a tiny attached system, with rec as the obs plane
// (nil = obs off). It takes the minimum over several attempts so a
// one-off sync.Pool refill or map growth cannot fail the gate.
func hotPathAllocs(t *testing.T, rec *obs.Recorder) (search, deliver float64) {
	t.Helper()
	lab, err := experiments.NewLab(experiments.ScaleTiny())
	if err != nil {
		t.Fatal(err)
	}
	sys := sim.NewSystem(lab.U, lab.Tr, overlay.Crawled, lab.Net, lab.Scale.Seed)
	sys.SetObs(rec)
	s := core.New(lab.Scale.ASAPConfig(core.RW))
	s.Attach(sys)

	var qev *trace.Event
	for i := range lab.Tr.Events {
		if lab.Tr.Events[i].Kind == trace.Query {
			qev = &lab.Tr.Events[i]
			break
		}
	}
	if qev == nil {
		t.Fatal("tiny trace has no query event")
	}
	doc := lab.U.Peer(content.PeerID(qev.Node)).Docs[0]
	added := true

	measure := func(fn func()) float64 {
		for i := 0; i < 50; i++ {
			fn() // reach steady state before measuring
		}
		min := testing.AllocsPerRun(200, fn)
		for i := 0; i < 4; i++ {
			if a := testing.AllocsPerRun(200, fn); a < min {
				min = a
			}
		}
		return min
	}
	search = measure(func() { s.Search(qev) })
	deliver = measure(func() {
		s.ContentChanged(qev.Time, qev.Node, doc, added)
		added = !added
	})
	return search, deliver
}

// TestObsOffHotPathAllocs is the gate promised in internal/obs/doc.go:
// with the obs plane off (nil recorder) the Search hot path allocates
// nothing per query, and attaching a recorder adds zero allocations per
// operation to both Search and the delivery cascade — all obs state is
// preallocated cells updated by atomic adds.
func TestObsOffHotPathAllocs(t *testing.T) {
	offSearch, offDeliver := hotPathAllocs(t, nil)
	if offSearch != 0 {
		t.Errorf("obs-off Search allocates %.1f allocs/op, want 0", offSearch)
	}
	lab, err := experiments.NewLab(experiments.ScaleTiny())
	if err != nil {
		t.Fatal(err)
	}
	onSearch, onDeliver := hotPathAllocs(t, obs.NewRecorder(int(lab.Tr.Span()/1000)+2))
	if onSearch != offSearch {
		t.Errorf("obs adds allocations to Search: %.1f on vs %.1f off", onSearch, offSearch)
	}
	if onDeliver != offDeliver {
		t.Errorf("obs adds allocations to delivery: %.1f on vs %.1f off", onDeliver, offDeliver)
	}
}

// printOnce emits a figure's table a single time per bench run.
func printOnce(b *testing.B, printed *bool, s string) {
	b.Helper()
	if !*printed {
		fmt.Println("\n" + s)
		*printed = true
	}
}

var (
	fig2Printed, fig3Printed, fig4Printed, fig5Printed, fig6Printed,
	fig7Printed, fig8Printed, fig9Printed, fig10Printed, claimsPrinted bool
)

// BenchmarkFig2SemanticClasses regenerates Fig. 2: peers per semantic
// class among the selected participants.
func BenchmarkFig2SemanticClasses(b *testing.B) {
	lab, _ := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lab.Fig2()
	}
	printOnce(b, &fig2Printed, experiments.FormatFig2(lab))
}

// BenchmarkFig3NodeInterests regenerates Fig. 3: peers per interest.
func BenchmarkFig3NodeInterests(b *testing.B) {
	lab, _ := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lab.Fig3()
	}
	printOnce(b, &fig3Printed, experiments.FormatFig3(lab))
}

// BenchmarkFig4SuccessRate regenerates Fig. 4: success rate across the
// 6 schemes × 3 topologies.
func BenchmarkFig4SuccessRate(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig4(m)
	}
	printOnce(b, &fig4Printed, experiments.FormatFig4(m))
	b.ReportMetric(m["asap-rw"][overlay.Crawled].SuccessRate*100, "asap-rw-succ-%")
	b.ReportMetric(m["flooding"][overlay.Crawled].SuccessRate*100, "flood-succ-%")
}

// BenchmarkFig5ResponseTime regenerates Fig. 5: mean response time.
func BenchmarkFig5ResponseTime(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig5(m)
	}
	printOnce(b, &fig5Printed, experiments.FormatFig5(m))
	b.ReportMetric(m["asap-rw"][overlay.Crawled].MeanRespMS, "asap-rw-ms")
	b.ReportMetric(m["flooding"][overlay.Crawled].MeanRespMS, "flood-ms")
}

// BenchmarkFig6SearchCost regenerates Fig. 6: bandwidth per search.
func BenchmarkFig6SearchCost(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig6(m)
	}
	printOnce(b, &fig6Printed, experiments.FormatFig6(m))
	ratio := m["flooding"][overlay.Crawled].MeanSearchBytes / m["asap-rw"][overlay.Crawled].MeanSearchBytes
	b.ReportMetric(ratio, "flood/asap-cost-x")
}

// BenchmarkFig7LoadBreakdown regenerates Fig. 7: the ASAP(RW) system-load
// breakdown on the crawled topology.
func BenchmarkFig7LoadBreakdown(b *testing.B) {
	_, m := benchMatrix(b)
	sum := m["asap-rw"][overlay.Crawled]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig7(sum)
	}
	printOnce(b, &fig7Printed, experiments.FormatFig7(sum))
	patchRefresh := sum.Breakdown[metrics.MAdPatch] + sum.Breakdown[metrics.MAdRefresh]
	b.ReportMetric(patchRefresh*100, "patch+refresh-%")
	b.ReportMetric(sum.Breakdown[metrics.MAdFull]*100, "full-%")
}

// BenchmarkFig8SystemLoad regenerates Fig. 8: mean system load.
func BenchmarkFig8SystemLoad(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig8(m)
	}
	printOnce(b, &fig8Printed, experiments.FormatFig8(m))
	b.ReportMetric(m["asap-rw"][overlay.Crawled].LoadMeanKBps, "asap-rw-KBps")
	b.ReportMetric(m["flooding"][overlay.Crawled].LoadMeanKBps, "flood-KBps")
}

// BenchmarkFig9LoadVariation regenerates Fig. 9: load standard deviation.
func BenchmarkFig9LoadVariation(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig9(m)
	}
	printOnce(b, &fig9Printed, experiments.FormatFig9(m))
	b.ReportMetric(m["asap-rw"][overlay.Crawled].LoadStdKBps, "asap-rw-std")
	b.ReportMetric(m["flooding"][overlay.Crawled].LoadStdKBps, "flood-std")
}

// BenchmarkFig10LoadTimeSeries regenerates Fig. 10: the 100-second
// real-time load snapshot on the crawled topology.
func BenchmarkFig10LoadTimeSeries(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = experiments.FormatFig10(m, 100)
	}
	printOnce(b, &fig10Printed, experiments.FormatFig10(m, 100))
	// Peak-vs-steady contrast the paper highlights: flooding peaks high,
	// ASAP(RW) stays low.
	peak := func(s []float64) float64 {
		p := 0.0
		for _, v := range s {
			if v > p {
				p = v
			}
		}
		return p
	}
	b.ReportMetric(peak(m["flooding"][overlay.Crawled].LoadSeries), "flood-peak-KBps")
	b.ReportMetric(peak(m["asap-rw"][overlay.Crawled].LoadSeries), "asap-rw-peak-KBps")
}

// BenchmarkHeadlineClaims checks the paper's comparative claims on the
// reproduced matrix (DESIGN.md §3).
func BenchmarkHeadlineClaims(b *testing.B) {
	_, m := benchMatrix(b)
	b.ResetTimer()
	var claims []experiments.Claim
	for i := 0; i < b.N; i++ {
		claims = experiments.CheckClaims(m)
	}
	printOnce(b, &claimsPrinted, experiments.FormatClaims(claims))
	pass := 0
	for _, c := range claims {
		if c.Pass {
			pass++
		}
	}
	b.ReportMetric(float64(pass), "claims-pass")
	b.ReportMetric(float64(len(claims)), "claims-total")
}

// --- Ablations (DESIGN.md §6) --------------------------------------------

var (
	ablateOnce sync.Once
	ablateLab  *experiments.Lab
	ablateErr  error
)

// ablationRun replays the tiny trace on the crawled topology under
// asap-rw with a tweaked configuration.
func ablationRun(b *testing.B, mutate func(*ASAPConfig)) Summary {
	b.Helper()
	ablateOnce.Do(func() { ablateLab, ablateErr = experiments.NewLab(experiments.ScaleTiny()) })
	if ablateErr != nil {
		b.Fatal(ablateErr)
	}
	acfg := ablateLab.Scale.ASAPConfig(core.RW)
	mutate(&acfg)
	sys := sim.NewSystem(ablateLab.U, ablateLab.Tr, overlay.Crawled, ablateLab.Net, ablateLab.Scale.Seed)
	return sim.Run(sys, core.New(acfg), sim.RunOptions{})
}

// BenchmarkAblationAdsRequestRadius sweeps h ∈ {0,1,2} (DESIGN.md D3).
func BenchmarkAblationAdsRequestRadius(b *testing.B) {
	for _, h := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) { c.AdsRequestHops = h })
			}
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
			b.ReportMetric(sum.MeanSearchBytes/1024, "KB/search")
		})
	}
}

// BenchmarkAblationCacheCapacity sweeps the per-node ads-cache bound
// (DESIGN.md D4).
func BenchmarkAblationCacheCapacity(b *testing.B) {
	for _, cap := range []int{25, 50, 100, 400} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) { c.CacheCapacity = cap })
			}
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
			b.ReportMetric(sum.OneHopRate*100, "one-hop-%")
		})
	}
}

// BenchmarkAblationRefreshPeriod sweeps the refresh-ad period (DESIGN.md
// D6); 0 disables refreshing entirely.
func BenchmarkAblationRefreshPeriod(b *testing.B) {
	for _, period := range []int{0, 6, 12, 60} {
		b.Run(fmt.Sprintf("period=%ds", period), func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) {
					c.RefreshPeriodSec = period
				})
			}
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
			b.ReportMetric(sum.LoadMeanKBps, "KBps")
		})
	}
}

// BenchmarkAblationFilterSizing contrasts the paper's fixed filter
// geometry with the variable-length alternative it describes (DESIGN.md
// D1), end to end: ad traffic shrinks, success holds.
func BenchmarkAblationFilterSizing(b *testing.B) {
	for _, variable := range []bool{false, true} {
		name := "fixed"
		if variable {
			name = "variable"
		}
		b.Run(name, func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) { c.VariableFilters = variable })
			}
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
			b.ReportMetric(sum.LoadMeanKBps, "KBps")
			b.ReportMetric(float64(sum.WarmupBytes)/(1<<20), "warmup-MB")
		})
	}
}

// BenchmarkSuperPeerMode contrasts flat ASAP(RW) with the hierarchical
// deployment of the paper's footnote 3 at equal workload: only the ~10%
// super-peer backbone represents, delivers, caches and processes ads.
func BenchmarkSuperPeerMode(b *testing.B) {
	ablateOnce.Do(func() { ablateLab, ablateErr = experiments.NewLab(experiments.ScaleTiny()) })
	if ablateErr != nil {
		b.Fatal(ablateErr)
	}
	lab := ablateLab
	b.Run("flat", func(b *testing.B) {
		var sum Summary
		for i := 0; i < b.N; i++ {
			sys := sim.NewSystem(lab.U, lab.Tr, overlay.Crawled, lab.Net, lab.Scale.Seed)
			sum = sim.Run(sys, core.New(lab.Scale.ASAPConfig(core.RW)), sim.RunOptions{})
		}
		b.ReportMetric(sum.SuccessRate*100, "succ-%")
		b.ReportMetric(sum.MeanRespMS, "resp-ms")
		b.ReportMetric(sum.LoadMeanKBps, "KBps")
	})
	b.Run("hierarchical", func(b *testing.B) {
		var sum Summary
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewPCG(lab.Scale.Seed, 0x77))
			hosts := lab.Net.RandomNodes(len(lab.Tr.Peers), rng)
			g := overlay.NewSuperPeer(lab.Net, hosts, lab.Tr.InitialLive,
				overlay.DefaultSuperFraction, overlay.DefaultSuperDegree, rng)
			sys := sim.NewSystemWithGraph(lab.U, lab.Tr, g)
			cfg := lab.Scale.ASAPConfig(core.RW)
			cfg.Hierarchical = true
			sum = sim.Run(sys, core.New(cfg), sim.RunOptions{})
		}
		b.ReportMetric(sum.SuccessRate*100, "succ-%")
		b.ReportMetric(sum.MeanRespMS, "resp-ms")
		b.ReportMetric(sum.LoadMeanKBps, "KBps")
	})
}

// BenchmarkAblationMinResults sweeps the multi-result demand of Table I's
// "if more responses needed" clause.
func BenchmarkAblationMinResults(b *testing.B) {
	for _, r := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("min=%d", r), func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) { c.MinResults = r })
			}
			b.ReportMetric(sum.MeanHits, "hits/search")
			b.ReportMetric(sum.MeanSearchBytes/1024, "KB/search")
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
		})
	}
}

// BenchmarkAblationBiasedDelivery contrasts uniform ad walks with
// interest-biased forwarding at equal budget.
func BenchmarkAblationBiasedDelivery(b *testing.B) {
	for _, biased := range []bool{false, true} {
		name := "uniform"
		if biased {
			name = "biased"
		}
		b.Run(name, func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) { c.BiasedDelivery = biased })
			}
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
			b.ReportMetric(sum.OneHopRate*100, "one-hop-%")
		})
	}
}

// BenchmarkAblationUpdateBudget sweeps the post-warm-up delivery budget
// divisor that calibrates Fig. 7 (DESIGN.md §2).
func BenchmarkAblationUpdateBudget(b *testing.B) {
	for _, div := range []int{1, 4, 12, 48} {
		b.Run(fmt.Sprintf("div=%d", div), func(b *testing.B) {
			var sum Summary
			for i := 0; i < b.N; i++ {
				sum = ablationRun(b, func(c *ASAPConfig) { c.UpdateBudgetDiv = div })
			}
			b.ReportMetric(sum.LoadMeanKBps, "KBps")
			b.ReportMetric(sum.SuccessRate*100, "succ-%")
		})
	}
}
