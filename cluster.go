package asap

import (
	"fmt"
	"math/rand/v2"

	"asap/internal/content"
	"asap/internal/core"
	"asap/internal/faults"
	"asap/internal/metrics"
	"asap/internal/netmodel"
	"asap/internal/sim"
	"asap/internal/trace"
)

// ClusterConfig sizes an interactively driven ASAP system.
type ClusterConfig struct {
	// Nodes is the number of initially live peers.
	Nodes int
	// Reserve is how many additional peers can Join later.
	Reserve int
	// Topology selects the overlay family (default Random).
	Topology Topology
	// Scheme names the search algorithm (any of SchemeNames; default
	// "asap-rw").
	Scheme string
	// HorizonSec bounds how far the virtual clock can advance (sizes load
	// accounting; default 600).
	HorizonSec int
	// ContentScale shrinks the synthetic content universe; 0 picks a size
	// proportional to Nodes.
	ContentScale float64
	// ASAP overrides the derived ASAP configuration when non-nil.
	ASAP *ASAPConfig
	// Faults attaches a deterministic fault-injection plane when non-nil:
	// lossy links, latency jitter and (optionally) graceful departures. A
	// zero Faults.Seed inherits the cluster seed. Nil means the paper's
	// reliable network.
	Faults *FaultsConfig
	Seed   uint64
}

// Cluster is a live ASAP system under manual control: a content universe,
// an overlay of peers, and a search scheme, driven by an explicit virtual
// clock. It is the API an application embeds to experiment with
// advertisement-based search outside the paper's trace harness.
//
// Cluster methods are not safe for concurrent use; drive it from one
// goroutine.
type Cluster struct {
	cfg   ClusterConfig
	net   *netmodel.Network
	u     *content.Universe
	sys   *sim.System
	sch   sim.Scheme
	stats metrics.SearchStats
	rng   *rand.Rand

	nowMS  sim.Clock
	curSec int
}

// NewCluster builds a warmed-up cluster: peers are placed, the overlay is
// wired, and (for ASAP schemes) the initial full-ad distribution has run.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("asap: cluster needs ≥2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Scheme == "" {
		cfg.Scheme = "asap-rw"
	}
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 600
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	scale := cfg.ContentScale
	if scale <= 0 {
		// ≈4 universe peers per overlay node keeps selection diverse.
		scale = min(1, float64(4*(cfg.Nodes+cfg.Reserve))/37000)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x2545f4914f6cdd1d))
	ccfg := content.DefaultConfig().Scaled(scale)
	ccfg.Seed = cfg.Seed
	u := content.Generate(ccfg)
	total := cfg.Nodes + cfg.Reserve
	if total > u.NumPeers() {
		return nil, fmt.Errorf("asap: universe too small (%d peers) for %d cluster nodes", u.NumPeers(), total)
	}

	// Select peers uniformly without replacement.
	peers := make([]content.PeerID, u.NumPeers())
	for i := range peers {
		peers[i] = content.PeerID(i)
	}
	for i := 0; i < total; i++ {
		j := i + rng.IntN(len(peers)-i)
		peers[i], peers[j] = peers[j], peers[i]
	}
	peers = peers[:total:total]

	net := netmodel.Generate(netmodel.SmallConfig())
	sys := sim.NewSystemForPeers(u, peers, cfg.Nodes, cfg.HorizonSec, cfg.Topology, net, cfg.Seed)
	if cfg.Faults != nil {
		fc := *cfg.Faults
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		sys.SetFaults(faults.New(fc))
	}

	// The paper's delivery budget (M₀=3,000) is calibrated to a 10,000-node
	// overlay; keep the coverage fraction constant. core.Config.Scaled
	// floors the tiny end.
	factor := min(1, float64(cfg.Nodes)/10000)
	lab := &Cluster{cfg: cfg, net: net, u: u, sys: sys, rng: rng}
	sch, err := lab.newScheme(cfg.Scheme, factor)
	if err != nil {
		return nil, err
	}
	lab.sch = sch
	sch.Attach(sys)
	sys.Load.SetLive(0, sys.G.LiveCount())
	return lab, nil
}

func (c *Cluster) newScheme(name string, factor float64) (sim.Scheme, error) {
	if c.cfg.ASAP != nil {
		cfg := *c.cfg.ASAP
		switch name {
		case "asap-fld":
			cfg.Delivery = core.FLD
		case "asap-rw":
			cfg.Delivery = core.RW
		case "asap-gsa":
			cfg.Delivery = core.GSAKind
		default:
			return nil, fmt.Errorf("asap: ASAP config given but scheme is %q", name)
		}
		return core.New(cfg), nil
	}
	sc := ScaleTiny()
	sc.Factor = factor
	sc.Seed = c.cfg.Seed
	sc.RefreshPeriodSec = 30
	if c.cfg.Topology == SuperPeer {
		// Footnote-3 mode: ASAP runs hierarchically on a super-peer
		// overlay; only super peers represent, deliver, cache and process
		// ads.
		switch name {
		case "asap-fld", "asap-rw", "asap-gsa":
			acfg := sc.ASAPConfig(deliveryByName(name))
			acfg.Hierarchical = true
			return core.New(acfg), nil
		}
	}
	lab := &Lab{Scale: sc}
	return lab.NewScheme(name)
}

func deliveryByName(name string) core.DeliveryKind {
	switch name {
	case "asap-fld":
		return core.FLD
	case "asap-gsa":
		return core.GSAKind
	default:
		return core.RW
	}
}

// Now returns the cluster's virtual time in milliseconds.
func (c *Cluster) Now() int64 { return c.nowMS }

// Advance moves the virtual clock forward, firing per-second periodic
// work (refresh ads) and live-count accounting.
func (c *Cluster) Advance(seconds int) {
	for i := 0; i < seconds; i++ {
		c.curSec++
		c.nowMS = int64(c.curSec) * 1000
		c.sys.Load.SetLive(c.curSec, c.sys.G.LiveCount())
		c.sch.Tick(c.nowMS)
	}
}

// NumNodes returns the overlay size including reserves.
func (c *Cluster) NumNodes() int { return c.sys.NumNodes() }

// Latency returns the one-way physical latency between two overlay nodes
// in milliseconds — the quantity ASAP's one-hop confirmation pays twice.
func (c *Cluster) Latency(a, b NodeID) int { return c.sys.Latency(a, b) }

// LiveCount returns the number of live peers.
func (c *Cluster) LiveCount() int { return c.sys.G.LiveCount() }

// Alive reports whether node n participates.
func (c *Cluster) Alive(n NodeID) bool { return c.sys.G.Alive(n) }

// Docs returns the documents node n currently shares (shared view).
func (c *Cluster) Docs(n NodeID) []DocID { return c.sys.Docs(n) }

// Interests returns node n's interest classes.
func (c *Cluster) Interests(n NodeID) ClassSet { return c.sys.Interests(n) }

// Keywords returns a document's keywords (shared view).
func (c *Cluster) Keywords(d DocID) []Keyword { return c.u.Keywords(d) }

// ClassOf returns a document's semantic class.
func (c *Cluster) ClassOf(d DocID) Class { return c.u.ClassOf(d) }

// NumDocs returns the number of distinct documents in the universe.
func (c *Cluster) NumDocs() int { return c.u.NumDocs() }

// Search runs one query from node n for the given terms at the current
// virtual time and records it in the cluster statistics.
func (c *Cluster) Search(n NodeID, terms []Keyword) Result {
	ev := trace.Event{Time: c.nowMS, Kind: trace.Query, Node: n, Terms: terms}
	res := c.sch.Search(&ev)
	c.stats.Record(res)
	return res
}

// SearchForDoc searches from node n using up to maxTerms of document d's
// keywords — the everyday "find me this file" call.
func (c *Cluster) SearchForDoc(n NodeID, d DocID, maxTerms int) Result {
	kws := c.u.Keywords(d)
	if maxTerms <= 0 || maxTerms > len(kws) {
		maxTerms = len(kws)
	}
	return c.Search(n, kws[:maxTerms])
}

// RandomQuery picks a requester and a target document the way the paper's
// trace does: the target is shared by a live node other than the
// requester and lies in the requester's interests. It returns false if no
// such pair is found quickly.
func (c *Cluster) RandomQuery() (n NodeID, d DocID, ok bool) {
	for try := 0; try < 400; try++ {
		req := NodeID(c.rng.IntN(c.sys.NumNodes()))
		if !c.sys.G.Alive(req) {
			continue
		}
		holder := NodeID(c.rng.IntN(c.sys.NumNodes()))
		if holder == req || !c.sys.G.Alive(holder) {
			continue
		}
		docs := c.sys.Docs(holder)
		if len(docs) == 0 {
			continue
		}
		doc := docs[c.rng.IntN(len(docs))]
		if !c.sys.Interests(req).Has(c.u.ClassOf(doc)) {
			continue
		}
		return req, doc, true
	}
	return 0, 0, false
}

// AddDocument makes node n share document d and propagates the content
// change to the scheme (ASAP publishes a patch ad).
func (c *Cluster) AddDocument(n NodeID, d DocID) {
	ev := trace.Event{Time: c.nowMS, Kind: trace.ContentAdd, Node: n, Doc: d}
	c.sys.ApplyEvent(&ev)
	c.sch.ContentChanged(c.nowMS, n, d, true)
}

// RemoveDocument stops node n sharing document d.
func (c *Cluster) RemoveDocument(n NodeID, d DocID) {
	ev := trace.Event{Time: c.nowMS, Kind: trace.ContentRemove, Node: n, Doc: d}
	c.sys.ApplyEvent(&ev)
	c.sch.ContentChanged(c.nowMS, n, d, false)
}

// Join activates a reserve node; it wires into the overlay, advertises,
// and pulls neighbourhood ads.
func (c *Cluster) Join(n NodeID) error {
	if c.sys.G.Alive(n) {
		return fmt.Errorf("asap: node %d already live", n)
	}
	ev := trace.Event{Time: c.nowMS, Kind: trace.Join, Node: n}
	c.sys.ApplyEvent(&ev)
	c.sch.NodeJoined(c.nowMS, n)
	// The per-node load denominator changed mid-second; refresh it so this
	// second's KB/node/s uses the population that actually carried the load.
	c.sys.Load.SetLive(c.curSec, c.sys.G.LiveCount())
	return nil
}

// Leave removes node n. Departures are ungraceful (no goodbye messages,
// its ads decay elsewhere via refresh expiry) unless the cluster's fault
// plane enables graceful-leave mode, in which case the node tells its
// neighbours goodbye before its links go down.
func (c *Cluster) Leave(n NodeID) error {
	if !c.sys.G.Alive(n) {
		return fmt.Errorf("asap: node %d not live", n)
	}
	if lv, ok := c.sch.(sim.GracefulLeaver); ok {
		lv.NodeLeaving(c.nowMS, n)
	}
	ev := trace.Event{Time: c.nowMS, Kind: trace.Leave, Node: n}
	c.sys.ApplyEvent(&ev)
	c.sch.NodeLeft(c.nowMS, n)
	c.sys.Load.SetLive(c.curSec, c.sys.G.LiveCount())
	return nil
}

// Stats summarises all searches issued so far plus the system load
// accumulated over the advanced clock.
func (c *Cluster) Stats() Summary {
	var mask metrics.ClassMask
	if s, ok := c.sch.(interface{ LoadMask() metrics.ClassMask }); ok {
		mask = s.LoadMask()
	} else {
		mask = metrics.AllMask
	}
	return metrics.Summarize(c.sch.Name(), c.sys.G.Kind().String(), &c.stats, c.sys.Load, mask)
}

// SchemeName returns the active scheme's label.
func (c *Cluster) SchemeName() string { return c.sch.Name() }
