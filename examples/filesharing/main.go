// Filesharing walks through the paper's motivating scenario — a music
// file-sharing network à la Napster/eDonkey — at the level of individual
// peers and documents:
//
//  1. a listener searches for a track and gets a one-hop answer from its
//     local ads cache;
//
//  2. a peer starts sharing a new track; ASAP pushes a patch ad, and the
//     track becomes findable by interested peers without any of them
//     issuing a single flooded query;
//
//  3. the track's only holder logs off; searches fail gracefully and the
//     stale ad is dropped on the first failed confirmation.
//
//     go run ./examples/filesharing
package main

import (
	"fmt"
	"log"

	"asap"
)

func main() {
	cluster, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    400,
		Reserve:  8,
		Topology: asap.Crawled, // the paper's "real network" topology
		Scheme:   "asap-fld",   // broadest ad distribution for the demo
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("music-sharing overlay: %d peers (crawled topology)\n\n", cluster.LiveCount())

	// --- Act 1: an everyday search -------------------------------------
	listener, track, ok := cluster.RandomQuery()
	if !ok {
		log.Fatal("no query available")
	}
	fmt.Printf("act 1: peer %d (interests: %v) searches for a %q track\n",
		listener, cluster.Interests(listener), cluster.ClassOf(track))
	res := cluster.SearchForDoc(listener, track, 2)
	report(res)

	// --- Act 2: new content propagates ----------------------------------
	cluster.Advance(5)
	uploader, newTrack := findUploader(cluster)
	fmt.Printf("\nact 2: peer %d starts sharing doc %d (%q)\n",
		uploader, newTrack, cluster.ClassOf(newTrack))
	cluster.AddDocument(uploader, newTrack)

	fan := findInterestedPeer(cluster, uploader, newTrack)
	fmt.Printf("       peer %d (same interest) searches for it\n", fan)
	res = cluster.SearchForDoc(fan, newTrack, 2)
	report(res)

	// --- Act 3: churn ----------------------------------------------------
	cluster.Advance(5)
	fmt.Printf("\nact 3: peer %d logs off without telling anyone\n", uploader)
	if err := cluster.Leave(uploader); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("       peer %d searches again (holder gone)\n", fan)
	res = cluster.SearchForDoc(fan, newTrack, 2)
	if res.Success {
		fmt.Printf("       found a surviving copy: %d ms via %d hop(s)\n", res.ResponseMS, res.Hops)
	} else {
		fmt.Printf("       MISS — the only copy left with its holder; the stale ad was dropped\n")
	}

	sum := cluster.Stats()
	fmt.Printf("\nsession stats: %d searches, %.0f%% success, %.0f ms mean response\n",
		sum.Requests, sum.SuccessRate*100, sum.MeanRespMS)
}

func report(res asap.Result) {
	if res.Success {
		fmt.Printf("       FOUND in %d hop(s): %d ms, %d bytes of search traffic\n",
			res.Hops, res.ResponseMS, res.Bytes)
	} else {
		fmt.Printf("       MISS (%d bytes spent)\n", res.Bytes)
	}
}

// findUploader picks a live peer and a document it could plausibly start
// sharing (interesting to it, not yet shared, and currently unshared by
// anyone so act 3 can make it disappear).
func findUploader(c *asap.Cluster) (asap.NodeID, asap.DocID) {
	shared := map[asap.DocID]bool{}
	for n := 0; n < c.NumNodes(); n++ {
		for _, d := range c.Docs(asap.NodeID(n)) {
			shared[d] = true
		}
	}
	for n := 0; n < c.NumNodes(); n++ {
		node := asap.NodeID(n)
		if !c.Alive(node) {
			continue
		}
		for d := 0; d < c.NumDocs(); d++ {
			doc := asap.DocID(d)
			if !shared[doc] && c.Interests(node).Has(c.ClassOf(doc)) {
				return node, doc
			}
		}
	}
	log.Fatal("no candidate uploader")
	return 0, 0
}

// findInterestedPeer returns a live peer other than skip that is
// interested in the document's class.
func findInterestedPeer(c *asap.Cluster, skip asap.NodeID, d asap.DocID) asap.NodeID {
	for n := 0; n < c.NumNodes(); n++ {
		node := asap.NodeID(n)
		if node != skip && c.Alive(node) && c.Interests(node).Has(c.ClassOf(d)) {
			return node
		}
	}
	log.Fatal("no interested peer")
	return 0
}
