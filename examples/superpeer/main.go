// Superpeer demonstrates the hierarchical deployment the paper sketches
// in footnote 3: "ASAP can work well on hierarchical systems in which
// only super peers are responsible for ad representation, delivery,
// caching and processing."
//
// A two-tier overlay (10% super peers, leaves attached one-to-one) runs
// the same workload as a flat crawled overlay. In the hierarchy, a super
// peer advertises the union of its own and its leaves' contents, leaves
// route searches through their super peer, and only the backbone carries
// ads — so ~90% of the machines hold no cache and process no ad traffic
// at all.
//
//	go run ./examples/superpeer
package main

import (
	"fmt"
	"log"

	"asap"
)

const (
	nodes    = 500
	searches = 300
)

func main() {
	fmt.Printf("same workload, two deployments of ASAP(RW), %d peers each\n\n", nodes)

	flat := run(asap.Crawled, "flat crawled overlay")
	hier := run(asap.SuperPeer, "super-peer hierarchy")

	fmt.Printf("%-24s %8s %12s %12s %12s\n", "", "success", "response", "KB/search", "KB/node/s")
	for _, r := range []row{flat, hier} {
		fmt.Printf("%-24s %7.0f%% %9.0f ms %12.2f %12.3f\n",
			r.label, r.sum.SuccessRate*100, r.sum.MeanRespMS,
			r.sum.MeanSearchBytes/1024, r.sum.LoadMeanKBps)
	}
	fmt.Println()
	fmt.Println("the hierarchy trades one extra uplink hop per leaf search for an")
	fmt.Println("overlay where ads, caches and confirmations live only on the ~10%")
	fmt.Println("of peers provisioned for it — the deployment shape of footnote 3.")
}

type row struct {
	label string
	sum   asap.Summary
}

func run(topo asap.Topology, label string) row {
	cluster, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    nodes,
		Topology: topo,
		Scheme:   "asap-rw",
		Seed:     31,
	})
	if err != nil {
		log.Fatal(err)
	}
	done := 0
	for done < searches {
		for i := 0; i < 5 && done < searches; i++ {
			node, doc, ok := cluster.RandomQuery()
			if !ok {
				continue
			}
			cluster.SearchForDoc(node, doc, 2)
			done++
		}
		cluster.Advance(1)
	}
	return row{label: label, sum: cluster.Stats()}
}
