// Churn stresses ASAP with heavy node turnover — the situation §III-C's
// refresh machinery and the trace's join/leave events exist for — and
// shows search quality before, during and after a churn storm.
//
// Every 2 virtual seconds during the storm, 2% of the overlay leaves
// ungracefully and the same number of fresh peers joins. Stale ads from
// departed peers cause failed confirmations, which evict them on contact;
// joiners advertise and pull neighbourhood ads on arrival.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"asap"
)

const (
	nodes     = 400
	reserve   = 200
	phaseSecs = 30
)

func main() {
	cluster, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    nodes,
		Reserve:  reserve,
		Topology: asap.Crawled,
		Scheme:   "asap-rw",
		Seed:     11,
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 0))
	fmt.Printf("overlay: %d live peers, %d in reserve, scheme %s\n\n",
		cluster.LiveCount(), reserve, cluster.SchemeName())

	nextJoin := asap.NodeID(nodes)
	phase := func(name string, churnPerTick int) {
		succ, total := 0, 0
		for sec := 0; sec < phaseSecs; sec++ {
			// Churn first: leaves and joins in equal number.
			if churnPerTick > 0 && sec%2 == 0 {
				for i := 0; i < churnPerTick; i++ {
					victim := asap.NodeID(rng.IntN(int(nextJoin)))
					if cluster.Alive(victim) {
						_ = cluster.Leave(victim)
					}
					if int(nextJoin) < cluster.NumNodes() {
						_ = cluster.Join(nextJoin)
						nextJoin++
					}
				}
			}
			// Then a burst of searches.
			for i := 0; i < 5; i++ {
				node, doc, ok := cluster.RandomQuery()
				if !ok {
					continue
				}
				total++
				if cluster.SearchForDoc(node, doc, 2).Success {
					succ++
				}
			}
			cluster.Advance(1)
		}
		fmt.Printf("%-18s live=%3d  searches=%3d  success=%.0f%%\n",
			name, cluster.LiveCount(), total, 100*float64(succ)/float64(max(1, total)))
	}

	phase("steady state", 0)
	phase("churn storm", nodes/50) // 2% turnover every 2 s
	phase("recovery", 0)
	phase("recovered", 0)

	sum := cluster.Stats()
	fmt.Printf("\noverall: %d searches, %.0f%% success, load %.3f ± %.3f KB/node/s\n",
		sum.Requests, sum.SuccessRate*100, sum.LoadMeanKBps, sum.LoadStdKBps)
	fmt.Println("ASAP keeps answering through churn: failed confirmations evict dead")
	fmt.Println("ads on contact, refresh ads re-assert the living, and joiners warm")
	fmt.Println("their caches with one neighbourhood ads request.")
}
