// Burst demonstrates the paper's load-smoothing claim (§I, Fig. 10): when
// the request rate spikes — the "rush hour" — query-based search load
// spikes with it, because every request fans out into many messages,
// while ASAP's per-request cost is a couple of unicast messages and its
// background ad traffic is constant.
//
// The workload alternates quiet periods (2 searches/s) with rush hours
// (20 searches/s) and prints each scheme's per-second load profile.
//
//	go run ./examples/burst
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"asap"
)

const (
	nodes     = 400
	quietRate = 2
	rushRate  = 20
	phaseSecs = 20
)

func main() {
	fmt.Printf("workload: %d s quiet (%d req/s) / %d s rush (%d req/s), twice\n\n",
		phaseSecs, quietRate, phaseSecs, rushRate)

	for _, scheme := range []string{"flooding", "asap-rw"} {
		series := drive(scheme)
		mean, std, peak := stats(series)
		fmt.Printf("%s\n", scheme)
		fmt.Printf("  load: mean %.3f, stddev %.3f, peak %.3f KB/node/s\n", mean, std, peak)
		fmt.Printf("  profile (one char per second, ▁▂▃▄▅▆▇█ scaled to its own peak):\n")
		fmt.Printf("  %s\n\n", spark(series))
	}
	fmt.Println("flooding's profile mirrors the bursts; ASAP's stays near-flat —")
	fmt.Println("the proactive ad investment decouples search load from request rate.")
}

// drive runs the alternating workload under one scheme and returns the
// per-second load series.
func drive(scheme string) []float64 {
	cluster, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    nodes,
		Topology: asap.Random,
		Scheme:   scheme,
		Seed:     23,
	})
	if err != nil {
		log.Fatal(err)
	}
	for phase := 0; phase < 4; phase++ {
		rate := quietRate
		if phase%2 == 1 {
			rate = rushRate
		}
		for sec := 0; sec < phaseSecs; sec++ {
			for i := 0; i < rate; i++ {
				if node, doc, ok := cluster.RandomQuery(); ok {
					cluster.SearchForDoc(node, doc, 2)
				}
			}
			cluster.Advance(1)
		}
	}
	return cluster.Stats().LoadSeries
}

func stats(series []float64) (mean, std, peak float64) {
	if len(series) == 0 {
		return
	}
	for _, v := range series {
		mean += v
		if v > peak {
			peak = v
		}
	}
	mean /= float64(len(series))
	for _, v := range series {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(series)))
	return
}

// spark renders the series as a unicode sparkline normalised to its peak.
func spark(series []float64) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	_, _, peak := stats(series)
	if peak == 0 {
		return strings.Repeat("▁", len(series))
	}
	var b strings.Builder
	for _, v := range series {
		idx := int(v / peak * float64(len(blocks)-1))
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
