// Quickstart: a 60-second tour of the public API.
//
// It builds a small warmed-up ASAP cluster, runs a handful of searches,
// and contrasts the same workload under flooding — the paper's headline
// comparison in miniature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"asap"
)

func main() {
	// An ASAP(RW) cluster: 300 peers on a random overlay, ads already
	// distributed (NewCluster warms the caches).
	cluster, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    300,
		Topology: asap.Random,
		Scheme:   "asap-rw",
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: %d live peers, scheme %s\n\n", cluster.LiveCount(), cluster.SchemeName())

	// Run 20 searches the way the paper's trace does: a requester asks for
	// a document another live peer shares, within its own interests.
	for i := 0; i < 20; i++ {
		node, doc, ok := cluster.RandomQuery()
		if !ok {
			log.Fatal("no satisfiable query found")
		}
		res := cluster.SearchForDoc(node, doc, 2)
		status := "MISS"
		if res.Success {
			status = fmt.Sprintf("hit in %d hop(s), %d ms, %d B", res.Hops, res.ResponseMS, res.Bytes)
		}
		fmt.Printf("search %2d: node %4d wants %q doc %-6d → %s\n",
			i+1, node, cluster.ClassOf(doc), doc, status)
		cluster.Advance(1)
	}

	sum := cluster.Stats()
	fmt.Printf("\nASAP(RW): success %.0f%%, mean response %.0f ms, %.2f KB/search\n",
		sum.SuccessRate*100, sum.MeanRespMS, sum.MeanSearchBytes/1024)

	// The same story under flooding: every query blankets the overlay.
	flood, err := asap.NewCluster(asap.ClusterConfig{
		Nodes:    300,
		Topology: asap.Random,
		Scheme:   "flooding",
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if node, doc, ok := flood.RandomQuery(); ok {
			flood.SearchForDoc(node, doc, 2)
		}
		flood.Advance(1)
	}
	fsum := flood.Stats()
	fmt.Printf("flooding: success %.0f%%, mean response %.0f ms, %.2f KB/search\n",
		fsum.SuccessRate*100, fsum.MeanRespMS, fsum.MeanSearchBytes/1024)

	fmt.Printf("\nASAP answers in %.0f%% less time at %.0fx less bandwidth per search.\n",
		(1-sum.MeanRespMS/fsum.MeanRespMS)*100,
		fsum.MeanSearchBytes/sum.MeanSearchBytes)
}
